# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench docs check check-budget

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Build the odoc API docs with warnings as errors (see the root dune file).
docs:
	dune build @check-docs

# Smoke test for the resource guards: an intractable query under a 2 s
# deadline must come back as a degraded (ε,δ)-answer instead of hanging.
# `timeout 10` is the belt to the deadline's braces — if the guard ever
# regresses into a hang, this target fails rather than wedging CI.
check-budget: build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	dune exec --no-build bin/probdb.exe -- gen --out "$$tmp/db" --domain 24 --seed 7 \
		R:1:0.9 S:2:0.85 T:1:0.9 >/dev/null; \
	out=$$(timeout 10 dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/db" \
		--deadline-ms 2000 --stats-json \
		"exists x y. R(x) && S(x,y) && T(y)") || \
		{ echo "check-budget: eval failed or hung (exit $$?)"; exit 1; }; \
	echo "$$out" | grep -q '"degraded": true' || \
		{ echo "check-budget: expected a degraded answer"; echo "$$out"; exit 1; }; \
	echo "check-budget: degraded (ε,δ)-answer within deadline — OK"

# What CI runs: build, test suite, the budget smoke test, and — when odoc
# is installed — the fatal-warnings documentation build.
check: build test check-budget
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @check-docs; \
	else \
		echo "odoc not installed; skipping @check-docs (opam install odoc)"; \
	fi
