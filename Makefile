# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke docs check check-budget check-wmc

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Build the odoc API docs with warnings as errors (see the root dune file).
docs:
	dune build @check-docs

# Smoke test for the resource guards: an intractable query under a 2 s
# deadline must come back as a degraded (ε,δ)-answer instead of hanging.
# `timeout 10` is the belt to the deadline's braces — if the guard ever
# regresses into a hang, this target fails rather than wedging CI.
check-budget: build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	dune exec --no-build bin/probdb.exe -- gen --out "$$tmp/db" --domain 24 --seed 7 \
		R:1:0.9 S:2:0.85 T:1:0.9 >/dev/null; \
	out=$$(timeout 10 dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/db" \
		--deadline-ms 2000 --stats-json \
		"exists x y. R(x) && S(x,y) && T(y)") || \
		{ echo "check-budget: eval failed or hung (exit $$?)"; exit 1; }; \
	echo "$$out" | grep -q '"degraded": true' || \
		{ echo "check-budget: expected a degraded answer"; echo "$$out"; exit 1; }; \
	echo "check-budget: degraded (ε,δ)-answer within deadline — OK"

# Smoke test for the E15 parallel/columnar benchmark: run it at toy sizes
# (PROBDB_BENCH_SMOKE=1) and assert BENCH_parallel.json carries the schema
# downstream tooling reads — the columnar-vs-list join rows and the
# cross-domain-count determinism flag. `timeout 120` guards against the
# worker pool wedging on exotic machines.
bench-smoke: build
	@timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e15 \
		>/dev/null || { echo "bench-smoke: e15 failed or hung (exit $$?)"; exit 1; }; \
	for key in '"experiment": "parallel"' '"smoke": true' '"join_speedup"' \
		'"columnar_rows_per_s"' '"estimates_identical": true' '"scaling"'; do \
		grep -q "$$key" BENCH_parallel.json || \
			{ echo "bench-smoke: BENCH_parallel.json missing $$key"; \
			  cat BENCH_parallel.json; exit 1; }; \
	done; \
	echo "bench-smoke: BENCH_parallel.json schema + determinism flag — OK"; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e16 \
		>/dev/null || { echo "bench-smoke: e16 failed or hung (exit $$?)"; exit 1; }; \
	for key in '"experiment": "wmc"' '"smoke": true' '"speedup"' \
		'"bit_identical": true' '"cache_hit_rate"' '"cache_evictions"'; do \
		grep -q "$$key" BENCH_wmc.json || \
			{ echo "bench-smoke: BENCH_wmc.json missing $$key"; \
			  cat BENCH_wmc.json; exit 1; }; \
	done; \
	echo "bench-smoke: BENCH_wmc.json schema + bit-identity flag — OK"

# The grounded-WMC equivalence suite on its own: the clause-database
# counter against brute force and the tree DPLL reference across the
# cache/components config matrix, including the deterministic guard-trip
# fault injection ("guard trips mid-solve degrade cleanly").
check-wmc: build
	dune exec --no-build test/main.exe -- test 'cnf|wmc' -c

# What CI runs: build, test suite, the budget and benchmark smoke tests,
# the WMC equivalence suite, and — when odoc is installed — the
# fatal-warnings documentation build.
check: build test check-budget bench-smoke check-wmc
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @check-docs; \
	else \
		echo "odoc not installed; skipping @check-docs (opam install odoc)"; \
	fi
