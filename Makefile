# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench docs check

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Build the odoc API docs with warnings as errors (see the root dune file).
docs:
	dune build @check-docs

# What CI runs: build, test suite, and — when odoc is installed — the
# fatal-warnings documentation build.
check: build test
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @check-docs; \
	else \
		echo "odoc not installed; skipping @check-docs (opam install odoc)"; \
	fi
