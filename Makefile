# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke bench-compare docs check check-budget check-wmc check-trace check-serve check-chaos check-prepare check-storage check-obs

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Build the odoc API docs with warnings as errors (see the root dune file).
docs:
	dune build @check-docs

# Smoke test for the resource guards: an intractable query under a 2 s
# deadline must come back as a degraded (ε,δ)-answer instead of hanging.
# `timeout 10` is the belt to the deadline's braces — if the guard ever
# regresses into a hang, this target fails rather than wedging CI.
check-budget: build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	dune exec --no-build bin/probdb.exe -- gen --out "$$tmp/db" --domain 24 --seed 7 \
		R:1:0.9 S:2:0.85 T:1:0.9 >/dev/null; \
	out=$$(timeout 10 dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/db" \
		--deadline-ms 2000 --stats-json \
		"exists x y. R(x) && S(x,y) && T(y)") || \
		{ echo "check-budget: eval failed or hung (exit $$?)"; exit 1; }; \
	echo "$$out" | grep -q '"degraded": true' || \
		{ echo "check-budget: expected a degraded answer"; echo "$$out"; exit 1; }; \
	echo "check-budget: degraded (ε,δ)-answer within deadline — OK"

# Smoke test for the E15 parallel/columnar benchmark: run it at toy sizes
# (PROBDB_BENCH_SMOKE=1) and assert BENCH_parallel.json carries the schema
# downstream tooling reads — the columnar-vs-list join rows and the
# cross-domain-count determinism flag. `timeout 120` guards against the
# worker pool wedging on exotic machines.
bench-smoke: build
	@timeout 120 env PROBDB_BENCH_SMOKE=1 PROBDB_TRACE=1 dune exec --no-build bench/main.exe -- e15 \
		>/dev/null || { echo "bench-smoke: e15 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-trace TRACE_e15.json || \
		{ echo "bench-smoke: TRACE_e15.json failed trace validation"; exit 1; }; \
	for key in '"experiment": "parallel"' '"smoke": true' '"join_speedup"' \
		'"columnar_rows_per_s"' '"estimates_identical": true' '"scaling"'; do \
		grep -q "$$key" BENCH_parallel.json || \
			{ echo "bench-smoke: BENCH_parallel.json missing $$key"; \
			  cat BENCH_parallel.json; exit 1; }; \
	done; \
	echo "bench-smoke: BENCH_parallel.json schema + determinism flag — OK"; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e16 \
		>/dev/null || { echo "bench-smoke: e16 failed or hung (exit $$?)"; exit 1; }; \
	for key in '"experiment": "wmc"' '"smoke": true' '"speedup"' \
		'"bit_identical": true' '"cache_hit_rate"' '"cache_evictions"'; do \
		grep -q "$$key" BENCH_wmc.json || \
			{ echo "bench-smoke: BENCH_wmc.json missing $$key"; \
			  cat BENCH_wmc.json; exit 1; }; \
	done; \
	echo "bench-smoke: BENCH_wmc.json schema + bit-identity flag — OK"; \
	timeout 300 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e18 \
		>/dev/null || { echo "bench-smoke: e18 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-chaos BENCH_chaos.json || \
		{ echo "bench-smoke: BENCH_chaos.json failed schema validation"; exit 1; }; \
	echo "bench-smoke: BENCH_chaos.json schema + soak invariants — OK"; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e19 \
		>/dev/null || { echo "bench-smoke: e19 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-prepare BENCH_prepare.json || \
		{ echo "bench-smoke: BENCH_prepare.json failed schema validation"; exit 1; }; \
	echo "bench-smoke: BENCH_prepare.json schema + zero-drift invariant — OK"; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e20 \
		>/dev/null || { echo "bench-smoke: e20 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-storage BENCH_storage.json || \
		{ echo "bench-smoke: BENCH_storage.json failed schema validation"; exit 1; }; \
	echo "bench-smoke: BENCH_storage.json schema + open-speedup + lazy-fault invariants — OK"

# The grounded-WMC equivalence suite on its own: the clause-database
# counter against brute force and the tree DPLL reference across the
# cache/components config matrix, including the deterministic guard-trip
# fault injection ("guard trips mid-solve degrade cleanly").
check-wmc: build
	dune exec --no-build test/main.exe -- test 'cnf|wmc' -c

# The observability suite: trace/metrics/histogram unit and property
# tests, then an end-to-end run — `probdb eval --trace` on a star query
# must produce Chrome trace_event JSON that passes the validator.
check-trace: build
	@dune exec --no-build test/main.exe -- test 'trace|metrics|obs' -c || \
		{ echo "check-trace: unit/property suites failed"; exit 1; }; \
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	dune exec --no-build bin/probdb.exe -- gen --out "$$tmp/db" --domain 8 --seed 5 \
		R:1:0.5 S:2:0.3 T:1:0.5 >/dev/null; \
	dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/db" \
		--trace "$$tmp/trace.json" \
		"exists x y. R(x) && S(x,y) && T(y)" >/dev/null || \
		{ echo "check-trace: eval --trace failed"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-trace "$$tmp/trace.json" || \
		{ echo "check-trace: emitted trace failed validation"; exit 1; }; \
	echo "check-trace: suites + end-to-end trace schema — OK"

# The serving suite at soak scale plus the E17 load generator: PROBDB_SOAK=1
# widens the multi-client test to 8 clients x 200 rounds (bit-identical
# answers, zero sheds on an uncontended server), then the closed-loop bench
# runs at smoke sizes and BENCH_serve.json must pass the schema validator —
# the serving counterpart of --validate-trace (docs/SERVING.md).
check-serve: build
	@timeout 300 env PROBDB_SOAK=1 dune exec --no-build test/main.exe -- test serve || \
		{ echo "check-serve: serve suite failed under soak (exit $$?)"; exit 1; }; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e17 \
		>/dev/null || { echo "check-serve: e17 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-serve BENCH_serve.json || \
		{ echo "check-serve: BENCH_serve.json failed schema validation"; exit 1; }; \
	echo "check-serve: soak suite + load-gen schema + all requests answered — OK"

# The observability gate: the windowed-aggregation and request-id unit
# suite, the request-correlation serve tests, then the E21 overhead
# experiment at smoke sizes — BENCH_obs.json must pass the schema
# validator, which also asserts the telemetry contract: overhead within
# budget, request-id coverage 1.0, live windows, exact counters.
check-obs: build
	@timeout 300 dune exec --no-build test/main.exe -- test window || \
		{ echo "check-obs: window/request-id suite failed (exit $$?)"; exit 1; }; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e21 \
		>/dev/null || { echo "check-obs: e21 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-obs BENCH_obs.json || \
		{ echo "check-obs: BENCH_obs.json failed schema validation"; exit 1; }; \
	echo "check-obs: window suite + telemetry overhead budget + id coverage — OK"

# The chaos-engineering suite: the deterministic fault-injection tests
# (seeded schedules, the self-healing worker pool, the resilient client),
# then the E18 chaos soak at smoke sizes — BENCH_chaos.json must pass the
# schema validator, which also asserts the robustness contract: every
# request accounted for, faults injected at >= 5 sites, the server alive
# at the end, and chaos-disabled answers bit-identical to the control.
# PROBDB_SOAK=1 turns the smoke soak into the long one (25k requests per
# fault-rate level) — same invariants, hours of wall-clock headroom.
check-chaos: build
	@timeout 300 dune exec --no-build test/main.exe -- test chaos || \
		{ echo "check-chaos: chaos suite failed (exit $$?)"; exit 1; }; \
	if [ -n "$$PROBDB_SOAK" ]; then \
		timeout 3600 env PROBDB_SOAK=1 dune exec --no-build bench/main.exe -- e18 \
			>/dev/null || { echo "check-chaos: e18 soak failed or hung (exit $$?)"; exit 1; }; \
	else \
		timeout 300 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e18 \
			>/dev/null || { echo "check-chaos: e18 failed or hung (exit $$?)"; exit 1; }; \
	fi; \
	dune exec --no-build bench/compare.exe -- --validate-chaos BENCH_chaos.json || \
		{ echo "check-chaos: BENCH_chaos.json failed schema validation"; exit 1; }; \
	echo "check-chaos: chaos suite + seeded soak + schema — OK"

# The prepared-queries suite both ways round, then the E19 bench: the
# prepare tests must pass with the cache on AND with PROBDB_NO_PLAN_CACHE=1
# (capacity-0 default cache — identical pipeline, nothing retained), and
# BENCH_prepare.json must pass the schema validator, which also asserts the
# cache contract: warm >= 2x faster than cold (1.2x at smoke sizes), served
# hit rate >= 0.9 on repeated templates, and zero answer drift.
check-prepare: build
	@timeout 300 dune exec --no-build test/main.exe -- test prepare || \
		{ echo "check-prepare: prepare suite failed (exit $$?)"; exit 1; }; \
	timeout 300 env PROBDB_NO_PLAN_CACHE=1 dune exec --no-build test/main.exe -- test prepare || \
		{ echo "check-prepare: prepare suite failed with the cache disabled"; exit 1; }; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e19 \
		>/dev/null || { echo "check-prepare: e19 failed or hung (exit $$?)"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --validate-prepare BENCH_prepare.json || \
		{ echo "check-prepare: BENCH_prepare.json failed schema validation"; exit 1; }; \
	echo "check-prepare: suite both cache modes + warm speedup + zero drift — OK"

# The packed-storage suite at soak scale (the concurrent serve test reads
# one shared mapped container from every worker), then an end-to-end CLI
# check: gen a CSV directory, pack it with full checksum verification,
# and the packed eval must print byte-identical output to the CSV eval;
# a corrupt copy (one flipped header byte) must be rejected with the
# typed Io diagnostic, exit code 2.
check-storage: build
	@timeout 300 env PROBDB_SOAK=1 dune exec --no-build test/main.exe -- test storage || \
		{ echo "check-storage: storage suite failed under soak (exit $$?)"; exit 1; }; \
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	q='exists x y. R(x) && S(x,y) && T(y)'; \
	dune exec --no-build bin/probdb.exe -- gen --out "$$tmp/db" --domain 12 --seed 9 \
		R:1:0.5 S:2:0.3 T:1:0.5 >/dev/null; \
	dune exec --no-build bin/probdb.exe -- pack "$$tmp/db" "$$tmp/db.pdb" --verify >/dev/null || \
		{ echo "check-storage: pack --verify failed"; exit 1; }; \
	dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/db" "$$q" > "$$tmp/csv.out" || \
		{ echo "check-storage: csv eval failed"; exit 1; }; \
	dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/db.pdb" "$$q" > "$$tmp/pdb.out" || \
		{ echo "check-storage: packed eval failed"; exit 1; }; \
	cmp -s "$$tmp/csv.out" "$$tmp/pdb.out" || \
		{ echo "check-storage: packed answer differs from csv answer"; \
		  diff "$$tmp/csv.out" "$$tmp/pdb.out"; exit 1; }; \
	cp "$$tmp/db.pdb" "$$tmp/bad.pdb"; \
	printf 'X' | dd of="$$tmp/bad.pdb" bs=1 seek=70 conv=notrunc 2>/dev/null; \
	dune exec --no-build bin/probdb.exe -- eval --db "$$tmp/bad.pdb" "$$q" \
		>/dev/null 2>"$$tmp/bad.err"; code=$$?; \
	[ $$code -eq 2 ] || \
		{ echo "check-storage: corrupt container exited $$code, want 2"; \
		  cat "$$tmp/bad.err"; exit 1; }; \
	grep -qi 'checksum\|corrupt' "$$tmp/bad.err" || \
		{ echo "check-storage: corrupt container lacked a typed diagnostic"; \
		  cat "$$tmp/bad.err"; exit 1; }; \
	echo "check-storage: soak suite + bit-identical CLI roundtrip + typed corruption — OK"

# The bench regression gate, self-tested both ways: two smoke runs of the
# same experiment must pass the comparison (threshold 4x absorbs smoke-run
# noise), and a synthetically regressed copy (timings x25) must fail it.
bench-compare: build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e16 \
		>/dev/null || { echo "bench-compare: e16 run 1 failed"; exit 1; }; \
	cp BENCH_wmc.json "$$tmp/old.json"; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e16 \
		>/dev/null || { echo "bench-compare: e16 run 2 failed"; exit 1; }; \
	cp BENCH_wmc.json "$$tmp/new.json"; \
	dune exec --no-build bench/compare.exe -- "$$tmp/old.json" "$$tmp/new.json" \
		--threshold 4 || \
		{ echo "bench-compare: real pair flagged as regression"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- --degrade 25 "$$tmp/old.json" \
		"$$tmp/bad.json" >/dev/null; \
	if dune exec --no-build bench/compare.exe -- "$$tmp/old.json" "$$tmp/bad.json" \
		--threshold 4 >/dev/null; then \
		echo "bench-compare: synthetic regression NOT caught"; exit 1; \
	fi; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e17 \
		>/dev/null || { echo "bench-compare: e17 run 1 failed"; exit 1; }; \
	cp BENCH_serve.json "$$tmp/serve-old.json"; \
	timeout 120 env PROBDB_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- e17 \
		>/dev/null || { echo "bench-compare: e17 run 2 failed"; exit 1; }; \
	dune exec --no-build bench/compare.exe -- "$$tmp/serve-old.json" BENCH_serve.json \
		--threshold 4 --min-s 0.01 || \
		{ echo "bench-compare: serve pair flagged as regression"; exit 1; }; \
	echo "bench-compare: wmc + serve pairs pass, synthetic x25 regression caught — OK"

# What CI runs: build, test suite, the budget and benchmark smoke tests,
# the WMC equivalence suite, the observability suite, the serving soak,
# the chaos-engineering suite, the prepared-queries suite, the
# packed-storage suite, and — when odoc is installed — the
# fatal-warnings documentation build.
check: build test check-budget bench-smoke check-wmc check-trace check-serve check-chaos check-prepare check-storage check-obs
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @check-docs; \
	else \
		echo "odoc not installed; skipping @check-docs (opam install odoc)"; \
	fi
