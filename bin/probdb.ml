(* The probdb command-line interface.

   A TID lives on disk as a directory of CSV files (one per relation, rows
   are "v1,...,vk,probability") or as a packed binary container (.pdb,
   written by `probdb pack`, opened via mmap in O(header) time). Every
   --db flag accepts either form. Queries are first-order sentences in
   the concrete syntax of Probdb_logic.Parser.

     probdb eval     --db data/ --stats "exists x y. R(x) && S(x,y)"
     probdb explain  --db data/ "exists x y. R(x) && S(x,y)"
     probdb prepare  "exists x y. R(x) && S(x,y) && T('a',y)"
     probdb classify "forall x y. R(x) || S(x,y) || T(y)"
     probdb plan     --db data/ "exists x y. R(x) && S(x,y) && T(y)"
     probdb lineage  --db data/ "exists x y. R(x) && S(x,y)"
     probdb compile  --db data/ "exists x y. R(x) && S(x,y)"
     probdb pack     data/ data.pdb
     probdb serve    --db data.pdb
     probdb gen      --out data/ --domain 10 R:1:0.5 S:2:0.3 *)

open Cmdliner

module Core = Probdb_core
module Err = Probdb_core.Probdb_error
module L = Probdb_logic
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module P = Probdb_plans
module Obs = Probdb_obs
module Stats = Probdb_obs.Stats
module Prepare = Probdb_prepare.Prepare
module Serve = Probdb_serve.Serve
module Top = Probdb_serve.Top
module Serve_client = Probdb_serve.Client
module Storage = Probdb_storage.Storage

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"The query sentence.")

(* A plain string, not [Arg.dir]: a missing path must reach the typed
   I/O error path (exit 2), not cmdliner's generic CLI error. *)
let db_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"DB"
        ~doc:
          "The TID: a directory of CSV relations (one file per relation) or \
           a packed container written by $(b,probdb pack) (opened via mmap \
           in O(header) time; the format is sniffed).")

let free_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "free" ] ~docv:"VARS" ~doc:"Comma-separated free variables of a non-Boolean query.")

(* Usage-class failure: rendered by the top-level handler, exit code 5. *)
let fail fmt = Printf.ksprintf (fun s -> Err.raise_ (Err.Usage { message = s })) fmt

let with_query ?(free = []) text k =
  match L.Parser.parse ~free text with
  | q -> k q
  | exception L.Parser.Error msg -> Err.raise_ (Err.Parse { message = msg })

(* Typed [Io]/[Csv] errors propagate to the top-level handler. *)
let with_db path k = k (Core.Csv_io.load_any path)

(* When the TID came from a packed container, record what opening and
   evaluating actually cost against the mapped file. *)
let record_storage db (stats : Stats.t) =
  match Storage.backing db with
  | None -> ()
  | Some st ->
      stats.Stats.storage <-
        Some
          { Stats.st_path = Storage.path st;
            st_file_bytes = Storage.file_size st;
            st_open_s = Storage.open_seconds st;
            st_bytes_mapped = Storage.bytes_mapped st;
            st_cols_mapped = Storage.cols_mapped st;
            st_rels_materialized = Storage.relations_materialized st }

(* ---------- eval ---------- *)

let strategy_conv =
  let parse = function
    | "auto" -> Ok None
    | s -> (
        match E.strategy_of_name s with
        | Some strategy -> Ok (Some strategy)
        | None -> Error (`Msg (Printf.sprintf "unknown method %S" s)))
  in
  Arg.conv (parse, fun ppf m ->
      Format.pp_print_string ppf
        (match m with None -> "auto" | Some s -> E.strategy_name s))

let method_arg =
  Arg.(
    value
    & opt strategy_conv None
    & info [ "method" ] ~docv:"METHOD"
        ~doc:
          "One of auto, lifted, symmetric, safe-plan, read-once, wmc, obdd, \
           dpll, karp-luby, world-enum. ($(b,wmc) is the clause-database \
           counter; explicitly selected it clausifies non-CNF lineage.)")

let samples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "samples" ] ~docv:"N"
        ~doc:
          "Sample budget for karp-luby (default 100000 as a strategy, 20000 \
           as the degraded fallback).")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline for exact inference, in milliseconds. When it \
           trips, the engine degrades to the (eps,delta)-approximation.")

let eps_arg =
  Arg.(
    value
    & opt float 0.1
    & info [ "eps" ] ~docv:"EPS"
        ~doc:"Relative error target of the degraded approximation.")

let delta_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "delta" ] ~docv:"DELTA"
        ~doc:"Failure probability of the degraded approximation.")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Fail (exit 6 or 7) instead of degrading to the \
           (eps,delta)-approximation when exact inference is exhausted.")

let max_ie_terms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-ie-terms" ] ~docv:"N"
        ~doc:"Budget on lifted inclusion-exclusion terms.")

let max_plan_rows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-plan-rows" ] ~docv:"N"
        ~doc:"Budget on intermediate plan rows.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "OCaml domains for parallel evaluation (default 1, sequential). \
           Above 1, lifted inference forks independent branches and \
           karp-luby samples in parallel batches; sampling results are \
           identical for a given --seed at any domain count.")

let no_plan_cache_arg =
  Arg.(
    value & flag
    & info [ "no-plan-cache" ]
        ~doc:
          "Run the prepared pipeline without retaining compiled plans (a \
           capacity-0 cache): every evaluation re-prepares from scratch. The \
           pipeline is identical either way, so answers never change — only \
           the prepare timings do. Setting $(b,PROBDB_NO_PLAN_CACHE) in the \
           environment does the same.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Trace lifted-inference rule applications.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print per-query statistics (phase timings, rule counts, circuit sizes).")

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:"Emit the per-query statistics as JSON on stdout (schema: docs/STATS.md).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record an event trace of the evaluation and write it to $(docv) \
           as Chrome trace_event JSON (open in Perfetto or chrome://tracing; \
           schema: docs/TRACING.md).")

let metrics_json_arg =
  Arg.(
    value & flag
    & info [ "metrics-json" ]
        ~doc:
          "After the evaluation, emit the process-wide metrics registry \
           (counters, gauges, histograms) as JSON on stdout.")

let setup_verbose verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Lift.log_src (Some Logs.Debug)
  end

(* Parse into the stats record so [--stats] reports parse time too. *)
let with_timed_query stats ?(free = []) text k =
  match Stats.time_phase stats Stats.Parse (fun () -> L.Parser.parse ~free text) with
  | q -> k q
  | exception L.Parser.Error msg -> Err.raise_ (Err.Parse { message = msg })

let print_stats_json stats = print_endline (Obs.Json.to_string ~pretty:true (Stats.to_json stats))

let config_of_cli meth samples deadline_ms eps delta no_degrade max_ie_terms
    max_plan_rows domains =
  let default_fallback_samples =
    match E.default_config.E.degrade with Some d -> d.E.max_samples | None -> 20_000
  in
  let base =
    { E.default_config with
      E.kl_samples = Option.value samples ~default:E.default_config.E.kl_samples }
  in
  let base = match meth with None -> base | Some s -> { base with E.strategies = [ s ] } in
  let degrade =
    (* An explicit --method karp-luby runs sampling as the strategy itself,
       not as a degradation. *)
    if no_degrade || meth = Some E.Karp_luby then None
    else
      Some
        { E.eps;
          delta;
          max_samples = Option.value samples ~default:default_fallback_samples }
  in
  { base with
    E.deadline_s = Option.map (fun ms -> float_of_int ms /. 1000.0) deadline_ms;
    max_ie_terms;
    max_plan_rows;
    degrade;
    domains = max 1 domains }

let eval_run db_dir text free meth samples deadline_ms eps delta no_degrade
    max_ie_terms max_plan_rows domains no_plan_cache verbose show_stats
    stats_json trace_file metrics_json =
  setup_verbose verbose;
  if trace_file <> None then Obs.Trace.enable ();
  (* The trace file is written also when the evaluation raises — a trace of
     the failing run is exactly what one wants to look at. *)
  Fun.protect
    ~finally:(fun () ->
      match trace_file with
      | Some path ->
          Obs.Trace.disable ();
          (* typed Io error (exit 2) on an unwritable path, not a raw
             [Sys_error] escaping through [Fun.Finally_raised] *)
          Err.guard_io ~path (fun () -> Obs.Trace.write path)
      | None -> ())
  @@ fun () ->
  Obs.Trace.with_span ~cat:"engine" "probdb.eval" @@ fun () ->
  with_db db_dir @@ fun db ->
  let stats = Stats.create () in
  stats.Stats.query <- Some text;
  with_timed_query stats ~free text @@ fun q ->
  (* the prepared pipeline always runs; [--no-plan-cache] only drops
     retention (capacity 0), so a non-Boolean query's groundings share one
     cached artifact unless caching is off *)
  let plan_cache =
    if no_plan_cache then Prepare.Cache.create ~capacity:0 ()
    else Prepare.Cache.create_default ()
  in
  let config =
    { (config_of_cli meth samples deadline_ms eps delta no_degrade max_ie_terms
         max_plan_rows domains)
      with E.plan_cache = Some plan_cache }
  in
  let finish () =
    if metrics_json then
      print_endline (Obs.Json.to_string ~pretty:true (Obs.Metrics.to_json ()));
    `Ok ()
  in
  match free with
  | [] -> (
      match E.eval ~config ~stats db q with
      | Ok a ->
          record_storage db a.Answer.stats;
          if stats_json then print_stats_json a.Answer.stats
          else begin
            Format.printf "%a@." Answer.pp a;
            if show_stats then Format.printf "%a" Stats.pp a.Answer.stats
          end;
          finish ()
      | Error e -> Err.raise_ e)
  | _ ->
      let answers = E.answers ~config ~free db q in
      List.iter (fun (_, (r : E.report)) -> record_storage db r.E.stats) answers;
      if stats_json then
        print_endline
          (Obs.Json.to_string ~pretty:true
             (Obs.Json.Obj
                [ ("query", Obs.Json.Str text);
                  ( "bindings",
                    Obs.Json.List
                      (List.map
                         (fun (binding, (r : E.report)) ->
                           Obs.Json.Obj
                             [ ( "binding",
                                 Obs.Json.List
                                   (List.map
                                      (fun v -> Obs.Json.Str (Core.Value.to_string v))
                                      binding) );
                               ("stats", Stats.to_json r.E.stats) ])
                         answers) ) ]))
      else
        List.iter
          (fun (binding, r) ->
            Format.printf "%s -> %a@."
              (String.concat ", " (List.map Core.Value.to_string binding))
              E.pp_report r;
            if show_stats then Format.printf "%a" Stats.pp r.E.stats)
          answers;
      finish ()

let eval_cmd =
  let term =
    Term.(
      ret
        (const eval_run $ db_arg $ query_arg $ free_arg $ method_arg $ samples_arg
       $ deadline_arg $ eps_arg $ delta_arg $ no_degrade_arg $ max_ie_terms_arg
       $ max_plan_rows_arg $ domains_arg $ no_plan_cache_arg $ verbose_arg
       $ stats_arg $ stats_json_arg $ trace_arg $ metrics_json_arg))
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a query's probability on a TID.") term

(* ---------- explain ---------- *)

(* A Logs reporter that appends every rendered message to a list — used to
   capture the lifted-inference derivation trace for [probdb explain]. *)
let capture_reporter out =
  { Logs.report =
      (fun _src _level ~over k msgf ->
        msgf (fun ?header:_ ?tags:_ fmt ->
            Format.kasprintf
              (fun s ->
                out s;
                over ();
                k ())
              fmt)) }

let explain_run db_dir text deadline_ms eps delta no_degrade =
  with_db db_dir @@ fun db ->
  let stats = Stats.create () in
  stats.Stats.query <- Some text;
  with_timed_query stats text @@ fun q ->
  Format.printf "query:     %a@." L.Fo.pp q;
  (match L.Ucq.of_sentence q with
  | ucq, mode ->
      Format.printf "UCQ form:  %a (%s)@." L.Ucq.pp ucq
        (match mode with L.Ucq.Direct -> "direct" | L.Ucq.Complemented -> "complemented")
  | exception L.Ucq.Unsupported msg ->
      Format.printf "UCQ form:  outside the unate fragment (%s)@." msg);
  let verdict, _ =
    Stats.time_phase stats Stats.Classify (fun () -> (Lift.classify q, ()))
  in
  Format.printf "safety:    %a@." Lift.pp_verdict verdict;
  (* run the engine while capturing the lifted derivation *)
  let trace = ref [] in
  let saved_reporter = Logs.reporter () in
  Logs.set_reporter (capture_reporter (fun s -> trace := s :: !trace));
  Logs.Src.set_level Lift.log_src (Some Logs.Debug);
  let config = config_of_cli None None deadline_ms eps delta no_degrade None None 1 in
  let result = E.eval ~config ~stats db q in
  Logs.Src.set_level Lift.log_src None;
  Logs.set_reporter saved_reporter;
  match result with
  | Error e -> Err.raise_ e
  | Ok a ->
      Format.printf "strategy:  %s%s@." a.Answer.strategy
        (if a.Answer.degraded then " (degraded from exact inference)" else "");
      (match a.Answer.confidence with
      | Some c ->
          Format.printf "answer:    %.9g in [%.9g, %.9g] at confidence %g (%d samples)@."
            a.Answer.value c.Answer.ci_low c.Answer.ci_high (1.0 -. c.Answer.delta)
            c.Answer.samples
      | None ->
          Format.printf "answer:    %.9g%s%s@." a.Answer.value
            (if a.Answer.exact then " (exact)" else "")
            (match a.Answer.stats.Stats.std_error with
            | Some e when not a.Answer.exact ->
                Printf.sprintf " (±%.2g at 95%%)" (1.96 *. e)
            | _ -> ""));
      List.iter
        (fun step -> Format.printf "chain:     %a@." Answer.pp_step step)
        a.Answer.chain;
      let derivation = List.rev !trace in
      if derivation <> [] then begin
        Format.printf "@.lifted-rule derivation:@.";
        List.iter (fun line -> Format.printf "  %s@." line) derivation
      end;
      (* for safe plans, show the plan itself *)
      (if String.equal a.Answer.strategy (E.strategy_name E.Safe_plan) then
         match L.Ucq.of_sentence q with
         | ucq, L.Ucq.Direct -> (
             match L.Ucq.minimize ucq with
             | [ cq ] -> (
                 match P.Plan.safe_plan cq with
                 | Some plan -> Format.printf "@.safe plan: %s@." (P.Plan.to_string plan)
                 | None -> ())
             | _ -> ())
         | _ | (exception L.Ucq.Unsupported _) -> ());
      (match a.Answer.stats.Stats.circuit with
      | Some c ->
          Format.printf "@.compiled circuit: %s, %d nodes, %d edges@."
            c.Stats.circuit_class c.Stats.nodes c.Stats.edges
      | None -> ());
      Format.printf "@.--- stats ---@.%a" Stats.pp a.Answer.stats;
      `Ok ()

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain how a query is evaluated: strategy choice, the degradation \
          chain (skips and resource trips), the lifted-rule derivation trace, \
          the safe plan or compiled-circuit size, and per-phase timings.")
    Term.(
      ret
        (const explain_run $ db_arg $ query_arg $ deadline_arg $ eps_arg $ delta_arg
       $ no_degrade_arg))

(* ---------- prepare ---------- *)

let prepare_run text free =
  with_query ~free text @@ fun q ->
  let key, params = Prepare.key_of_query q in
  Format.printf "key:        %s@." key;
  Format.printf "parameters: %d%s@." (Array.length params)
    (if Array.length params = 0 then ""
     else
       Printf.sprintf " (%s)"
         (String.concat ", "
            (List.map Core.Value.to_string (Array.to_list params))));
  if not (L.Fo.is_sentence q) then begin
    (* open formulas are evaluated per grounding ([--free]); each grounding
       binds different constants into the same structural key, so one
       cached artifact serves all of them *)
    Format.printf
      "open formula: prepared per grounding at execution; every grounding \
       shares the artifact cached under this key@.";
    `Ok ()
  end
  else begin
    let b = Prepare.prepare q in
    let a = b.Prepare.artifact in
    (match Prepare.bind_ucq b with
    | Ok (ucq, mode) ->
        Format.printf "UCQ form:   %a (%s)@." L.Ucq.pp ucq
          (match mode with
          | L.Ucq.Direct -> "direct"
          | L.Ucq.Complemented -> "complemented")
    | Error msg -> Format.printf "UCQ form:   outside the unate fragment (%s)@." msg);
    (* verdict details mention template constants; render the internal
       NUL-prefixed parameter markers as the $i of the key *)
    let verdict_s =
      let s = Format.asprintf "%a" Lift.pp_verdict a.Prepare.verdict in
      let b = Buffer.create (String.length s) in
      String.iteri
        (fun i c ->
          if c = '\x00' then begin
            if i + 1 < String.length s && s.[i + 1] = 'p' then
              Buffer.add_char b '$'
          end
          else if not (c = 'p' && i > 0 && s.[i - 1] = '\x00') then
            Buffer.add_char b c)
        s;
      Buffer.contents b
    in
    Format.printf "safety:     %s@." verdict_s;
    (match Prepare.bind_plan b with
    | Some plan ->
        Format.printf "safe plan:  %s@." (P.Plan.to_string plan);
        Format.printf
          "execution:  warm cache hits promote safe-plan to the front and \
           run this plan directly (parse/classify/plan read ~0)@."
    | None ->
        Format.printf "safe plan:  none cached (%s)@."
          (Option.value a.Prepare.plan_skip ~default:"not a single CQ"));
    `Ok ()
  end

let prepare_cmd =
  Cmd.v
    (Cmd.info "prepare"
       ~doc:
         "Show what the prepare/execute split caches for a query: the \
          structural key (constants lifted to \\$i parameters), the \
          parameter binding, the cached UCQ form, the safety verdict, and \
          the compiled template plan (if any). The same key is what \
          $(b,probdb eval) and $(b,probdb serve) share plans under.")
    Term.(ret (const prepare_run $ query_arg $ free_arg))

(* ---------- classify ---------- *)

let classify_run text =
  with_query text @@ fun q ->
  Format.printf "query: %a@." L.Fo.pp q;
  Format.printf "monotone: %b, unate: %b@." (L.Fo.is_monotone q) (L.Fo.is_unate q);
  (match L.Ucq.of_sentence q with
  | ucq, mode ->
      Format.printf "UCQ form (%s): %a@."
        (match mode with L.Ucq.Direct -> "direct" | L.Ucq.Complemented -> "complemented")
        L.Ucq.pp ucq;
      (match L.Ucq.minimize ucq with
      | [ cq ] when L.Cq.is_self_join_free cq ->
          Format.printf "single self-join-free CQ: %s (Thm 4.3)@."
            (if L.Cq.is_hierarchical cq then "hierarchical => PTIME"
             else "non-hierarchical => #P-hard")
      | _ -> ())
  | exception L.Ucq.Unsupported msg -> Format.printf "outside the unate fragment: %s@." msg);
  Format.printf "lifted rules: %a@." Lift.pp_verdict (Lift.classify q);
  Format.printf "basic rules only: %a@." Lift.pp_verdict
    (Lift.classify ~config:Lift.basic_rules_only q);
  `Ok ()

let classify_cmd =
  Cmd.v
    (Cmd.info "classify" ~doc:"Report the data complexity of a query (dichotomy).")
    Term.(ret (const classify_run $ query_arg))

(* ---------- plan ---------- *)

let plan_run db_dir text =
  with_db db_dir @@ fun db ->
  with_query text @@ fun q ->
  match L.Ucq.of_sentence q with
  | exception L.Ucq.Unsupported msg -> fail "not a UCQ: %s" msg
  | ucq, mode -> (
      if mode = L.Ucq.Complemented then fail "plans need an existential query"
      else
        match L.Ucq.minimize ucq with
        | [ cq ] when L.Cq.is_self_join_free cq ->
            (match P.Plan.safe_plan cq with
            | Some plan ->
                Format.printf "safe plan: %s@." (P.Plan.to_string plan);
                Format.printf "p(Q) = %.9g (exact)@." (P.Plan.boolean_prob db plan)
            | None ->
                Format.printf "no safe plan (query is not hierarchical)@.";
                let b = P.Bounds.bracket db cq in
                Format.printf "bounds over %d plans (Thm 6.1): %.9g <= p(Q) <= %.9g@."
                  b.P.Bounds.plans_tried b.P.Bounds.lower b.P.Bounds.upper;
                List.iter
                  (fun plan ->
                    Format.printf "  %-50s value %.9g%s@." (P.Plan.to_string plan)
                      (P.Plan.boolean_prob db plan)
                      (if P.Plan.is_safe plan then " (safe)" else ""))
                  (P.Plan.enumerate cq));
            `Ok ()
        | _ -> fail "plans support single self-join-free CQs")

let plan_cmd =
  Cmd.v
    (Cmd.info "plan" ~doc:"Show safe plans or Thm 6.1 bounds for a CQ.")
    Term.(ret (const plan_run $ db_arg $ query_arg))

(* ---------- lineage ---------- *)

let dnf_flag =
  Arg.(value & flag & info [ "dnf" ] ~doc:"Print the DNF clauses instead of the formula.")

let lineage_run db_dir text dnf =
  with_db db_dir @@ fun db ->
  with_query text @@ fun q ->
  let ctx = Lineage.create db in
  if dnf then
    match L.Ucq.of_sentence q with
    | exception L.Ucq.Unsupported msg -> fail "not a UCQ: %s" msg
    | ucq, _ ->
        let clauses = Lineage.dnf_of_ucq ctx ucq in
        List.iter
          (fun clause ->
            print_endline
              (String.concat " & "
                 (List.map
                    (fun v -> Probdb_boolean.Var_pool.label (Lineage.pool ctx) v)
                    clause)))
          clauses;
        Printf.printf "(%d clauses)\n" (List.length clauses);
        `Ok ()
  else begin
    let f = Lineage.of_query ctx q in
    let label v = Probdb_boolean.Var_pool.label (Lineage.pool ctx) v in
    Format.printf "%a@." (Probdb_boolean.Formula.pp ~label ()) f;
    Printf.printf "(%d variables, %d nodes)\n"
      (Probdb_boolean.Formula.var_count f)
      (Probdb_boolean.Formula.size f);
    `Ok ()
  end

let lineage_cmd =
  Cmd.v
    (Cmd.info "lineage" ~doc:"Ground a query into its Boolean lineage.")
    Term.(ret (const lineage_run $ db_arg $ query_arg $ dnf_flag))

(* ---------- compile ---------- *)

let compile_run db_dir text =
  with_db db_dir @@ fun db ->
  with_query text @@ fun q ->
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx q in
  Printf.printf "lineage: %d variables, %d nodes\n"
    (Probdb_boolean.Formula.var_count f) (Probdb_boolean.Formula.size f);
  let m = Probdb_kc.Obdd.manager ~max_nodes:5_000_000 ~order:(Probdb_kc.Obdd.default_order f) () in
  (match Probdb_kc.Obdd.of_formula m f with
  | bdd ->
      Printf.printf "OBDD: %d nodes, wmc = %.9g\n" (Probdb_kc.Obdd.size bdd)
        (Probdb_kc.Obdd.wmc m (Lineage.prob ctx) bdd)
  | exception Probdb_kc.Obdd.Node_limit n -> Printf.printf "OBDD: exceeded %d nodes\n" n);
  let r = Probdb_dpll.Dpll.count ~prob:(Lineage.prob ctx) f in
  Printf.printf
    "decision-DNNF trace: %d nodes (%d decisions, %d cache hits, %d component splits), wmc = %.9g\n"
    r.Probdb_dpll.Dpll.trace_size r.Probdb_dpll.Dpll.stats.Probdb_dpll.Dpll.decisions
    r.Probdb_dpll.Dpll.stats.Probdb_dpll.Dpll.cache_hits
    r.Probdb_dpll.Dpll.stats.Probdb_dpll.Dpll.component_splits r.Probdb_dpll.Dpll.prob;
  `Ok ()

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a query's lineage to OBDD and decision-DNNF.")
    Term.(ret (const compile_run $ db_arg $ query_arg))

(* ---------- serve ---------- *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address (an IP literal).")

let port_arg =
  Arg.(
    value
    & opt int 7433
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port; 0 picks an ephemeral port (printed on startup).")

let workers_arg =
  Arg.(
    value
    & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains draining the request queue (engine concurrency).")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Request-queue bound. A full queue sheds requests with a typed \
           $(b,overloaded) error instead of queueing unboundedly.")

let degrade_above_arg =
  Arg.(
    value
    & opt int 48
    & info [ "degrade-above" ] ~docv:"N"
        ~doc:
          "Queue-depth watermark above which admitted requests are answered \
           with the certified (eps,delta)-approximation instead of exact \
           inference; 0 disables degradation under load.")

let serve_deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline applied when a request carries none. \
           Queue wait counts against it (admission control).")

let stall_deadline_arg =
  Arg.(
    value
    & opt int 30_000
    & info [ "stall-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Worker stall watchdog: a worker busy on one request past this \
           deadline is abandoned (the request answered with a typed \
           $(b,internal) error) and a replacement worker domain is spawned. \
           0 disables the watchdog.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED:RATE[:SITES]"
        ~doc:
          "Arm deterministic fault injection: every named chaos site \
           (accept/read/write faults, worker crashes and stalls, guard \
           trips) fails with probability RATE on a schedule derived from \
           SEED — the same seed and rate replay the same injections \
           (docs/SERVING.md, chaos runbook). An optional comma-separated \
           SITES list restricts injection to those sites. Equivalent to \
           setting $(b,PROBDB_CHAOS).")

let slow_query_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-query-ms" ] ~docv:"MS"
        ~doc:
          "Log requests taking MS milliseconds or longer as NDJSON records \
           (request_id, strategy chain, phase timings, verdict — schema in \
           docs/SERVING.md). 0 logs every request.")

let slow_query_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-query-log" ] ~docv:"PATH"
        ~doc:
          "Append slow-query records to PATH instead of stderr (requires \
           $(b,--slow-query-ms)).")

let openmetrics_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "openmetrics" ] ~docv:"PORT"
        ~doc:
          "Also serve a Prometheus/OpenMetrics text exposition over HTTP on \
           PORT (0 picks an ephemeral port, printed on startup).")

let slo_p99_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slo-p99-ms" ] ~docv:"MS"
        ~doc:
          "p99 latency objective: requests over MS milliseconds count \
           against a 1% miss budget, reported as the rolling \
           $(b,p99_burn_rate) gauge.")

let slo_availability_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slo-availability" ] ~docv:"FRAC"
        ~doc:
          "Availability objective in (0, 1), e.g. 0.999: errors plus shed \
           requests against the failure budget is the rolling \
           $(b,availability_burn_rate) gauge.")

let no_telemetry_arg =
  Arg.(
    value & flag
    & info [ "no-telemetry" ]
        ~doc:
          "Disable windowed metrics and server-side request-id minting \
           (client-supplied request ids still propagate). The overhead \
           bench's baseline.")

let serve_run db_dir host port workers queue degrade_above deadline_ms
    stall_deadline_ms chaos eps delta samples no_plan_cache slow_query_ms
    slow_query_log openmetrics slo_p99_ms slo_availability no_telemetry =
  (match chaos with
  | None -> ()
  | Some s -> (
      match Probdb_chaos.Chaos.parse_cli s with
      | Ok (spec, only) -> Probdb_chaos.Chaos.arm ?only spec
      | Error msg -> fail "--chaos: %s" msg));
  (match slow_query_ms with
  | Some ms when ms < 0.0 -> fail "--slow-query-ms: must be >= 0"
  | _ -> ());
  (match slo_availability with
  | Some a when not (a > 0.0 && a < 1.0) ->
      fail "--slo-availability: must be in (0, 1)"
  | _ -> ());
  (match (slow_query_log, slow_query_ms) with
  | Some _, None -> fail "--slow-query-log requires --slow-query-ms"
  | _ -> ());
  with_db db_dir @@ fun db ->
  let engine =
    let default_fallback_samples =
      match E.default_config.E.degrade with Some d -> d.E.max_samples | None -> 20_000
    in
    { E.default_config with
      E.kl_samples = Option.value samples ~default:E.default_config.E.kl_samples;
      degrade =
        Some
          { E.eps;
            delta;
            max_samples = Option.value samples ~default:default_fallback_samples };
      (* [None] lets [Serve.start] create the shared default-capacity cache
         (honouring PROBDB_NO_PLAN_CACHE); the flag forces capacity 0 *)
      plan_cache =
        (if no_plan_cache then Some (Prepare.Cache.create ~capacity:0 ())
         else None)
    }
  in
  let config =
    { Serve.host;
      port;
      workers;
      queue_capacity = queue;
      degrade_above;
      default_deadline_ms = deadline_ms;
      worker_stall_deadline_ms = stall_deadline_ms;
      engine;
      telemetry = not no_telemetry;
      slow_query_ms;
      slow_query_log;
      openmetrics_port = openmetrics;
      slo_p99_ms;
      slo_availability }
  in
  let server = Serve.start ~config db in
  Printf.printf
    "probdb serve: listening on %s:%d (%d workers, queue %d, degrade above %d)\n%!"
    host (Serve.port server) workers queue degrade_above;
  (match Serve.openmetrics_port server with
  | Some p -> Printf.printf "probdb serve: openmetrics on http://%s:%d/\n%!" host p
  | None -> ());
  (* SIGINT/SIGTERM drain: stop accepting, finish in-flight work, exit 0.
     The handler must not block (it runs on the main thread), so the stop
     itself goes to a fresh thread and [wait] below observes it. *)
  let graceful _ =
    ignore (Thread.create (fun () -> Serve.stop ~mode:`Drain server) ())
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle graceful)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful)
   with Invalid_argument _ | Sys_error _ -> ());
  Serve.wait server;
  `Ok ()

let serve_cmd =
  let term =
    Term.(
      ret
        (const serve_run $ db_arg $ host_arg $ port_arg $ workers_arg $ queue_arg
       $ degrade_above_arg $ serve_deadline_arg $ stall_deadline_arg
       $ chaos_arg $ eps_arg $ delta_arg $ samples_arg $ no_plan_cache_arg
       $ slow_query_ms_arg $ slow_query_log_arg $ openmetrics_arg
       $ slo_p99_ms_arg $ slo_availability_arg $ no_telemetry_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived concurrent query server: line-delimited JSON over \
          TCP, bounded request queue, degradation then shedding under \
          overload (protocol and operations: docs/SERVING.md).")
    term

(* ---------- top ---------- *)

let top_addr_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"HOST:PORT" ~doc:"Server address, e.g. 127.0.0.1:7433.")

let top_interval_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "interval" ] ~docv:"S" ~doc:"Refresh interval in seconds.")

let top_frames_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "frames" ] ~docv:"N"
        ~doc:"Render N frames then exit (for scripts and tests).")

let top_once_arg =
  Arg.(
    value & flag
    & info [ "once" ] ~doc:"Render a single frame and exit (= --frames 1).")

let top_run addr interval frames once =
  let host, port =
    match String.rindex_opt addr ':' with
    | Some i -> (
        let host = String.sub addr 0 i in
        let port_s = String.sub addr (i + 1) (String.length addr - i - 1) in
        match int_of_string_opt port_s with
        | Some p when p > 0 && p < 65536 -> (host, p)
        | _ -> fail "top: bad port in %S" addr)
    | None -> fail "top: expected HOST:PORT, got %S" addr
  in
  if not (interval > 0.0) then fail "top: --interval must be > 0";
  let frames = if once then Some 1 else frames in
  (match
     Top.run ~host ~port ~interval_s:interval ?frames ()
   with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Err.raise_
        (Err.Io
           { path = addr; message = "connect: " ^ Unix.error_message e })
  | exception Serve_client.Connection_closed ->
      Err.raise_ (Err.Io { path = addr; message = "connection closed" }));
  `Ok ()

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard for a running probdb server: rolling qps \
          sparkline, 1m latency quantiles, error/shed/degraded/cache rates, \
          SLO burn, strategy wins, chaos and slow-query status.")
    Term.(
      ret
        (const top_run $ top_addr_arg $ top_interval_arg $ top_frames_arg
       $ top_once_arg))

(* ---------- pack ---------- *)

let pack_src_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"SRC"
        ~doc:"The TID to pack: a CSV directory (or an existing container to repack).")

let pack_out_arg =
  Arg.(
    required & pos 1 (some string) None
    & info [] ~docv:"OUT" ~doc:"The packed container to write (conventionally .pdb).")

let pack_verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "After writing, re-open the container and recompute every data \
           segment's checksum (reads the whole file back).")

let pack_run src out verify =
  with_db src @@ fun db ->
  Storage.pack db out;
  let st = Storage.open_file out in
  Fun.protect
    ~finally:(fun () -> Storage.close st)
    (fun () ->
      if verify then Storage.verify st;
      let rels = Storage.relations st in
      let tuples = List.fold_left (fun acc (_, _, n) -> acc + n) 0 rels in
      Printf.printf "packed %d relations (%d tuples) into %s (%d bytes)%s\n"
        (List.length rels) tuples out (Storage.file_size st)
        (if verify then ", checksums verified" else "");
      `Ok ())

let pack_cmd =
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Pack a TID into a versioned, checksummed binary container that \
          every $(b,--db) flag accepts. Columns and probabilities become \
          page-aligned mmap segments, so opening is O(header) — \
          milliseconds for tens of millions of tuples — and safe plans \
          scan the mapped arrays in place (format: docs/STORAGE.md).")
    Term.(ret (const pack_run $ pack_src_arg $ pack_out_arg $ pack_verify_arg))

(* ---------- gen ---------- *)

let out_arg =
  Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")

let domain_arg =
  Arg.(value & opt int 10 & info [ "domain" ] ~docv:"N" ~doc:"Domain size.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let specs_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"SPEC" ~doc:"Relation specs of the form name:arity:density.")

let gen_run out domain seed specs =
  let parse_spec s =
    match String.split_on_char ':' s with
    | [ name; arity; density ] -> (
        match int_of_string_opt arity, float_of_string_opt density with
        | Some a, Some d -> Ok (Probdb_workload.Gen.spec ~density:d name a)
        | _ -> Error s)
    | _ -> Error s
  in
  let parsed = List.map parse_spec specs in
  match List.find_opt Result.is_error parsed with
  | Some (Error s) -> fail "bad spec %S (want name:arity:density)" s
  | _ ->
      let specs = List.map Result.get_ok parsed in
      let db = Probdb_workload.Gen.random_tid ~seed ~domain_size:domain specs in
      Core.Csv_io.save_dir out db;
      Printf.printf "wrote %d relations (%d tuples) to %s\n"
        (List.length (Core.Tid.relations db))
        (Core.Tid.support_size db) out;
      `Ok ()

let gen_cmd =
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic TID as CSV files.")
    Term.(ret (const gen_run $ out_arg $ domain_arg $ seed_arg $ specs_arg))

(* ---------- main ---------- *)

(* Exit codes (documented in README.md):
   0 ok | 2 io | 3 csv | 4 parse | 5 usage | 6 no method | 7 exhausted.
   [~catch:false] lets typed errors reach this handler instead of
   cmdliner's backtrace printer. *)
let () =
  let info =
    Cmd.info "probdb" ~version:"1.0.0"
      ~doc:"A probabilistic database engine (PODS'20 'Probabilistic Databases for All')."
  in
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [ eval_cmd; explain_cmd; prepare_cmd; classify_cmd; plan_cmd; lineage_cmd;
             compile_cmd; pack_cmd; serve_cmd; top_cmd; gen_cmd ])
    with
    (* [Fun.protect] wraps a raising cleanup (e.g. the trace writer hitting
       an unwritable path) in [Finally_raised]; unwrap so typed errors keep
       their exit codes instead of escaping as a backtrace. *)
    | Err.Error e | Fun.Finally_raised (Err.Error e) ->
        prerr_endline ("probdb: " ^ Err.render e);
        Err.exit_code e
    | Sys_error msg | Fun.Finally_raised (Sys_error msg) ->
        prerr_endline ("probdb: " ^ msg);
        2
  in
  exit code
