module Value = Probdb_core.Value
module Fo = Probdb_logic.Fo
module Cq = Probdb_logic.Cq
module Ucq = Probdb_logic.Ucq
module Parser = Probdb_logic.Parser
module Plan = Probdb_plans.Plan
module Lift = Probdb_lifted.Lift
module Stats = Probdb_obs.Stats
module Clock = Probdb_obs.Clock
module Trace = Probdb_obs.Trace
module Metrics = Probdb_obs.Metrics

type artifact = {
  key : string;
  khash : int;
  template : Fo.t;
  nparams : int;
  ucq : (Ucq.t * Ucq.mode, string) result;
  plan : Plan.t option;
  plan_skip : string option;
  verdict : Lift.verdict;
}

type bound = { artifact : artifact; binding : Value.t array }

(* ---------- parameterisation ---------- *)

(* Parameter markers are string constants starting with a NUL byte — a
   byte the parser can never produce, so a marker is unambiguous inside a
   template (and inside the error messages that render one). *)
let marker i = Value.Str ("\x00p" ^ string_of_int i)

let marker_index = function
  | Value.Str s when String.length s > 2 && s.[0] = '\x00' && s.[1] = 'p' ->
      int_of_string_opt (String.sub s 2 (String.length s - 2))
  | _ -> None

(* Each distinct constant becomes a distinct marker, numbered in first-
   occurrence order. The renaming is injective both ways: equal constants
   share a marker (a repeated constant constrains joins, so the equality
   pattern is part of the structure) and distinct constants never merge —
   which is exactly why containment, minimisation, the hierarchy test and
   safe-plan construction on the template transfer to any binding. *)
let lift_constants q =
  let consts = ref [] (* reversed: head has index !n - 1 *) in
  let n = ref 0 in
  let index v =
    let rec find i = function
      | [] -> None
      | v' :: _ when Value.equal v v' -> Some (!n - 1 - i)
      | _ :: rest -> find (i + 1) rest
    in
    match find 0 !consts with
    | Some i -> i
    | None ->
        consts := v :: !consts;
        incr n;
        !n - 1
  in
  let term = function
    | Fo.Var _ as t -> t
    | Fo.Const v -> Fo.Const (marker (index v))
  in
  let rec go = function
    | (Fo.True | Fo.False) as f -> f
    | Fo.Atom { Fo.rel; args } -> Fo.Atom { Fo.rel; args = List.map term args }
    | Fo.Not f -> Fo.Not (go f)
    | Fo.And (a, b) ->
        let a = go a in
        Fo.And (a, go b)
    | Fo.Or (a, b) ->
        let a = go a in
        Fo.Or (a, go b)
    | Fo.Implies (a, b) ->
        let a = go a in
        Fo.Implies (a, go b)
    | Fo.Exists (x, f) -> Fo.Exists (x, go f)
    | Fo.Forall (x, f) -> Fo.Forall (x, go f)
  in
  let t = go q in
  (t, Array.of_list (List.rev !consts))

let tagged_value = function
  | Value.Int n -> "i:" ^ string_of_int n
  | Value.Str s -> "s:" ^ s
  | Value.Bool b -> "b:" ^ string_of_bool b

(* The canonical key: bound variables renamed to [v0, v1, ...] in binding
   order (so alpha-variants collide), markers rendered as [$i], free
   variables kept by name (two open formulas differing only in free-
   variable names are different queries). *)
let canonical_repr q =
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  let term env = function
    | Fo.Var x -> (
        match List.assoc_opt x env with
        | Some c -> add c
        | None ->
            add "f:";
            add x)
    | Fo.Const v -> (
        match marker_index v with
        | Some i ->
            add "$";
            add (string_of_int i)
        | None -> add (tagged_value v))
  in
  let rec go env = function
    | Fo.True -> add "T"
    | Fo.False -> add "F"
    | Fo.Atom { Fo.rel; args } ->
        add rel;
        add "(";
        List.iteri
          (fun i t ->
            if i > 0 then add ",";
            term env t)
          args;
        add ")"
    | Fo.Not f ->
        add "!(";
        go env f;
        add ")"
    | Fo.And (a, b) ->
        add "&(";
        go env a;
        add ",";
        go env b;
        add ")"
    | Fo.Or (a, b) ->
        add "|(";
        go env a;
        add ",";
        go env b;
        add ")"
    | Fo.Implies (a, b) ->
        add ">(";
        go env a;
        add ",";
        go env b;
        add ")"
    | Fo.Exists (x, f) ->
        let c = "v" ^ string_of_int (List.length env) in
        add "E";
        add c;
        add ".";
        go ((x, c) :: env) f
    | Fo.Forall (x, f) ->
        let c = "v" ^ string_of_int (List.length env) in
        add "A";
        add c;
        add ".";
        go ((x, c) :: env) f
  in
  go [] q;
  Buffer.contents buf

let analyse q =
  let template, consts = lift_constants q in
  let key = canonical_repr template in
  (key, Hashtbl.hash key, template, consts)

let key_of_query q =
  let key, _, _, consts = analyse q in
  (key, consts)

(* ---------- the structural artifact ---------- *)

(* Everything here is a function of the template alone. The skip messages
   mirror the engine's cold safe-plan attempt word for word, so a chain
   produced through a cached artifact reads the same as a cold one. *)
let build ~key ~khash ~nparams template =
  let ucq =
    match Ucq.of_sentence template with
    | r -> Ok r
    | exception Ucq.Unsupported msg -> Error msg
  in
  let plan, plan_skip =
    match ucq with
    | Error msg -> (None, Some ("fragment: " ^ msg))
    | Ok (_, Ucq.Complemented) ->
        (None, Some "universal sentence (plans handle positive CQs only)")
    | Ok (u, Ucq.Direct) -> (
        match Ucq.minimize u with
        | [ cq ]
          when Cq.is_self_join_free cq
               && not (List.exists (fun (a : Cq.atom) -> a.Cq.comp) cq) -> (
            match Plan.safe_plan cq with
            | Some p -> (Some p, None)
            | None -> (None, Some "no safe plan (non-hierarchical)"))
        | [ _ ] -> (None, Some "CQ has self-joins or negated atoms")
        | _ -> (None, Some "not a single CQ"))
  in
  let verdict =
    match Lift.classify template with
    | v -> v
    | exception _ -> Lift.Unsupported "classification failed"
  in
  { key; khash; template; nparams; ucq; plan; plan_skip; verdict }

let prepare q =
  let key, khash, template, consts = analyse q in
  { artifact = build ~key ~khash ~nparams:(Array.length consts) template;
    binding = consts }

(* ---------- binding (execute-time substitution) ---------- *)

let bind_value binding v =
  match marker_index v with
  | Some i when i < Array.length binding -> binding.(i)
  | _ -> v

let bind_term binding = function
  | Fo.Const v -> Fo.Const (bind_value binding v)
  | t -> t

let bind_catom binding (a : Cq.atom) =
  { a with Cq.args = List.map (bind_term binding) a.Cq.args }

let rec bind_plan_t binding = function
  | Plan.Scan a -> Plan.Scan (bind_catom binding a)
  | Plan.Join (l, r) -> Plan.Join (bind_plan_t binding l, bind_plan_t binding r)
  | Plan.Project (vs, p) -> Plan.Project (vs, bind_plan_t binding p)

let bind_plan b = Option.map (bind_plan_t b.binding) b.artifact.plan

(* Skip messages built on the template may render a marker; substitute the
   bound constant back so the message matches what the cold attempt on the
   concrete query would have said. *)
let bind_msg binding msg =
  if Array.length binding = 0 then msg
  else begin
    let n = String.length msg in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if
        !i + 2 < n
        && msg.[!i] = '\x00'
        && msg.[!i + 1] = 'p'
        && msg.[!i + 2] >= '0'
        && msg.[!i + 2] <= '9'
      then begin
        let j = ref (!i + 2) in
        while !j < n && msg.[!j] >= '0' && msg.[!j] <= '9' do
          incr j
        done;
        let idx = int_of_string (String.sub msg (!i + 2) (!j - !i - 2)) in
        if idx < Array.length binding then
          Buffer.add_string buf (Value.to_string binding.(idx))
        else Buffer.add_string buf (String.sub msg !i (!j - !i));
        i := !j
      end
      else begin
        Buffer.add_char buf msg.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let bind_ucq b =
  match b.artifact.ucq with
  | Error msg -> Error (bind_msg b.binding msg)
  | Ok (ucq, mode) ->
      Ok
        ( List.map
            (fun cq -> Cq.make (List.map (bind_catom b.binding) cq))
            ucq,
          mode )

let plan_skip b = Option.map (bind_msg b.binding) b.artifact.plan_skip

(* ---------- the shared cache ---------- *)

module Cache = struct
  module SM = Map.Make (String)

  type counters = { hits : int; misses : int; evictions : int; entries : int }

  type entry = { e_artifact : artifact; last_used : int Atomic.t }

  type text_entry = { tq : Fo.t; tbound : bound }

  type t = {
    cache_capacity : int;
    heap_watermark_words : int option;
    by_key : entry SM.t Atomic.t;
    by_text : text_entry SM.t Atomic.t;
    lock : Mutex.t;
    tick : int Atomic.t;
    c_hits : int Atomic.t;
    c_misses : int Atomic.t;
    c_evictions : int Atomic.t;
  }

  let default_capacity = 512

  let m_hits = Metrics.counter "prepare.cache_hits"
  let m_misses = Metrics.counter "prepare.cache_misses"
  let m_evictions = Metrics.counter "prepare.cache_evictions"

  let create ?(capacity = default_capacity) ?heap_watermark_words () =
    { cache_capacity = max 0 capacity;
      heap_watermark_words;
      by_key = Atomic.make SM.empty;
      by_text = Atomic.make SM.empty;
      lock = Mutex.create ();
      tick = Atomic.make 0;
      c_hits = Atomic.make 0;
      c_misses = Atomic.make 0;
      c_evictions = Atomic.make 0 }

  let disabled_by_env () =
    match Sys.getenv_opt "PROBDB_NO_PLAN_CACHE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true

  let create_default () =
    create ~capacity:(if disabled_by_env () then 0 else default_capacity) ()

  let capacity c = c.cache_capacity

  let counters c =
    { hits = Atomic.get c.c_hits;
      misses = Atomic.get c.c_misses;
      evictions = Atomic.get c.c_evictions;
      entries = SM.cardinal (Atomic.get c.by_key) }

  let artifacts c =
    SM.fold (fun _ e acc -> e.e_artifact :: acc) (Atomic.get c.by_key) []

  let next_tick c = Atomic.fetch_and_add c.tick 1

  let with_lock c f =
    Mutex.lock c.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

  (* Oldest-stamp-first eviction of [n] entries; caller holds the lock. *)
  let evict_n c m n =
    let aged =
      SM.fold (fun k e acc -> (Atomic.get e.last_used, k) :: acc) m []
    in
    let sorted = List.sort compare aged in
    let rec drop m n = function
      | (_, k) :: rest when n > 0 -> drop (SM.remove k m) (n - 1) rest
      | _ -> m
    in
    ignore (Atomic.fetch_and_add c.c_evictions n);
    Metrics.add m_evictions n;
    drop m n sorted

  (* Insert under the lock: capacity overflow evicts the overflow, and —
     like the WMC component cache — a major heap past 80% of the
     configured watermark sweeps half the entries. Text entries whose
     artifact was evicted are pruned so the two indexes stay in sync. *)
  let insert_locked c key a =
    let m =
      SM.add key
        { e_artifact = a; last_used = Atomic.make (next_tick c) }
        (Atomic.get c.by_key)
    in
    let over = max 0 (SM.cardinal m - c.cache_capacity) in
    let sweep =
      match c.heap_watermark_words with
      | Some w when (Gc.quick_stat ()).Gc.heap_words * 10 > w * 8 ->
          max 0 ((SM.cardinal m / 2) - over)
      | _ -> 0
    in
    let n = over + sweep in
    if n = 0 then Atomic.set c.by_key m
    else begin
      let m = evict_n c m n in
      Atomic.set c.by_key m;
      Atomic.set c.by_text
        (SM.filter
           (fun _ te -> SM.mem te.tbound.artifact.key m)
           (Atomic.get c.by_text))
    end

  let touch c key =
    match SM.find_opt key (Atomic.get c.by_key) with
    | Some e -> Atomic.set e.last_used (next_tick c)
    | None -> ()

  let count_hit c =
    Atomic.incr c.c_hits;
    Metrics.incr m_hits

  let count_miss c =
    Atomic.incr c.c_misses;
    Metrics.incr m_misses

  let fill_stats s c ~hit ~key =
    let k = counters c in
    s.Stats.prepare <-
      Some
        { Stats.prep_hit = hit;
          prep_key = key;
          prep_cache_hits = k.hits;
          prep_cache_misses = k.misses;
          prep_cache_evictions = k.evictions;
          prep_cache_entries = k.entries }

  (* Lock-free read path: one atomic load of the key index, a pure map
     search, and an atomic recency stamp on a hit. Only misses take the
     lock, with a double-checked lookup so concurrent misses on one key
     build the artifact once. *)
  let lookup_or_build c q =
    let key, khash, template, consts = analyse q in
    match
      if c.cache_capacity > 0 then SM.find_opt key (Atomic.get c.by_key)
      else None
    with
    | Some e ->
        Atomic.set e.last_used (next_tick c);
        count_hit c;
        ({ artifact = e.e_artifact; binding = consts }, true)
    | None ->
        count_miss c;
        let nparams = Array.length consts in
        let artifact =
          if c.cache_capacity = 0 then build ~key ~khash ~nparams template
          else
            with_lock c (fun () ->
                match SM.find_opt key (Atomic.get c.by_key) with
                | Some e ->
                    Atomic.set e.last_used (next_tick c);
                    e.e_artifact
                | None ->
                    let a = build ~key ~khash ~nparams template in
                    insert_locked c key a;
                    a)
        in
        ({ artifact; binding = consts }, false)

  let of_query ?stats c q =
    Trace.with_span ~cat:"engine" "prepare" (fun () ->
        let t0 = Clock.now () in
        let b, hit = lookup_or_build c q in
        (match stats with
        | Some s ->
            Stats.record_phase s Stats.Prepare (Clock.now () -. t0);
            fill_stats s c ~hit ~key:b.artifact.key
        | None -> ());
        b)

  let insert_text_locked c tkey q b =
    let m = SM.add tkey { tq = q; tbound = b } (Atomic.get c.by_text) in
    let m =
      if SM.cardinal m > c.cache_capacity * 4 then begin
        let live =
          SM.filter
            (fun _ te -> SM.mem te.tbound.artifact.key (Atomic.get c.by_key))
            m
        in
        if SM.cardinal live > c.cache_capacity * 4 then SM.empty else live
      end
      else m
    in
    Atomic.set c.by_text m

  let resolve_text ?stats c ~free text =
    let tkey = String.concat "\x00" free ^ "\x01" ^ text in
    let cached =
      if c.cache_capacity = 0 then None
      else SM.find_opt tkey (Atomic.get c.by_text)
    in
    match cached with
    | Some te ->
        Trace.with_span ~cat:"engine" "prepare" (fun () ->
            let t0 = Clock.now () in
            touch c te.tbound.artifact.key;
            count_hit c;
            match stats with
            | Some s ->
                Stats.record_phase s Stats.Prepare (Clock.now () -. t0);
                fill_stats s c ~hit:true ~key:te.tbound.artifact.key
            | None -> ());
        (te.tq, Some te.tbound)
    | None ->
        let parse () = Parser.parse ~free text in
        let q =
          match stats with
          | Some s -> Stats.time_phase s Stats.Parse parse
          | None -> parse ()
        in
        if free <> [] || not (Fo.is_sentence q) then (q, None)
        else begin
          let b = of_query ?stats c q in
          if c.cache_capacity > 0 then
            with_lock c (fun () -> insert_text_locked c tkey q b);
          (q, Some b)
        end
end
