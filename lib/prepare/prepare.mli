(** Prepared queries: the prepare/execute split behind the compiled-plan
    cache.

    The Dalvi–Suciu dichotomy makes the safe/unsafe verdict and the safe
    extensional plan functions of the query {e structure} alone — the
    tuple probabilities and the constants appearing in the query play no
    role in either. This module exploits that: {e prepare} lifts the
    constants of a query out as parameters, reduces the resulting template
    once (UCQ reduction → minimisation → safety classification → safe-plan
    construction), and caches the artifact under a canonical structural
    key; {e execute} binds the actual constants back into the cached plan
    (an injective constant-for-marker substitution, so every containment,
    hierarchy and safety property of the template transfers) and runs it.

    Two queries share an artifact exactly when they are alpha-equivalent
    modulo constants {e with the same constant-equality pattern}:
    [R('a') ∧ S('a')] and [R('b') ∧ S('b')] share a template (one
    parameter used twice), while [R('a') ∧ S('b')] gets its own (two
    parameters) — repeated constants constrain joins, so the pattern is
    part of the structure.

    Deliberately {e not} cached: everything data-dependent. The symmetric
    WFOMC check, the world-enumeration support bound, the Karp–Luby
    standard-probability check and all guard trips happen at execute time,
    so a cached artifact can never change which answer a database gets —
    cold execution and warm execution run the identical code path over the
    identical artifact, and a disabled cache (capacity 0) is simply one
    that always misses. *)

type artifact = private {
  key : string;
      (** canonical structural key: bound variables renamed in binding
          order, constants as [$i] parameter markers *)
  khash : int;  (** hash of [key], precomputed *)
  template : Probdb_logic.Fo.t;
      (** the query with each distinct constant replaced by a distinct
          parameter marker, in first-occurrence order *)
  nparams : int;  (** number of lifted constants *)
  ucq : (Probdb_logic.Ucq.t * Probdb_logic.Ucq.mode, string) result;
      (** template UCQ reduction, or the [Ucq.Unsupported] message (with
          parameter markers still inside — see {!bind_ucq}) *)
  plan : Probdb_plans.Plan.t option;
      (** safe plan of the template when it is a single self-join-free
          hierarchical positive CQ *)
  plan_skip : string option;
      (** when [plan = None]: the engine's safe-plan skip message *)
  verdict : Probdb_lifted.Lift.verdict;
      (** lifted-rules safety classification of the template; informational
          (surfaced by [probdb prepare]) — execution never gates the
          lifted attempt on it *)
}

type bound = {
  artifact : artifact;
  binding : Probdb_core.Value.t array;
      (** [binding.(i)] is the constant parameter [$i] stands for *)
}
(** A prepared artifact together with the constants of one concrete
    query — everything {e execute} needs. *)

val key_of_query : Probdb_logic.Fo.t -> string * Probdb_core.Value.t array
(** The canonical structural key and the lifted constants, without
    building (or caching) the rest of the artifact. *)

val prepare : Probdb_logic.Fo.t -> bound
(** Uncached prepare: lift constants, build the full artifact. This is
    what a cache miss runs. *)

val bind_plan : bound -> Probdb_plans.Plan.t option
(** The template plan with the markers substituted by the bound constants
    — the injective renaming keeps the plan safe for the concrete query. *)

val bind_ucq :
  bound -> (Probdb_logic.Ucq.t * Probdb_logic.Ucq.mode, string) result
(** The template UCQ with constants bound (each CQ re-normalised), or the
    [Unsupported] message with parameter markers rendered back to the
    bound constants. *)

val plan_skip : bound -> string option
(** [artifact.plan_skip] with markers rendered back to constants — the
    exact message the engine's cold safe-plan attempt would produce. *)

module Cache : sig
  (** The shared compiled-plan cache: a bounded LRU over artifacts, safe
      for concurrent use from many domains.

      Reads are lock-free — the two indexes (structural key → artifact,
      query text → parsed query + artifact) are immutable maps behind
      [Atomic.t], so a lookup is one atomic load plus a pure search, and a
      hit only stamps the entry's recency atomically. Misses serialise on
      a mutex with a double-checked lookup, so an artifact is built once
      even when many domains miss simultaneously. Eviction (capacity
      overflow, oldest-stamp-first, plus a heap-watermark half-sweep like
      the WMC component cache) happens under the same mutex.

      Counters are exact: every {!of_query}/{!resolve_text} lookup
      increments exactly one of hits/misses atomically, so over any quiet
      point [hits + misses = lookups]. *)

  type t

  type counters = { hits : int; misses : int; evictions : int; entries : int }

  val default_capacity : int
  (** 512 artifacts. *)

  val create : ?capacity:int -> ?heap_watermark_words:int -> unit -> t
  (** [capacity] defaults to {!default_capacity}; [0] disables caching
      (every lookup misses and nothing is stored — the cold path).
      When [heap_watermark_words] is set and the major heap exceeds 80% of
      it at insertion time, half the entries are swept (counted as
      evictions). *)

  val create_default : unit -> t
  (** {!create} at {!default_capacity}, except capacity [0] when
      {!disabled_by_env} — the constructor the CLI and the server use. *)

  val disabled_by_env : unit -> bool
  (** [true] when [PROBDB_NO_PLAN_CACHE] is set to anything but ["0"] or
      [""]. *)

  val capacity : t -> int

  val counters : t -> counters
  (** Exact snapshot of the atomic counters (entries counted from the
      current key index). *)

  val artifacts : t -> artifact list
  (** The cached artifacts, unordered — for tests and [probdb prepare]
      inspection. *)

  val of_query : ?stats:Probdb_obs.Stats.t -> t -> Probdb_logic.Fo.t -> bound
  (** Look up the query's structural key, building and inserting the
      artifact on a miss. With [stats], the time lands in the [Prepare]
      phase and the [prepare] block (hit flag, key, cache totals) is
      filled; a ["prepare"] trace span and [prepare.cache_*] metrics are
      emitted either way. *)

  val resolve_text :
    ?stats:Probdb_obs.Stats.t ->
    t ->
    free:string list ->
    string ->
    Probdb_logic.Fo.t * bound option
  (** Text-level memoisation for servers: returns the parsed query and,
      for sentences, its bound artifact. A text hit skips the parser
      entirely (parse phase reads ~0); a text miss parses (recorded in the
      [Parse] phase via [stats]) and falls through to {!of_query}. Open
      formulas ([free] non-empty or free variables present) are parsed but
      not prepared — per-grounding preparation happens in
      [Engine.answers] through the engine's configured cache.
      Raises [Probdb_logic.Parser.Error] like the parser. *)
end
