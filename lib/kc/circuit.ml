type t = { id : int; node : node }

and node =
  | True_
  | False_
  | Decision of { var : int; lo : t; hi : t }
  | And_ of t list
  | Ior of t list

(* Hash-consing key: constructor tag + child ids. *)
type key = K_true | K_false | K_decision of int * int * int | K_and of int list | K_ior of int list

type builder = {
  unique : (key, t) Hashtbl.t;
  mutable next_id : int;
  mutable internal : int;
}

let builder () = { unique = Hashtbl.create 256; next_id = 0; internal = 0 }

let mk b key node =
  match Hashtbl.find_opt b.unique key with
  | Some t -> t
  | None ->
      let t = { id = b.next_id; node } in
      b.next_id <- b.next_id + 1;
      (match node with True_ | False_ -> () | _ -> b.internal <- b.internal + 1);
      Hashtbl.replace b.unique key t;
      t

let tru b = mk b K_true True_
let fls b = mk b K_false False_

let decision b var ~lo ~hi =
  if lo.id = hi.id then lo
  else mk b (K_decision (var, lo.id, hi.id)) (Decision { var; lo; hi })

let band b children =
  let rec flatten acc = function
    | [] -> Some acc
    | { node = True_; _ } :: rest -> flatten acc rest
    | { node = False_; _ } :: _ -> None
    | { node = And_ cs; _ } :: rest -> flatten (List.rev_append cs acc) rest
    | c :: rest -> flatten (c :: acc) rest
  in
  match flatten [] children with
  | None -> fls b
  | Some [] -> tru b
  | Some [ c ] -> c
  | Some cs ->
      let cs = List.sort_uniq (fun a c -> Int.compare a.id c.id) cs in
      (match cs with
      | [ c ] -> c
      | _ -> mk b (K_and (List.map (fun c -> c.id) cs)) (And_ cs))

let ior b children =
  let rec flatten acc = function
    | [] -> Some acc
    | { node = False_; _ } :: rest -> flatten acc rest
    | { node = True_; _ } :: _ -> None
    | { node = Ior cs; _ } :: rest -> flatten (List.rev_append cs acc) rest
    | c :: rest -> flatten (c :: acc) rest
  in
  match flatten [] children with
  | None -> tru b
  | Some [] -> fls b
  | Some [ c ] -> c
  | Some cs ->
      let cs = List.sort_uniq (fun a c -> Int.compare a.id c.id) cs in
      (match cs with
      | [ c ] -> c
      | _ -> mk b (K_ior (List.map (fun c -> c.id) cs)) (Ior cs))

let var_leaf b v = decision b v ~lo:(fls b) ~hi:(tru b)

let decide_lit b ~var ~sign rest =
  if sign then decision b var ~lo:(fls b) ~hi:rest
  else decision b var ~lo:rest ~hi:(fls b)

let built_nodes b = b.internal

let iter_nodes f root =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      f t;
      match t.node with
      | True_ | False_ -> ()
      | Decision { lo; hi; _ } ->
          go lo;
          go hi
      | And_ cs | Ior cs -> List.iter go cs
    end
  in
  go root

let size root =
  let n = ref 0 in
  iter_nodes (fun t -> match t.node with True_ | False_ -> () | _ -> incr n) root;
  !n

let edge_count root =
  let n = ref 0 in
  iter_nodes
    (fun t ->
      match t.node with
      | True_ | False_ -> ()
      | Decision _ -> n := !n + 2
      | And_ cs | Ior cs -> n := !n + List.length cs)
    root;
  !n

module Iset = Set.Make (Int)

let scope_tbl root =
  let tbl = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt tbl t.id with
    | Some s -> s
    | None ->
        let s =
          match t.node with
          | True_ | False_ -> Iset.empty
          | Decision { var; lo; hi } -> Iset.add var (Iset.union (go lo) (go hi))
          | And_ cs | Ior cs ->
              List.fold_left (fun acc c -> Iset.union acc (go c)) Iset.empty cs
        in
        Hashtbl.replace tbl t.id s;
        s
  in
  ignore (go root);
  tbl

let scope root = Iset.elements (Hashtbl.find (scope_tbl root) root.id)

let rec eval assignment t =
  match t.node with
  | True_ -> true
  | False_ -> false
  | Decision { var; lo; hi } -> if assignment var then eval assignment hi else eval assignment lo
  | And_ cs -> List.for_all (eval assignment) cs
  | Ior cs -> List.exists (eval assignment) cs

let wmc p root =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | True_ -> 1.0
          | False_ -> 0.0
          | Decision { var; lo; hi } -> ((1.0 -. p var) *. go lo) +. (p var *. go hi)
          | And_ cs -> List.fold_left (fun acc c -> acc *. go c) 1.0 cs
          | Ior cs -> 1.0 -. List.fold_left (fun acc c -> acc *. (1.0 -. go c)) 1.0 cs
        in
        Hashtbl.replace memo t.id v;
        v
  in
  go root

type kind = Obdd_like | Fbdd | Decision_dnnf | Extended

let kind ~order root =
  let has_and = ref false and has_ior = ref false in
  iter_nodes
    (fun t ->
      match t.node with
      | And_ _ -> has_and := true
      | Ior _ -> has_ior := true
      | _ -> ())
    root;
  if !has_ior then Extended
  else if !has_and then Decision_dnnf
  else
    match order with
    | None -> Fbdd
    | Some order ->
        let level = Hashtbl.create 16 in
        List.iteri (fun i v -> Hashtbl.replace level v i) order;
        let lv v = match Hashtbl.find_opt level v with Some l -> l | None -> max_int in
        let ordered = ref true in
        iter_nodes
          (fun t ->
            match t.node with
            | Decision { var; lo; hi } ->
                let check_child c =
                  match c.node with
                  | Decision { var = v'; _ } -> if lv v' <= lv var then ordered := false
                  | _ -> ()
                in
                check_child lo;
                check_child hi
            | _ -> ())
          root;
        if !ordered then Obdd_like else Fbdd

let check root =
  let scopes = scope_tbl root in
  let sc t = Hashtbl.find scopes t.id in
  let problem = ref None in
  iter_nodes
    (fun t ->
      if !problem = None then
        match t.node with
        | True_ | False_ -> ()
        | Decision { var; lo; hi } ->
            if Iset.mem var (sc lo) || Iset.mem var (sc hi) then
              problem := Some (Printf.sprintf "variable %d re-read below its decision node" var)
        | And_ cs | Ior cs ->
            let rec disjoint seen = function
              | [] -> ()
              | c :: rest ->
                  let s = sc c in
                  if not (Iset.is_empty (Iset.inter seen s)) then
                    problem :=
                      Some
                        (Printf.sprintf "node %d: children scopes overlap on {%s}" t.id
                           (String.concat ","
                              (List.map string_of_int (Iset.elements (Iset.inter seen s)))))
                  else disjoint (Iset.union seen s) rest
            in
            disjoint Iset.empty cs)
    root;
  match !problem with None -> Ok () | Some msg -> Error msg

let check_decomposable root = Result.is_ok (check root)

let pp ?(label = fun v -> "x" ^ string_of_int v) () ppf root =
  let rec go ppf t =
    match t.node with
    | True_ -> Format.pp_print_string ppf "T"
    | False_ -> Format.pp_print_string ppf "F"
    | Decision { var; lo; hi } ->
        Format.fprintf ppf "@[<hv2>ite(%s,@ %a,@ %a)@]" (label var) go hi go lo
    | And_ cs ->
        Format.fprintf ppf "@[<hv2>and(%a)@]"
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") go)
          cs
    | Ior cs ->
        Format.fprintf ppf "@[<hv2>ior(%a)@]"
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") go)
          cs
  in
  go ppf root

let kind_name = function
  | Obdd_like -> "obdd"
  | Fbdd -> "fbdd"
  | Decision_dnnf -> "decision-dnnf"
  | Extended -> "extended"

let obs_counts ?order root : Probdb_obs.Stats.circuit_counts =
  { Probdb_obs.Stats.circuit_class = kind_name (kind ~order root);
    nodes = size root;
    edges = edge_count root }
