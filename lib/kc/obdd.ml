module F = Probdb_boolean.Formula
module Guard = Probdb_guard.Guard

type t = Zero | One | Node of { uid : int; var : int; lo : t; hi : t }

exception Node_limit of int

type manager = {
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo uid, hi uid) -> node *)
  and_memo : (int * int, t) Hashtbl.t;
  or_memo : (int * int, t) Hashtbl.t;
  neg_memo : (int, t) Hashtbl.t;
  level_tbl : (int, int) Hashtbl.t;
  mutable rev_order : int list;
  mutable next_uid : int;
  max_nodes : int;
  guard : Guard.t;
}

let manager ?(max_nodes = max_int) ?(guard = Guard.unlimited) ~order () =
  let m =
    { unique = Hashtbl.create 1024;
      and_memo = Hashtbl.create 1024;
      or_memo = Hashtbl.create 1024;
      neg_memo = Hashtbl.create 256;
      level_tbl = Hashtbl.create 64;
      rev_order = [];
      next_uid = 2;
      max_nodes;
      guard }
  in
  List.iter
    (fun v ->
      if not (Hashtbl.mem m.level_tbl v) then begin
        Hashtbl.replace m.level_tbl v (Hashtbl.length m.level_tbl);
        m.rev_order <- v :: m.rev_order
      end)
    order;
  m

let order m = List.rev m.rev_order

let level m v =
  match Hashtbl.find_opt m.level_tbl v with
  | Some l -> l
  | None ->
      let l = Hashtbl.length m.level_tbl in
      Hashtbl.replace m.level_tbl v l;
      m.rev_order <- v :: m.rev_order;
      l

let uid = function Zero -> 0 | One -> 1 | Node { uid; _ } -> uid

let node_count m = Hashtbl.length m.unique

let mk m v lo hi =
  if uid lo = uid hi then lo
  else
    let key = (v, uid lo, uid hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        Guard.poll m.guard ~site:"obdd.mk";
        if Hashtbl.length m.unique >= m.max_nodes then
          raise (Node_limit m.max_nodes);
        let n = Node { uid = m.next_uid; var = v; lo; hi } in
        m.next_uid <- m.next_uid + 1;
        Hashtbl.replace m.unique key n;
        n

let zero _ = Zero
let one _ = One
let var m v = mk m v Zero One

let top_level m = function
  | Zero | One -> max_int
  | Node { var; _ } -> level m var

let split m lv = function
  | Node { var; lo; hi; _ } when level m var = lv -> (lo, hi)
  | n -> (n, n)

let rec neg m n =
  match n with
  | Zero -> One
  | One -> Zero
  | Node { uid = u; var; lo; hi } -> (
      match Hashtbl.find_opt m.neg_memo u with
      | Some r -> r
      | None ->
          let r = mk m var (neg m lo) (neg m hi) in
          Hashtbl.replace m.neg_memo u r;
          r)

let rec apply m op_memo ~absorbing ~unit_ a b =
  if a == absorbing || b == absorbing then absorbing
  else if a == unit_ then b
  else if b == unit_ then a
  else if uid a = uid b then a
  else
    let key = if uid a <= uid b then (uid a, uid b) else (uid b, uid a) in
    match Hashtbl.find_opt op_memo key with
    | Some r -> r
    | None ->
        let lv = min (top_level m a) (top_level m b) in
        let v =
          match a, b with
          | Node { var; _ }, _ when level m var = lv -> var
          | _, Node { var; _ } -> var
          | _ -> assert false
        in
        let a0, a1 = split m lv a in
        let b0, b1 = split m lv b in
        let r =
          mk m v
            (apply m op_memo ~absorbing ~unit_ a0 b0)
            (apply m op_memo ~absorbing ~unit_ a1 b1)
        in
        Hashtbl.replace op_memo key r;
        r

let conj m a b = apply m m.and_memo ~absorbing:Zero ~unit_:One a b
let disj m a b = apply m m.or_memo ~absorbing:One ~unit_:Zero a b

let of_formula m f =
  (* Compile bottom-up; the formula cache avoids recompiling shared
     subformulas. *)
  let cache = Hashtbl.create 256 in
  let rec go f =
    let key = F.to_key f in
    match Hashtbl.find_opt cache key with
    | Some n -> n
    | None ->
        let n =
          match f with
          | F.True -> One
          | F.False -> Zero
          | F.Var v -> var m v
          | F.Not g -> neg m (go g)
          | F.And gs -> List.fold_left (fun acc g -> conj m acc (go g)) One gs
          | F.Or gs -> List.fold_left (fun acc g -> disj m acc (go g)) Zero gs
        in
        Hashtbl.replace cache key n;
        n
  in
  go f

let size root =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node { uid; lo; hi; _ } ->
        if not (Hashtbl.mem seen uid) then begin
          Hashtbl.add seen uid ();
          go lo;
          go hi
        end
  in
  go root;
  Hashtbl.length seen

let rec eval assignment = function
  | Zero -> false
  | One -> true
  | Node { var; lo; hi; _ } -> eval assignment (if assignment var then hi else lo)

let wmc _m p root =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Zero -> 0.0
    | One -> 1.0
    | Node { uid; var; lo; hi } -> (
        match Hashtbl.find_opt memo uid with
        | Some v -> v
        | None ->
            let v = ((1.0 -. p var) *. go lo) +. (p var *. go hi) in
            Hashtbl.replace memo uid v;
            v)
  in
  go root

let sat_count m ~over_vars root =
  wmc m (fun _ -> 0.5) root *. (2.0 ** float_of_int over_vars)

let to_circuit builder root =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Zero -> Circuit.fls builder
    | One -> Circuit.tru builder
    | Node { uid; var; lo; hi } -> (
        match Hashtbl.find_opt memo uid with
        | Some c -> c
        | None ->
            let c = Circuit.decision builder var ~lo:(go lo) ~hi:(go hi) in
            Hashtbl.replace memo uid c;
            c)
  in
  go root

let default_order f =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go = function
    | F.True | F.False -> ()
    | F.Var v -> note v
    | F.Not g -> go g
    | F.And gs | F.Or gs -> List.iter go gs
  in
  go f;
  List.rev !out

let obs_counts root : Probdb_obs.Stats.circuit_counts =
  (* every internal OBDD node has exactly two out-edges *)
  let n = size root in
  { Probdb_obs.Stats.circuit_class = "obdd"; nodes = n; edges = 2 * n }
