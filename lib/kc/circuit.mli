(** Trace circuits: FBDDs, decision-DNNFs, and independent-or extensions.

    Huang and Darwiche's observation (Sec. 7 of the paper): the trace of a
    DPLL-style algorithm is a circuit — an FBDD when the algorithm uses
    caching only, a decision-DNNF when it also uses components. This module
    is the circuit datatype those traces are recorded in, with hash-consing
    so that cache hits become shared subcircuits and the circuit size equals
    the number of distinct subproblems the algorithm solved.

    A circuit node is a decision node (Shannon expansion on a variable), an
    independent-[and] (components rule, Eq. (12)), or — beyond
    decision-DNNF — an independent-[or] (the dual of components, used by
    extensional plans but not by DPLL provers). {!kind} reports the
    strongest classical class a circuit belongs to. *)

type t = private {
  id : int;
  node : node;
}

and node = private
  | True_
  | False_
  | Decision of { var : int; lo : t; hi : t }
  | And_ of t list
  | Ior of t list

type builder

val builder : unit -> builder
val tru : builder -> t
val fls : builder -> t

val decision : builder -> int -> lo:t -> hi:t -> t
(** Collapses to the child when [lo == hi]. *)

val band : builder -> t list -> t
(** Independent-and node; flattens, drops [true] children, collapses to
    [false] on a [false] child. The caller guarantees children have disjoint
    variable scopes ({!check_decomposable} verifies). *)

val ior : builder -> t list -> t
(** Independent-or node (dual conventions). *)

val var_leaf : builder -> int -> t
(** The one-decision circuit testing a single variable. *)

val decide_lit : builder -> var:int -> sign:bool -> t -> t
(** [decide_lit b ~var ~sign rest] is the decision node forcing the literal
    [var = sign] and continuing with [rest] on that branch (the other
    branch is [false]). This is how trace-recording solvers write an
    {e implied} literal — a unit propagation — into the circuit: the d-DNNF
    stays equivalent to the subproblem before the implication. *)

val built_nodes : builder -> int
(** Total distinct internal nodes ever built — the trace size measure used
    by the Theorem 7.1 experiments. *)

(** {1 Analysis} *)

val size : t -> int
(** Distinct internal (non-leaf) nodes reachable from the root. *)

val edge_count : t -> int
val scope : t -> int list
(** Variables read anywhere below the node. *)

val eval : (int -> bool) -> t -> bool

val wmc : (int -> float) -> t -> float
(** Weighted model count in probability form: decisions combine by Shannon
    expansion, independent-ands multiply, independent-ors combine as
    [1 - Π(1-p)]. Linear in the circuit size. *)

type kind = Obdd_like | Fbdd | Decision_dnnf | Extended

val kind : order:int list option -> t -> kind
(** Strongest class the circuit syntactically belongs to: no [And_]/[Ior]
    and decisions following [order] on every path → [Obdd_like]; no
    [And_]/[Ior] → [Fbdd]; no [Ior] → [Decision_dnnf]; otherwise
    [Extended]. Assumes {!check_decomposable} and read-once paths hold
    (guaranteed for DPLL traces, verified by {!check}). *)

val kind_name : kind -> string
(** ["obdd"], ["fbdd"], ["decision-dnnf"] or ["extended"] — the class
    labels used in the stats JSON schema (docs/STATS.md). *)

val obs_counts : ?order:int list -> t -> Probdb_obs.Stats.circuit_counts
(** Size of the circuit in the shape of the observability layer's
    per-query record: class per {!kind} (with [order] forwarded), node and
    edge counts per {!size} and {!edge_count}. *)

val check : t -> (unit, string) result
(** Structural validity: decision variables are not re-read below either
    branch, and [And_]/[Ior] children have pairwise disjoint scopes. *)

val check_decomposable : t -> bool

val pp : ?label:(int -> string) -> unit -> Format.formatter -> t -> unit
