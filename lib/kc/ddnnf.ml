type t =
  | Lit of int * bool
  | Tru
  | Fls
  | And of t list
  | Or of t list

let of_circuit ?(guard = Probdb_guard.Guard.unlimited) root =
  let memo = Hashtbl.create 64 in
  let rec go (c : Circuit.t) =
    match Hashtbl.find_opt memo c.Circuit.id with
    | Some d -> d
    | None ->
        Probdb_guard.Guard.poll guard ~site:"ddnnf.of_circuit";
        let d =
          match c.Circuit.node with
          | Circuit.True_ -> Tru
          | Circuit.False_ -> Fls
          | Circuit.Decision { var; lo; hi } ->
              Or [ And [ Lit (var, true); go hi ]; And [ Lit (var, false); go lo ] ]
          | Circuit.And_ cs -> And (List.map go cs)
          | Circuit.Ior _ ->
              invalid_arg "Ddnnf.of_circuit: independent-or is not d-DNNF"
        in
        Hashtbl.replace memo c.Circuit.id d;
        d
  in
  go root

let rec eval a = function
  | Lit (v, phase) -> a v = phase
  | Tru -> true
  | Fls -> false
  | And cs -> List.for_all (eval a) cs
  | Or cs -> List.exists (eval a) cs

let rec wmc p = function
  | Lit (v, true) -> p v
  | Lit (v, false) -> 1.0 -. p v
  | Tru -> 1.0
  | Fls -> 0.0
  | And cs -> List.fold_left (fun acc c -> acc *. wmc p c) 1.0 cs
  | Or cs -> List.fold_left (fun acc c -> acc +. wmc p c) 0.0 cs

let rec size = function
  | Lit _ | Tru | Fls -> 1
  | And cs | Or cs -> List.fold_left (fun acc c -> acc + size c) 1 cs

module Iset = Set.Make (Int)

let rec var_set = function
  | Lit (v, _) -> Iset.singleton v
  | Tru | Fls -> Iset.empty
  | And cs | Or cs ->
      List.fold_left (fun acc c -> Iset.union acc (var_set c)) Iset.empty cs

let vars d = Iset.elements (var_set d)

let rec check_decomposable = function
  | Lit _ | Tru | Fls -> true
  | Or cs -> List.for_all check_decomposable cs
  | And cs ->
      let rec disjoint seen = function
        | [] -> true
        | c :: rest ->
            let s = var_set c in
            Iset.is_empty (Iset.inter seen s) && disjoint (Iset.union seen s) rest
      in
      disjoint Iset.empty cs && List.for_all check_decomposable cs

let check_deterministic d =
  let vs = Array.of_list (vars d) in
  let n = Array.length vs in
  if n > 20 then invalid_arg "Ddnnf.check_deterministic: too many variables";
  (* Enumerate assignments once; at each Or node, at most one child may be
     true under any assignment. *)
  let assignment = Hashtbl.create n in
  let a v = Hashtbl.find assignment v in
  let rec node_ok = function
    | Lit _ | Tru | Fls -> true
    | And cs -> List.for_all node_ok cs
    | Or cs ->
        let true_children = List.filter (eval a) cs in
        List.length true_children <= 1 && List.for_all node_ok cs
  in
  let rec enum i =
    if i = n then node_ok d
    else begin
      Hashtbl.replace assignment vs.(i) true;
      let ok = enum (i + 1) in
      Hashtbl.replace assignment vs.(i) false;
      ok && enum (i + 1)
    end
  in
  enum 0
