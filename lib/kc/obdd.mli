(** Ordered Binary Decision Diagrams with hash-consing.

    OBDDs are the knowledge-compilation target of Theorem 7.1: lineages of
    hierarchical self-join-free CQs admit linear-size OBDDs, while
    non-hierarchical ones force size ≥ (2^n - 1)/n under every variable
    order. The package is a classical reduced OBDD implementation: a unique
    table keyed by (variable, low, high), a memoised [apply], Boolean
    operations, weighted model counting, and compilation from
    {!Probdb_boolean.Formula}. *)

type manager
type t

exception Node_limit of int
(** Raised by constructions when the manager exceeds its node budget — used
    by the exponential-blow-up experiments to bail out early. *)

val manager :
  ?max_nodes:int -> ?guard:Probdb_guard.Guard.t -> order:int list -> unit -> manager
(** [order] is the global variable order, first variable tested first.
    Variables absent from [order] are appended on first use. [guard]
    (default {!Probdb_guard.Guard.unlimited}) is polled on every fresh node
    allocation (site ["obdd.mk"]), so deadlines and cancellation interrupt
    compilation with [Probdb_guard.Guard.Exhausted]; the manager's own
    [max_nodes] cap still raises {!Node_limit}. *)

val order : manager -> int list

val node_count : manager -> int
(** Total distinct nodes allocated by the manager (its whole lifetime). *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
val neg : manager -> t -> t
val conj : manager -> t -> t -> t
val disj : manager -> t -> t -> t
val of_formula : manager -> Probdb_boolean.Formula.t -> t

val size : t -> int
(** Distinct internal nodes reachable from this root (the OBDD size of
    Thm. 7.1). *)

val eval : (int -> bool) -> t -> bool
val wmc : manager -> (int -> float) -> t -> float
val sat_count : manager -> over_vars:int -> t -> float
(** Number of models over a space of [over_vars] variables (floating point
    to allow > 2^62). *)

val to_circuit : Circuit.builder -> t -> Circuit.t
(** The OBDD as a decision circuit (every OBDD is an FBDD, Fig. 2). *)

val obs_counts : t -> Probdb_obs.Stats.circuit_counts
(** {!size} in the observability layer's circuit record (class ["obdd"],
    two out-edges per internal node). *)

val default_order : Probdb_boolean.Formula.t -> int list
(** Variable order by first appearance in the formula — a reasonable
    default. *)
