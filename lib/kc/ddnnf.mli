(** d-DNNF circuits: deterministic, decomposable negation normal form.

    The most general compilation target discussed in Sec. 7 of the paper:
    leaves are literals, ∧-nodes have independent (variable-disjoint)
    children, ∨-nodes have disjoint (mutually exclusive) children, and
    negation appears only at the leaves. Weighted model counting is linear
    in the circuit size.

    Every decision-DNNF embeds into a d-DNNF by rewriting each decision node
    [ite(x, hi, lo)] as [(x ∧ hi) ∨ (¬x ∧ lo)] — a disjoint disjunction —
    which is how {!of_circuit} works. *)

type t =
  | Lit of int * bool  (** variable, phase ([true] = positive) *)
  | Tru
  | Fls
  | And of t list
  | Or of t list

val of_circuit : ?guard:Probdb_guard.Guard.t -> Circuit.t -> t
(** Embeds a decision circuit (decision-DNNF). Raises [Invalid_argument] on
    circuits containing independent-or nodes, which are not d-DNNF. [guard]
    is polled once per distinct circuit node (site ["ddnnf.of_circuit"]). *)

val eval : (int -> bool) -> t -> bool

val wmc : (int -> float) -> t -> float
(** Linear-time weighted model counting; correct only on valid d-DNNF. *)

val size : t -> int
(** AST node count (this representation is a tree; sharing is not
    tracked). *)

val vars : t -> int list

val check_decomposable : t -> bool
(** ∧-children have pairwise disjoint variable sets. *)

val check_deterministic : t -> bool
(** ∨-children are pairwise logically inconsistent, verified by exhaustive
    enumeration over the circuit variables. Exponential — testing only.
    Raises [Invalid_argument] beyond 20 variables. *)
