(** Probabilistic relations: a schema plus a finite map from tuples to
    marginal probabilities.

    This is the standard representation of a tuple-independent database
    (TID): each relation [R] carries an extra attribute [P] holding the
    marginal probability [p_D(t) = t.P] of each listed tuple; unlisted
    tuples have probability 0 (Sec. 2, Fig. 1 of the paper).

    Probabilities are not required to lie in [0, 1]: the Appendix of the
    paper uses non-standard "probabilities" (e.g. negative weights for
    Skolem predicates, or [1/(w-1) > 1] in the MLN translation), and all the
    algebra goes through unchanged. Use {!is_standard} to check. *)

type t

val make : Schema.t -> (Tuple.t * float) list -> t
(** Builds a relation.

    @raise Invalid_argument on an arity mismatch or a duplicate tuple. *)

val of_list : string -> (Tuple.t * float) list -> t
(** [of_list name rows] infers the arity from the first row. An empty [rows]
    list is rejected; use {!make} with an explicit schema instead. *)

(** Incremental construction without materialising a row list first.

    Streaming loaders ({!Csv_io.load_relation}, the packed-file reader of
    [Probdb_storage]) feed rows one at a time straight into the relation's
    internal map, so peak heap during a load is one map instead of
    [list + map]. Arity is fixed by the first row; duplicate tuples and
    arity mismatches raise the same [Invalid_argument] errors as {!make},
    at the offending row. *)
module Builder : sig
  type relation := t

  type t

  val create : string -> t
  (** A builder for a relation of that name, arity still open. *)

  val add : t -> Tuple.t -> float -> unit
  (** Append one row.

      @raise Invalid_argument on an arity mismatch with the first row or a
        duplicate tuple, with the same messages as {!make}. *)

  val count : t -> int
  (** Rows added so far. *)

  val finish : ?arity:int -> t -> relation
  (** The finished relation. [arity] is used only when no row was added
      (default 0 — the schema a loader infers from an empty file). *)
end

val deterministic : string -> Tuple.t list -> t
(** All listed tuples get probability 1. *)

val schema : t -> Schema.t
val name : t -> string
val arity : t -> int

val prob : t -> Tuple.t -> float
(** Marginal probability of a tuple; 0 for unlisted tuples. *)

val mem : t -> Tuple.t -> bool
(** True iff the tuple is listed (even with probability 0). *)

val cardinal : t -> int
(** Number of listed tuples. *)

val tuples : t -> Tuple.t list
(** Listed tuples, sorted. *)

val rows : t -> (Tuple.t * float) list
(** Listed tuples with their marginals, sorted by tuple. *)

val fold : (Tuple.t -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over [rows] in sorted order. *)

val map_probs : (Tuple.t -> float -> float) -> t -> t
(** Rewrites every probability; used e.g. by the lower-bound construction of
    Theorem 6.1 and by the unate-to-monotone complementation of Sec. 4. *)

val is_standard : t -> bool
(** True iff every probability lies in [0, 1]. *)

val values : t -> Value.t list
(** All values appearing in some tuple, without duplicates. *)

val pp : Format.formatter -> t -> unit
