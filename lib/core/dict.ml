(* Interning is the hot edge of every columnar scan, so the id table is a
   [Hashtbl.Make] over a cheap value-specialised hash — the polymorphic
   [Hashtbl.hash] walks the boxed representation on every probe. *)
module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash = function
    | Value.Int x -> x * 0x9e3779b1 land max_int
    | Value.Str s -> Hashtbl.hash s
    | Value.Bool b -> if b then 1 else 2
end)

type t = {
  ids : int Vtbl.t;
  mutable vals : Value.t array;  (* vals.(id) = value; grown by doubling *)
  mutable n : int;
}

let create ?(size_hint = 64) () =
  let size_hint = max 1 size_hint in
  { ids = Vtbl.create size_hint; vals = Array.make size_hint (Value.Int 0); n = 0 }

let intern d v =
  match Vtbl.find_opt d.ids v with
  | Some id -> id
  | None ->
      let id = d.n in
      if id = Array.length d.vals then begin
        let bigger = Array.make (2 * id) (Value.Int 0) in
        Array.blit d.vals 0 bigger 0 id;
        d.vals <- bigger
      end;
      d.vals.(id) <- v;
      d.n <- id + 1;
      Vtbl.add d.ids v id;
      id

let find_opt d v = Vtbl.find_opt d.ids v

let value d id =
  if id < 0 || id >= d.n then
    invalid_arg (Printf.sprintf "Dict.value: unknown id %d" id);
  d.vals.(id)

let size d = d.n
