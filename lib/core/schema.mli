(** Relation schemas: a relation name together with named attributes.

    The relational vocabulary of a probabilistic database is a finite set of
    schemas; possible tuples [Tup] are generated per schema from the domain
    (Sec. 2 of the paper). *)

type t = {
  name : string;  (** relation name, e.g. ["S"] *)
  attrs : string list;  (** attribute names; length = arity *)
}

val make : string -> string list -> t
(** [make name attrs] builds a schema with the given attribute names. *)

val of_arity : string -> int -> t
(** [of_arity name k] names the attributes [a1 ... ak]. *)

val arity : t -> int
(** Number of attributes. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [name(attr1, ..., attrk)]. *)
