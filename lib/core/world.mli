(** Possible worlds: ordinary (deterministic) database instances.

    A world is a finite set of facts, where a fact is a relation name applied
    to a tuple. Worlds are what queries are evaluated on; a probabilistic
    database is a distribution over worlds (Sec. 2 of the paper). *)

type fact = string * Tuple.t
(** A relation name applied to a tuple, e.g. [("S", [1; 2])]. *)

type t

val empty : t
(** The world with no facts. *)

val of_facts : fact list -> t
(** Builds a world from a fact list; duplicates collapse. *)

val add : fact -> t -> t

val remove : fact -> t -> t

val mem : t -> string -> Tuple.t -> bool
(** [mem w r t] is true iff fact [(r, t)] holds in [w]. *)

val facts : t -> fact list
(** All facts, sorted. *)

val cardinal : t -> int
(** Number of facts. *)

val union : t -> t -> t

val tuples_of : t -> string -> Tuple.t list
(** All tuples of the given relation present in the world. *)

val of_tid_support : Tid.t -> t
(** The world containing every listed tuple of the TID (ignoring
    probabilities); useful for deterministic evaluation. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
