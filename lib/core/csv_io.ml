module Guard = Probdb_guard.Guard

let split_line line = String.split_on_char ',' line |> List.map String.trim

let csv_error ~path ~lineno fmt =
  Printf.ksprintf
    (fun message ->
      Probdb_error.raise_ (Probdb_error.Csv { path; line = lineno; message }))
    fmt

(* Weights outside [0,1] are legal in-memory (the MLN Or-encoding builds
   them directly through [Tid.make]) but on disk they are almost always a
   data-entry error, so the loader rejects them unless told otherwise. *)
let validate_probability ~strict ~path ~lineno p =
  if Float.is_nan p then csv_error ~path ~lineno "probability is NaN"
  else if p = Float.infinity || p = Float.neg_infinity then
    csv_error ~path ~lineno "probability is infinite"
  else if strict && (p < 0.0 || p > 1.0) then
    csv_error ~path ~lineno
      "probability %g outside [0,1] (use ~strict:false for weights)" p
  else p

let parse_row ?(strict = true) ~path ~lineno line =
  match List.rev (split_line line) with
  | p :: rev_values when rev_values <> [] -> (
      match float_of_string_opt p with
      | Some p ->
          ( List.rev_map Value.of_string rev_values,
            validate_probability ~strict ~path ~lineno p )
      | None -> csv_error ~path ~lineno "cannot parse probability %S" p)
  | _ -> csv_error ~path ~lineno "expected v1,...,vk,p"

let load_relation ?(guard = Probdb_guard.Guard.unlimited) ?(strict = true) name
    path =
  Probdb_error.guard_io ~path @@ fun () ->
  (* inside the wrapper: an injected I/O fault must surface as a typed Io
     error exactly like a real failing open *)
  Guard.io guard ~path;
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* rows stream straight into the builder's map: peak heap is one map,
         not list + map, which matters when packing multi-GB inputs *)
      let b = Relation.Builder.create name in
      let rec read lineno =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            let line = String.trim line in
            (if line <> "" && line.[0] <> '#' then
               let tuple, p = parse_row ~strict ~path ~lineno line in
               try Relation.Builder.add b tuple p
               with Invalid_argument msg -> csv_error ~path ~lineno "%s" msg);
            read (lineno + 1)
      in
      read 1;
      Relation.Builder.finish b)

let load_dir ?(guard = Probdb_guard.Guard.unlimited) ?(strict = true) dir =
  Probdb_error.guard_io ~path:dir @@ fun () ->
  let files = Sys.readdir dir in
  Array.sort String.compare files;
  let rels =
    Array.to_list files
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".csv" then
             Some
               (load_relation ~guard ~strict
                  (Filename.remove_extension f)
                  (Filename.concat dir f))
           else None)
  in
  Tid.make rels

(* Packed containers live in [Probdb_storage], which sits above this
   library, so the dispatch goes through a registration hook: the storage
   module installs its opener at module-initialisation time. *)

let packed_magic = "PDBPACK1"
let packed_loader : (guard:Guard.t -> string -> Tid.t) option ref = ref None
let register_packed_loader f = packed_loader := Some f

let looks_packed path =
  Filename.check_suffix path ".pdb"
  ||
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length packed_magic) with
          | s -> String.equal s packed_magic
          | exception End_of_file -> false)

let load_any ?(guard = Probdb_guard.Guard.unlimited) ?(strict = true) path =
  let exists, is_dir =
    match Sys.is_directory path with
    | d -> (true, d)
    | exception Sys_error _ -> (false, false)
  in
  if not exists then
    Probdb_error.raise_
      (Probdb_error.Io { path; message = "no such file or directory" })
  else if is_dir then load_dir ~guard ~strict path
  else if looks_packed path then (
    Guard.io guard ~path;
    match !packed_loader with
    | Some open_packed -> open_packed ~guard path
    | None ->
        Probdb_error.raise_
          (Probdb_error.Io
             {
               path;
               message =
                 "packed container support not linked (Probdb_storage)";
             }))
  else
    Probdb_error.raise_
      (Probdb_error.Io
         {
           path;
           message =
             "not a CSV directory or packed container (expected a directory \
              of .csv files or a .pdb file)";
         })

let save_relation path r =
  Probdb_error.guard_io ~path @@ fun () ->
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Relation.fold
        (fun t p () ->
          let vals = List.map Value.to_string t in
          output_string oc (String.concat "," (vals @ [ Printf.sprintf "%.17g" p ]));
          output_char oc '\n')
        r ())

let save_dir dir db =
  Probdb_error.guard_io ~path:dir @@ fun () ->
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun r -> save_relation (Filename.concat dir (Relation.name r ^ ".csv")) r)
    (Tid.relations db)
