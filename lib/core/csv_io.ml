module Guard = Probdb_guard.Guard

let split_line line = String.split_on_char ',' line |> List.map String.trim

let csv_error ~path ~lineno fmt =
  Printf.ksprintf
    (fun message ->
      Probdb_error.raise_ (Probdb_error.Csv { path; line = lineno; message }))
    fmt

(* Weights outside [0,1] are legal in-memory (the MLN Or-encoding builds
   them directly through [Tid.make]) but on disk they are almost always a
   data-entry error, so the loader rejects them unless told otherwise. *)
let validate_probability ~strict ~path ~lineno p =
  if Float.is_nan p then csv_error ~path ~lineno "probability is NaN"
  else if p = Float.infinity || p = Float.neg_infinity then
    csv_error ~path ~lineno "probability is infinite"
  else if strict && (p < 0.0 || p > 1.0) then
    csv_error ~path ~lineno
      "probability %g outside [0,1] (use ~strict:false for weights)" p
  else p

let parse_row ?(strict = true) ~path ~lineno line =
  match List.rev (split_line line) with
  | p :: rev_values when rev_values <> [] -> (
      match float_of_string_opt p with
      | Some p ->
          ( List.rev_map Value.of_string rev_values,
            validate_probability ~strict ~path ~lineno p )
      | None -> csv_error ~path ~lineno "cannot parse probability %S" p)
  | _ -> csv_error ~path ~lineno "expected v1,...,vk,p"

let load_relation ?(guard = Probdb_guard.Guard.unlimited) ?(strict = true) name
    path =
  Probdb_error.guard_io ~path @@ fun () ->
  (* inside the wrapper: an injected I/O fault must surface as a typed Io
     error exactly like a real failing open *)
  Guard.io guard ~path;
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec read lineno acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line ->
            let line = String.trim line in
            if line = "" || (String.length line > 0 && line.[0] = '#') then
              read (lineno + 1) acc
            else read (lineno + 1) (parse_row ~strict ~path ~lineno line :: acc)
      in
      let rows = read 1 [] in
      match rows with
      | [] -> Relation.make (Schema.of_arity name 0) []
      | (t, _) :: _ -> Relation.make (Schema.of_arity name (Tuple.arity t)) rows)

let load_dir ?(guard = Probdb_guard.Guard.unlimited) ?(strict = true) dir =
  Probdb_error.guard_io ~path:dir @@ fun () ->
  let files = Sys.readdir dir in
  Array.sort String.compare files;
  let rels =
    Array.to_list files
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".csv" then
             Some
               (load_relation ~guard ~strict
                  (Filename.remove_extension f)
                  (Filename.concat dir f))
           else None)
  in
  Tid.make rels

let save_relation path r =
  Probdb_error.guard_io ~path @@ fun () ->
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Relation.fold
        (fun t p () ->
          let vals = List.map Value.to_string t in
          output_string oc (String.concat "," (vals @ [ Printf.sprintf "%.17g" p ]));
          output_char oc '\n')
        r ())

let save_dir dir db =
  Probdb_error.guard_io ~path:dir @@ fun () ->
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun r -> save_relation (Filename.concat dir (Relation.name r ^ ".csv")) r)
    (Tid.relations db)
