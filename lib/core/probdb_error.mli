(** The typed error channel for user-facing failures.

    Every failure class a [probdb] user can trigger from the outside —
    missing files, malformed CSV rows, query syntax errors, bad CLI
    arguments, an engine with no applicable method, an exhausted resource
    guard — is a constructor here, so the CLI can map each class to a
    distinct exit code and a clean one-line diagnostic instead of a raw
    OCaml backtrace. Library code raises {!Error}; [bin/probdb.ml] catches
    it at the top level.

    Exit-code contract (documented in the README):
    {ul
    {- [2] — {!Io}: a file or directory could not be read or written}
    {- [3] — {!Csv}: a CSV row failed to parse or validate}
    {- [4] — {!Parse}: the query text failed to parse}
    {- [5] — {!Usage}: semantically invalid arguments (bad method name,
       bad generator spec, …)}
    {- [6] — {!No_method}: every configured strategy refused the query and
       degradation was unavailable or disabled}
    {- [7] — {!Exhausted}: a resource guard tripped and no fallback could
       produce an answer}} *)

type t =
  | Io of { path : string; message : string }
  | Csv of { path : string; line : int; message : string }
  | Parse of { message : string }
  | Usage of { message : string }
  | No_method of (string * string) list
      (** per-strategy (name, skip/trip reason) pairs *)
  | Exhausted of { resource : string; site : string; detail : string }

exception Error of t

val raise_ : t -> 'a
(** [raise_ e = raise (Error e)]. *)

val exit_code : t -> int
(** The distinct per-class process exit code (see the table above). *)

val class_name : t -> string
(** Short machine-readable class tag: ["io"], ["csv"], ["parse"],
    ["usage"], ["no-method"], ["exhausted"]. *)

val render : t -> string
(** One-line diagnostic without trailing newline; the CLI prefixes
    ["probdb: "]. *)

val pp : Format.formatter -> t -> unit

val guard_io : path:string -> (unit -> 'a) -> 'a
(** Run [f], rewrapping any [Sys_error] into [Error (Io {path; _})]. *)
