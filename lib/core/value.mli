(** Constants stored in database tuples.

    A value is either an integer, a string, or a boolean. Values are the
    constants of the relational vocabulary: the active domain of a database
    is a finite set of values, and possible tuples are drawn from powers of
    that domain (Sec. 2 of the paper). *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

val compare : t -> t -> int
(** Total order on values, first by constructor, then by payload. *)

val equal : t -> t -> bool

val hash : t -> int
(** Hash compatible with {!equal}, for use in [Hashtbl] keys. *)

val pp : Format.formatter -> t -> unit
(** Prints the payload without the constructor: [7], [abc], [true]. *)

val to_string : t -> string
(** Same rendering as {!pp}; inverse of {!of_string} for round-trippable
    payloads. *)

val of_string : string -> t
(** [of_string s] parses [s] as an [Int] if it looks like an integer, as a
    [Bool] for ["true"]/["false"], and as a [Str] otherwise. Used by the CSV
    loader. *)

val int : int -> t
(** [int i] is [Int i]. *)

val str : string -> t
(** [str s] is [Str s]. *)
