type t =
  | Io of { path : string; message : string }
  | Csv of { path : string; line : int; message : string }
  | Parse of { message : string }
  | Usage of { message : string }
  | No_method of (string * string) list
  | Exhausted of { resource : string; site : string; detail : string }

exception Error of t

let raise_ e = raise (Error e)

let exit_code = function
  | Io _ -> 2
  | Csv _ -> 3
  | Parse _ -> 4
  | Usage _ -> 5
  | No_method _ -> 6
  | Exhausted _ -> 7

let class_name = function
  | Io _ -> "io"
  | Csv _ -> "csv"
  | Parse _ -> "parse"
  | Usage _ -> "usage"
  | No_method _ -> "no-method"
  | Exhausted _ -> "exhausted"

let render = function
  | Io { path; message } ->
      (* [Sys_error] messages usually repeat the path ("p: No such file or
         directory"); strip it and shorten the stock phrasing. *)
      let message =
        match String.index_opt message ':' with
        | Some i when String.sub message 0 i = path ->
            String.trim (String.sub message (i + 1) (String.length message - i - 1))
        | _ -> message
      in
      let message =
        if String.equal message "No such file or directory" then "no such file"
        else message
      in
      Printf.sprintf "%s: %s" path message
  | Csv { path; line; message } -> Printf.sprintf "%s:%d: %s" path line message
  | Parse { message } -> Printf.sprintf "parse error: %s" message
  | Usage { message } -> message
  | No_method reasons ->
      "no method could evaluate the query"
      ^ String.concat ""
          (List.map (fun (s, m) -> Printf.sprintf "; %s: %s" s m) reasons)
  | Exhausted { resource; site; detail } ->
      Printf.sprintf "resource %s exhausted at %s (%s)" resource site detail

let pp ppf e = Format.pp_print_string ppf (render e)

let guard_io ~path f =
  try f () with
  | Sys_error message -> raise_ (Io { path; message })
  | Error _ as e -> raise e
