module Smap = Map.Make (String)

(* Out-of-core readers (Probdb_storage) extend this so the columnar
   executor can recognise a TID it can scan without materialising. *)
type backing = ..

(* A relation slot. Eager TIDs ([make]) start [Forced]; storage-backed
   TIDs ([make_lazy]) start [Thunk] and materialise on first touch.
   [card] is exact either way: eager slots count the relation, lazy slots
   carry the row count from the container's table of contents, so
   [support_size] never forces anything. *)
type slot = { mutable state : slot_state; card : int }
and slot_state = Forced of Relation.t | Thunk of (unit -> Relation.t)

type t = {
  rels : slot Smap.t;
  mutable dom : dom_state;
  lock : Mutex.t;
      (* serialises forcing: serving domains share one TID, and OCaml's
         [Lazy] is not safe under parallel forcing *)
  backing : backing option;
}

and dom_state = Dom of Value.t list | Dom_thunk of (unit -> Value.t list)

let force_slot db s =
  match s.state with
  | Forced r -> r
  | Thunk _ ->
      (* the unlocked read above is a benign race: a slot only ever moves
         Thunk -> Forced, and losing the race just means taking the lock *)
      Mutex.protect db.lock (fun () ->
          match s.state with
          | Forced r -> r
          | Thunk f ->
              let r = f () in
              s.state <- Forced r;
              r)

let compute_domain extra rels =
  List.concat_map Relation.values rels
  |> List.rev_append extra
  |> List.sort_uniq Value.compare

let eager_slot r = { state = Forced r; card = Relation.cardinal r }

let make ?(domain = []) rels =
  let add map r =
    let name = Relation.name r in
    if Smap.mem name map then
      invalid_arg (Printf.sprintf "Tid.make: duplicate relation %s" name);
    Smap.add name (eager_slot r) map
  in
  { rels = List.fold_left add Smap.empty rels;
    dom = Dom_thunk (fun () -> compute_domain domain rels);
    lock = Mutex.create ();
    backing = None }

let make_lazy ?backing ~domain rels =
  let add map (name, card, thunk) =
    if Smap.mem name map then
      invalid_arg (Printf.sprintf "Tid.make: duplicate relation %s" name);
    if card < 0 then
      invalid_arg (Printf.sprintf "Tid.make_lazy: negative cardinality for %s" name);
    Smap.add name { state = Thunk thunk; card } map
  in
  { rels = List.fold_left add Smap.empty rels;
    dom = Dom_thunk domain;
    lock = Mutex.create ();
    backing }

let backing db = db.backing

let relations db = Smap.bindings db.rels |> List.map (fun (_, s) -> force_slot db s)

let relation db name = force_slot db (Smap.find name db.rels)

let relation_opt db name = Option.map (force_slot db) (Smap.find_opt name db.rels)

let mem_relation db name = Smap.mem name db.rels

let forced_relations db =
  Smap.fold
    (fun _ s acc -> match s.state with Forced _ -> acc + 1 | Thunk _ -> acc)
    db.rels 0

let domain db =
  match db.dom with
  | Dom d -> d
  | Dom_thunk _ ->
      Mutex.protect db.lock (fun () ->
          match db.dom with
          | Dom d -> d
          | Dom_thunk f ->
              let d = f () in
              db.dom <- Dom d;
              d)

let domain_size db = List.length (domain db)

let prob db name t =
  match relation_opt db name with None -> 0.0 | Some r -> Relation.prob r t

let support_size db = Smap.fold (fun _ s acc -> acc + s.card) db.rels 0

let support db =
  Smap.fold
    (fun name s acc ->
      Relation.fold (fun t p acc -> (name, t, p) :: acc) (force_slot db s) acc)
    db.rels []
  |> List.rev

let is_standard db =
  Smap.for_all (fun _ s -> Relation.is_standard (force_slot db s)) db.rels

(* Derived TIDs drop the backing: their contents no longer coincide with
   the container, so the executor must not scan the mapped columns. The
   untouched slots are shared — forcing one memoises for every holder. *)

let derive ?(dom = None) db rels =
  { rels;
    dom = (match dom with Some d -> d | None -> db.dom);
    lock = Mutex.create ();
    backing = None }

let map_probs f db =
  derive db
    (Smap.mapi
       (fun name s ->
         { state = Forced (Relation.map_probs (f name) (force_slot db s));
           card = s.card })
       db.rels)

let add_relation db r =
  let name = Relation.name r in
  if Smap.mem name db.rels then
    invalid_arg (Printf.sprintf "Tid.add_relation: relation %s already exists" name);
  let dom = Some (Dom (compute_domain (domain db) [ r ])) in
  derive ~dom db (Smap.add name (eager_slot r) db.rels)

let replace_relation db r =
  let dom = Some (Dom (compute_domain (domain db) [ r ])) in
  derive ~dom db (Smap.add (Relation.name r) (eager_slot r) db.rels)

let restrict db names =
  derive db (Smap.filter (fun name _ -> List.mem name names) db.rels)

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  Smap.iter (fun _ s -> Format.fprintf ppf "%a@ " Relation.pp (force_slot db s)) db.rels;
  Format.fprintf ppf "domain = {%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (domain db)
