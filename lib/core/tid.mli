(** Tuple-independent probabilistic databases (TIDs).

    A TID is a set of probabilistic relations over a shared finite domain.
    A possible world is drawn by including each listed tuple independently
    with its marginal probability; unlisted possible tuples have probability
    0 (Sec. 2, Eq. (3) of the paper). *)

type t

val make : ?domain:Value.t list -> Relation.t list -> t
(** Builds a TID.

    @param domain extra domain values that appear in no tuple; the full
      domain is the active domain (every value appearing in some tuple)
      union this list.
    @raise Invalid_argument if two relations share a name. *)

val relations : t -> Relation.t list

val relation : t -> string -> Relation.t
(** @raise Not_found if no relation with that name exists. *)

val relation_opt : t -> string -> Relation.t option
(** Like {!relation} but total. *)

val mem_relation : t -> string -> bool

val domain : t -> Value.t list
(** The finite domain [DOM], sorted. *)

val domain_size : t -> int

val prob : t -> string -> Tuple.t -> float
(** [prob db r t] is the marginal probability of tuple [t] in relation [r];
    0 when the tuple (or the relation) is absent. *)

val support_size : t -> int
(** Total number of listed tuples across all relations. *)

val support : t -> (string * Tuple.t * float) list
(** All listed tuples as [(relation, tuple, probability)] triples. *)

val is_standard : t -> bool
(** True iff every probability lies in [0, 1]. *)

val map_probs : (string -> Tuple.t -> float -> float) -> t -> t
(** Rewrites every marginal; the callback sees relation name, tuple, and the
    current probability. *)

val add_relation : t -> Relation.t -> t
(** @raise Invalid_argument if a relation with that name already exists. *)

val replace_relation : t -> Relation.t -> t
(** Replaces the same-named relation, or adds it when absent. *)

val restrict : t -> string list -> t
(** Keeps only the named relations (same domain). *)

val pp : Format.formatter -> t -> unit
