(** Tuple-independent probabilistic databases (TIDs).

    A TID is a set of probabilistic relations over a shared finite domain.
    A possible world is drawn by including each listed tuple independently
    with its marginal probability; unlisted possible tuples have probability
    0 (Sec. 2, Eq. (3) of the paper).

    Relations may be {e lazy}: a TID opened from a packed container
    ({!Probdb_storage}) holds thunks that decode a relation from its mapped
    columns only when somebody actually asks for the heap representation.
    Cardinalities and the domain come from the container's table of
    contents, so {!support_size} and {!domain} never force a relation.
    Forcing is memoised and domain-safe (a mutex, not [Lazy]): all serving
    workers can share one TID. *)

type t

type backing = ..
(** Extension point for out-of-core storage: a reader module extends this
    with a handle to its open container and tags the TIDs it creates, so
    downstream layers (the columnar executor) can recognise a TID whose
    relations are scannable in place, without [Probdb_core] depending on
    the storage layer. Every derived TID ({!map_probs}, {!add_relation},
    {!replace_relation}, {!restrict}) drops the tag — its contents no
    longer coincide with the container. *)

val make : ?domain:Value.t list -> Relation.t list -> t
(** Builds a TID.

    @param domain extra domain values that appear in no tuple; the full
      domain is the active domain (every value appearing in some tuple)
      union this list.
    @raise Invalid_argument if two relations share a name. *)

val make_lazy :
  ?backing:backing ->
  domain:(unit -> Value.t list) ->
  (string * int * (unit -> Relation.t)) list ->
  t
(** [make_lazy ?backing ~domain rels] builds a TID whose relations are
    produced on demand. Each entry is [(name, cardinal, thunk)]; [cardinal]
    must equal the row count of the relation the thunk returns (it feeds
    {!support_size} without forcing). [domain] must return the full sorted
    domain. Thunks run at most once, under the TID's lock.

    @raise Invalid_argument on a duplicate name or a negative cardinal. *)

val backing : t -> backing option
(** The storage tag, if this TID came straight from {!make_lazy} with one. *)

val relations : t -> Relation.t list

val relation : t -> string -> Relation.t
(** @raise Not_found if no relation with that name exists. *)

val relation_opt : t -> string -> Relation.t option
(** Like {!relation} but total. *)

val mem_relation : t -> string -> bool

val forced_relations : t -> int
(** How many relations have been materialised to the heap so far — equals
    the relation count for an eager TID; observability for lazy ones. *)

val domain : t -> Value.t list
(** The finite domain [DOM], sorted. *)

val domain_size : t -> int

val prob : t -> string -> Tuple.t -> float
(** [prob db r t] is the marginal probability of tuple [t] in relation [r];
    0 when the tuple (or the relation) is absent. *)

val support_size : t -> int
(** Total number of listed tuples across all relations. Never forces a
    lazy relation (counts come from the container's table of contents). *)

val support : t -> (string * Tuple.t * float) list
(** All listed tuples as [(relation, tuple, probability)] triples. *)

val is_standard : t -> bool
(** True iff every probability lies in [0, 1]. *)

val map_probs : (string -> Tuple.t -> float -> float) -> t -> t
(** Rewrites every marginal; the callback sees relation name, tuple, and the
    current probability. *)

val add_relation : t -> Relation.t -> t
(** @raise Invalid_argument if a relation with that name already exists. *)

val replace_relation : t -> Relation.t -> t
(** Replaces the same-named relation, or adds it when absent. *)

val restrict : t -> string list -> t
(** Keeps only the named relations (same domain). *)

val pp : Format.formatter -> t -> unit
