(** Loading and saving TIDs as directories of CSV files.

    The on-disk format is one file per relation, named [<relation>.csv].
    Each line holds the tuple values followed by the tuple's marginal
    probability: [v1,v2,...,vk,p]. Lines starting with [#] and blank lines
    are ignored. Values parse per {!Value.of_string}. *)

val load_relation : string -> string -> Relation.t
(** [load_relation name path] reads one CSV file.

    @raise Failure with a line-numbered message on malformed input. *)

val load_dir : string -> Tid.t
(** Loads every [*.csv] file in the directory as a relation named after the
    file. *)

val save_relation : string -> Relation.t -> unit
(** [save_relation path r] writes [r] to one CSV file at [path]. *)

val save_dir : string -> Tid.t -> unit
(** Creates the directory if needed and writes one CSV per relation. *)
