(** Loading and saving TIDs as directories of CSV files.

    The on-disk format is one file per relation, named [<relation>.csv].
    Each line holds the tuple values followed by the tuple's marginal
    probability: [v1,v2,...,vk,p]. Lines starting with [#] and blank lines
    are ignored. Values parse per {!Value.of_string}.

    All failures surface through the typed channel {!Probdb_error}: file
    system problems as [Io], malformed or invalid rows as [Csv] with a
    [path:line] position. Probabilities are validated on load: [NaN],
    infinities, negatives and values above 1 are rejected unless
    [~strict:false] relaxes the range check for weight tables (NaN and
    infinities are never accepted). *)

val parse_row :
  ?strict:bool ->
  path:string ->
  lineno:int ->
  string ->
  Value.t list * float
(** Parse one non-comment CSV line into (tuple, probability).

    @raise Probdb_error.Error
      [Csv] when the row is malformed or the probability is NaN, infinite,
      or (with [strict], the default) outside [0,1]. *)

val load_relation :
  ?guard:Probdb_guard.Guard.t -> ?strict:bool -> string -> string -> Relation.t
(** [load_relation name path] reads one CSV file. [guard] threads the
    fault-injection hook ({!Probdb_guard.Guard.io}) through each file open,
    so tests can fail the [n]-th I/O deterministically.

    @raise Probdb_error.Error [Io] or [Csv] on failure. *)

val load_dir : ?guard:Probdb_guard.Guard.t -> ?strict:bool -> string -> Tid.t
(** Loads every [*.csv] file in the directory as a relation named after the
    file.

    @raise Probdb_error.Error [Io] when the directory cannot be read. *)

val load_any : ?guard:Probdb_guard.Guard.t -> ?strict:bool -> string -> Tid.t
(** Format-sniffing load: a directory is read as CSV per {!load_dir}; a
    regular file ending in [.pdb] or starting with the packed-container
    magic is opened through the loader installed by
    {!register_packed_loader} (the [Probdb_storage] library registers one
    when linked). [strict] applies only to the CSV path — packed files
    store exactly what was packed.

    @raise Probdb_error.Error
      [Io] when the path is missing, is neither format, or is packed but
      no packed loader is linked; [Io]/[Csv] as the underlying loader. *)

val register_packed_loader : (guard:Probdb_guard.Guard.t -> string -> Tid.t) -> unit
(** Installs the opener {!load_any} dispatches packed containers to.
    Called once, at module-initialisation time, by [Probdb_storage]. *)

val save_relation : string -> Relation.t -> unit
(** [save_relation path r] writes [r] to one CSV file at [path]. *)

val save_dir : string -> Tid.t -> unit
(** Creates the directory if needed and writes one CSV per relation. *)
