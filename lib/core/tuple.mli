(** Database tuples: finite sequences of {!Value.t}.

    A tuple over a relation of arity [k] is a list of [k] values. Tuples are
    ordered lexicographically so they can key maps and sets. *)

type t = Value.t list

val compare : t -> t -> int
(** Lexicographic order via {!Value.compare}. *)

val equal : t -> t -> bool

val hash : t -> int
(** Hash compatible with {!equal}, for use in [Hashtbl] keys. *)

val arity : t -> int
(** Number of values in the tuple. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(v1, v2, ..., vk)]. *)

val to_string : t -> string
(** Same rendering as {!pp}. *)

val of_ints : int list -> t
(** Wraps each integer as a {!Value.Int}; handy for test fixtures. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
