type t = { schema : Schema.t; map : float Tuple.Map.t }

let arity_error name tuple expected =
  invalid_arg
    (Printf.sprintf "Relation.make: tuple %s has arity %d, expected %d in %s"
       (Tuple.to_string tuple) (Tuple.arity tuple) expected name)

let duplicate_error name tuple =
  invalid_arg
    (Printf.sprintf "Relation.make: duplicate tuple %s in %s" (Tuple.to_string tuple) name)

let make schema rows =
  let k = Schema.arity schema in
  let add map (tuple, p) =
    if Tuple.arity tuple <> k then arity_error schema.Schema.name tuple k;
    if Tuple.Map.mem tuple map then duplicate_error schema.Schema.name tuple;
    Tuple.Map.add tuple p map
  in
  { schema; map = List.fold_left add Tuple.Map.empty rows }

module Builder = struct
  type relation = t

  type t = {
    name : string;
    mutable arity : int option;  (* fixed by the first row *)
    mutable map : float Tuple.Map.t;
    mutable count : int;
  }

  let create name = { name; arity = None; map = Tuple.Map.empty; count = 0 }

  let add b tuple p =
    let k = Tuple.arity tuple in
    (match b.arity with
    | None -> b.arity <- Some k
    | Some a -> if k <> a then arity_error b.name tuple a);
    if Tuple.Map.mem tuple b.map then duplicate_error b.name tuple;
    b.map <- Tuple.Map.add tuple p b.map;
    b.count <- b.count + 1

  let count b = b.count

  let finish ?arity b : relation =
    let a =
      match (b.arity, arity) with
      | Some a, _ -> a
      | None, Some a -> a
      | None, None -> 0
    in
    { schema = Schema.of_arity b.name a; map = b.map }
end

let of_list name rows =
  match rows with
  | [] -> invalid_arg "Relation.of_list: empty row list (arity unknown); use make"
  | (t, _) :: _ -> make (Schema.of_arity name (Tuple.arity t)) rows

let deterministic name tuples = of_list name (List.map (fun t -> (t, 1.0)) tuples)
let schema r = r.schema
let name r = r.schema.Schema.name
let arity r = Schema.arity r.schema
let prob r t = match Tuple.Map.find_opt t r.map with Some p -> p | None -> 0.0
let mem r t = Tuple.Map.mem t r.map
let cardinal r = Tuple.Map.cardinal r.map
let tuples r = Tuple.Map.fold (fun t _ acc -> t :: acc) r.map [] |> List.rev
let rows r = Tuple.Map.bindings r.map
let fold f r init = Tuple.Map.fold f r.map init
let map_probs f r = { r with map = Tuple.Map.mapi f r.map }
let is_standard r = Tuple.Map.for_all (fun _ p -> p >= 0.0 && p <= 1.0) r.map

let values r =
  let add acc t = List.fold_left (fun acc v -> v :: acc) acc t in
  Tuple.Map.fold (fun t _ acc -> add acc t) r.map []
  |> List.sort_uniq Value.compare

let pp ppf r =
  Format.fprintf ppf "@[<v2>%a:" Schema.pp r.schema;
  Tuple.Map.iter (fun t p -> Format.fprintf ppf "@ %a : %g" Tuple.pp t p) r.map;
  Format.fprintf ppf "@]"
