(** Interned value dictionary: the bridge between the boxed {!Value.t}
    world and the columnar executor's int-array world.

    The columnar operators ([Probdb_exec.Exec]) never touch a {!Value.t} in
    their inner loops: every value is interned once at scan time and flows
    through joins and projections as a dense [int] id. One dictionary is
    shared by all operators of one plan evaluation, so equal values always
    carry equal ids and equality tests compile to integer compares. *)

type t

val create : ?size_hint:int -> unit -> t

val intern : t -> Value.t -> int
(** The id of [v], allocating the next dense id (0, 1, 2, …) on first
    sight. Ids are stable for the dictionary's lifetime. *)

val find_opt : t -> Value.t -> int option
(** The id of [v] if it was interned before, without allocating one. Used
    by selections: a constant absent from the dictionary matches no row. *)

val value : t -> int -> Value.t
(** Inverse of {!intern}. Raises [Invalid_argument] on an unknown id. *)

val size : t -> int
(** Number of distinct values interned so far. *)
