(** Out-of-core columnar storage: packed, mmap-backed TIDs.

    A packed container ([.pdb]) is a versioned, checksummed binary file
    holding one whole TID: the interned {!Probdb_core.Dict} string table
    plus, per relation, each column and the probability array as
    page-aligned native-word segments. {!open_file} reads and validates
    only the header and table of contents — O(header), independent of row
    count — and maps the file with [Unix.map_file], so a column costs
    nothing until an operator touches its pages. The columnar executor
    scans the mapped arrays in place (zero copies, no per-tuple boxing);
    everything else sees an ordinary lazy {!Probdb_core.Tid.t} that
    decodes relations to the heap on demand.

    Layout (all words native-endian; the header records an endianness tag
    and the word size, and {!open_file} refuses files from a foreign
    machine rather than byteswapping):

    {v
    page 0        header: magic "PDBPACK1", version, endian tag,
                  word size, file size, TOC location + checksums
    page-aligned  per relation (sorted by name):
                    column 0 .. column k-1   (nrows words of dict ids)
                    probabilities            (nrows float64)
                  dict blob (values in id order, tag + payload)
                  domain segment (dict ids, sorted by Value.compare)
                  table of contents
    v}

    Rows are written in {!Probdb_core.Relation.fold} order (sorted by
    tuple) and values are interned in encounter order, so re-interning the
    blob on open reproduces the ids bit-for-bit: query answers over a
    packed TID are bit-identical to the CSV path for every strategy.

    Corruption — truncation, bad magic, foreign endianness, a checksum
    mismatch, a segment pointing outside the file — surfaces as the typed
    {!Probdb_core.Probdb_error.Io} (CLI exit 2), never as a [Bigarray]
    bounds crash. Header and TOC checksums are verified on every open;
    data-segment checksums only by the explicit {!verify} (so open stays
    O(header)).

    See [docs/STORAGE.md] for the format rationale and operational
    guidance. *)

module Core = Probdb_core

type t
(** An open container. Domain-safe: all serving workers can share one
    handle — lazy decoding and column mapping are serialised internally. *)

type Core.Tid.backing += Packed of t
(** The tag {!tid} puts on the TIDs it creates, letting the plan layer
    recognise a scannable packed TID (see {!backing}). *)

type int_column = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_column = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type view = {
  vname : string;
  varity : int;
  vrows : int;
  vcols : int_column array;  (** one mapped dict-id array per attribute *)
  vprobs : float_column;  (** mapped marginal probabilities *)
}
(** A relation's mapped columns, ready for in-place scanning. *)

val magic : string
(** ["PDBPACK1"] — the 8-byte file magic. *)

val format_version : int

val pack : ?guard:Probdb_guard.Guard.t -> Core.Tid.t -> string -> unit
(** [pack db path] writes the whole TID to a fresh container at [path].

    @raise Probdb_error.Error [Io] when the file cannot be written. *)

val open_file : ?guard:Probdb_guard.Guard.t -> string -> t
(** Validates header + TOC and maps nothing else; O(header).

    @raise Probdb_error.Error
      [Io] on any structural problem: missing/truncated file, bad magic,
      foreign endianness or word size, unsupported version, checksum
      mismatch, or a segment out of bounds. *)

val close : t -> unit
(** Closes the file descriptor. Already-mapped columns stay valid (the
    mappings outlive the descriptor); further lazy loads fail. *)

val path : t -> string
val file_size : t -> int
(** Container size in bytes. *)

val relations : t -> (string * int * int) list
(** [(name, arity, nrows)] per relation, sorted by name; from the TOC,
    touches no data pages. *)

val dict : t -> Core.Dict.t
(** The interned value table, decoded from the blob on first call and
    shared afterwards. Treat as read-only: the executor looks up query
    constants with [Dict.find_opt] and never interns during evaluation,
    so one dictionary serves all concurrent workers. *)

val view : t -> string -> view option
(** The named relation's mapped columns ([None] if absent). Columns are
    mapped on first request and cached; each first map counts into the
    [storage.cols_mapped] / [storage.bytes_mapped] metrics. *)

val tid : t -> Core.Tid.t
(** The container as a lazy TID tagged [Packed t]: cardinalities and the
    domain come from the TOC; a relation is decoded to the heap only when
    something asks for its {!Probdb_core.Relation.t} (grounded
    strategies, [support], pretty-printing). Safe plans over this TID
    scan the mapped columns directly and materialise nothing. *)

val backing : Core.Tid.t -> t option
(** [backing db] is the open container behind [db], when [db] came from
    {!tid} (derived TIDs drop the tag — see {!Probdb_core.Tid.backing}). *)

val verify : t -> unit
(** Recomputes every data-segment checksum (faults in the whole file).

    @raise Probdb_error.Error [Io] naming the first corrupt segment. *)

(** Per-handle observability, for the [storage] block of {!Probdb_obs.Stats}
    (process-wide totals live in the [storage.*] metrics). *)

val open_seconds : t -> float
(** Wall-clock time {!open_file} spent on this handle. *)

val bytes_mapped : t -> int
(** Bytes of column segments mapped so far via {!view}. *)

val cols_mapped : t -> int
val relations_materialized : t -> int
(** Relations decoded to the heap so far via {!tid}'s lazy slots. *)
