module Core = Probdb_core
module Dict = Core.Dict
module Value = Core.Value
module Relation = Core.Relation
module Tid = Core.Tid
module Err = Core.Probdb_error
module Guard = Probdb_guard.Guard
module Metrics = Probdb_obs.Metrics
module Clock = Probdb_obs.Clock

let magic = "PDBPACK1"
let format_version = 1
let page = 4096
let word = 8

(* Fixed bit pattern whose byteswap differs from itself: a reader on a
   foreign-endian machine sees the swapped value and can say so precisely. *)
let endian_tag = 0x0123456789ABCDEFL
let endian_tag_swapped = Int64.of_string "0xEFCDAB8967452301"

let m_opens = Metrics.counter "storage.opens"
let m_open_s = Metrics.histogram "storage.open_s"
let m_packs = Metrics.counter "storage.packs"
let m_pack_s = Metrics.histogram "storage.pack_s"
let m_bytes_mapped = Metrics.counter "storage.bytes_mapped"
let m_cols_mapped = Metrics.counter "storage.cols_mapped"
let m_rels_mat = Metrics.counter "storage.relations_materialized"

let io_error path fmt =
  Printf.ksprintf (fun message -> Err.raise_ (Err.Io { path; message })) fmt

(* ------------------------------------------------------------------ *)
(* Checksums: FNV-1a over native 64-bit words (OCaml int arithmetic —
   boxed Int64 folds would crawl over multi-GB segments). Deterministic
   because the header pins word size and endianness. *)

let fnv_prime = 0x100000001b3
let fnv_init = 0x2545F4914F6CDD1D

let crc_step h w = (h lxor w) * fnv_prime land max_int

let crc_bytes ?(h = fnv_init) b off len =
  let h = ref h and i = ref off in
  let stop = off + len in
  while !i < stop do
    h := crc_step !h (Int64.to_int (Bytes.get_int64_ne b !i));
    i := !i + word
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Little codec helpers: native u64 fields, length-prefixed strings.   *)

let buf_u64 b n = Buffer.add_int64_ne b (Int64.of_int n)

let buf_str b s =
  buf_u64 b (String.length s);
  Buffer.add_string b s

let rd_u64 b pos =
  let v = Int64.to_int (Bytes.get_int64_ne b !pos) in
  pos := !pos + word;
  v

let rd_str b pos =
  let n = rd_u64 b pos in
  if n < 0 || n > Bytes.length b - !pos then invalid_arg "rd_str";
  let s = Bytes.sub_string b !pos n in
  pos := !pos + n;
  s

let pad8 n = (n + 7) land lnot 7
let pad_page n = (n + page - 1) / page * page

(* ------------------------------------------------------------------ *)
(* Metadata                                                            *)

type seg = { soff : int; scrc : int }

type int_column = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_column =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type rel_meta = {
  rname : string;
  arity : int;
  nrows : int;
  col_segs : seg array;
  prob_seg : seg;
  mutable mcols : int_column option array;  (* mapped lazily, cached *)
  mutable mprobs : float_column option;
}

type t = {
  tpath : string;
  fd : Unix.file_descr;
  size : int;
  rels : rel_meta array;  (* sorted by name *)
  dict_seg : seg;
  dict_len : int;  (* padded blob bytes *)
  dict_count : int;
  dom_seg : seg;
  dom_count : int;
  toc_off : int;
  toc_len : int;
  lock : Mutex.t;
  mutable hdict : Dict.t option;
  mutable closed : bool;
  opened_s : float;
  mutable h_bytes_mapped : int;
  mutable h_cols_mapped : int;
  mutable h_rels_mat : int;
}

type Tid.backing += Packed of t

type view = {
  vname : string;
  varity : int;
  vrows : int;
  vcols : int_column array;
  vprobs : float_column;
}

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)

let dict_blob dict =
  let b = Buffer.create 4096 in
  let n = Dict.size dict in
  buf_u64 b n;
  for i = 0 to n - 1 do
    match Dict.value dict i with
    | Value.Int k ->
        Buffer.add_char b '\000';
        buf_u64 b k
    | Value.Str s ->
        Buffer.add_char b '\001';
        buf_str b s
    | Value.Bool v ->
        Buffer.add_char b '\002';
        Buffer.add_char b (if v then '\001' else '\000')
  done;
  Buffer.to_bytes b

let decode_dict ~path blob count =
  let dict = Dict.create ~size_hint:(2 * count) () in
  let pos = ref word in
  (try
     for _ = 1 to count do
       let tag = Bytes.get blob !pos in
       incr pos;
       let v =
         match tag with
         | '\000' -> Value.Int (rd_u64 blob pos)
         | '\001' -> Value.Str (rd_str blob pos)
         | '\002' ->
             let c = Bytes.get blob !pos in
             incr pos;
             Value.Bool (c <> '\000')
         | _ -> invalid_arg "tag"
       in
       ignore (Dict.intern dict v)
     done
   with Invalid_argument _ ->
     io_error path "corrupt dictionary blob (bad entry encoding)");
  dict

let pack ?(guard = Guard.unlimited) db path =
  Err.guard_io ~path @@ fun () ->
  Guard.io guard ~path;
  let t0 = Clock.now () in
  let dict = Dict.create () in
  (* Interning order is the format's id assignment: row-major in sorted
     relation-name then sorted tuple order, then leftover domain values.
     [decode_dict] replays the blob in this order, so open reproduces the
     exact ids the executor will find in the column segments. *)
  let rels =
    List.map
      (fun r ->
        let name = Relation.name r in
        let arity = Relation.arity r in
        let n = Relation.cardinal r in
        let cols = Array.init arity (fun _ -> Array.make n 0) in
        let probs = Array.make n 0.0 in
        let i = ref 0 in
        Relation.fold
          (fun t p () ->
            List.iteri (fun j v -> cols.(j).(!i) <- Dict.intern dict v) t;
            probs.(!i) <- p;
            incr i)
          r ();
        (name, arity, n, cols, probs))
      (Tid.relations db)
  in
  let dom_ids = List.map (Dict.intern dict) (Tid.domain db) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let pos = ref 0 in
      let write_padded bytes =
        (* every segment starts on a page boundary and is zero-padded to
           the next one: Unix.map_file demands page-aligned offsets *)
        let len = Bytes.length bytes in
        let off = !pos in
        output_bytes oc bytes;
        let padded = pad_page (off + len) in
        if padded > off + len then
          output_bytes oc (Bytes.create (padded - off - len));
        pos := padded;
        { soff = off; scrc = crc_bytes bytes 0 len }
      in
      let word_seg n fill =
        let b = Bytes.create (n * word) in
        for i = 0 to n - 1 do
          Bytes.set_int64_ne b (i * word) (fill i)
        done;
        write_padded b
      in
      (* header placeholder *)
      output_bytes oc (Bytes.create page);
      pos := page;
      let packed_rels =
        List.map
          (fun (name, arity, n, cols, probs) ->
            let col_segs =
              Array.map
                (fun ids -> word_seg n (fun i -> Int64.of_int ids.(i)))
                cols
            in
            let prob_seg =
              word_seg n (fun i -> Int64.bits_of_float probs.(i))
            in
            (name, arity, n, col_segs, prob_seg))
          rels
      in
      let blob = dict_blob dict in
      let blob_padded =
        let b = Bytes.make (pad8 (Bytes.length blob)) '\000' in
        Bytes.blit blob 0 b 0 (Bytes.length blob);
        b
      in
      let dict_len = Bytes.length blob_padded in
      let dict_seg = write_padded blob_padded in
      let dom = Array.of_list dom_ids in
      let dom_seg =
        word_seg (Array.length dom) (fun i -> Int64.of_int dom.(i))
      in
      (* table of contents *)
      let toc = Buffer.create 1024 in
      buf_u64 toc dict_seg.soff;
      buf_u64 toc dict_len;
      buf_u64 toc dict_seg.scrc;
      buf_u64 toc (Dict.size dict);
      buf_u64 toc dom_seg.soff;
      buf_u64 toc dom_seg.scrc;
      buf_u64 toc (Array.length dom);
      buf_u64 toc (List.length packed_rels);
      List.iter
        (fun (name, arity, n, col_segs, prob_seg) ->
          buf_str toc name;
          buf_u64 toc arity;
          buf_u64 toc n;
          buf_u64 toc prob_seg.soff;
          buf_u64 toc prob_seg.scrc;
          Array.iter
            (fun s ->
              buf_u64 toc s.soff;
              buf_u64 toc s.scrc)
            col_segs)
        packed_rels;
      let toc_bytes =
        let raw = Buffer.to_bytes toc in
        let b = Bytes.make (pad8 (Bytes.length raw)) '\000' in
        Bytes.blit raw 0 b 0 (Bytes.length raw);
        b
      in
      let toc_len = Bytes.length toc_bytes in
      let toc_seg = write_padded toc_bytes in
      let file_size = !pos in
      (* patch the header now that every offset is known *)
      let hdr = Bytes.make page '\000' in
      Bytes.blit_string magic 0 hdr 0 8;
      Bytes.set_int64_ne hdr 8 (Int64.of_int format_version);
      Bytes.set_int64_ne hdr 16 endian_tag;
      Bytes.set_int64_ne hdr 24 (Int64.of_int word);
      Bytes.set_int64_ne hdr 32 (Int64.of_int file_size);
      Bytes.set_int64_ne hdr 40 (Int64.of_int toc_seg.soff);
      Bytes.set_int64_ne hdr 48 (Int64.of_int toc_len);
      Bytes.set_int64_ne hdr 56 (Int64.of_int toc_seg.scrc);
      Bytes.set_int64_ne hdr 64 (Int64.of_int (crc_bytes hdr 0 64));
      seek_out oc 0;
      output_bytes oc hdr);
  Metrics.incr m_packs;
  Metrics.observe m_pack_s (Clock.now () -. t0)

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)

let pread_exact ~path fd off len =
  let b = Bytes.create len in
  let pos = ref 0 in
  (try
     ignore (Unix.lseek fd off Unix.SEEK_SET);
     while !pos < len do
       let n = Unix.read fd b !pos (len - !pos) in
       if n = 0 then io_error path "truncated read at offset %d" (off + !pos);
       pos := !pos + n
     done
   with Unix.Unix_error (e, _, _) ->
     io_error path "read failed at offset %d: %s" off (Unix.error_message e));
  b

let check_seg ~path ~size ~what off len =
  if off < page || off mod page <> 0 then
    io_error path "corrupt container: %s segment at unaligned offset %d" what
      off;
  if len < 0 || off + len > size then
    io_error path
      "truncated container: %s segment [%d, %d) extends past end of file (%d \
       bytes)"
      what off (off + len) size

let parse_toc ~path ~size bytes =
  let pos = ref 0 in
  try
    let dict_off = rd_u64 bytes pos in
    let dict_len = rd_u64 bytes pos in
    let dict_crc = rd_u64 bytes pos in
    let dict_count = rd_u64 bytes pos in
    let dom_off = rd_u64 bytes pos in
    let dom_crc = rd_u64 bytes pos in
    let dom_count = rd_u64 bytes pos in
    let nrels = rd_u64 bytes pos in
    if dict_count < 0 || dom_count < 0 || nrels < 0 || nrels > 1_000_000 then
      invalid_arg "counts";
    check_seg ~path ~size ~what:"dictionary" dict_off dict_len;
    check_seg ~path ~size ~what:"domain" dom_off (dom_count * word);
    let rels =
      Array.init nrels (fun _ ->
          let rname = rd_str bytes pos in
          let arity = rd_u64 bytes pos in
          let nrows = rd_u64 bytes pos in
          if arity < 0 || nrows < 0 then invalid_arg "rel";
          let prob_off = rd_u64 bytes pos in
          let prob_crc = rd_u64 bytes pos in
          let col_segs =
            Array.init arity (fun _ ->
                let o = rd_u64 bytes pos in
                let c = rd_u64 bytes pos in
                { soff = o; scrc = c })
          in
          check_seg ~path ~size
            ~what:(rname ^ " probabilities")
            prob_off (nrows * word);
          Array.iteri
            (fun j s ->
              check_seg ~path ~size
                ~what:(Printf.sprintf "%s column %d" rname j)
                s.soff (nrows * word))
            col_segs;
          {
            rname;
            arity;
            nrows;
            col_segs;
            prob_seg = { soff = prob_off; scrc = prob_crc };
            mcols = Array.make arity None;
            mprobs = None;
          })
    in
    ( rels,
      { soff = dict_off; scrc = dict_crc },
      dict_len,
      dict_count,
      { soff = dom_off; scrc = dom_crc },
      dom_count )
  with Invalid_argument _ ->
    io_error path "corrupt container: table of contents does not parse"

let open_file ?(guard = Guard.unlimited) path =
  Guard.io guard ~path;
  let t0 = Clock.now () in
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      io_error path "%s" (Unix.error_message e)
  in
  match
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < page then
        io_error path
          "truncated container: %d bytes, need at least one %d-byte header \
           page"
          size page;
      let hdr = pread_exact ~path fd 0 page in
      if Bytes.sub_string hdr 0 8 <> magic then
        io_error path "bad magic: not a probdb packed container";
      let etag = Bytes.get_int64_ne hdr 16 in
      if Int64.equal etag endian_tag_swapped then
        io_error path
          "endianness mismatch: container was written on a foreign-endian \
           machine";
      if not (Int64.equal etag endian_tag) then
        io_error path "corrupt container: bad endianness tag";
      let version = Int64.to_int (Bytes.get_int64_ne hdr 8) in
      if version <> format_version then
        io_error path "unsupported container version %d (this build reads %d)"
          version format_version;
      let wsize = Int64.to_int (Bytes.get_int64_ne hdr 24) in
      if wsize <> word then
        io_error path "unsupported word size %d (this build uses %d)" wsize
          word;
      let hcrc = Int64.to_int (Bytes.get_int64_ne hdr 64) in
      if crc_bytes hdr 0 64 <> hcrc then
        io_error path "corrupt container: header checksum mismatch";
      let rec_size = Int64.to_int (Bytes.get_int64_ne hdr 32) in
      if rec_size <> size then
        io_error path
          "truncated container: header records %d bytes but file has %d"
          rec_size size;
      let toc_off = Int64.to_int (Bytes.get_int64_ne hdr 40) in
      let toc_len = Int64.to_int (Bytes.get_int64_ne hdr 48) in
      let toc_crc = Int64.to_int (Bytes.get_int64_ne hdr 56) in
      check_seg ~path ~size ~what:"table-of-contents" toc_off toc_len;
      if toc_len mod word <> 0 then
        io_error path "corrupt container: table of contents length %d" toc_len;
      let toc_bytes = pread_exact ~path fd toc_off toc_len in
      if crc_bytes toc_bytes 0 toc_len <> toc_crc then
        io_error path "corrupt container: table-of-contents checksum mismatch";
      let rels, dict_seg, dict_len, dict_count, dom_seg, dom_count =
        parse_toc ~path ~size toc_bytes
      in
      let opened_s = Clock.now () -. t0 in
      Metrics.incr m_opens;
      Metrics.observe m_open_s opened_s;
      {
        tpath = path;
        fd;
        size;
        rels;
        dict_seg;
        dict_len;
        dict_count;
        dom_seg;
        dom_count;
        toc_off;
        toc_len;
        lock = Mutex.create ();
        hdict = None;
        closed = false;
        opened_s;
        h_bytes_mapped = 0;
        h_cols_mapped = 0;
        h_rels_mat = 0;
      })
      ()
  with
  | t -> t
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let close t =
  Mutex.protect t.lock (fun () ->
      if not t.closed then begin
        t.closed <- true;
        try Unix.close t.fd with Unix.Unix_error _ -> ()
      end)

let path t = t.tpath
let file_size t = t.size
let open_seconds t = t.opened_s
let bytes_mapped t = t.h_bytes_mapped
let cols_mapped t = t.h_cols_mapped
let relations_materialized t = t.h_rels_mat

let relations t =
  Array.to_list t.rels |> List.map (fun m -> (m.rname, m.arity, m.nrows))

let fail_closed t =
  if t.closed then io_error t.tpath "container is closed"

(* Mapping helpers. [Unix.map_file] itself is lazy — pages fault in on
   first touch — so "mapping" a column is VMA setup, not I/O. *)

let note_mapped t bytes =
  t.h_bytes_mapped <- t.h_bytes_mapped + bytes;
  t.h_cols_mapped <- t.h_cols_mapped + 1;
  Metrics.add m_bytes_mapped bytes;
  Metrics.incr m_cols_mapped

let map_ints t off n : int_column =
  Bigarray.array1_of_genarray
    (Unix.map_file t.fd ~pos:(Int64.of_int off) Bigarray.int Bigarray.c_layout
       false [| n |])

let map_floats t off n : float_column =
  Bigarray.array1_of_genarray
    (Unix.map_file t.fd ~pos:(Int64.of_int off) Bigarray.float64
       Bigarray.c_layout false [| n |])

let find_rel t name =
  (* few relations: linear scan beats building an index *)
  let rec go i =
    if i >= Array.length t.rels then None
    else if String.equal t.rels.(i).rname name then Some t.rels.(i)
    else go (i + 1)
  in
  go 0

let col t m j =
  match m.mcols.(j) with
  | Some c -> c
  | None ->
      Mutex.protect t.lock (fun () ->
          match m.mcols.(j) with
          | Some c -> c
          | None ->
              fail_closed t;
              let c = map_ints t m.col_segs.(j).soff m.nrows in
              m.mcols.(j) <- Some c;
              note_mapped t (m.nrows * word);
              c)

let probs_col t m =
  match m.mprobs with
  | Some c -> c
  | None ->
      Mutex.protect t.lock (fun () ->
          match m.mprobs with
          | Some c -> c
          | None ->
              fail_closed t;
              let c = map_floats t m.prob_seg.soff m.nrows in
              m.mprobs <- Some c;
              note_mapped t (m.nrows * word);
              c)

let view t name =
  Option.map
    (fun m ->
      {
        vname = m.rname;
        varity = m.arity;
        vrows = m.nrows;
        vcols = Array.init m.arity (fun j -> col t m j);
        vprobs = probs_col t m;
      })
    (find_rel t name)

let dict t =
  match t.hdict with
  | Some d -> d
  | None ->
      Mutex.protect t.lock (fun () ->
          match t.hdict with
          | Some d -> d
          | None ->
              fail_closed t;
              let blob = pread_exact ~path:t.tpath t.fd t.dict_seg.soff t.dict_len in
              if crc_bytes blob 0 t.dict_len <> t.dict_seg.scrc then
                io_error t.tpath
                  "corrupt container: dictionary checksum mismatch";
              let d = decode_dict ~path:t.tpath blob t.dict_count in
              t.hdict <- Some d;
              d)

let domain t =
  let d = dict t in
  let ids = Mutex.protect t.lock (fun () ->
      fail_closed t;
      map_ints t t.dom_seg.soff t.dom_count)
  in
  List.init t.dom_count (fun i -> Dict.value d ids.{i})

let materialize t m =
  let d = dict t in
  let cols = Array.init m.arity (fun j -> col t m j) in
  let probs = probs_col t m in
  let b = Relation.Builder.create m.rname in
  for i = 0 to m.nrows - 1 do
    let tuple = List.init m.arity (fun j -> Dict.value d cols.(j).{i}) in
    Relation.Builder.add b tuple probs.{i}
  done;
  t.h_rels_mat <- t.h_rels_mat + 1;
  Metrics.incr m_rels_mat;
  Relation.Builder.finish ~arity:m.arity b

let tid t =
  Tid.make_lazy ~backing:(Packed t)
    ~domain:(fun () -> domain t)
    (Array.to_list t.rels
    |> List.map (fun m -> (m.rname, m.nrows, fun () -> materialize t m)))

let backing db =
  match Tid.backing db with Some (Packed t) -> Some t | _ -> None

(* ------------------------------------------------------------------ *)
(* Full verification: recompute every data-segment checksum.           *)

let crc_region t off len =
  (* streamed pread so verify works on containers larger than RAM *)
  let chunk = 1 lsl 20 in
  let h = ref fnv_init in
  let done_ = ref 0 in
  while !done_ < len do
    let n = min chunk (len - !done_) in
    let b = pread_exact ~path:t.tpath t.fd (off + !done_) n in
    h := crc_bytes ~h:!h b 0 n;
    done_ := !done_ + n
  done;
  !h

let verify t =
  Mutex.protect t.lock (fun () -> fail_closed t);
  let check what seg len =
    if crc_region t seg.soff len <> seg.scrc then
      io_error t.tpath "corrupt container: %s checksum mismatch" what
  in
  check "dictionary" t.dict_seg t.dict_len;
  check "domain" t.dom_seg (t.dom_count * word);
  Array.iter
    (fun m ->
      check (m.rname ^ " probabilities") m.prob_seg (m.nrows * word);
      Array.iteri
        (fun j s -> check (Printf.sprintf "%s column %d" m.rname j) s (m.nrows * word))
        m.col_segs)
    t.rels

(* Install the format-sniffing hook: [Csv_io.load_any] dispatches [.pdb]
   files here once this library is linked. *)
let () =
  Core.Csv_io.register_packed_loader (fun ~guard path ->
      tid (open_file ~guard path))
