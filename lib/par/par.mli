(** A dependency-free multicore runtime: a [Domain] worker pool plus
    deterministic splittable RNG streams.

    Design constraints, in order:

    - {e Determinism}: a computation run through the pool must return the
      same answer for every domain count, including 1. {!run} and
      {!map_reduce} therefore collect results by task index and reduce in
      index order, never in completion order, and {!Rng} derives one
      independent stream per task index rather than per worker.
    - {e Safety under nesting}: a task that itself calls into the pool runs
      its subtasks sequentially (tracked with a domain-local flag), so
      recursive solvers can parallelise their top-level branches without
      deadlock or unbounded domain spawning.
    - {e Exception transparency}: if tasks raise, the exception of the
      lowest-indexed failing task is re-raised in the caller once every
      worker has drained — in particular [Probdb_guard.Guard.Exhausted]
      trips propagate out of workers exactly like sequential code. *)

type pool

val create : ?domains:int -> unit -> pool
(** A pool that aims for [domains]-way parallelism (clamped to [1, 64];
    default {!default_domains}). Workers are spawned per {!run} call and
    joined before it returns, so a pool holds no OS resources between
    calls and never outlives its work. *)

val domains : pool -> int
(** The configured parallelism (1 means: always sequential). *)

val tasks_run : pool -> int
(** Total tasks executed through this pool so far (for [Stats.par_tasks]). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], clamped to [1, 64]. *)

val run : pool -> (unit -> 'a) list -> 'a list
(** Run the thunks, possibly in parallel, and return their results in task
    order. Spawns [min (domains pool - 1) (tasks - 1)] extra domains; the
    calling domain works too. With [domains pool = 1], a single task, or
    when called from inside another {!run} task, this is [List.map] with
    the same exception behaviour. *)

val map_reduce :
  pool -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> int -> 'b
(** [map_reduce pool ~map ~reduce ~init n] computes
    [reduce (... (reduce init (map 0)) ...) (map (n-1))] with the [map]
    calls running on the pool. [reduce] is applied sequentially in index
    order in the calling domain, so non-associative reductions (floating
    point sums) are deterministic. *)

(** A persistent worker service: the long-lived sibling of the per-call
    {!run} pool. {!Service.start} spawns a fixed set of worker domains
    that block on a {e bounded} work queue and drain it until shutdown —
    the shape a long-running query server needs, where {!run}'s
    spawn-per-call workers would churn a domain per request.

    The queue bound is the backpressure contract: {!Service.try_submit}
    {e never blocks} and reports [`Overloaded] when the queue is full, so
    callers decide what overload means (shed, degrade, retry) instead of
    queueing unboundedly. Workers run with the nested-[run] flag set, so a
    handler that calls back into a {!pool} executes sequentially rather
    than spawning domains from inside a worker. A handler exception is
    counted in {!Service.failures} and swallowed; one poisonous item never
    kills a worker.

    The service is {e self-healing}: an exception that escapes a worker
    {e outside} the handler (a chaos-injected crash, a runtime failure)
    retires that worker and spawns a replacement, and with
    [stall_deadline_s] set a watchdog thread additionally abandons any
    worker busy past the deadline. Either way the item the worker was
    processing is {e doomed}: it is handed to [on_doom] (a query server
    answers it with a typed internal error) and its in-flight slot is
    released exactly once, however the doom/completion race resolves.
    Restarts are counted in {!Service.restarts} and in the
    [par.worker_restarts] metric. *)
module Service : sig
  type 'a t

  val start :
    ?domains:int ->
    ?stall_deadline_s:float ->
    ?on_doom:('a -> unit) ->
    ?on_restart:(unit -> unit) ->
    capacity:int ->
    ('a -> unit) ->
    'a t
  (** Spawn [domains] worker domains (clamped to [1, 64]; default
      {!default_domains}) all running the handler over items of a shared
      queue bounded at [capacity] (>= 1, or [Invalid_argument]).

      [stall_deadline_s] (> 0, or [Invalid_argument]; off by default)
      starts a watchdog thread that retires any worker busy past the
      deadline on one item and spawns a replacement — the abandoned
      domain cannot be killed, so it is left to finish (or wedge) off the
      books and its eventual result is discarded. [on_doom] is called
      (outside the service lock) with each item lost to a crash or stall;
      [on_restart] after each replacement worker is spawned. Exceptions
      from either callback are swallowed. *)

  val try_submit : 'a t -> 'a -> [ `Accepted of int | `Overloaded | `Closed ]
  (** Non-blocking enqueue. [`Accepted depth] reports the queue depth just
      after the push (the admission-control signal); [`Overloaded] means
      the queue is at capacity and the item was {e not} enqueued;
      [`Closed] means {!shutdown} has begun. *)

  val depth : 'a t -> int
  (** Items enqueued and not yet picked up by a worker. *)

  val in_flight : 'a t -> int
  (** Items currently being processed by workers. *)

  val domains : 'a t -> int

  val capacity : 'a t -> int

  val submitted : 'a t -> int
  (** Items accepted since {!start}. *)

  val completed : 'a t -> int
  (** Handler runs finished (including failed ones) since {!start}. *)

  val failures : 'a t -> int
  (** Handler runs that raised (the exception is swallowed), plus workers
      lost to crashes. *)

  val restarts : 'a t -> int
  (** Replacement workers spawned after a crash or stall. *)

  val wait_idle : 'a t -> unit
  (** Block until the queue is empty and no item is in flight. *)

  val shutdown : ?drain:bool -> 'a t -> 'a list
  (** Close the service to new submissions and join the workers. With
      [drain] (the default) workers first finish every queued item and the
      result is [[]]; with [~drain:false] the queue is cleared {e before}
      the workers stop and the dropped items are returned so the caller
      can fail them out (a query server answers each with a typed
      shutting-down error). In-flight items always run to completion.
      Idempotent; the second call returns [[]] immediately. *)
end

(** Deterministic splittable RNG (splitmix64).

    Streams are derived from a [(seed, stream index)] pair, so task [i]
    can be handed stream [i] regardless of which worker executes it: the
    sequence of draws depends only on the seed and the index. The
    generator passes the usual empirical tests at the scale of Monte-Carlo
    sampling and costs a handful of integer operations per draw. *)
module Rng : sig
  type t

  val make : seed:int -> stream:int -> t
  (** Stream [stream] of the family identified by [seed]. Distinct
      [(seed, stream)] pairs give (statistically) independent sequences. *)

  val int64 : t -> int64
  (** Next raw 64-bit output. *)

  val float : t -> float -> float
  (** [float t bound] draws uniformly from [\[0, bound)] using the top 53
      bits of {!int64}. *)

  val int : t -> int -> int
  (** [int t bound] draws uniformly from [\[0, bound)]; [bound > 0]. *)
end
