(** A dependency-free multicore runtime: a [Domain] worker pool plus
    deterministic splittable RNG streams.

    Design constraints, in order:

    - {e Determinism}: a computation run through the pool must return the
      same answer for every domain count, including 1. {!run} and
      {!map_reduce} therefore collect results by task index and reduce in
      index order, never in completion order, and {!Rng} derives one
      independent stream per task index rather than per worker.
    - {e Safety under nesting}: a task that itself calls into the pool runs
      its subtasks sequentially (tracked with a domain-local flag), so
      recursive solvers can parallelise their top-level branches without
      deadlock or unbounded domain spawning.
    - {e Exception transparency}: if tasks raise, the exception of the
      lowest-indexed failing task is re-raised in the caller once every
      worker has drained — in particular [Probdb_guard.Guard.Exhausted]
      trips propagate out of workers exactly like sequential code. *)

type pool

val create : ?domains:int -> unit -> pool
(** A pool that aims for [domains]-way parallelism (clamped to [1, 64];
    default {!default_domains}). Workers are spawned per {!run} call and
    joined before it returns, so a pool holds no OS resources between
    calls and never outlives its work. *)

val domains : pool -> int
(** The configured parallelism (1 means: always sequential). *)

val tasks_run : pool -> int
(** Total tasks executed through this pool so far (for [Stats.par_tasks]). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], clamped to [1, 64]. *)

val run : pool -> (unit -> 'a) list -> 'a list
(** Run the thunks, possibly in parallel, and return their results in task
    order. Spawns [min (domains pool - 1) (tasks - 1)] extra domains; the
    calling domain works too. With [domains pool = 1], a single task, or
    when called from inside another {!run} task, this is [List.map] with
    the same exception behaviour. *)

val map_reduce :
  pool -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> int -> 'b
(** [map_reduce pool ~map ~reduce ~init n] computes
    [reduce (... (reduce init (map 0)) ...) (map (n-1))] with the [map]
    calls running on the pool. [reduce] is applied sequentially in index
    order in the calling domain, so non-associative reductions (floating
    point sums) are deterministic. *)

(** Deterministic splittable RNG (splitmix64).

    Streams are derived from a [(seed, stream index)] pair, so task [i]
    can be handed stream [i] regardless of which worker executes it: the
    sequence of draws depends only on the seed and the index. The
    generator passes the usual empirical tests at the scale of Monte-Carlo
    sampling and costs a handful of integer operations per draw. *)
module Rng : sig
  type t

  val make : seed:int -> stream:int -> t
  (** Stream [stream] of the family identified by [seed]. Distinct
      [(seed, stream)] pairs give (statistically) independent sequences. *)

  val int64 : t -> int64
  (** Next raw 64-bit output. *)

  val float : t -> float -> float
  (** [float t bound] draws uniformly from [\[0, bound)] using the top 53
      bits of {!int64}. *)

  val int : t -> int -> int
  (** [int t bound] draws uniformly from [\[0, bound)]; [bound > 0]. *)
end
