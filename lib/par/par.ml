module Trace = Probdb_obs.Trace

type pool = { domains : int; tasks : int Atomic.t }

let clamp lo hi v = max lo (min hi v)

let default_domains () = clamp 1 64 (Domain.recommended_domain_count ())

let create ?domains () =
  let domains =
    match domains with Some d -> clamp 1 64 d | None -> default_domains ()
  in
  { domains; tasks = Atomic.make 0 }

let domains p = p.domains

let tasks_run p = Atomic.get p.tasks

(* True while the current domain is executing a pool task: nested [run]
   calls fall back to sequential execution instead of spawning domains
   from inside workers. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type 'a slot = Empty | Value of 'a | Raised of exn

(* Each task runs inside a "par.task" span; spans land in the executing
   domain's trace buffer, so the exported trace shows one lane per domain
   with its share of the pool's work. *)
let run_task thunk = Trace.with_span ~cat:"par" "par.task" thunk

let run_seq p thunks =
  List.map
    (fun thunk ->
      Atomic.incr p.tasks;
      run_task thunk)
    thunks

let run p thunks =
  let n = List.length thunks in
  if p.domains = 1 || n <= 1 || Domain.DLS.get in_worker then run_seq p thunks
  else begin
    let tasks = Array.of_list thunks in
    let results = Array.make n Empty in
    let next = Atomic.make 0 in
    let work () =
      Domain.DLS.set in_worker true;
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          Atomic.incr p.tasks;
          results.(i) <-
            (match run_task tasks.(i) with
            | v -> Value v
            | exception e -> Raised e)
        end
      done;
      Domain.DLS.set in_worker false
    in
    let helpers =
      List.init (min (p.domains - 1) (n - 1)) (fun _ -> Domain.spawn work)
    in
    work ();
    List.iter Domain.join helpers;
    (* re-raise the lowest-indexed failure for determinism *)
    Array.iter (function Raised e -> raise e | _ -> ()) results;
    Array.to_list
      (Array.map (function Value v -> v | _ -> assert false) results)
  end

let map_reduce p ~map ~reduce ~init n =
  if n <= 0 then init
  else
    run p (List.init n (fun i () -> map i))
    |> List.fold_left reduce init

(* ---------- persistent worker service ---------- *)

module Service = struct
  module Chaos = Probdb_chaos.Chaos
  module Metrics = Probdb_obs.Metrics
  module Clock = Probdb_obs.Clock

  (* Raised by the chaos schedule between picking an item up and running
     the handler — deliberately outside the handler-swallowing try, so it
     escapes the worker loop and exercises the crash-recovery path. *)
  exception Chaos_crash

  (* One record per worker domain, alive or retired. [running] doubles as
     the ownership token for the in-flight decrement: whoever [take]s it
     (the worker on completion, the watchdog on a stall, the crash
     handler on an escape) owns dooming or completing that item, so the
     decrement happens exactly once however the race resolves. *)
  type 'a slot = {
    mutable running : 'a option;
    mutable busy_since : float;
    mutable abandoned : bool;  (* watchdog gave up: exit after the handler *)
    mutable exited : bool;  (* the domain body returned: safe to join *)
    mutable domain : unit Domain.t option;
  }

  type 'a t = {
    svc_domains : int;
    capacity : int;
    stall_deadline_s : float option;
    on_doom : ('a -> unit) option;
    on_restart : (unit -> unit) option;
    queue : 'a Queue.t;
    lock : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    mutable closed : bool;
    mutable wd_stop : bool;
    mutable in_flight : int;
    mutable slots : 'a slot list;  (* active workers *)
    mutable retired : 'a slot list;  (* crashed or abandoned workers *)
    mutable watchdog : Thread.t option;
    submitted : int Atomic.t;
    completed : int Atomic.t;
    failures : int Atomic.t;
    restarts : int Atomic.t;
  }

  let m_restarts = Metrics.counter "par.worker_restarts"

  (* Must hold [t.lock]. *)
  let signal_idle_locked t =
    if t.in_flight = 0 && Queue.is_empty t.queue then Condition.broadcast t.idle

  (* Retire [slot] and, unless the service is closed with nothing left to
     drain, spawn a replacement worker. Returns the doomed item (if the
     slot was mid-item) and whether a replacement was spawned, so the
     caller can run [on_doom]/[on_restart] outside the lock. Must hold
     [t.lock]. *)
  let retire_locked t ~spawn slot =
    let doomed = slot.running in
    slot.running <- None;
    slot.abandoned <- true;
    (match doomed with
    | Some _ ->
        t.in_flight <- t.in_flight - 1;
        signal_idle_locked t
    | None -> ());
    t.slots <- List.filter (fun s -> s != slot) t.slots;
    t.retired <- slot :: t.retired;
    let respawn = (not t.closed) || not (Queue.is_empty t.queue) in
    if respawn then begin
      Atomic.incr t.restarts;
      Metrics.incr m_restarts;
      spawn t
    end;
    (doomed, respawn)

  let doom t item =
    match t.on_doom with Some k -> (try k item with _ -> ()) | None -> ()

  let restarted t =
    match t.on_restart with Some k -> (try k () with _ -> ()) | None -> ()

  (* One worker: block on the queue, run the handler, repeat until the
     service is closed and the queue is drained. The handler owns its own
     error reporting; an exception that does escape is counted and
     swallowed so one bad item can never kill a worker. Exceptions raised
     {e outside} the handler (chaos crashes, runtime failures) kill the
     worker and are recovered by [guarded_worker] below. *)
  let worker t f slot =
    Domain.DLS.set in_worker true;
    let rec loop () =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.closed && not slot.abandoned do
        Condition.wait t.nonempty t.lock
      done;
      if slot.abandoned || Queue.is_empty t.queue then
        Mutex.unlock t.lock (* closed or superseded: exit *)
      else begin
        let item = Queue.pop t.queue in
        t.in_flight <- t.in_flight + 1;
        slot.running <- Some item;
        slot.busy_since <- Clock.now ();
        Mutex.unlock t.lock;
        (* A chaos stall wedges the worker long enough for the watchdog to
           doom the item, then still runs the handler: a doomed request was
           already answered by [on_doom], so the late result is discarded
           by the caller's reply deduplication, and without a watchdog the
           item is merely slow, never lost. A chaos crash escapes here,
           before the handler, so the item dies with the worker. *)
        if Chaos.fire ~site:"par.worker.stall" then Unix.sleepf Chaos.stall_s;
        if Chaos.fire ~site:"par.worker.crash" then raise Chaos_crash;
        (match Trace.with_span ~cat:"par" "par.service" (fun () -> f item) with
        | () -> ()
        | exception _ -> Atomic.incr t.failures);
        Atomic.incr t.completed;
        Mutex.lock t.lock;
        (match slot.running with
        | Some _ ->
            (* still ours: the watchdog did not doom it *)
            slot.running <- None;
            t.in_flight <- t.in_flight - 1;
            signal_idle_locked t
        | None -> () (* doomed while we ran: decrement already happened *));
        let superseded = slot.abandoned in
        Mutex.unlock t.lock;
        if not superseded then loop ()
      end
    in
    loop ()

  (* Spawn a worker domain wrapped in crash recovery: if anything escapes
     the worker loop, retire the slot (dooming its item) and spawn a
     replacement, so the pool heals back to [svc_domains] workers. *)
  let rec spawn_worker t f =
    let slot =
      { running = None;
        busy_since = 0.0;
        abandoned = false;
        exited = false;
        domain = None }
    in
    t.slots <- slot :: t.slots;
    let body () =
      (try worker t f slot
       with _e ->
         Atomic.incr t.failures;
         Trace.instant ~cat:"par" "par.worker.crashed";
         Mutex.lock t.lock;
         let doomed, respawned =
           retire_locked t ~spawn:(fun t -> spawn_worker_locked t f) slot
         in
         Mutex.unlock t.lock;
         (match doomed with Some item -> doom t item | None -> ());
         if respawned then restarted t);
      slot.exited <- true
    in
    slot.domain <- Some (Domain.spawn body)

  (* [retire_locked] is called with the lock held; spawning there is fine
     (Domain.spawn does not touch [t.lock]) but the slot-list update must
     happen under it. *)
  and spawn_worker_locked t f = spawn_worker t f

  (* The stall watchdog: a thread (not a domain — it only sleeps and
     scans) that dooms any worker busy past the deadline. The doomed
     worker is {e not} killed — OCaml domains cannot be — it is abandoned:
     its item is failed out via [on_doom], a replacement is spawned, and
     when (if) its handler returns it sees the abandonment and exits. *)
  let watchdog_loop t f deadline =
    let interval = Float.min 0.05 (Float.max 0.005 (deadline /. 4.0)) in
    let rec loop () =
      Thread.delay interval;
      Mutex.lock t.lock;
      if t.wd_stop then Mutex.unlock t.lock
      else begin
        let now = Clock.now () in
        let doomed =
          List.filter_map
            (fun slot ->
              match slot.running with
              | Some _ when now -. slot.busy_since > deadline ->
                  Some
                    (retire_locked t
                       ~spawn:(fun t -> spawn_worker_locked t f)
                       slot)
              | _ -> None)
            t.slots
        in
        Mutex.unlock t.lock;
        List.iter
          (fun (item, respawned) ->
            Trace.instant ~cat:"par" "par.worker.stalled";
            (match item with Some item -> doom t item | None -> ());
            if respawned then restarted t)
          doomed;
        loop ()
      end
    in
    loop ()

  let start ?(domains = default_domains ()) ?stall_deadline_s ?on_doom
      ?on_restart ~capacity f =
    if capacity < 1 then invalid_arg "Par.Service.start: capacity must be >= 1";
    (match stall_deadline_s with
    | Some d when not (d > 0.0) ->
        invalid_arg "Par.Service.start: stall_deadline_s must be > 0"
    | _ -> ());
    let t =
      { svc_domains = clamp 1 64 domains;
        capacity;
        stall_deadline_s;
        on_doom;
        on_restart;
        queue = Queue.create ();
        lock = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        closed = false;
        wd_stop = false;
        in_flight = 0;
        slots = [];
        retired = [];
        watchdog = None;
        submitted = Atomic.make 0;
        completed = Atomic.make 0;
        failures = Atomic.make 0;
        restarts = Atomic.make 0 }
    in
    Mutex.lock t.lock;
    for _ = 1 to t.svc_domains do
      spawn_worker t f
    done;
    Mutex.unlock t.lock;
    (match stall_deadline_s with
    | Some d -> t.watchdog <- Some (Thread.create (fun () -> watchdog_loop t f d) ())
    | None -> ());
    t

  let domains t = t.svc_domains

  let capacity t = t.capacity

  let try_submit t x =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      `Closed
    end
    else if Queue.length t.queue >= t.capacity then begin
      Mutex.unlock t.lock;
      `Overloaded
    end
    else begin
      Queue.push x t.queue;
      Atomic.incr t.submitted;
      let depth = Queue.length t.queue in
      Condition.signal t.nonempty;
      Mutex.unlock t.lock;
      `Accepted depth
    end

  let depth t =
    Mutex.lock t.lock;
    let d = Queue.length t.queue in
    Mutex.unlock t.lock;
    d

  let in_flight t =
    Mutex.lock t.lock;
    let n = t.in_flight in
    Mutex.unlock t.lock;
    n

  let submitted t = Atomic.get t.submitted

  let completed t = Atomic.get t.completed

  let failures t = Atomic.get t.failures

  let restarts t = Atomic.get t.restarts

  let wait_idle t =
    Mutex.lock t.lock;
    while not (Queue.is_empty t.queue && t.in_flight = 0) do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock

  let shutdown ?(drain = true) t =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      []
    end
    else begin
      t.closed <- true;
      let dropped =
        if drain then []
        else begin
          let xs = List.of_seq (Queue.to_seq t.queue) in
          Queue.clear t.queue;
          xs
        end
      in
      Condition.broadcast t.nonempty;
      Mutex.unlock t.lock;
      (* Join until no active worker remains. A worker that crashes during
         the drain retires itself and (queue permitting) spawns a
         replacement, so we re-read [t.slots] each round rather than
         joining a one-shot snapshot. *)
      let rec join_active () =
        Mutex.lock t.lock;
        let active = t.slots in
        t.slots <- [];
        Mutex.unlock t.lock;
        match active with
        | [] -> ()
        | slots ->
            List.iter
              (fun s -> match s.domain with Some d -> Domain.join d | None -> ())
              slots;
            Condition.broadcast t.nonempty;
            join_active ()
      in
      join_active ();
      (* Retired workers: crashed ones have terminated and join instantly;
         an abandoned worker still wedged in its handler ([exited] false)
         cannot be joined without hanging the shutdown — it is the one
         thing we abandoned it for, so it is left to die with the process. *)
      Mutex.lock t.lock;
      let retired = t.retired in
      t.retired <- [];
      Mutex.unlock t.lock;
      List.iter
        (fun s ->
          if s.exited then
            match s.domain with Some d -> Domain.join d | None -> ())
        retired;
      (match t.watchdog with
      | Some wd ->
          Mutex.lock t.lock;
          t.wd_stop <- true;
          Mutex.unlock t.lock;
          Thread.join wd;
          t.watchdog <- None
      | None -> ());
      dropped
    end
end

(* ---------- splitmix64 ---------- *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make ~seed ~stream =
    (* Decorrelate the per-stream states: the stream index is passed
       through the finaliser before being folded into the seed, so
       neighbouring streams start far apart in the state space. *)
    let s = mix (Int64.add (Int64.of_int seed) (Int64.mul golden (mix (Int64.of_int (stream + 1))))) in
    { state = s }

  let int64 t =
    t.state <- Int64.add t.state golden;
    mix t.state

  let float t bound =
    let bits53 = Int64.shift_right_logical (int64 t) 11 in
    Int64.to_float bits53 *. (1.0 /. 9007199254740992.0) *. bound

  let int t bound =
    if bound <= 0 then invalid_arg "Par.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))
end
