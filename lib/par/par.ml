module Trace = Probdb_obs.Trace

type pool = { domains : int; tasks : int Atomic.t }

let clamp lo hi v = max lo (min hi v)

let default_domains () = clamp 1 64 (Domain.recommended_domain_count ())

let create ?domains () =
  let domains =
    match domains with Some d -> clamp 1 64 d | None -> default_domains ()
  in
  { domains; tasks = Atomic.make 0 }

let domains p = p.domains

let tasks_run p = Atomic.get p.tasks

(* True while the current domain is executing a pool task: nested [run]
   calls fall back to sequential execution instead of spawning domains
   from inside workers. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type 'a slot = Empty | Value of 'a | Raised of exn

(* Each task runs inside a "par.task" span; spans land in the executing
   domain's trace buffer, so the exported trace shows one lane per domain
   with its share of the pool's work. *)
let run_task thunk = Trace.with_span ~cat:"par" "par.task" thunk

let run_seq p thunks =
  List.map
    (fun thunk ->
      Atomic.incr p.tasks;
      run_task thunk)
    thunks

let run p thunks =
  let n = List.length thunks in
  if p.domains = 1 || n <= 1 || Domain.DLS.get in_worker then run_seq p thunks
  else begin
    let tasks = Array.of_list thunks in
    let results = Array.make n Empty in
    let next = Atomic.make 0 in
    let work () =
      Domain.DLS.set in_worker true;
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          Atomic.incr p.tasks;
          results.(i) <-
            (match run_task tasks.(i) with
            | v -> Value v
            | exception e -> Raised e)
        end
      done;
      Domain.DLS.set in_worker false
    in
    let helpers =
      List.init (min (p.domains - 1) (n - 1)) (fun _ -> Domain.spawn work)
    in
    work ();
    List.iter Domain.join helpers;
    (* re-raise the lowest-indexed failure for determinism *)
    Array.iter (function Raised e -> raise e | _ -> ()) results;
    Array.to_list
      (Array.map (function Value v -> v | _ -> assert false) results)
  end

let map_reduce p ~map ~reduce ~init n =
  if n <= 0 then init
  else
    run p (List.init n (fun i () -> map i))
    |> List.fold_left reduce init

(* ---------- persistent worker service ---------- *)

module Service = struct
  type 'a t = {
    svc_domains : int;
    capacity : int;
    queue : 'a Queue.t;
    lock : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    mutable closed : bool;
    mutable in_flight : int;
    mutable workers : unit Domain.t list;
    submitted : int Atomic.t;
    completed : int Atomic.t;
    failures : int Atomic.t;
  }

  (* One worker: block on the queue, run the handler, repeat until the
     service is closed and the queue is drained. The handler owns its own
     error reporting; an exception that does escape is counted and
     swallowed so one bad item can never kill a worker. *)
  let worker t f =
    Domain.DLS.set in_worker true;
    let rec loop () =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.queue then Mutex.unlock t.lock (* closed: exit *)
      else begin
        let item = Queue.pop t.queue in
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.lock;
        (match Trace.with_span ~cat:"par" "par.service" (fun () -> f item) with
        | () -> ()
        | exception _ -> Atomic.incr t.failures);
        Atomic.incr t.completed;
        Mutex.lock t.lock;
        t.in_flight <- t.in_flight - 1;
        if t.in_flight = 0 && Queue.is_empty t.queue then
          Condition.broadcast t.idle;
        Mutex.unlock t.lock;
        loop ()
      end
    in
    loop ()

  let start ?(domains = default_domains ()) ~capacity f =
    if capacity < 1 then invalid_arg "Par.Service.start: capacity must be >= 1";
    let t =
      { svc_domains = clamp 1 64 domains;
        capacity;
        queue = Queue.create ();
        lock = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        closed = false;
        in_flight = 0;
        workers = [];
        submitted = Atomic.make 0;
        completed = Atomic.make 0;
        failures = Atomic.make 0 }
    in
    t.workers <-
      List.init t.svc_domains (fun _ -> Domain.spawn (fun () -> worker t f));
    t

  let domains t = t.svc_domains

  let capacity t = t.capacity

  let try_submit t x =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      `Closed
    end
    else if Queue.length t.queue >= t.capacity then begin
      Mutex.unlock t.lock;
      `Overloaded
    end
    else begin
      Queue.push x t.queue;
      Atomic.incr t.submitted;
      let depth = Queue.length t.queue in
      Condition.signal t.nonempty;
      Mutex.unlock t.lock;
      `Accepted depth
    end

  let depth t =
    Mutex.lock t.lock;
    let d = Queue.length t.queue in
    Mutex.unlock t.lock;
    d

  let in_flight t =
    Mutex.lock t.lock;
    let n = t.in_flight in
    Mutex.unlock t.lock;
    n

  let submitted t = Atomic.get t.submitted

  let completed t = Atomic.get t.completed

  let failures t = Atomic.get t.failures

  let wait_idle t =
    Mutex.lock t.lock;
    while not (Queue.is_empty t.queue && t.in_flight = 0) do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock

  let shutdown ?(drain = true) t =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      []
    end
    else begin
      t.closed <- true;
      let dropped =
        if drain then []
        else begin
          let xs = List.of_seq (Queue.to_seq t.queue) in
          Queue.clear t.queue;
          xs
        end
      in
      Condition.broadcast t.nonempty;
      Mutex.unlock t.lock;
      List.iter Domain.join t.workers;
      t.workers <- [];
      dropped
    end
end

(* ---------- splitmix64 ---------- *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make ~seed ~stream =
    (* Decorrelate the per-stream states: the stream index is passed
       through the finaliser before being folded into the seed, so
       neighbouring streams start far apart in the state space. *)
    let s = mix (Int64.add (Int64.of_int seed) (Int64.mul golden (mix (Int64.of_int (stream + 1))))) in
    { state = s }

  let int64 t =
    t.state <- Int64.add t.state golden;
    mix t.state

  let float t bound =
    let bits53 = Int64.shift_right_logical (int64 t) 11 in
    Int64.to_float bits53 *. (1.0 /. 9007199254740992.0) *. bound

  let int t bound =
    if bound <= 0 then invalid_arg "Par.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))
end
