module Core = Probdb_core
module Fo = Probdb_logic.Fo
module Cq = Probdb_logic.Cq
module Ucq = Probdb_logic.Ucq
module Guard = Probdb_guard.Guard
module Par = Probdb_par.Par
module Trace = Probdb_obs.Trace

exception Unsafe of string

let log_src = Logs.Src.create "probdb.lifted" ~doc:"Lifted inference rule applications"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = { use_inclusion_exclusion : bool; use_cancellation : bool }

let default_config = { use_inclusion_exclusion = true; use_cancellation = true }
let basic_rules_only = { default_config with use_inclusion_exclusion = false }
let no_cancellation = { default_config with use_cancellation = false }

type stats = {
  mutable independent_unions : int;
  mutable independent_joins : int;
  mutable separator_steps : int;
  mutable ie_expansions : int;
  mutable ie_terms : int;
  mutable cancelled_terms : int;
  mutable negations : int;
  mutable base_lookups : int;
}

let fresh_stats () =
  { independent_unions = 0;
    independent_joins = 0;
    separator_steps = 0;
    ie_expansions = 0;
    ie_terms = 0;
    cancelled_terms = 0;
    negations = 0;
    base_lookups = 0 }

(* Field-wise sum of [src] into [dst]. Parallel branches tally into fresh
   per-branch records (the shared record is not atomic) and are merged here
   after the fork joins. *)
let merge_stats dst src =
  dst.independent_unions <- dst.independent_unions + src.independent_unions;
  dst.independent_joins <- dst.independent_joins + src.independent_joins;
  dst.separator_steps <- dst.separator_steps + src.separator_steps;
  dst.ie_expansions <- dst.ie_expansions + src.ie_expansions;
  dst.ie_terms <- dst.ie_terms + src.ie_terms;
  dst.cancelled_terms <- dst.cancelled_terms + src.cancelled_terms;
  dst.negations <- dst.negations + src.negations;
  dst.base_lookups <- dst.base_lookups + src.base_lookups

let obs_counts (s : stats) : Probdb_obs.Stats.lifted_rules =
  { Probdb_obs.Stats.independent_unions = s.independent_unions;
    independent_joins = s.independent_joins;
    separator_steps = s.separator_steps;
    ie_expansions = s.ie_expansions;
    ie_terms = s.ie_terms;
    cancelled_terms = s.cancelled_terms;
    negations = s.negations;
    base_lookups = s.base_lookups }

(* A clause is a disjunction of variable-connected CQ components; a query is
   a conjunction of clauses. [] is the empty conjunction (true); [[]]
   contains the empty clause (false). *)
type clause = Cq.t list

type query = clause list

let clause_to_string d =
  match d with
  | [] -> "false"
  | _ -> String.concat " || " (List.map Cq.to_string d)

let query_to_string q =
  match q with
  | [] -> "true"
  | _ -> String.concat " AND " (List.map (fun d -> "(" ^ clause_to_string d ^ ")") q)

(* d1 implies d2, clause-wise (Sagiv–Yannakakis on the disjunctions). *)
let clause_contained d1 d2 =
  List.for_all (fun c -> List.exists (fun c' -> Cq.contained c c') d2) d1

let clause_equiv d1 d2 = clause_contained d1 d2 && clause_contained d2 d1

(* Drop components contained in a different component of the same clause,
   keeping one representative per equivalence class. *)
let clause_minimize d =
  let d = List.map Cq.minimize d |> List.sort_uniq Cq.compare in
  let rec filter kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let absorbs c' = Cq.contained c c' in
        if List.exists absorbs kept || List.exists absorbs rest then filter kept rest
        else filter (c :: kept) rest
  in
  filter [] d

(* Drop clauses implied by a different clause of the conjunction. *)
let conj_minimize q =
  let rec filter kept = function
    | [] -> List.rev kept
    | d :: rest ->
        let implies d' = clause_contained d' d in
        if List.exists implies kept || List.exists implies rest then filter kept rest
        else filter (d :: kept) rest
  in
  (* syntactic dedup first so that equal clauses don't absorb each other *)
  let q = List.sort_uniq (List.compare Cq.compare) q in
  filter [] q

let query_of_ucq ucq : query =
  let ucq = Ucq.minimize ucq in
  if ucq = [] then [ [] ]
  else if List.exists (fun cq -> cq = []) ucq then []
  else
    let comp_lists = List.map Cq.connected_components ucq in
    let clauses =
      List.fold_left
        (fun acc comps ->
          List.concat_map (fun clause -> List.map (fun c -> c :: clause) comps) acc)
        [ [] ] comp_lists
    in
    conj_minimize (List.map clause_minimize clauses)

(* Partition items into groups whose relation names are connected. *)
let group_by_names names items =
  let items = Array.of_list items in
  let n = Array.length items in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri, rj = find i, find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let home = Hashtbl.create 16 in
  Array.iteri
    (fun i item ->
      List.iter
        (fun name ->
          match Hashtbl.find_opt home name with
          | Some j -> union i j
          | None -> Hashtbl.add home name i)
        (names item))
    items;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i item ->
      let r = find i in
      Hashtbl.replace groups r (item :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    items;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []

module Iset = Set.Make (Int)

let positions_of_var (a : Cq.atom) x =
  List.to_seq a.Cq.args
  |> Seq.mapi (fun i t -> (i, t))
  |> Seq.filter_map (fun (i, t) ->
         match t with Fo.Var y when String.equal x y -> Some i | _ -> None)
  |> Iset.of_seq

(* A separator assigns to each component a variable occurring in all its
   atoms such that a single position per relation symbol carries the chosen
   variable in every atom of the whole clause (Sec. 5's side condition:
   this makes the substituted queries over distinct constants touch
   disjoint sets of tuples, hence independent). [posmap] accumulates the
   allowed positions per relation name. *)
let find_separator (d : clause) : (Cq.t * string) list option =
  let candidates c =
    List.filter
      (fun x -> List.length (Cq.atoms_of_var c x) = List.length c)
      (Cq.vars c)
  in
  let restrict posmap c x =
    List.fold_left
      (fun posmap_opt (a : Cq.atom) ->
        Option.bind posmap_opt (fun posmap ->
            let here = positions_of_var a x in
            let allowed =
              match List.assoc_opt a.Cq.rel posmap with
              | None -> here
              | Some s -> Iset.inter s here
            in
            if Iset.is_empty allowed then None
            else Some ((a.Cq.rel, allowed) :: List.remove_assoc a.Cq.rel posmap)))
      (Some posmap) c
  in
  let rec assign posmap acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
        List.find_map
          (fun x ->
            match restrict posmap c x with
            | Some posmap' -> assign posmap' ((c, x) :: acc) rest
            | None -> None)
          (candidates c)
  in
  assign [] [] d

let ground_tuple (a : Cq.atom) =
  let value = function Fo.Const v -> Some v | Fo.Var _ -> None in
  let vals = List.filter_map value a.Cq.args in
  if List.length vals = List.length a.Cq.args then Some vals else None

(* Non-empty subsets of a list, with the subset size. *)
let nonempty_subsets xs =
  let rec go = function
    | [] -> [ ([], 0) ]
    | x :: rest ->
        let subs = go rest in
        subs @ List.map (fun (s, k) -> (x :: s, k + 1)) subs
  in
  List.filter (fun (_, k) -> k > 0) (go xs)

let eval_query ?pool config stats guard db (q0 : query) =
  let domain = Core.Tid.domain db in
  let base stats (a : Cq.atom) tuple =
    stats.base_lookups <- stats.base_lookups + 1;
    let p = Core.Tid.prob db a.Cq.rel tuple in
    if a.Cq.comp then begin
      stats.negations <- stats.negations + 1;
      1.0 -. p
    end
    else p
  in
  (* Independent branches (relation-disjoint groups) touch disjoint state,
     so with a pool each runs as its own task against a fresh stats record.
     [combine] is always folded in branch order — the float result is
     bit-identical to the sequential fold at any pool size. *)
  let branches stats eval_one ~combine items =
    match pool with
    | Some p when List.length items > 1 ->
        let tasks =
          List.map
            (fun g () ->
              let s = fresh_stats () in
              let v = eval_one s g in
              (v, s))
            items
        in
        List.fold_left
          (fun acc (v, s) ->
            merge_stats stats s;
            combine acc v)
          1.0 (Par.run p tasks)
    | _ -> List.fold_left (fun acc g -> combine acc (eval_one stats g)) 1.0 items
  in
  let rec prob_query stats q =
    Guard.poll guard ~site:"lifted.query";
    let q = conj_minimize (List.map clause_minimize q) in
    match q with
    | [] -> 1.0
    | [ d ] -> prob_clause stats d
    | clauses -> (
        match group_by_names (fun d -> List.concat_map Cq.rel_names d) clauses with
        | [] -> 1.0
        | [ _single ] -> inclusion_exclusion stats clauses
        | groups ->
            stats.independent_joins <- stats.independent_joins + 1;
            Trace.instant ~cat:"lifted" "lifted.independent_join";
            Log.debug (fun m ->
                m "independent join: %d groups of %s" (List.length groups)
                  (query_to_string clauses));
            branches stats prob_query ~combine:(fun acc v -> acc *. v) groups)
  and inclusion_exclusion stats clauses =
    if not config.use_inclusion_exclusion then
      raise
        (Unsafe
           (Printf.sprintf "inclusion-exclusion needed (disabled) on: %s"
              (query_to_string clauses)));
    stats.ie_expansions <- stats.ie_expansions + 1;
    Trace.instant ~cat:"lifted" "lifted.inclusion_exclusion";
    let terms =
      List.map
        (fun (subset, k) ->
          let union_clause = clause_minimize (List.concat subset) in
          let sign = if k mod 2 = 1 then 1 else -1 in
          (union_clause, sign))
        (nonempty_subsets clauses)
    in
    let terms =
      if not config.use_cancellation then terms
      else begin
        let grouped =
          List.fold_left
            (fun acc (d, coeff) ->
              let rec add = function
                | [] -> [ (d, coeff) ]
                | (d', coeff') :: rest when clause_equiv d d' -> (d', coeff' + coeff) :: rest
                | pair :: rest -> pair :: add rest
              in
              add acc)
            [] terms
        in
        let kept = List.filter (fun (_, coeff) -> coeff <> 0) grouped in
        stats.cancelled_terms <-
          stats.cancelled_terms + (List.length terms - List.length kept);
        kept
      end
    in
    stats.ie_terms <- stats.ie_terms + List.length terms;
    (* The I/E expansion is the one lifted step that can explode (2^clauses
       terms, each recursing); it gets its own work budget. *)
    Guard.charge guard ~site:"lifted.ie" "lifted.ie_terms" (List.length terms);
    Log.debug (fun m ->
        m "inclusion-exclusion over %d clauses: %d terms after cancellation"
          (List.length clauses) (List.length terms));
    List.fold_left
      (fun acc (d, coeff) -> acc +. (float_of_int coeff *. prob_clause stats d))
      0.0 terms
  and prob_clause stats d =
    Guard.poll guard ~site:"lifted.clause";
    let d = clause_minimize d in
    match d with
    | [] -> 0.0
    | _ when List.exists (fun c -> c = []) d -> 1.0
    | [ [ a ] ] when Option.is_some (ground_tuple a) ->
        base stats a (Option.get (ground_tuple a))
    | _ -> (
        match group_by_names Cq.rel_names d with
        | [] -> 0.0
        | [ _single ] -> (
            match find_separator d with
            | Some pairs ->
                stats.separator_steps <- stats.separator_steps + 1;
                Trace.instant ~cat:"lifted" "lifted.separator";
                Log.debug (fun m ->
                    m "separator {%s} on %s"
                      (String.concat ", " (List.map snd pairs))
                      (clause_to_string d));
                let factor stats a =
                  let ucq = List.map (fun (c, x) -> Cq.subst_const x a c) pairs in
                  1.0 -. prob_query stats (query_of_ucq ucq)
                in
                (* The substituted queries over distinct constants touch
                   disjoint tuples — independent, hence also branchable. *)
                1.0
                -. branches stats factor ~combine:(fun acc v -> acc *. v) domain
            | None ->
                raise
                  (Unsafe
                     (Printf.sprintf "no lifted rule applies to clause: %s"
                        (clause_to_string d))))
        | groups ->
            stats.independent_unions <- stats.independent_unions + 1;
            Trace.instant ~cat:"lifted" "lifted.independent_union";
            Log.debug (fun m ->
                m "independent union: %d groups of %s" (List.length groups)
                  (clause_to_string d));
            1.0
            -. branches stats prob_clause
                 ~combine:(fun acc v -> acc *. (1.0 -. v))
                 groups)
  in
  prob_query stats q0

let probability_ucq ?(config = default_config) ?(stats = fresh_stats ())
    ?(guard = Guard.unlimited) ?pool db ucq =
  eval_query ?pool config stats guard db (query_of_ucq ucq)

let probability ?config ?stats ?guard ?pool db q =
  let ucq, mode = Ucq.of_sentence q in
  Ucq.apply_mode mode (probability_ucq ?config ?stats ?guard ?pool db ucq)

type verdict = Safe | Unsafe_by_rules of string | Unsupported of string

(* Rule applicability does not depend on probabilities or on which domain
   constant is substituted, so a one-element domain with an empty database
   decides safety. *)
let abstract_db = Core.Tid.make ~domain:[ Core.Value.Str "\xe2\x80\xa2" ] []

let classify_ucq ?config ucq =
  match probability_ucq ?config abstract_db ucq with
  | (_ : float) -> Safe
  | exception Unsafe msg -> Unsafe_by_rules msg

let classify ?config q =
  match Ucq.of_sentence q with
  | exception Ucq.Unsupported msg -> Unsupported msg
  | ucq, _mode -> classify_ucq ?config ucq

let pp_verdict ppf = function
  | Safe -> Format.pp_print_string ppf "safe (PTIME by lifted inference)"
  | Unsafe_by_rules msg -> Format.fprintf ppf "unsafe (rules fail: %s)" msg
  | Unsupported msg -> Format.fprintf ppf "unsupported (%s)" msg
