(** Lifted inference: evaluating PQE on the first-order syntax alone.

    Implements the rule system of Sec. 5 of the paper on unate ∃*/∀*
    sentences (reduced to UCQs by [Probdb_logic.Ucq.of_sentence]):

    - independent union / independent join (rule (7) and its dual), with
      independence decided by disjointness of relation symbols;
    - the separator-variable rule (rule (8) and its dual);
    - the inclusion–exclusion formula (rule (10)) with cancellation of
      equivalent terms — the rule the paper singles out as the surprising
      ingredient of complete lifted inference (Thm. 5.1);
    - CQ/UCQ minimisation via homomorphism containment throughout.

    Internally a query is kept in CNF shape: a conjunction of {e clauses},
    each clause a disjunction of variable-connected CQ {e components}. The
    evaluation always runs in time polynomial in the database.

    When no rule applies the query is rejected with {!Unsafe}. For
    constant-free queries in the fragment this coincides with #P-hardness
    (Thm. 5.1) up to the paper's omitted refinements: we implement neither
    {e shattering} (needed for constants in the input query) nor {e ranking}
    (needed for atoms repeating a variable, e.g. [R(x,y) ∧ R(y,x)]), so a
    handful of exotic safe queries are rejected and must fall back to
    grounded inference. The experiment suite documents this boundary.

    The [use_inclusion_exclusion] and [use_cancellation] switches exist as
    ablations: without I/E the basic rules are incomplete (e.g. on [Q_J] of
    Sec. 5); without cancellation the I/E expansion recurses into #P-hard
    terms that a complete implementation must cancel (the [AB ∨ BC ∨ CD]
    discussion of Sec. 5). *)

exception Unsafe of string
(** No lifted rule applies; the message names the offending subquery. *)

val log_src : Logs.src
(** Rule applications are logged at debug level on this source; enable with
    [Logs.Src.set_level Lift.log_src (Some Logs.Debug)] (and a reporter) to
    watch the derivation. *)

type config = {
  use_inclusion_exclusion : bool;
  use_cancellation : bool;
}

val default_config : config
(** Both on — the complete rule set of Theorem 5.1. *)

val basic_rules_only : config
(** Inclusion–exclusion disabled: the incomplete "basic rules" system. *)

val no_cancellation : config
(** I/E on, cancellation of equivalent terms off. *)

type stats = {
  mutable independent_unions : int;
      (** independent-∨ / independent-∃ splits (rule (7)) *)
  mutable independent_joins : int;
      (** independent-∧ / independent-∀ splits (the dual of rule (7)) *)
  mutable separator_steps : int;  (** separator-variable applications (rule (8)) *)
  mutable ie_expansions : int;  (** inclusion–exclusion applications *)
  mutable ie_terms : int;  (** terms recursed into after cancellation *)
  mutable cancelled_terms : int;  (** subset-sum terms removed by cancellation *)
  mutable negations : int;  (** complemented ground atoms evaluated as [1-p] *)
  mutable base_lookups : int;  (** ground-tuple probability reads *)
}

val fresh_stats : unit -> stats
(** A zeroed counter record, ready to pass as [~stats]. *)

val obs_counts : stats -> Probdb_obs.Stats.lifted_rules
(** The same tallies in the shape of the observability layer's per-query
    record ({!Probdb_obs.Stats.t}); used by the engine and the CLI to
    report rule applications. *)

val probability :
  ?config:config ->
  ?stats:stats ->
  ?guard:Probdb_guard.Guard.t ->
  ?pool:Probdb_par.Par.pool ->
  Probdb_core.Tid.t ->
  Probdb_logic.Fo.t ->
  float
(** [probability db q] evaluates a unate ∃*/∀* sentence by lifted inference.
    Raises {!Unsafe} when the rules fail, [Probdb_logic.Ucq.Unsupported]
    outside the fragment. [guard] (default
    {!Probdb_guard.Guard.unlimited}) is polled at every query/clause
    recursion (sites ["lifted.query"], ["lifted.clause"]) and charged
    ["lifted.ie_terms"] work units per inclusion–exclusion expansion, so an
    exploding derivation raises [Probdb_guard.Guard.Exhausted] instead of
    running away.

    With [pool], independent branches — relation-disjoint groups of the
    independent union/join rules and the per-constant factors of the
    separator rule — run as pool tasks, each tallying into a fresh stats
    record merged after the fork joins. Results are always combined in
    branch order, so the returned probability (and the final [stats]) is
    identical to the sequential evaluation for any pool size. *)

val probability_ucq :
  ?config:config ->
  ?stats:stats ->
  ?guard:Probdb_guard.Guard.t ->
  ?pool:Probdb_par.Par.pool ->
  Probdb_core.Tid.t ->
  Probdb_logic.Ucq.t ->
  float

type verdict =
  | Safe  (** lifted inference succeeds: PQE(Q) is in PTIME *)
  | Unsafe_by_rules of string
      (** the rules fail; for constant-free, repeat-free queries this means
          #P-hard by Thm. 5.1 *)
  | Unsupported of string  (** outside the unate ∃*/∀* fragment *)

val classify : ?config:config -> Probdb_logic.Fo.t -> verdict
(** Runs the rules symbolically (on a one-element abstract domain) — the
    decision procedure of Question 4.2 for this fragment. *)

val classify_ucq : ?config:config -> Probdb_logic.Ucq.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
