(** Seeded, deterministic fault injection.

    A chaos {e schedule} is a pure function of [(seed, site, n)]: the
    [n]-th call to {!fire} at a named site fires iff a splitmix64 mix of
    the seed, the site name and [n] lands below the configured rate.
    Replaying a run with the same seed, rate and per-site call sequence
    therefore replays the {e same} injections — the property the chaos
    runbook in [docs/SERVING.md] relies on.

    Sites are dot-separated names owned by the layer that calls {!fire}:
    [serve.accept], [serve.read], [serve.write.reset],
    [serve.write.short], [par.worker.crash], [par.worker.stall],
    [guard.poll]. The chaos library never raises or sleeps itself — it
    only answers "does this call fire?"; the caller turns a firing into
    the fault it owns (an errno, a crash, a stall, a budget trip). Every
    firing is emitted as a trace instant (category ["chaos"]) and counted
    in Metrics ([chaos.injections] plus a per-site counter), so a run's
    injections are visible in [--trace] and [--metrics-json] output.

    Arming is process-wide and intended to happen once at startup, either
    programmatically ({!arm}) or via the [PROBDB_CHAOS=seed:rate]
    environment variable read at module initialisation. When disarmed
    (the default) {!fire} is a single atomic read returning [false]. *)

type spec = { seed : int; rate : float }
(** [rate] is the per-call firing probability in [\[0, 1\]]. *)

val parse_spec : string -> (spec, string) result
(** Parse ["seed:rate"], e.g. ["42:0.05"]. The seed must be a
    non-negative integer and the rate a float in [\[0, 1\]]. *)

val render_spec : spec -> string
(** Inverse of {!parse_spec}: ["seed:rate"]. *)

val parse_cli : string -> (spec * string list option, string) result
(** Parse the CLI/env grammar ["seed:rate\[:site1,site2,...\]"]: like
    {!parse_spec} plus an optional comma-separated site allowlist for
    {!arm}'s [?only]. *)

val arm : ?only:string list -> spec -> unit
(** Install the schedule and reset all per-site call counters, so two
    [arm]s with the same spec replay identical schedules. When [only] is
    given, {!fire} returns [false] at every site not in the list without
    advancing its counter — narrowing the allowlist leaves the remaining
    sites' schedules unchanged. *)

val disarm : unit -> unit
(** Stop injecting. Counters are reset on the next {!arm}. *)

val armed : unit -> bool

val spec : unit -> spec option
(** The armed spec, if any. *)

val sites : unit -> string list option
(** The armed site allowlist, if one was given to {!arm}. *)

val fire : site:string -> bool
(** [fire ~site] advances [site]'s call counter and reports whether this
    call is scheduled to fail. Always [false] when disarmed (without
    advancing any counter). Thread- and domain-safe. *)

val injections : unit -> int
(** Total injections since process start (across arms). *)

val stall_s : float
(** How long a [par.worker.stall] injection should wedge a worker —
    fixed, and comfortably past the stall deadline used by the chaos
    tests and bench so every stall injection exercises the watchdog. *)
