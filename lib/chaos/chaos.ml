module Trace = Probdb_obs.Trace
module Metrics = Probdb_obs.Metrics

type spec = { seed : int; rate : float }

let parse_spec s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad chaos spec %S: expected seed:rate" s)
  | Some i -> (
      let seed_s = String.sub s 0 i in
      let rate_s = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt seed_s, float_of_string_opt rate_s) with
      | None, _ -> Error (Printf.sprintf "bad chaos seed %S: expected an integer" seed_s)
      | _, None -> Error (Printf.sprintf "bad chaos rate %S: expected a float" rate_s)
      | Some seed, _ when seed < 0 ->
          Error (Printf.sprintf "bad chaos seed %d: must be non-negative" seed)
      | _, Some rate when not (rate >= 0.0 && rate <= 1.0) ->
          Error (Printf.sprintf "bad chaos rate %s: must be in [0, 1]" rate_s)
      | Some seed, Some rate -> Ok { seed; rate })

let render_spec { seed; rate } = Printf.sprintf "%d:%g" seed rate

(* The CLI/env grammar is a superset of [parse_spec]: an optional third
   colon-separated field restricts injection to a comma-separated site
   allowlist, e.g. "42:0.1:serve.read,par.worker.crash". *)
let parse_cli s =
  match String.split_on_char ':' s with
  | [ _; _ ] -> Result.map (fun sp -> (sp, None)) (parse_spec s)
  | [ seed_s; rate_s; sites_s ] -> (
      match parse_spec (seed_s ^ ":" ^ rate_s) with
      | Error _ as e -> e |> Result.map (fun sp -> (sp, None))
      | Ok sp ->
          let sites =
            String.split_on_char ',' sites_s
            |> List.map String.trim
            |> List.filter (fun x -> x <> "")
          in
          if sites = [] then
            Error
              (Printf.sprintf "bad chaos sites %S: expected site1,site2,..."
                 sites_s)
          else Ok (sp, Some sites))
  | _ ->
      Error
        (Printf.sprintf "bad chaos spec %S: expected seed:rate[:site1,site2]" s)

(* Same splitmix64 finaliser as [Par.Rng] (duplicated because chaos sits
   below par in the library graph). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

(* FNV-1a over the site name: stable across runs and OCaml versions,
   unlike [Hashtbl.hash]'s unspecified algorithm. *)
let site_hash site =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    site;
  !h

(* Map the mixed 64-bit word to [0,1) using its top 53 bits. *)
let to_unit z = Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

type state = {
  sp : spec;
  only : string list option;
  counters : (string, int Atomic.t) Hashtbl.t;
  lock : Mutex.t;
}

let state : state option Atomic.t = Atomic.make None

let total = Atomic.make 0

let injections_c = Metrics.counter "chaos.injections"

let arm ?only sp =
  Atomic.set state
    (Some { sp; only; counters = Hashtbl.create 16; lock = Mutex.create () })

let disarm () = Atomic.set state None

let armed () = Atomic.get state <> None

let spec () = Option.map (fun st -> st.sp) (Atomic.get state)

let sites () = Option.bind (Atomic.get state) (fun st -> st.only)

let counter_of st site =
  match Hashtbl.find_opt st.counters site with
  | Some c -> c
  | None ->
      Mutex.lock st.lock;
      let c =
        match Hashtbl.find_opt st.counters site with
        | Some c -> c
        | None ->
            let c = Atomic.make 0 in
            Hashtbl.add st.counters site c;
            c
      in
      Mutex.unlock st.lock;
      c

(* Site filtering happens before the counter advances: a filtered site
   behaves exactly as if the process were disarmed for it, so narrowing
   [only] does not perturb the schedules of the sites that remain. *)
let fire ~site =
  match Atomic.get state with
  | None -> false
  | Some st when
      (match st.only with
      | Some sites -> not (List.mem site sites)
      | None -> false) ->
      false
  | Some st ->
      let n = Atomic.fetch_and_add (counter_of st site) 1 in
      let z =
        mix
          (Int64.logxor
             (Int64.add (Int64.of_int st.sp.seed) (Int64.mul golden (Int64.of_int n)))
             (site_hash site))
      in
      let firing = to_unit z < st.sp.rate in
      if firing then begin
        Atomic.incr total;
        Metrics.incr injections_c;
        Metrics.incr (Metrics.counter ("chaos." ^ site));
        Trace.instant ~cat:"chaos" ("chaos." ^ site)
      end;
      firing

let injections () = Atomic.get total

let stall_s = 0.25

(* Honour PROBDB_CHAOS in every binary that links the library, so tests
   and the serve CLI share one switch. A malformed spec is a hard error:
   silently ignoring it would turn a chaos run into a clean run. *)
let () =
  match Sys.getenv_opt "PROBDB_CHAOS" with
  | None | Some "" -> ()
  | Some s -> (
      match parse_cli s with
      | Ok (sp, only) -> arm ?only sp
      | Error msg -> invalid_arg ("PROBDB_CHAOS: " ^ msg))
