(** Columnar plan execution: the fast path behind [Probdb_plans.Plan.eval].

    The list-based {!Probdb_plans.Ptable} evaluates Sec. 6 extensional
    plans over [(Value.t list * float) list] — every join key is a boxed
    list, every column access a [List.nth]. This module stores an
    intermediate relation as {e int-array columns} plus a float probability
    array; values are interned once per plan evaluation into a shared
    {!Probdb_core.Dict.t}, so the operator inner loops run over unboxed
    integers. The operators implement the same modified algebra
    (probabilities multiply under ⋈, combine with [u ⊕ v = 1-(1-u)(1-v)]
    under the independent project) and are tested property-for-property
    against the [Ptable] reference.

    Guard integration: operators accept a [?guard] and poll it amortised
    (every {!Probdb_guard.Guard.poll_interval} rows), so deadlines and
    cancellation reach even a single large join without measurable
    overhead. Budget charging per operator {e output} stays the caller's
    job ([Plan.eval] charges ["plan.rows"], as before). *)

type rel = {
  vars : string array;  (** column names, in order *)
  cols : int array array;  (** [cols.(j).(i)] = interned value of row [i], column [j] *)
  probs : float array;  (** [probs.(i)] = marginal probability of row [i] *)
}

(** Mutable per-evaluation tally, reported into
    [Probdb_obs.Stats.plan_counts] and the new [rows_processed] field. *)
type counters = {
  mutable operators : int;  (** operator applications *)
  mutable peak_rows : int;  (** largest operator output cardinality *)
  mutable rows_processed : int;  (** total input rows streamed through operators *)
}

val fresh_counters : unit -> counters

val nrows : rel -> int

val scan :
  ?guard:Probdb_guard.Guard.t ->
  ?counters:counters ->
  Probdb_core.Dict.t ->
  Probdb_core.Tid.t ->
  Probdb_logic.Cq.atom ->
  rel
(** Like [Ptable.scan]: keeps rows matching the atom's constants and
    repeated variables, projects onto the distinct variables in first
    occurrence order, and interns the surviving values. An atom over a
    missing relation scans as empty. Raises [Invalid_argument] on
    complemented atoms. *)

val select : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> rel -> string -> int -> rel
(** [select r x id] keeps the rows whose column [x] carries interned value
    [id]. (Scans already push atom constants down; this exists for
    selections decided after a scan.) *)

val join : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> rel -> rel -> rel
(** Natural hash join on the shared columns, probabilities multiplied.
    Column positions are resolved once per call, never per row; the build
    side is the right input. Output columns are the left input's columns
    followed by the right input's non-shared columns. *)

val project : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> string list -> rel -> rel
(** Independent project: group by the kept columns and combine each
    group's probabilities with ⊕. Raises [Invalid_argument] on unknown
    columns. *)

val disjoint_union : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> rel -> rel -> rel
(** Union of two relations over the same columns (the right input's
    columns may be ordered differently) whose underlying events are
    disjoint, so probabilities of equal tuples {e add}. Used for safe
    UCQ plans whose branches partition the event space. Raises
    [Invalid_argument] if the column sets differ. *)

val boolean_prob : rel -> float
(** For a zero-column relation: the probability of its single row, or 0. *)

val to_rows : Probdb_core.Dict.t -> rel -> (Probdb_core.Tuple.t * float) list
(** Materialise back into boxed tuples (row order preserved). *)
