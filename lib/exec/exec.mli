(** Columnar plan execution: the fast path behind [Probdb_plans.Plan.eval].

    The list-based {!Probdb_plans.Ptable} evaluates Sec. 6 extensional
    plans over [(Value.t list * float) list] — every join key is a boxed
    list, every column access a [List.nth]. This module stores an
    intermediate relation as {e int-array columns} plus a float probability
    array; values are interned once per plan evaluation into a shared
    {!Probdb_core.Dict.t}, so the operator inner loops run over unboxed
    integers. The operators implement the same modified algebra
    (probabilities multiply under ⋈, combine with [u ⊕ v = 1-(1-u)(1-v)]
    under the independent project) and are tested property-for-property
    against the [Ptable] reference.

    Columns come from {e two providers}: heap arrays ([Ints]/[Floats] —
    CSV loads and every operator output) and mmapped segments of a packed
    container ([Imapped]/[Fmapped] — see {!Probdb_storage.Storage}).
    Operators read both through {!iget}/{!fget}, so {!scan_cols} over a
    packed relation hands the kernel-managed pages straight to a join with
    zero copies and no per-tuple boxing.

    Guard integration: operators accept a [?guard] and poll it amortised
    (every {!Probdb_guard.Guard.poll_interval} rows), so deadlines and
    cancellation reach even a single large join without measurable
    overhead. Budget charging per operator {e output} stays the caller's
    job ([Plan.eval] charges ["plan.rows"], as before). *)

type int_column = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_column =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type icol = Ints of int array | Imapped of int_column
(** An id column: a heap array or a mapped container segment. *)

type fcol = Floats of float array | Fmapped of float_column
(** A probability column. *)

val iget : icol -> int -> int
val ilen : icol -> int
val fget : fcol -> int -> float
val flen : fcol -> int

type rel = {
  vars : string array;  (** column names, in order *)
  cols : icol array;  (** [iget cols.(j) i] = interned value of row [i], column [j] *)
  probs : fcol;  (** [fget probs i] = marginal probability of row [i] *)
}

(** Mutable per-evaluation tally, reported into
    [Probdb_obs.Stats.plan_counts] and the new [rows_processed] field. *)
type counters = {
  mutable operators : int;  (** operator applications *)
  mutable peak_rows : int;  (** largest operator output cardinality *)
  mutable rows_processed : int;  (** total input rows streamed through operators *)
}

val fresh_counters : unit -> counters

val nrows : rel -> int

val scan :
  ?guard:Probdb_guard.Guard.t ->
  ?counters:counters ->
  Probdb_core.Dict.t ->
  Probdb_core.Tid.t ->
  Probdb_logic.Cq.atom ->
  rel
(** Like [Ptable.scan]: keeps rows matching the atom's constants and
    repeated variables, projects onto the distinct variables in first
    occurrence order, and interns the surviving values. An atom over a
    missing relation scans as empty. Raises [Invalid_argument] on
    complemented atoms. *)

val scan_cols :
  ?guard:Probdb_guard.Guard.t ->
  ?counters:counters ->
  lookup:(Probdb_core.Value.t -> int option) ->
  cols:int_column array ->
  probs:float_column ->
  Probdb_logic.Cq.atom ->
  rel
(** {!scan} over a packed relation's mapped columns. When the atom binds a
    distinct variable at every position — the common shape — the output
    {e is} the mapped segments ([Imapped]/[Fmapped]): zero copies, zero
    per-row work, pages fault in only when an operator touches them.
    Constants and repeated variables fall back to a filtered gather whose
    admission ids come from [lookup] (the container's read-only dictionary
    via [Dict.find_opt] — a constant the container never saw matches no
    row, and nothing is ever interned during evaluation). Raises
    [Invalid_argument] on complemented atoms or an arity mismatch with the
    columns. *)

val empty_scan : ?counters:counters -> Probdb_logic.Cq.atom -> rel
(** The empty result of scanning the atom against a missing relation:
    same columns, zero rows. *)

val select : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> rel -> string -> int -> rel
(** [select r x id] keeps the rows whose column [x] carries interned value
    [id]. (Scans already push atom constants down; this exists for
    selections decided after a scan.) *)

val join : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> rel -> rel -> rel
(** Natural hash join on the shared columns, probabilities multiplied.
    Column positions are resolved once per call, never per row; the build
    side is the right input. Output columns are the left input's columns
    followed by the right input's non-shared columns. *)

val project : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> string list -> rel -> rel
(** Independent project: group by the kept columns and combine each
    group's probabilities with ⊕. Raises [Invalid_argument] on unknown
    columns. *)

val disjoint_union : ?guard:Probdb_guard.Guard.t -> ?counters:counters -> rel -> rel -> rel
(** Union of two relations over the same columns (the right input's
    columns may be ordered differently) whose underlying events are
    disjoint, so probabilities of equal tuples {e add}. Used for safe
    UCQ plans whose branches partition the event space. Raises
    [Invalid_argument] if the column sets differ. *)

val boolean_prob : rel -> float
(** For a zero-column relation: the probability of its single row, or 0. *)

val to_rows : Probdb_core.Dict.t -> rel -> (Probdb_core.Tuple.t * float) list
(** Materialise back into boxed tuples (row order preserved). *)
