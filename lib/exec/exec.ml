module Core = Probdb_core
module Dict = Core.Dict
module Cq = Probdb_logic.Cq
module Fo = Probdb_logic.Fo
module Guard = Probdb_guard.Guard
module Trace = Probdb_obs.Trace

(* Columns come from two providers: ordinary heap arrays (the CSV path,
   and every operator output) and mmapped [Bigarray] segments of a packed
   container (the storage path). Operators read through [iget]/[fget] and
   never care which one they got, so a scan over a packed relation can
   hand its mapped segments straight to a join — zero copies. *)

type int_column = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_column =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type icol = Ints of int array | Imapped of int_column
type fcol = Floats of float array | Fmapped of float_column

let iget c i = match c with Ints a -> a.(i) | Imapped m -> m.{i}
let ilen c = match c with Ints a -> Array.length a | Imapped m -> Bigarray.Array1.dim m
let fget c i = match c with Floats a -> a.(i) | Fmapped m -> m.{i}
let flen c = match c with Floats a -> Array.length a | Fmapped m -> Bigarray.Array1.dim m

let int_array = function
  | Ints a -> a
  | Imapped m -> Array.init (Bigarray.Array1.dim m) (fun i -> m.{i})

let float_array = function
  | Floats a -> a
  | Fmapped m -> Array.init (Bigarray.Array1.dim m) (fun i -> m.{i})

type rel = { vars : string array; cols : icol array; probs : fcol }

type counters = {
  mutable operators : int;
  mutable peak_rows : int;
  mutable rows_processed : int;
}

let fresh_counters () = { operators = 0; peak_rows = 0; rows_processed = 0 }

let nrows r = flen r.probs

let note name counters ~inputs ~output =
  if Trace.on () then begin
    Trace.counter ~cat:"exec" ("exec." ^ name ^ ".rows_in") (float_of_int inputs);
    Trace.counter ~cat:"exec" ("exec." ^ name ^ ".rows_out") (float_of_int output)
  end;
  match counters with
  | None -> ()
  | Some c ->
      c.operators <- c.operators + 1;
      c.rows_processed <- c.rows_processed + inputs;
      c.peak_rows <- max c.peak_rows output

(* Each operator body is one span on the trace timeline; paired with the
   rows in/out counters above it shows where plan time and cardinality
   blow-ups happen. *)
let traced name f = Trace.with_span ~cat:"exec" ("exec." ^ name) f

let index_of r x =
  let n = Array.length r.vars in
  let rec go i =
    if i = n then invalid_arg (Printf.sprintf "Exec: unknown column %s" x)
    else if String.equal r.vars.(i) x then i
    else go (i + 1)
  in
  go 0

(* ---------- growable buffers (operator outputs have unknown cardinality) ---------- *)

module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create ?(capacity = 64) () = { a = Array.make (max 1 capacity) 0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let bigger = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 bigger 0 b.n;
      b.a <- bigger
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let get b i = b.a.(i)
end

module Fbuf = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 64 0.0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let bigger = Array.make (2 * b.n) 0.0 in
      Array.blit b.a 0 bigger 0 b.n;
      b.a <- bigger
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let to_array b = Array.sub b.a 0 b.n
end

(* ---------- scan ---------- *)

(* Per-position admission test, resolved once per scan. *)
type arg_check =
  | Check_const of Core.Value.t
  | Bind  (* first occurrence of a variable: always admits *)
  | Check_pos of int  (* repeated variable: must equal the value at this position *)

(* Shared by both scan providers: distinct variables in first-occurrence
   order, each variable's defining position, and the per-position test. *)
let analyze_atom (atom : Cq.atom) =
  if atom.Cq.comp then invalid_arg "Exec.scan: complemented atom";
  let args = Array.of_list atom.Cq.args in
  let var_list =
    Array.fold_left
      (fun acc arg ->
        match arg with
        | Fo.Var x when not (List.exists (String.equal x) acc) -> acc @ [ x ]
        | _ -> acc)
      [] args
  in
  let vars = Array.of_list var_list in
  let first_pos_of x =
    let rec go j =
      match args.(j) with Fo.Var y when String.equal x y -> j | _ -> go (j + 1)
    in
    go 0
  in
  let first_pos = Array.map first_pos_of vars in
  let checks =
    Array.mapi
      (fun j arg ->
        match arg with
        | Fo.Const c -> Check_const c
        | Fo.Var x ->
            let p = first_pos_of x in
            if p = j then Bind else Check_pos p)
      args
  in
  (vars, first_pos, checks)

let scan ?(guard = Guard.unlimited) ?counters dict db (atom : Cq.atom) =
  traced "scan" @@ fun () ->
  let vars, first_pos, checks = analyze_atom atom in
  let k = Array.length vars in
  let col_bufs = Array.init k (fun _ -> Ibuf.create ()) in
  let prob_buf = Fbuf.create () in
  let ticks = ref 0 in
  let inputs = ref 0 in
  (* Most atoms bind distinct variables at every position; that shape needs
     no admission test and no per-row boxing — walk the tuple list once,
     interning straight into the column buffers. *)
  let simple = Array.for_all (function Bind -> true | _ -> false) checks in
  (match Core.Tid.relation_opt db atom.Cq.rel with
  | None -> ()
  | Some r when simple ->
      Core.Relation.fold
        (fun tuple p () ->
          Guard.tick guard ~site:"exec.scan" ticks;
          incr inputs;
          let rec push j = function
            | [] -> ()
            | v :: rest ->
                Ibuf.push col_bufs.(j) (Dict.intern dict v);
                push (j + 1) rest
          in
          push 0 tuple;
          Fbuf.push prob_buf p)
        r ()
  | Some r ->
      Core.Relation.fold
        (fun tuple p () ->
          Guard.tick guard ~site:"exec.scan" ticks;
          incr inputs;
          let row = Array.of_list tuple in
          let admit = ref true in
          Array.iteri
            (fun j check ->
              if !admit then
                match check with
                | Bind -> ()
                | Check_const c -> if not (Core.Value.equal c row.(j)) then admit := false
                | Check_pos p -> if not (Core.Value.equal row.(p) row.(j)) then admit := false)
            checks;
          if !admit then begin
            for j = 0 to k - 1 do
              Ibuf.push col_bufs.(j) (Dict.intern dict row.(first_pos.(j)))
            done;
            Fbuf.push prob_buf p
          end)
        r ());
  let probs = Fbuf.to_array prob_buf in
  let n = Array.length probs in
  let rel =
    { vars;
      cols = Array.map (fun b -> Ints (Array.sub b.Ibuf.a 0 n)) col_bufs;
      probs = Floats probs }
  in
  note "scan" counters ~inputs:!inputs ~output:n;
  rel

let empty_scan ?counters atom =
  let vars, _, _ = analyze_atom atom in
  let rel =
    { vars;
      cols = Array.map (fun _ -> Ints [||]) vars;
      probs = Floats [||] }
  in
  note "scan" counters ~inputs:0 ~output:0;
  rel

(* Resolved admission test for the mapped provider: constants become
   interned ids up front (an unknown constant matches no row at all). *)
type rcheck = Rbind | Rconst of int | Rpos of int | Rnever

let scan_cols ?(guard = Guard.unlimited) ?counters ~lookup
    ~(cols : int_column array) ~(probs : float_column) (atom : Cq.atom) =
  traced "scan" @@ fun () ->
  let vars, first_pos, checks = analyze_atom atom in
  if Array.length checks <> Array.length cols then
    invalid_arg
      (Printf.sprintf "Exec.scan_cols: atom %s has arity %d, relation has %d"
         atom.Cq.rel (Array.length checks) (Array.length cols));
  let n = Bigarray.Array1.dim probs in
  let k = Array.length vars in
  let simple = Array.for_all (function Bind -> true | _ -> false) checks in
  if simple then begin
    (* every position binds a distinct variable: the mapped segments ARE
       the output columns — zero copies, zero per-row work; pages fault in
       only when a downstream operator touches them *)
    let rel =
      { vars; cols = Array.map (fun c -> Imapped c) cols; probs = Fmapped probs }
    in
    note "scan" counters ~inputs:n ~output:n;
    rel
  end
  else begin
    let rchecks =
      Array.map
        (function
          | Bind -> Rbind
          | Check_pos p -> Rpos p
          | Check_const c -> (
              match lookup c with Some id -> Rconst id | None -> Rnever))
        checks
    in
    let impossible = Array.exists (function Rnever -> true | _ -> false) rchecks in
    let col_bufs = Array.init k (fun _ -> Ibuf.create ()) in
    let prob_buf = Fbuf.create () in
    let ticks = ref 0 in
    if not impossible then
      for i = 0 to n - 1 do
        Guard.tick guard ~site:"exec.scan" ticks;
        let admit = ref true in
        Array.iteri
          (fun j check ->
            if !admit then
              match check with
              | Rbind -> ()
              | Rconst id -> if cols.(j).{i} <> id then admit := false
              | Rpos p -> if cols.(p).{i} <> cols.(j).{i} then admit := false
              | Rnever -> admit := false)
          rchecks;
        if !admit then begin
          for j = 0 to k - 1 do
            Ibuf.push col_bufs.(j) cols.(first_pos.(j)).{i}
          done;
          Fbuf.push prob_buf probs.{i}
        end
      done;
    let out_probs = Fbuf.to_array prob_buf in
    let m = Array.length out_probs in
    let rel =
      { vars;
        cols = Array.map (fun b -> Ints (Array.sub b.Ibuf.a 0 m)) col_bufs;
        probs = Floats out_probs }
    in
    note "scan" counters ~inputs:(if impossible then 0 else n) ~output:m;
    rel
  end

(* ---------- select ---------- *)

let select ?(guard = Guard.unlimited) ?counters r x id =
  traced "select" @@ fun () ->
  let j = index_of r x in
  let col = r.cols.(j) in
  let keep = Ibuf.create () in
  let ticks = ref 0 in
  let n = nrows r in
  for i = 0 to n - 1 do
    Guard.tick guard ~site:"exec.select" ticks;
    if iget col i = id then Ibuf.push keep i
  done;
  let m = keep.Ibuf.n in
  let gather col = Ints (Array.init m (fun t -> iget col (Ibuf.get keep t))) in
  let rel =
    { vars = r.vars;
      cols = Array.map gather r.cols;
      probs = Floats (Array.init m (fun t -> fget r.probs (Ibuf.get keep t))) }
  in
  note "select" counters ~inputs:n ~output:m;
  rel

(* ---------- join ---------- *)

let join ?(guard = Guard.unlimited) ?counters r1 r2 =
  traced "join" @@ fun () ->
  let mem1 x = Array.exists (String.equal x) r1.vars in
  let shared = Array.of_list (List.filter mem1 (Array.to_list r2.vars)) in
  let idx1 = Array.map (index_of r1) shared in
  let idx2 = Array.map (index_of r2) shared in
  let extra2 =
    Array.to_list r2.vars
    |> List.mapi (fun j x -> (j, x))
    |> List.filter (fun (_, x) -> not (mem1 x))
  in
  let n1 = nrows r1 and n2 = nrows r2 in
  let ns = Array.length shared in
  let hash_row cols idxs i =
    let h = ref 0 in
    for j = 0 to ns - 1 do
      h := (!h * 486187739) + iget cols.(idxs.(j)) i
    done;
    !h land max_int
  in
  let eq_rows i1 i2 =
    let rec go j =
      j = ns
      || (iget r1.cols.(idx1.(j)) i1 = iget r2.cols.(idx2.(j)) i2 && go (j + 1))
    in
    go 0
  in
  (* Build on the right input. The table is a chained hash over two int
     arrays rather than a [Hashtbl]: a generic table allocates a bucket
     list on every [find_all] probe, which dominates the join at scale.
     Chains prepend on insert, so candidates come out newest-first —
     exactly [find_all]'s order, keeping output row order unchanged. *)
  let cap =
    let rec pow2 c = if c >= 2 * n2 then c else pow2 (2 * c) in
    pow2 16
  in
  let mask = cap - 1 in
  let head = Array.make cap (-1) in
  let next = Array.make (max 1 n2) (-1) in
  let ticks = ref 0 in
  for i2 = 0 to n2 - 1 do
    Guard.tick guard ~site:"exec.join" ticks;
    let slot = hash_row r2.cols idx2 i2 land mask in
    next.(i2) <- head.(slot);
    head.(slot) <- i2
  done;
  let left = Ibuf.create ~capacity:(max n1 n2) ()
  and right = Ibuf.create ~capacity:(max n1 n2) () in
  for i1 = 0 to n1 - 1 do
    Guard.tick guard ~site:"exec.join" ticks;
    let slot = hash_row r1.cols idx1 i1 land mask in
    let rec walk i2 =
      if i2 >= 0 then begin
        if eq_rows i1 i2 then begin
          Ibuf.push left i1;
          Ibuf.push right i2
        end;
        walk next.(i2)
      end
    in
    walk head.(slot)
  done;
  let m = left.Ibuf.n in
  let gather src by = Ints (Array.init m (fun t -> iget src (Ibuf.get by t))) in
  let cols1 = Array.map (fun col -> gather col left) r1.cols in
  let cols2 = List.map (fun (j, _) -> gather r2.cols.(j) right) extra2 in
  let rel =
    { vars = Array.append r1.vars (Array.of_list (List.map snd extra2));
      cols = Array.append cols1 (Array.of_list cols2);
      probs =
        Floats
          (Array.init m (fun t ->
               fget r1.probs (Ibuf.get left t) *. fget r2.probs (Ibuf.get right t))) }
  in
  note "join" counters ~inputs:(n1 + n2) ~output:m;
  rel

(* ---------- grouping (project, disjoint union) ---------- *)

type group = { row : int; mutable p : float }

(* Group rows on the columns [idxs], combining probabilities with
   [combine]; returns groups in first-seen row order. *)
let group_by ~guard ~site ~combine idxs r =
  let k = Array.length idxs in
  let hash_row i =
    let h = ref 0 in
    for j = 0 to k - 1 do
      h := (!h * 486187739) + iget r.cols.(idxs.(j)) i
    done;
    !h land max_int
  in
  let eq_rows a b =
    let rec go j =
      j = k || (iget r.cols.(idxs.(j)) a = iget r.cols.(idxs.(j)) b && go (j + 1))
    in
    go 0
  in
  let groups = ref [] and ngroups = ref 0 in
  let tbl : (int, group) Hashtbl.t = Hashtbl.create (max 16 (2 * nrows r)) in
  let ticks = ref 0 in
  let n = nrows r in
  for i = 0 to n - 1 do
    Guard.tick guard ~site ticks;
    let h = hash_row i in
    let existing =
      List.find_opt (fun g -> eq_rows g.row i) (Hashtbl.find_all tbl h)
    in
    match existing with
    | Some g -> g.p <- combine g.p (fget r.probs i)
    | None ->
        let g = { row = i; p = fget r.probs i } in
        Hashtbl.add tbl h g;
        groups := g :: !groups;
        incr ngroups
  done;
  let arr = Array.make !ngroups { row = 0; p = 0.0 } in
  List.iteri (fun i g -> arr.(!ngroups - 1 - i) <- g) !groups;
  arr

let combine_or p q = 1.0 -. ((1.0 -. p) *. (1.0 -. q))

let project ?(guard = Guard.unlimited) ?counters keep r =
  traced "project" @@ fun () ->
  let keep_arr = Array.of_list keep in
  let idxs = Array.map (index_of r) keep_arr in
  let groups = group_by ~guard ~site:"exec.project" ~combine:combine_or idxs r in
  let m = Array.length groups in
  let rel =
    { vars = keep_arr;
      cols =
        Array.map
          (fun j -> Ints (Array.init m (fun t -> iget r.cols.(j) groups.(t).row)))
          idxs;
      probs = Floats (Array.init m (fun t -> groups.(t).p)) }
  in
  note "project" counters ~inputs:(nrows r) ~output:m;
  rel

let disjoint_union ?(guard = Guard.unlimited) ?counters r1 r2 =
  traced "union" @@ fun () ->
  let k = Array.length r1.vars in
  if
    k <> Array.length r2.vars
    || not (Array.for_all (fun x -> Array.exists (String.equal x) r2.vars) r1.vars)
  then invalid_arg "Exec.disjoint_union: column sets differ";
  (* align r2's columns with r1's order, then group the concatenation on
     all columns with probabilities adding (the branches are disjoint) *)
  let perm = Array.map (index_of r2) r1.vars in
  let n1 = nrows r1 and n2 = nrows r2 in
  let both =
    { vars = r1.vars;
      cols =
        Array.init k (fun j ->
            Ints
              (Array.append (int_array r1.cols.(j)) (int_array r2.cols.(perm.(j)))));
      probs = Floats (Array.append (float_array r1.probs) (float_array r2.probs)) }
  in
  let idxs = Array.init k Fun.id in
  let groups = group_by ~guard ~site:"exec.union" ~combine:( +. ) idxs both in
  let m = Array.length groups in
  let rel =
    { vars = r1.vars;
      cols =
        Array.init k (fun j ->
            Ints (Array.init m (fun t -> iget both.cols.(j) groups.(t).row)));
      probs = Floats (Array.init m (fun t -> groups.(t).p)) }
  in
  note "union" counters ~inputs:(n1 + n2) ~output:m;
  rel

let boolean_prob r =
  if Array.length r.vars <> 0 then invalid_arg "Exec.boolean_prob: relation has columns"
  else
    match nrows r with
    | 0 -> 0.0
    | 1 -> fget r.probs 0
    | _ -> invalid_arg "Exec.boolean_prob: multiple rows in boolean relation"

let to_rows dict r =
  let k = Array.length r.vars in
  List.init (nrows r) (fun i ->
      (List.init k (fun j -> Dict.value dict (iget r.cols.(j) i)), fget r.probs i))
