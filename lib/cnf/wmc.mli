(** Weighted model counting on a dense clause database — the sharpSAT-style
    grounded engine (Sec. 7 of the paper, the machinery behind the d-DNNF
    compilers).

    Where [Probdb_dpll.Dpll] rebuilds immutable formula trees on every
    Shannon expansion, this counter conditions by {e assignment}: literals
    are packed ints ({!Cnf.lit}), clauses live in one flat int arena,
    conditioning pushes literals onto a trail, two-watched-literal unit
    propagation finds implied literals without scanning clauses, and
    backtracking pops the trail in O(1) per entry. Connected components of
    the residual database are recomputed only inside the parent component
    (incremental in the recursion), and solved components are memoised in a
    {e bounded} cache keyed by a packed component signature.

    The search mirrors the tree solver's arithmetic — same branching rule
    (most occurrences, smallest variable on ties), same combination order —
    so on directly-translated lineage the two produce bit-identical
    probabilities; the tree solver remains the property-tested reference
    semantics ([test/test_cnf.ml]). The recorded trace is the same
    {!Probdb_kc.Circuit.t} d-DNNF the tree solver emits (implied literals
    become one-sided decision nodes), so trace-size measurements (Thm 7.1)
    apply unchanged. *)

type config = {
  use_cache : bool;  (** memoise solved components *)
  use_components : bool;
      (** split residuals into connected components (off: one blob) *)
  max_decisions : int;  (** bail out with {!Decision_limit} beyond this *)
  max_cache_entries : int;
      (** component-cache entry cap; on overflow the least-recently-used
          half is evicted (counted in {!stats}[.cache_evictions]). A
          ["wmc.cache_entries"] budget on the guard overrides this. *)
}

val default_config : config
(** cache + components, 50M decisions, 500k cache entries. *)

exception Decision_limit of int

type stats = {
  decisions : int;  (** branching decisions *)
  propagations : int;  (** literals implied by unit propagation *)
  components : int;  (** components produced across all splits *)
  cache_hits : int;
  cache_queries : int;
  cache_entries : int;  (** entries resident when the search finished *)
  cache_evictions : int;
      (** entries dropped by the entry cap or the heap-watermark sweep *)
  max_trail : int;  (** deepest assignment trail reached *)
}

val obs_counts : stats -> Probdb_obs.Stats.wmc_counts
(** The same counters in the shape of the observability layer's per-query
    record; used by the engine and the CLI. *)

type result = {
  prob : float;
  circuit : Probdb_kc.Circuit.t;  (** the trace, a decision-DNNF *)
  trace_size : int;  (** distinct internal nodes of the trace *)
  stats : stats;
}

val count_cnf :
  ?config:config ->
  ?guard:Probdb_guard.Guard.t ->
  prob:(int -> float) ->
  Cnf.t ->
  result
(** Count a prepared clause database. [prob] maps {e original} variable
    ids (gate variables weigh [(1,1)], see {!Cnf.weights}). [guard]
    (default {!Probdb_guard.Guard.unlimited}) is polled at every decision
    (site ["wmc.decide"]); its heap watermark additionally drives cache
    eviction, and a ["wmc.cache_entries"] budget caps the cache. All search
    state is local to the call, so a guard trip mid-solve aborts cleanly —
    a subsequent call starts from scratch with nothing corrupted. *)

val count :
  ?config:config ->
  ?guard:Probdb_guard.Guard.t ->
  ?force_clausify:bool ->
  prob:(int -> float) ->
  Probdb_boolean.Formula.t ->
  result
(** {!Cnf.translate} then {!count_cnf}. [force_clausify] (default [false])
    skips the direct translation even on CNF-shaped input — the engine's
    explicit [--method wmc] path for non-CNF lineage, and an ablation knob
    for tests. *)

val probability :
  ?config:config ->
  ?guard:Probdb_guard.Guard.t ->
  ?force_clausify:bool ->
  prob:(int -> float) ->
  Probdb_boolean.Formula.t ->
  float
(** Just the probability of {!count}. *)
