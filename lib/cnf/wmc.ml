module F = Probdb_boolean.Formula
module Circuit = Probdb_kc.Circuit
module Guard = Probdb_guard.Guard
module Trace = Probdb_obs.Trace

type config = {
  use_cache : bool;
  use_components : bool;
  max_decisions : int;
  max_cache_entries : int;
}

let default_config =
  { use_cache = true;
    use_components = true;
    max_decisions = 50_000_000;
    max_cache_entries = 500_000 }

exception Decision_limit of int

type stats = {
  decisions : int;
  propagations : int;
  components : int;
  cache_hits : int;
  cache_queries : int;
  cache_entries : int;
  cache_evictions : int;
  max_trail : int;
}

let obs_counts (s : stats) : Probdb_obs.Stats.wmc_counts =
  { Probdb_obs.Stats.wmc_decisions = s.decisions;
    propagations = s.propagations;
    components = s.components;
    wmc_cache_hits = s.cache_hits;
    wmc_cache_queries = s.cache_queries;
    wmc_cache_entries = s.cache_entries;
    wmc_cache_evictions = s.cache_evictions;
    max_trail = s.max_trail }

type result = { prob : float; circuit : Circuit.t; trace_size : int; stats : stats }

(* ---------- small growable int vector ---------- *)

type vec = { mutable data : int array; mutable len : int }

let vec_make () = { data = Array.make 4 0; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_sorted_array v =
  let a = Array.sub v.data 0 v.len in
  Array.sort Int.compare a;
  a

(* ---------- component cache ---------- *)

(* Key: the packed signature of a residual component —
   [#clauses; clause ids…; free vars…], both segments sorted. Clause ids
   plus the free-variable set determine the residual constraint exactly
   (the free literals of a clause are its literals over free variables, and
   component clauses are unsatisfied by construction), so equal signatures
   mean equal subproblems. Same multiply-and-mask mixing discipline as
   [Formula.hash]. *)
module Sig = struct
  type t = int array

  let equal a b =
    Array.length a = Array.length b
    &&
    let n = Array.length a in
    let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash a =
    let h = ref 0 in
    for i = 0 to Array.length a - 1 do
      h := (!h * 486187739) + a.(i)
    done;
    !h land max_int
end

module Ccache = Hashtbl.Make (Sig)

type centry = { cprob : float; ccirc : Circuit.t; mutable age : int }

(* ---------- solver state ---------- *)

type solver = {
  cnf : Cnf.t;
  nclauses : int;
  arena : int array;  (* all clause literals, flat *)
  cstart : int array;  (* clause c occupies arena[cstart.(c) .. cstart.(c+1) - 1] *)
  value : int array;  (* per variable: 0 unassigned, 1 true, -1 false *)
  trail : int array;
  mutable trail_len : int;
  watches : vec array;  (* per literal: clauses watching it *)
  occ : int array array;  (* per variable: clauses containing it *)
  vstamp : int array;  (* per variable: component-BFS generation *)
  cstamp : int array;  (* per clause: component-BFS generation *)
  bstamp : int array;  (* per variable: branching-count generation *)
  bcount : int array;
  mutable gen : int;
  w_pos : float array;
  w_neg : float array;
  builder : Circuit.builder;
  mutable decisions : int;
  mutable propagations : int;
  mutable components : int;
  mutable cache_hits : int;
  mutable cache_queries : int;
  mutable cache_evictions : int;
  mutable inserts : int;
  mutable max_trail : int;
}

let lit_value s l =
  let v = s.value.(l lsr 1) in
  if l land 1 = 0 then v else -v

let lit_weight s l =
  if l land 1 = 0 then s.w_pos.(l lsr 1) else s.w_neg.(l lsr 1)

let assign s l =
  s.value.(l lsr 1) <- (if l land 1 = 0 then 1 else -1);
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1;
  if s.trail_len > s.max_trail then s.max_trail <- s.trail_len

(* O(1)-per-entry backtracking: pop the trail to [mark], unassigning.
   Watch lists need no repair — the two-watched-literal invariant is
   restored lazily by the next propagation. *)
let undo s mark =
  for k = s.trail_len - 1 downto mark do
    s.value.(s.trail.(k) lsr 1) <- 0
  done;
  s.trail_len <- mark

let clause_satisfied s c =
  let e = s.cstart.(c + 1) in
  let rec go j = j < e && (lit_value s s.arena.(j) = 1 || go (j + 1)) in
  go s.cstart.(c)

(* Two-watched-literal unit propagation from trail position [head].
   Watched literals live in the first two arena slots of their clause and
   are swapped in place as watches move. Returns [false] on conflict (the
   trail then holds assignments the caller must [undo]). *)
let propagate s head =
  let ok = ref true in
  let head = ref head in
  while !ok && !head < s.trail_len do
    let l = s.trail.(!head) in
    incr head;
    let fl = l lxor 1 in
    let ws = s.watches.(fl) in
    let i = ref 0 and j = ref 0 in
    while !i < ws.len do
      let c = ws.data.(!i) in
      incr i;
      let st = s.cstart.(c) in
      if s.arena.(st) = fl then begin
        s.arena.(st) <- s.arena.(st + 1);
        s.arena.(st + 1) <- fl
      end;
      let other = s.arena.(st) in
      if lit_value s other = 1 then begin
        (* satisfied through the other watch; keep watching *)
        ws.data.(!j) <- c;
        incr j
      end
      else begin
        let e = s.cstart.(c + 1) in
        let k = ref (st + 2) in
        let repl = ref (-1) in
        while !repl < 0 && !k < e do
          if lit_value s s.arena.(!k) >= 0 then repl := !k else incr k
        done;
        if !repl >= 0 then begin
          (* move the watch to the non-false replacement *)
          let nl = s.arena.(!repl) in
          s.arena.(!repl) <- fl;
          s.arena.(st + 1) <- nl;
          vec_push s.watches.(nl) c
        end
        else if lit_value s other = -1 then begin
          (* every literal false: conflict; keep list consistent and stop *)
          ws.data.(!j) <- c;
          incr j;
          while !i < ws.len do
            ws.data.(!j) <- ws.data.(!i);
            incr i;
            incr j
          done;
          ok := false
        end
        else begin
          (* unit: [other] is the last non-false literal *)
          ws.data.(!j) <- c;
          incr j;
          assign s other;
          s.propagations <- s.propagations + 1
        end
      end
    done;
    ws.len <- !j
  done;
  !ok

(* Components of the residual database, computed incrementally: the search
   is confined to the parent component's variables and clauses, so deep in
   the decision tree each split only touches the shrinking subproblem it
   lives in, never the global database. Unsatisfied clauses reachable from
   a free variable are exactly the parent's (conditioning only ever
   satisfies or shrinks clauses), so the walk follows global occurrence
   lists filtered by a satisfaction test. Components come back ordered by
   their smallest free variable; free variables whose clauses are all
   satisfied belong to no component (their weights sum to 1). *)
let find_components s (pvars : int array) =
  s.gen <- s.gen + 1;
  let g = s.gen in
  let comps = ref [] in
  let stack = vec_make () in
  let npv = Array.length pvars in
  for vi = 0 to npv - 1 do
    let v0 = pvars.(vi) in
    if s.value.(v0) = 0 && s.vstamp.(v0) <> g then begin
      let cvars = vec_make () and ccls = vec_make () in
      s.vstamp.(v0) <- g;
      stack.len <- 0;
      vec_push stack v0;
      while stack.len > 0 do
        stack.len <- stack.len - 1;
        let u = stack.data.(stack.len) in
        vec_push cvars u;
        let occ = s.occ.(u) in
        for k = 0 to Array.length occ - 1 do
          let c = occ.(k) in
          if s.cstamp.(c) <> g then begin
            s.cstamp.(c) <- g;
            if not (clause_satisfied s c) then begin
              vec_push ccls c;
              for j = s.cstart.(c) to s.cstart.(c + 1) - 1 do
                let w = s.arena.(j) lsr 1 in
                if s.value.(w) = 0 && s.vstamp.(w) <> g then begin
                  s.vstamp.(w) <- g;
                  vec_push stack w
                end
              done
            end
          end
        done
      done;
      if ccls.len > 0 then
        comps := (vec_to_sorted_array cvars, vec_to_sorted_array ccls) :: !comps
    end
  done;
  List.rev !comps

(* The ablation without the components rule: the whole residual as one
   pseudo-component. *)
let residual_as_one s (pvars : int array) =
  s.gen <- s.gen + 1;
  let g = s.gen in
  let cvars = vec_make () and ccls = vec_make () in
  Array.iter
    (fun v ->
      if s.value.(v) = 0 then
        Array.iter
          (fun c ->
            if s.cstamp.(c) <> g then begin
              s.cstamp.(c) <- g;
              if not (clause_satisfied s c) then begin
                vec_push ccls c;
                for j = s.cstart.(c) to s.cstart.(c + 1) - 1 do
                  let w = s.arena.(j) lsr 1 in
                  if s.value.(w) = 0 && s.vstamp.(w) <> g then begin
                    s.vstamp.(w) <- g;
                    vec_push cvars w
                  end
                done
              end
            end)
          s.occ.(v))
    pvars;
  if ccls.len = 0 then []
  else [ (vec_to_sorted_array cvars, vec_to_sorted_array ccls) ]

(* Branching heuristic: most occurrences in the component's (all
   unsatisfied) clauses, smallest variable on ties — the clause-database
   reading of the tree solver's [most_frequent_var], so the two searches
   visit the same decisions on directly-translated lineage. *)
let branch_var s (cvars : int array) (ccls : int array) =
  s.gen <- s.gen + 1;
  let g = s.gen in
  Array.iter
    (fun c ->
      for j = s.cstart.(c) to s.cstart.(c + 1) - 1 do
        let w = s.arena.(j) lsr 1 in
        if s.value.(w) = 0 then
          if s.bstamp.(w) = g then s.bcount.(w) <- s.bcount.(w) + 1
          else begin
            s.bstamp.(w) <- g;
            s.bcount.(w) <- 1
          end
      done)
    ccls;
  let best = ref (-1) and best_count = ref 0 in
  Array.iter
    (fun v ->
      if s.bstamp.(v) = g && s.bcount.(v) > !best_count then begin
        best := v;
        best_count := s.bcount.(v)
      end)
    cvars;
  !best

(* ---------- the search ---------- *)

let make_key (cvars : int array) (ccls : int array) =
  let nc = Array.length ccls and nv = Array.length cvars in
  let key = Array.make (1 + nc + nv) nc in
  Array.blit ccls 0 key 1 nc;
  Array.blit cvars 0 key (1 + nc) nv;
  key

let count_cnf ?(config = default_config) ?(guard = Guard.unlimited) ~prob cnf =
  let nvars = cnf.Cnf.nvars in
  let nclauses = Array.length cnf.Cnf.clauses in
  let w_pos, w_neg = Cnf.weights ~prob cnf in
  let total_lits = Array.fold_left (fun a c -> a + Array.length c) 0 cnf.Cnf.clauses in
  let arena = Array.make (max 1 total_lits) 0 in
  let cstart = Array.make (nclauses + 1) 0 in
  let occ_count = Array.make (max 1 nvars) 0 in
  Array.iteri
    (fun c lits ->
      cstart.(c + 1) <- cstart.(c) + Array.length lits;
      Array.iteri
        (fun j l ->
          arena.(cstart.(c) + j) <- l;
          occ_count.(l lsr 1) <- occ_count.(l lsr 1) + 1)
        lits)
    cnf.Cnf.clauses;
  let occ = Array.init (max 1 nvars) (fun v -> Array.make occ_count.(v) 0) in
  let fill = Array.make (max 1 nvars) 0 in
  Array.iteri
    (fun c lits ->
      Array.iter
        (fun l ->
          let v = l lsr 1 in
          occ.(v).(fill.(v)) <- c;
          fill.(v) <- fill.(v) + 1)
        lits)
    cnf.Cnf.clauses;
  let s =
    { cnf;
      nclauses;
      arena;
      cstart;
      value = Array.make (max 1 nvars) 0;
      trail = Array.make (max 1 nvars) 0;
      trail_len = 0;
      watches = Array.init (max 1 (2 * nvars)) (fun _ -> vec_make ());
      occ;
      vstamp = Array.make (max 1 nvars) 0;
      cstamp = Array.make (max 1 nclauses) 0;
      bstamp = Array.make (max 1 nvars) 0;
      bcount = Array.make (max 1 nvars) 0;
      gen = 0;
      w_pos;
      w_neg;
      builder = Circuit.builder ();
      decisions = 0;
      propagations = 0;
      components = 0;
      cache_hits = 0;
      cache_queries = 0;
      cache_evictions = 0;
      inserts = 0;
      max_trail = 0 }
  in
  let cache : centry Ccache.t = Ccache.create 1024 in
  let cache_cap =
    match Guard.budget_limit guard "wmc.cache_entries" with
    | Some n -> max 2 n
    | None -> max 2 config.max_cache_entries
  in
  let clock = ref 0 in
  let evict_half () =
    let entries = Ccache.fold (fun k e acc -> (k, e.age) :: acc) cache [] in
    let entries = List.sort (fun (_, a) (_, b) -> Int.compare a b) entries in
    let drop = max 1 (List.length entries / 2) in
    List.iteri (fun i (k, _) -> if i < drop then Ccache.remove cache k) entries;
    s.cache_evictions <- s.cache_evictions + drop
  in
  (* Heap-watermark integration: rather than letting memoisation push the
     heap over the guard's limit (which would trip the next poll), shed
     cache weight when live words reach 80% of the watermark. Checked every
     256 inserts — same amortisation as [Guard.tick]. *)
  let heap_check () =
    s.inserts <- s.inserts + 1;
    if s.inserts land 255 = 0 then
      match Guard.heap_watermark_words guard with
      | Some w ->
          if (Gc.quick_stat ()).Gc.heap_words * 10 > w * 8 && Ccache.length cache > 2
          then evict_half ()
      | None -> ()
  in
  let tru = Circuit.tru s.builder and fls = Circuit.fls s.builder in
  let implied_leaf l =
    Circuit.decide_lit s.builder ~var:cnf.Cnf.trace_var.(l lsr 1)
      ~sign:(l land 1 = 0) tru
  in
  (* One branch of the Shannon expansion: assign, propagate, split the
     residual, recurse. The value mirrors the tree solver's arithmetic
     exactly: a left fold of the implied-literal weights in ascending
     variable order, then the component values in ascending min-variable
     order — on directly-translated lineage the two solvers produce
     bit-identical floats (the e16 benchmark asserts this). *)
  let rec branch (cvars, ccls) v sign =
    let mark = s.trail_len in
    assign s (Cnf.lit v sign);
    if not (propagate s mark) then begin
      undo s mark;
      (0.0, fls)
    end
    else begin
      let implied = Array.sub s.trail (mark + 1) (s.trail_len - mark - 1) in
      Array.sort (fun a b -> Int.compare (a lsr 1) (b lsr 1)) implied;
      let comps =
        if config.use_components then find_components s cvars
        else residual_as_one s cvars
      in
      ignore ccls;
      s.components <- s.components + List.length comps;
      let parts = List.map solve_comp comps in
      let acc = Array.fold_left (fun acc l -> acc *. lit_weight s l) 1.0 implied in
      let p = List.fold_left (fun acc (q, _) -> acc *. q) acc parts in
      let leaves = List.map implied_leaf (Array.to_list implied) in
      let circ = Circuit.band s.builder (leaves @ List.map snd parts) in
      undo s mark;
      (p, circ)
    end
  and decide (cvars, ccls) =
    let v = branch_var s cvars ccls in
    s.decisions <- s.decisions + 1;
    if s.decisions > config.max_decisions then
      raise (Decision_limit config.max_decisions);
    Guard.poll guard ~site:"wmc.decide";
    (* Sampled: one counter event per 256 decisions keeps the trace small
       while still showing search progress on the timeline. *)
    if s.decisions land 255 = 0 && Trace.on () then begin
      Trace.counter ~cat:"wmc" "wmc.decisions" (float_of_int s.decisions);
      Trace.counter ~cat:"wmc" "wmc.cache_hits" (float_of_int s.cache_hits);
      Trace.counter ~cat:"wmc" "wmc.components" (float_of_int s.components)
    end;
    let p_lo, c_lo = branch (cvars, ccls) v false in
    let p_hi, c_hi = branch (cvars, ccls) v true in
    let p = (s.w_neg.(v) *. p_lo) +. (s.w_pos.(v) *. p_hi) in
    (p, Circuit.decision s.builder cnf.Cnf.trace_var.(v) ~lo:c_lo ~hi:c_hi)
  and solve_comp (cvars, ccls) =
    if not config.use_cache then decide (cvars, ccls)
    else begin
      s.cache_queries <- s.cache_queries + 1;
      incr clock;
      let key = make_key cvars ccls in
      match Ccache.find_opt cache key with
      | Some e ->
          s.cache_hits <- s.cache_hits + 1;
          e.age <- !clock;
          (e.cprob, e.ccirc)
      | None ->
          let (p, c) as result = decide (cvars, ccls) in
          if Ccache.length cache >= cache_cap then evict_half ();
          heap_check ();
          Ccache.replace cache key { cprob = p; ccirc = c; age = !clock };
          result
    end
  in
  let conflict = ref false in
  (* Assert the root unit clauses, then propagate to closure. *)
  for c = 0 to nclauses - 1 do
    if not !conflict then
      match cstart.(c + 1) - cstart.(c) with
      | 0 -> conflict := true
      | 1 ->
          let l = arena.(cstart.(c)) in
          (match lit_value s l with
          | 0 -> assign s l
          | -1 -> conflict := true
          | _ -> ())
      | _ ->
          vec_push s.watches.(arena.(cstart.(c))) c;
          vec_push s.watches.(arena.(cstart.(c) + 1)) c
  done;
  let p, circuit =
    if !conflict then (0.0, fls)
    else if not (propagate s 0) then (0.0, fls)
    else begin
      let implied = Array.sub s.trail 0 s.trail_len in
      Array.sort (fun a b -> Int.compare (a lsr 1) (b lsr 1)) implied;
      let all_vars = Array.init nvars Fun.id in
      let comps =
        if config.use_components then find_components s all_vars
        else residual_as_one s all_vars
      in
      s.components <- s.components + List.length comps;
      let parts = List.map solve_comp comps in
      let acc = Array.fold_left (fun acc l -> acc *. lit_weight s l) 1.0 implied in
      let p = List.fold_left (fun acc (q, _) -> acc *. q) acc parts in
      let leaves = List.map implied_leaf (Array.to_list implied) in
      (p, Circuit.band s.builder (leaves @ List.map snd parts))
    end
  in
  { prob = p;
    circuit;
    trace_size = Circuit.size circuit;
    stats =
      { decisions = s.decisions;
        propagations = s.propagations;
        components = s.components;
        cache_hits = s.cache_hits;
        cache_queries = s.cache_queries;
        cache_entries = Ccache.length cache;
        cache_evictions = s.cache_evictions;
        max_trail = s.max_trail } }

let count ?config ?guard ?(force_clausify = false) ~prob f =
  let cnf = if force_clausify then Cnf.clausify f else Cnf.translate f in
  count_cnf ?config ?guard ~prob cnf

let probability ?config ?guard ?force_clausify ~prob f =
  (count ?config ?guard ?force_clausify ~prob f).prob
