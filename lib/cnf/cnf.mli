(** CNF bridge: from {!Probdb_boolean.Formula} to an int-packed clause set.

    The clause-database model counter ({!Wmc}) wants clauses of packed int
    literals, not formula trees. Lineages of universal (CNF-shaped) queries
    translate {e directly} — clause for clause, no new variables — which is
    the common case the engine's WMC strategy is gated on. Everything else
    goes through {!clausify}, a Tseitin transformation with biconditional
    gate definitions; gates are functionally determined by the original
    variables, so weighted model counts are preserved when gates weigh
    [(1, 1)] in both phases ({!weights}).

    Literals pack as [2*v] (positive) / [2*v + 1] (negated) over {e dense}
    variable indices [0 .. nvars-1]; index order follows ascending original
    variable id, so ordering heuristics agree with the tree solver's. *)

val lit : int -> bool -> int
(** [lit v sign] is the packed literal for dense variable [v]. *)

val neg : int -> int
(** The complement literal (one xor). *)

val var : int -> int
(** The dense variable of a literal. *)

val positive : int -> bool

type t = {
  nvars : int;  (** dense variables, original then auxiliary *)
  n_orig : int;  (** dense [0 .. n_orig-1] are original formula variables *)
  orig_var : int array;  (** dense index → original variable id, ascending *)
  trace_var : int array;
      (** dense index → id to use in recorded circuits: the original id for
          original variables, ids past every original id for gates *)
  clauses : int array array;  (** each clause sorted, duplicate-free *)
  clausified : bool;  (** gates were introduced (Tseitin fallback) *)
}

val of_formula : Probdb_boolean.Formula.t -> t option
(** Direct translation, defined exactly when
    {!Probdb_boolean.Formula.as_cnf} recognises the shape. No auxiliary
    variables; [True] becomes zero clauses and [False] one empty clause. *)

val clausify : Probdb_boolean.Formula.t -> t
(** Tseitin clausification with biconditional gate definitions (weighted
    model count preserved, see module comment). Linear in the formula size
    up to the structural memo table that shares repeated subformulas. *)

val translate : Probdb_boolean.Formula.t -> t
(** {!of_formula} when CNF-shaped, else {!clausify}. *)

val weights : prob:(int -> float) -> t -> float array * float array
(** [(w_pos, w_neg)] indexed by dense variable: [(p, 1-p)] from [prob] on
    original variables ([1 -. p] computed here, once — the float the tree
    solver multiplies by), [(1, 1)] on gates. *)

val pp : Format.formatter -> t -> unit
