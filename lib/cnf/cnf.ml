module F = Probdb_boolean.Formula

(* Literal encoding: variable [v] (a dense index) is literal [2*v]
   positively and [2*v + 1] negated. Negation is one xor; the variable one
   shift. This is the int packing the whole clause database runs on. *)
let lit v sign = (2 * v) + if sign then 0 else 1
let neg l = l lxor 1
let var l = l lsr 1
let positive l = l land 1 = 0

type t = {
  nvars : int;
  n_orig : int;
  orig_var : int array;
  trace_var : int array;
  clauses : int array array;
  clausified : bool;
}

(* Dense index per original variable, in ascending variable order — so the
   dense order IS the variable order, and the branching tie-break "smallest
   variable" means the same thing here as in the tree solver. *)
let dense_map f =
  let vs = Array.of_list (F.vars f) in
  let map = Hashtbl.create (Array.length vs) in
  Array.iteri (fun i v -> Hashtbl.add map v i) vs;
  (vs, map)

(* Auxiliary (Tseitin) variables get trace ids past every original id, so
   the recorded circuit never confuses an aux decision with a lineage
   variable. *)
let trace_ids ~orig_var ~nvars =
  let n_orig = Array.length orig_var in
  let aux_base = if n_orig = 0 then 0 else orig_var.(n_orig - 1) + 1 in
  Array.init nvars (fun i ->
      if i < n_orig then orig_var.(i) else aux_base + (i - n_orig))

let of_cnf_clauses ~orig_var ~map cls =
  let nvars = Array.length orig_var in
  let clauses =
    List.filter_map
      (fun c ->
        let lits =
          List.sort_uniq Int.compare
            (List.map (fun (v, sign) -> lit (Hashtbl.find map v) sign) c)
        in
        (* A tautological clause (l and ¬l) constrains nothing. The smart
           constructors never produce one, but the translation should not
           depend on that. *)
        if List.exists (fun l -> List.mem (neg l) lits) lits then None
        else Some (Array.of_list lits))
      cls
  in
  { nvars;
    n_orig = nvars;
    orig_var;
    trace_var = trace_ids ~orig_var ~nvars;
    clauses = Array.of_list clauses;
    clausified = false }

let of_formula f =
  match F.as_cnf f with
  | None -> None
  | Some cls ->
      let orig_var, map = dense_map f in
      Some (of_cnf_clauses ~orig_var ~map cls)

(* Tseitin clausification with biconditional definitions: each gate
   variable [a] is {e equivalent} to its subformula, not merely implied by
   it, so every assignment of the original variables extends to exactly one
   assignment of the gates — the weighted model count is preserved when
   gates weigh (1, 1) (see {!Wmc}). Shared subformulas (the input is a
   normalised DAG-ish tree) share one gate via the structural memo table. *)
let clausify f =
  let orig_var, map = dense_map f in
  let n_orig = Array.length orig_var in
  let next = ref n_orig in
  let clauses = ref [] in
  let emit c = clauses := Array.of_list c :: !clauses in
  let fresh () =
    let v = !next in
    incr next;
    lit v true
  in
  let memo = Hashtbl.create 64 in
  let constant_lit = ref None in
  (* A literal forced true, for the (normally impossible) nested constant. *)
  let forced_true () =
    match !constant_lit with
    | Some l -> l
    | None ->
        let l = fresh () in
        emit [ l ];
        constant_lit := Some l;
        l
  in
  let rec go f =
    match Hashtbl.find_opt memo (F.hash f, f) with
    | Some l -> l
    | None ->
        let l =
          match f with
          | F.True -> forced_true ()
          | F.False -> neg (forced_true ())
          | F.Var v -> lit (Hashtbl.find map v) true
          | F.Not g -> neg (go g)
          | F.And gs ->
              let ls = List.map go gs in
              let a = fresh () in
              List.iter (fun l -> emit [ neg a; l ]) ls;
              emit (a :: List.map neg ls);
              a
          | F.Or gs ->
              let ls = List.map go gs in
              let a = fresh () in
              List.iter (fun l -> emit [ a; neg l ]) ls;
              emit (neg a :: ls);
              a
        in
        Hashtbl.add memo (F.hash f, f) l;
        l
  in
  (match f with
  | F.True -> ()
  | F.False -> emit []
  | f -> emit [ go f ]);
  let nvars = !next in
  { nvars;
    n_orig;
    orig_var;
    trace_var = trace_ids ~orig_var ~nvars;
    clauses = Array.of_list (List.rev !clauses);
    clausified = true }

let translate f =
  match of_formula f with Some t -> t | None -> clausify f

(* Weight arrays in probability form. Gate variables weigh (1, 1): they are
   functionally determined by the original variables, so each original
   model contributes its own probability exactly once. *)
let weights ~prob t =
  let w_pos = Array.make t.nvars 1.0 in
  let w_neg = Array.make t.nvars 1.0 in
  for i = 0 to t.n_orig - 1 do
    let p = prob t.orig_var.(i) in
    w_pos.(i) <- p;
    w_neg.(i) <- 1.0 -. p
  done;
  (w_pos, w_neg)

let pp ppf t =
  Format.fprintf ppf "@[<v>cnf: %d vars (%d original%s), %d clauses" t.nvars
    t.n_orig
    (if t.clausified then ", clausified" else "")
    (Array.length t.clauses);
  Array.iter
    (fun c ->
      Format.fprintf ppf "@ (%s)"
        (String.concat " | "
           (Array.to_list
              (Array.map
                 (fun l ->
                   Printf.sprintf "%s%d"
                     (if positive l then "" else "!")
                     t.trace_var.(var l))
                 c))))
    t.clauses;
  Format.fprintf ppf "@]"
