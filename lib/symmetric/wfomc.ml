module Fo = Probdb_logic.Fo
module Guard = Probdb_guard.Guard

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type stats = {
  mutable cells : int;
  mutable live_cells : int;
  mutable compositions : int;
  mutable cell_calls : int;
}

let fresh_stats () = { cells = 0; live_cells = 0; compositions = 0; cell_calls = 0 }

type pred = { pname : string; arity : int; wt : float; wf : float }

(* ---------- quantifier-free matrix evaluation ---------- *)

let rec eval_matrix av = function
  | Fo.True -> true
  | Fo.False -> false
  | Fo.Atom a -> av a.Fo.rel a.Fo.args
  | Fo.Not f -> not (eval_matrix av f)
  | Fo.And (f, g) -> eval_matrix av f && eval_matrix av g
  | Fo.Or (f, g) -> eval_matrix av f || eval_matrix av g
  | Fo.Implies (f, g) -> (not (eval_matrix av f)) || eval_matrix av g
  | Fo.Exists _ | Fo.Forall _ -> unsupported "quantifier left inside a matrix"

let var_name = function
  | Fo.Var v -> v
  | Fo.Const _ -> unsupported "constants are not allowed in symmetric WFOMC"

(* ---------- the cell algorithm for ∀x∀y χ(x,y) ---------- *)

module Smap = Map.Make (String)

(* A cell assigns a truth value to every unary atom U(x) and every diagonal
   binary atom B(x,x). *)
type cell = { u : bool Smap.t; d : bool Smap.t; weight : float }

let bool_vectors n =
  let rec go k = if k = 0 then [ [] ] else List.concat_map (fun v -> [ true :: v; false :: v ]) (go (k - 1)) in
  go n

let enumerate_cells preds matrix =
  let unaries = List.filter (fun p -> p.arity = 1) preds in
  let binaries = List.filter (fun p -> p.arity = 2) preds in
  let mk uvec dvec =
    let u = List.fold_left2 (fun m p b -> Smap.add p.pname b m) Smap.empty unaries uvec in
    let d = List.fold_left2 (fun m p b -> Smap.add p.pname b m) Smap.empty binaries dvec in
    (* χ(a,a): every atom resolves through the diagonal *)
    let av rel args =
      ignore args;
      match Smap.find_opt rel u with
      | Some b -> b
      | None -> (
          match Smap.find_opt rel d with
          | Some b -> b
          | None -> unsupported "unknown predicate %s in matrix" rel)
    in
    let ok = eval_matrix av matrix in
    let weight =
      if not ok then 0.0
      else
        List.fold_left2
          (fun acc p b -> acc *. (if b then p.wt else p.wf))
          (List.fold_left2
             (fun acc p b -> acc *. (if b then p.wt else p.wf))
             1.0 unaries uvec)
          binaries dvec
    in
    { u; d; weight }
  in
  List.concat_map
    (fun uvec -> List.map (fun dvec -> mk uvec dvec) (bool_vectors (List.length binaries)))
    (bool_vectors (List.length unaries))

(* Weighted count of the binary-atom assignments between two distinct
   elements a (cell ca) and b (cell cb) satisfying χ(a,b) ∧ χ(b,a). *)
let pair_weight binaries matrix ca cb =
  let rec go assigned rest =
    match rest with
    | [] ->
        (* assigned : (name, (a→b value, b→a value)) list *)
        let lookup name = List.assoc name assigned in
        let av_ab rel (args : Fo.term list) =
          match args with
          | [ t ] -> (
              match var_name t with
              | "x" -> Smap.find rel ca.u
              | "y" -> Smap.find rel cb.u
              | v -> unsupported "unexpected variable %s" v)
          | [ t1; t2 ] -> (
              match var_name t1, var_name t2 with
              | "x", "x" -> Smap.find rel ca.d
              | "y", "y" -> Smap.find rel cb.d
              | "x", "y" -> fst (lookup rel)
              | "y", "x" -> snd (lookup rel)
              | v, w -> unsupported "unexpected variables %s,%s" v w)
          | _ -> unsupported "arity > 2 predicate %s" rel
        in
        let av_ba rel (args : Fo.term list) =
          match args with
          | [ t ] -> (
              match var_name t with
              | "x" -> Smap.find rel cb.u
              | "y" -> Smap.find rel ca.u
              | v -> unsupported "unexpected variable %s" v)
          | [ t1; t2 ] -> (
              match var_name t1, var_name t2 with
              | "x", "x" -> Smap.find rel cb.d
              | "y", "y" -> Smap.find rel ca.d
              | "x", "y" -> snd (lookup rel)
              | "y", "x" -> fst (lookup rel)
              | v, w -> unsupported "unexpected variables %s,%s" v w)
          | _ -> unsupported "arity > 2 predicate %s" rel
        in
        if eval_matrix av_ab matrix && eval_matrix av_ba matrix then
          List.fold_left
            (fun acc (name, (ab, ba)) ->
              let p = List.find (fun p -> String.equal p.pname name) binaries in
              acc *. (if ab then p.wt else p.wf) *. if ba then p.wt else p.wf)
            1.0 assigned
        else 0.0
    | p :: rest ->
        List.fold_left
          (fun acc (ab, ba) -> acc +. go ((p.pname, (ab, ba)) :: assigned) rest)
          0.0
          [ (true, true); (true, false); (false, true); (false, false) ]
  in
  go [] binaries

let factorials = Array.make 171 1.0

let () =
  for i = 1 to 170 do
    factorials.(i) <- factorials.(i - 1) *. float_of_int i
  done

let choose n k = factorials.(n) /. (factorials.(k) *. factorials.(n - k))

let cell_algorithm ?(stats = fresh_stats ()) ?(guard = Guard.unlimited) ~max_terms ~n
    preds matrix =
  if n > 170 then unsupported "domain size %d too large for float factorials" n;
  stats.cell_calls <- stats.cell_calls + 1;
  let binaries = List.filter (fun p -> p.arity = 2) preds in
  let cells = enumerate_cells preds matrix in
  stats.cells <- stats.cells + List.length cells;
  let live = List.filter (fun c -> c.weight <> 0.0) cells in
  stats.live_cells <- stats.live_cells + List.length live;
  let live = Array.of_list live in
  let k = Array.length live in
  if k = 0 then 0.0
  else begin
    let r = Array.make_matrix k k 0.0 in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        let w = pair_weight binaries matrix live.(i) live.(j) in
        r.(i).(j) <- w;
        r.(j).(i) <- w
      done
    done;
    let powi = Closed_forms.powi in
    (* Sum over compositions n_0 + ... + n_{k-1} = n; [acc] carries the
       multinomial, the cell weights, and all pair factors between already
       assigned cells. *)
    let total = ref 0.0 in
    let counts = Array.make k 0 in
    let rec go i remaining acc =
      if acc = 0.0 then ()
      else if i = k - 1 then begin
        let ni = remaining in
        counts.(i) <- ni;
        stats.compositions <- stats.compositions + 1;
        Guard.poll guard ~site:"wfomc.compose";
        if stats.compositions > max_terms then
          unsupported "composition budget exceeded (%d terms)" max_terms;
        let acc = acc *. powi live.(i).weight ni *. powi r.(i).(i) (ni * (ni - 1) / 2) in
        let acc =
          let cross = ref acc in
          for j = 0 to i - 1 do
            cross := !cross *. powi r.(j).(i) (counts.(j) * ni)
          done;
          !cross
        in
        total := !total +. acc
      end
      else
        for ni = 0 to remaining do
          counts.(i) <- ni;
          let acc' =
            acc *. choose remaining ni *. powi live.(i).weight ni
            *. powi r.(i).(i) (ni * (ni - 1) / 2)
          in
          let acc' =
            let cross = ref acc' in
            for j = 0 to i - 1 do
              cross := !cross *. powi r.(j).(i) (counts.(j) * ni)
            done;
            !cross
          in
          go (i + 1) (remaining - ni) acc'
        done
    in
    go 0 n 1.0;
    !total
  end

(* ---------- sentence normalisation ---------- *)

(* Simultaneous renaming of free variables in a quantifier-free matrix. *)
let rename_matrix mapping matrix =
  let on_term = function
    | Fo.Var v -> (
        match List.assoc_opt v mapping with Some v' -> Fo.Var v' | None -> Fo.Var v)
    | t -> t
  in
  let rec go = function
    | (Fo.True | Fo.False) as f -> f
    | Fo.Atom a -> Fo.Atom { a with Fo.args = List.map on_term a.Fo.args }
    | Fo.Not f -> Fo.Not (go f)
    | Fo.And (f, g) -> Fo.And (go f, go g)
    | Fo.Or (f, g) -> Fo.Or (go f, go g)
    | Fo.Implies (f, g) -> Fo.Implies (go f, go g)
    | Fo.Exists _ | Fo.Forall _ -> unsupported "nested quantifier in matrix"
  in
  go matrix

type block =
  | B_universal of Fo.t  (** matrix over x (and possibly y), fully ∀ *)
  | B_forall_exists of Fo.t  (** ψ(x,y) of a ∀x∃y ψ block *)
  | B_existential of Fo.t  (** the original ∃-prefixed sentence *)

let classify_block conjunct =
  let prefix, matrix = Fo.prenex conjunct in
  match prefix with
  | [] -> B_universal matrix
  | [ (Fo.Q_forall, v) ] -> B_universal (rename_matrix [ (v, "x") ] matrix)
  | [ (Fo.Q_forall, v1); (Fo.Q_forall, v2) ] ->
      B_universal (rename_matrix [ (v1, "#x"); (v2, "#y") ] matrix |> rename_matrix [ ("#x", "x"); ("#y", "y") ])
  | [ (Fo.Q_forall, v1); (Fo.Q_exists, v2) ] ->
      B_forall_exists
        (rename_matrix [ (v1, "#x"); (v2, "#y") ] matrix |> rename_matrix [ ("#x", "x"); ("#y", "y") ])
  | (Fo.Q_exists, _) :: _ -> B_existential conjunct
  | _ -> unsupported "more than two quantified variables in: %s" (Fo.to_string conjunct)

let rec flatten_conjuncts = function
  | Fo.And (f, g) -> flatten_conjuncts f @ flatten_conjuncts g
  | f -> [ f ]

let nonempty_and = function [] -> Fo.True | f :: fs -> List.fold_left (fun a b -> Fo.And (a, b)) f fs

let probability ?(stats = fresh_stats ()) ?(guard = Guard.unlimited)
    ?(max_terms = 20_000_000) db q =
  let base_preds =
    List.map
      (fun (name, arity, p) -> { pname = name; arity; wt = p; wf = 1.0 -. p })
      db.Sym_db.rels
  in
  let existing = List.map (fun p -> p.pname) base_preds in
  let fresh_marker =
    let counter = ref 0 in
    fun () ->
      incr counter;
      let rec pick c = if List.mem c existing then pick (c ^ "'") else c in
      pick (Printf.sprintf "SK%d" !counter)
  in
  (* Evaluate a conjunction of blocks none of which is ∃-prefixed. *)
  let eval_universal_conj blocks =
    let parts, marker_preds =
      List.fold_left
        (fun (parts, markers) b ->
          match b with
          | B_universal m -> (m :: parts, markers)
          | B_forall_exists psi ->
              let name = fresh_marker () in
              let clause = Fo.Or (Fo.Not (Fo.atom name [ Fo.Var "x" ]), Fo.Not psi) in
              (clause :: parts, { pname = name; arity = 1; wt = -1.0; wf = 1.0 } :: markers)
          | B_existential _ -> assert false)
        ([], []) blocks
    in
    let matrix = Fo.simplify (nonempty_and (List.rev parts)) in
    cell_algorithm ~stats ~guard ~max_terms ~n:db.Sym_db.n (base_preds @ marker_preds)
      matrix
  in
  let rec prob_sentence q =
    let q = Fo.simplify (Fo.nnf (Fo.elim_implies q)) in
    match q with
    | Fo.True -> 1.0
    | Fo.False -> 0.0
    | Fo.Or _ -> 1.0 -. prob_sentence (Fo.Not q)
    | _ -> prob_conjunction (flatten_conjuncts q)
  and prob_conjunction conjuncts =
    let blocks = List.map classify_block conjuncts in
    let universal, existential =
      List.partition (function B_existential _ -> false | _ -> true) blocks
    in
    match existential with
    | [] -> eval_universal_conj universal
    | _ ->
        (* p(∧A ∧ ∧_e e) with e = ¬u_e:
           Σ_{S ⊆ E} (-1)^{|S|} p(∧A ∧ ∧_{e∈S} u_e) *)
        let negated =
          List.map
            (function
              | B_existential e -> (
                  match classify_block (Fo.simplify (Fo.nnf (Fo.Not e))) with
                  | B_existential _ ->
                      unsupported "negation of %s still existential" (Fo.to_string e)
                  | b -> b)
              | _ -> assert false)
            existential
        in
        let rec subsets = function
          | [] -> [ (0, []) ]
          | b :: rest ->
              let subs = subsets rest in
              subs @ List.map (fun (k, s) -> (k + 1, b :: s)) subs
        in
        List.fold_left
          (fun acc (k, s) ->
            let sign = if k mod 2 = 0 then 1.0 else -1.0 in
            acc +. (sign *. eval_universal_conj (universal @ s)))
          0.0 (subsets negated)
  in
  prob_sentence q
