(** Symmetric weighted first-order model counting for FO² (Thm. 8.1).

    For every FO² sentence, PQE over symmetric databases is in polynomial
    time in the domain size (Van den Broeck et al. [24], quoted as
    Thm. 8.1). This module implements the classical cell-decomposition
    algorithm:

    - a {e 1-type} (cell) is a complete assignment to all unary atoms
      [U(x)] and diagonal binary atoms [B(x,x)];
    - a universally quantified sentence [∀x∀y ψ(x,y)] is evaluated by
      summing, over all partitions of the [n] domain elements into cells,
      the multinomial coefficient times per-cell weights times per-pair
      weights [r_ij] (the weighted count of the binary-atom assignments
      between two elements that satisfy [ψ] in both directions);
    - an existential conjunct [∀x∃y ψ(x,y)] is removed by a {e Skolem
      marker}: a fresh unary predicate [P] with weights [w(P) = -1],
      [w̄(P) = +1] and the hard clause [∀x∀y (¬P(x) ∨ ¬ψ(x,y))]. Summing
      the marker out cancels exactly the worlds containing an element with
      no [ψ]-witness — the negative-weight Skolemization of [24];
    - sentences with a leading ∃ (or disjunctions of blocks) reduce to the
      above by complementation and inclusion–exclusion.

    The evaluation runs in time [O(n^(K-1))] for [K] live cells —
    polynomial in the domain size for each fixed sentence, exactly the
    claim of Thm. 8.1. Supported input: Boolean combinations whose
    conjuncts each prenex to at most two variables. Constants and arity
    ≥ 3 are rejected with {!Unsupported} (the paper's Thm. 8.2 shows FO³
    is #P₁-hard anyway). *)

exception Unsupported of string

type stats = {
  mutable cells : int;  (** 1-types enumerated (per cell-algorithm call) *)
  mutable live_cells : int;  (** cells surviving the diagonal check *)
  mutable compositions : int;  (** partition terms summed *)
  mutable cell_calls : int;  (** cell-algorithm invocations (I/E terms) *)
}

val fresh_stats : unit -> stats

val probability :
  ?stats:stats ->
  ?guard:Probdb_guard.Guard.t ->
  ?max_terms:int ->
  Sym_db.t ->
  Probdb_logic.Fo.t ->
  float
(** [probability db q] is [p_db(q)] for a symmetric database. [max_terms]
    (default 20 million) bounds the number of partition terms before
    {!Unsupported} is raised. [guard] (default
    {!Probdb_guard.Guard.unlimited}) is polled at every composition term
    (site ["wfomc.compose"]), so a deadline or cancellation interrupts the
    partition sum with [Probdb_guard.Guard.Exhausted]. *)
