module F = Probdb_boolean.Formula
module Circuit = Probdb_kc.Circuit
module Guard = Probdb_guard.Guard
module Trace = Probdb_obs.Trace

type var_choice = Most_frequent | Fixed of int list

type config = {
  use_cache : bool;
  use_components : bool;
  independent_or : bool;
  var_choice : var_choice;
  max_decisions : int;
  max_cache_entries : int;
}

let default_config =
  { use_cache = true;
    use_components = true;
    independent_or = false;
    var_choice = Most_frequent;
    max_decisions = 50_000_000;
    max_cache_entries = 500_000 }

let obdd_config order =
  { default_config with use_components = false; var_choice = Fixed order }

let fbdd_config = { default_config with use_components = false }

exception Decision_limit of int

type stats = {
  decisions : int;
  unit_propagations : int;
  cache_hits : int;
  cache_queries : int;
  component_splits : int;
  cache_entries : int;
  cache_evictions : int;
}

let obs_counts (s : stats) : Probdb_obs.Stats.dpll_counts =
  { Probdb_obs.Stats.branches = s.decisions;
    unit_propagations = s.unit_propagations;
    cache_hits = s.cache_hits;
    cache_queries = s.cache_queries;
    component_splits = s.component_splits;
    cache_entries = s.cache_entries;
    cache_evictions = s.cache_evictions }

type result = { prob : float; circuit : Circuit.t; trace_size : int; stats : stats }

(* Hashed structural cache keys: the cache used to serialise every
   subformula into a string ([F.to_key]) — an allocation per lookup and a
   resident copy per entry. Formulas are kept normalised by their smart
   constructors, so structural equality IS semantic key equality, and
   [F.hash] discriminates without materialising anything. *)
module Fcache = Hashtbl.Make (struct
  type t = F.t

  let equal = F.equal
  let hash = F.hash
end)

module Iset = Set.Make (Int)

let rec var_set = function
  | F.True | F.False -> Iset.empty
  | F.Var v -> Iset.singleton v
  | F.Not f -> var_set f
  | F.And fs | F.Or fs ->
      List.fold_left (fun acc f -> Iset.union acc (var_set f)) Iset.empty fs

(* Partition formulas into groups sharing no variables (union-find with
   path halving and union by size — near-constant amortised [find] even on
   the star-shaped lineages that used to degenerate into O(n) parent
   chains). Groups come back ordered by their smallest member index, each
   group keeping member order, so callers see a deterministic partition. *)
let independent_groups fs =
  let fs = Array.of_list fs in
  let n = Array.length fs in
  let parent = Array.init n Fun.id in
  let size = Array.make n 1 in
  let find i =
    let i = ref i in
    while parent.(!i) <> !i do
      parent.(!i) <- parent.(parent.(!i));
      i := parent.(!i)
    done;
    !i
  in
  let union i j =
    let ri, rj = find i, find j in
    if ri <> rj then begin
      let big, small = if size.(ri) >= size.(rj) then ri, rj else rj, ri in
      parent.(small) <- big;
      size.(big) <- size.(big) + size.(small)
    end
  in
  let home = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      Iset.iter
        (fun v ->
          match Hashtbl.find_opt home v with
          | Some j -> union i j
          | None -> Hashtbl.add home v i)
        (var_set f))
    fs;
  let members = Array.make n [] in
  let first = Array.make n max_int in
  for i = n - 1 downto 0 do
    let r = find i in
    members.(r) <- fs.(i) :: members.(r);
    first.(r) <- i
  done;
  (* [members] is indexed by union-find root (arbitrary under union by
     size); order groups by their smallest member index instead. *)
  Array.to_list (Array.init n Fun.id)
  |> List.filter (fun r -> members.(r) <> [])
  |> List.sort (fun a b -> Int.compare first.(a) first.(b))
  |> List.map (fun r -> members.(r))

let most_frequent_var f =
  let freq = Hashtbl.create 32 in
  let bump v = Hashtbl.replace freq v (1 + Option.value ~default:0 (Hashtbl.find_opt freq v)) in
  let rec go = function
    | F.True | F.False -> ()
    | F.Var v -> bump v
    | F.Not f -> go f
    | F.And fs | F.Or fs -> List.iter go fs
  in
  go f;
  let best = Hashtbl.fold
      (fun v c acc ->
        match acc with
        | Some (_, c') when c' > c -> acc
        | Some (v', c') when c' = c && v' <= v -> acc
        | _ -> Some (v, c))
      freq None
  in
  match best with Some (v, _) -> v | None -> invalid_arg "most_frequent_var: no variables"

let choose_var cfg f =
  match cfg.var_choice with
  | Most_frequent -> most_frequent_var f
  | Fixed order -> (
      let vs = var_set f in
      match List.find_opt (fun v -> Iset.mem v vs) order with
      | Some v -> v
      | None -> Iset.min_elt vs)

type entry = { value : float * Circuit.t; mutable stamp : int }

let count ?(config = default_config) ?(guard = Guard.unlimited) ~prob f =
  let builder = Circuit.builder () in
  let cache : entry Fcache.t = Fcache.create 1024 in
  (* The cache is bounded: a long exact solve must not outgrow the heap
     between guard polls. The cap comes from the guard's
     ["dpll.cache_entries"] budget when one is installed, else from the
     config; overflow evicts the least-recently-stamped half in one sweep
     (O(cap log cap) amortised over at least cap/2 inserts). *)
  let cache_cap =
    match Guard.budget_limit guard "dpll.cache_entries" with
    | Some n -> max 2 n
    | None -> max 2 config.max_cache_entries
  in
  let clock = ref 0 in
  let decisions = ref 0
  and unit_propagations = ref 0
  and cache_hits = ref 0
  and cache_queries = ref 0
  and cache_evictions = ref 0
  and component_splits = ref 0 in
  let evict_half () =
    let entries = Fcache.fold (fun k e acc -> (k, e.stamp) :: acc) cache [] in
    let entries = List.sort (fun (_, a) (_, b) -> Int.compare a b) entries in
    let drop = max 1 (List.length entries / 2) in
    List.iteri (fun i (k, _) -> if i < drop then Fcache.remove cache k) entries;
    cache_evictions := !cache_evictions + drop
  in
  let rec go f =
    match f with
    | F.True ->
        incr unit_propagations;
        (1.0, Circuit.tru builder)
    | F.False ->
        incr unit_propagations;
        (0.0, Circuit.fls builder)
    | _ when not config.use_cache -> solve f
    | _ -> (
        incr cache_queries;
        incr clock;
        match Fcache.find_opt cache f with
        | Some e ->
            incr cache_hits;
            e.stamp <- !clock;
            e.value
        | None ->
            let result = solve f in
            if Fcache.length cache >= cache_cap then evict_half ();
            Fcache.replace cache f { value = result; stamp = !clock };
            result)
  and solve f =
    match f with
    | F.And fs when config.use_components -> (
        match independent_groups fs with
        | [ _ ] -> shannon f
        | groups ->
            incr component_splits;
            let parts = List.map (fun g -> go (F.conj g)) groups in
            let p = List.fold_left (fun acc (q, _) -> acc *. q) 1.0 parts in
            (p, Circuit.band builder (List.map snd parts)))
    | F.Or fs when config.independent_or -> (
        match independent_groups fs with
        | [ _ ] -> shannon f
        | groups ->
            incr component_splits;
            let parts = List.map (fun g -> go (F.disj g)) groups in
            let p = 1.0 -. List.fold_left (fun acc (q, _) -> acc *. (1.0 -. q)) 1.0 parts in
            (p, Circuit.ior builder (List.map snd parts)))
    | _ -> shannon f
  and shannon f =
    incr decisions;
    if !decisions > config.max_decisions then raise (Decision_limit config.max_decisions);
    Guard.poll guard ~site:"dpll.shannon";
    (* Sampled: one counter event per 256 decisions keeps the trace small
       while still showing search progress and cache effectiveness. *)
    if !decisions land 255 = 0 && Trace.on () then begin
      Trace.counter ~cat:"dpll" "dpll.decisions" (float_of_int !decisions);
      Trace.counter ~cat:"dpll" "dpll.cache_hits" (float_of_int !cache_hits)
    end;
    let v = choose_var config f in
    let p_lo, c_lo = go (F.condition v false f) in
    let p_hi, c_hi = go (F.condition v true f) in
    let pv = prob v in
    (((1.0 -. pv) *. p_lo) +. (pv *. p_hi), Circuit.decision builder v ~lo:c_lo ~hi:c_hi)
  in
  let p, circuit = go f in
  { prob = p;
    circuit;
    trace_size = Circuit.size circuit;
    stats =
      { decisions = !decisions;
        unit_propagations = !unit_propagations;
        cache_hits = !cache_hits;
        cache_queries = !cache_queries;
        component_splits = !component_splits;
        cache_entries = Fcache.length cache;
        cache_evictions = !cache_evictions } }

let probability ?config ?guard ~prob f = (count ?config ?guard ~prob f).prob
