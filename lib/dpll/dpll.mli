(** DPLL-style exact weighted model counting, with its trace.

    This is the grounded-inference baseline of the paper (Sec. 7, the
    mechanism behind Cachet/sharpSAT): full backtracking search on the
    Shannon expansion (Eq. (11)), a cache of previously-solved subformulas,
    and the components rule (Eq. (12)). The recorded trace is, per Huang
    and Darwiche:

    - caching + fixed variable order → an OBDD,
    - caching, free order → an FBDD,
    - caching + components → a decision-DNNF.

    The optional independent-or rule (the dual of components) leaves the
    decision-DNNF class; it is off by default and exists as an ablation. *)

type var_choice =
  | Most_frequent  (** the variable with the most AST occurrences *)
  | Fixed of int list  (** first variable of the list occurring in the formula *)

type config = {
  use_cache : bool;
  use_components : bool;
  independent_or : bool;
  var_choice : var_choice;
  max_decisions : int;  (** bail out with {!Decision_limit} beyond this *)
  max_cache_entries : int;
      (** formula-cache entry cap; on overflow the least-recently-used half
          is evicted (counted in {!stats}[.cache_evictions]). A
          ["dpll.cache_entries"] budget on the guard overrides this. *)
}

val default_config : config
(** cache + components, most-frequent variable, no independent-or, 50M
    decision cap, 500k cache entries. *)

val obdd_config : int list -> config
(** cache, no components, fixed order — the OBDD-shaped trace. *)

val fbdd_config : config
(** cache, no components, free order — the FBDD-shaped trace. *)

exception Decision_limit of int

type stats = {
  decisions : int;  (** Shannon expansions performed (branches) *)
  unit_propagations : int;
      (** subproblems that collapsed to a constant after conditioning — the
          formula-prover analogue of unit propagation *)
  cache_hits : int;
  cache_queries : int;  (** cache lookups; hit rate = hits/queries *)
  component_splits : int;
  cache_entries : int;  (** subformulas memoised and still resident at the end *)
  cache_evictions : int;  (** entries dropped to stay under the entry cap *)
}

val obs_counts : stats -> Probdb_obs.Stats.dpll_counts
(** The same counters in the shape of the observability layer's per-query
    record; used by the engine and the CLI. *)

type result = {
  prob : float;
  circuit : Probdb_kc.Circuit.t;  (** the trace *)
  trace_size : int;  (** distinct internal nodes of the trace *)
  stats : stats;
}

val count :
  ?config:config ->
  ?guard:Probdb_guard.Guard.t ->
  prob:(int -> float) ->
  Probdb_boolean.Formula.t ->
  result
(** [guard] (default {!Probdb_guard.Guard.unlimited}) is polled at every
    Shannon expansion (site ["dpll.shannon"]), so a deadline, cancellation
    or injected fault interrupts the search with
    [Probdb_guard.Guard.Exhausted]. The solver's own [max_decisions] cap
    still raises {!Decision_limit}. *)

val probability :
  ?config:config ->
  ?guard:Probdb_guard.Guard.t ->
  prob:(int -> float) ->
  Probdb_boolean.Formula.t ->
  float
(** Just the probability of {!count}. *)
