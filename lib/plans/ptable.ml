module Core = Probdb_core
module Cq = Probdb_logic.Cq
module Fo = Probdb_logic.Fo

type t = { vars : string list; rows : (Core.Tuple.t * float) list }

let scan db (atom : Cq.atom) =
  if atom.Cq.comp then invalid_arg "Ptable.scan: complemented atom";
  let vars =
    List.fold_left
      (fun acc t ->
        match t with
        | Fo.Var x when not (List.mem x acc) -> acc @ [ x ]
        | _ -> acc)
      [] atom.Cq.args
  in
  let matches tuple =
    (* constants must match; repeated variables must carry equal values *)
    let binding = Hashtbl.create 4 in
    List.for_all2
      (fun arg v ->
        match arg with
        | Fo.Const c -> Core.Value.equal c v
        | Fo.Var x -> (
            match Hashtbl.find_opt binding x with
            | Some v' -> Core.Value.equal v v'
            | None ->
                Hashtbl.add binding x v;
                true))
      atom.Cq.args tuple
  in
  let projection tuple =
    let lookup x =
      let rec find args vals =
        match args, vals with
        | Fo.Var y :: _, v :: _ when String.equal x y -> v
        | _ :: args, _ :: vals -> find args vals
        | _ -> assert false
      in
      find atom.Cq.args tuple
    in
    List.map lookup vars
  in
  let rows =
    match Core.Tid.relation_opt db atom.Cq.rel with
    | None -> []
    | Some rel ->
        Core.Relation.fold
          (fun tuple p acc -> if matches tuple then (projection tuple, p) :: acc else acc)
          rel []
        |> List.rev
  in
  { vars; rows }

let index_of vars x =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Ptable: unknown column %s" x)
    | y :: rest -> if String.equal x y then i else go (i + 1) rest
  in
  go 0 vars

let join t1 t2 =
  let shared = List.filter (fun x -> List.mem x t1.vars) t2.vars in
  let extra2 = List.filter (fun x -> not (List.mem x shared)) t2.vars in
  (* column positions resolved once, outside the per-row loops *)
  let shared_idx1 = List.map (index_of t1.vars) shared in
  let shared_idx2 = List.map (index_of t2.vars) shared in
  let extra_idx2 = List.map (index_of t2.vars) extra2 in
  let pick idxs tuple =
    let arr = Array.of_list tuple in
    List.map (Array.get arr) idxs
  in
  (* hash the right side on the shared key *)
  let tbl = Hashtbl.create (List.length t2.rows) in
  List.iter
    (fun (tuple, p) -> Hashtbl.add tbl (pick shared_idx2 tuple) (pick extra_idx2 tuple, p))
    t2.rows;
  let rows =
    List.concat_map
      (fun (tuple1, p1) ->
        Hashtbl.find_all tbl (pick shared_idx1 tuple1)
        |> List.map (fun (ext, p2) -> (tuple1 @ ext, p1 *. p2)))
      t1.rows
  in
  { vars = t1.vars @ extra2; rows }

let combine p q = 1.0 -. ((1.0 -. p) *. (1.0 -. q))

let project keep t =
  let idxs = List.map (index_of t.vars) keep in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (tuple, p) ->
      let k = List.map (List.nth tuple) idxs in
      let p' =
        match Hashtbl.find_opt groups k with Some q -> combine p q | None -> p
      in
      Hashtbl.replace groups k p')
    t.rows;
  let rows = Hashtbl.fold (fun k p acc -> (k, p) :: acc) groups [] in
  { vars = keep; rows = List.sort (fun (a, _) (b, _) -> Core.Tuple.compare a b) rows }

let boolean_prob t =
  match t.vars, t.rows with
  | [], [ ([], p) ] -> p
  | [], [] -> 0.0
  | [], _ -> invalid_arg "Ptable.boolean_prob: multiple rows in boolean table"
  | _ -> invalid_arg "Ptable.boolean_prob: table has columns"

let pp ppf t =
  Format.fprintf ppf "@[<v2>[%s]:" (String.concat ", " t.vars);
  List.iter
    (fun (tuple, p) -> Format.fprintf ppf "@ %a : %g" Core.Tuple.pp tuple p)
    t.rows;
  Format.fprintf ppf "@]"
