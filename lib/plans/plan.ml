module Core = Probdb_core
module Cq = Probdb_logic.Cq
module Fo = Probdb_logic.Fo
module Guard = Probdb_guard.Guard
module Exec = Probdb_exec.Exec
module Storage = Probdb_storage.Storage
module Sset = Set.Make (String)

type t =
  | Scan of Cq.atom
  | Join of t * t
  | Project of string list * t

let atom_vars (a : Cq.atom) =
  List.filter_map (function Fo.Var x -> Some x | Fo.Const _ -> None) a.Cq.args
  |> List.sort_uniq String.compare

let rec out_vars = function
  | Scan a -> atom_vars a
  | Join (p1, p2) ->
      List.sort_uniq String.compare (out_vars p1 @ out_vars p2)
  | Project (keep, _) -> List.sort_uniq String.compare keep

let rec atoms = function
  | Scan a -> [ a ]
  | Join (p1, p2) -> atoms p1 @ atoms p2
  | Project (_, p) -> atoms p

(* ---------- evaluation ----------

   The hot path is columnar: one [Dict] per evaluation interns every value
   once, and the [Exec] operators run over int-array columns. The
   list-based [Ptable] operators remain as the executable reference the
   columnar path is property-tested against. Each operator's output
   cardinality is charged against the guard's ["plan.rows"] budget,
   bounding intermediate-relation blow-up exactly as before. *)

let eval_exec ?(guard = Guard.unlimited) ?counters db plan =
  let observe rel =
    Guard.charge guard ~site:"plan.eval" "plan.rows" (Exec.nrows rel);
    rel
  in
  match Storage.backing db with
  | Some st ->
      (* Packed TID: scan the container's mapped columns in place. The
         container's dictionary already holds every value with its packed
         id, so it is shared read-only across evaluations (and serving
         workers) — query constants resolve through [find_opt], nothing
         interns. Ids coincide with what loading the CSV would intern, so
         answers are bit-identical to the heap path. *)
      let dict = Storage.dict st in
      let lookup v = Core.Dict.find_opt dict v in
      let rec go = function
        | Scan a ->
            observe
              (match Storage.view st a.Cq.rel with
              | Some v ->
                  Exec.scan_cols ~guard ?counters ~lookup ~cols:v.Storage.vcols
                    ~probs:v.Storage.vprobs a
              | None -> Exec.empty_scan ?counters a)
        | Join (p1, p2) -> observe (Exec.join ~guard ?counters (go p1) (go p2))
        | Project (keep, p) -> observe (Exec.project ~guard ?counters keep (go p))
      in
      (go plan, dict)
  | None ->
      (* size hint: distinct values are bounded by the support, and starting
         near the final size avoids rehashing the id table log(n) times *)
      let dict =
        Core.Dict.create ~size_hint:(2 * Core.Tid.support_size db + 64) ()
      in
      let rec go = function
        | Scan a -> observe (Exec.scan ~guard ?counters dict db a)
        | Join (p1, p2) -> observe (Exec.join ~guard ?counters (go p1) (go p2))
        | Project (keep, p) -> observe (Exec.project ~guard ?counters keep (go p))
      in
      (go plan, dict)

let ptable_of_rel dict rel =
  { Ptable.vars = Array.to_list rel.Exec.vars;
    rows =
      List.sort
        (fun (a, _) (b, _) -> Core.Tuple.compare a b)
        (Exec.to_rows dict rel) }

let eval ?guard db plan =
  let rel, dict = eval_exec ?guard db plan in
  ptable_of_rel dict rel

let eval_reference ?(guard = Guard.unlimited) db plan =
  let observe t =
    Guard.charge guard ~site:"plan.eval" "plan.rows" (List.length t.Ptable.rows);
    t
  in
  let rec go = function
    | Scan a -> observe (Ptable.scan db a)
    | Join (p1, p2) -> observe (Ptable.join (go p1) (go p2))
    | Project (keep, p) -> observe (Ptable.project keep (go p))
  in
  go plan

let boolean_prob ?guard db plan =
  Exec.boolean_prob (fst (eval_exec ?guard db plan))

let boolean_prob_reference ?guard db plan =
  Ptable.boolean_prob (eval_reference ?guard db plan)

let eval_counting ?guard db plan =
  let counters = Exec.fresh_counters () in
  let rel, dict = eval_exec ?guard ~counters db plan in
  ( ptable_of_rel dict rel,
    { Probdb_obs.Stats.operators = counters.Exec.operators;
      peak_rows = counters.Exec.peak_rows },
    counters.Exec.rows_processed )

let boolean_prob_counting ?guard db plan =
  let counters = Exec.fresh_counters () in
  let rel, _dict = eval_exec ?guard ~counters db plan in
  ( Exec.boolean_prob rel,
    { Probdb_obs.Stats.operators = counters.Exec.operators;
      peak_rows = counters.Exec.peak_rows },
    counters.Exec.rows_processed )

let is_safe plan =
  let rec go = function
    | Scan _ -> true
    | Join (p1, p2) -> go p1 && go p2
    | Project (keep, p) ->
        let keep = Sset.of_list keep in
        let removed = List.filter (fun x -> not (Sset.mem x keep)) (out_vars p) in
        let sub_atoms = atoms p in
        List.for_all
          (fun y -> List.for_all (fun a -> List.mem y (atom_vars a)) sub_atoms)
          removed
        && go p
  in
  go plan

let check_plain_cq cq =
  if not (Cq.is_self_join_free cq) then invalid_arg "Plan: query has self-joins";
  if List.exists (fun (a : Cq.atom) -> a.Cq.comp) cq then
    invalid_arg "Plan: complemented atoms are not supported"

(* Group atoms by connectivity through variables outside [head]. *)
let group_atoms head atoms_list =
  let atoms_arr = Array.of_list atoms_list in
  let n = Array.length atoms_arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri, rj = find i, find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let home = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
      List.iter
        (fun x ->
          if not (Sset.mem x head) then
            match Hashtbl.find_opt home x with
            | Some j -> union i j
            | None -> Hashtbl.add home x i)
        (atom_vars a))
    atoms_arr;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
      let r = find i in
      Hashtbl.replace groups r (a :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    atoms_arr;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []

let project_to keep plan =
  let keep = List.sort_uniq String.compare keep in
  if List.equal String.equal keep (out_vars plan) then plan else Project (keep, plan)

let safe_plan cq =
  check_plain_cq cq;
  (* Dalvi–Suciu safe-plan construction: split into independent groups,
     otherwise project out a root variable present in all atoms. *)
  let rec build atom_list head =
    let head_list = Sset.elements head in
    match atom_list with
    | [] -> None
    | [ a ] -> Some (project_to head_list (Scan a))
    | _ -> (
        match group_atoms head atom_list with
        | [] -> None
        | [ _single ] -> (
            let in_all x =
              (not (Sset.mem x head))
              && List.for_all (fun a -> List.mem x (atom_vars a)) atom_list
            in
            let all_vars =
              List.concat_map atom_vars atom_list |> List.sort_uniq String.compare
            in
            match List.find_opt in_all all_vars with
            | None -> None
            | Some x ->
                Option.map
                  (fun sub -> project_to head_list sub)
                  (build atom_list (Sset.add x head)))
        | groups ->
            let subs =
              List.map
                (fun g ->
                  let gvars =
                    Sset.of_list (List.concat_map atom_vars g)
                  in
                  build g (Sset.inter head gvars))
                groups
            in
            if List.exists Option.is_none subs then None
            else
              let plans = List.map Option.get subs in
              let joined =
                match plans with
                | [] -> assert false
                | p :: rest -> List.fold_left (fun acc q -> Join (acc, q)) p rest
              in
              Some (project_to head_list joined))
  in
  match cq with
  | [] -> None
  | _ -> build cq Sset.empty

let rec plan_key = function
  | Scan a -> Cq.to_string [ a ]
  | Join (p1, p2) ->
      let k1 = plan_key p1 and k2 = plan_key p2 in
      if String.compare k1 k2 <= 0 then Printf.sprintf "J(%s,%s)" k1 k2
      else Printf.sprintf "J(%s,%s)" k2 k1
  | Project (keep, p) -> Printf.sprintf "P[%s](%s)" (String.concat "," keep) (plan_key p)

(* Unordered bipartitions of a list into two non-empty parts. *)
let bipartitions = function
  | [] | [ _ ] -> []
  | x :: rest ->
      (* x always goes left to avoid mirror duplicates *)
      let rec go = function
        | [] -> [ ([], []) ]
        | y :: ys ->
            let subs = go ys in
            List.concat_map (fun (l, r) -> [ (y :: l, r); (l, y :: r) ]) subs
      in
      go rest
      |> List.filter_map (fun (l, r) -> if r = [] then None else Some (x :: l, r))

let enumerate ?(max_plans = 5000) cq =
  check_plain_cq cq;
  let count = ref 0 in
  let rec plans atom_list out =
    if !count > max_plans then []
    else
      match atom_list with
      | [] -> []
      | [ a ] ->
          incr count;
          [ project_to out (Scan a) ]
      | _ ->
          List.concat_map
            (fun (left, right) ->
              let vl = List.concat_map atom_vars left |> List.sort_uniq String.compare in
              let vr = List.concat_map atom_vars right |> List.sort_uniq String.compare in
              let need side_vars other_vars =
                List.filter
                  (fun x -> List.mem x other_vars || List.mem x out)
                  side_vars
              in
              let options side_vars other_vars =
                let eager = need side_vars other_vars in
                if List.equal String.equal eager side_vars then [ side_vars ]
                else [ eager; side_vars ]
              in
              List.concat_map
                (fun out_l ->
                  List.concat_map
                    (fun out_r ->
                      List.concat_map
                        (fun pl ->
                          List.filter_map
                            (fun pr ->
                              incr count;
                              if !count > max_plans then None
                              else Some (project_to out (Join (pl, pr))))
                            (plans right out_r))
                        (plans left out_l))
                    (options vr vl))
                (options vl vr))
            (bipartitions atom_list)
  in
  let all = plans cq [] in
  (* dedupe structurally-equivalent plans *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let k = plan_key p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    all

let rec pp ppf = function
  | Scan a -> Format.fprintf ppf "%s" (Cq.to_string [ a ])
  | Join (p1, p2) -> Format.fprintf ppf "(%a ⋈ %a)" pp p1 pp p2
  | Project (keep, p) ->
      Format.fprintf ppf "γ[%s](%a)" (String.concat "," keep) pp p

let to_string p = Format.asprintf "%a" pp p
