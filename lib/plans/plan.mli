(** Extensional query plans for self-join-free Boolean CQs.

    Sec. 6 of the paper: any project-join plan, with its operators modified
    to combine probabilities, computes *some* number; a {e safe} plan
    computes the true probability, and every plan computes an upper bound
    (Thm. 6.1). This module provides the plan AST, evaluation, the
    structural safety test, safe-plan construction for hierarchical queries
    (Dalvi–Suciu 2004), and exhaustive plan enumeration for the
    min-over-plans bound. *)

type t =
  | Scan of Probdb_logic.Cq.atom
  | Join of t * t
  | Project of string list * t
      (** group-by the listed variables, ⊕-combining the rest away *)

val out_vars : t -> string list
(** Output columns of the plan. *)

val atoms : t -> Probdb_logic.Cq.atom list

val eval : ?guard:Probdb_guard.Guard.t -> Probdb_core.Tid.t -> t -> Ptable.t
(** Evaluates the plan on the columnar executor ([Probdb_exec.Exec]) —
    values interned once, operators over int-array columns — and
    materialises the result as a [Ptable] with rows in tuple order.
    [guard] (default {!Probdb_guard.Guard.unlimited}) is charged
    ["plan.rows"] work units per operator output row (site ["plan.eval"]),
    so a cardinality budget or deadline interrupts evaluation with
    [Probdb_guard.Guard.Exhausted]. *)

val eval_exec :
  ?guard:Probdb_guard.Guard.t ->
  ?counters:Probdb_exec.Exec.counters ->
  Probdb_core.Tid.t ->
  t ->
  Probdb_exec.Exec.rel * Probdb_core.Dict.t
(** The columnar evaluation itself, without the boxed materialisation:
    the result relation plus the dictionary its ids live in. This is what
    {!eval}, {!boolean_prob} and the counting variants run on. *)

val eval_reference :
  ?guard:Probdb_guard.Guard.t -> Probdb_core.Tid.t -> t -> Ptable.t
(** The list-based reference evaluator (pre-columnar semantics), kept as
    the oracle the columnar path is property-tested against. Row order is
    operator-dependent, unlike {!eval}'s sorted output. *)

val boolean_prob : ?guard:Probdb_guard.Guard.t -> Probdb_core.Tid.t -> t -> float
(** Evaluates a plan whose output has no columns (columnar). *)

val boolean_prob_reference :
  ?guard:Probdb_guard.Guard.t -> Probdb_core.Tid.t -> t -> float
(** {!boolean_prob} on the {!eval_reference} path. *)

val eval_counting :
  ?guard:Probdb_guard.Guard.t ->
  Probdb_core.Tid.t ->
  t ->
  Ptable.t * Probdb_obs.Stats.plan_counts * int
(** Like {!eval}, additionally reporting the number of operators evaluated,
    the peak intermediate-relation cardinality — the space measure the
    oblivious-bounds experiments (Thm. 6.1) track per plan — and the total
    input rows streamed through operators ([Stats.rows_processed]). *)

val boolean_prob_counting :
  ?guard:Probdb_guard.Guard.t ->
  Probdb_core.Tid.t ->
  t ->
  float * Probdb_obs.Stats.plan_counts * int
(** {!boolean_prob} with the same operator/cardinality/row counts. *)

val is_safe : t -> bool
(** The structural criterion of [32] for self-join-free plans: every
    [Project] that removes a variable [y] is an independent project, i.e.
    [y] occurs in every atom under that node. Safe plans return the exact
    query probability on every TID. *)

val safe_plan : Probdb_logic.Cq.t -> t option
(** A safe plan for a Boolean self-join-free CQ; exists iff the query is
    hierarchical (Thm. 4.3 / Sec. 6). Raises [Invalid_argument] on
    self-joins or complemented atoms. *)

val enumerate : ?max_plans:int -> Probdb_logic.Cq.t -> t list
(** All project-join plans for the Boolean query (join trees, with eager or
    lazy projection at each child), deduplicated, capped at [max_plans]
    (default 5000). Every returned plan has no output columns. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
