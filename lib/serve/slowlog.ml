(* Structured slow-query log: one NDJSON record per request whose
   latency met the threshold, appended to a file (or stderr) under a
   mutex so concurrent workers never interleave partial lines. A
   threshold of 0 logs every request — the firehose mode the request-id
   propagation tests and `probdb top` demos rely on. *)

module Json = Probdb_obs.Json

type sink = Fd of Unix.file_descr * bool (* close on [close]? *)

type t = {
  threshold_s : float;
  sink : sink;
  lock : Mutex.t;
  logged : int Atomic.t;
}

let create ?path ~threshold_ms () =
  if not (threshold_ms >= 0.0) then
    invalid_arg "Slowlog.create: threshold_ms must be >= 0";
  let sink =
    match path with
    | None -> Fd (Unix.stderr, false)
    | Some p ->
        Fd
          ( Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644,
            true )
  in
  { threshold_s = threshold_ms /. 1e3;
    sink;
    lock = Mutex.create ();
    logged = Atomic.make 0 }

let threshold_s t = t.threshold_s

let should_log t ~latency_s = latency_s >= t.threshold_s

(* A single [write] per record keeps lines atomic for typical record
   sizes even when the sink is shared stderr. *)
let log t json =
  let line = Json.to_string json ^ "\n" in
  let buf = Bytes.unsafe_of_string line in
  let (Fd (fd, _)) = t.sink in
  Mutex.protect t.lock (fun () ->
      let len = Bytes.length buf in
      let pos = ref 0 in
      while !pos < len do
        match Unix.write fd buf !pos (len - !pos) with
        | n -> pos := !pos + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done);
  Atomic.incr t.logged

let logged t = Atomic.get t.logged

let close t =
  match t.sink with
  | Fd (fd, true) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | Fd (_, false) -> ()
