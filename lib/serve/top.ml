(* `probdb top HOST:PORT`: a refreshing terminal dashboard over the
   server's `stats` op. Rendering is a pure function of the stats
   snapshot plus a short qps history (so it is unit-testable without a
   terminal); [run] owns the poll loop, the client and the ANSI clears. *)

module Json = Probdb_obs.Json

(* eight-level block sparkline; values are scaled against the series max *)
let spark_levels = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  let vmax = List.fold_left Float.max 0.0 values in
  values
  |> List.map (fun v ->
         if vmax <= 0.0 then spark_levels.(0)
         else
           let i =
             int_of_float
               (Float.round (v /. vmax *. float_of_int (Array.length spark_levels - 1)))
           in
           spark_levels.(max 0 (min (Array.length spark_levels - 1) i)))
  |> String.concat ""

(* JSON drill helpers tolerant of Null/missing blocks: the dashboard must
   render something sensible against any server version. *)
let member path j =
  List.fold_left
    (fun j name -> Option.bind j (Json.member name))
    (Some j) path

let num path j =
  match member path j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let fnum ?(digits = 1) path j =
  match num path j with
  | Some f -> Printf.sprintf "%.*f" digits f
  | None -> "-"

let inum path j =
  match num path j with Some f -> Printf.sprintf "%.0f" f | None -> "-"

let ms path j =
  match num path j with
  | Some s -> Printf.sprintf "%.1fms" (s *. 1e3)
  | None -> "-"

let pct path j =
  match num path j with
  | Some r -> Printf.sprintf "%.1f%%" (r *. 100.0)
  | None -> "-"

let strategy_rows j =
  match member [ "window"; "60s"; "strategies" ] j with
  | Some (Json.Obj kvs) ->
      kvs
      |> List.filter_map (fun (name, v) ->
             match v with Json.Int n -> Some (name, n) | _ -> None)
      |> List.sort (fun (_, a) (_, b) -> compare b a)
  | _ -> []

let render ~addr ~history stats =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "probdb top — %s — uptime %ss" addr (inum [ "uptime_s" ] stats);
  line "";
  line "  qps  %s  %s (1m)" (sparkline history)
    (fnum ~digits:1 [ "window"; "60s"; "qps" ] stats);
  line "  latency (1m)   p50 %s   p90 %s   p99 %s"
    (ms [ "window"; "60s"; "p50_s" ] stats)
    (ms [ "window"; "60s"; "p90_s" ] stats)
    (ms [ "window"; "60s"; "p99_s" ] stats);
  line "  rates  (1m)    err %s   shed %s   degraded %s   cache-hit %s"
    (pct [ "window"; "60s"; "error_rate" ] stats)
    (pct [ "window"; "60s"; "shed_rate" ] stats)
    (pct [ "window"; "60s"; "degraded_rate" ] stats)
    (pct [ "window"; "60s"; "cache_hit_rate" ] stats);
  (match
     ( num [ "window"; "60s"; "slo"; "p99_burn_rate" ] stats,
       num [ "window"; "60s"; "slo"; "availability_burn_rate" ] stats )
   with
  | None, None -> ()
  | p99, avail ->
      let show = function
        | Some b -> Printf.sprintf "%.2fx" b
        | None -> "-"
      in
      line "  slo burn (1m)  p99 %s   availability %s" (show p99) (show avail));
  line "";
  line "  queue %s/%s (degrade above %s)   in-flight %s   workers %s"
    (inum [ "queue_depth" ] stats)
    (inum [ "queue_capacity" ] stats)
    (inum [ "degrade_above" ] stats)
    (inum [ "in_flight" ] stats)
    (inum [ "workers" ] stats);
  line
    "  totals  requests %s   ok %s   error %s   shed %s   degraded %s   \
     restarts %s"
    (inum [ "requests" ] stats)
    (inum [ "eval_ok" ] stats)
    (inum [ "eval_error" ] stats)
    (inum [ "shed" ] stats)
    (inum [ "degraded_under_load" ] stats)
    (inum [ "worker_restarts" ] stats);
  (match strategy_rows stats with
  | [] -> ()
  | rows ->
      line "";
      line "  strategy wins (1m)";
      List.iter (fun (name, n) -> line "    %-24s %d" name n) rows);
  (match member [ "chaos" ] stats with
  | Some (Json.Obj _ as c) ->
      line "";
      line "  chaos  spec %s   injections %s"
        (match member [ "spec" ] c with Some (Json.Str s) -> s | _ -> "-")
        (inum [ "injections" ] c)
  | _ -> ());
  (match member [ "slow_query" ] stats with
  | Some (Json.Obj _ as s) ->
      line "";
      line "  slow-query  threshold %sms   logged %s   last id %s"
        (fnum ~digits:0 [ "threshold_ms" ] s)
        (inum [ "logged" ] s)
        (match member [ "last_request_id" ] s with
        | Some (Json.Str rid) -> rid
        | _ -> "-")
  | _ -> ());
  Buffer.contents b

let fetch_stats client =
  let resp = Client.call client [ ("op", Json.Str "stats") ] in
  if Client.ok resp then Some (Client.result resp) else None

let clear_screen = "\027[2J\027[H"

(* Poll loop: one stats call per frame, qps history capped at the
   sparkline width. [frames] bounds the run for tests and --once;
   [None] runs until the connection drops or the user interrupts. *)
let run ?(host = "127.0.0.1") ~port ?(interval_s = 1.0) ?frames () =
  let addr = Printf.sprintf "%s:%d" host port in
  let width = 30 in
  let history = ref [] in
  let client = Client.connect ~host port in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let rec loop n =
    match frames with
    | Some f when n >= f -> ()
    | _ -> (
        match fetch_stats client with
        | None -> prerr_endline "probdb top: stats request failed"
        | Some stats ->
            let qps =
              Option.value ~default:0.0 (num [ "window"; "10s"; "qps" ] stats)
            in
            history := !history @ [ qps ];
            if List.length !history > width then
              history :=
                List.filteri (fun i _ -> i >= List.length !history - width)
                  !history;
            print_string clear_screen;
            print_string (render ~addr ~history:!history stats);
            flush stdout;
            (match frames with Some f when n + 1 >= f -> () | _ ->
              Unix.sleepf interval_s);
            loop (n + 1))
  in
  loop 0
