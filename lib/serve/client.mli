(** Clients for the [probdb serve] protocol.

    The top-level functions are a {e minimal blocking client}: one TCP
    connection, synchronous request/response, no retries. This is what
    the test suite and the malformed-input checks drive the server with;
    it is deliberately small enough to be a reference implementation of
    the wire protocol for client authors (docs/SERVING.md walks through
    the same exchanges with raw sockets). Disconnect-class failures
    ([EPIPE], [ECONNRESET], EOF) surface as the typed
    {!Connection_closed}, never as an uncaught [Unix_error] or a
    SIGPIPE-killed process ({!connect} ignores SIGPIPE process-wide).

    {!Resilient} is the production-shaped client: per-attempt timeouts,
    retries with exponential backoff and decorrelated jitter under a
    retry budget, and a circuit breaker — with retries restricted to
    idempotent operations and typed-retryable failures. *)

exception Connection_closed
(** The peer is gone: EOF on read, or [EPIPE]/[ECONNRESET]-class errno
    on read or write. *)

type t

val connect : ?host:string -> int -> t
(** [connect port] opens a connection to [host] (default ["127.0.0.1"]).
    Ignores SIGPIPE process-wide (idempotent).
    @raise Unix.Unix_error when the server is not there. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> (string * Probdb_obs.Json.t) list -> Probdb_obs.Json.t
(** [call t fields] sends the object [fields] — adding a fresh integer
    ["id"] when the caller did not pass one — and returns the parsed
    response object. Responses are matched to requests by arrival order
    (the protocol answers in submission order per connection).
    @raise Connection_closed when the server closed the connection.
    @raise Failure when the response line is not valid JSON. *)

val eval : ?fields:(string * Probdb_obs.Json.t) list -> t -> string ->
  Probdb_obs.Json.t
(** [eval t query] is [call] with [op = "eval"]; [fields] adds or
    overrides request fields (["deadline_ms"], ["method"], …). *)

val ping : t -> bool
(** [true] iff the server answered the liveness probe with [ok]. *)

val send_line : t -> string -> unit
(** Raw escape hatch: write one line verbatim (malformed-input tests),
    looping on short writes. @raise Connection_closed on a dead peer. *)

val recv_line : t -> string
(** Raw escape hatch: read one response line.
    @raise Connection_closed when the server closed the connection. *)

val ok : Probdb_obs.Json.t -> bool
(** The ["ok"] field of a response ([false] when absent). *)

val result : Probdb_obs.Json.t -> Probdb_obs.Json.t
(** The ["result"] field ([Null] when absent). *)

val request_id : Probdb_obs.Json.t -> string option
(** The top-level ["request_id"] correlation id of a response, when the
    server attached one. *)

val error_class : Probdb_obs.Json.t -> string option
(** The ["error"]["class"] field of a failed response. *)

(** The resilient client: what a production caller should look like, and
    what the chaos soak ([bench e18], [make check-chaos]) drives the
    server with.

    Failure handling, in order:
    - every attempt runs under [attempt_timeout_s]; a timed-out
      connection is {e dropped} (its stream position is unknown), never
      reused;
    - a failed attempt is retried only when the operation is idempotent
      ([eval]/[ping]/[stats]/[metrics]/[trace] — never [shutdown]) {e
      and} the failure is retryable: a typed [overloaded] response or a
      transport failure (connection closed, timeout, refused). Responses
      with any other typed error are answers, not failures — they are
      returned, not resent;
    - retries sleep with {e decorrelated jitter} (sleep ~ U(base, 3 ×
      previous), capped) drawn from a seeded stream, under a per-call
      retry budget ([retry_budget_s]) and attempt cap;
    - [breaker_threshold] consecutive transport failures open a
      {e circuit breaker}: calls fail fast with [Breaker_open] (no
      connect attempts) for [breaker_cooldown_s], after which the next
      call is the half-open probe — success closes the breaker, failure
      re-opens it.

    Not thread-safe: use one [Resilient.t] per thread. *)
module Resilient : sig
  type policy = {
    attempt_timeout_s : float;  (** per-attempt send-to-response deadline *)
    max_attempts : int;  (** total attempts per call, first one included *)
    base_backoff_s : float;  (** minimum backoff sleep *)
    max_backoff_s : float;  (** cap on one backoff sleep *)
    retry_budget_s : float;  (** total backoff sleep allowed per call *)
    breaker_threshold : int;
        (** consecutive transport failures that open the breaker *)
    breaker_cooldown_s : float;  (** how long the breaker stays open *)
    seed : int;  (** jitter stream seed — replayable backoff schedules *)
  }

  val default_policy : policy
  (** 2s attempt timeout, 4 attempts, 10ms–500ms backoff under a 2s
      budget, breaker at 5 consecutive failures with a 1s cooldown. *)

  type failure =
    | Breaker_open  (** failed fast: the breaker is open, nothing was sent *)
    | Gave_up of string
        (** transport failure with no retry allowed (non-idempotent op,
            attempts or budget exhausted); the message names the last
            failure *)

  type t

  val create : ?policy:policy -> ?host:string -> int -> t
  (** Like {!connect}, but lazy: the connection is established on the
      first call (and re-established after any failure), so [create]
      itself never fails on a dead server — the calls do, typed. *)

  val close : t -> unit
  (** Idempotent. *)

  val call :
    t -> (string * Probdb_obs.Json.t) list ->
    (Probdb_obs.Json.t, failure) result
  (** One request, with retries per the policy. [Ok resp] is any
      response from the server, including typed errors ([resp] with
      [ok = false]) — a typed error is an answer. *)

  val eval : ?fields:(string * Probdb_obs.Json.t) list -> t -> string ->
    (Probdb_obs.Json.t, failure) result

  val ping : t -> bool

  val attempts : t -> int
  (** Wire attempts made (≥ calls). *)

  val retries : t -> int
  (** Attempts beyond the first of their call. *)

  val timeouts : t -> int
  (** Attempts that hit the per-attempt timeout. *)

  val breaker_opens : t -> int
  (** Closed→open breaker transitions. *)

  val breaker_is_open : t -> bool
end
