(** A minimal blocking client for the [probdb serve] protocol.

    One TCP connection, synchronous request/response. This is what the
    test suite, the soak check and the serving bench drive the server
    with; it is deliberately dependency-free and small enough to be a
    reference implementation of the wire protocol for client authors
    (docs/SERVING.md walks through the same exchanges with raw sockets). *)

type t

val connect : ?host:string -> int -> t
(** [connect port] opens a connection to [host] (default ["127.0.0.1"]).
    @raise Unix.Unix_error when the server is not there. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> (string * Probdb_obs.Json.t) list -> Probdb_obs.Json.t
(** [call t fields] sends the object [fields] — adding a fresh integer
    ["id"] when the caller did not pass one — and returns the parsed
    response object. Responses are matched to requests by arrival order
    (the protocol answers in submission order per connection).
    @raise End_of_file when the server closed the connection.
    @raise Failure when the response line is not valid JSON. *)

val eval : ?fields:(string * Probdb_obs.Json.t) list -> t -> string ->
  Probdb_obs.Json.t
(** [eval t query] is [call] with [op = "eval"]; [fields] adds or
    overrides request fields (["deadline_ms"], ["method"], …). *)

val ping : t -> bool
(** [true] iff the server answered the liveness probe with [ok]. *)

val send_line : t -> string -> unit
(** Raw escape hatch: write one line verbatim (malformed-input tests). *)

val recv_line : t -> string
(** Raw escape hatch: read one response line.
    @raise End_of_file when the server closed the connection. *)

val ok : Probdb_obs.Json.t -> bool
(** The ["ok"] field of a response ([false] when absent). *)

val result : Probdb_obs.Json.t -> Probdb_obs.Json.t
(** The ["result"] field ([Null] when absent). *)

val error_class : Probdb_obs.Json.t -> string option
(** The ["error"]["class"] field of a failed response. *)
