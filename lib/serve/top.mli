(** [probdb top HOST:PORT]: a refreshing terminal dashboard over the
    server's [stats] op — qps sparkline, rolling latency quantiles and
    rates, strategy-win table, chaos and slow-query status. *)

val sparkline : float list -> string
(** Eight-level block sparkline, scaled to the series maximum. *)

val render : addr:string -> history:float list -> Probdb_obs.Json.t -> string
(** Render one frame from a [stats] snapshot and the recent qps history.
    Pure — exposed for tests. Missing or [Null] blocks render as ["-"]. *)

val run :
  ?host:string ->
  port:int ->
  ?interval_s:float ->
  ?frames:int ->
  unit ->
  unit
(** Poll [stats] every [interval_s] (default 1s) and repaint the
    terminal. [frames] bounds the number of repaints (for [--once] and
    tests); without it the loop runs until the connection drops or the
    process is interrupted.
    @raise Unix.Unix_error if the server cannot be reached. *)
