(** The [probdb serve] server: a long-running concurrent query service.

    One process loads a TID once and answers many clients over TCP, one
    line-delimited JSON request/response pair at a time (the protocol of
    {!Protocol}, specified in [docs/SERVING.md]). The moving parts:

    - an {e accept thread} takes connections and spawns one blocking
      {e reader thread} per connection (system threads, so blocking I/O
      releases the OCaml runtime lock);
    - control operations ([ping]/[stats]/[metrics]/[trace]/[shutdown])
      are answered inline on the reader thread;
    - [eval] requests are submitted to a bounded
      {!Probdb_par.Par.Service} queue drained by worker {e domains} — the
      only place engine work runs, so concurrency is capped by the worker
      count and the queue bound is the backpressure contract;
    - overload degrades before it sheds: past the [degrade_above]
      watermark admitted requests are evaluated with
      {!Probdb_engine.Engine.force_degrade} (certified (ε,δ) Karp–Luby
      answers), and when the queue is full the request is refused with a
      typed [overloaded] error — the server never queues unboundedly;
    - every request runs under a {!Probdb_guard.Guard} deadline whose
      budget {e includes the time spent queued} (admission control), and
      all request guards are children of one server guard so
      {!stop}[ `Now] cancels in-flight work cooperatively. *)

type config = {
  host : string;  (** bind address (default ["127.0.0.1"]) *)
  port : int;  (** TCP port; [0] picks an ephemeral port (see {!port}) *)
  workers : int;  (** engine worker domains draining the request queue *)
  queue_capacity : int;
      (** bound of the request queue; a full queue sheds ([overloaded]) *)
  degrade_above : int;
      (** queue-depth watermark above which admitted requests are
          force-degraded to the (ε,δ) approximation; [<= 0] never degrades
          under load *)
  default_deadline_ms : int option;
      (** per-request deadline applied when the request carries none *)
  worker_stall_deadline_ms : int;
      (** a worker busy on one request past this deadline is abandoned:
          the request is answered with a typed [internal] error and a
          replacement worker domain is spawned (see
          {!Probdb_par.Par.Service}); [<= 0] disables the watchdog *)
  engine : Probdb_engine.Engine.config;
      (** base evaluation config; per-request fields override it *)
  telemetry : bool;
      (** master switch for the windowed metrics and request-id minting
          (default [true]); the overhead bench's baseline turns it off.
          Client-supplied request ids still propagate when off. *)
  slow_query_ms : float option;
      (** log requests at/above this latency as NDJSON records; [0] logs
          every request; [None] (default) disables the log *)
  slow_query_log : string option;
      (** slow-query log path (append mode); [None] logs to stderr *)
  openmetrics_port : int option;
      (** serve the OpenMetrics text exposition over HTTP on this extra
          port ([0] picks an ephemeral one, see {!openmetrics_port}) *)
  slo_p99_ms : float option;
      (** latency objective: requests over this count against a 1%% miss
          budget, exposed as the windowed [p99_burn_rate] gauge *)
  slo_availability : float option;
      (** availability objective in [(0, 1)], e.g. [0.999]: errors + shed
          against its failure budget is the windowed
          [availability_burn_rate] gauge *)
}

val default_config : config
(** Loopback, port 7433, 2 workers, queue capacity 64, degrade watermark
    48, no default deadline, 30s worker stall deadline,
    {!Probdb_engine.Engine.default_config}; telemetry on, no slow-query
    log, no OpenMetrics listener, no SLOs. *)

type t

val start : ?config:config -> Probdb_core.Tid.t -> t
(** Bind, listen, spawn the accept thread and the worker service, and
    return immediately. @raise Probdb_core.Probdb_error.Error ([Io])
    when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port — the way to find an ephemeral one. *)

val openmetrics_port : t -> int option
(** The bound port of the OpenMetrics HTTP listener, when configured. *)

val openmetrics_text : t -> string
(** The OpenMetrics text exposition served on the {!openmetrics_port}
    listener and by the [metrics]/[format=openmetrics] protocol op: the
    process-wide {!Probdb_obs.Metrics} registry, this server's cumulative
    counters, rolling 1m gauges, and info metrics carrying the most
    recent (slow) request ids. *)

val plan_cache : t -> Probdb_prepare.Prepare.Cache.t
(** The compiled-plan cache shared by every worker domain. An explicitly
    configured [engine.plan_cache] is honoured (capacity 0 disables
    retention — the [--no-plan-cache] server); otherwise {!start} creates
    one default-capacity cache for the server's lifetime. Its counters
    are the [prepare_cache] block of {!stats_json}. *)

val engine_base : t -> Probdb_engine.Engine.config
(** The request-invariant engine configuration, resolved once at
    {!start}: the server guard as [parent_guard], [domains = 1], the
    shared {!plan_cache} installed, degradation defaults resolved. The
    per-request path layers request overrides on this hoisted base
    instead of rebuilding it per request; the same record is returned on
    every call (physical equality — the hoist contract the tests pin). *)

val request_engine_config :
  ?degrade_load:bool -> t -> Protocol.eval_request -> Probdb_engine.Engine.config
(** The engine configuration a given request would evaluate under (with
    zero queue wait charged against its deadline) — {!engine_base} plus
    the request's own overrides. Exposed for tests.
    @param degrade_load apply the over-watermark
      {!Probdb_engine.Engine.force_degrade} transform (default [false]).
    @raise Protocol.Bad on an unknown ["method"] name. *)

val stop : ?mode:[ `Drain | `Now ] -> t -> unit
(** Stop the server. [`Drain] (default) stops accepting, lets queued and
    in-flight requests complete and their responses flush, then closes
    every connection. [`Now] additionally clears the queue (each dropped
    request is answered with a typed [shutting-down] error) and cancels
    the server guard, interrupting in-flight evaluations at their next
    poll. Idempotent; concurrent callers block until the stop completes. *)

val wait : t -> unit
(** Block until the server has stopped (its accept thread has exited and
    the workers are joined) — the foreground of [probdb serve]. *)

val stats_json : t -> Probdb_obs.Json.t
(** The live server snapshot behind the [stats] protocol op (schema:
    the [serve] block of [docs/STATS.md]): connection and request
    counters, queue depth and capacity, shed and degraded-under-load
    totals, uptime and wall-clock start time, the rolling
    10s/60s/300s [window] block (qps, latency quantiles, error / shed /
    degraded / cache-hit rates, strategy wins, SLO burn rates), and the
    [chaos] and [slow_query] status blocks. *)
