(** The slow-query log: NDJSON records for requests at or above a latency
    threshold, written atomically line-by-line to a file or stderr.
    Record schema is documented in [docs/SERVING.md] (Monitoring). *)

type t

val create : ?path:string -> threshold_ms:float -> unit -> t
(** Open the log. Without [path], records go to stderr; with it, the file
    is opened append-mode (created [0o644] if missing). A [threshold_ms]
    of [0] logs every request.
    @raise Invalid_argument if [threshold_ms < 0].
    @raise Unix.Unix_error if the file cannot be opened. *)

val threshold_s : t -> float

val should_log : t -> latency_s:float -> bool
(** [latency_s >= threshold]. *)

val log : t -> Probdb_obs.Json.t -> unit
(** Append one record as a single NDJSON line. Thread-safe; lines are
    never interleaved. *)

val logged : t -> int
(** Records written since {!create}. *)

val close : t -> unit
(** Close the file sink (a no-op for stderr). *)
