(** The [probdb serve] wire protocol: line-delimited JSON over TCP.

    One request per line, one response per line, both JSON objects;
    responses echo the request's [id] verbatim so clients may pipeline.
    The full schema — field tables, error codes, overload semantics,
    copy-paste examples — is documented in [docs/SERVING.md]; this module
    is its executable counterpart: parsing of request lines into typed
    {!request}s and rendering of typed {!error}s into response documents.

    Error codes deliberately reuse the CLI exit codes of
    {!Probdb_core.Probdb_error} (2 io … 7 exhausted) and extend them with
    the serving-only classes: [1 internal], [8 overloaded], [9
    shutting-down], [10 bad-request]. *)

(** Per-request evaluation settings; every field except [query] is
    optional on the wire and [None]/default here, falling back to the
    server's base configuration. *)
type eval_request = {
  query : string;  (** first-order sentence, CLI concrete syntax *)
  free : string list;  (** free variables of a non-Boolean query *)
  meth : string option;  (** strategy name as in [probdb eval --method] *)
  deadline_ms : int option;
      (** admission-to-answer deadline; queue wait counts against it *)
  samples : int option;
  eps : float option;
  delta : float option;
  seed : int option;
  no_degrade : bool;  (** fail typed instead of degrading *)
  want_stats : bool;  (** include the full stats record in the response *)
  request_id : string option;
      (** client-supplied correlation id (1–128 printable non-space ASCII
          characters, validated by {!Probdb_obs.Request_id.valid}); when
          absent the server mints one *)
}

type op =
  | Eval of eval_request
  | Ping  (** liveness probe; answers [{"pong": true}] *)
  | Stats  (** the server stats snapshot (docs/STATS.md [serve] block) *)
  | Metrics of { openmetrics : bool }
      (** the process-wide {!Probdb_obs.Metrics} snapshot; with
          [openmetrics] (wire field ["format": "openmetrics"]) the result
          is the OpenMetrics text exposition instead of raw JSON *)
  | Trace of { ms : int }
      (** capture an event trace for [ms] milliseconds and return the
          Chrome trace_event document inline *)
  | Shutdown of { drain : bool }
      (** stop the server; with [drain] (default) queued and in-flight
          requests complete first *)

type request = { id : Probdb_obs.Json.t; op : op }
(** [id] is echoed verbatim in the response ([Null] when absent). *)

(** Everything that can go wrong with one request. [Engine] wraps the
    typed error channel shared with the CLI; the rest are serving-only. *)
type error =
  | Engine of Probdb_core.Probdb_error.t
  | Bad_request of string  (** malformed JSON, unknown op, bad field type *)
  | Overloaded of { depth : int; capacity : int }
      (** the request queue was full and the request was shed, not queued *)
  | Shutting_down  (** the server no longer accepts work *)
  | Internal of string  (** unexpected exception; a server bug *)

exception Bad of string
(** The parse-time escape hatch behind {!parse}; also raised by the server's
    per-request configuration when a field value is recognised as wrong only
    at evaluation time (an unknown ["method"] name). *)

val bad : ('a, unit, string, 'b) format4 -> 'a
(** [bad fmt ...] raises {!Bad} with the formatted message. *)

val error_class : error -> string
(** ["io"], ["csv"], ["parse"], ["usage"], ["no-method"], ["exhausted"],
    ["internal"], ["overloaded"], ["shutting-down"], or ["bad-request"]. *)

val error_code : error -> int
(** The numeric code: {!Probdb_core.Probdb_error.exit_code} for [Engine],
    1 internal, 8 overloaded, 9 shutting-down, 10 bad-request. *)

val parse : string -> (request, Probdb_obs.Json.t * string) result
(** Parse one request line. A request without an ["op"] field is an
    [eval]. [Error] carries the [Bad_request] message together with the
    request's [id] when one could be extracted ([Null] otherwise), so
    even malformed pipelined requests get correlatable responses. *)

val response_ok :
  ?request_id:string -> id:Probdb_obs.Json.t -> Probdb_obs.Json.t -> Probdb_obs.Json.t
(** [{"id": id, "ok": true, "result": result}], plus a top-level
    ["request_id"] when one is known. *)

val response_error :
  ?request_id:string -> id:Probdb_obs.Json.t -> error -> Probdb_obs.Json.t
(** [{"id": id, "ok": false, "error": {"class", "code", "message"}}];
    [Overloaded] additionally reports ["depth"] and ["capacity"], and a
    top-level ["request_id"] is added when one is known. *)

val write_line : out_channel -> Probdb_obs.Json.t -> unit
(** Compact-encode, append ['\n'], flush. *)

val write_line_fd : Unix.file_descr -> Probdb_obs.Json.t -> unit
(** {!write_line} straight to a descriptor, looping on short writes
    (one [Unix.single_write] is never assumed to send the whole frame)
    and retrying [EINTR] — the framing used by the server's response
    path and the clients. @raise Unix.Unix_error on a dead peer
    ([EPIPE]/[ECONNRESET]); callers map it to their connection-closed
    handling. *)
