module Json = Probdb_obs.Json
module Err = Probdb_core.Probdb_error
module Request_id = Probdb_obs.Request_id

type eval_request = {
  query : string;
  free : string list;
  meth : string option;
  deadline_ms : int option;
  samples : int option;
  eps : float option;
  delta : float option;
  seed : int option;
  no_degrade : bool;
  want_stats : bool;
  request_id : string option;
}

type op =
  | Eval of eval_request
  | Ping
  | Stats
  | Metrics of { openmetrics : bool }
  | Trace of { ms : int }
  | Shutdown of { drain : bool }

type request = { id : Json.t; op : op }

type error =
  | Engine of Err.t
  | Bad_request of string
  | Overloaded of { depth : int; capacity : int }
  | Shutting_down
  | Internal of string

let error_class = function
  | Engine e -> Err.class_name e
  | Bad_request _ -> "bad-request"
  | Overloaded _ -> "overloaded"
  | Shutting_down -> "shutting-down"
  | Internal _ -> "internal"

let error_code = function
  | Engine e -> Err.exit_code e
  | Internal _ -> 1
  | Overloaded _ -> 8
  | Shutting_down -> 9
  | Bad_request _ -> 10

let error_message = function
  | Engine e -> Err.render e
  | Bad_request m -> m
  | Overloaded { depth; capacity } ->
      Printf.sprintf "request queue full (%d/%d); retry with backoff" depth
        capacity
  | Shutting_down -> "server is shutting down"
  | Internal m -> "internal error: " ^ m

(* Field extraction: every accessor either succeeds, signals absence, or
   fails with a [Bad_request]-grade message naming the field. *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let field name j = Json.member name j

let str_field name j =
  match field name j with
  | None -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> bad "field %S must be a string" name

let int_field name j =
  match field name j with
  | None -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> bad "field %S must be an integer" name

let float_field name j =
  match field name j with
  | None -> None
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some _ -> bad "field %S must be a number" name

let bool_field ~default name j =
  match field name j with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name

let str_list_field name j =
  match field name j with
  | None -> []
  | Some (Json.List items) ->
      List.map
        (function
          | Json.Str s -> s
          | _ -> bad "field %S must be a list of strings" name)
        items
  | Some _ -> bad "field %S must be a list of strings" name

(* [deadline_ms]/[samples] flow into guard and sampler invariants; reject
   non-positive values here as [bad-request] rather than letting them
   surface as an internal engine error. *)
let pos_int_field name j =
  match int_field name j with
  | Some v when v < 1 -> bad "field %S must be a positive integer" name
  | v -> v

let pos_float_field name j =
  match float_field name j with
  | Some v when not (v > 0.0) -> bad "field %S must be a positive number" name
  | v -> v

let parse_eval j =
  let query =
    match str_field "query" j with
    | Some q -> q
    | None -> bad "op \"eval\" requires a string field \"query\""
  in
  Eval
    {
      query;
      free = str_list_field "free" j;
      meth = str_field "method" j;
      deadline_ms = pos_int_field "deadline_ms" j;
      samples = pos_int_field "samples" j;
      eps = pos_float_field "eps" j;
      delta = pos_float_field "delta" j;
      seed = int_field "seed" j;
      no_degrade = bool_field ~default:false "no_degrade" j;
      want_stats = bool_field ~default:false "stats" j;
      request_id =
        (match str_field "request_id" j with
        | Some rid when not (Request_id.valid rid) ->
            bad
              "field \"request_id\" must be 1-128 printable non-space ASCII \
               characters"
        | rid -> rid);
    }

let parse_op j =
  match str_field "op" j with
  | None -> parse_eval j
  | Some "eval" -> parse_eval j
  | Some "ping" -> Ping
  | Some "stats" -> Stats
  | Some "metrics" -> (
      match str_field "format" j with
      | None | Some "json" -> Metrics { openmetrics = false }
      | Some "openmetrics" -> Metrics { openmetrics = true }
      | Some f -> bad "unknown metrics format %S (json|openmetrics)" f)
  | Some "trace" ->
      let ms = Option.value ~default:100 (int_field "ms" j) in
      if ms < 0 || ms > 60_000 then
        bad "field \"ms\" must be between 0 and 60000"
      else Trace { ms }
  | Some "shutdown" -> Shutdown { drain = bool_field ~default:true "drain" j }
  | Some op -> bad "unknown op %S" op

let parse line =
  match Json.of_string line with
  | Error msg -> Error (Json.Null, "malformed JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
      let id = Option.value ~default:Json.Null (field "id" j) in
      try Ok { id; op = parse_op j } with Bad m -> Error (id, m))
  | Ok _ -> Error (Json.Null, "request must be a JSON object")

(* The correlation id rides at the top level of both reply shapes so a
   client (or a log grepper) can match replies to trace events and
   slow-query records without unwrapping the result. *)
let rid_field = function
  | None -> []
  | Some rid -> [ ("request_id", Json.Str rid) ]

let response_ok ?request_id ~id result =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool true); ("result", result) ]
    @ rid_field request_id)

let response_error ?request_id ~id err =
  let base =
    [
      ("class", Json.Str (error_class err));
      ("code", Json.Int (error_code err));
      ("message", Json.Str (error_message err));
    ]
  in
  let extra =
    match err with
    | Overloaded { depth; capacity } ->
        [ ("depth", Json.Int depth); ("capacity", Json.Int capacity) ]
    | _ -> []
  in
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool false); ("error", Json.Obj (base @ extra)) ]
    @ rid_field request_id)

let write_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc

(* ---------- descriptor-level framing ---------- *)

module Chaos = Probdb_chaos.Chaos

(* One write syscall, never assumed complete: [Unix.single_write] may
   send any prefix of the buffer (socket buffers full under load), so the
   frame is complete only when the loop has drained it. EINTR is a
   zero-byte iteration, not an error. *)
let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.single_write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

let write_line_fd fd j =
  let line = Json.to_string j ^ "\n" in
  let buf = Bytes.unsafe_of_string line in
  let len = Bytes.length buf in
  (* chaos sites: a connection reset surfacing mid-write, and a short
     first write (the loop must finish the frame — a torn frame here
     would corrupt every later response on the connection) *)
  if Chaos.fire ~site:"serve.write.reset" then
    raise (Unix.Unix_error (Unix.ECONNRESET, "write", ""));
  let pos =
    if len > 1 && Chaos.fire ~site:"serve.write.short" then
      try Unix.single_write fd buf 0 (len / 2)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    else 0
  in
  write_all fd buf pos (len - pos)
