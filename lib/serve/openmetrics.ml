(* OpenMetrics / Prometheus text exposition, with no HTTP library: the
   renderer turns a flat metric list into the line format, and
   [serve_http] answers any HTTP/1.x GET on a dedicated port with the
   current exposition — enough for a Prometheus scrape_config, curl, or
   `probdb top`'s fallback, while the real server keeps its own
   line-JSON protocol untouched. *)

module Json = Probdb_obs.Json

type metric =
  | Counter of string * float
  | Gauge of string * float
  | Info of string * (string * string) list

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots in our
   registry names become underscores. *)
let sanitize_name s =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

(* Label values live in double quotes: escape backslash, quote, newline. *)
let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let render metrics =
  let b = Buffer.create 4096 in
  List.iter
    (fun m ->
      match m with
      | Counter (name, v) ->
          let name = sanitize_name name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string b
            (Printf.sprintf "%s_total %s\n" name (float_repr v))
      | Gauge (name, v) ->
          let name = sanitize_name name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (float_repr v))
      | Info (name, labels) ->
          let name = sanitize_name name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s info\n" name);
          let rendered =
            labels
            |> List.map (fun (k, v) ->
                   Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label v))
            |> String.concat ","
          in
          Buffer.add_string b (Printf.sprintf "%s_info{%s} 1\n" name rendered))
    metrics;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* Project the process-wide Metrics registry snapshot
   ({"counters":{..},"gauges":{..},"histograms":{..}}) into flat metrics;
   histograms surface as count/sum counters plus quantile gauges. *)
let of_metrics_json j =
  let obj name =
    match Json.member name j with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let num = function
    | Json.Int i -> Some (float_of_int i)
    | Json.Float f -> Some f
    | _ -> None
  in
  let counters =
    List.filter_map
      (fun (name, v) -> Option.map (fun v -> Counter (name, v)) (num v))
      (obj "counters")
  in
  let gauges =
    List.filter_map
      (fun (name, v) -> Option.map (fun v -> Gauge (name, v)) (num v))
      (obj "gauges")
  in
  let histos =
    List.concat_map
      (fun (name, h) ->
        let field f = Option.bind (Json.member f h) num in
        let counter suffix f =
          match field f with
          | Some v -> [ Counter (name ^ suffix, v) ]
          | None -> []
        in
        let gauge suffix f =
          match field f with
          | Some v -> [ Gauge (name ^ suffix, v) ]
          | None -> []
        in
        counter "_count" "count" @ counter "_sum" "sum" @ gauge "_p50" "p50"
        @ gauge "_p90" "p90" @ gauge "_p99" "p99")
      (obj "histograms")
  in
  counters @ gauges @ histos

(* ---------- minimal HTTP listener ---------- *)

type listener = {
  om_port : int;
  om_sock : Unix.file_descr;
  om_thread : Thread.t;
  om_stopping : bool Atomic.t;
}

let om_port l = l.om_port

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Read and discard the request head (start line + headers, ending at the
   first blank line). The body callback is re-evaluated per request so
   each scrape sees fresh gauges. Any request shape gets the same 200 —
   there is exactly one resource on this port. *)
let handle_client fd body =
  let buf = Bytes.create 4096 in
  let rec drain_head seen =
    if
      contains_sub seen "\r\n\r\n" || contains_sub seen "\n\n"
      || String.length seen > 65536
    then ()
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n -> drain_head (seen ^ Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_head seen
      | exception Unix.Unix_error _ -> ()
  in
  drain_head "";
  let text = body () in
  let resp =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: application/openmetrics-text; version=1.0.0; \
       charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length text) text
  in
  let rbuf = Bytes.unsafe_of_string resp in
  let len = Bytes.length rbuf in
  let pos = ref 0 in
  (try
     while !pos < len do
       match Unix.write fd rbuf !pos (len - !pos) with
       | n -> pos := !pos + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_http ~host ~port ~body =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind sock addr
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 16;
  let om_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept sock with
          | fd, _ ->
              (* scrape endpoints are low-rate; serve inline, no pool *)
              (try handle_client fd body
               with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ ->
              if Atomic.get stopping then () else loop ()
        in
        loop ())
      ()
  in
  { om_port; om_sock = sock; om_thread = thread; om_stopping = stopping }

let stop l =
  Atomic.set l.om_stopping true;
  (try Unix.shutdown l.om_sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close l.om_sock with Unix.Unix_error _ -> ());
  try Thread.join l.om_thread with _ -> ()
