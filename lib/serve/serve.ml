module Core = Probdb_core
module Err = Probdb_core.Probdb_error
module L = Probdb_logic
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module Prepare = Probdb_prepare.Prepare
module Guard = Probdb_guard.Guard
module Par = Probdb_par.Par
module Json = Probdb_obs.Json
module Stats = Probdb_obs.Stats
module Metrics = Probdb_obs.Metrics
module Trace = Probdb_obs.Trace
module Clock = Probdb_obs.Clock
module Window = Probdb_obs.Window
module Histogram = Probdb_obs.Histogram
module Request_id = Probdb_obs.Request_id
module Chaos = Probdb_chaos.Chaos

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  degrade_above : int;
  default_deadline_ms : int option;
  worker_stall_deadline_ms : int;
  engine : E.config;
  telemetry : bool;
  slow_query_ms : float option;
  slow_query_log : string option;
  openmetrics_port : int option;
  slo_p99_ms : float option;
  slo_availability : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7433;
    workers = 2;
    queue_capacity = 64;
    degrade_above = 48;
    default_deadline_ms = None;
    worker_stall_deadline_ms = 30_000;
    engine = E.default_config;
    telemetry = true;
    slow_query_ms = None;
    slow_query_log = None;
    openmetrics_port = None;
    slo_p99_ms = None;
    slo_availability = None;
  }

(* Process-wide metrics mirrored by every server instance (the per-server
   snapshot lives in [stats_json]); names documented in docs/STATS.md. *)
let m_connections = Metrics.counter "serve.connections"
let m_requests = Metrics.counter "serve.requests"
let m_shed = Metrics.counter "serve.shed"
let m_degraded_load = Metrics.counter "serve.degraded_under_load"
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_latency = Metrics.histogram "serve.request_latency_s"
let m_queue_wait = Metrics.histogram "serve.queue_wait_s"
let m_worker_restarts = Metrics.counter "serve.worker_restarts"

(* One TCP connection. Responses from worker domains and from the reader
   thread interleave on the descriptor, hence the write lock; [pending]
   counts requests admitted but not yet answered, so EOF handling can wait
   for the last response to flush before closing — [echo req | client]
   must see its answer. Writes go straight to [fd] via
   {!Protocol.write_line_fd} (short-write-safe framing); [ic] wraps the
   same descriptor for the blocking read side. *)
type conn = {
  cid : int;
  fd : Unix.file_descr;
  ic : in_channel;
  wlock : Mutex.t;
  plock : Mutex.t;
  pdone : Condition.t;
  mutable pending : int;
  mutable closed : bool;
}

(* An admitted eval request, queued for the worker service. [j_enqueued_s]
   anchors the queue-wait measurement the admission deadline charges;
   [j_degrade_load] is the backpressure verdict, decided at admission.
   [j_done] is the reply token: the worker's answer and the watchdog's
   doom path race for it, and only the CAS winner sends — one response
   per request, however the race resolves. *)
type job = {
  j_conn : conn;
  j_id : Json.t;
  j_req : Protocol.eval_request;
  j_rid : string option;  (* correlation id: client-supplied or minted *)
  j_degrade_load : bool;
  j_enqueued_s : float;
  j_done : bool Atomic.t;
}

type state = Running | Stopping

(* The rolling-horizon side of the telemetry: windowed twins of the
   cumulative counters, read back at 10s/60s/300s horizons by
   [stats_json] and the OpenMetrics exposition. Cumulative counters stay
   the source of exactness; these answer "what is happening right now". *)
type windows = {
  w_latency : Window.histogram;
  w_queue_wait : Window.histogram;
  w_answered : Window.counter;  (* eval replies sent, any outcome *)
  w_ok : Window.counter;
  w_errors : Window.counter;
  w_degraded : Window.counter;  (* force-degraded under load *)
  w_shed : Window.counter;
  w_slow : Window.counter;  (* at/over the slow-query threshold *)
  w_slo_miss : Window.counter;  (* latency above the p99 objective *)
  w_cache_hits : Window.counter;
  w_cache_misses : Window.counter;
  w_restarts : Window.counter;
  w_strategies : (string, Window.counter) Hashtbl.t;  (* winning strategy *)
  w_strategies_lock : Mutex.t;
}

let make_windows () =
  {
    w_latency = Window.histogram ();
    w_queue_wait = Window.histogram ();
    w_answered = Window.counter ();
    w_ok = Window.counter ();
    w_errors = Window.counter ();
    w_degraded = Window.counter ();
    w_shed = Window.counter ();
    w_slow = Window.counter ();
    w_slo_miss = Window.counter ();
    w_cache_hits = Window.counter ();
    w_cache_misses = Window.counter ();
    w_restarts = Window.counter ();
    w_strategies = Hashtbl.create 8;
    w_strategies_lock = Mutex.create ();
  }

let strategy_counter w name =
  Mutex.protect w.w_strategies_lock (fun () ->
      match Hashtbl.find_opt w.w_strategies name with
      | Some c -> c
      | None ->
          let c = Window.counter () in
          Hashtbl.add w.w_strategies name c;
          c)

type t = {
  cfg : config;
  db : Core.Tid.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  guard : Guard.t;  (* parent of every request guard; [stop `Now] cancels *)
  plan_cache : Prepare.Cache.t;
      (* one compiled-plan cache shared by every worker domain: repeated
         query templates skip parse/classify/plan after the first request *)
  req_base : E.config;
      (* the request-invariant engine config, resolved once at [start]:
         server guard installed as parent, [domains = 1] (engine work must
         stay inside its worker domain), the shared plan cache. Per-request
         handling only overrides the fields the request actually sets. *)
  base_degrade : E.degrade;
      (* the degradation targets a request inherits when it sets none,
         resolved once from the engine config (falling back to the engine
         defaults) *)
  service : job Par.Service.t;
  state : state Atomic.t;
  started_s : float;
  started_unix_s : float;  (* wall-clock start, for operators *)
  windows : windows option;  (* None with [telemetry = false] *)
  slowlog : Slowlog.t option;
  mutable om_listener : Openmetrics.listener option;
  last_rid : string option Atomic.t;
  last_slow_rid : string option Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  stop_lock : Mutex.t;
  mutable stopped : bool;
  trace_lock : Mutex.t;  (* tracing is process-global: one capture at a time *)
  next_cid : int Atomic.t;
  c_accepted : int Atomic.t;
  c_requests : int Atomic.t;
  c_eval_ok : int Atomic.t;
  c_eval_error : int Atomic.t;
  c_shed : int Atomic.t;
  c_degraded_load : int Atomic.t;
}

(* ---------- connection plumbing ---------- *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A write to a connection the client already abandoned is not worth
   anything ([EPIPE]/[ECONNRESET] included — SIGPIPE itself is ignored
   process-wide in [start]): swallow the error and let the reader thread
   observe EOF. *)
let send conn json =
  try with_lock conn.wlock (fun () -> Protocol.write_line_fd conn.fd json)
  with Sys_error _ | Unix.Unix_error _ -> ()

let pending_incr conn =
  with_lock conn.plock (fun () -> conn.pending <- conn.pending + 1)

let pending_decr conn =
  with_lock conn.plock (fun () ->
      conn.pending <- conn.pending - 1;
      if conn.pending <= 0 then Condition.broadcast conn.pdone)

let pending_wait conn =
  with_lock conn.plock (fun () ->
      while conn.pending > 0 do
        Condition.wait conn.pdone conn.plock
      done)

let close_conn t conn =
  let mine =
    with_lock conn.plock (fun () ->
        if conn.closed then false
        else begin
          conn.closed <- true;
          true
        end)
  in
  if mine then begin
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (* writes are unbuffered (straight to the fd), so there is nothing to
       flush; close the descriptor exactly once — a second close could
       hit a descriptor number the accept loop already reused *)
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    with_lock t.conns_lock (fun () -> Hashtbl.remove t.conns conn.cid)
  end

(* Exactly-once reply for a job: whoever wins the [j_done] CAS — the
   worker that evaluated it, the watchdog that doomed it, or the shutdown
   path that dropped it — sends the response and releases the pending
   slot; everyone else's response is discarded. Returns whether this
   caller won. The winner also feeds the windowed latency/SLO gauges, so
   every admitted request is counted exactly once however it ends. *)
let reply t job resp =
  if Atomic.compare_and_set job.j_done false true then begin
    (* telemetry first, wire second: a client that reads [stats] right
       after receiving its reply must already see this request in the
       rolling windows *)
    let latency_s = Clock.now () -. job.j_enqueued_s in
    Metrics.observe m_latency latency_s;
    (match t.windows with
    | None -> ()
    | Some w ->
        Window.observe w.w_latency latency_s;
        Window.incr w.w_answered;
        (match t.cfg.slo_p99_ms with
        | Some ms when latency_s > ms /. 1e3 -> Window.incr w.w_slo_miss
        | _ -> ()));
    (match job.j_rid with
    | Some _ as rid -> Atomic.set t.last_rid rid
    | None -> ());
    send job.j_conn resp;
    pending_decr job.j_conn;
    true
  end
  else false

(* ---------- request evaluation (worker domains) ---------- *)

(* The request-invariant part of every per-request engine config: parent
   guard, worker-domain confinement, the shared plan cache, and the
   resolved degradation defaults. Built once at [start]; the per-request
   path ([config_of_request]) only layers the request's own overrides on
   top, instead of re-deriving all of this for every request. *)
let engine_base_of config ~guard ~plan_cache =
  let base =
    { config.engine with
      E.parent_guard = Some guard;
      plan_cache = Some plan_cache;
      (* engine work must stay inside this worker domain *)
      domains = 1 }
  in
  let base_degrade =
    match base.E.degrade with
    | Some d -> d
    | None -> (
        match E.default_config.E.degrade with
        | Some d -> d
        | None -> { E.eps = 0.1; delta = 0.05; max_samples = 20_000 })
  in
  (base, base_degrade)

(* Per-request engine configuration: the hoisted base ([t.req_base]),
   overridden field by field from the request, run under a child of the
   server guard. Raises [Protocol.Bad] on an unknown method name. *)
let config_of_request t ~(remaining_s : float option)
    (r : Protocol.eval_request) ~degrade_load =
  let base = t.req_base in
  let base =
    match r.Protocol.meth with
    | None | Some "auto" -> base
    | Some name -> (
        match E.strategy_of_name name with
        | Some s -> { base with E.strategies = [ s ] }
        | None -> Protocol.bad "unknown method %S" name)
  in
  let base =
    match (r.Protocol.samples, r.Protocol.seed) with
    | None, None -> base
    | _ ->
        { base with
          E.kl_samples =
            Option.value r.Protocol.samples ~default:base.E.kl_samples;
          seed = Option.value r.Protocol.seed ~default:base.E.seed }
  in
  let degrade =
    if r.Protocol.no_degrade || r.Protocol.meth = Some "karp-luby" then None
    else
      match (r.Protocol.eps, r.Protocol.delta, r.Protocol.samples) with
      | None, None, None -> Some t.base_degrade
      | _ ->
          let d = t.base_degrade in
          Some
            { E.eps = Option.value r.Protocol.eps ~default:d.E.eps;
              delta = Option.value r.Protocol.delta ~default:d.E.delta;
              max_samples =
                Option.value r.Protocol.samples ~default:d.E.max_samples }
  in
  let config = { base with E.deadline_s = remaining_s; degrade } in
  (* [no_degrade] requests are exempt from backpressure degradation
     (admission never marks them, but guard here too: [force_degrade]
     would reinstall the default accuracy targets over [degrade = None]
     and silently break the exactness contract) *)
  if degrade_load && not r.Protocol.no_degrade then E.force_degrade config
  else config

let confidence_json (c : Answer.confidence) =
  Json.Obj
    [
      ("ci_low", Json.Float c.Answer.ci_low);
      ("ci_high", Json.Float c.Answer.ci_high);
      ("eps", Json.Float c.Answer.eps);
      ("delta", Json.Float c.Answer.delta);
      ("samples", Json.Int c.Answer.samples);
    ]

let chain_json steps =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("strategy", Json.Str (Answer.step_strategy s));
             ("kind", Json.Str (Answer.step_kind s));
             ("detail", Json.Str (Answer.step_detail s));
           ])
       steps)

let answer_json ~want_stats ~degraded_load (a : Answer.t) =
  Json.Obj
    ([
       ("value", Json.Float a.Answer.value);
       ("exact", Json.Bool a.Answer.exact);
       ("strategy", Json.Str a.Answer.strategy);
       ("degraded", Json.Bool a.Answer.degraded);
       ("degraded_under_load", Json.Bool degraded_load);
     ]
    @ (match a.Answer.confidence with
      | Some c -> [ ("confidence", confidence_json c) ]
      | None -> [])
    @ [ ("chain", chain_json a.Answer.chain) ]
    @ if want_stats then [ ("stats", Stats.to_json a.Answer.stats) ] else [])

let report_json (r : E.report) =
  Json.Obj
    [
      ("value", Json.Float (E.value r.E.outcome));
      ( "exact",
        Json.Bool
          (match r.E.outcome with E.Exact _ -> true | E.Approximate _ -> false)
      );
      ("strategy", Json.Str (E.strategy_name r.E.strategy));
    ]

(* Exceptions escaping [E.answers] (which has no [eval]-style typed
   wrapper) and anything else unexpected, folded into the typed channel. *)
let typed_error = function
  | Err.Error e -> Protocol.Engine e
  | E.No_method chain ->
      Protocol.Engine
        (Err.No_method (List.map (fun (s, m) -> (E.strategy_name s, m)) chain))
  | Guard.Exhausted trip ->
      Protocol.Engine
        (Err.Exhausted
           {
             resource = Guard.resource_name trip.Guard.resource;
             site = trip.Guard.site;
             detail = Guard.describe trip;
           })
  | Protocol.Bad m -> Protocol.Bad_request m
  | exn -> Protocol.Internal (Printexc.to_string exn)

(* The deadline the evaluation still has: what the request asked for (or
   the server default) minus the time already spent queued. A request that
   spent its whole budget waiting gets a hair's breadth of deadline, so
   the guard trips at the first poll and the degradation path answers —
   the overloaded-server contract (degrade, don't drop). *)
let remaining_deadline t (r : Protocol.eval_request) ~queue_wait_s =
  match
    (r.Protocol.deadline_ms, t.cfg.default_deadline_ms, t.cfg.engine.E.deadline_s)
  with
  | Some ms, _, _ | None, Some ms, _ ->
      Some (Float.max 1e-4 ((float_of_int ms /. 1000.0) -. queue_wait_s))
  | None, None, base -> base

let engine_base t = t.req_base
let plan_cache t = t.plan_cache

let request_engine_config ?(degrade_load = false) t (r : Protocol.eval_request) =
  let remaining_s = remaining_deadline t r ~queue_wait_s:0.0 in
  config_of_request t ~remaining_s r ~degrade_load

let eval_result_json t job ~config ~degraded_load ~stats ?prepared q =
  let r = job.j_req in
  match r.Protocol.free with
  | [] -> (
      match E.eval ~config ~stats ?prepared t.db q with
      | Ok a ->
          Ok
            (answer_json ~want_stats:r.Protocol.want_stats ~degraded_load a)
      | Error e -> Error (Protocol.Engine e))
  | free -> (
      match E.answers ~config ~free t.db q with
      | answers ->
          Ok
            (Json.Obj
               [
                 ( "bindings",
                   Json.List
                     (List.map
                        (fun (binding, rep) ->
                          Json.Obj
                            [
                              ( "binding",
                                Json.List
                                  (List.map
                                     (fun v -> Json.Str (Core.Value.to_string v))
                                     binding) );
                              ("answer", report_json rep);
                            ])
                        answers) );
               ])
      | exception exn -> Error (typed_error exn))

(* One slow-query NDJSON record: everything needed to replay and explain
   the request, keyed by its correlation id. Schema documented in
   docs/SERVING.md (Monitoring). *)
let slow_record job ~latency_s ~queue_wait_s ~(stats : Stats.t) ~verdict =
  let opt_str = function None -> Json.Null | Some s -> Json.Str s in
  Json.Obj
    [
      ("ts_unix_s", Json.Float (Unix.gettimeofday ()));
      ("request_id", opt_str job.j_rid);
      ("query", Json.Str job.j_req.Protocol.query);
      ("verdict", Json.Str verdict);
      ("latency_s", Json.Float latency_s);
      ("queue_wait_s", Json.Float queue_wait_s);
      ("strategy", opt_str stats.Stats.strategy);
      ("exact", Json.Bool stats.Stats.exact);
      ("degraded", Json.Bool stats.Stats.degraded);
      ( "prepared_key",
        match stats.Stats.prepare with
        | Some p -> Json.Str p.Stats.prep_key
        | None -> Json.Null );
      ( "cache_hit",
        match stats.Stats.prepare with
        | Some p -> Json.Bool p.Stats.prep_hit
        | None -> Json.Null );
      ( "bytes_mapped",
        match stats.Stats.storage with
        | Some s -> Json.Int s.Stats.st_bytes_mapped
        | None -> Json.Null );
      ( "phases",
        Json.Obj
          [
            ("parse_s", Json.Float stats.Stats.parse_s);
            ("prepare_s", Json.Float stats.Stats.prepare_s);
            ("classify_s", Json.Float stats.Stats.classify_s);
            ("plan_s", Json.Float stats.Stats.plan_s);
            ("solve_s", Json.Float stats.Stats.solve_s);
          ] );
      ( "chain",
        Json.List
          (List.map
             (fun (s, kind, detail) ->
               Json.Obj
                 [
                   ("strategy", Json.Str s);
                   ("kind", Json.Str kind);
                   ("detail", Json.Str detail);
                 ])
             stats.Stats.chain) );
    ]

(* Post-reply bookkeeping for an answered eval: windowed outcome
   counters, the slow-query log, and the terminal trace instant. Only the
   reply winner calls this — a worker that lost the race to the watchdog
   must not double-count its late result. *)
let record_outcome t job ~stats ~degraded_load ~queue_wait_s ~verdict ~ok =
  let latency_s = Clock.now () -. job.j_enqueued_s in
  (match t.windows with
  | None -> ()
  | Some w ->
      if ok then Window.incr w.w_ok else Window.incr w.w_errors;
      if degraded_load then Window.incr w.w_degraded;
      (match stats.Stats.strategy with
      | Some s -> Window.incr (strategy_counter w s)
      | None -> ());
      (match stats.Stats.prepare with
      | Some p ->
          Window.incr
            (if p.Stats.prep_hit then w.w_cache_hits else w.w_cache_misses)
      | None -> ()));
  (match t.slowlog with
  | Some sl when Slowlog.should_log sl ~latency_s ->
      (match t.windows with Some w -> Window.incr w.w_slow | None -> ());
      (match job.j_rid with
      | Some _ as rid -> Atomic.set t.last_slow_rid rid
      | None -> ());
      Slowlog.log sl (slow_record job ~latency_s ~queue_wait_s ~stats ~verdict)
  | _ -> ());
  match job.j_rid with
  | Some rid -> Trace.instant ~cat:"request" ("req:" ^ rid ^ ":" ^ verdict)
  | None -> ()

let run_job t job =
  let r = job.j_req in
  let queue_wait_s = Clock.now () -. job.j_enqueued_s in
  Metrics.observe m_queue_wait queue_wait_s;
  (match t.windows with
  | Some w -> Window.observe w.w_queue_wait queue_wait_s
  | None -> ());
  Metrics.set m_queue_depth (float_of_int (Par.Service.depth t.service));
  let attempt ~degrade_load =
    let stats = Stats.create () in
    stats.Stats.query <- Some r.Protocol.query;
    stats.Stats.request_id <- job.j_rid;
    let result =
      try
        let remaining_s = remaining_deadline t r ~queue_wait_s in
        let config = config_of_request t ~remaining_s r ~degrade_load in
        (* the shared text index skips the parser on repeated request texts
           and hands back the prepared binding in the same lookup, so warm
           requests go straight to execution *)
        match
          Prepare.Cache.resolve_text ~stats t.plan_cache ~free:r.Protocol.free
            r.Protocol.query
        with
        | exception L.Parser.Error msg ->
            Error (Protocol.Engine (Err.Parse { message = msg }))
        | q, prepared ->
            eval_result_json t job ~config ~degraded_load:degrade_load ~stats
              ?prepared q
      with exn -> Error (typed_error exn)
    in
    (result, stats, degrade_load)
  in
  let result, stats, degraded_load =
    match attempt ~degrade_load:job.j_degrade_load with
    | Error (Protocol.Engine (Err.No_method _)), _, _ when job.j_degrade_load ->
        (* degradation under load is best-effort: a query with no monotone
           DNF lineage has no (ε,δ) fallback to degrade to, so it gets its
           normal exact evaluation instead of a spurious no-method error *)
        attempt ~degrade_load:false
    | r -> r
  in
  match result with
  | Ok doc ->
      if reply t job (Protocol.response_ok ?request_id:job.j_rid ~id:job.j_id doc)
      then begin
        Atomic.incr t.c_eval_ok;
        record_outcome t job ~stats ~degraded_load ~queue_wait_s ~verdict:"ok"
          ~ok:true
      end
  | Error err ->
      if
        reply t job
          (Protocol.response_error ?request_id:job.j_rid ~id:job.j_id err)
      then begin
        Atomic.incr t.c_eval_error;
        record_outcome t job ~stats ~degraded_load ~queue_wait_s
          ~verdict:(Protocol.error_class err) ~ok:false
      end

(* ---------- control operations (reader threads) ---------- *)

let uptime_s t = Clock.now () -. t.started_s

(* One rolling-horizon snapshot: quantiles from the merged latency
   window, rates against the eval replies sent inside the horizon. The
   denominator is [w_answered] — every admitted eval ends in exactly one
   reply (ok, error, shed, doomed), so the rates partition it. *)
let horizon_json t w ~horizon_s =
  let lat = Window.snapshot w.w_latency ~horizon_s in
  let answered = Window.total w.w_answered ~horizon_s in
  let errors = Window.total w.w_errors ~horizon_s in
  let shed = Window.total w.w_shed ~horizon_s in
  let rate num den =
    if den = 0 then Json.Null else Json.Float (float_of_int num /. float_of_int den)
  in
  let q p =
    if Histogram.count lat = 0 then Json.Null
    else Json.Float (Histogram.quantile lat p)
  in
  let hits = Window.total w.w_cache_hits ~horizon_s in
  let misses = Window.total w.w_cache_misses ~horizon_s in
  let slo =
    let avail_burn =
      match t.cfg.slo_availability with
      | Some a when a < 1.0 && answered > 0 ->
          let failure_rate =
            float_of_int (errors + shed) /. float_of_int answered
          in
          Some (failure_rate /. (1.0 -. a))
      | _ -> None
    in
    let p99_burn =
      match t.cfg.slo_p99_ms with
      | Some _ when answered > 0 ->
          (* the objective tolerates 1% of requests over the p99 target:
             burn 1.0 = spending that budget exactly *)
          let miss_rate =
            float_of_int (Window.total w.w_slo_miss ~horizon_s)
            /. float_of_int answered
          in
          Some (miss_rate /. 0.01)
      | _ -> None
    in
    match (avail_burn, p99_burn) with
    | None, None -> []
    | _ ->
        [
          ( "slo",
            Json.Obj
              ((match p99_burn with
               | Some b -> [ ("p99_burn_rate", Json.Float b) ]
               | None -> [])
              @
              match avail_burn with
              | Some b -> [ ("availability_burn_rate", Json.Float b) ]
              | None -> []) );
        ]
  in
  let strategies =
    let rows =
      Mutex.protect w.w_strategies_lock (fun () ->
          Hashtbl.fold (fun name c acc -> (name, c) :: acc) w.w_strategies [])
    in
    rows
    |> List.filter_map (fun (name, c) ->
           match Window.total c ~horizon_s with
           | 0 -> None
           | n -> Some (name, Json.Int n))
    |> List.sort compare
  in
  Json.Obj
    ([
       ("qps", Json.Float (Window.rate w.w_answered ~horizon_s));
       ("answered", Json.Int answered);
       ("p50_s", q 0.5);
       ("p90_s", q 0.9);
       ("p99_s", q 0.99);
       ("error_rate", rate errors answered);
       ("shed_rate", rate shed answered);
       ("degraded_rate", rate (Window.total w.w_degraded ~horizon_s) answered);
       ("cache_hit_rate", rate hits (hits + misses));
       ("slow", Json.Int (Window.total w.w_slow ~horizon_s));
       ("worker_restarts", Json.Int (Window.total w.w_restarts ~horizon_s));
       ("strategies", Json.Obj strategies);
     ]
    @ slo)

let window_json t =
  match t.windows with
  | None -> Json.Null
  | Some w ->
      Json.Obj
        [
          ("10s", horizon_json t w ~horizon_s:10.0);
          ("60s", horizon_json t w ~horizon_s:60.0);
          ("300s", horizon_json t w ~horizon_s:300.0);
        ]

let stats_json t =
  Json.Obj
    [
      ("uptime_s", Json.Float (uptime_s t));
      ("started_unix_s", Json.Float t.started_unix_s);
      ("workers", Json.Int (Par.Service.domains t.service));
      ("queue_capacity", Json.Int (Par.Service.capacity t.service));
      ("queue_depth", Json.Int (Par.Service.depth t.service));
      ("degrade_above", Json.Int t.cfg.degrade_above);
      ("in_flight", Json.Int (Par.Service.in_flight t.service));
      ("connections_accepted", Json.Int (Atomic.get t.c_accepted));
      ( "connections_active",
        Json.Int (with_lock t.conns_lock (fun () -> Hashtbl.length t.conns)) );
      ("requests", Json.Int (Atomic.get t.c_requests));
      ("eval_ok", Json.Int (Atomic.get t.c_eval_ok));
      ("eval_error", Json.Int (Atomic.get t.c_eval_error));
      ("shed", Json.Int (Atomic.get t.c_shed));
      ("degraded_under_load", Json.Int (Atomic.get t.c_degraded_load));
      ("worker_failures", Json.Int (Par.Service.failures t.service));
      ("worker_restarts", Json.Int (Par.Service.restarts t.service));
      ( "prepare_cache",
        let k = Prepare.Cache.counters t.plan_cache in
        Json.Obj
          [
            ("capacity", Json.Int (Prepare.Cache.capacity t.plan_cache));
            ("hits", Json.Int k.Prepare.Cache.hits);
            ("misses", Json.Int k.Prepare.Cache.misses);
            ("evictions", Json.Int k.Prepare.Cache.evictions);
            ("entries", Json.Int k.Prepare.Cache.entries);
            ( "hit_rate",
              match
                Stats.hit_rate ~hits:k.Prepare.Cache.hits
                  ~queries:(k.Prepare.Cache.hits + k.Prepare.Cache.misses)
              with
              | Some r -> Json.Float r
              | None -> Json.Null );
          ] );
      ("window", window_json t);
      ( "chaos",
        if not (Chaos.armed ()) then Json.Null
        else
          Json.Obj
            ([
               ( "spec",
                 match Chaos.spec () with
                 | Some sp -> Json.Str (Chaos.render_spec sp)
                 | None -> Json.Null );
               ("injections", Json.Int (Chaos.injections ()));
             ]
            @
            match Chaos.sites () with
            | Some sites ->
                [ ("sites", Json.List (List.map (fun s -> Json.Str s) sites)) ]
            | None -> []) );
      ( "slow_query",
        match t.slowlog with
        | None -> Json.Null
        | Some sl ->
            Json.Obj
              [
                ("threshold_ms", Json.Float (Slowlog.threshold_s sl *. 1e3));
                ("logged", Json.Int (Slowlog.logged sl));
                ( "last_request_id",
                  match Atomic.get t.last_slow_rid with
                  | Some rid -> Json.Str rid
                  | None -> Json.Null );
              ] );
    ]

(* The OpenMetrics exposition: the process-wide registry snapshot plus
   this server's cumulative counters and rolling 60s gauges, and info
   metrics carrying the most recent request ids so a scrape can be
   joined against the trace and the slow-query log. *)
let openmetrics_text t =
  let registry = Openmetrics.of_metrics_json (Metrics.to_json ()) in
  let serve =
    [
      Openmetrics.Gauge ("probdb_serve_uptime_seconds", uptime_s t);
      Openmetrics.Gauge ("probdb_serve_started_unix_seconds", t.started_unix_s);
      Openmetrics.Counter
        ("probdb_serve_requests", float_of_int (Atomic.get t.c_requests));
      Openmetrics.Counter
        ("probdb_serve_eval_ok", float_of_int (Atomic.get t.c_eval_ok));
      Openmetrics.Counter
        ("probdb_serve_eval_error", float_of_int (Atomic.get t.c_eval_error));
      Openmetrics.Counter
        ("probdb_serve_shed", float_of_int (Atomic.get t.c_shed));
      Openmetrics.Counter
        ( "probdb_serve_degraded_under_load",
          float_of_int (Atomic.get t.c_degraded_load) );
      Openmetrics.Gauge
        ( "probdb_serve_queue_depth",
          float_of_int (Par.Service.depth t.service) );
    ]
  in
  let windowed =
    match t.windows with
    | None -> []
    | Some w ->
        let h = 60.0 in
        let lat = Window.snapshot w.w_latency ~horizon_s:h in
        let answered = Window.total w.w_answered ~horizon_s:h in
        let g name v = Openmetrics.Gauge ("probdb_serve_1m_" ^ name, v) in
        let q p =
          if Histogram.count lat = 0 then []
          else [ g (Printf.sprintf "p%.0f_seconds" (p *. 100.0)) (Histogram.quantile lat p) ]
        in
        [ g "qps" (Window.rate w.w_answered ~horizon_s:h) ]
        @ q 0.5 @ q 0.9 @ q 0.99
        @ (if answered = 0 then []
           else
             let frac c =
               float_of_int (Window.total c ~horizon_s:h)
               /. float_of_int answered
             in
             [
               g "error_rate" (frac w.w_errors);
               g "shed_rate" (frac w.w_shed);
               g "degraded_rate" (frac w.w_degraded);
             ])
  in
  let rids =
    (match Atomic.get t.last_rid with
    | Some rid ->
        [ Openmetrics.Info ("probdb_last_request", [ ("request_id", rid) ]) ]
    | None -> [])
    @
    match Atomic.get t.last_slow_rid with
    | Some rid ->
        [ Openmetrics.Info ("probdb_last_slow_request", [ ("request_id", rid) ]) ]
    | None -> []
  in
  Openmetrics.render (registry @ serve @ windowed @ rids)

let capture_trace t ~ms =
  with_lock t.trace_lock (fun () ->
      Trace.enable ();
      Fun.protect ~finally:Trace.disable (fun () ->
          Thread.delay (float_of_int ms /. 1000.0));
      let doc = Trace.to_chrome_json () in
      Trace.clear ();
      doc)

(* ---------- admission control ---------- *)

let submit_eval t conn ~id (r : Protocol.eval_request) =
  (* Backpressure verdict at admission: past the watermark the request is
     still served, but with [force_degrade] — a bounded-cost certified
     (ε,δ) answer instead of queued exact work. A request that demanded
     exactness with [no_degrade] is exempt (docs/SERVING.md): it keeps
     its exact evaluation and is not counted as degraded-under-load. *)
  let depth_now = Par.Service.depth t.service in
  let degrade_load =
    t.cfg.degrade_above > 0
    && depth_now >= t.cfg.degrade_above
    && not r.Protocol.no_degrade
  in
  (* Correlation id: honour the client's, mint one otherwise. Telemetry
     off ([--no-telemetry], the overhead-bench baseline) skips minting but
     still propagates a client-supplied id. *)
  let rid =
    match r.Protocol.request_id with
    | Some _ as rid -> rid
    | None -> if t.cfg.telemetry then Some (Request_id.mint ()) else None
  in
  pending_incr conn;
  let job =
    {
      j_conn = conn;
      j_id = id;
      j_req = r;
      j_rid = rid;
      j_degrade_load = degrade_load;
      j_enqueued_s = Clock.now ();
      j_done = Atomic.make false;
    }
  in
  (match rid with
  | Some rid -> Trace.instant ~cat:"request" ("req:" ^ rid ^ ":admitted")
  | None -> ());
  match Par.Service.try_submit t.service job with
  | `Accepted depth ->
      Metrics.set m_queue_depth (float_of_int depth);
      if degrade_load then begin
        Atomic.incr t.c_degraded_load;
        Metrics.incr m_degraded_load
      end
  | `Overloaded ->
      Atomic.incr t.c_shed;
      Metrics.incr m_shed;
      (match t.windows with Some w -> Window.incr w.w_shed | None -> ());
      (match rid with
      | Some rid -> Trace.instant ~cat:"request" ("req:" ^ rid ^ ":shed")
      | None -> ());
      ignore
        (reply t job
           (Protocol.response_error ?request_id:rid ~id
              (Protocol.Overloaded
                 {
                   depth = Par.Service.depth t.service;
                   capacity = Par.Service.capacity t.service;
                 })))
  | `Closed ->
      ignore
        (reply t job
           (Protocol.response_error ?request_id:rid ~id Protocol.Shutting_down))

(* ---------- lifecycle (mutually recursive with request handling:
   the [shutdown] op stops the server that is handling it) ---------- *)

let rec handle_request t conn line =
  match Protocol.parse line with
  | Error (id, msg) ->
      send conn (Protocol.response_error ~id (Protocol.Bad_request msg))
  | Ok { Protocol.id; op } -> (
      Atomic.incr t.c_requests;
      Metrics.incr m_requests;
      match op with
      | Protocol.Ping ->
          send conn
            (Protocol.response_ok ~id (Json.Obj [ ("pong", Json.Bool true) ]))
      | Protocol.Stats -> send conn (Protocol.response_ok ~id (stats_json t))
      | Protocol.Metrics { openmetrics = false } ->
          send conn (Protocol.response_ok ~id (Metrics.to_json ()))
      | Protocol.Metrics { openmetrics = true } ->
          send conn
            (Protocol.response_ok ~id
               (Json.Obj [ ("openmetrics", Json.Str (openmetrics_text t)) ]))
      | Protocol.Trace { ms } ->
          send conn (Protocol.response_ok ~id (capture_trace t ~ms))
      | Protocol.Shutdown { drain } ->
          send conn
            (Protocol.response_ok ~id
               (Json.Obj
                  [ ("stopping", Json.Str (if drain then "drain" else "now")) ]));
          (* stop from a fresh thread: [stop] joins reader threads and
             workers, including the ones serving this very request *)
          ignore
            (Thread.create
               (fun mode -> try stop_ ~mode t with _ -> ())
               (if drain then `Drain else `Now))
      | Protocol.Eval r ->
          if Atomic.get t.state <> Running then
            send conn (Protocol.response_error ~id Protocol.Shutting_down)
          else submit_eval t conn ~id r)

and reader t conn =
  let rec loop () =
    match
      (* chaos site: the read syscall reporting a peer reset — handled
         exactly like EOF, the connection is torn down cleanly *)
      if Chaos.fire ~site:"serve.read" then
        raise (Unix.Unix_error (Unix.ECONNRESET, "read", ""))
      else input_line conn.ic
    with
    | line ->
        (if String.trim line <> "" then
           try handle_request t conn line
           with exn ->
             (* a request that blew past every typed channel (e.g.
                Stack_overflow on pathological input) must not kill the
                reader: answer [internal] and keep reading *)
             send conn
               (Protocol.response_error ~id:Json.Null
                  (Protocol.Internal (Printexc.to_string exn))));
        loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  (* the connection is unregistered and its fd closed no matter how the
     loop ends; in-flight responses flush first *)
  Fun.protect
    ~finally:(fun () ->
      pending_wait conn;
      close_conn t conn)
    loop

and accept_loop ?(backoff_s = 0.001) t =
  if Atomic.get t.state <> Running then ()
  else
    (* chaos site: a transient accept failure (fd exhaustion, an
       interrupted syscall) raised before the real accept so no actual
       connection is consumed by the injection *)
    match
      if Chaos.fire ~site:"serve.accept" then
        raise (Unix.Unix_error (Unix.EMFILE, "accept", ""))
      else Unix.accept t.listen_fd
    with
    | fd, _addr when Atomic.get t.state <> Running ->
        (* the wake-up knock from [stop_], or a client racing the stop *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _addr ->
        Atomic.incr t.c_accepted;
        Metrics.incr m_connections;
        let conn =
          {
            cid = Atomic.fetch_and_add t.next_cid 1;
            fd;
            ic = Unix.in_channel_of_descr fd;
            wlock = Mutex.create ();
            plock = Mutex.create ();
            pdone = Condition.create ();
            pending = 0;
            closed = false;
          }
        in
        with_lock t.conns_lock (fun () -> Hashtbl.replace t.conns conn.cid conn);
        ignore (Thread.create (fun () -> reader t conn) ());
        accept_loop t
    | exception
        Unix.Unix_error
          ( (Unix.EMFILE | Unix.ENFILE | Unix.EINTR | Unix.ECONNABORTED),
            _,
            _ )
      when Atomic.get t.state = Running ->
        (* transient errno: back off (1ms doubling to a 100ms cap, reset
           by the next successful accept) and keep serving — fd
           exhaustion and interrupted syscalls must not kill the server *)
        Thread.delay backoff_s;
        accept_loop ~backoff_s:(Float.min 0.1 (backoff_s *. 2.0)) t
    | exception Unix.Unix_error _ ->
        (* the listening socket was closed by [stop], or accept failed
           terminally; either way the accept loop is done *)
        ()

and stop_ ~mode t =
  with_lock t.stop_lock @@ fun () ->
  if not t.stopped then begin
    Atomic.set t.state Stopping;
    (* Waking a thread blocked in [accept] is the subtle part: closing the
       fd does not interrupt it on Linux. [shutdown] wakes it on most
       systems; the loopback knock covers the rest — the accept loop sees
       [Stopping] and exits either way. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           try
             Unix.connect fd
               (Unix.ADDR_INET
                  (Unix.inet_addr_of_string t.cfg.host, t.bound_port))
           with Unix.Unix_error _ -> ())
     with Unix.Unix_error _ | Failure _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match mode with `Now -> Guard.cancel t.guard | `Drain -> ());
    let dropped =
      Par.Service.shutdown
        ~drain:(match mode with `Drain -> true | `Now -> false)
        t.service
    in
    List.iter
      (fun job ->
        ignore
          (reply t job
             (Protocol.response_error ?request_id:job.j_rid ~id:job.j_id
                Protocol.Shutting_down)))
      dropped;
    let conns =
      with_lock t.conns_lock (fun () ->
          Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
    in
    List.iter (fun c -> close_conn t c) conns;
    (match t.om_listener with
    | Some l ->
        Openmetrics.stop l;
        t.om_listener <- None
    | None -> ());
    (match t.slowlog with Some sl -> Slowlog.close sl | None -> ());
    t.stopped <- true
  end

let stop ?(mode = `Drain) t = stop_ ~mode t

let wait t =
  let rec loop () =
    let stopped = with_lock t.stop_lock (fun () -> t.stopped) in
    if not stopped then begin
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let start ?(config = default_config) db =
  (* never die on a client that went away mid-write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Err.raise_ (Err.Io { path = config.host; message = "not an IP address" })
  in
  (match Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port)) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Err.raise_
        (Err.Io
           {
             path = Printf.sprintf "%s:%d" config.host config.port;
             message = Unix.error_message e;
           }));
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  (* tie the knot: the worker handler needs [t], which holds the service *)
  let t_cell = ref None in
  let stall_deadline_s =
    if config.worker_stall_deadline_ms > 0 then
      Some (float_of_int config.worker_stall_deadline_ms /. 1000.0)
    else None
  in
  let service =
    Par.Service.start ~domains:(max 1 config.workers) ?stall_deadline_s
      ~on_doom:(fun job ->
        (* a worker crashed or stalled mid-job: the request is answered
           typed [internal] here, and the worker pool has already spawned
           a replacement *)
        match !t_cell with
        | Some t ->
            if
              reply t job
                (Protocol.response_error ?request_id:job.j_rid ~id:job.j_id
                   (Protocol.Internal
                      "worker lost (crash or stall); request abandoned, \
                       worker restarted"))
            then begin
              Atomic.incr t.c_eval_error;
              (* the doomed request still gets its full telemetry trail:
                 error window, trace instant, slow-query record — all
                 keyed by the same correlation id as the typed reply *)
              let stats = Stats.create () in
              stats.Stats.query <- Some job.j_req.Protocol.query;
              stats.Stats.request_id <- job.j_rid;
              record_outcome t job ~stats ~degraded_load:false
                ~queue_wait_s:0.0 ~verdict:"doomed" ~ok:false
            end
        | None -> ())
      ~on_restart:(fun () ->
        Metrics.incr m_worker_restarts;
        match !t_cell with
        | Some { windows = Some w; _ } -> Window.incr w.w_restarts
        | _ -> ())
      ~capacity:(max 1 config.queue_capacity)
      (fun job ->
        match !t_cell with Some t -> run_job t job | None -> ())
  in
  let guard = Guard.create () in
  (* every worker domain shares one compiled-plan cache; an explicitly
     configured cache (e.g. capacity 0 for [--no-plan-cache]) is honoured,
     otherwise the default-capacity cache is created here once *)
  let plan_cache =
    match config.engine.E.plan_cache with
    | Some c -> c
    | None -> Prepare.Cache.create_default ()
  in
  let req_base, base_degrade = engine_base_of config ~guard ~plan_cache in
  let slowlog =
    match config.slow_query_ms with
    | Some threshold_ms ->
        Some (Slowlog.create ?path:config.slow_query_log ~threshold_ms ())
    | None -> None
  in
  let t =
    {
      cfg = config;
      db;
      listen_fd;
      bound_port;
      guard;
      plan_cache;
      req_base;
      base_degrade;
      service;
      state = Atomic.make Running;
      started_s = Clock.now ();
      started_unix_s = Unix.gettimeofday ();
      windows = (if config.telemetry then Some (make_windows ()) else None);
      slowlog;
      om_listener = None;
      last_rid = Atomic.make None;
      last_slow_rid = Atomic.make None;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      accept_thread = None;
      stop_lock = Mutex.create ();
      stopped = false;
      trace_lock = Mutex.create ();
      next_cid = Atomic.make 0;
      c_accepted = Atomic.make 0;
      c_requests = Atomic.make 0;
      c_eval_ok = Atomic.make 0;
      c_eval_error = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_degraded_load = Atomic.make 0;
    }
  in
  t_cell := Some t;
  (match config.openmetrics_port with
  | Some p ->
      t.om_listener <-
        Some
          (Openmetrics.serve_http ~host:config.host ~port:p ~body:(fun () ->
               openmetrics_text t))
  | None -> ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port

let openmetrics_port t = Option.map Openmetrics.om_port t.om_listener
