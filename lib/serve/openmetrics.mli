(** OpenMetrics / Prometheus text exposition without an HTTP dependency:
    a line-format renderer plus a minimal single-resource HTTP listener
    for [probdb serve --openmetrics PORT]. *)

type metric =
  | Counter of string * float  (** rendered with the [_total] suffix *)
  | Gauge of string * float
  | Info of string * (string * string) list
      (** rendered as [name_info{k="v",...} 1] — used to expose strings
          like the last request id *)

val sanitize_name : string -> string
(** Map to the Prometheus name charset ([a-zA-Z0-9_:], non-digit
    first character); dots become underscores. *)

val render : metric list -> string
(** The text exposition: [# TYPE] comment plus sample line per metric,
    terminated by [# EOF]. *)

val of_metrics_json : Probdb_obs.Json.t -> metric list
(** Project a {!Probdb_obs.Metrics.to_json} snapshot into flat metrics:
    counters and gauges map directly; each histogram becomes
    [name_count]/[name_sum] counters and [name_p50]/[name_p90]/[name_p99]
    gauges. *)

type listener

val om_port : listener -> int
(** The bound port (useful when created with port [0]). *)

val serve_http : host:string -> port:int -> body:(unit -> string) -> listener
(** Start an accept thread answering every HTTP request on
    [host:port] with [200 OK] and a fresh [body ()] as
    [application/openmetrics-text]. @raise Unix.Unix_error if the port
    cannot be bound. *)

val stop : listener -> unit
(** Close the listening socket and join the accept thread. *)
