module Json = Probdb_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* both channels wrap [t.fd]: flush, then close the descriptor exactly
       once — closing each channel would close the fd twice, and the second
       close can hit a descriptor number already reused by another thread *)
    (try flush t.oc with Sys_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = input_line t.ic

let call t fields =
  let fields =
    if List.mem_assoc "id" fields then fields
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      ("id", Json.Int id) :: fields
    end
  in
  send_line t (Json.to_string (Json.Obj fields));
  match Json.of_string (recv_line t) with
  | Ok j -> j
  | Error msg -> failwith ("serve client: bad response JSON: " ^ msg)

let eval ?(fields = []) t query =
  call t (("op", Json.Str "eval") :: ("query", Json.Str query) :: fields)

let ok resp = match Json.member "ok" resp with Some (Json.Bool b) -> b | _ -> false

let ping t = ok (call t [ ("op", Json.Str "ping") ])

let result resp = Option.value ~default:Json.Null (Json.member "result" resp)

let error_class resp =
  match Json.member "error" resp with
  | Some err -> (
      match Json.member "class" err with Some (Json.Str s) -> Some s | _ -> None)
  | None -> None
