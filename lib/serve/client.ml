module Json = Probdb_obs.Json
module Clock = Probdb_obs.Clock

exception Connection_closed

let ignore_sigpipe () =
  (* a write to a dead peer must surface as EPIPE (mapped to
     [Connection_closed]), not kill the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* Write one line to the descriptor, looping on short writes (one
   [single_write] is never assumed to send everything) and retrying
   EINTR; disconnect-class errnos become the typed [Connection_closed]. *)
let write_line_string fd line =
  let buf = Bytes.unsafe_of_string (line ^ "\n") in
  let len = Bytes.length buf in
  let rec go pos len =
    if len > 0 then begin
      let n =
        try Unix.single_write fd buf pos len with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | Unix.Unix_error
            ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED
              | Unix.ESHUTDOWN | Unix.EBADF ),
              _,
              _ ) ->
            raise Connection_closed
      in
      go (pos + n) (len - n)
    end
  in
  go 0 len

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable next_id : int;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") port =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  { fd; ic = Unix.in_channel_of_descr fd; next_id = 0; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* writes are unbuffered (straight to [t.fd]), so nothing to flush;
       close the descriptor exactly once — closing [ic] too would close
       the fd twice, and the second close can hit a descriptor number
       already reused by another thread *)
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let send_line t line = write_line_string t.fd line

let recv_line t =
  try input_line t.ic
  with End_of_file | Sys_error _ -> raise Connection_closed

let call t fields =
  let fields =
    if List.mem_assoc "id" fields then fields
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      ("id", Json.Int id) :: fields
    end
  in
  send_line t (Json.to_string (Json.Obj fields));
  match Json.of_string (recv_line t) with
  | Ok j -> j
  | Error msg -> failwith ("serve client: bad response JSON: " ^ msg)

let eval ?(fields = []) t query =
  call t (("op", Json.Str "eval") :: ("query", Json.Str query) :: fields)

let ok resp = match Json.member "ok" resp with Some (Json.Bool b) -> b | _ -> false

let ping t = ok (call t [ ("op", Json.Str "ping") ])

let result resp = Option.value ~default:Json.Null (Json.member "result" resp)

let request_id resp =
  match Json.member "request_id" resp with
  | Some (Json.Str s) -> Some s
  | _ -> None

let error_class resp =
  match Json.member "error" resp with
  | Some err -> (
      match Json.member "class" err with Some (Json.Str s) -> Some s | _ -> None)
  | None -> None

(* ---------- resilient client ---------- *)

module Resilient = struct
  module Rng = Probdb_par.Par.Rng

  type policy = {
    attempt_timeout_s : float;
    max_attempts : int;
    base_backoff_s : float;
    max_backoff_s : float;
    retry_budget_s : float;
    breaker_threshold : int;
    breaker_cooldown_s : float;
    seed : int;
  }

  let default_policy =
    {
      attempt_timeout_s = 2.0;
      max_attempts = 4;
      base_backoff_s = 0.01;
      max_backoff_s = 0.5;
      retry_budget_s = 2.0;
      breaker_threshold = 5;
      breaker_cooldown_s = 1.0;
      seed = 0;
    }

  type failure = Breaker_open | Gave_up of string

  exception Timeout

  (* One live connection: the descriptor plus the residue of reads past
     the last extracted line (responses are read with [select] deadlines,
     so a read may return a line and a half). *)
  type rc = { rfd : Unix.file_descr; rbuf : Buffer.t }

  type t = {
    host : string;
    port : int;
    policy : policy;
    rng : Rng.t;
    mutable conn : rc option;
    mutable next_id : int;
    mutable consec_failures : int;
    mutable breaker_open_until : float;  (* Clock.now deadline; 0 = closed *)
    mutable c_attempts : int;
    mutable c_retries : int;
    mutable c_timeouts : int;
    mutable c_breaker_opens : int;
    mutable closed : bool;
  }

  let create ?(policy = default_policy) ?(host = "127.0.0.1") port =
    ignore_sigpipe ();
    {
      host;
      port;
      policy;
      rng = Rng.make ~seed:policy.seed ~stream:0;
      conn = None;
      next_id = 0;
      consec_failures = 0;
      breaker_open_until = 0.0;
      c_attempts = 0;
      c_retries = 0;
      c_timeouts = 0;
      c_breaker_opens = 0;
      closed = false;
    }

  let drop_conn t =
    match t.conn with
    | Some rc ->
        t.conn <- None;
        (try Unix.close rc.rfd with Unix.Unix_error _ -> ())
    | None -> ()

  let close t =
    if not t.closed then begin
      t.closed <- true;
      drop_conn t
    end

  let ensure_conn t =
    match t.conn with
    | Some rc -> rc
    | None ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (match
           Unix.connect fd
             (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port))
         with
        | () -> ()
        | exception e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e);
        let rc = { rfd = fd; rbuf = Buffer.create 256 } in
        t.conn <- Some rc;
        rc

  (* Read one line with an absolute deadline: poll the descriptor with
     [select] for the remaining time, never block past it. *)
  let recv_line_by rc ~deadline =
    let chunk = Bytes.create 4096 in
    let rec go () =
      let s = Buffer.contents rc.rbuf in
      match String.index_opt s '\n' with
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear rc.rbuf;
          Buffer.add_substring rc.rbuf s (i + 1) (String.length s - i - 1);
          line
      | None ->
          let remaining = deadline -. Clock.now () in
          if remaining <= 0.0 then raise Timeout;
          let readable =
            match Unix.select [ rc.rfd ] [] [] remaining with
            | [], _, _ -> false
            | _ -> true
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
          in
          if not readable then go ()
          else begin
            let n =
              try Unix.read rc.rfd chunk 0 (Bytes.length chunk) with
              | Unix.Unix_error (Unix.EINTR, _, _) -> -1
              | Unix.Unix_error
                  ((Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE), _, _) ->
                  raise Connection_closed
            in
            if n = 0 then raise Connection_closed;
            if n > 0 then Buffer.add_subbytes rc.rbuf chunk 0 n;
            go ()
          end
    in
    go ()

  (* Which ops may be resent: everything read-only or deterministic on
     the server — [shutdown] is the one op whose blind resend could act
     twice, and an unknown op is conservatively not retried. *)
  let idempotent fields =
    match List.assoc_opt "op" fields with
    | None | Some (Json.Str ("eval" | "ping" | "stats" | "metrics" | "trace"))
      ->
        true
    | Some _ -> false

  (* A typed response the server explicitly asks the client to retry. *)
  let retryable_response resp =
    match error_class resp with Some "overloaded" -> true | _ -> false

  type attempt_outcome = Resp of Json.t | Transport of string

  let one_attempt t fields =
    t.c_attempts <- t.c_attempts + 1;
    match
      let rc = ensure_conn t in
      let id = t.next_id in
      t.next_id <- id + 1;
      let fields =
        if List.mem_assoc "id" fields then fields
        else ("id", Json.Int id) :: fields
      in
      write_line_string rc.rfd (Json.to_string (Json.Obj fields));
      let deadline = Clock.now () +. t.policy.attempt_timeout_s in
      recv_line_by rc ~deadline
    with
    | line -> (
        match Json.of_string line with
        | Ok j -> Resp j
        | Error msg ->
            (* a torn or corrupt frame leaves the stream unusable *)
            drop_conn t;
            Transport ("bad response JSON: " ^ msg))
    | exception Timeout ->
        (* the response may still be in flight: the connection's stream
           position is unknown, so it cannot be reused *)
        t.c_timeouts <- t.c_timeouts + 1;
        drop_conn t;
        Transport "attempt timeout"
    | exception Connection_closed ->
        drop_conn t;
        Transport "connection closed"
    | exception Unix.Unix_error (e, fn, _) ->
        drop_conn t;
        Transport (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | exception Sys_error msg ->
        drop_conn t;
        Transport msg

  let note_transport_failure t =
    t.consec_failures <- t.consec_failures + 1;
    if
      t.consec_failures >= t.policy.breaker_threshold
      && Clock.now () >= t.breaker_open_until
    then begin
      t.c_breaker_opens <- t.c_breaker_opens + 1;
      t.breaker_open_until <- Clock.now () +. t.policy.breaker_cooldown_s
    end

  let call t fields =
    if t.closed then invalid_arg "Serve.Client.Resilient.call: closed";
    if Clock.now () < t.breaker_open_until then Error Breaker_open
    else begin
      (* past the cooldown the breaker is half-open: this call is the
         probe — success closes the breaker, another transport failure
         re-opens it for a fresh cooldown (in [note_transport_failure],
         [consec_failures] is still past the threshold) *)
      let retry_ok = idempotent fields in
      let budget = ref t.policy.retry_budget_s in
      let prev_backoff = ref t.policy.base_backoff_s in
      (* decorrelated jitter: sleep ~ U(base, 3 * previous sleep), capped;
         drawn from the client's seeded stream so runs are replayable *)
      let backoff () =
        let hi = Float.max t.policy.base_backoff_s (3.0 *. !prev_backoff) in
        let d =
          t.policy.base_backoff_s
          +. Rng.float t.rng (hi -. t.policy.base_backoff_s)
        in
        let d = Float.min d (Float.min t.policy.max_backoff_s !budget) in
        prev_backoff := d;
        budget := !budget -. d;
        if d > 0.0 then Unix.sleepf d
      in
      let rec go attempt =
        let may_retry =
          retry_ok && attempt < t.policy.max_attempts && !budget > 0.0
        in
        match one_attempt t fields with
        | Resp resp when retryable_response resp && may_retry ->
            (* the transport worked — the server answered [overloaded] —
               so the breaker stays closed; back off and try again *)
            t.consec_failures <- 0;
            t.c_retries <- t.c_retries + 1;
            backoff ();
            go (attempt + 1)
        | Resp resp ->
            t.consec_failures <- 0;
            t.breaker_open_until <- 0.0;
            Ok resp
        | Transport msg ->
            note_transport_failure t;
            if may_retry && Clock.now () >= t.breaker_open_until then begin
              t.c_retries <- t.c_retries + 1;
              backoff ();
              go (attempt + 1)
            end
            else Error (Gave_up msg)
      in
      go 1
    end

  let eval ?(fields = []) t query =
    call t (("op", Json.Str "eval") :: ("query", Json.Str query) :: fields)

  let ping t =
    match call t [ ("op", Json.Str "ping") ] with
    | Ok resp -> ok resp
    | Error _ -> false

  let attempts t = t.c_attempts
  let retries t = t.c_retries
  let timeouts t = t.c_timeouts
  let breaker_opens t = t.c_breaker_opens

  let breaker_is_open t = Clock.now () < t.breaker_open_until
end
