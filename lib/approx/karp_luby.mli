(** The Karp–Luby FPRAS for DNF probability.

    Given a monotone DNF [F = C₁ ∨ ... ∨ C_m] over independent variables —
    exactly the shape of a UCQ's lineage — the estimator samples a clause
    [Cᵢ] with probability proportional to its weight [wᵢ = Π p(v)], then a
    world conditioned on [Cᵢ] being true, and averages [1/N(θ)] where
    [N(θ)] is the number of clauses the world satisfies:

    [p(F) = (Σ wᵢ) · E[1/N]].

    Unlike naive Monte Carlo, the relative error is bounded uniformly,
    giving an FPRAS — the classical answer to #P-hard PQE for UCQs
    mentioned alongside Sec. 6's bounds. *)

type estimate = {
  mean : float;
  std_error : float;
  samples : int;
  union_weight : float;  (** Σᵢ wᵢ, an upper bound on p(F) *)
}

val half_width_95 : estimate -> float

val normal_quantile : float -> float
(** Standard normal inverse CDF (Acklam's approximation, error < 1.2e-9).
    Raises [Invalid_argument] outside (0,1). Used to turn a standard error
    into a [(1-δ)]-confidence interval at arbitrary δ. *)

val required_samples : eps:float -> delta:float -> clauses:int -> int
(** [required_samples ~eps ~delta ~clauses] is the classical Karp–Luby
    sample bound [⌈4m·ln(2/δ)/ε²⌉] for an (ε,δ)-approximation of a DNF
    with [m] clauses. Raises [Invalid_argument] on non-positive [eps] or
    [clauses], or [delta] outside (0,1). *)

val confidence_interval : delta:float -> estimate -> float * float
(** [(lo, hi)] — the normal-approximation [(1-δ)]-confidence interval
    around [mean], clamped to [0,1]. *)

val estimate :
  ?seed:int ->
  ?guard:Probdb_guard.Guard.t ->
  samples:int ->
  prob:(int -> float) ->
  int list list ->
  estimate
(** [estimate ~prob clauses]: clauses are positive variable lists. Raises
    [Invalid_argument] on an empty clause list with no clauses... an empty
    DNF has probability 0 and returns the zero estimate; probabilities must
    be standard. [guard] (default {!Probdb_guard.Guard.unlimited}) is
    polled once per sample (site ["kl.sample"]). *)

val batch_size : int
(** Samples per parallel batch in {!estimate_par} (a power of two). *)

val estimate_par :
  ?seed:int ->
  ?guard:Probdb_guard.Guard.t ->
  ?pool:Probdb_par.Par.pool ->
  samples:int ->
  prob:(int -> float) ->
  int list list ->
  estimate
(** Pool-parallel Karp–Luby. Samples are drawn in {!batch_size}-sized
    batches; batch [b] uses the dedicated RNG stream
    [Par.Rng.make ~seed ~stream:b] and partial sums are reduced in batch
    order, so the returned estimate depends only on [(seed, samples)] — it
    is bit-identical for any pool size (though it differs from the
    sequential {!estimate}, which draws one global stream). [guard] polling
    is amortised ({!Probdb_guard.Guard.tick}, site ["kl.sample"]). Without
    [pool] the batches run on the calling domain. *)

val exact_via_sampling_identity : prob:(int -> float) -> int list list -> float
(** [Σ_θ P(θ)·1] via the identity [p(F) = Σᵢ wᵢ · E[1/N]], computed exactly
    by enumerating the variables of the DNF — a slow oracle used in tests
    (≤ 20 variables). *)
