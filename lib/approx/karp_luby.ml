module Guard = Probdb_guard.Guard
module Par = Probdb_par.Par

type estimate = { mean : float; std_error : float; samples : int; union_weight : float }

let half_width_95 e = 1.96 *. e.std_error

(* Acklam's rational approximation to the standard normal quantile
   (inverse CDF), accurate to ~1.15e-9 over (0,1). *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Karp_luby.normal_quantile: p must lie in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let tail q sign =
    let u = sqrt (-2.0 *. log q) in
    sign
    *. (((((c.(0) *. u +. c.(1)) *. u +. c.(2)) *. u +. c.(3)) *. u +. c.(4)) *. u
        +. c.(5))
    /. ((((d.(0) *. u +. d.(1)) *. u +. d.(2)) *. u +. d.(3)) *. u +. 1.0)
  in
  if p < p_low then tail p 1.0
  else if p > 1.0 -. p_low then tail (1.0 -. p) (-1.0)
  else begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
     +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
        +. 1.0)
  end

let required_samples ~eps ~delta ~clauses =
  if not (eps > 0.0) then invalid_arg "Karp_luby.required_samples: eps must be > 0";
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Karp_luby.required_samples: delta must lie in (0,1)";
  if clauses <= 0 then invalid_arg "Karp_luby.required_samples: need clauses > 0";
  let m = float_of_int clauses in
  let n = 4.0 *. m *. log (2.0 /. delta) /. (eps *. eps) in
  int_of_float (Float.ceil n)

let confidence_interval ~delta e =
  let z = normal_quantile (1.0 -. (delta /. 2.0)) in
  let h = z *. e.std_error in
  (Float.max 0.0 (e.mean -. h), Float.min 1.0 (e.mean +. h))

let clause_weight prob clause = List.fold_left (fun acc v -> acc *. prob v) 1.0 clause

let all_vars clauses = List.concat clauses |> List.sort_uniq Int.compare

let satisfies assignment clause = List.for_all assignment clause

let estimate ?(seed = 42) ?(guard = Guard.unlimited) ~samples ~prob clauses =
  if samples <= 0 then invalid_arg "Karp_luby.estimate: need at least one sample";
  match clauses with
  | [] -> { mean = 0.0; std_error = 0.0; samples; union_weight = 0.0 }
  | _ ->
      let clauses = Array.of_list clauses in
      let weights = Array.map (clause_weight prob) clauses in
      let union_weight = Array.fold_left ( +. ) 0.0 weights in
      if union_weight = 0.0 then
        { mean = 0.0; std_error = 0.0; samples; union_weight }
      else begin
        let vars = all_vars (Array.to_list clauses) in
        List.iter
          (fun v ->
            let p = prob v in
            if p < 0.0 || p > 1.0 then
              invalid_arg "Karp_luby.estimate: non-standard probability")
          vars;
        let cumulative = Array.make (Array.length weights) 0.0 in
        let _ =
          Array.fold_left
            (fun (i, acc) w ->
              let acc = acc +. w in
              cumulative.(i) <- acc;
              (i + 1, acc))
            (0, 0.0) weights
        in
        let rng = Random.State.make [| seed |] in
        let pick_clause () =
          let r = Random.State.float rng union_weight in
          let rec find i = if r <= cumulative.(i) || i = Array.length cumulative - 1 then i else find (i + 1) in
          find 0
        in
        (* Dense arrays indexed by variable id: the sampler's inner loops
           run [samples * total-literals] times, so per-lookup hashing is
           the dominant cost at FPRAS sample counts. *)
        let vmax = List.fold_left max 0 vars in
        let clause_arr = Array.map Array.of_list clauses in
        let var_arr = Array.of_list vars in
        let probs = Array.map prob var_arr in
        let assignment = Array.make (vmax + 1) false in
        let stamped = Array.make (vmax + 1) (-1) in
        let sum = ref 0.0 and sum_sq = ref 0.0 in
        for s = 1 to samples do
          Guard.poll guard ~site:"kl.sample";
          let i = pick_clause () in
          Array.iter
            (fun v ->
              assignment.(v) <- true;
              stamped.(v) <- s)
            clause_arr.(i);
          Array.iteri
            (fun j v ->
              if stamped.(v) <> s then
                assignment.(v) <- Random.State.float rng 1.0 < probs.(j))
            var_arr;
          let n = ref 0 in
          Array.iter
            (fun c ->
              let sat = ref true in
              let k = Array.length c in
              let j = ref 0 in
              while !sat && !j < k do
                if not assignment.(c.(!j)) then sat := false;
                incr j
              done;
              if !sat then incr n)
            clause_arr;
          let z = 1.0 /. float_of_int !n in
          sum := !sum +. z;
          sum_sq := !sum_sq +. (z *. z)
        done;
        let m = float_of_int samples in
        let mean_z = !sum /. m in
        let var_z = Float.max 0.0 ((!sum_sq /. m) -. (mean_z *. mean_z)) in
        { mean = union_weight *. mean_z;
          std_error = union_weight *. sqrt (var_z /. m);
          samples;
          union_weight }
      end

(* ---------- parallel estimator ---------- *)

let batch_size = 1024

let estimate_par ?(seed = 42) ?(guard = Guard.unlimited) ?pool ~samples ~prob clauses =
  if samples <= 0 then invalid_arg "Karp_luby.estimate_par: need at least one sample";
  match clauses with
  | [] -> { mean = 0.0; std_error = 0.0; samples; union_weight = 0.0 }
  | _ ->
      let clauses = Array.of_list clauses in
      let weights = Array.map (clause_weight prob) clauses in
      let union_weight = Array.fold_left ( +. ) 0.0 weights in
      if union_weight = 0.0 then
        { mean = 0.0; std_error = 0.0; samples; union_weight }
      else begin
        let vars = all_vars (Array.to_list clauses) in
        List.iter
          (fun v ->
            let p = prob v in
            if p < 0.0 || p > 1.0 then
              invalid_arg "Karp_luby.estimate_par: non-standard probability")
          vars;
        let cumulative = Array.make (Array.length weights) 0.0 in
        let _ =
          Array.fold_left
            (fun (i, acc) w ->
              let acc = acc +. w in
              cumulative.(i) <- acc;
              (i + 1, acc))
            (0, 0.0) weights
        in
        let vmax = List.fold_left max 0 vars in
        let clause_arr = Array.map Array.of_list clauses in
        let var_arr = Array.of_list vars in
        let probs = Array.map prob var_arr in
        (* Samples are drawn in fixed-size batches; batch [b] consumes only
           RNG stream [b] and owns its scratch arrays, so the estimate is a
           pure function of [(seed, samples)] — identical for any pool size,
           including the sequential [domains = 1] default. *)
        let nbatches = (samples + batch_size - 1) / batch_size in
        let run_batch b =
          let rng = Par.Rng.make ~seed ~stream:b in
          let n_here = min batch_size (samples - (b * batch_size)) in
          let assignment = Array.make (vmax + 1) false in
          let stamped = Array.make (vmax + 1) (-1) in
          let polls = ref 0 in
          let sum = ref 0.0 and sum_sq = ref 0.0 in
          for s = 1 to n_here do
            Guard.tick guard ~site:"kl.sample" polls;
            let r = Par.Rng.float rng union_weight in
            let i =
              let rec find i =
                if r <= cumulative.(i) || i = Array.length cumulative - 1 then i
                else find (i + 1)
              in
              find 0
            in
            Array.iter
              (fun v ->
                assignment.(v) <- true;
                stamped.(v) <- s)
              clause_arr.(i);
            Array.iteri
              (fun j v ->
                if stamped.(v) <> s then
                  assignment.(v) <- Par.Rng.float rng 1.0 < probs.(j))
              var_arr;
            let n = ref 0 in
            Array.iter
              (fun c ->
                let sat = ref true in
                let k = Array.length c in
                let j = ref 0 in
                while !sat && !j < k do
                  if not assignment.(c.(!j)) then sat := false;
                  incr j
                done;
                if !sat then incr n)
              clause_arr;
            let z = 1.0 /. float_of_int !n in
            sum := !sum +. z;
            sum_sq := !sum_sq +. (z *. z)
          done;
          (!sum, !sum_sq)
        in
        let pool = match pool with Some p -> p | None -> Par.create ~domains:1 () in
        let sum, sum_sq =
          Par.map_reduce pool
            ~map:run_batch
            ~reduce:(fun (s, sq) (s', sq') -> (s +. s', sq +. sq'))
            ~init:(0.0, 0.0) nbatches
        in
        let m = float_of_int samples in
        let mean_z = sum /. m in
        let var_z = Float.max 0.0 ((sum_sq /. m) -. (mean_z *. mean_z)) in
        { mean = union_weight *. mean_z;
          std_error = union_weight *. sqrt (var_z /. m);
          samples;
          union_weight }
      end

let exact_via_sampling_identity ~prob clauses =
  match clauses with
  | [] -> 0.0
  | _ ->
      let vars = all_vars clauses in
      if List.length vars > 20 then
        invalid_arg "Karp_luby.exact_via_sampling_identity: too many variables";
      let assignment = Hashtbl.create 16 in
      let lookup v = Hashtbl.find assignment v in
      let rec go = function
        | [] ->
            let p =
              List.fold_left
                (fun acc v -> acc *. if lookup v then prob v else 1.0 -. prob v)
                1.0 vars
            in
            if List.exists (satisfies lookup) clauses then p else 0.0
        | v :: rest ->
            Hashtbl.replace assignment v true;
            let a = go rest in
            Hashtbl.replace assignment v false;
            a +. go rest
      in
      go vars
