(** Resource guards: the engine's survival kit for the unsafe side of the
    dichotomy.

    Unsafe queries blow up by design (PAPER.md Sec. 4); the guard turns
    "blow up" into a recoverable, attributable event. A guard bundles

    - a {e monotonic deadline} (wall-clock, measured with
      {!Probdb_obs.Clock}),
    - a {e cooperative cancellation token} ({!cancel}),
    - {e named work budgets} for solver dimensions that were previously
      unbounded (inclusion–exclusion terms, plan cardinality, …),
    - an optional {e major-heap watermark} (checked with [Gc.quick_stat]),
    - a {e deterministic fault-injection hook} so the exhaustion and
      degradation paths are testable without constructing genuinely huge
      instances.

    Every solver in the repository polls its guard at its recursion points
    ([Dpll] per Shannon expansion, [Obdd] per node allocation, [Lift] per
    rule application, [Plan] per operator, [Wfomc] per composition,
    [Karp_luby] per sample). Exhaustion of any resource raises the single
    exception {!Exhausted} carrying a {!trip} that says {e which} budget
    tripped and {e where} — the engine records it in the degradation chain
    and moves on to the next strategy.

    A guard never trips on its own: only {!poll}, {!charge} and {!io}
    raise. Code that does not poll is not interrupted. *)

type resource =
  | Deadline  (** the wall-clock deadline passed *)
  | Cancelled  (** {!cancel} was called on the guard *)
  | Heap  (** the major-heap watermark was exceeded *)
  | Fault  (** a deterministic injected fault (tests only) *)
  | Work of string
      (** a named work budget, e.g. ["lifted.ie_terms"] or ["plan.rows"] *)

type trip = {
  resource : resource;  (** which budget tripped *)
  site : string;  (** the poll site, e.g. ["dpll.shannon"] *)
  limit : float;  (** the configured limit (seconds, words, or work units) *)
  spent : float;  (** how much had been spent when the trip fired *)
}

exception Exhausted of trip
(** The single typed escape hatch for every resource class. *)

type fault =
  | Trip_at_poll of { poll : int; resource : resource }
      (** deterministically trip [resource] at the [poll]-th poll *)
  | Fail_io_at of int
      (** raise [Sys_error] on the [n]-th guarded I/O call ({!io}) *)

type t

val create :
  ?parent:t ->
  ?deadline_s:float ->
  ?heap_watermark_words:int ->
  ?fault:fault ->
  unit ->
  t
(** A fresh guard. [deadline_s] is relative to the moment of creation and
    measured on the monotonic {!Probdb_obs.Clock}; [heap_watermark_words]
    bounds [Gc.quick_stat().heap_words]; [fault] installs a deterministic
    failure for tests. With no arguments the guard only supports
    cancellation and budgets added later with {!set_budget}.

    [parent] links cancellation (and only cancellation: deadlines, budgets
    and watermarks stay per-guard): {!poll} and {!is_cancelled} also
    consult every ancestor, so one {!cancel} on a long-lived parent — a
    query server shutting down hard — interrupts every in-flight
    evaluation running under a child guard. *)

val unlimited : t
(** A shared guard that never trips; {!poll} on it is a no-op. Every
    solver's [?guard] parameter defaults to this, so unguarded callers pay
    (almost) nothing. {!cancel} on it is ignored. *)

val set_budget : t -> string -> int -> unit
(** [set_budget g name limit] installs (or replaces) the named work budget.
    {!charge} against a name with no budget is free. *)

val budget_spent : t -> string -> int
(** Work units charged so far against the named budget (0 if absent). *)

val budget_limit : t -> string -> int option
(** The configured limit of the named budget, if one was installed. Solvers
    use this to read sizing hints off the guard (e.g. the DPLL cache cap
    from ["dpll.cache_entries"]) without a second configuration channel. *)

val heap_watermark_words : t -> int option
(** The heap watermark the guard enforces, if any. Caches consult it to
    evict {e before} the next {!poll} would trip, trading memoisation for
    staying under the limit (see the component cache in [Probdb_cnf.Wmc]). *)

val cancel : t -> unit
(** Request cooperative cancellation: the next {!poll} raises. Safe to call
    from another domain or signal handler (a single mutable flag).
    Cancelling a guard also cancels every guard created with it as
    [?parent], transitively. *)

val is_cancelled : t -> bool
(** Whether this guard or any ancestor was cancelled. *)

val polls : t -> int
(** Number of polls so far — the denominator for fault injection. *)

val elapsed_s : t -> float
(** Seconds since the guard was created. *)

val remaining_s : t -> float option
(** Seconds until the deadline, if one was set ([Some 0.] once passed). *)

val poll : t -> site:string -> unit
(** Check every installed limit and raise {!Exhausted} on the first one
    exhausted, attributing it to [site]. Order: injected fault,
    cancellation, deadline, heap watermark. *)

val poll_interval : int
(** How many {!tick}s buy one real {!poll} (256). *)

val tick : t -> site:string -> int ref -> unit
(** Amortised polling for tight inner loops (sampler iterations, columnar
    operator rows): increments [counter] and calls {!poll} only every
    {!poll_interval}-th tick, keeping guard overhead under 1% of loop cost
    while still bounding the reaction latency to a deadline or
    cancellation. The caller owns [counter] (one per loop nest, usually
    [ref 0]); on the shared {!unlimited} guard this is a no-op that leaves
    the counter untouched. *)

val charge : t -> site:string -> string -> int -> unit
(** [charge g ~site name n] adds [n] work units to budget [name], raising
    {!Exhausted} with [Work name] if the budget overflows, then behaves
    like {!poll}. *)

val io : t -> path:string -> unit
(** Mark a guarded I/O call (CSV open/read). Under [Fail_io_at n] the
    [n]-th call raises [Sys_error] mentioning [path]; otherwise a no-op.
    This is the deterministic stand-in for a failing disk in tests. *)

val resource_name : resource -> string
(** ["deadline"], ["cancelled"], ["heap"], ["fault"], or the budget name. *)

val describe : trip -> string
(** One line, e.g.
    ["deadline 2.000s exhausted at dpll.shannon (elapsed 2.013s)"]. *)

val pp_trip : Format.formatter -> trip -> unit
