module Clock = Probdb_obs.Clock

type resource = Deadline | Cancelled | Heap | Fault | Work of string

type trip = { resource : resource; site : string; limit : float; spent : float }

exception Exhausted of trip

type fault =
  | Trip_at_poll of { poll : int; resource : resource }
  | Fail_io_at of int

type budget = { limit : int; mutable spent : int }

type t = {
  born : float;  (* Clock.now at creation *)
  deadline_s : float option;  (* relative limit, for messages *)
  deadline_at : float option;  (* absolute Clock time *)
  heap_watermark : int option;
  fault : fault option;
  cancelled : bool Atomic.t;
      (* atomic: [cancel] may be called from another domain while workers
         poll — the write must become visible to them *)
  budgets : (string, budget) Hashtbl.t;
  mutable poll_count : int;
  mutable io_count : int;
  live : bool;  (* false only for [unlimited]: every check short-circuits *)
  parent : t option;
      (* linked cancellation: a poll also trips when any ancestor was
         cancelled — one [cancel] on a server-wide guard interrupts every
         in-flight per-request guard built on top of it *)
}

let make ~live ?parent ?deadline_s ?heap_watermark_words ?fault () =
  let born = Clock.now () in
  { born;
    deadline_s;
    deadline_at = Option.map (fun d -> born +. d) deadline_s;
    heap_watermark = heap_watermark_words;
    fault;
    cancelled = Atomic.make false;
    budgets = Hashtbl.create 8;
    poll_count = 0;
    io_count = 0;
    live;
    parent }

let create ?parent ?deadline_s ?heap_watermark_words ?fault () =
  make ~live:true ?parent ?deadline_s ?heap_watermark_words ?fault ()

let unlimited = make ~live:false ()

let set_budget g name limit =
  if g.live then Hashtbl.replace g.budgets name { limit; spent = 0 }

let budget_spent g name =
  match Hashtbl.find_opt g.budgets name with Some b -> b.spent | None -> 0

let budget_limit g name =
  match Hashtbl.find_opt g.budgets name with Some b -> Some b.limit | None -> None

let heap_watermark_words g = g.heap_watermark

let cancel g = if g.live then Atomic.set g.cancelled true

let rec is_cancelled g =
  Atomic.get g.cancelled
  || (match g.parent with Some p -> is_cancelled p | None -> false)

let polls g = g.poll_count

let elapsed_s g = Clock.now () -. g.born

let remaining_s g =
  Option.map (fun at -> Float.max 0.0 (at -. Clock.now ())) g.deadline_at

let trip resource ~site ~limit ~spent =
  raise (Exhausted { resource; site; limit; spent })

let poll g ~site =
  if g.live then begin
    g.poll_count <- g.poll_count + 1;
    (match g.fault with
    | Some (Trip_at_poll { poll; resource }) when g.poll_count >= poll ->
        trip resource ~site ~limit:(float_of_int poll)
          ~spent:(float_of_int g.poll_count)
    | _ -> ());
    (* Chaos rides the same exhaustion path as a budget trip: the engine
       sees a typed [Exhausted {resource = Fault}] and degrades or
       reports [exhausted], exactly as for a real resource trip. *)
    if Probdb_chaos.Chaos.fire ~site:"guard.poll" then
      trip Fault ~site ~limit:0.0 ~spent:(float_of_int g.poll_count);
    if is_cancelled g then trip Cancelled ~site ~limit:0.0 ~spent:(elapsed_s g);
    (match g.deadline_at with
    | Some at ->
        let now = Clock.now () in
        if now > at then
          trip Deadline ~site
            ~limit:(Option.value ~default:0.0 g.deadline_s)
            ~spent:(now -. g.born)
    | None -> ());
    match g.heap_watermark with
    | Some w ->
        let words = (Gc.quick_stat ()).Gc.heap_words in
        if words > w then
          trip Heap ~site ~limit:(float_of_int w) ~spent:(float_of_int words)
    | None -> ()
  end

let poll_interval = 256

let tick g ~site counter =
  if g.live then begin
    let c = !counter + 1 in
    counter := c;
    if c land (poll_interval - 1) = 0 then poll g ~site
  end

let charge g ~site name n =
  if g.live then begin
    (match Hashtbl.find_opt g.budgets name with
    | Some b ->
        b.spent <- b.spent + n;
        if b.spent > b.limit then
          trip (Work name) ~site ~limit:(float_of_int b.limit)
            ~spent:(float_of_int b.spent)
    | None -> ());
    poll g ~site
  end

let io g ~path =
  if g.live then begin
    g.io_count <- g.io_count + 1;
    match g.fault with
    | Some (Fail_io_at n) when g.io_count = n ->
        raise (Sys_error (path ^ ": injected I/O fault (guard)"))
    | _ -> ()
  end

let resource_name = function
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Heap -> "heap"
  | Fault -> "fault"
  | Work name -> name

let describe t =
  match t.resource with
  | Deadline ->
      Printf.sprintf "deadline %.3fs exhausted at %s (elapsed %.3fs)" t.limit
        t.site t.spent
  | Cancelled -> Printf.sprintf "cancelled at %s (elapsed %.3fs)" t.site t.spent
  | Heap ->
      Printf.sprintf "heap watermark %.0f words exceeded at %s (%.0f live)"
        t.limit t.site t.spent
  | Fault ->
      Printf.sprintf "injected fault tripped at %s (poll %.0f)" t.site t.spent
  | Work name ->
      Printf.sprintf "budget %s=%.0f exhausted at %s (spent %.0f)" name t.limit
        t.site t.spent

let pp_trip ppf t = Format.pp_print_string ppf (describe t)
