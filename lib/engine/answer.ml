module Guard = Probdb_guard.Guard
module Stats = Probdb_obs.Stats

type step =
  | Skipped of { strategy : string; reason : string }
  | Tripped of { strategy : string; resource : string; site : string; detail : string }

type confidence = {
  ci_low : float;
  ci_high : float;
  eps : float;
  delta : float;
  samples : int;
}

type t = {
  value : float;
  exact : bool;
  strategy : string;
  degraded : bool;
  confidence : confidence option;
  chain : step list;
  stats : Stats.t;
}

let step_of_trip ~strategy (trip : Guard.trip) =
  Tripped
    { strategy;
      resource = Guard.resource_name trip.Guard.resource;
      site = trip.Guard.site;
      detail = Guard.describe trip }

let step_strategy = function
  | Skipped { strategy; _ } | Tripped { strategy; _ } -> strategy

let step_detail = function
  | Skipped { reason; _ } -> reason
  | Tripped { detail; _ } -> detail

let step_kind = function Skipped _ -> "skipped" | Tripped _ -> "tripped"

let chain_to_stats chain =
  List.map (fun s -> (step_strategy s, step_kind s, step_detail s)) chain

let pp_step ppf s =
  Format.fprintf ppf "%s %s: %s" (step_strategy s) (step_kind s) (step_detail s)

let pp ppf a =
  (match a.confidence with
  | Some c ->
      Format.fprintf ppf "@[<v>%.9g in [%.9g, %.9g] at confidence %g via %s (degraded)"
        a.value c.ci_low c.ci_high (1.0 -. c.delta) a.strategy
  | None ->
      Format.fprintf ppf "@[<v>%.9g%s via %s" a.value
        (if a.exact then " (exact)" else "")
        a.strategy);
  List.iter (fun s -> Format.fprintf ppf "@   %a" pp_step s) a.chain;
  Format.fprintf ppf "@]"
