module Core = Probdb_core
module Fo = Probdb_logic.Fo
module Ucq = Probdb_logic.Ucq
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module Obdd = Probdb_kc.Obdd
module Dpll = Probdb_dpll.Dpll
module Wmc = Probdb_cnf.Wmc
module Plan = Probdb_plans.Plan
module Prepare = Probdb_prepare.Prepare
module Karp_luby = Probdb_approx.Karp_luby
module Stats = Probdb_obs.Stats
module Clock = Probdb_obs.Clock
module Counter = Probdb_obs.Counter
module Trace = Probdb_obs.Trace
module Metrics = Probdb_obs.Metrics
module Json = Probdb_obs.Json
module Guard = Probdb_guard.Guard
module Error = Probdb_core.Probdb_error
module Par = Probdb_par.Par

type strategy =
  | Lifted
  | Symmetric
  | Safe_plan
  | Read_once
  | Wmc
  | Obdd
  | Dpll
  | Karp_luby
  | World_enum

let strategy_name = function
  | Lifted -> "lifted"
  | Symmetric -> "symmetric"
  | Safe_plan -> "safe-plan"
  | Read_once -> "read-once"
  | Wmc -> "wmc"
  | Obdd -> "obdd"
  | Dpll -> "dpll"
  | Karp_luby -> "karp-luby"
  | World_enum -> "world-enum"

let strategy_of_name = function
  | "lifted" -> Some Lifted
  | "symmetric" -> Some Symmetric
  | "safe-plan" -> Some Safe_plan
  | "read-once" -> Some Read_once
  | "wmc" -> Some Wmc
  | "obdd" -> Some Obdd
  | "dpll" -> Some Dpll
  | "karp-luby" -> Some Karp_luby
  | "world-enum" -> Some World_enum
  | _ -> None

type degrade = { eps : float; delta : float; max_samples : int }

type config = {
  strategies : strategy list;
  obdd_max_nodes : int;
  dpll_max_decisions : int;
  wmc_max_decisions : int;
  kl_samples : int;
  max_enum_support : int;
  seed : int;
  deadline_s : float option;
  max_ie_terms : int option;
  max_plan_rows : int option;
  heap_watermark_words : int option;
  fault : Guard.fault option;
  degrade : degrade option;
  force_degraded : bool;
  domains : int;
  parent_guard : Guard.t option;
  plan_cache : Prepare.Cache.t option;
}

let default_config =
  { strategies =
      [ Lifted; Symmetric; Safe_plan; Read_once; Wmc; Obdd; Dpll; Karp_luby;
        World_enum ];
    obdd_max_nodes = 200_000;
    dpll_max_decisions = 2_000_000;
    wmc_max_decisions = 2_000_000;
    kl_samples = 100_000;
    max_enum_support = 22;
    seed = 42;
    deadline_s = None;
    max_ie_terms = None;
    max_plan_rows = None;
    heap_watermark_words = None;
    fault = None;
    degrade = Some { eps = 0.1; delta = 0.05; max_samples = 20_000 };
    force_degraded = false;
    domains = 1;
    parent_guard = None;
    plan_cache = None }

(* The serving-time backpressure config: skip every exact strategy and go
   straight to the (ε,δ) Karp–Luby fallback, keeping whatever degrade
   accuracy targets the base config carries (installing the defaults when
   degradation was off). The strategy list is kept so the degradation
   chain can record each skipped strategy — a degraded answer must say
   why it degraded. Used by [probdb serve] when the request queue passes
   its degrade watermark. *)
let force_degrade config =
  { config with
    force_degraded = true;
    degrade =
      (match config.degrade with
      | Some _ as d -> d
      | None -> default_config.degrade) }

let exact_only =
  { default_config with
    strategies =
      [ Lifted; Symmetric; Safe_plan; Read_once; Wmc; Obdd; Dpll; World_enum ] }

(* Process-wide metrics (aggregating across queries, unlike [Stats.t]);
   the legacy [Counter] module keeps receiving the same increments so
   existing consumers of [Counter.read] are unaffected. *)
let m_queries = Metrics.counter "engine.queries"

let m_degraded = Metrics.counter "engine.degraded"

let m_latency = Metrics.histogram "engine.query_latency_s"

let count_query () =
  Counter.incr "engine.queries";
  Metrics.incr m_queries

let count_win s =
  Counter.incr ("engine.strategy." ^ strategy_name s);
  Metrics.incr (Metrics.counter ("engine.strategy." ^ strategy_name s))

(* The evaluation-config echo surfaced as the [config] section of
   --stats-json: enough to re-run the query the same way. *)
let opt_json f = function None -> Json.Null | Some v -> f v

let config_fields config =
  [ ( "strategies",
      Json.List (List.map (fun s -> Json.Str (strategy_name s)) config.strategies) );
    ("domains", Json.Int config.domains);
    ("seed", Json.Int config.seed);
    ("deadline_s", opt_json (fun f -> Json.Float f) config.deadline_s);
    ("kl_samples", Json.Int config.kl_samples);
    ("obdd_max_nodes", Json.Int config.obdd_max_nodes);
    ("dpll_max_decisions", Json.Int config.dpll_max_decisions);
    ("wmc_max_decisions", Json.Int config.wmc_max_decisions);
    ("max_enum_support", Json.Int config.max_enum_support);
    ("max_ie_terms", opt_json (fun n -> Json.Int n) config.max_ie_terms);
    ("max_plan_rows", opt_json (fun n -> Json.Int n) config.max_plan_rows);
    ("heap_watermark_words", opt_json (fun n -> Json.Int n) config.heap_watermark_words);
    ("plan_cache", Json.Bool (config.plan_cache <> None));
    ( "degrade",
      opt_json
        (fun d ->
          Json.Obj
            [ ("eps", Json.Float d.eps);
              ("delta", Json.Float d.delta);
              ("max_samples", Json.Int d.max_samples) ])
        config.degrade ) ]

let echo_config stats config =
  if stats.Stats.config = [] then stats.Stats.config <- config_fields config

type outcome = Exact of float | Approximate of { value : float; std_error : float }

let value = function Exact v -> v | Approximate { value; _ } -> value

type report = {
  outcome : outcome;
  strategy : strategy;
  skipped : (strategy * string) list;
  stats : Stats.t;
}

exception No_method of (strategy * string) list

type attempt = Ok_outcome of outcome | Skip of string | Trip of Guard.trip

(* Guard assembly: all knobs off means the shared no-op guard, so the
   default configuration pays nothing at the poll sites. *)
let guard_of_config config =
  match
    ( config.deadline_s,
      config.heap_watermark_words,
      config.fault,
      config.max_ie_terms,
      config.max_plan_rows,
      config.parent_guard )
  with
  | None, None, None, None, None, None -> Guard.unlimited
  | _ ->
      let g =
        Guard.create ?parent:config.parent_guard ?deadline_s:config.deadline_s
          ?heap_watermark_words:config.heap_watermark_words ?fault:config.fault ()
      in
      Option.iter (fun n -> Guard.set_budget g "lifted.ie_terms" n) config.max_ie_terms;
      Option.iter (fun n -> Guard.set_budget g "plan.rows" n) config.max_plan_rows;
      g

(* [domains = 1] means no pool at all: every strategy takes the exact
   sequential path it always took, so single-domain behaviour (results,
   RNG streams, poll counts) is unchanged by the parallel runtime. *)
let pool_of_config config =
  if config.domains > 1 then Some (Par.create ~domains:config.domains ()) else None

let record_pool stats = function
  | None -> ()
  | Some p ->
      stats.Stats.domains_used <- Par.domains p;
      stats.Stats.par_tasks <- Par.tasks_run p

let try_lifted stats guard pool db q =
  let rule_stats = Lift.fresh_stats () in
  match Lift.probability ~stats:rule_stats ~guard ?pool db q with
  | p ->
      stats.Stats.lifted <- Some (Lift.obs_counts rule_stats);
      Ok_outcome (Exact p)
  | exception Lift.Unsafe msg -> Skip ("rules fail: " ^ msg)
  | exception Ucq.Unsupported msg -> Skip ("fragment: " ^ msg)

(* A materialised TID is symmetric (Sec. 8) when every relation lists all
   |DOM|^arity possible tuples at one shared probability. *)
let as_symmetric db =
  let n = Core.Tid.domain_size db in
  let expected_domain = List.init n (fun i -> Core.Value.Int i) in
  if n = 0 || not (List.equal Core.Value.equal (Core.Tid.domain db) expected_domain)
  then None
  else
    let rec complete acc = function
      | [] -> Some (List.rev acc)
      | rel :: rest -> (
          let arity = Core.Relation.arity rel in
          if arity < 1 || arity > 2 then None
          else
            let possible = int_of_float (Float.pow (float_of_int n) (float_of_int arity)) in
            if Core.Relation.cardinal rel <> possible then None
            else
              match
                List.sort_uniq compare (List.map snd (Core.Relation.rows rel))
              with
              | [ p ] -> complete ((Core.Relation.name rel, arity, p) :: acc) rest
              | _ -> None)
    in
    match complete [] (Core.Tid.relations db) with
    | Some rels -> ( try Some (Probdb_symmetric.Sym_db.make ~n rels) with Invalid_argument _ -> None)
    | None -> None

let try_symmetric guard db q =
  match as_symmetric db with
  | None -> Skip "database is not symmetric"
  | Some sym -> (
      match Probdb_symmetric.Wfomc.probability ~guard sym q with
      | p -> Ok_outcome (Exact p)
      | exception Probdb_symmetric.Wfomc.Unsupported msg -> Skip ("FO2 fragment: " ^ msg))

(* The prepared variants below consume the cached structural artifact
   instead of re-deriving it: [Prepare.bind_ucq]/[bind_plan] substitute the
   actual constants back into the template-level UCQ/plan. Data-dependent
   checks (standard probabilities, read-once-ness, guard trips) still run
   here — only structure was cached. With [prepared = None] each function
   is byte-for-byte the legacy cold path. *)

let ucq_of ?prepared q =
  match prepared with
  | Some b -> Prepare.bind_ucq b
  | None -> (
      match Ucq.of_sentence q with
      | r -> Ok r
      | exception Ucq.Unsupported msg -> Error msg)

let try_read_once ?prepared db q =
  match ucq_of ?prepared q with
  | Error msg -> Skip ("fragment: " ^ msg)
  | Ok (ucq, mode) -> (
      if
        List.exists
          (List.exists (fun (a : Probdb_logic.Cq.atom) -> a.Probdb_logic.Cq.comp))
          ucq
      then Skip "complemented atoms (lineage is not a monotone DNF)"
      else
        let ctx = Lineage.create db in
        match Lineage.dnf_of_ucq ctx ucq with
        | exception Invalid_argument msg -> Skip msg
        | clauses -> (
            match Probdb_kc.Read_once.probability (Lineage.prob ctx) clauses with
            | Some p -> Ok_outcome (Exact (Ucq.apply_mode mode p))
            | None -> Skip "lineage is not read-once"))

let run_safe_plan stats guard db plan =
  let p, plan_counts, rows = Plan.boolean_prob_counting ~guard db plan in
  stats.Stats.plan <- Some plan_counts;
  stats.Stats.rows_processed <- stats.Stats.rows_processed + rows;
  Ok_outcome (Exact p)

let try_safe_plan ?prepared stats guard db q =
  match prepared with
  | Some b -> (
      (* prepare already planned the template; binding the constants back
         in is the only Plan-phase work left *)
      match Stats.time_phase stats Stats.Plan (fun () -> Prepare.bind_plan b) with
      | Some plan -> run_safe_plan stats guard db plan
      | None ->
          Skip
            (Option.value ~default:"no safe plan (non-hierarchical)"
               (Prepare.plan_skip b)))
  | None -> (
      match Ucq.of_sentence q with
      | exception Ucq.Unsupported msg -> Skip ("fragment: " ^ msg)
      | ucq, Ucq.Complemented ->
          ignore ucq;
          Skip "universal sentence (plans handle positive CQs only)"
      | ucq, Ucq.Direct -> (
          match Ucq.minimize ucq with
          | [ cq ]
            when Probdb_logic.Cq.is_self_join_free cq
                 && not (List.exists (fun (a : Probdb_logic.Cq.atom) -> a.Probdb_logic.Cq.comp) cq)
            -> (
              match Stats.time_phase stats Stats.Plan (fun () -> Plan.safe_plan cq) with
              | Some plan -> run_safe_plan stats guard db plan
              | None -> Skip "no safe plan (non-hierarchical)")
          | [ _ ] -> Skip "CQ has self-joins or negated atoms"
          | _ -> Skip "not a single CQ"))

let try_obdd config stats guard db q =
  let ctx = Lineage.create db in
  match Lineage.of_query ctx q with
  | exception Invalid_argument msg -> Skip msg
  | f -> (
      let manager =
        Obdd.manager ~max_nodes:config.obdd_max_nodes ~guard
          ~order:(Obdd.default_order f) ()
      in
      match Obdd.of_formula manager f with
      | bdd ->
          stats.Stats.circuit <- Some (Obdd.obs_counts bdd);
          Ok_outcome (Exact (Obdd.wmc manager (Lineage.prob ctx) bdd))
      | exception Obdd.Node_limit n ->
          (* solver-internal cap: same class of event as a guard budget *)
          Trip
            { Guard.resource = Guard.Work "obdd.nodes";
              site = "obdd.mk";
              limit = float_of_int n;
              spent = float_of_int n })

let try_wmc config stats guard db q =
  let ctx = Lineage.create db in
  match Lineage.of_query ctx q with
  | exception Invalid_argument msg -> Skip msg
  | f -> (
      (* In the auto chain the clause-database counter only claims lineage
         it translates directly — universal (CNF-shaped) sentences — and
         leaves DNF lineage to OBDD/DPLL, whose heuristics fit it better.
         As the only configured strategy (--method wmc) it was explicitly
         requested, so anything else goes through Tseitin clausification. *)
      if config.strategies <> [ Wmc ] && Probdb_boolean.Formula.as_cnf f = None then
        Skip "lineage is not CNF-shaped (force with --method wmc)"
      else
        let wmc_config =
          { Wmc.default_config with Wmc.max_decisions = config.wmc_max_decisions }
        in
        match Wmc.count ~config:wmc_config ~guard ~prob:(Lineage.prob ctx) f with
        | r ->
            stats.Stats.wmc <- Some (Wmc.obs_counts r.Wmc.stats);
            stats.Stats.circuit <- Some (Probdb_kc.Circuit.obs_counts r.Wmc.circuit);
            stats.Stats.memo_hit_rate <-
              Stats.hit_rate ~hits:r.Wmc.stats.Wmc.cache_hits
                ~queries:r.Wmc.stats.Wmc.cache_queries;
            Ok_outcome (Exact r.Wmc.prob)
        | exception Wmc.Decision_limit n ->
            Trip
              { Guard.resource = Guard.Work "wmc.decisions";
                site = "wmc.decide";
                limit = float_of_int n;
                spent = float_of_int n })

let try_dpll config stats guard db q =
  let ctx = Lineage.create db in
  match Lineage.of_query ctx q with
  | exception Invalid_argument msg -> Skip msg
  | f -> (
      let dpll_config =
        { Dpll.default_config with Dpll.max_decisions = config.dpll_max_decisions }
      in
      match Dpll.count ~config:dpll_config ~guard ~prob:(Lineage.prob ctx) f with
      | r ->
          stats.Stats.dpll <- Some (Dpll.obs_counts r.Dpll.stats);
          stats.Stats.circuit <- Some (Probdb_kc.Circuit.obs_counts r.Dpll.circuit);
          stats.Stats.memo_hit_rate <-
            Stats.hit_rate ~hits:r.Dpll.stats.Dpll.cache_hits
              ~queries:r.Dpll.stats.Dpll.cache_queries;
          Ok_outcome (Exact r.Dpll.prob)
      | exception Dpll.Decision_limit n ->
          Trip
            { Guard.resource = Guard.Work "dpll.decisions";
              site = "dpll.shannon";
              limit = float_of_int n;
              spent = float_of_int n })

let try_karp_luby ?prepared config guard pool db q =
  if not (Core.Tid.is_standard db) then Skip "non-standard probabilities"
  else
    match ucq_of ?prepared q with
    | Error msg -> Skip ("fragment: " ^ msg)
    | Ok (ucq, mode) -> (
        if List.exists (List.exists (fun (a : Probdb_logic.Cq.atom) -> a.Probdb_logic.Cq.comp)) ucq
        then Skip "complemented atoms (lineage is not a monotone DNF)"
        else
          let ctx = Lineage.create db in
          match Lineage.dnf_of_ucq ctx ucq with
          | exception Invalid_argument msg -> Skip msg
          | clauses ->
              let est =
                match pool with
                | Some pool ->
                    Karp_luby.estimate_par ~seed:config.seed ~guard ~pool
                      ~samples:config.kl_samples ~prob:(Lineage.prob ctx) clauses
                | None ->
                    Karp_luby.estimate ~seed:config.seed ~guard
                      ~samples:config.kl_samples ~prob:(Lineage.prob ctx) clauses
              in
              let v = Ucq.apply_mode mode est.Karp_luby.mean in
              Ok_outcome (Approximate { value = v; std_error = est.Karp_luby.std_error }))

let try_world_enum config db q =
  if Core.Tid.support_size db > config.max_enum_support then
    Skip
      (Printf.sprintf "support %d exceeds enumeration budget %d"
         (Core.Tid.support_size db) config.max_enum_support)
  else Ok_outcome (Exact (Probdb_logic.Brute_force.probability db q))

let attempt ?prepared config stats guard pool db q s =
  let run () =
    match s with
    | Lifted -> try_lifted stats guard pool db q
    | Symmetric -> try_symmetric guard db q
    | Safe_plan -> try_safe_plan ?prepared stats guard db q
    | Read_once -> try_read_once ?prepared db q
    | Wmc -> try_wmc config stats guard db q
    | Obdd -> try_obdd config stats guard db q
    | Dpll -> try_dpll config stats guard db q
    | Karp_luby -> try_karp_luby ?prepared config guard pool db q
    | World_enum -> try_world_enum config db q
  in
  (* Every trial is a span on the trace timeline and a GC-delta region:
     the trace shows which strategy the time went to, the stats show which
     strategy the allocation went to. *)
  let run () =
    Stats.with_gc stats (fun () ->
        Trace.with_span ~cat:"strategy" (strategy_name s) run)
  in
  match run () with r -> r | exception Guard.Exhausted trip -> Trip trip

(* Prepared-pipeline gating: the prepared path is active when the caller
   hands over an artifact or the config carries a cache. With a cached
   template plan, Safe_plan is promoted to the front of the strategy list —
   running the compiled columnar plan instead of re-deriving the answer by
   lifted recursion is the whole point of the warm path. The promotion is a
   pure function of the artifact, so cold misses, warm hits and a disabled
   (capacity-0) cache order the strategies identically and answers cannot
   drift with cache state. *)
let acquire_prepared config stats prepared q =
  match (prepared, config.plan_cache) with
  | (Some _ as p), _ -> p
  | None, Some cache when Fo.is_sentence q ->
      Some (Prepare.Cache.of_query ~stats cache q)
  | None, _ -> None

let promote_safe_plan prepared strategies =
  match prepared with
  | Some b
    when b.Prepare.artifact.Prepare.plan <> None && List.mem Safe_plan strategies
    ->
      Safe_plan :: List.filter (fun s -> s <> Safe_plan) strategies
  | _ -> strategies

let evaluate ?(config = default_config) ?stats ?prepared db q =
  if not (Fo.is_sentence q) then
    invalid_arg "Engine.evaluate: open formula (use Engine.answers)";
  let stats = match stats with Some s -> s | None -> Stats.create () in
  if stats.Stats.query = None then
    stats.Stats.query <- Some (Format.asprintf "%a" Fo.pp q);
  count_query ();
  echo_config stats config;
  let guard = guard_of_config config in
  let pool = pool_of_config config in
  let prepared = acquire_prepared config stats prepared q in
  let strategies = promote_safe_plan prepared config.strategies in
  let rec go skipped = function
    | [] ->
        stats.Stats.skipped <-
          List.rev_map (fun (s, m) -> (strategy_name s, m)) skipped;
        raise (No_method (List.rev skipped))
    | s :: rest -> (
        (* [Plan.safe_plan] time lands in the Plan phase inside the attempt;
           subtract it so Classify/Solve only get what is really theirs. *)
        let plan_before = stats.Stats.plan_s in
        let result, dt =
          Clock.time (fun () -> attempt ?prepared config stats guard pool db q s)
        in
        let dt = Float.max 0.0 (dt -. (stats.Stats.plan_s -. plan_before)) in
        match result with
        | Ok_outcome outcome ->
            Stats.record_phase stats Stats.Solve dt;
            stats.Stats.strategy <- Some (strategy_name s);
            stats.Stats.probability <- Some (value outcome);
            (match outcome with
            | Exact _ -> stats.Stats.exact <- true
            | Approximate { std_error; _ } ->
                stats.Stats.exact <- false;
                stats.Stats.std_error <- Some std_error);
            stats.Stats.skipped <-
              List.rev_map (fun (s, m) -> (strategy_name s, m)) skipped;
            record_pool stats pool;
            count_win s;
            Metrics.observe m_latency (Stats.total_s stats);
            { outcome; strategy = s; skipped = List.rev skipped; stats }
        | Skip reason ->
            Stats.record_phase stats Stats.Classify dt;
            go ((s, reason) :: skipped) rest
        | Trip trip ->
            Stats.record_phase stats Stats.Classify dt;
            go ((s, Guard.describe trip) :: skipped) rest)
  in
  go [] strategies

(* ---------- guaranteed-completion evaluation ---------- *)

(* The (ε,δ) fallback: Karp–Luby on the monotone DNF lineage, with the
   sample count from the classical FPRAS bound capped at [max_samples].
   Runs unguarded — sampling is the one method whose cost is fixed up
   front, so completion is guaranteed. Returns [None] when the query has
   no monotone DNF lineage to sample (complemented atoms, non-standard
   probabilities, outside the UCQ fragment). *)
let kl_fallback ?prepared config pool ~eps ~delta ~max_samples db q =
  if not (Core.Tid.is_standard db) then None
  else
    match ucq_of ?prepared q with
    | Error _ -> None
    | Ok (ucq, mode) -> (
        if
          List.exists
            (List.exists (fun (a : Probdb_logic.Cq.atom) -> a.Probdb_logic.Cq.comp))
            ucq
        then None
        else
          let ctx = Lineage.create db in
          match Lineage.dnf_of_ucq ctx ucq with
          | exception Invalid_argument _ -> None
          | clauses ->
              let m = max 1 (List.length clauses) in
              let samples =
                min (Karp_luby.required_samples ~eps ~delta ~clauses:m) max_samples
              in
              let est =
                match pool with
                | Some pool ->
                    Karp_luby.estimate_par ~seed:config.seed ~pool ~samples
                      ~prob:(Lineage.prob ctx) clauses
                | None ->
                    Karp_luby.estimate ~seed:config.seed ~samples
                      ~prob:(Lineage.prob ctx) clauses
              in
              let lo, hi = Karp_luby.confidence_interval ~delta est in
              let v = Ucq.apply_mode mode est.Karp_luby.mean in
              let lo, hi =
                match mode with
                | Ucq.Direct -> (lo, hi)
                | Ucq.Complemented -> (1.0 -. hi, 1.0 -. lo)
              in
              Some
                ( v,
                  est.Karp_luby.std_error,
                  { Answer.ci_low = lo; ci_high = hi; eps; delta; samples } ))

let eval ?(config = default_config) ?stats ?prepared db q =
  if not (Fo.is_sentence q) then
    invalid_arg "Engine.eval: open formula (use Engine.answers)";
  let stats = match stats with Some s -> s | None -> Stats.create () in
  if stats.Stats.query = None then
    stats.Stats.query <- Some (Format.asprintf "%a" Fo.pp q);
  count_query ();
  echo_config stats config;
  let guard = guard_of_config config in
  let pool = pool_of_config config in
  let prepared = acquire_prepared config stats prepared q in
  (* With degradation on, Karp–Luby is reserved for the fallback so that
     [degraded = true] means exactly "no exact strategy completed". *)
  let strategies =
    match config.degrade with
    | Some _ -> List.filter (fun s -> s <> Karp_luby) config.strategies
    | None -> config.strategies
  in
  let strategies = promote_safe_plan prepared strategies in
  let finish_stats chain =
    stats.Stats.chain <- Answer.chain_to_stats chain;
    stats.Stats.skipped <-
      List.map (fun s -> (Answer.step_strategy s, Answer.step_detail s)) chain
  in
  let fail chain =
    finish_stats chain;
    let tripped =
      List.find_map
        (function
          | Answer.Tripped { resource; site; detail; _ } -> Some (resource, site, detail)
          | Answer.Skipped _ -> None)
        chain
    in
    match tripped with
    | Some (resource, site, detail) -> Result.Error (Error.Exhausted { resource; site; detail })
    | None ->
        Result.Error
          (Error.No_method
             (List.map (fun s -> (Answer.step_strategy s, Answer.step_detail s)) chain))
  in
  let degrade_or_fail chain =
    match config.degrade with
    | None -> fail chain
    | Some { eps; delta; max_samples } -> (
        let result, dt =
          Clock.time (fun () ->
              Stats.with_gc stats (fun () ->
                  Trace.with_span ~cat:"strategy" "karp-luby.fallback" (fun () ->
                      kl_fallback ?prepared config pool ~eps ~delta ~max_samples db q)))
        in
        Stats.record_phase stats Stats.Solve dt;
        match result with
        | None -> fail chain
        | Some (v, std_error, confidence) ->
            finish_stats chain;
            record_pool stats pool;
            stats.Stats.strategy <- Some (strategy_name Karp_luby);
            stats.Stats.probability <- Some v;
            stats.Stats.exact <- false;
            stats.Stats.std_error <- Some std_error;
            stats.Stats.degraded <- true;
            stats.Stats.ci_low <- Some confidence.Answer.ci_low;
            stats.Stats.ci_high <- Some confidence.Answer.ci_high;
            stats.Stats.samples <- Some confidence.Answer.samples;
            Counter.incr "engine.degraded";
            Metrics.incr m_degraded;
            count_win Karp_luby;
            Metrics.observe m_latency (Stats.total_s stats);
            Result.Ok
              { Answer.value = v;
                exact = false;
                strategy = strategy_name Karp_luby;
                degraded = true;
                confidence = Some confidence;
                chain;
                stats })
  in
  let rec go chain = function
    | [] -> degrade_or_fail (List.rev chain)
    | s :: rest when config.force_degraded ->
        (* backpressure degradation: no exact strategy runs, but each one
           is recorded as skipped so the degradation chain says why the
           answer is an (ε,δ) interval *)
        go
          (Answer.Skipped
             { strategy = strategy_name s;
               reason = "skipped: degraded under load (backpressure)" }
          :: chain)
          rest
    | s :: rest -> (
        let plan_before = stats.Stats.plan_s in
        let result, dt =
          Clock.time (fun () -> attempt ?prepared config stats guard pool db q s)
        in
        let dt = Float.max 0.0 (dt -. (stats.Stats.plan_s -. plan_before)) in
        match result with
        | Ok_outcome outcome ->
            Stats.record_phase stats Stats.Solve dt;
            let chain = List.rev chain in
            finish_stats chain;
            record_pool stats pool;
            stats.Stats.strategy <- Some (strategy_name s);
            stats.Stats.probability <- Some (value outcome);
            let exact, confidence =
              match outcome with
              | Exact _ ->
                  stats.Stats.exact <- true;
                  (true, None)
              | Approximate { std_error; _ } ->
                  stats.Stats.exact <- false;
                  stats.Stats.std_error <- Some std_error;
                  (false, None)
            in
            count_win s;
            Metrics.observe m_latency (Stats.total_s stats);
            Result.Ok
              { Answer.value = value outcome;
                exact;
                strategy = strategy_name s;
                degraded = false;
                confidence;
                chain;
                stats }
        | Skip reason ->
            Stats.record_phase stats Stats.Classify dt;
            go (Answer.Skipped { strategy = strategy_name s; reason } :: chain) rest
        | Trip trip ->
            Stats.record_phase stats Stats.Classify dt;
            go (Answer.step_of_trip ~strategy:(strategy_name s) trip :: chain) rest)
  in
  go [] strategies

let probability ?config db q = value (evaluate ?config db q).outcome

let answers ?config ~free db q =
  let undeclared = List.filter (fun v -> not (List.mem v free)) (Fo.free_vars q) in
  if undeclared <> [] then
    invalid_arg
      (Printf.sprintf "Engine.answers: undeclared free variables %s"
         (String.concat ", " undeclared));
  let domain = Core.Tid.domain db in
  let rec bindings = function
    | [] -> [ [] ]
    | _ :: rest ->
        let tails = bindings rest in
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) domain
  in
  bindings free
  |> List.filter_map (fun binding ->
         let ground =
           List.fold_left2 (fun f x v -> Fo.subst_const x v f) q free binding
         in
         let report = evaluate ?config db ground in
         if value report.outcome > 0.0 then Some (binding, report) else None)
  |> List.sort (fun (a, _) (b, _) -> Core.Tuple.compare a b)

let expected_answer_count ?config ~free db q =
  List.fold_left
    (fun acc (_, report) -> acc +. value report.outcome)
    0.0
    (answers ?config ~free db q)

let pp_report ppf r =
  let pp_outcome ppf = function
    | Exact v -> Format.fprintf ppf "%.9g (exact)" v
    | Approximate { value; std_error } ->
        Format.fprintf ppf "%.9g (±%.2g at 95%%)" value (1.96 *. std_error)
  in
  Format.fprintf ppf "@[<v>%a via %s" pp_outcome r.outcome (strategy_name r.strategy);
  List.iter
    (fun (s, reason) -> Format.fprintf ppf "@   %s skipped: %s" (strategy_name s) reason)
    r.skipped;
  Format.fprintf ppf "@]"
