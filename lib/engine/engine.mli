(** The PQE engine: a dispatcher over every inference method in the
    repository.

    This is the "probabilistic database system" the paper's results add up
    to. Given a query, the engine tries, in order:

    + {e lifted inference} (Sec. 5) — polynomial time, exact, succeeds
      exactly on safe queries of the unate ∃*/∀* fragment;
    + {e symmetric WFOMC} (Sec. 8) — when the database happens to be
      symmetric (every possible tuple listed at one probability per
      relation), any FO² sentence is polynomial, including #P-hard ones
      like H0;
    + a {e safe extensional plan} (Sec. 6) — exact on hierarchical
      self-join-free CQs, evaluated with plain relational operators;
    + {e read-once factorisation} — when the monotone DNF lineage is
      read-once (e.g. any hierarchical CQ lineage), probability in linear
      time (Golumbic et al., Sec. 7 context);
    + {e clause-database WMC} (Sec. 7) — exact, grounded; a sharpSAT-style
      counter ([Probdb_cnf.Wmc]) with watched-literal propagation,
      component decomposition and a bounded component cache. In the auto
      chain it claims exactly the CNF-shaped (universal) lineages it
      translates directly; picked explicitly ([--method wmc] /
      [strategies = [Wmc]]) it clausifies anything;
    + {e knowledge compilation to OBDD} (Sec. 7) — exact, grounded; blows
      up on hard queries and is capped by a node budget;
    + {e DPLL with caching and components} (Sec. 7) — exact, grounded,
      capped by a decision budget;
    + {e Karp–Luby sampling} on the DNF lineage — an FPRAS for monotone
      UCQs when everything exact has failed;
    + {e possible-world enumeration} — the last resort for tiny databases.

    Every answer reports which method produced it and why the earlier ones
    were skipped — the paper's narrative (who wins where) as an API. *)

type strategy =
  | Lifted
  | Symmetric
  | Safe_plan
  | Read_once
  | Wmc
  | Obdd
  | Dpll
  | Karp_luby
  | World_enum

val strategy_name : strategy -> string

val strategy_of_name : string -> strategy option
(** Inverse of {!strategy_name} — the one name table shared by the CLI's
    [--method] parser and the serve protocol's ["method"] field. [None] on
    unknown names (and on ["auto"], which means "no override"). *)

type degrade = {
  eps : float;  (** target relative error of the fallback approximation *)
  delta : float;  (** target failure probability *)
  max_samples : int;
      (** hard cap on Monte-Carlo samples, so the fallback itself has a
          bounded cost (the FPRAS bound [4m·ln(2/δ)/ε²] can be huge) *)
}

type config = {
  strategies : strategy list;  (** tried in order *)
  obdd_max_nodes : int;
  dpll_max_decisions : int;
  wmc_max_decisions : int;
      (** decision cap of the clause-database WMC strategy (its component
          cache is additionally bounded, see [Probdb_cnf.Wmc.config]) *)
  kl_samples : int;
  max_enum_support : int;
  seed : int;
  deadline_s : float option;
      (** wall-clock deadline across all strategies (monotonic clock) *)
  max_ie_terms : int option;
      (** budget on lifted inclusion–exclusion terms (["lifted.ie_terms"]) *)
  max_plan_rows : int option;
      (** budget on plan intermediate-relation rows (["plan.rows"]) *)
  heap_watermark_words : int option;  (** major-heap watermark *)
  fault : Probdb_guard.Guard.fault option;
      (** deterministic fault injection, for tests *)
  degrade : degrade option;
      (** [Some _]: {!eval} falls back to the (ε,δ) Karp–Luby approximation
          when every exact strategy is skipped or tripped, and Karp–Luby is
          removed from the main strategy loop. [None]: {!eval} fails
          instead. Ignored by the legacy {!evaluate}. *)
  force_degraded : bool;
      (** when set (by {!force_degrade}), {!eval} skips every exact
          strategy — recording each as a skipped step in the degradation
          chain — and answers directly with the (ε,δ) fallback. Ignored
          by the legacy {!evaluate}. *)
  domains : int;
      (** OCaml domains for the parallel runtime ([probdb.par]). At [1]
          (the default) no pool is created and every strategy runs its
          exact sequential path. Above [1], a {!Probdb_par.Par.pool} is
          shared by lifted inference (independent branches) and Karp–Luby
          sampling ({!Probdb_approx.Karp_luby.estimate_par}, whose
          batch-indexed RNG streams make the estimate identical at any
          domain count); [stats] reports [domains_used] / [par_tasks]. *)
  parent_guard : Probdb_guard.Guard.t option;
      (** when set, the per-evaluation guard is created with this parent,
          linking cancellation: {!Probdb_guard.Guard.cancel} on the parent
          interrupts the evaluation at its next poll. A long-running
          server passes one server-wide guard here so a hard shutdown can
          stop every in-flight query cooperatively. *)
  plan_cache : Probdb_prepare.Prepare.Cache.t option;
      (** when set, {!eval}/{!evaluate} run the prepared pipeline: the
          query's structural key (constants lifted to parameters) is looked
          up in this shared compiled-plan cache, a miss builds and caches
          the artifact (UCQ reduction, minimisation, classification,
          template safe plan), and execution binds the constants back into
          the cached artifact. When the artifact carries a safe plan,
          [Safe_plan] is promoted to the front of the strategy list, so
          warm evaluations of safe queries run the compiled columnar plan
          directly — parse/classify/plan phase timings read ~0 on hits.
          [stats] reports the lookup in its [prepare] block. A capacity-0
          cache runs the identical pipeline without retaining anything —
          that is what [--no-plan-cache] installs, so caching can never
          change an answer. [None] (the default) is the legacy
          every-eval-reclassifies behaviour. *)
}

val default_config : config
(** All nine strategies in the order above; 200k OBDD nodes, 2M decisions
    (DPLL and WMC each), 100k Karp–Luby samples; no deadline, no budgets,
    no fault; degradation on at [eps = 0.1], [delta = 0.05], at most 20k
    samples; one domain (sequential). *)

val exact_only : config
(** Drops Karp–Luby. *)

val force_degrade : config -> config
(** The serving-time backpressure transform: set [force_degraded] so
    {!eval} skips every exact method — each recorded as a skipped step in
    the degradation chain — and answers directly with the (ε,δ)
    Karp–Luby fallback, a certified confidence-interval answer at a cost
    bounded by [degrade.max_samples], which is what an overloaded server
    wants instead of queueing exact work. Keeps the base config's [degrade]
    targets, installing {!default_config}'s when degradation was off.
    Queries with no monotone DNF lineage to sample still come back as
    [Error (No_method _)]. *)

type outcome =
  | Exact of float
  | Approximate of { value : float; std_error : float }

val value : outcome -> float

type report = {
  outcome : outcome;
  strategy : strategy;  (** the method that produced the answer *)
  skipped : (strategy * string) list;  (** earlier methods and why they failed *)
  stats : Probdb_obs.Stats.t;
      (** per-query observability record: phase timings, lifted-rule tally,
          DPLL counters, circuit sizes, plan cardinalities (docs/STATS.md) *)
}

exception No_method of (strategy * string) list
(** Every configured strategy failed; the payload says why. *)

val evaluate :
  ?config:config ->
  ?stats:Probdb_obs.Stats.t ->
  ?prepared:Probdb_prepare.Prepare.bound ->
  Probdb_core.Tid.t ->
  Probdb_logic.Fo.t ->
  report
(** Tries the configured strategies in order and returns the first answer.
    Always-on instrumentation: phase timings and per-solver counters are
    recorded into [stats] (a fresh record when not supplied) and returned
    in the report. Pass [?stats] to carry CLI-side timings (e.g. parse
    time) into the same record.

    @param config strategy list and budgets (default {!default_config}).
    @param stats the record to fill; freshly created when absent.
    @param prepared a pre-resolved artifact binding for [q] (e.g. from
      {!Probdb_prepare.Prepare.Cache.resolve_text}); when absent and
      [config.plan_cache] is set, the engine resolves one itself.
    @raise Invalid_argument on open formulas — use {!answers}.
    @raise No_method when every configured strategy is skipped. *)

val eval :
  ?config:config ->
  ?stats:Probdb_obs.Stats.t ->
  ?prepared:Probdb_prepare.Prepare.bound ->
  Probdb_core.Tid.t ->
  Probdb_logic.Fo.t ->
  (Answer.t, Probdb_core.Probdb_error.t) result
(** Guaranteed-completion evaluation. Like {!evaluate}, but

    - a {!Probdb_guard.Guard.t} built from the config's [deadline_s],
      budgets, heap watermark and [fault] interrupts runaway strategies;
      each interruption is recorded as a typed [Tripped] step in the
      answer's degradation chain (solver-internal caps — OBDD nodes, DPLL
      decisions — are recorded the same way);
    - when every exact strategy is skipped or tripped and [config.degrade]
      is [Some _], the engine degrades to the Karp–Luby
      (ε,δ)-approximation (unguarded but sample-capped, so it always
      terminates) and returns a [degraded] answer with its confidence
      interval;
    - instead of raising, failures come back as
      [Error (Exhausted _)] (some strategy tripped a resource and no
      fallback applied) or [Error (No_method _)] (nothing was applicable).

    @raise Invalid_argument on open formulas — use {!answers}. *)

val probability : ?config:config -> Probdb_core.Tid.t -> Probdb_logic.Fo.t -> float
(** The numeric value of {!evaluate}'s outcome. *)

val answers :
  ?config:config -> free:string list -> Probdb_core.Tid.t -> Probdb_logic.Fo.t ->
  (Probdb_core.Value.t list * report) list
(** Non-Boolean queries: evaluates the Boolean query obtained by binding
    the free variables to each combination of domain values, keeping the
    bindings with positive probability. *)

val expected_answer_count :
  ?config:config -> free:string list -> Probdb_core.Tid.t -> Probdb_logic.Fo.t -> float
(** Expected number of answers of a non-Boolean query, by linearity of
    expectation: the sum of the per-binding marginals of {!answers}. *)

val pp_report : Format.formatter -> report -> unit
