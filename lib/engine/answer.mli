(** Engine answers with provenance: what the value is, who produced it,
    and — when the engine had to degrade — how exact inference failed on
    the way down.

    {!Engine.eval} returns one of these for every query it completes. For
    a safe query answered exactly, [degraded] is [false], [confidence] is
    [None] and [chain] lists the strategies tried before the winner. For
    an unsafe query under a deadline or budget, every exact strategy
    records a {!step} in [chain] and the final value is the Karp–Luby
    (ε,δ)-approximation with its confidence interval — the graceful
    degradation the dichotomy theorem forces on any engine that promises
    termination (PAPER.md Sec. 4/6). *)

type step =
  | Skipped of { strategy : string; reason : string }
      (** the strategy declined the query (wrong fragment, not applicable) *)
  | Tripped of { strategy : string; resource : string; site : string; detail : string }
      (** the strategy started but a resource guard interrupted it;
          [resource] is {!Probdb_guard.Guard.resource_name} of the trip,
          [site] the poll site, [detail] the rendered one-liner *)

type confidence = {
  ci_low : float;  (** lower end of the (1-δ)-confidence interval *)
  ci_high : float;
  eps : float;  (** requested relative error *)
  delta : float;  (** requested failure probability *)
  samples : int;  (** Monte-Carlo samples actually drawn *)
}

type t = {
  value : float;
  exact : bool;  (** [false] iff the value is sampling-based *)
  strategy : string;  (** the strategy that produced [value] *)
  degraded : bool;
      (** [true] iff exact inference was exhausted and [value] comes from
          the (ε,δ) fallback; implies [confidence <> None] *)
  confidence : confidence option;
  chain : step list;  (** strategies tried before [strategy], in order *)
  stats : Probdb_obs.Stats.t;
}

val step_of_trip : strategy:string -> Probdb_guard.Guard.trip -> step

val step_strategy : step -> string
val step_detail : step -> string

val step_kind : step -> string
(** ["skipped"] or ["tripped"] — the [kind] field of the stats/JSON chain. *)

val chain_to_stats : step list -> (string * string * string) list
(** The [(strategy, kind, detail)] triples stored in
    {!Probdb_obs.Stats.t.chain}. *)

val pp_step : Format.formatter -> step -> unit

val pp : Format.formatter -> t -> unit
(** Value, strategy, confidence interval when degraded, then the chain —
    the rendering behind [probdb eval]. *)
