(** Always-on named counters, safe under parallel domains.

    A process-global registry of [string -> int] counters backed by
    [Atomic.t]: incrementing an existing counter is one atomic
    fetch-and-add, so counters can stay enabled in production paths. Used
    for engine-wide tallies that outlive a single query (queries evaluated,
    strategies chosen, cache activity); per-query numbers live in
    {!Stats.t} instead. *)

val incr : string -> unit
(** [incr name] adds 1, creating the counter at 0 first if needed. *)

val add : string -> int -> unit
(** [add name n] adds [n] (which may be negative).

    @param n the increment. *)

val get : string -> int
(** Current value; [0] for a counter never touched. *)

val snapshot : unit -> (string * int) list
(** All counters, sorted by name — the export hook for stats dumps. *)

val reset : unit -> unit
(** Zeroes every registered counter (tests only; counters stay
    registered). *)
