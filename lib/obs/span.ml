type node = {
  name : string;
  mutable total_s : float;
  mutable count : int;
  mutable children : node list;
}

type t = { root : node; mutable stack : (node * float) list }

let fresh_node name = { name; total_s = 0.0; count = 0; children = [] }

let create name =
  let root = fresh_node name in
  { root; stack = [ (root, Clock.now ()) ] }

let top t =
  match t.stack with
  | (node, _) :: _ -> node
  | [] -> invalid_arg "Span: collector already finished"

let enter t name =
  let parent = top t in
  let child =
    match List.find_opt (fun n -> String.equal n.name name) parent.children with
    | Some n -> n
    | None ->
        let n = fresh_node name in
        parent.children <- parent.children @ [ n ];
        n
  in
  t.stack <- (child, Clock.now ()) :: t.stack

let close_top t =
  match t.stack with
  | (node, t0) :: rest ->
      node.total_s <- node.total_s +. (Clock.now () -. t0);
      node.count <- node.count + 1;
      t.stack <- rest
  | [] -> invalid_arg "Span: collector already finished"

let exit t =
  match t.stack with
  | [ _root ] -> invalid_arg "Span.exit: only the root span is open"
  | _ -> close_top t

let with_ t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> exit t) f

let finish t =
  while t.stack <> [] do
    close_top t
  done;
  t.root

let root t = t.root

(* Time spent in the node itself, excluding its children — what a deep
   tree makes the reader compute by hand otherwise. Clamped at zero:
   clock granularity can make children sum to slightly more than the
   parent. *)
let self_s n =
  Float.max 0.0
    (n.total_s -. List.fold_left (fun acc c -> acc +. c.total_s) 0.0 n.children)

let percent_of ~parent_s total_s =
  if parent_s > 0.0 then 100.0 *. total_s /. parent_s else 100.0

let rec to_json n =
  Json.Obj
    ([ ("name", Json.Str n.name);
       ("total_s", Json.Float n.total_s);
       ("self_s", Json.Float (self_s n));
       ("count", Json.Int n.count) ]
    @ if n.children = [] then [] else [ ("children", Json.List (List.map to_json n.children)) ])

let pp ppf n =
  let rec go indent parent_s n =
    Format.fprintf ppf "%s%-*s %10.3fms  self %10.3fms  x%-6d %5.1f%%@."
      (String.make indent ' ')
      (max 1 (24 - indent))
      n.name (n.total_s *. 1e3)
      (self_s n *. 1e3)
      n.count
      (percent_of ~parent_s n.total_s);
    List.iter (go (indent + 2) n.total_s) n.children
  in
  go 0 n.total_s n
