(** Process-wide metrics: named counters, gauges and latency/size
    histograms that aggregate {e across} queries — the long-lived
    complement of the per-query {!Stats} record.

    Writes are sharded by domain id ({!nshards} shards): counter
    increments are atomic adds on the writer's shard cell, so concurrent
    domains do not contend and read-side sums are {e exact} — the
    property test in [test/test_metrics.ml] asserts that [N] domains
    adding concurrently sum to exactly the total. Reads merge the shards
    without taking any lock; a read racing a histogram writer can miss the
    in-flight observation, but once writers quiesce the merge is exact.

    Naming convention (see [docs/TRACING.md]): dot-separated
    [subsystem.metric[_unit]], e.g. [engine.queries],
    [engine.query_latency_s]. Registration is idempotent — calling
    {!counter} twice with one name returns the same counter — but
    re-registering a name as a different kind raises [Invalid_argument]. *)

type counter

type gauge

type histogram

val nshards : int
(** Number of write shards (domain id modulo {!nshards}). *)

val counter : string -> counter
(** Find or create the named counter. *)

val gauge : string -> gauge
(** Find or create the named gauge. *)

val histogram : string -> histogram
(** Find or create the named histogram (see {!Histogram} for bucketing
    and quantile error bounds). *)

val add : counter -> int -> unit
(** Atomic, lock-free, sharded. *)

val incr : counter -> unit

val set : gauge -> float -> unit
(** Last write wins. *)

val observe : histogram -> float -> unit
(** Record one observation into the writer domain's shard. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its wall-clock duration in seconds;
    exceptions propagate with the time still recorded. *)

val counter_value : counter -> int
(** Lock-free exact sum over the shards. *)

val gauge_value : gauge -> float

val histogram_value : histogram -> Histogram.t
(** A lock-free merged copy of all shards. *)

val to_json : unit -> Json.t
(** Snapshot of every registered metric:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}], names
    sorted; histogram values as {!Histogram.to_json}. This is the
    [probdb eval --metrics-json] document. *)

val reset : unit -> unit
(** Zero every registered metric (tests). *)
