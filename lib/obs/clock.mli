(** A cheap monotonic clock for the observability layer.

    The container's OCaml has no [Mtime]/[clock_gettime] binding, so this
    is [Unix.gettimeofday] anchored at module initialisation and clamped to
    be non-decreasing across all domains: [now] never goes backwards even
    if the system clock is stepped. Resolution is therefore that of
    [gettimeofday] (microseconds); good enough for per-query phase timings,
    not for nanosecond microbenchmarks (use Bechamel in [bench/] for
    those). *)

val now : unit -> float
(** Seconds since the process loaded this module; non-negative and
    monotonically non-decreasing, also under concurrent callers. *)

val now_ns : unit -> int
(** {!now} in integer nanoseconds — the timestamp unit of trace events
    ({!Trace}). Same monotonicity guarantee and the same underlying
    microsecond resolution; the extra digits are not precision. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds
    (always [>= 0.]). Exceptions from [f] propagate unchanged. *)
