(** Event tracing: what happened {e when}, on {e which domain}.

    A process-global, normally-off event log. Each domain writes
    timestamped events into its own bounded ring buffer (no cross-domain
    contention on the hot path); an exporter renders all buffers as Chrome
    [trace_event] JSON with one lane per domain, loadable in Perfetto or
    [chrome://tracing]. When tracing is disabled every probe costs a single
    atomic load — cheap enough to leave the instrumentation compiled into
    the engine, the solvers, the columnar executor and the worker pool.

    Schema and conventions are documented in [docs/TRACING.md]. *)

type kind = Begin | End | Instant | Counter

type event = {
  kind : kind;
  name : string;
  cat : string;  (** category, e.g. ["strategy"], ["exec"], ["gc"] *)
  ts_ns : int;  (** {!Clock.now_ns} at emission *)
  domain : int;  (** the emitting domain's id — the trace lane *)
  value : float;  (** counter value; [0.] for the other kinds *)
}

val on : unit -> bool
(** Whether tracing is currently enabled. Probes check this themselves;
    call it directly only to skip expensive argument preparation. *)

val enable : ?capacity:int -> unit -> unit
(** Start a fresh trace, discarding any previous events.

    @param capacity per-domain ring size in events (default 65536); when a
    buffer overflows, the oldest events are dropped and counted in
    {!dropped}. *)

val disable : unit -> unit
(** Stop recording. Already-recorded events remain collectable. *)

val clear : unit -> unit
(** Drop all recorded events without changing the enabled state. *)

val begin_ : ?cat:string -> string -> unit
(** Open a duration slice on the current domain's lane. Pair with
    {!end_}, or use {!with_span}. *)

val end_ : ?cat:string -> string -> unit
(** Close the innermost open slice on the current domain's lane. *)

val instant : ?cat:string -> string -> unit
(** A point-in-time event (rendered as a tick mark). *)

val counter : ?cat:string -> string -> float -> unit
(** Record the current value of a named quantity; Perfetto renders the
    series as a counter track. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] with {!begin_}/{!end_}; the slice is
    closed also when [f] raises. When tracing is off, runs [f] with no
    bracketing at all. *)

val events : unit -> event list
(** All recorded events across all domains, in timestamp order. *)

val dropped : unit -> int
(** Events lost to ring overflow since the last {!enable}/{!clear}. *)

val to_chrome_json : unit -> Json.t
(** The Chrome [trace_event] document:
    [{"traceEvents": [...], "displayTimeUnit": "ms", ...}] with one
    [thread_name] metadata record per domain lane. Begin/End pairs broken
    by ring overflow are repaired so the document always validates. *)

val write : string -> unit
(** Write {!to_chrome_json} to a file (pretty-printed). *)
