(* Event tracing: bounded per-domain ring buffers of timestamped events,
   exported as Chrome trace_event JSON (loadable in Perfetto or
   chrome://tracing). Disabled tracing costs one atomic load per probe. *)

type kind = Begin | End | Instant | Counter

type event = {
  kind : kind;
  name : string;
  cat : string;
  ts_ns : int;
  domain : int;
  value : float;  (* counter value; 0. for the other kinds *)
}

(* ---------- global state ---------- *)

let enabled = Atomic.make false

let default_capacity = 65_536

let capacity = Atomic.make default_capacity

(* Bumped by [enable]/[clear]: buffers cached in domain-local storage from
   an older generation are abandoned, so a new trace never sees stale
   events from the previous one. *)
let generation = Atomic.make 0

type buffer = {
  gen : int;
  domain : int;
  ring : event array;
  mutable total : int;  (* events ever written; the ring keeps the last
                           [Array.length ring] of them *)
}

let dummy =
  { kind = Instant; name = ""; cat = ""; ts_ns = 0; domain = 0; value = 0.0 }

(* All buffers ever handed out for the current generation, oldest first.
   Worker domains die with their pool; their buffers stay reachable here
   so the exporter sees every lane. *)
let registry : buffer list ref = ref []

let registry_lock = Mutex.create ()

let local : buffer option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh_buffer () =
  let b =
    { gen = Atomic.get generation;
      domain = (Domain.self () :> int);
      ring = Array.make (max 1 (Atomic.get capacity)) dummy;
      total = 0 }
  in
  Mutex.protect registry_lock (fun () -> registry := b :: !registry);
  b

let buffer () =
  let slot = Domain.DLS.get local in
  match !slot with
  | Some b when b.gen = Atomic.get generation -> b
  | _ ->
      let b = fresh_buffer () in
      slot := Some b;
      b

(* ---------- emission ---------- *)

let on () = Atomic.get enabled

let emit kind name cat value =
  let b = buffer () in
  let n = Array.length b.ring in
  b.ring.(b.total mod n) <-
    { kind; name; cat; ts_ns = Clock.now_ns (); domain = b.domain; value };
  b.total <- b.total + 1

let begin_ ?(cat = "") name = if on () then emit Begin name cat 0.0

let end_ ?(cat = "") name = if on () then emit End name cat 0.0

let instant ?(cat = "") name = if on () then emit Instant name cat 0.0

let counter ?(cat = "") name value = if on () then emit Counter name cat value

let with_span ?cat name f =
  if on () then begin
    begin_ ?cat name;
    Fun.protect ~finally:(fun () -> end_ ?cat name) f
  end
  else f ()

(* ---------- control ---------- *)

let clear () =
  Atomic.incr generation;
  Mutex.protect registry_lock (fun () -> registry := [])

let enable ?capacity:cap () =
  (match cap with Some c -> Atomic.set capacity (max 1 c) | None -> ());
  clear ();
  Atomic.set enabled true

let disable () = Atomic.set enabled false

(* ---------- collection ---------- *)

let buffer_events b =
  let n = Array.length b.ring in
  let kept = min b.total n in
  List.init kept (fun i -> b.ring.((b.total - kept + i) mod n))

let events () =
  let buffers = Mutex.protect registry_lock (fun () -> !registry) in
  List.concat_map buffer_events (List.rev buffers)
  |> List.stable_sort (fun a b -> Int.compare a.ts_ns b.ts_ns)

let dropped () =
  let buffers = Mutex.protect registry_lock (fun () -> !registry) in
  List.fold_left
    (fun acc b -> acc + max 0 (b.total - Array.length b.ring))
    0 buffers

(* ---------- Chrome trace_event export ---------- *)

let ph_of_kind = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Counter -> "C"

let us_of_ns ns = float_of_int ns /. 1e3

let event_json e =
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "probdb" else e.cat));
      ("ph", Json.Str (ph_of_kind e.kind));
      ("ts", Json.Float (us_of_ns e.ts_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.domain) ]
  in
  match e.kind with
  | Counter -> Json.Obj (base @ [ ("args", Json.Obj [ ("value", Json.Float e.value) ]) ])
  | Instant -> Json.Obj (base @ [ ("s", Json.Str "t") ])
  | Begin | End -> Json.Obj base

(* Ring overflow drops oldest events, which can orphan an [End] (its
   [Begin] was evicted) or leave a [Begin] unclosed (collection stopped
   mid-span). The exporter repairs both so the file always satisfies the
   schema: orphan Ends are dropped, unclosed Begins get a synthetic End at
   the last timestamp seen on their lane. *)
let balanced evs =
  let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let get tbl d = Option.value ~default:0 (Hashtbl.find_opt tbl d) in
  let kept =
    List.filter
      (fun (e : event) ->
        Hashtbl.replace last_ts e.domain e.ts_ns;
        match e.kind with
        | Begin ->
            Hashtbl.replace depth e.domain (get depth e.domain + 1);
            true
        | End ->
            let d = get depth e.domain in
            if d <= 0 then false
            else begin
              Hashtbl.replace depth e.domain (d - 1);
              true
            end
        | Instant | Counter -> true)
      evs
  in
  let closers =
    Hashtbl.fold
      (fun domain d acc ->
        List.init d (fun _ ->
            { kind = End; name = "(unclosed)"; cat = "probdb";
              ts_ns = get last_ts domain; domain; value = 0.0 })
        @ acc)
      depth []
  in
  kept @ closers

let lane_metadata evs =
  let domains =
    List.sort_uniq Int.compare (List.map (fun (e : event) -> e.domain) evs)
  in
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str "probdb") ]) ]
  :: List.map
       (fun d ->
         Json.Obj
           [ ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int d);
             ( "args",
               Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" d)) ] ) ])
       domains

let to_chrome_json () =
  let evs = balanced (events ()) in
  Json.Obj
    [ ("traceEvents", Json.List (lane_metadata evs @ List.map event_json evs));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_events", Json.Int (dropped ())) ]) ]

let write path =
  let doc = to_chrome_json () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true doc);
      output_string oc "\n")
