(** Per-query statistics: the structured record every solver reports into.

    One {!t} is created per query evaluation (by [Probdb_engine.Engine] or
    by hand) and filled as the engine works through its strategies: phase
    wall-clock timings, the lifted-inference rule tally, DPLL search
    counters, compiled-circuit sizes, and safe-plan cardinalities. The
    record is deliberately flat and mutable — recording must stay cheap
    enough to leave on for every query — and {!to_json} defines the stable
    machine-readable schema documented field by field in [docs/STATS.md].

    Which optional section is populated depends on the winning strategy:
    [lifted] for lifted inference, [dpll] + [circuit] for the DPLL prover,
    [circuit] for OBDD compilation, [plan] for safe extensional plans.
    Sections of strategies that were tried but skipped stay [None]. *)

type lifted_rules = {
  independent_unions : int;
      (** independent-∨ / independent-∃ splits (rule (7) of Sec. 5) *)
  independent_joins : int;  (** independent-∧ / independent-∀ splits (the dual) *)
  separator_steps : int;  (** separator-variable applications (rule (8)) *)
  ie_expansions : int;  (** inclusion–exclusion applications (rule (10)) *)
  ie_terms : int;  (** I/E terms recursed into after cancellation *)
  cancelled_terms : int;  (** I/E terms removed by cancellation *)
  negations : int;  (** complemented ground atoms evaluated as [1-p] *)
  base_lookups : int;  (** ground-tuple probability reads *)
}

type dpll_counts = {
  branches : int;  (** Shannon expansions (decisions) *)
  unit_propagations : int;
      (** branches that collapsed to a constant after conditioning *)
  cache_hits : int;
  cache_queries : int;
  component_splits : int;
  cache_entries : int;  (** subformulas currently memoised *)
  cache_evictions : int;  (** entries dropped to stay under the cache cap *)
}

(** Counters of the clause-database weighted model counter
    ([Probdb_cnf.Wmc]); the [wmc_]-prefixed names avoid clashing with the
    {!dpll_counts} fields in this flat namespace — the JSON keys drop the
    prefix (see [docs/STATS.md]). *)
type wmc_counts = {
  wmc_decisions : int;  (** branching decisions *)
  propagations : int;  (** literals implied by watched-literal propagation *)
  components : int;  (** connected components detected in residual databases *)
  wmc_cache_hits : int;
  wmc_cache_queries : int;
  wmc_cache_entries : int;  (** component-cache entries live at the end *)
  wmc_cache_evictions : int;
      (** entries dropped by the entry cap or the heap-watermark sweep *)
  max_trail : int;  (** deepest assignment trail over the run *)
}

type circuit_counts = {
  circuit_class : string;  (** ["obdd"], ["fbdd"], ["decision-dnnf"], ... *)
  nodes : int;
  edges : int;
}

type plan_counts = {
  operators : int;  (** scans + joins + projections evaluated *)
  peak_rows : int;  (** largest intermediate-relation cardinality *)
}

(** The packed-storage block, filled when the TID came from a [.pdb]
    container ([Probdb_storage.Storage]): what it cost to open and how
    much of the file the evaluation actually touched. The [st_]-prefixed
    names avoid clashing in this flat namespace — the JSON keys drop the
    prefix (see [docs/STATS.md]). Process-wide totals live in the
    [storage.*] metrics. *)
type storage_counts = {
  st_path : string;  (** the container file *)
  st_file_bytes : int;  (** container size on disk *)
  st_open_s : float;  (** header + TOC validation time (O(header)) *)
  st_bytes_mapped : int;  (** bytes of column segments mapped so far *)
  st_cols_mapped : int;  (** column segments mapped so far *)
  st_rels_materialized : int;  (** relations decoded to the heap so far *)
}

(** The prepared-query block ([Probdb_prepare.Prepare]): whether this
    evaluation hit the shared compiled-plan cache, under which structural
    key, and the cache's running totals at that moment. The [prep_]-prefixed
    names avoid clashing in this flat namespace — the JSON keys drop the
    prefix (see [docs/STATS.md]). *)
type prepare_counts = {
  prep_hit : bool;  (** this query's structural key was already cached *)
  prep_key : string;  (** canonical structural key (constants as [$i]) *)
  prep_cache_hits : int;  (** cache-lifetime hit total *)
  prep_cache_misses : int;
  prep_cache_evictions : int;
  prep_cache_entries : int;  (** artifacts cached after this lookup *)
}

(** Accumulated GC-counter deltas over the regions bracketed with
    {!with_gc} — allocation pressure and collector activity attributable
    to this query, not to the whole process. *)
type gc_counts = {
  mutable minor_words : float;
      (** words allocated in the minor heap ([Gc.minor_words] deltas —
          live even between collections) *)
  mutable major_words : float;
      (** words allocated in the major heap; [Gc.quick_stat] refreshes
          this at collection boundaries, so allocation-free-of-collection
          regions read 0 *)
  mutable promoted_words : float;  (** words surviving a minor collection *)
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable compactions : int;
  mutable heap_peak_words : int;
      (** max major-heap size ([heap_words]) seen at any region exit; 0
          when the regions never touched the major heap *)
}

(** The phases a query goes through; see {!record_phase}. [Prepare] is the
    structural-key lookup plus, on a miss, artifact construction (UCQ
    reduction, minimisation, classification, safe-plan construction) —
    on a cache hit it is the only pre-solve phase that runs at all. *)
type phase = Parse | Prepare | Classify | Plan | Solve

type t = {
  mutable query : string option;  (** concrete syntax, when known *)
  mutable request_id : string option;
      (** serve-layer correlation id, when evaluated on behalf of a request *)
  mutable strategy : string option;  (** winning strategy name *)
  mutable probability : float option;
  mutable exact : bool;  (** [false] for sampling-based answers *)
  mutable std_error : float option;  (** for approximate answers *)
  mutable parse_s : float;
  mutable prepare_s : float;
      (** structural-key lookup + artifact construction on cache misses *)
  mutable classify_s : float;
      (** time spent deciding applicability (skipped strategies included) *)
  mutable plan_s : float;  (** safe-plan construction *)
  mutable solve_s : float;  (** the winning strategy's evaluation *)
  mutable lifted : lifted_rules option;
  mutable dpll : dpll_counts option;
  mutable wmc : wmc_counts option;
  mutable circuit : circuit_counts option;
  mutable plan : plan_counts option;
  mutable prepare : prepare_counts option;
      (** filled when the evaluation went through a compiled-plan cache *)
  mutable storage : storage_counts option;
      (** filled when the TID came from a packed container *)
  mutable memo_hit_rate : float option;
      (** cache hits / cache queries of the winning solver, when it caches *)
  mutable skipped : (string * string) list;  (** strategy, reason — in trial order *)
  mutable degraded : bool;
      (** the exact strategies were exhausted and the answer is the (ε,δ)
          Karp–Luby fallback *)
  mutable ci_low : float option;  (** (1-δ)-confidence interval, degraded answers *)
  mutable ci_high : float option;
  mutable samples : int option;  (** Monte-Carlo samples drawn, degraded answers *)
  mutable chain : (string * string * string) list;
      (** degradation chain: strategy, kind (["skipped"] or ["tripped"]),
          detail — in trial order; the typed superset of [skipped] *)
  mutable domains_used : int;
      (** configured parallelism of the evaluation (1 = sequential) *)
  mutable par_tasks : int;
      (** tasks executed through the [Probdb_par.Par] pool, all strategies *)
  mutable rows_processed : int;
      (** input rows streamed through columnar plan operators *)
  gc : gc_counts;  (** filled by {!with_gc}; all-zero when never bracketed *)
  mutable config : (string * Json.t) list;
      (** evaluation-config echo (method, domains, deadline, ε/δ, seed, …)
          set by the engine; serialised as the [config] section of
          {!to_json}, [null] when empty *)
}

val create : unit -> t
(** All-zero timings, every section [None]. *)

val total_s : t -> float
(** Sum of the phase timings. *)

val record_phase : t -> phase -> float -> unit
(** [record_phase t ph dt] adds [dt] seconds to phase [ph].

    @param dt elapsed seconds; clamped to [0.] if negative. *)

val time_phase : t -> phase -> (unit -> 'a) -> 'a
(** Runs the thunk and {!record_phase}s its duration (measured with
    {!Clock.time}); exceptions propagate with the time still recorded. *)

val hit_rate : hits:int -> queries:int -> float option
(** [hits/queries], or [None] when [queries = 0]. *)

val with_gc : t -> (unit -> 'a) -> 'a
(** [with_gc t f] runs [f] and folds the [Gc.quick_stat] deltas across it
    into [t.gc] (allocated words, collection counts, heap peak), also when
    [f] raises. When {!Trace.on}, the running totals are emitted as
    [gc.*] counter events so the trace timeline shows allocation pressure.
    Do not nest on the same record — the outer region would double-count
    the inner one's deltas. *)

val to_json : t -> Json.t
(** The machine-readable form; schema in [docs/STATS.md]. Unpopulated
    sections serialise as [null] so every document has the same keys. *)

val pp : Format.formatter -> t -> unit
(** The human-readable table behind [probdb eval --stats]. *)
