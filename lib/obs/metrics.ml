(* Process-wide metrics: a registry of named counters, gauges and
   histograms that outlives any single query (unlike Stats.t, which is
   per-query). Writes are sharded by domain id so concurrent domains
   rarely touch the same cache line; reads merge the shards without
   taking any lock. *)

let nshards = 16

let shard () = (Domain.self () :> int) land (nshards - 1)

type counter = { cname : string; cells : int Atomic.t array }

type gauge = { gname : string; gcell : float Atomic.t }

type histogram = {
  hname : string;
  hshards : Histogram.t array;
  hlocks : Mutex.t array;  (* writer-side only: two domains can share a shard *)
}

type registered =
  | Counter of counter
  | Gauge of gauge
  | Histo of histogram

let table : (string, registered) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let register name make cast =
  let found =
    match Hashtbl.find_opt table name with
    | Some r -> cast r
    | None ->
        Mutex.protect registry_lock (fun () ->
            match Hashtbl.find_opt table name with
            | Some r -> cast r
            | None ->
                let v = make () in
                Hashtbl.add table name v;
                cast v)
  in
  match found with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another metric kind" name)

let counter name =
  register name
    (fun () ->
      Counter { cname = name; cells = Array.init nshards (fun _ -> Atomic.make 0) })
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> Gauge { gname = name; gcell = Atomic.make 0.0 })
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      Histo
        { hname = name;
          hshards = Array.init nshards (fun _ -> Histogram.create ());
          hlocks = Array.init nshards (fun _ -> Mutex.create ()) })
    (function Histo h -> Some h | _ -> None)

(* ---------- writes (sharded; lock-free for counters and gauges) ---------- *)

let add c n = ignore (Atomic.fetch_and_add c.cells.(shard ()) n)

let incr c = add c 1

let set g v = Atomic.set g.gcell v

let observe h v =
  let s = shard () in
  Mutex.protect h.hlocks.(s) (fun () -> Histogram.add h.hshards.(s) v)

let time h f =
  let t0 = Clock.now () in
  Fun.protect ~finally:(fun () -> observe h (Clock.now () -. t0)) f

(* ---------- reads (lock-free merges) ---------- *)

(* Counter sums are exact: every increment lands in exactly one atomic
   cell, and the read sums all cells. Histogram reads merge the shard
   arrays without locking — a read racing a writer can miss the very last
   observation, but after writers quiesce the merge is exact. *)
let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

let gauge_value g = Atomic.get g.gcell

let histogram_value h =
  let merged = Histogram.create () in
  Array.iter (fun s -> Histogram.merge_into ~into:merged s) h.hshards;
  merged

(* ---------- snapshot ---------- *)

let sorted_bindings () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun name r acc -> (name, r) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json () =
  let counters, gauges, histos =
    List.fold_left
      (fun (cs, gs, hs) (name, r) ->
        match r with
        | Counter c -> ((name, Json.Int (counter_value c)) :: cs, gs, hs)
        | Gauge g -> (cs, (name, Json.Float (gauge_value g)) :: gs, hs)
        | Histo h -> (cs, gs, (name, Histogram.to_json (histogram_value h)) :: hs))
      ([], [], [])
      (sorted_bindings ())
  in
  Json.Obj
    [ ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev histos)) ]

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ r ->
          match r with
          | Counter c -> Array.iter (fun a -> Atomic.set a 0) c.cells
          | Gauge g -> Atomic.set g.gcell 0.0
          | Histo h ->
              Array.iteri
                (fun i _ ->
                  Mutex.protect h.hlocks.(i) (fun () ->
                      h.hshards.(i) <- Histogram.create ()))
                h.hshards)
        table)
