let epoch = Unix.gettimeofday ()

(* Highest timestamp handed out so far; [now] never returns less. *)
let last = Atomic.make 0.0

let now () =
  let t = Unix.gettimeofday () -. epoch in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()

(* Truncation of a monotone float is monotone, so [now_ns] inherits the
   never-goes-backwards guarantee of [now]. *)
let now_ns () = int_of_float (now () *. 1e9)

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)
