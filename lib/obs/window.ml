(* Windowed aggregation: ring-buffered time buckets over the mergeable
   Histogram and plain counters. Each structure is a ring of fixed-width
   buckets stamped with the epoch (floor(now / bucket_s)) they belong to;
   a write lands in the bucket of the current epoch, resetting it first if
   the slot still holds data from a previous lap of the ring. Reads merge
   the buckets whose epoch falls inside the requested horizon, so rolling
   10s/1m/5m views come from one ring without any background rotation
   thread — time itself advances the window. *)

let default_buckets = 300

let default_bucket_s = 1.0

let epoch_of ~bucket_s now = int_of_float (now /. bucket_s)

(* Buckets a horizon spans, clamped to the ring size: asking for a longer
   horizon than the ring holds degrades to the whole ring. *)
let span_buckets ~bucket_s ~buckets horizon_s =
  min buckets (max 1 (int_of_float (Float.ceil (horizon_s /. bucket_s))))

(* The effective measurement span in seconds: a freshly created window has
   not lived a full horizon yet, so rates divide by the time actually
   covered (floored at one bucket to keep early rates finite). *)
let covered ~bucket_s ~created_s horizon_s =
  Float.max bucket_s (Float.min horizon_s (Clock.now () -. created_s))

(* ---------- windowed counter ---------- *)

type counter = {
  c_bucket_s : float;
  c_epochs : int array;
  c_cells : int array;
  c_lock : Mutex.t;
  c_created_s : float;
}

let counter ?(buckets = default_buckets) ?(bucket_s = default_bucket_s) () =
  if buckets < 1 then invalid_arg "Window.counter: buckets must be >= 1";
  if not (bucket_s > 0.0) then invalid_arg "Window.counter: bucket_s must be > 0";
  { c_bucket_s = bucket_s;
    c_epochs = Array.make buckets min_int;
    c_cells = Array.make buckets 0;
    c_lock = Mutex.create ();
    c_created_s = Clock.now () }

let add c n =
  let e = epoch_of ~bucket_s:c.c_bucket_s (Clock.now ()) in
  let i = e mod Array.length c.c_epochs in
  Mutex.protect c.c_lock (fun () ->
      if c.c_epochs.(i) <> e then begin
        c.c_epochs.(i) <- e;
        c.c_cells.(i) <- 0
      end;
      c.c_cells.(i) <- c.c_cells.(i) + n)

let incr c = add c 1

let total c ~horizon_s =
  let e_now = epoch_of ~bucket_s:c.c_bucket_s (Clock.now ()) in
  let n = Array.length c.c_epochs in
  let k = span_buckets ~bucket_s:c.c_bucket_s ~buckets:n horizon_s in
  Mutex.protect c.c_lock (fun () ->
      let sum = ref 0 in
      for i = 0 to n - 1 do
        if c.c_epochs.(i) > e_now - k && c.c_epochs.(i) <= e_now then
          sum := !sum + c.c_cells.(i)
      done;
      !sum)

let rate c ~horizon_s =
  float_of_int (total c ~horizon_s)
  /. covered ~bucket_s:c.c_bucket_s ~created_s:c.c_created_s horizon_s

(* ---------- windowed histogram ---------- *)

type histogram = {
  h_bucket_s : float;
  h_epochs : int array;
  h_cells : Histogram.t array;
  h_lock : Mutex.t;
  h_created_s : float;
}

let histogram ?(buckets = default_buckets) ?(bucket_s = default_bucket_s) () =
  if buckets < 1 then invalid_arg "Window.histogram: buckets must be >= 1";
  if not (bucket_s > 0.0) then
    invalid_arg "Window.histogram: bucket_s must be > 0";
  { h_bucket_s = bucket_s;
    h_epochs = Array.make buckets min_int;
    h_cells = Array.init buckets (fun _ -> Histogram.create ());
    h_lock = Mutex.create ();
    h_created_s = Clock.now () }

let observe h v =
  let e = epoch_of ~bucket_s:h.h_bucket_s (Clock.now ()) in
  let i = e mod Array.length h.h_epochs in
  Mutex.protect h.h_lock (fun () ->
      if h.h_epochs.(i) <> e then begin
        h.h_epochs.(i) <- e;
        h.h_cells.(i) <- Histogram.create ()
      end;
      Histogram.add h.h_cells.(i) v)

(* Merge the in-horizon buckets into a fresh histogram. Merge is
   associative and commutative (test/test_obs.ml property-checks this),
   so the bucket order never matters. *)
let snapshot h ~horizon_s =
  let e_now = epoch_of ~bucket_s:h.h_bucket_s (Clock.now ()) in
  let n = Array.length h.h_epochs in
  let k = span_buckets ~bucket_s:h.h_bucket_s ~buckets:n horizon_s in
  let merged = Histogram.create () in
  Mutex.protect h.h_lock (fun () ->
      for i = 0 to n - 1 do
        if h.h_epochs.(i) > e_now - k && h.h_epochs.(i) <= e_now then
          Histogram.merge_into ~into:merged h.h_cells.(i)
      done);
  merged
