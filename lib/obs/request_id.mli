(** Request ids for end-to-end correlation of serve requests across
    replies, Stats, trace events, the slow-query log and metrics. *)

val mint : unit -> string
(** A fresh 16-hex-digit id, unique within this process. *)

val valid : string -> bool
(** [valid s] accepts client-supplied ids: 1–128 printable, non-space
    ASCII characters. *)
