(** Log-bucketed histograms for latencies and sizes.

    HDR-style log-linear buckets: every power-of-two octave is split into
    16 linear sub-buckets, so a bucket's width is at most 1/16 of its
    lower bound and quantile estimates (bucket midpoints) are within
    {!relative_error} (≈3.1%) of the exact nearest-rank sample quantile —
    the property test in [test/test_metrics.ml] asserts exactly this
    bound. Memory is a fixed ~2048-slot int array per histogram,
    independent of the number of observations.

    A histogram is a single-writer value: {!Metrics} shards one per domain
    and merges on read. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. Non-positive (and NaN) values are counted but
    kept out of the log buckets; they rank below every positive sample. *)

val count : t -> int
(** Total observations recorded. *)

val sum : t -> float
(** Sum of the positive observations (exact, not bucketed). *)

val mean : t -> float

val min_value : t -> float
(** Smallest observation ([0.] when empty); exact, not bucketed. *)

val max_value : t -> float
(** Largest observation ([0.] when empty); exact, not bucketed. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile (nearest-rank): the midpoint
    of the bucket holding the sample of rank [round (q * count)]. Within
    {!relative_error} of the exact sample quantile. *)

val relative_error : float
(** The documented quantile error bound: half of the widest
    bucket-width-to-value ratio, [1/32]. *)

val merge_into : into:t -> t -> unit
(** Fold the second histogram's buckets and moments into [into]. *)

val copy : t -> t

val to_json : t -> Json.t
(** [{"count", "sum", "mean", "min", "max", "p50", "p90", "p99",
    "buckets": [[midpoint, count], ...]}] — non-empty buckets only. *)
