(* Server-minted request ids: 16 hex digits from a splitmix64 stream
   seeded per process. Ids only need to be unique within one server's
   logs/traces, so a pid-and-clock seed plus a monotone counter is
   enough — no entropy source, no dependency. *)

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let seed =
  Int64.logxor
    (Int64.bits_of_float (Unix.gettimeofday ()))
    (Int64.of_int (Unix.getpid () * 0x1F123BB5))

let counter = Atomic.make 0

let mint () =
  let n = Atomic.fetch_and_add counter 1 in
  let z = Int64.add seed (Int64.mul (Int64.of_int (n + 1)) golden) in
  Printf.sprintf "%016Lx" (mix z)

(* Client-supplied ids appear verbatim in NDJSON logs, trace event names
   and OpenMetrics labels, so restrict them to printable non-space ASCII
   and a sane length. *)
let valid s =
  let n = String.length s in
  n >= 1 && n <= 128
  && String.for_all (fun c -> Char.code c >= 0x21 && Char.code c <= 0x7e) s
