let table : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let cell name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
      Mutex.protect registry_lock (fun () ->
          match Hashtbl.find_opt table name with
          | Some c -> c
          | None ->
              let c = Atomic.make 0 in
              Hashtbl.add table name c;
              c)

let add name n = ignore (Atomic.fetch_and_add (cell name) n)
let incr name = add name 1
let get name = match Hashtbl.find_opt table name with Some c -> Atomic.get c | None -> 0

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) table)
