type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- encoding ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that re-parses to the same value *)
    let s12 = Printf.sprintf "%.12g" f in
    let s =
      if float_of_string s12 = f then s12
      else
        let s15 = Printf.sprintf "%.15g" f in
        if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f
    in
    (* keep a decimal point (or exponent) so the value re-parses as a float *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let to_string ?(pretty = false) j =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            go (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            escape_string buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) v)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string ~pretty:true j)

(* ---------- parsing ---------- *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    (* encode one Unicode scalar value *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let hi = hex4 () in
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                (* surrogate pair *)
                expect '\\';
                expect 'u';
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired surrogate";
                add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else if hi >= 0xDC00 && hi <= 0xDFFF then fail "unpaired surrogate"
              else add_utf8 buf hi
          | _ -> fail "bad escape");
          go ())
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if not is_floaty then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
