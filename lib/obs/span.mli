(** Hierarchical wall-clock spans.

    A span tree records where time goes inside one query evaluation:
    entering a span starts a child of the currently open span, exiting
    folds the elapsed time into it. Re-entering a name under the same
    parent accumulates into the same node (so a span run in a loop shows
    one line with a count, not one line per iteration). Collectors are
    single-domain values — create one per query, not one per process. *)

type node = {
  name : string;
  mutable total_s : float;  (** summed wall-clock seconds over all entries *)
  mutable count : int;  (** how many times the span was entered *)
  mutable children : node list;  (** in first-entry order *)
}

type t
(** A collector: a root node plus the stack of currently open spans. *)

val create : string -> t
(** [create name] makes a collector whose root span [name] is already
    open; {!finish} closes it. *)

val enter : t -> string -> unit
(** Opens (or re-opens) the child [name] of the innermost open span. *)

val exit : t -> unit
(** Closes the innermost open span, adding its elapsed time.

    @raise Invalid_argument when only the root is open. *)

val with_ : t -> string -> (unit -> 'a) -> 'a
(** [with_ t name f] brackets [f] with {!enter}/{!exit}; the span is closed
    also when [f] raises. *)

val finish : t -> node
(** Closes every span still open, including the root, and returns the
    tree. The collector must not be used afterwards. *)

val root : t -> node
(** The root node, readable while collection is still running (open spans
    show the time accumulated by completed entries only). *)

val self_s : node -> float
(** Self time: [total_s] minus the children's totals, clamped to [0.]
    (clock granularity can make children sum past the parent). *)

val to_json : node -> Json.t
(** [{"name": ..., "total_s": ..., "self_s": ..., "count": ...,
    "children": [...]}] — empty [children] omitted. *)

val pp : Format.formatter -> node -> unit
(** An indented tree, one line per span: name, total, self time, count,
    and percent of the parent's total — readable without arithmetic even
    when the tree is deep. *)
