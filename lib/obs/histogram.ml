(* Log-linear histograms: 16 linear sub-buckets per power-of-two octave,
   like HDR histograms. A bucket's width is at most 1/16 of its lower
   bound, so quantile estimates (bucket midpoints) are within ~3.2%
   relative error of some sample in the right rank neighbourhood. *)

let sub_buckets = 16

(* frexp exponents covered: [e_min, e_max). Values outside clamp to the
   first/last bucket; for latencies in seconds that is < ~5.4e-20 s and
   > ~9.2e18 s, neither of which a measurement can produce. *)
let e_min = -64

let e_max = 64

let nbuckets = (e_max - e_min) * sub_buckets

let relative_error = 1.0 /. (2.0 *. float_of_int sub_buckets)

type t = {
  counts : int array;
  mutable zeros : int;  (* values <= 0. (and nan), kept out of the log buckets *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make nbuckets 0;
    zeros = 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity }

let bucket_of v =
  (* v > 0: frexp v = (m, e) with m in [0.5, 1), v = m * 2^e *)
  let m, e = Float.frexp v in
  let sub = int_of_float ((m -. 0.5) *. float_of_int (2 * sub_buckets)) in
  let sub = if sub >= sub_buckets then sub_buckets - 1 else max 0 sub in
  let idx = ((e - e_min) * sub_buckets) + sub in
  if idx < 0 then 0 else if idx >= nbuckets then nbuckets - 1 else idx

(* Midpoint of bucket [idx]: the bucket spans
   [2^e * (1/2 + s/32), 2^e * (1/2 + (s+1)/32)). *)
let bucket_mid idx =
  let e = (idx / sub_buckets) + e_min in
  let s = idx mod sub_buckets in
  Float.ldexp (0.5 +. ((float_of_int s +. 0.5) /. float_of_int (2 * sub_buckets))) e

let add t v =
  t.count <- t.count + 1;
  if v > 0.0 then begin
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    let idx = bucket_of v in
    t.counts.(idx) <- t.counts.(idx) + 1
  end
  else begin
    t.zeros <- t.zeros + 1;
    if v <= 0.0 then begin
      (* keep min/max honest for non-positive observations *)
      if v < t.min_v then t.min_v <- v;
      if v > t.max_v then t.max_v <- v
    end
  end

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0.0 else t.min_v

let max_value t = if t.count = 0 then 0.0 else t.max_v

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(* Nearest-rank quantile over the bucketed distribution: the value
   reported is the midpoint of the bucket containing the sample of rank
   [ceil(q * count)] (non-positive observations rank below every
   bucket). *)
let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = int_of_float (Float.round (q *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    if rank <= t.zeros then Float.min 0.0 (min_value t)
    else begin
      let remaining = ref (rank - t.zeros) in
      let idx = ref 0 in
      let result = ref (max_value t) in
      (try
         while !idx < nbuckets do
           let c = t.counts.(!idx) in
           if c >= !remaining then begin
             result := bucket_mid !idx;
             raise Stdlib.Exit
           end;
           remaining := !remaining - c;
           incr idx
         done
       with Stdlib.Exit -> ());
      !result
    end
  end

let merge_into ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.zeros <- into.zeros + t.zeros;
  into.count <- into.count + t.count;
  into.sum <- into.sum +. t.sum;
  if t.min_v < into.min_v then into.min_v <- t.min_v;
  if t.max_v > into.max_v then into.max_v <- t.max_v

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

let to_json t =
  let buckets =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i ->
              if t.counts.(i) = 0 then None
              else Some (Json.List [ Json.Float (bucket_mid i); Json.Int t.counts.(i) ]))
            (Seq.init nbuckets Fun.id)))
  in
  Json.Obj
    [ ("count", Json.Int t.count);
      ("sum", Json.Float t.sum);
      ("mean", Json.Float (mean t));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("p50", Json.Float (quantile t 0.5));
      ("p90", Json.Float (quantile t 0.9));
      ("p99", Json.Float (quantile t 0.99));
      ("buckets", Json.List buckets) ]
