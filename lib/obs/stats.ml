type lifted_rules = {
  independent_unions : int;
  independent_joins : int;
  separator_steps : int;
  ie_expansions : int;
  ie_terms : int;
  cancelled_terms : int;
  negations : int;
  base_lookups : int;
}

type dpll_counts = {
  branches : int;
  unit_propagations : int;
  cache_hits : int;
  cache_queries : int;
  component_splits : int;
  cache_entries : int;
  cache_evictions : int;
}

type wmc_counts = {
  wmc_decisions : int;
  propagations : int;
  components : int;
  wmc_cache_hits : int;
  wmc_cache_queries : int;
  wmc_cache_entries : int;
  wmc_cache_evictions : int;
  max_trail : int;
}

type circuit_counts = { circuit_class : string; nodes : int; edges : int }

type prepare_counts = {
  prep_hit : bool;
  prep_key : string;
  prep_cache_hits : int;
  prep_cache_misses : int;
  prep_cache_evictions : int;
  prep_cache_entries : int;
}

type plan_counts = { operators : int; peak_rows : int }

type storage_counts = {
  st_path : string;
  st_file_bytes : int;
  st_open_s : float;
  st_bytes_mapped : int;
  st_cols_mapped : int;
  st_rels_materialized : int;
}

type gc_counts = {
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable compactions : int;
  mutable heap_peak_words : int;
}

let fresh_gc () =
  { minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    heap_peak_words = 0 }

type phase = Parse | Prepare | Classify | Plan | Solve

type t = {
  mutable query : string option;
  mutable request_id : string option;
  mutable strategy : string option;
  mutable probability : float option;
  mutable exact : bool;
  mutable std_error : float option;
  mutable parse_s : float;
  mutable prepare_s : float;
  mutable classify_s : float;
  mutable plan_s : float;
  mutable solve_s : float;
  mutable lifted : lifted_rules option;
  mutable dpll : dpll_counts option;
  mutable wmc : wmc_counts option;
  mutable circuit : circuit_counts option;
  mutable plan : plan_counts option;
  mutable prepare : prepare_counts option;
  mutable storage : storage_counts option;
  mutable memo_hit_rate : float option;
  mutable skipped : (string * string) list;
  mutable degraded : bool;
  mutable ci_low : float option;
  mutable ci_high : float option;
  mutable samples : int option;
  mutable chain : (string * string * string) list;
  mutable domains_used : int;
  mutable par_tasks : int;
  mutable rows_processed : int;
  gc : gc_counts;
  mutable config : (string * Json.t) list;
}

let create () =
  { query = None;
    request_id = None;
    strategy = None;
    probability = None;
    exact = true;
    std_error = None;
    parse_s = 0.0;
    prepare_s = 0.0;
    classify_s = 0.0;
    plan_s = 0.0;
    solve_s = 0.0;
    lifted = None;
    dpll = None;
    wmc = None;
    circuit = None;
    plan = None;
    prepare = None;
    storage = None;
    memo_hit_rate = None;
    skipped = [];
    degraded = false;
    ci_low = None;
    ci_high = None;
    samples = None;
    chain = [];
    domains_used = 1;
    par_tasks = 0;
    rows_processed = 0;
    gc = fresh_gc ();
    config = [] }

let total_s t = t.parse_s +. t.prepare_s +. t.classify_s +. t.plan_s +. t.solve_s

let record_phase t phase dt =
  let dt = Float.max 0.0 dt in
  match phase with
  | Parse -> t.parse_s <- t.parse_s +. dt
  | Prepare -> t.prepare_s <- t.prepare_s +. dt
  | Classify -> t.classify_s <- t.classify_s +. dt
  | Plan -> t.plan_s <- t.plan_s +. dt
  | Solve -> t.solve_s <- t.solve_s +. dt

let time_phase t phase f =
  let t0 = Clock.now () in
  Fun.protect ~finally:(fun () -> record_phase t phase (Clock.now () -. t0)) f

let hit_rate ~hits ~queries =
  if queries = 0 then None else Some (float_of_int hits /. float_of_int queries)

(* ---------- GC profiling ---------- *)

(* [Gc.quick_stat] deltas around a region of work, folded into the stats
   record. Callers must not nest [with_gc] on the same record: the outer
   region's deltas would double-count the inner's. When tracing is on,
   the running totals are also emitted as counter events so the trace
   timeline shows allocation pressure per phase. *)
(* [Gc.quick_stat] only refreshes its allocation counters at collection
   boundaries (and does not maintain [top_heap_words] at all on OCaml 5),
   so a short region that triggers no collection would read as zero
   words. [Gc.minor_words ()] is the live allocation counter, and
   [heap_words] the current major-heap size — those two carry the signal
   between collections. *)
let with_gc t f =
  let b = Gc.quick_stat () in
  let b_minor = Gc.minor_words () in
  Fun.protect
    ~finally:(fun () ->
      let a = Gc.quick_stat () in
      let g = t.gc in
      g.minor_words <- g.minor_words +. (Gc.minor_words () -. b_minor);
      g.major_words <- g.major_words +. (a.Gc.major_words -. b.Gc.major_words);
      g.promoted_words <- g.promoted_words +. (a.Gc.promoted_words -. b.Gc.promoted_words);
      g.minor_collections <-
        g.minor_collections + (a.Gc.minor_collections - b.Gc.minor_collections);
      g.major_collections <-
        g.major_collections + (a.Gc.major_collections - b.Gc.major_collections);
      g.compactions <- g.compactions + (a.Gc.compactions - b.Gc.compactions);
      g.heap_peak_words <- max g.heap_peak_words a.Gc.heap_words;
      if Trace.on () then begin
        Trace.counter ~cat:"gc" "gc.minor_words" g.minor_words;
        Trace.counter ~cat:"gc" "gc.major_words" g.major_words;
        Trace.counter ~cat:"gc" "gc.minor_collections" (float_of_int g.minor_collections);
        Trace.counter ~cat:"gc" "gc.major_collections" (float_of_int g.major_collections);
        Trace.counter ~cat:"gc" "gc.heap_words" (float_of_int a.Gc.heap_words)
      end)
    f

(* ---------- JSON ---------- *)

let opt f = function None -> Json.Null | Some v -> f v

let lifted_to_json (l : lifted_rules) =
  Json.Obj
    [ ("independent_unions", Json.Int l.independent_unions);
      ("independent_joins", Json.Int l.independent_joins);
      ("separator_steps", Json.Int l.separator_steps);
      ("ie_expansions", Json.Int l.ie_expansions);
      ("ie_terms", Json.Int l.ie_terms);
      ("cancelled_terms", Json.Int l.cancelled_terms);
      ("negations", Json.Int l.negations);
      ("base_lookups", Json.Int l.base_lookups) ]

let dpll_to_json (d : dpll_counts) =
  Json.Obj
    [ ("branches", Json.Int d.branches);
      ("unit_propagations", Json.Int d.unit_propagations);
      ("cache_hits", Json.Int d.cache_hits);
      ("cache_queries", Json.Int d.cache_queries);
      ("component_splits", Json.Int d.component_splits);
      ("cache_entries", Json.Int d.cache_entries);
      ("cache_evictions", Json.Int d.cache_evictions) ]

let wmc_to_json (w : wmc_counts) =
  Json.Obj
    [ ("decisions", Json.Int w.wmc_decisions);
      ("propagations", Json.Int w.propagations);
      ("components", Json.Int w.components);
      ("cache_hits", Json.Int w.wmc_cache_hits);
      ("cache_queries", Json.Int w.wmc_cache_queries);
      ("cache_entries", Json.Int w.wmc_cache_entries);
      ("cache_evictions", Json.Int w.wmc_cache_evictions);
      ("max_trail", Json.Int w.max_trail) ]

let circuit_to_json (c : circuit_counts) =
  Json.Obj
    [ ("class", Json.Str c.circuit_class);
      ("nodes", Json.Int c.nodes);
      ("edges", Json.Int c.edges) ]

let plan_to_json (p : plan_counts) =
  Json.Obj
    [ ("operators", Json.Int p.operators); ("peak_rows", Json.Int p.peak_rows) ]

let prepare_to_json (p : prepare_counts) =
  Json.Obj
    [ ("hit", Json.Bool p.prep_hit);
      ("key", Json.Str p.prep_key);
      ("cache_hits", Json.Int p.prep_cache_hits);
      ("cache_misses", Json.Int p.prep_cache_misses);
      ("cache_evictions", Json.Int p.prep_cache_evictions);
      ("cache_entries", Json.Int p.prep_cache_entries);
      ( "cache_hit_rate",
        match
          hit_rate ~hits:p.prep_cache_hits
            ~queries:(p.prep_cache_hits + p.prep_cache_misses)
        with
        | Some r -> Json.Float r
        | None -> Json.Null ) ]

let storage_to_json (s : storage_counts) =
  Json.Obj
    [ ("path", Json.Str s.st_path);
      ("file_bytes", Json.Int s.st_file_bytes);
      ("open_s", Json.Float s.st_open_s);
      ("bytes_mapped", Json.Int s.st_bytes_mapped);
      ("cols_mapped", Json.Int s.st_cols_mapped);
      ("relations_materialized", Json.Int s.st_rels_materialized) ]

let gc_to_json (g : gc_counts) =
  Json.Obj
    [ ("minor_words", Json.Float g.minor_words);
      ("major_words", Json.Float g.major_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections);
      ("compactions", Json.Int g.compactions);
      ("heap_peak_words", Json.Int g.heap_peak_words) ]

let to_json t =
  Json.Obj
    [ ("query", opt (fun s -> Json.Str s) t.query);
      ("request_id", opt (fun s -> Json.Str s) t.request_id);
      ("strategy", opt (fun s -> Json.Str s) t.strategy);
      ("probability", opt (fun f -> Json.Float f) t.probability);
      ("exact", Json.Bool t.exact);
      ("std_error", opt (fun f -> Json.Float f) t.std_error);
      ( "phases",
        Json.Obj
          [ ("parse_s", Json.Float t.parse_s);
            ("prepare_s", Json.Float t.prepare_s);
            ("classify_s", Json.Float t.classify_s);
            ("plan_s", Json.Float t.plan_s);
            ("solve_s", Json.Float t.solve_s);
            ("total_s", Json.Float (total_s t)) ] );
      ("lifted_rules", opt lifted_to_json t.lifted);
      ("dpll", opt dpll_to_json t.dpll);
      ("wmc", opt wmc_to_json t.wmc);
      ("circuit", opt circuit_to_json t.circuit);
      ("plan", opt plan_to_json t.plan);
      ("prepare", opt prepare_to_json t.prepare);
      ("storage", opt storage_to_json t.storage);
      ("memo_hit_rate", opt (fun f -> Json.Float f) t.memo_hit_rate);
      ( "skipped",
        Json.List
          (List.map
             (fun (s, reason) ->
               Json.Obj [ ("strategy", Json.Str s); ("reason", Json.Str reason) ])
             t.skipped) );
      ("degraded", Json.Bool t.degraded);
      ("ci_low", opt (fun f -> Json.Float f) t.ci_low);
      ("ci_high", opt (fun f -> Json.Float f) t.ci_high);
      ("samples", opt (fun n -> Json.Int n) t.samples);
      ( "chain",
        Json.List
          (List.map
             (fun (s, kind, detail) ->
               Json.Obj
                 [ ("strategy", Json.Str s);
                   ("kind", Json.Str kind);
                   ("detail", Json.Str detail) ])
             t.chain) );
      ("domains_used", Json.Int t.domains_used);
      ("par_tasks", Json.Int t.par_tasks);
      ("rows_processed", Json.Int t.rows_processed);
      ("gc", gc_to_json t.gc);
      ("config", match t.config with [] -> Json.Null | fields -> Json.Obj fields) ]

(* ---------- human table ---------- *)

let ms s = Printf.sprintf "%.3fms" (s *. 1e3)

let pp ppf t =
  let line fmt = Format.fprintf ppf fmt in
  (match t.query with Some q -> line "query            %s@." q | None -> ());
  (match t.request_id with
  | Some r -> line "request_id       %s@." r
  | None -> ());
  (match t.strategy with Some s -> line "strategy         %s@." s | None -> ());
  (match t.probability with
  | Some p ->
      line "probability      %.9g%s%s@." p
        (if t.exact then " (exact)" else "")
        (match t.std_error with
        | Some e -> Printf.sprintf " (±%.2g at 95%%)" (1.96 *. e)
        | None -> "")
  | None -> ());
  line
    "phase timings    parse %s | prepare %s | classify %s | plan %s | solve %s | \
     total %s@."
    (ms t.parse_s) (ms t.prepare_s) (ms t.classify_s) (ms t.plan_s) (ms t.solve_s)
    (ms (total_s t));
  (match t.lifted with
  | Some l ->
      line
        "lifted rules     independent-or/exists %d | independent-and/forall %d | \
         separator %d@."
        l.independent_unions l.independent_joins l.separator_steps;
      line
        "                 inclusion-exclusion %d (terms %d, cancelled %d) | negations %d \
         | base lookups %d@."
        l.ie_expansions l.ie_terms l.cancelled_terms l.negations l.base_lookups
  | None -> ());
  (match t.dpll with
  | Some d ->
      line
        "dpll             branches %d | unit propagations %d | cache %d/%d (evicted %d) \
         | components %d | cached subformulas %d@."
        d.branches d.unit_propagations d.cache_hits d.cache_queries d.cache_evictions
        d.component_splits d.cache_entries
  | None -> ());
  (match t.wmc with
  | Some w ->
      line
        "wmc              decisions %d | propagations %d | components %d | cache %d/%d \
         (entries %d, evicted %d) | max trail %d@."
        w.wmc_decisions w.propagations w.components w.wmc_cache_hits w.wmc_cache_queries
        w.wmc_cache_entries w.wmc_cache_evictions w.max_trail
  | None -> ());
  (match t.circuit with
  | Some c ->
      line "circuit          %s: %d nodes, %d edges@." c.circuit_class c.nodes c.edges
  | None -> ());
  (match t.plan with
  | Some p ->
      line "plan             %d operators | peak intermediate rows %d@." p.operators
        p.peak_rows
  | None -> ());
  (match t.prepare with
  | Some p ->
      line
        "prepared         %s (key %s) | cache %d hits / %d misses / %d evictions \
         | %d entries@."
        (if p.prep_hit then "cache hit" else "cache miss")
        p.prep_key p.prep_cache_hits p.prep_cache_misses p.prep_cache_evictions
        p.prep_cache_entries
  | None -> ());
  (match t.storage with
  | Some s ->
      line
        "storage          packed %s (%d bytes) | open %s | mapped %d cols, %d \
         bytes | materialized %d rels@."
        s.st_path s.st_file_bytes (ms s.st_open_s) s.st_cols_mapped
        s.st_bytes_mapped s.st_rels_materialized
  | None -> ());
  (match t.memo_hit_rate with
  | Some r -> line "memo hit rate    %.1f%%@." (100.0 *. r)
  | None -> ());
  if t.domains_used > 1 || t.par_tasks > 0 then
    line "parallelism      %d domains | %d pool tasks@." t.domains_used t.par_tasks;
  if t.rows_processed > 0 then
    line "rows processed   %d@." t.rows_processed;
  if t.gc.minor_words > 0.0 || t.gc.major_words > 0.0 then
    line
      "gc               minor %.3gMw | major %.3gMw | promoted %.3gMw | collections \
       %d+%d | heap peak %.3gMw@."
      (t.gc.minor_words /. 1e6) (t.gc.major_words /. 1e6) (t.gc.promoted_words /. 1e6)
      t.gc.minor_collections t.gc.major_collections
      (float_of_int t.gc.heap_peak_words /. 1e6);
  if t.degraded then begin
    line "degraded         yes — exact strategies exhausted@.";
    (match (t.ci_low, t.ci_high) with
    | Some lo, Some hi -> line "confidence       [%.9g, %.9g]@." lo hi
    | _ -> ());
    match t.samples with
    | Some n -> line "samples          %d@." n
    | None -> ()
  end;
  List.iter
    (fun (s, kind, detail) -> line "chain            %s %s: %s@." s kind detail)
    t.chain;
  (* [chain] is the typed superset of [skipped]; avoid printing both *)
  if t.chain = [] then
    List.iter (fun (s, reason) -> line "skipped          %s: %s@." s reason) t.skipped
