(** Windowed aggregation: rolling-horizon views over counters and
    histograms, backed by a ring of epoch-stamped time buckets.

    Writes are O(1); reads merge the buckets inside the requested horizon
    on demand, so one ring serves every horizon up to
    [buckets * bucket_s] seconds (default 300 x 1s = 5 minutes). All
    operations are thread-safe. *)

type counter
(** A windowed event counter. *)

val counter : ?buckets:int -> ?bucket_s:float -> unit -> counter
(** [counter ()] creates a ring of [buckets] (default 300) buckets of
    [bucket_s] (default 1.0) seconds each.
    @raise Invalid_argument if [buckets < 1] or [bucket_s <= 0]. *)

val add : counter -> int -> unit
(** Add [n] events at the current time. *)

val incr : counter -> unit
(** [incr c] is [add c 1]. *)

val total : counter -> horizon_s:float -> int
(** Events recorded in the last [horizon_s] seconds (clamped to the ring
    span). *)

val rate : counter -> horizon_s:float -> float
(** Events per second over the last [horizon_s] seconds. Divides by the
    time the window has actually covered, so rates are meaningful before
    the ring has lived a full horizon. *)

type histogram
(** A windowed histogram of float observations. *)

val histogram : ?buckets:int -> ?bucket_s:float -> unit -> histogram
(** Same ring parameters as {!counter}.
    @raise Invalid_argument if [buckets < 1] or [bucket_s <= 0]. *)

val observe : histogram -> float -> unit
(** Record one observation at the current time. *)

val snapshot : histogram -> horizon_s:float -> Histogram.t
(** Merge the buckets of the last [horizon_s] seconds into a fresh
    {!Histogram.t} for quantile queries. *)
