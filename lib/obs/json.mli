(** A minimal JSON tree, encoder and parser.

    The observability layer ships per-query statistics as JSON (CLI
    [--stats-json], bench [BENCH_*.json]); the container deliberately has no
    JSON dependency, so this module implements the small subset of
    RFC 8259 the stats schema needs: the full value grammar on output, and
    a strict recursive-descent parser on input (used by the round-trip
    tests and by external tooling that re-reads bench output).

    Not a general-purpose library: no streaming, no number-precision
    guarantees beyond IEEE doubles, and [\uXXXX] escapes decode basic-plane
    scalars plus surrogate pairs only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise. [Float] values that are NaN or infinite print as [null]
    (JSON has no lexeme for them); integral floats keep a decimal point so
    they round-trip as floats.

    @param pretty two-space indentation and one member per line
                  (default [false]: compact, no whitespace). *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value followed only by whitespace. Numbers
    without [.], [e] or [E] parse as [Int] when they fit in [int], as
    [Float] otherwise.

    @return [Error msg] with a character offset on malformed input. *)

val member : string -> t -> t option
(** [member k j] is the value bound to key [k] when [j] is an [Obj] that
    binds it, [None] otherwise. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints as by [to_string ~pretty:true]. *)
