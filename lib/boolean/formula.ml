type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list

let tru = True
let fls = False
let var x = Var x

let rank = function
  | True -> 0
  | False -> 1
  | Var _ -> 2
  | Not _ -> 3
  | And _ -> 4
  | Or _ -> 5

let rec compare a b =
  match a, b with
  | True, True | False, False -> 0
  | Var x, Var y -> Int.compare x y
  | Not f, Not g -> compare f g
  | And fs, And gs | Or fs, Or gs -> List.compare compare fs gs
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Full structural hash (the polymorphic [Hashtbl.hash] only samples a
   bounded prefix, which collides badly on large lineages). One pass, no
   allocation — cheaper to build than a serialised string key and equally
   discriminating when paired with [equal] in a hashtable. *)
let hash f =
  let mix h v = (h * 486187739) + v land max_int in
  let rec go h = function
    | True -> mix h 1
    | False -> mix h 2
    | Var x -> mix (mix h 3) x
    | Not f -> go (mix h 5) f
    | And fs -> mix (List.fold_left go (mix h 7) fs) 11
    | Or fs -> mix (List.fold_left go (mix h 13) fs) 17
  in
  go 0 f land max_int

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

(* Shared n-ary constructor: [absorbing] kills the whole expression, [unit_]
   disappears; complementary children collapse to [absorbing]. *)
let nary ~absorbing ~unit_ ~flatten ~wrap children =
  let rec gather acc = function
    | [] -> Some acc
    | c :: rest -> (
        match c with
        | c when equal c absorbing -> None
        | c when equal c unit_ -> gather acc rest
        | c -> (
            match flatten c with
            | Some inner -> gather (List.rev_append inner acc) rest
            | None -> gather (c :: acc) rest))
  in
  match gather [] children with
  | None -> absorbing
  | Some children -> (
      let children = List.sort_uniq compare children in
      let complement f = List.exists (fun g -> equal g (neg f)) children in
      if List.exists complement children then absorbing
      else
        match children with
        | [] -> unit_
        | [ c ] -> c
        | cs -> wrap cs)

let conj fs =
  nary ~absorbing:False ~unit_:True
    ~flatten:(function And fs -> Some fs | _ -> None)
    ~wrap:(fun cs -> And cs)
    fs

let disj fs =
  nary ~absorbing:True ~unit_:False
    ~flatten:(function Or fs -> Some fs | _ -> None)
    ~wrap:(fun cs -> Or cs)
    fs

let conj2 a b = conj [ a; b ]
let disj2 a b = disj [ a; b ]
let implies a b = disj2 (neg a) b
let iff a b = conj2 (implies a b) (implies b a)

module Iset = Set.Make (Int)

let rec vars_set = function
  | True | False -> Iset.empty
  | Var x -> Iset.singleton x
  | Not f -> vars_set f
  | And fs | Or fs ->
      List.fold_left (fun acc f -> Iset.union acc (vars_set f)) Iset.empty fs

let vars f = Iset.elements (vars_set f)
let var_count f = Iset.cardinal (vars_set f)

let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs

let rec eval assignment = function
  | True -> true
  | False -> false
  | Var x -> assignment x
  | Not f -> not (eval assignment f)
  | And fs -> List.for_all (eval assignment) fs
  | Or fs -> List.exists (eval assignment) fs

let rec substitute subst = function
  | True -> True
  | False -> False
  | Var x as f -> ( match subst x with Some g -> g | None -> f)
  | Not f -> neg (substitute subst f)
  | And fs -> conj (List.map (substitute subst) fs)
  | Or fs -> disj (List.map (substitute subst) fs)

let condition x b f =
  substitute (fun y -> if y = x then Some (if b then True else False) else None) f

let rec nnf = function
  | (True | False | Var _) as f -> f
  | And fs -> conj (List.map nnf fs)
  | Or fs -> disj (List.map nnf fs)
  | Not f -> (
      match f with
      | True -> False
      | False -> True
      | Var _ -> Not f
      | Not g -> nnf g
      | And fs -> disj (List.map (fun g -> nnf (Not g)) fs)
      | Or fs -> conj (List.map (fun g -> nnf (Not g)) fs))

let rec is_positive = function
  | True | False | Var _ -> true
  | Not _ -> false
  | And fs | Or fs -> List.for_all is_positive fs

let is_syntactically_read_once f =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | True | False -> true
    | Var x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end
    | Not f -> go f
    | And fs | Or fs -> List.for_all go fs
  in
  go f

(* DNF clauses are sorted int lists; [absorb] drops supersets of another
   clause. *)
let clause_subsumes small big = List.for_all (fun x -> List.mem x big) small

let absorb clauses =
  let clauses = List.sort_uniq (List.compare Int.compare) clauses in
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' -> c' != c && (not (List.equal Int.equal c c')) && clause_subsumes c' c)
           clauses))
    clauses

let to_dnf f =
  if not (is_positive f) then invalid_arg "Formula.to_dnf: formula is not positive";
  let product cs ds =
    List.concat_map
      (fun c -> List.map (fun d -> List.sort_uniq Int.compare (c @ d)) ds)
      cs
  in
  let rec go = function
    | True -> [ [] ]
    | False -> []
    | Var x -> [ [ x ] ]
    | Not _ -> assert false
    | Or fs -> absorb (List.concat_map go fs)
    | And fs ->
        absorb
          (List.fold_left (fun acc f -> product acc (go f)) [ [] ] fs)
  in
  go f

(* CNF-shape recognition for the clause-database WMC bridge. The smart
   constructors keep values flattened, so one non-recursive pattern match
   per level is exhaustive: a literal, a clause of literals, or a
   conjunction of clauses. *)
let as_literal = function
  | Var v -> Some (v, true)
  | Not (Var v) -> Some (v, false)
  | _ -> None

let as_clause f =
  match as_literal f with
  | Some l -> Some [ l ]
  | None -> (
      match f with
      | Or fs ->
          List.fold_left
            (fun acc g ->
              match acc, as_literal g with
              | Some ls, Some l -> Some (l :: ls)
              | _ -> None)
            (Some []) fs
          |> Option.map List.rev
      | _ -> None)

let as_cnf = function
  | True -> Some []
  | False -> Some [ [] ]
  | And fs ->
      List.fold_left
        (fun acc g ->
          match acc, as_clause g with
          | Some cs, Some c -> Some (c :: cs)
          | _ -> None)
        (Some []) fs
      |> Option.map List.rev
  | f -> Option.map (fun c -> [ c ]) (as_clause f)

let to_key f =
  let buf = Buffer.create 64 in
  let rec go = function
    | True -> Buffer.add_char buf 'T'
    | False -> Buffer.add_char buf 'F'
    | Var x ->
        Buffer.add_char buf 'v';
        Buffer.add_string buf (string_of_int x)
    | Not f ->
        Buffer.add_char buf '!';
        go f
    | And fs ->
        Buffer.add_char buf '(';
        List.iter
          (fun f ->
            go f;
            Buffer.add_char buf '&')
          fs;
        Buffer.add_char buf ')'
    | Or fs ->
        Buffer.add_char buf '[';
        List.iter
          (fun f ->
            go f;
            Buffer.add_char buf '|')
          fs;
        Buffer.add_char buf ']'
  in
  go f;
  Buffer.contents buf

let pp ?(label = fun x -> "x" ^ string_of_int x) () ppf f =
  let rec go ppf = function
    | True -> Format.pp_print_string ppf "true"
    | False -> Format.pp_print_string ppf "false"
    | Var x -> Format.pp_print_string ppf (label x)
    | Not f -> Format.fprintf ppf "!%a" atomic f
    | And fs ->
        Format.fprintf ppf "%a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " /\\ ")
             atomic)
          fs
    | Or fs ->
        Format.fprintf ppf "%a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " \\/ ")
             atomic)
          fs
  and atomic ppf = function
    | (True | False | Var _ | Not _) as f -> go ppf f
    | f -> Format.fprintf ppf "(%a)" go f
  in
  go ppf f

let to_string ?label f = Format.asprintf "%a" (pp ?label ()) f
