(** Propositional formulas over integer variables.

    These are the Boolean formulas of the model-counting problem (Sec. 7 of
    the paper): lineages of queries are values of this type, and all the
    grounded-inference machinery (brute-force WMC, DPLL, knowledge
    compilation) consumes it.

    Values are kept lightly normalised by the smart constructors: [And]/[Or]
    are flattened, sorted, duplicate-free, never contain their identity or
    absorbing element, and never have fewer than two children. This gives a
    cheap syntactic canonical form used as a cache key by DPLL. *)

type t = private
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list

val tru : t
val fls : t
val var : int -> t

val neg : t -> t
(** Pushes through constants and double negation. *)

val conj : t list -> t
(** n-ary conjunction with flattening, identity/absorption, duplicate
    removal and complement detection ([x /\ ~x = false]). *)

val disj : t list -> t

val conj2 : t -> t -> t
val disj2 : t -> t -> t

val implies : t -> t -> t
(** Material implication [~a \/ b]. *)

val iff : t -> t -> t

val compare : t -> t -> int
(** Structural total order (on the normalised form). *)

val equal : t -> t -> bool

val hash : t -> int
(** Full structural hash consistent with {!equal}: one pass over the whole
    AST (unlike the polymorphic [Hashtbl.hash], which samples a bounded
    prefix and degenerates on large lineages). Suitable for
    [Hashtbl.Make]-style hashed structural keys, e.g. the DPLL cache. *)

val vars : t -> int list
(** Variables occurring in the formula, sorted, without duplicates. *)

val var_count : t -> int

val size : t -> int
(** Number of AST nodes. *)

val eval : (int -> bool) -> t -> bool

val condition : int -> bool -> t -> t
(** [condition x b f] is [f[x := b]], re-normalised — the restriction used
    by the Shannon expansion (Eq. (11) of the paper). *)

val substitute : (int -> t option) -> t -> t
(** Simultaneous substitution of formulas for variables. *)

val nnf : t -> t
(** Negation normal form: negations pushed down to variables. *)

val is_positive : t -> bool
(** No negation anywhere (e.g. lineages of monotone queries). *)

val is_syntactically_read_once : t -> bool
(** Every variable occurs at most once in the AST. A read-once formula's
    probability is computable in linear time; this is the easy syntactic
    check, not the full read-once recognition of Golumbic et al. *)

val to_dnf : t -> int list list
(** Disjunctive normal form of a positive formula as a list of clauses
    (sorted variable lists), with absorption applied. Raises
    [Invalid_argument] on non-positive input. Worst-case exponential — meant
    for lineages of fixed queries on moderate databases. *)

val as_cnf : t -> (int * bool) list list option
(** [Some clauses] when the formula is syntactically a conjunction of
    disjunctions of literals — each literal [(v, sign)] with [sign = false]
    for a negated variable. [True] is the empty conjunction [Some []] and
    [False] the empty clause [Some [[]]]. Lineages of universal queries are
    CNF-shaped by construction; this is the gate the engine's WMC strategy
    uses to pick the direct clause translation over Tseitin clausification
    (see [Probdb_cnf.Cnf]). Returns [None] on any other shape. *)

val to_key : t -> string
(** Compact serialisation of the normalised form; equal formulas (as values)
    have equal keys. *)

val pp : ?label:(int -> string) -> unit -> Format.formatter -> t -> unit
val to_string : ?label:(int -> string) -> t -> string
