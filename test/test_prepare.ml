(* The prepare/execute split: canonical structural keys, constant
   binding, the shared compiled-plan cache, and the contract the whole
   design rests on — caching can never change an answer.

   Bit-identity is asserted at the float-bits level between the cold
   path (a capacity-0 cache: identical pipeline, nothing retained), the
   first (cold) evaluation through a real cache, and the warm hit; the
   legacy uncached engine is compared within numeric tolerance only,
   because plan promotion legitimately changes which exact method
   answers. *)

module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module Prepare = Probdb_prepare.Prepare
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen
module Stats = Probdb_obs.Stats
module Json = Probdb_obs.Json
module P = Probdb_plans
module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Protocol = Probdb_serve.Protocol

let parse = L.Parser.parse_sentence
let key_of text = fst (Prepare.key_of_query (parse text))

let db_for q ~seed ~domain_size =
  let specs =
    List.map
      (fun (name, arity) -> Gen.spec ~density:0.7 name arity)
      (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size specs

(* ---------- the canonical key ---------- *)

let test_key_canonicalisation () =
  (* alpha-equivalent sentences share a key *)
  Alcotest.(check string) "alpha-renaming invariant"
    (key_of "exists x y. R(x) && S(x,y)")
    (key_of "exists u v. R(u) && S(u,v)");
  (* constants lift to parameters: same template, different binding *)
  let ka, pa = Prepare.key_of_query (parse "exists x. S(x,'a')") in
  let kb, pb = Prepare.key_of_query (parse "exists x. S(x,'b')") in
  Alcotest.(check string) "constants share a template" ka kb;
  Alcotest.(check bool) "bindings differ" false (pa = pb);
  Alcotest.(check int) "one parameter" 1 (Array.length pa);
  (* the constant-equality pattern is part of the structure: a repeated
     constant constrains a join, two distinct ones do not *)
  Alcotest.(check bool) "equality pattern distinguishes" false
    (String.equal
       (key_of "exists x. S(x,'a') && T('a')")
       (key_of "exists x. S(x,'a') && T('b')"));
  (* ...and the repeated-constant key is itself shared modulo renaming *)
  Alcotest.(check string) "repeated pattern shared"
    (key_of "exists x. S(x,'a') && T('a')")
    (key_of "exists x. S(x,'zz') && T('zz')");
  (* structurally different queries never collide *)
  Alcotest.(check bool) "structure distinguishes" false
    (String.equal (key_of Q.q_hier.Q.text) (key_of Q.h0.Q.text));
  (* parameters come back in first-occurrence order *)
  let _, params = Prepare.key_of_query (parse "exists x. S(x,'b') && R('a')") in
  Alcotest.(check (list string)) "first-occurrence order" [ "b"; "a" ]
    (List.map Core.Value.to_string (Array.to_list params))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_bind_roundtrip () =
  let b = Prepare.prepare (parse "exists x y. R(x) && S(x,y) && T('a')") in
  Alcotest.(check int) "one parameter" 1 b.Prepare.artifact.Prepare.nparams;
  (match Prepare.bind_ucq b with
  | Ok (ucq, L.Ucq.Direct) ->
      let s = Format.asprintf "%a" L.Ucq.pp ucq in
      Alcotest.(check bool) "constant bound back" true (contains s "a");
      Alcotest.(check bool) "no marker leaks" false (String.contains s '\x00')
  | Ok (_, L.Ucq.Complemented) -> Alcotest.fail "expected a direct UCQ"
  | Error msg -> Alcotest.failf "expected a UCQ, got %S" msg);
  match Prepare.bind_plan b with
  | Some plan ->
      let s = P.Plan.to_string plan in
      Alcotest.(check bool) "plan mentions the constant" true (contains s "a");
      Alcotest.(check bool) "no marker in the plan" false (String.contains s '\x00')
  | None -> Alcotest.fail "hierarchical CQ must have a template plan"

(* ---------- bit-identity of cached execution ---------- *)

let bits = Int64.bits_of_float

let fingerprint = function
  | Ok (a : Answer.t) ->
      Ok
        ( bits a.Answer.value,
          a.Answer.strategy,
          a.Answer.degraded,
          List.map
            (fun s ->
              (Answer.step_strategy s, Answer.step_kind s, Answer.step_detail s))
            a.Answer.chain )
  | Error e -> Error (Probdb_core.Probdb_error.render e)

(* cold-through-cache, warm hit, and capacity-0 must agree bit for bit
   (value, strategy, degradation chain); the legacy engine numerically *)
let check_identity ?(legacy_eps = 1e-9) config db q =
  let with_cache cap =
    { config with E.plan_cache = Some (Prepare.Cache.create ~capacity:cap ()) }
  in
  let cached = with_cache 512 in
  let cold = fingerprint (E.eval ~config:cached db q) in
  let warm = fingerprint (E.eval ~config:cached db q) in
  let uncached = fingerprint (E.eval ~config:(with_cache 0) db q) in
  let same a b =
    match (a, b) with
    | Ok fa, Ok fb -> fa = fb
    | Error ma, Error mb -> ma = mb
    | _ -> false
  in
  if not (same cold warm && same cold uncached) then false
  else
    match (fingerprint (E.eval ~config db q), cold) with
    | Ok (lb, _, _, _), Ok (cb, _, _, _) ->
        Float.abs (Int64.float_of_bits lb -. Int64.float_of_bits cb) <= legacy_eps
    | Error _, Error _ -> true
    | _ -> false

let prop_cached_eval_bit_identical =
  Test_util.qcheck ~count:20 "cached eval bit-identical to cold (query zoo)"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      List.for_all
        (fun (e : Q.entry) ->
          let db = db_for e.Q.query ~seed ~domain_size:2 in
          check_identity E.default_config db e.Q.query)
        Q.all)

let test_bit_identity_under_guard_trips () =
  (* deterministic resource trips (budgets, not wall clocks): every exact
     method trips or is skipped, the degradation chain is exercised, and
     the (seeded) degraded answer is still bit-identical cache-on vs off *)
  let starved =
    { E.default_config with
      E.obdd_max_nodes = 10;
      dpll_max_decisions = 10;
      wmc_max_decisions = 10;
      max_enum_support = 2;
      max_ie_terms = Some 1;
      max_plan_rows = Some 1;
      seed = 97;
      degrade = Some { E.eps = 0.2; delta = 0.1; max_samples = 400 } }
  in
  let db = Gen.h0_db ~seed:6 ~n:6 () in
  Alcotest.(check bool) "degraded answer identical" true
    (check_identity starved db Q.h0.Q.query);
  (* a safe query whose promoted plan trips its row budget: the chain must
     record the trip identically on cold, warm and capacity-0 runs *)
  let db2 = db_for Q.q_hier.Q.query ~seed:8 ~domain_size:3 in
  Alcotest.(check bool) "plan trip chain identical" true
    (check_identity starved db2 Q.q_hier.Q.query)

let test_eviction_storm_never_changes_answers () =
  (* capacity 2 with a larger working set: constant eviction churn, yet
     every answer matches the uncached pipeline *)
  let tiny = Prepare.Cache.create ~capacity:2 () in
  let cached = { E.default_config with E.plan_cache = Some tiny } in
  let mismatches = ref 0 in
  for round = 1 to 3 do
    List.iter
      (fun (e : Q.entry) ->
        let db = db_for e.Q.query ~seed:round ~domain_size:2 in
        let fresh =
          { E.default_config with
            E.plan_cache = Some (Prepare.Cache.create ~capacity:0 ()) }
        in
        match (E.eval ~config:cached db e.Q.query, E.eval ~config:fresh db e.Q.query) with
        | Ok a, Ok b -> if bits a.Answer.value <> bits b.Answer.value then incr mismatches
        | Error _, Error _ -> ()
        | _ -> incr mismatches)
      Q.all
  done;
  Alcotest.(check int) "no drift under eviction churn" 0 !mismatches;
  let k = Prepare.Cache.counters tiny in
  Alcotest.(check bool) "cache stayed bounded" true (k.Prepare.Cache.entries <= 2);
  Alcotest.(check bool) "evictions happened" true (k.Prepare.Cache.evictions > 0)

(* ---------- the shared cache under concurrency ---------- *)

let test_concurrent_lookups_exact_counters () =
  (* N domains hammer one cache, half the keys shared across domains and
     half private; no torn artifacts (every returned artifact equals a
     fresh rebuild) and the atomic counters balance exactly *)
  let shared = List.init 8 (fun k -> Q.hierarchical_chain (k + 1)) in
  let private_pool did = List.init 8 (fun k -> Q.hierarchical_chain (10 + (8 * did) + k)) in
  let cache = Prepare.Cache.create () in
  let n_domains = 4 and iters = 200 in
  let torn = Atomic.make 0 in
  let worker did () =
    let privs = private_pool did in
    for i = 0 to iters - 1 do
      let q =
        if i mod 2 = 0 then List.nth shared (((i / 2) + did) mod 8)
        else List.nth privs ((i / 2) mod 8)
      in
      let b = Prepare.Cache.of_query cache q in
      let fresh = Prepare.prepare q in
      if
        b.Prepare.artifact.Prepare.key <> fresh.Prepare.artifact.Prepare.key
        || b.Prepare.artifact.Prepare.nparams <> fresh.Prepare.artifact.Prepare.nparams
        || (b.Prepare.artifact.Prepare.plan = None)
           <> (fresh.Prepare.artifact.Prepare.plan = None)
      then Atomic.incr torn
    done
  in
  let domains = List.init n_domains (fun did -> Domain.spawn (worker did)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn entries" 0 (Atomic.get torn);
  let k = Prepare.Cache.counters cache in
  let distinct = 8 + (n_domains * 8) in
  Alcotest.(check int) "hits + misses = lookups, exactly"
    (n_domains * iters)
    (k.Prepare.Cache.hits + k.Prepare.Cache.misses);
  Alcotest.(check int) "one entry per distinct key" distinct k.Prepare.Cache.entries;
  Alcotest.(check int) "no evictions below capacity" 0 k.Prepare.Cache.evictions;
  Alcotest.(check bool) "every distinct key missed at least once" true
    (k.Prepare.Cache.misses >= distinct)

(* ---------- the serving integration ---------- *)

let small_db () =
  Gen.random_tid ~seed:11 ~domain_size:6
    [ Gen.spec ~density:0.5 "R" 1; Gen.spec ~density:0.3 "S" 2;
      Gen.spec ~density:0.5 "T" 1 ]

let with_server ?config db f =
  let config =
    match config with
    | Some c -> { c with Serve.port = 0 }
    | None -> { Serve.default_config with Serve.port = 0 }
  in
  let server = Serve.start ~config db in
  Fun.protect ~finally:(fun () -> Serve.stop server) (fun () ->
      f server (Serve.port server))

let plain_request query =
  { Protocol.query; free = []; meth = None; deadline_ms = None; samples = None;
    eps = None; delta = None; seed = None; no_degrade = false;
    want_stats = false; request_id = None }

let test_serve_engine_config_hoisted () =
  with_server (small_db ()) @@ fun server _port ->
  let base = Serve.engine_base server in
  (* the base is resolved once, not rebuilt per call *)
  Alcotest.(check bool) "hoisted base is one record" true
    (base == Serve.engine_base server);
  let c = Serve.request_engine_config server (plain_request "exists x. R(x)") in
  (* the request-invariant parts are shared with the base, physically *)
  Alcotest.(check bool) "plan cache shared" true
    (c.E.plan_cache == base.E.plan_cache);
  (match c.E.plan_cache with
  | Some cache ->
      Alcotest.(check bool) "it is the server cache" true
        (cache == Serve.plan_cache server)
  | None -> Alcotest.fail "request config lost the plan cache");
  Alcotest.(check bool) "parent guard shared" true
    (c.E.parent_guard == base.E.parent_guard);
  Alcotest.(check bool) "parent guard installed" true (c.E.parent_guard <> None);
  Alcotest.(check int) "worker-domain confinement" 1 c.E.domains;
  (* a request with no accuracy overrides reuses the resolved degrade
     record instead of re-deriving it *)
  (match (base.E.degrade, c.E.degrade) with
  | Some b, Some r -> Alcotest.(check bool) "degrade record shared" true (b == r)
  | _ -> Alcotest.fail "degradation defaults missing");
  (* per-request overrides still land *)
  let c2 =
    Serve.request_engine_config server
      { (plain_request "exists x. R(x)") with Protocol.meth = Some "dpll" }
  in
  (match c2.E.strategies with
  | [ E.Dpll ] -> ()
  | _ -> Alcotest.fail "method override lost");
  match
    Serve.request_engine_config server
      { (plain_request "exists x. R(x)") with Protocol.meth = Some "quantum" }
  with
  | exception Protocol.Bad _ -> ()
  | _ -> Alcotest.fail "unknown method must raise"

let float_of name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "%S is not a number" name

let test_serve_repeated_templates_hit () =
  (* a repeated-template workload: after the first round every request is
     a cache hit, hit-rate >= 0.9, zero answer drift vs the uncached
     pipeline, and warm responses report ~0 parse/classify time. The
     cache is explicit so the test is meaningful under
     PROBDB_NO_PLAN_CACHE=1 too. *)
  let db = small_db () in
  let queries = [ "exists x y. R(x) && S(x,y)"; "exists x. R(x) && T(x)" ] in
  let uncached =
    { E.default_config with
      E.plan_cache = Some (Prepare.Cache.create ~capacity:0 ()) }
  in
  let expected =
    List.map
      (fun q ->
        match E.eval ~config:uncached db (parse q) with
        | Ok a -> (q, a.Answer.value)
        | Error e -> Alcotest.failf "local eval failed: %s" (Probdb_core.Probdb_error.render e))
      queries
  in
  let cache = Prepare.Cache.create () in
  let config =
    { Serve.default_config with
      Serve.engine = { E.default_config with E.plan_cache = Some cache } }
  in
  with_server ~config db @@ fun server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rounds = 25 in
  for _ = 1 to rounds do
    List.iter
      (fun (q, want) ->
        let resp = Client.eval c q in
        Alcotest.(check bool) ("ok for " ^ q) true (Client.ok resp);
        let got = float_of "value" (Client.result resp) in
        if bits got <> bits want then
          Alcotest.failf "%s: served %.17g drifted from uncached %.17g" q got want)
      expected
  done;
  (* warm request: the stats block reports the hit and zero-cost
     parse/classify phases (nothing records into them on a text hit) *)
  let resp =
    Client.eval c ~fields:[ ("stats", Json.Bool true) ] (fst (List.hd expected))
  in
  let stats = match Json.member "stats" (Client.result resp) with
    | Some s -> s
    | None -> Alcotest.fail "want_stats response missing stats"
  in
  (match Json.member "prepare" stats with
  | Some prep -> (
      match Json.member "hit" prep with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.fail "warm request not reported as a cache hit")
  | None -> Alcotest.fail "stats missing the prepare block");
  (match Json.member "phases" stats with
  | Some phases ->
      Alcotest.(check (float 0.0)) "parse skipped on hit" 0.0 (float_of "parse_s" phases);
      Alcotest.(check (float 0.0)) "classify skipped on hit" 0.0
        (float_of "classify_s" phases)
  | None -> Alcotest.fail "stats missing phases");
  (* the server-level snapshot: >= 0.9 hit rate over the soak *)
  match Json.member "prepare_cache" (Serve.stats_json server) with
  | Some block ->
      let rate = float_of "hit_rate" block in
      Alcotest.(check bool)
        (Printf.sprintf "hit rate %.3f >= 0.9" rate)
        true (rate >= 0.9);
      let hits = float_of "hits" block and misses = float_of "misses" block in
      Alcotest.(check bool) "counters cover the workload" true
        (hits +. misses >= float_of_int (rounds * List.length queries))
  | None -> Alcotest.fail "serve stats missing prepare_cache"

let suites =
  [
    ( "prepare",
      [
        Alcotest.test_case "canonical key" `Quick test_key_canonicalisation;
        Alcotest.test_case "bind round-trip" `Quick test_bind_roundtrip;
        prop_cached_eval_bit_identical;
        Alcotest.test_case "bit identity under guard trips" `Quick
          test_bit_identity_under_guard_trips;
        Alcotest.test_case "eviction storm never changes answers" `Quick
          test_eviction_storm_never_changes_answers;
        Alcotest.test_case "concurrent lookups, exact counters" `Slow
          test_concurrent_lookups_exact_counters;
        Alcotest.test_case "serve: engine config hoisted" `Quick
          test_serve_engine_config_hoisted;
        Alcotest.test_case "serve: repeated templates hit the cache" `Slow
          test_serve_repeated_templates_hit;
      ] );
  ]
