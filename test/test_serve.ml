(* The [probdb serve] suite: protocol conformance, concurrency
   bit-identity against in-process evaluation, admission control,
   overload shedding, and shutdown semantics — everything over a real
   TCP loopback socket, on an ephemeral port per test.

   The multi-client soak scales with PROBDB_SOAK=1 (what `make
   check-serve` sets): 8 clients x 1000 requests instead of the quick
   8 x 50. *)

module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Protocol = Probdb_serve.Protocol
module Json = Probdb_obs.Json
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module L = Probdb_logic
module Gen = Probdb_workload.Gen
module Err = Probdb_core.Probdb_error

let small_db () =
  Gen.random_tid ~seed:11 ~domain_size:6
    [ Gen.spec ~density:0.5 "R" 1; Gen.spec ~density:0.3 "S" 2;
      Gen.spec ~density:0.5 "T" 1 ]

(* Big enough that grounded exact inference on the unsafe H0-shaped query
   polls its guard many times — the deadline and degradation paths need
   work to interrupt. *)
let hard_db () =
  Gen.random_tid ~seed:3 ~domain_size:26
    [ Gen.spec ~density:0.85 "R" 1; Gen.spec ~density:0.8 "S" 2;
      Gen.spec ~density:0.85 "T" 1 ]

let h0 = "exists x y. R(x) && S(x,y) && T(y)"

let queries =
  [ "exists x y. R(x) && S(x,y)";
    "exists x. R(x)";
    h0;
    "forall x y. R(x) || S(x,y)";
    "exists x y. R(x) && S(x,y) && R(y)" ]

let with_server ?config db f =
  let config =
    match config with
    | Some c -> { c with Serve.port = 0 }
    | None -> { Serve.default_config with Serve.port = 0 }
  in
  let server = Serve.start ~config db in
  Fun.protect ~finally:(fun () -> Serve.stop server) (fun () ->
      f server (Serve.port server))

let get name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S in %s" name (Json.to_string j)

let float_of name j =
  match get name j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> Alcotest.failf "%S is not a number" name

let bool_of name j =
  match get name j with
  | Json.Bool b -> b
  | _ -> Alcotest.failf "%S is not a boolean" name

(* ---------- protocol conformance ---------- *)

let test_protocol_ops () =
  with_server (small_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Alcotest.(check bool) "ping" true (Client.ping c);
  (* stats has the documented serve-block fields *)
  let stats = Client.result (Client.call c [ ("op", Json.Str "stats") ]) in
  List.iter
    (fun k -> ignore (get k stats))
    [ "uptime_s"; "workers"; "queue_capacity"; "queue_depth"; "degrade_above";
      "in_flight"; "connections_accepted"; "connections_active"; "requests";
      "eval_ok"; "eval_error"; "shed"; "degraded_under_load"; "worker_failures" ];
  (* metrics is the process-wide registry document *)
  let metrics = Client.result (Client.call c [ ("op", Json.Str "metrics") ]) in
  ignore (get "counters" metrics);
  ignore (get "gauges" metrics);
  ignore (get "histograms" metrics);
  (* trace returns a Chrome trace_event document *)
  let trace =
    Client.result (Client.call c [ ("op", Json.Str "trace"); ("ms", Json.Int 10) ])
  in
  ignore (get "traceEvents" trace);
  (* id round-trips verbatim, including non-integer ids *)
  let resp =
    Client.call c [ ("id", Json.Str "abc"); ("op", Json.Str "ping") ]
  in
  (match get "id" resp with
  | Json.Str "abc" -> ()
  | j -> Alcotest.failf "id not echoed: %s" (Json.to_string j))

let expect_error ~cls ~code resp =
  Alcotest.(check bool) "ok=false" false (Client.ok resp);
  let err = get "error" resp in
  (match get "class" err with
  | Json.Str c -> Alcotest.(check string) "error class" cls c
  | _ -> Alcotest.fail "error class not a string");
  match get "code" err with
  | Json.Int c -> Alcotest.(check int) "error code" code c
  | _ -> Alcotest.fail "error code not an int"

let test_malformed_requests () =
  with_server (small_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let roundtrip line =
    Client.send_line c line;
    match Json.of_string (Client.recv_line c) with
    | Ok j -> j
    | Error m -> Alcotest.failf "response not JSON: %s" m
  in
  (* not JSON at all *)
  expect_error ~cls:"bad-request" ~code:10 (roundtrip "this is not json");
  (* JSON but not an object *)
  expect_error ~cls:"bad-request" ~code:10 (roundtrip "[1,2,3]");
  (* missing op defaults to eval, which then lacks its query — and the
     error still echoes the request id so pipelined clients can match it *)
  let missing = roundtrip {|{"id":17}|} in
  expect_error ~cls:"bad-request" ~code:10 missing;
  (match Json.member "id" missing with
  | Some (Json.Int 17) -> ()
  | other ->
      Alcotest.failf "parse error lost the id: %s"
        (match other with Some j -> Json.to_string j | None -> "absent"));
  (* ...and a well-formed op-less request really is an eval *)
  (match Json.member "ok" (roundtrip {|{"id":18,"query":"exists x. R(x)"}|}) with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "op-less eval request did not succeed");
  (* unknown op *)
  expect_error ~cls:"bad-request" ~code:10 (roundtrip {|{"op":"frobnicate"}|});
  (* eval without query *)
  expect_error ~cls:"bad-request" ~code:10 (roundtrip {|{"op":"eval"}|});
  (* wrong field type *)
  expect_error ~cls:"bad-request" ~code:10
    (roundtrip {|{"op":"eval","query":42}|});
  (* unknown method: recognised at evaluation, still typed *)
  expect_error ~cls:"bad-request" ~code:10
    (Client.eval c ~fields:[ ("method", Json.Str "quantum") ] "exists x. R(x)");
  (* out-of-range numeric fields: bad-request, not an internal engine
     error surfacing from a guard or sampler invariant *)
  expect_error ~cls:"bad-request" ~code:10
    (Client.eval c ~fields:[ ("samples", Json.Int 0) ] "exists x. R(x)");
  expect_error ~cls:"bad-request" ~code:10
    (Client.eval c ~fields:[ ("deadline_ms", Json.Int (-5)) ] "exists x. R(x)");
  expect_error ~cls:"bad-request" ~code:10
    (Client.eval c ~fields:[ ("eps", Json.Float 0.0) ] "exists x. R(x)");
  (* a query that does not parse: the typed parse error, code 4 *)
  expect_error ~cls:"parse" ~code:4 (Client.eval c "exists x. R(x");
  (* the connection survived all of the above *)
  Alcotest.(check bool) "still serving" true (Client.ping c)

(* ---------- bit-identity against in-process evaluation ---------- *)

let local_value db q =
  match
    E.eval ~config:E.default_config db (L.Parser.parse_sentence q)
  with
  | Ok a -> a.Answer.value
  | Error e -> Alcotest.failf "local eval failed: %s" (Err.render e)

let test_eval_matches_local () =
  let db = small_db () in
  let expected = List.map (fun q -> (q, local_value db q)) queries in
  with_server db @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  List.iter
    (fun (q, want) ->
      let resp = Client.eval c q in
      Alcotest.(check bool) ("ok for " ^ q) true (Client.ok resp);
      let got = float_of "value" (Client.result resp) in
      if got <> want then
        Alcotest.failf "%s: served %.17g <> local %.17g" q got want)
    expected

let test_concurrent_clients_bit_identical () =
  let db = small_db () in
  let expected = List.map (fun q -> (q, local_value db q)) queries in
  let soak = Sys.getenv_opt "PROBDB_SOAK" = Some "1" in
  let clients = 8 and rounds = if soak then 200 else 10 in
  (* 8 clients x rounds x 5 queries: 8000 requests in soak mode *)
  with_server db @@ fun server port ->
  let failures = Atomic.make 0 in
  let answered = Atomic.make 0 in
  let client_loop _i =
    let c = Client.connect port in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for _ = 1 to rounds do
      List.iter
        (fun (q, want) ->
          let resp = Client.eval c q in
          let got = float_of "value" (Client.result resp) in
          Atomic.incr answered;
          if not (Client.ok resp) || got <> want then Atomic.incr failures)
        expected
    done
  in
  let threads = List.init clients (fun i -> Thread.create client_loop i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no mismatched answers" 0 (Atomic.get failures);
  Alcotest.(check int) "every request answered"
    (clients * rounds * List.length expected)
    (Atomic.get answered);
  (* zero dropped connections: the servers saw exactly [clients] + none shed *)
  let stats = Serve.stats_json server in
  (match Json.member "shed" stats with
  | Some (Json.Int 0) -> ()
  | j ->
      Alcotest.failf "unexpected shedding under default capacity: %s"
        (match j with Some j -> Json.to_string j | None -> "missing"))

let test_pipelined_requests () =
  (* many requests written before any response is read; per-connection
     answers come back for every id exactly once *)
  with_server (small_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n = 20 in
  for i = 0 to n - 1 do
    Client.send_line c
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int i); ("op", Json.Str "eval");
              ("query", Json.Str "exists x. R(x)") ]))
  done;
  let seen = Hashtbl.create n in
  for _ = 1 to n do
    match Json.of_string (Client.recv_line c) with
    | Ok resp -> (
        Alcotest.(check bool) "ok" true (Client.ok resp);
        match get "id" resp with
        | Json.Int i -> Hashtbl.replace seen i ()
        | _ -> Alcotest.fail "non-integer id echoed")
    | Error m -> Alcotest.failf "bad response: %s" m
  done;
  Alcotest.(check int) "every id answered once" n (Hashtbl.length seen)

(* ---------- deadlines, degradation, overload ---------- *)

let test_deadline_degrades () =
  (* a 1 ms deadline on an unsafe query over the hard database: exact
     inference cannot finish, the guard trips, the answer is the certified
     (eps,delta) fallback *)
  with_server (hard_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let resp = Client.eval c ~fields:[ ("deadline_ms", Json.Int 1) ] h0 in
  Alcotest.(check bool) "ok (degraded, not dropped)" true (Client.ok resp);
  let r = Client.result resp in
  Alcotest.(check bool) "degraded" true (bool_of "degraded" r);
  let conf = get "confidence" r in
  let lo = float_of "ci_low" conf and hi = float_of "ci_high" conf in
  let v = float_of "value" r in
  Alcotest.(check bool) "value inside its own CI" true (lo <= v && v <= hi)

let test_deadline_no_degrade_fails_typed () =
  with_server (hard_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let resp =
    Client.eval c
      ~fields:[ ("deadline_ms", Json.Int 1); ("no_degrade", Json.Bool true) ]
      h0
  in
  (* exhausted (7): a guard tripped and no fallback was allowed *)
  expect_error ~cls:"exhausted" ~code:7 resp

let test_overload_sheds_typed () =
  (* one worker wedged on slow sampling work, capacity 1, no degradation
     watermark: the pipelined burst must shed with the typed overloaded
     error and never queue unboundedly *)
  let config =
    { Serve.default_config with
      Serve.workers = 1;
      queue_capacity = 1;
      degrade_above = 0 }
  in
  with_server ~config (hard_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n = 8 in
  for i = 0 to n - 1 do
    Client.send_line c
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int i); ("op", Json.Str "eval");
              ("query", Json.Str h0);
              ("method", Json.Str "karp-luby");
              ("samples", Json.Int 2_000_000) ]))
  done;
  let ok = ref 0 and shed = ref 0 and other = ref 0 in
  for _ = 1 to n do
    match Json.of_string (Client.recv_line c) with
    | Ok resp ->
        if Client.ok resp then incr ok
        else if Client.error_class resp = Some "overloaded" then begin
          incr shed;
          let err = get "error" resp in
          ignore (get "depth" err);
          ignore (get "capacity" err);
          match get "code" err with
          | Json.Int 8 -> ()
          | _ -> Alcotest.fail "overloaded code <> 8"
        end
        else incr other
    | Error m -> Alcotest.failf "bad response: %s" m
  done;
  Alcotest.(check int) "every request answered" n (!ok + !shed + !other);
  Alcotest.(check int) "no untyped failures" 0 !other;
  Alcotest.(check bool) "some requests shed" true (!shed > 0);
  Alcotest.(check bool) "some requests served" true (!ok > 0)

let test_degrades_under_load () =
  (* watermark 1 with a wedged worker: later admissions in the burst are
     answered with the certified approximation instead of queued exact
     work, and the stats counter records it *)
  let config =
    { Serve.default_config with
      Serve.workers = 1;
      queue_capacity = 16;
      degrade_above = 1 }
  in
  with_server ~config (hard_db ()) @@ fun server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n = 6 in
  for i = 0 to n - 1 do
    Client.send_line c
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int i); ("op", Json.Str "eval");
              ("query", Json.Str h0);
              (* even the degraded answers stay bounded *)
              ("samples", Json.Int 4_000);
              ("deadline_ms", Json.Int 300) ]))
  done;
  let degraded_under_load = ref 0 in
  for _ = 1 to n do
    match Json.of_string (Client.recv_line c) with
    | Ok resp when Client.ok resp ->
        if bool_of "degraded_under_load" (Client.result resp) then
          incr degraded_under_load
    | Ok _ -> () (* typed errors acceptable under a deadline *)
    | Error m -> Alcotest.failf "bad response: %s" m
  done;
  Alcotest.(check bool) "burst tail degraded under load" true
    (!degraded_under_load > 0);
  match Json.member "degraded_under_load" (Serve.stats_json server) with
  | Some (Json.Int k) ->
      Alcotest.(check bool) "stats counter advanced" true (k > 0)
  | _ -> Alcotest.fail "stats missing degraded_under_load"

let test_no_degrade_exempt_under_load () =
  (* past the degradation watermark, a request carrying [no_degrade]
     keeps its exact evaluation and is not counted as degraded-under-load:
     force-degrading it would silently break the exactness contract
     (docs/SERVING.md "Overload semantics") *)
  let config =
    { Serve.default_config with
      Serve.workers = 1;
      queue_capacity = 16;
      degrade_above = 1 }
  in
  let db = hard_db () in
  let cheap = "exists x. R(x)" in
  let want = local_value db cheap in
  with_server ~config db @@ fun server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* two slow sampling jobs (no_degrade so they never touch the counter):
     one wedges the single worker, the other holds the queue depth at the
     watermark while the exact requests behind it are admitted *)
  for i = 0 to 1 do
    Client.send_line c
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int i); ("op", Json.Str "eval");
              ("query", Json.Str h0);
              ("method", Json.Str "karp-luby");
              ("no_degrade", Json.Bool true);
              ("samples", Json.Int 400_000) ]))
  done;
  let n = 3 in
  for i = 2 to 1 + n do
    Client.send_line c
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int i); ("op", Json.Str "eval");
              ("query", Json.Str cheap);
              ("no_degrade", Json.Bool true) ]))
  done;
  for _ = 1 to 2 + n do
    match Json.of_string (Client.recv_line c) with
    | Error m -> Alcotest.failf "bad response: %s" m
    | Ok resp -> (
        Alcotest.(check bool) "ok" true (Client.ok resp);
        match get "id" resp with
        | Json.Int i when i >= 2 ->
            let r = Client.result resp in
            Alcotest.(check bool) "exact despite load" true (bool_of "exact" r);
            Alcotest.(check bool) "not flagged degraded_under_load" false
              (bool_of "degraded_under_load" r);
            let got = float_of "value" r in
            if got <> want then
              Alcotest.failf "no_degrade served %.17g <> exact %.17g" got want
        | _ -> ())
  done;
  match Json.member "degraded_under_load" (Serve.stats_json server) with
  | Some (Json.Int 0) -> ()
  | j ->
      Alcotest.failf "no_degrade requests counted as degraded: %s"
        (match j with Some j -> Json.to_string j | None -> "missing")

(* ---------- shutdown ---------- *)

let test_shutdown_drains_in_flight () =
  (* a slow request is in flight when the shutdown lands on another
     connection; its answer must still arrive before the socket closes *)
  with_server (hard_db ()) @@ fun server port ->
  let c = Client.connect port in
  let slow_resp = ref None in
  let th =
    Thread.create
      (fun () ->
        slow_resp :=
          Some
            (Client.eval c
               ~fields:
                 [ ("method", Json.Str "karp-luby");
                   ("samples", Json.Int 500_000) ]
               h0))
      ()
  in
  (* let the slow request reach a worker *)
  Thread.delay 0.15;
  let admin = Client.connect port in
  let resp = Client.call admin [ ("op", Json.Str "shutdown") ] in
  Alcotest.(check bool) "shutdown acknowledged" true (Client.ok resp);
  Thread.join th;
  Client.close c;
  Client.close admin;
  Serve.wait server;
  (match !slow_resp with
  | Some r -> Alcotest.(check bool) "in-flight answer delivered" true (Client.ok r)
  | None -> Alcotest.fail "in-flight request lost");
  (* new connections are refused once stopped *)
  match Client.connect port with
  | c2 ->
      (* accept backlog may race the close; a read must at least fail *)
      (match Client.ping c2 with
      | true -> Alcotest.fail "server still serving after shutdown"
      | false -> ()
      | exception (End_of_file | Sys_error _ | Failure _ | Client.Connection_closed) -> ());
      Client.close c2
  | exception Unix.Unix_error _ -> ()

let test_stop_now_cancels () =
  (* stop `Now while slow exact work is in flight: the server guard's
     cancellation reaches the evaluation, which answers typed (cancelled
     -> exhausted) or degraded — and stop returns promptly either way *)
  with_server (hard_db ()) @@ fun server port ->
  let c = Client.connect port in
  let got = ref None in
  let th =
    Thread.create
      (fun () ->
        got :=
          Some
            (try
               `Resp
                 (Client.eval c
                    ~fields:[ ("no_degrade", Json.Bool true) ]
                    h0)
             with End_of_file | Sys_error _ | Failure _ | Client.Connection_closed -> `Closed))
      ()
  in
  Thread.delay 0.2;
  let t0 = Unix.gettimeofday () in
  Serve.stop ~mode:`Now server;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "stop `Now returns promptly" true (elapsed < 5.0);
  Thread.join th;
  Client.close c;
  match !got with
  | Some (`Resp r) ->
      (* the in-flight request was interrupted: typed error, never a hang *)
      if Client.ok r then ()
      else
        Alcotest.(check bool) "typed interruption" true
          (match Client.error_class r with
          | Some ("exhausted" | "shutting-down" | "internal") -> true
          | _ -> false)
  | Some `Closed | None -> ()

let test_queued_get_shutting_down_on_stop_now () =
  (* queued-but-not-started requests are failed out with the typed
     shutting-down error when the queue is cleared *)
  let config =
    { Serve.default_config with
      Serve.workers = 1;
      queue_capacity = 8;
      degrade_above = 0 }
  in
  with_server ~config (hard_db ()) @@ fun server port ->
  let c = Client.connect port in
  for i = 0 to 3 do
    Client.send_line c
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int i); ("op", Json.Str "eval");
              ("query", Json.Str h0);
              ("method", Json.Str "karp-luby");
              ("samples", Json.Int 2_000_000) ]))
  done;
  Thread.delay 0.2;
  let stopper = Thread.create (fun () -> Serve.stop ~mode:`Now server) () in
  let classes = ref [] in
  (try
     for _ = 1 to 4 do
       match Json.of_string (Client.recv_line c) with
       | Ok resp ->
           classes :=
             (if Client.ok resp then "ok"
              else Option.value ~default:"?" (Client.error_class resp))
             :: !classes
       | Error _ -> ()
     done
   with End_of_file | Sys_error _ | Client.Connection_closed -> ());
  Thread.join stopper;
  Client.close c;
  Alcotest.(check bool) "queued requests answered shutting-down" true
    (List.mem "shutting-down" !classes)

(* ---------- operational telemetry ---------- *)

module Trace = Probdb_obs.Trace
module Chaos = Probdb_chaos.Chaos
module Request_id = Probdb_obs.Request_id

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* Telemetry recording happens on the worker after the reply is sent, so
   give the background write a moment to land. *)
let eventually ?(timeout_s = 2.0) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let test_request_id_roundtrip () =
  with_server (small_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* a client-supplied id is echoed verbatim on the reply *)
  let resp =
    Client.eval ~fields:[ ("request_id", Json.Str "rid-echo-1") ] c
      "exists x. R(x)"
  in
  Alcotest.(check bool) "eval ok" true (Client.ok resp);
  Alcotest.(check (option string)) "echoed" (Some "rid-echo-1")
    (Client.request_id resp);
  (* the server mints one when the client does not supply it *)
  (match Client.request_id (Client.eval c "exists x. R(x)") with
  | Some rid ->
      Alcotest.(check bool) "minted id valid" true (Request_id.valid rid)
  | None -> Alcotest.fail "no server-minted request_id");
  (* malformed ids are rejected typed, not silently accepted *)
  expect_error ~cls:"bad-request" ~code:10
    (Client.eval ~fields:[ ("request_id", Json.Str "has space") ] c
       "exists x. R(x)")

let test_stats_window_and_uptime () =
  with_server (small_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 5 do
    Alcotest.(check bool) "eval ok" true (Client.ok (Client.eval c h0))
  done;
  let stats = Client.result (Client.call c [ ("op", Json.Str "stats") ]) in
  (* cumulative counters stay exact *)
  Alcotest.(check bool) "uptime present" true
    (float_of "uptime_s" stats >= 0.0);
  Alcotest.(check bool) "start time sane" true
    (float_of "started_unix_s" stats > 1e9);
  (* rolling windows have moved under the load just applied *)
  let window = get "window" stats in
  List.iter (fun h -> ignore (get h window)) [ "10s"; "60s"; "300s" ];
  let w10 = get "10s" window in
  Alcotest.(check bool) "10s answered moved" true
    (float_of "answered" w10 >= 5.0);
  Alcotest.(check bool) "10s qps positive" true (float_of "qps" w10 > 0.0);
  Alcotest.(check bool) "10s p99 present" true (float_of "p99_s" w10 > 0.0)

(* One request through `--slow-query-ms 0` leaves the same correlation id
   on the typed reply, the slow-query NDJSON record, the trace instants
   and the OpenMetrics exposition — the issue's acceptance criterion. *)
let test_request_id_correlation () =
  let log = Filename.temp_file "probdb_slow" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
  @@ fun () ->
  let config =
    { Serve.default_config with
      Serve.slow_query_ms = Some 0.0;
      slow_query_log = Some log }
  in
  Trace.enable ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  with_server ~config (small_db ()) @@ fun server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rid = "rid-corr-7" in
  let resp =
    Client.eval ~fields:[ ("request_id", Json.Str rid) ] c "exists x. R(x)"
  in
  Alcotest.(check bool) "eval ok" true (Client.ok resp);
  Alcotest.(check (option string)) "reply correlated" (Some rid)
    (Client.request_id resp);
  (* slow-query record (threshold 0 logs everything) *)
  Alcotest.(check bool) "slow-query record carries id" true
    (eventually (fun () ->
         contains_sub (read_file log)
           (Printf.sprintf "\"request_id\":%s" (Json.to_string (Json.Str rid)))));
  let slow_line =
    match
      List.find_opt
        (fun l -> contains_sub l rid)
        (String.split_on_char '\n' (read_file log))
    with
    | Some l -> l
    | None -> Alcotest.fail "slow-query line vanished"
  in
  (match Json.of_string slow_line with
  | Ok j ->
      List.iter
        (fun k -> ignore (get k j))
        [ "ts_unix_s"; "request_id"; "query"; "verdict"; "latency_s";
          "queue_wait_s"; "strategy"; "phases"; "chain" ]
  | Error m -> Alcotest.failf "slow-query line not JSON: %s" m);
  (* trace instants *)
  let has_instant name =
    List.exists
      (fun (e : Trace.event) -> e.Trace.kind = Trace.Instant && e.Trace.name = name)
      (Trace.events ())
  in
  Alcotest.(check bool) "trace: admitted instant" true
    (eventually (fun () -> has_instant ("req:" ^ rid ^ ":admitted")));
  Alcotest.(check bool) "trace: ok instant" true
    (eventually (fun () -> has_instant ("req:" ^ rid ^ ":ok")));
  (* OpenMetrics exposition *)
  Alcotest.(check bool) "openmetrics carries id" true
    (eventually (fun () ->
         let om = Serve.openmetrics_text server in
         contains_sub om
           (Printf.sprintf "probdb_last_request_info{request_id=\"%s\"} 1" rid)
         && contains_sub om
              (Printf.sprintf
                 "probdb_last_slow_request_info{request_id=\"%s\"} 1" rid)
         && contains_sub om "# EOF"))

(* A chaos-doomed request is answered with the typed internal error AND
   its telemetry trail — all under the client's correlation id. The
   chaos site allowlist keeps the fault on the worker only, so the
   serve transport stays healthy. *)
let test_doomed_request_carries_id () =
  Chaos.arm ~only:[ "par.worker.crash" ] { Chaos.seed = 42; rate = 1.0 };
  Fun.protect ~finally:Chaos.disarm @@ fun () ->
  Trace.enable ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  let config = { Serve.default_config with Serve.workers = 1 } in
  with_server ~config (small_db ()) @@ fun _server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rid = "rid-doom-1" in
  let resp =
    Client.eval ~fields:[ ("request_id", Json.Str rid) ] c "exists x. R(x)"
  in
  expect_error ~cls:"internal" ~code:1 resp;
  Alcotest.(check (option string)) "doomed reply correlated" (Some rid)
    (Client.request_id resp);
  Alcotest.(check bool) "trace: doomed instant" true
    (eventually (fun () ->
         List.exists
           (fun (e : Trace.event) ->
             e.Trace.kind = Trace.Instant
             && e.Trace.name = "req:" ^ rid ^ ":doomed")
           (Trace.events ())))

let test_openmetrics_exposition () =
  let config = { Serve.default_config with Serve.openmetrics_port = Some 0 } in
  with_server ~config (small_db ()) @@ fun server port ->
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Alcotest.(check bool) "eval ok" true (Client.ok (Client.eval c h0));
  (* in-band: the metrics op grows an openmetrics format variant *)
  let resp =
    Client.call c
      [ ("op", Json.Str "metrics"); ("format", Json.Str "openmetrics") ]
  in
  Alcotest.(check bool) "metrics ok" true (Client.ok resp);
  let body =
    match Json.member "openmetrics" (Client.result resp) with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.fail "no openmetrics text in metrics result"
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains_sub body needle))
    [ "# TYPE probdb_serve_requests counter"; "probdb_serve_requests_total";
      "probdb_serve_uptime_seconds"; "# EOF" ];
  (* unknown formats are rejected typed *)
  expect_error ~cls:"bad-request" ~code:10
    (Client.call c [ ("op", Json.Str "metrics"); ("format", Json.Str "xml") ]);
  (* out-of-band: the HTTP exposition endpoint serves the same text *)
  let om_port =
    match Serve.openmetrics_port server with
    | Some p -> p
    | None -> Alcotest.fail "openmetrics listener has no port"
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, om_port));
  let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
  ignore (Unix.write fd req 0 (Bytes.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  let http = Buffer.contents buf in
  Alcotest.(check bool) "HTTP 200" true (contains_sub http "200 OK");
  Alcotest.(check bool) "openmetrics content type" true
    (contains_sub http "application/openmetrics-text");
  Alcotest.(check bool) "exposition complete" true (contains_sub http "# EOF")

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "protocol control ops" `Quick test_protocol_ops;
        Alcotest.test_case "malformed requests answered typed" `Quick
          test_malformed_requests;
        Alcotest.test_case "served values = in-process values" `Quick
          test_eval_matches_local;
        Alcotest.test_case "concurrent clients bit-identical" `Slow
          test_concurrent_clients_bit_identical;
        Alcotest.test_case "pipelined requests all answered" `Quick
          test_pipelined_requests;
        Alcotest.test_case "deadline expiry degrades with CI" `Quick
          test_deadline_degrades;
        Alcotest.test_case "deadline + no_degrade fails typed" `Quick
          test_deadline_no_degrade_fails_typed;
        Alcotest.test_case "overload sheds with typed error" `Slow
          test_overload_sheds_typed;
        Alcotest.test_case "backpressure degrades under load" `Slow
          test_degrades_under_load;
        Alcotest.test_case "no_degrade exempt from load degradation" `Slow
          test_no_degrade_exempt_under_load;
        Alcotest.test_case "shutdown drains in-flight work" `Slow
          test_shutdown_drains_in_flight;
        Alcotest.test_case "stop now cancels in-flight work" `Slow
          test_stop_now_cancels;
        Alcotest.test_case "stop now fails queued typed" `Slow
          test_queued_get_shutting_down_on_stop_now;
        Alcotest.test_case "request ids round-trip and validate" `Quick
          test_request_id_roundtrip;
        Alcotest.test_case "stats: uptime and rolling windows" `Quick
          test_stats_window_and_uptime;
        Alcotest.test_case "one id across reply, slow log, trace, openmetrics"
          `Quick test_request_id_correlation;
        Alcotest.test_case "doomed request keeps its correlation id" `Quick
          test_doomed_request_carries_id;
        Alcotest.test_case "openmetrics exposition: in-band and HTTP" `Quick
          test_openmetrics_exposition;
      ] );
  ]
