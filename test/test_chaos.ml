(* The chaos layer: deterministic seeded fault schedules, the
   self-healing worker pool (crash recovery and the stall watchdog), the
   resilient client (retries, timeouts, circuit breaker), and a short
   seeded chaos soak against a live server — every request must come back
   with a correct answer or a typed error, and the server must survive. *)

module Chaos = Probdb_chaos.Chaos
module Guard = Probdb_guard.Guard
module Par = Probdb_par.Par
module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Resilient = Probdb_serve.Client.Resilient
module Protocol = Probdb_serve.Protocol
module Json = Probdb_obs.Json
module Gen = Probdb_workload.Gen

(* Every test arms its own schedule and must disarm on any exit: chaos
   state is process-global and the rest of the suite expects a clean
   process. *)
let with_chaos spec f =
  Chaos.arm spec;
  Fun.protect ~finally:Chaos.disarm f

let test_spec_parsing () =
  (match Chaos.parse_spec "42:0.05" with
  | Ok { Chaos.seed; rate } ->
      Alcotest.(check int) "seed" 42 seed;
      Alcotest.(check (float 1e-9)) "rate" 0.05 rate
  | Error e -> Alcotest.fail e);
  (match Chaos.parse_spec "7:1" with
  | Ok { Chaos.rate; _ } -> Alcotest.(check (float 1e-9)) "rate 1" 1.0 rate
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "render" "42:0.05"
    (Chaos.render_spec { Chaos.seed = 42; rate = 0.05 });
  List.iter
    (fun bad ->
      match Chaos.parse_spec bad with
      | Ok _ -> Alcotest.failf "spec %S must be rejected" bad
      | Error _ -> ())
    [ ""; "42"; "x:0.5"; "42:x"; "-1:0.5"; "42:1.5"; "42:-0.1"; "42:nan" ]

let fire_pattern ~site n =
  List.init n (fun _ -> Chaos.fire ~site)

let test_schedule_deterministic () =
  let spec = { Chaos.seed = 7; rate = 0.3 } in
  let a = with_chaos spec (fun () -> fire_pattern ~site:"t.x" 500) in
  let b = with_chaos spec (fun () -> fire_pattern ~site:"t.x" 500) in
  Alcotest.(check (list bool)) "same seed => same schedule" a b;
  let c =
    with_chaos { spec with Chaos.seed = 8 } (fun () -> fire_pattern ~site:"t.x" 500)
  in
  Alcotest.(check bool) "different seed => different schedule" true (a <> c);
  let d = with_chaos spec (fun () -> fire_pattern ~site:"t.y" 500) in
  Alcotest.(check bool) "different site => different schedule" true (a <> d);
  (* the firing frequency tracks the rate (loose bounds: the schedule is
     pseudo-random, not exact) *)
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.3 fired %d/500" fired)
    true
    (fired > 80 && fired < 230)

let test_rate_extremes_and_disarm () =
  let never = with_chaos { Chaos.seed = 3; rate = 0.0 } (fun () -> fire_pattern ~site:"t.z" 200) in
  Alcotest.(check bool) "rate 0 never fires" false (List.mem true never);
  let always = with_chaos { Chaos.seed = 3; rate = 1.0 } (fun () -> fire_pattern ~site:"t.z" 200) in
  Alcotest.(check bool) "rate 1 always fires" false (List.mem false always);
  Alcotest.(check bool) "disarmed" false (Chaos.armed ());
  let before = Chaos.injections () in
  Alcotest.(check bool) "disarmed never fires" false (Chaos.fire ~site:"t.z");
  Alcotest.(check int) "disarmed counts nothing" before (Chaos.injections ())

let test_guard_poll_trips_under_chaos () =
  (* an armed schedule at rate 1 trips a live guard at its first poll,
     through the same Exhausted/Fault path as the tests-only fault hook *)
  with_chaos { Chaos.seed = 5; rate = 1.0 } (fun () ->
      let g = Guard.create () in
      match Guard.poll g ~site:"test.site" with
      | exception Guard.Exhausted { resource = Guard.Fault; site; _ } ->
          Alcotest.(check string) "trip names the poll site" "test.site" site
      | _ -> Alcotest.fail "expected a chaos Fault trip");
  (* the unlimited guard stays inert even under chaos: only live guards
     poll, so unguarded library code is unaffected *)
  with_chaos { Chaos.seed = 5; rate = 1.0 } (fun () ->
      Guard.poll Guard.unlimited ~site:"test.site")

let test_service_crash_self_heals () =
  (* rate 1: every item's pickup raises the chaos crash before the
     handler, killing the worker. Each loss must doom exactly that item
     and respawn a worker; after disarming, the healed pool must still
     process new work. *)
  let processed = Atomic.make 0 in
  let doomed = Atomic.make 0 in
  let restarts_seen = Atomic.make 0 in
  let svc =
    Par.Service.start ~domains:1 ~capacity:16
      ~on_doom:(fun _ -> Atomic.incr doomed)
      ~on_restart:(fun () -> Atomic.incr restarts_seen)
      (fun _ -> Atomic.incr processed)
  in
  with_chaos { Chaos.seed = 11; rate = 1.0 } (fun () ->
      for i = 1 to 5 do
        match Par.Service.try_submit svc i with
        | `Accepted _ -> ()
        | `Overloaded | `Closed -> Alcotest.fail "submit refused"
      done;
      (* crashes don't go through [completed]; wait on the doom count *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      while Atomic.get doomed < 5 && Unix.gettimeofday () < deadline do
        Thread.delay 0.01
      done);
  Alcotest.(check int) "all items doomed" 5 (Atomic.get doomed);
  Alcotest.(check int) "none processed" 0 (Atomic.get processed);
  Alcotest.(check bool) "restarts counted" true (Par.Service.restarts svc >= 5);
  Alcotest.(check bool) "restart callback ran" true (Atomic.get restarts_seen >= 5);
  (* chaos off: the healed pool still works *)
  (match Par.Service.try_submit svc 99 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "healed pool refused work");
  Par.Service.wait_idle svc;
  Alcotest.(check int) "healed pool processes" 1 (Atomic.get processed);
  ignore (Par.Service.shutdown svc)

let test_service_stall_watchdog () =
  (* no chaos here: a handler that wedges past the stall deadline must be
     abandoned by the watchdog — its item doomed, a replacement worker
     spawned — while fast items keep flowing. *)
  let doomed = ref [] in
  let processed = Atomic.make 0 in
  let svc =
    Par.Service.start ~domains:1 ~capacity:16 ~stall_deadline_s:0.1
      ~on_doom:(fun i -> doomed := i :: !doomed)
      (fun i -> if i = 0 then Thread.delay 0.6 else Atomic.incr processed)
  in
  (match Par.Service.try_submit svc 0 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "submit refused");
  (match Par.Service.try_submit svc 1 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "submit refused");
  (* the fast item must be served by the replacement worker well before
     the stalled worker wakes up *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get processed < 1 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "fast item processed by replacement" 1 (Atomic.get processed);
  Alcotest.(check (list int)) "stalled item doomed" [ 0 ] !doomed;
  Alcotest.(check int) "one restart" 1 (Par.Service.restarts svc);
  (* let the stalled worker finish so shutdown can join it *)
  Thread.delay 0.7;
  ignore (Par.Service.shutdown svc)

let test_write_line_fd_short_writes () =
  (* the fd writer must deliver the frame intact whatever single_write
     does: push a response bigger than the socket buffer through a
     socketpair while a thread drains the other end *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let big = String.concat "" (List.init 40_000 (fun i -> string_of_int (i mod 10))) in
  let doc = Json.Obj [ ("payload", Json.Str big) ] in
  let received = Buffer.create (String.length big + 64) in
  let reader =
    Thread.create
      (fun () ->
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read b chunk 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes received chunk 0 n;
              if Buffer.length received < String.length (Json.to_string doc) + 1
              then drain ()
        in
        drain ())
      ()
  in
  Protocol.write_line_fd a doc;
  Thread.join reader;
  Unix.close a;
  Unix.close b;
  Alcotest.(check string) "frame intact" (Json.to_string doc ^ "\n")
    (Buffer.contents received)

let test_resilient_breaker_on_dead_server () =
  (* find a port with nothing listening *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close fd;
  let policy =
    { Resilient.default_policy with
      Resilient.max_attempts = 2;
      base_backoff_s = 0.001;
      max_backoff_s = 0.002;
      retry_budget_s = 0.01;
      breaker_threshold = 2;
      breaker_cooldown_s = 30.0 }
  in
  let c = Resilient.create ~policy port in
  (match Resilient.eval c "exists x. R(x)" with
  | Error (Resilient.Gave_up _) -> ()
  | Error Resilient.Breaker_open -> Alcotest.fail "breaker open too early"
  | Ok _ -> Alcotest.fail "nothing is listening");
  Alcotest.(check bool) "breaker open after threshold" true (Resilient.breaker_is_open c);
  Alcotest.(check int) "one breaker transition" 1 (Resilient.breaker_opens c);
  let attempts_before = Resilient.attempts c in
  (match Resilient.eval c "exists x. R(x)" with
  | Error Resilient.Breaker_open -> ()
  | _ -> Alcotest.fail "expected fail-fast while the breaker is open");
  Alcotest.(check int) "breaker sends nothing" attempts_before (Resilient.attempts c);
  Resilient.close c

(* ---------- chaos soak against a live server ---------- *)

let small_db () =
  Gen.random_tid ~seed:11 ~domain_size:6
    [ Gen.spec ~density:0.5 "R" 1; Gen.spec ~density:0.3 "S" 2;
      Gen.spec ~density:0.5 "T" 1 ]

let soak_queries =
  [| "exists x y. R(x) && S(x,y)"; "exists x. R(x)";
     "exists x y. R(x) && S(x,y) && T(y)"; "forall x y. R(x) || S(x,y)" |]

let test_serve_chaos_soak () =
  (* A short seeded soak with every site armed: 2 resilient clients x 60
     requests at a 4% fault rate. The contract under chaos: no hangs, no
     crashes — every call returns an answer or a typed error, and the
     server still answers cleanly after disarming. *)
  let config =
    { Serve.default_config with
      Serve.port = 0;
      workers = 2;
      queue_capacity = 16;
      degrade_above = 8;
      worker_stall_deadline_ms = 100;
      default_deadline_ms = Some 2_000 }
  in
  let server = Serve.start ~config (small_db ()) in
  let port = Serve.port server in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let ok = Atomic.make 0 and typed = Atomic.make 0 and gave_up = Atomic.make 0 in
  with_chaos { Chaos.seed = 42; rate = 0.04 } (fun () ->
      let client k =
        let policy =
          { Resilient.attempt_timeout_s = 1.0;
            max_attempts = 3;
            base_backoff_s = 0.005;
            max_backoff_s = 0.05;
            retry_budget_s = 0.3;
            breaker_threshold = 8;
            breaker_cooldown_s = 0.2;
            seed = 100 + k }
        in
        let c = Resilient.create ~policy port in
        for i = 0 to 59 do
          let q = soak_queries.(i mod Array.length soak_queries) in
          match Resilient.eval c q with
          | Ok resp ->
              if Client.ok resp then Atomic.incr ok else Atomic.incr typed
          | Error _ -> Atomic.incr gave_up
        done;
        Resilient.close c
      in
      let ths = List.init 2 (fun k -> Thread.create client k) in
      List.iter Thread.join ths);
  let answered = Atomic.get ok + Atomic.get typed + Atomic.get gave_up in
  Alcotest.(check int) "every request accounted for" 120 answered;
  Alcotest.(check bool) "some requests succeeded" true (Atomic.get ok > 0);
  Alcotest.(check bool) "chaos actually injected" true (Chaos.injections () > 0);
  (* the server must have survived the soak: a clean client works and the
     stats snapshot exposes the restart count *)
  let c = Client.connect port in
  Alcotest.(check bool) "server alive after chaos" true (Client.ping c);
  let stats = Client.result (Client.call c [ ("op", Json.Str "stats") ]) in
  (match Json.member "worker_restarts" stats with
  | Some (Json.Int _) -> ()
  | _ -> Alcotest.fail "stats must report worker_restarts");
  Client.close c

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
        Alcotest.test_case "rate extremes and disarm" `Quick test_rate_extremes_and_disarm;
        Alcotest.test_case "guard poll trips under chaos" `Quick
          test_guard_poll_trips_under_chaos;
        Alcotest.test_case "service crash self-heals" `Quick test_service_crash_self_heals;
        Alcotest.test_case "service stall watchdog" `Quick test_service_stall_watchdog;
        Alcotest.test_case "fd writer survives short writes" `Quick
          test_write_line_fd_short_writes;
        Alcotest.test_case "resilient client circuit breaker" `Quick
          test_resilient_breaker_on_dead_server;
        Alcotest.test_case "serve chaos soak" `Slow test_serve_chaos_soak;
      ] );
  ]
