(* Tests for the observability layer: stats populated by the engine,
   JSON round-tripping, and clock sanity. *)

module L = Probdb_logic
module E = Probdb_engine.Engine
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen
module Obs = Probdb_obs
module Stats = Probdb_obs.Stats
module Json = Probdb_obs.Json

let db_for q ~seed ~domain_size =
  let specs =
    List.map (fun (name, arity) -> Gen.spec ~density:0.7 name arity) (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size specs

(* (a) A hierarchical (safe) query needs no inclusion–exclusion: the lifted
   rule counters must report zero IE expansions. *)
let test_safe_query_no_ie () =
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)" in
  let db = db_for q ~seed:1 ~domain_size:3 in
  let stats = Stats.create () in
  let r = E.evaluate ~stats db q in
  Alcotest.(check string) "lifted wins" "lifted" (E.strategy_name r.E.strategy);
  match stats.Stats.lifted with
  | None -> Alcotest.fail "lifted rule counts not populated"
  | Some rules ->
      Alcotest.(check int) "no inclusion-exclusion" 0 rules.Stats.ie_expansions;
      Alcotest.(check bool) "some rules fired" true
        (rules.Stats.independent_joins + rules.Stats.separator_steps > 0)

(* (b) Forcing an unsafe query through DPLL must surface nonzero branch
   counts in the stats record. *)
let test_unsafe_query_dpll_counts () =
  let db = Gen.h0_db ~seed:4 ~n:3 () in
  let config = { E.default_config with E.strategies = [ E.Dpll ] } in
  let stats = Stats.create () in
  let r = E.evaluate ~config ~stats db Q.h0.Q.query in
  Alcotest.(check string) "dpll wins" "dpll" (E.strategy_name r.E.strategy);
  match stats.Stats.dpll with
  | None -> Alcotest.fail "dpll counts not populated"
  | Some d ->
      Alcotest.(check bool) "branches > 0" true (d.Stats.branches > 0);
      Alcotest.(check bool) "cache queried" true (d.Stats.cache_queries >= d.Stats.cache_hits);
      (match stats.Stats.circuit with
      | None -> Alcotest.fail "trace circuit counts not populated"
      | Some c -> Alcotest.(check bool) "trace nonempty" true (c.Stats.nodes > 0))

(* (c) The stats JSON must survive a parse round-trip through our own
   parser, with the important members intact. *)
let test_stats_json_roundtrip () =
  let db = Gen.h0_db ~seed:4 ~n:3 () in
  let stats = Stats.create () in
  let _ = E.evaluate ~stats db Q.h0.Q.query in
  let doc = Stats.to_json stats in
  let text = Json.to_string ~pretty:true doc in
  match Json.of_string text with
  | Error msg -> Alcotest.failf "stats JSON does not parse: %s" msg
  | Ok reparsed ->
      Alcotest.(check bool) "round-trip preserves document" true (reparsed = doc);
      List.iter
        (fun key ->
          match Json.member key reparsed with
          | None -> Alcotest.failf "missing member %S" key
          | Some _ -> ())
        [ "query"; "strategy"; "probability"; "phases"; "lifted_rules"; "dpll";
          "circuit"; "plan"; "skipped"; "degraded"; "ci_low"; "ci_high"; "samples";
          "chain" ]

(* (d) The monotonic clock never goes backwards and all recorded phase
   timings are non-negative. *)
let test_timers_nonnegative () =
  let t0 = Obs.Clock.now () in
  Alcotest.(check bool) "clock non-negative" true (t0 >= 0.0);
  let last = ref t0 in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    Alcotest.(check bool) "clock monotone" true (t >= !last);
    last := t
  done;
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)" in
  let db = db_for q ~seed:2 ~domain_size:3 in
  let stats = Stats.create () in
  let _ = E.evaluate ~stats db q in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " >= 0") true (v >= 0.0))
    [ ("parse", stats.Stats.parse_s); ("classify", stats.Stats.classify_s);
      ("plan", stats.Stats.plan_s); ("solve", stats.Stats.solve_s);
      ("total", Stats.total_s stats) ]

(* Parser edge cases of the hand-rolled JSON layer. *)
let test_json_parser_edges () =
  let ok s = match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  Alcotest.(check bool) "escapes" true
    (ok {|{"s": "aA\n\"b\""}|} = Json.Obj [ ("s", Json.Str "aA\n\"b\"") ]);
  Alcotest.(check bool) "numbers" true
    (ok "[1, -2.5, 3e2]" = Json.List [ Json.Int 1; Json.Float (-2.5); Json.Float 300.0 ]);
  (match Json.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  (match Json.of_string "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  let nonfinite = Json.to_string (Json.Float Float.nan) in
  Alcotest.(check string) "nan serialises as null" "null" nonfinite

(* ---------- Json round-trip property ---------- *)

(* Finite floats only: NaN/infinite serialise as null by design, so they
   cannot round-trip. *)
let gen_json =
  QCheck2.Gen.(
    sized_size (int_range 0 5) @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
              (* full byte range: control characters force \u escapes *)
              map (fun s -> Json.Str s) (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12)) ]
        in
        if n = 0 then leaf
        else
          oneof
            [ leaf;
              map (fun items -> Json.List items) (list_size (int_range 0 4) (self (n / 2)));
              map
                (fun fields -> Json.Obj fields)
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 0 8)) (self (n / 2)))) ]))

let prop_json_roundtrip =
  Test_util.qcheck ~count:500 "json parse . to_string = identity" gen_json
    (fun doc ->
      match Json.of_string (Json.to_string doc) with
      | Ok reparsed -> reparsed = doc
      | Error _ -> false)

(* Directed \u cases the generator is unlikely to hit: escapes decoding to
   UTF-8, surrogate pairs, and the rejection of unpaired surrogates. *)
let test_json_unicode_escapes () =
  let ok s = match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  Alcotest.(check bool) "basic escape" true (ok {|"A"|} = Json.Str "A");
  Alcotest.(check bool) "two-byte UTF-8" true (ok {|"é"|} = Json.Str "\xc3\xa9");
  Alcotest.(check bool) "three-byte UTF-8" true (ok {|"€"|} = Json.Str "\xe2\x82\xac");
  Alcotest.(check bool) "surrogate pair" true
    (ok {|"😀"|} = Json.Str "\xf0\x9f\x98\x80");
  (match Json.of_string {|"\ud800"|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unpaired high surrogate");
  match Json.of_string {|"\u12"|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated escape"

(* A deeply nested document must round-trip without blowing the stack. *)
let test_json_deep_nesting () =
  let deep = ref (Json.Int 1) in
  for _ = 1 to 1000 do
    deep := Json.List [ !deep ]
  done;
  match Json.of_string (Json.to_string !deep) with
  | Ok reparsed -> Alcotest.(check bool) "1000-deep round-trip" true (reparsed = !deep)
  | Error e -> Alcotest.failf "deep document does not parse: %s" e

(* ---------- Span self-time ---------- *)

let test_span_self_time () =
  let t = Obs.Span.create "root" in
  Obs.Span.with_ t "child" (fun () -> ignore (Sys.opaque_identity (List.init 1000 Fun.id)));
  Obs.Span.with_ t "child" (fun () -> ());
  let root = Obs.Span.finish t in
  let child = List.hd root.Obs.Span.children in
  Alcotest.(check int) "child entered twice" 2 child.Obs.Span.count;
  Test_util.check_float ~eps:1e-9 "root self = total - children"
    (root.Obs.Span.total_s -. child.Obs.Span.total_s)
    (Obs.Span.self_s root);
  Test_util.check_float ~eps:1e-9 "leaf self = leaf total" child.Obs.Span.total_s
    (Obs.Span.self_s child);
  (* self_s must appear in the JSON so tooling need not recompute it *)
  (match Json.member "self_s" (Obs.Span.to_json root) with
  | Some (Json.Float _) -> ()
  | _ -> Alcotest.fail "self_s missing from span JSON");
  (* pp renders without raising and mentions the child *)
  let rendered = Format.asprintf "%a" Obs.Span.pp root in
  Alcotest.(check bool) "pp mentions child" true
    (String.length rendered > 0
    && Option.is_some (String.index_opt rendered 'c'))

(* ---------- Stats gc + config sections ---------- *)

let test_stats_gc_section () =
  let stats = Stats.create () in
  let _ =
    Stats.with_gc stats (fun () ->
        Sys.opaque_identity (Array.init 100_000 float_of_int))
  in
  Alcotest.(check bool) "allocation observed" true (stats.Stats.gc.Stats.minor_words > 0.0);
  Alcotest.(check bool) "heap peak recorded" true
    (stats.Stats.gc.Stats.heap_peak_words > 0);
  match Json.member "gc" (Stats.to_json stats) with
  | Some (Json.Obj fields) ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "minor_words"; "major_words"; "promoted_words"; "minor_collections";
          "major_collections"; "compactions"; "heap_peak_words" ]
  | _ -> Alcotest.fail "gc section missing from stats JSON"

let test_stats_config_echo () =
  let db = Gen.h0_db ~seed:4 ~n:3 () in
  let config = { E.default_config with E.domains = 2; E.seed = 9 } in
  let stats = Stats.create () in
  let _ = E.evaluate ~config ~stats db Q.h0.Q.query in
  match Json.member "config" (Stats.to_json stats) with
  | Some (Json.Obj fields) ->
      Alcotest.(check bool) "domains echoed" true
        (List.assoc_opt "domains" fields = Some (Json.Int 2));
      Alcotest.(check bool) "seed echoed" true
        (List.assoc_opt "seed" fields = Some (Json.Int 9));
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "strategies"; "deadline_s"; "kl_samples"; "degrade" ]
  | Some Json.Null -> Alcotest.fail "config not populated by the engine"
  | _ -> Alcotest.fail "config section missing from stats JSON"

(* ---------- histogram merge properties ----------

   The windowed aggregator (Obs.Window) computes every rolling view by
   merging per-bucket histograms, so merge must be a commutative monoid
   up to observable state (counts, sum, quantiles — compared via the
   stable JSON projection). *)

module Histogram = Probdb_obs.Histogram
module Window = Probdb_obs.Window

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

(* Fingerprint of the exactly-mergeable state: bucket counts, count,
   min/max and the quantiles derived from them. [sum]/[mean] are float
   accumulations whose last bits depend on addition order, so they are
   checked separately with a relative tolerance. *)
let hist_fingerprint h =
  match Histogram.to_json h with
  | Json.Obj fields ->
      Json.to_string
        (Json.Obj
           (List.filter (fun (k, _) -> k <> "sum" && k <> "mean") fields))
  | j -> Json.to_string j

let close_sums a b =
  let sa = Histogram.sum a and sb = Histogram.sum b in
  Float.abs (sa -. sb) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs sa) (Float.abs sb))

let merged a b =
  let into = Histogram.copy a in
  Histogram.merge_into ~into b;
  into

let gen_values =
  QCheck.Gen.(
    list_size (int_bound 40)
      (oneof
         [
           float_bound_exclusive 1.0;
           map (fun f -> f *. 1e-6) (float_bound_exclusive 1.0);
           map (fun f -> f *. 1e6) (float_bound_exclusive 1.0);
           return 0.0;
         ]))

let arb_values = QCheck.make ~print:QCheck.Print.(list string_of_float) gen_values

let prop_merge_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"histogram merge commutes" ~count:100
       (QCheck.pair arb_values arb_values)
       (fun (xs, ys) ->
         let a = hist_of xs and b = hist_of ys in
         let ab = merged a b and ba = merged b a in
         hist_fingerprint ab = hist_fingerprint ba && close_sums ab ba))

let prop_merge_associative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"histogram merge associates" ~count:100
       (QCheck.triple arb_values arb_values arb_values)
       (fun (xs, ys, zs) ->
         let a () = hist_of xs and b () = hist_of ys and c () = hist_of zs in
         let l = merged (merged (a ()) (b ())) (c ())
         and r = merged (a ()) (merged (b ()) (c ())) in
         hist_fingerprint l = hist_fingerprint r && close_sums l r))

(* Merging many sparse histograms must answer quantiles within the
   documented per-histogram error bound: merge adds bucket counts
   exactly, so sparseness cannot degrade accuracy. 2000 observations of
   [i] spread one-per-histogram across 200 merges; the p-quantile of
   1..n is within relative_error of p*n. *)
let test_merge_quantile_bounds () =
  let n = 2000 in
  let shards = Array.init 200 (fun _ -> Histogram.create ()) in
  for i = 1 to n do
    Histogram.add shards.(i mod 200) (float_of_int i)
  done;
  let all = Histogram.create () in
  Array.iter (fun h -> Histogram.merge_into ~into:all h) shards;
  Alcotest.(check int) "merged count" n (Histogram.count all);
  List.iter
    (fun p ->
      let want = p *. float_of_int n in
      let got = Histogram.quantile all p in
      let rel = Float.abs (got -. want) /. want in
      if rel > Histogram.relative_error +. 0.01 then
        Alcotest.failf "p%.0f: got %g want %g (rel %.3f)" (p *. 100.0) got want
          rel)
    [ 0.5; 0.9; 0.99 ]

(* ---------- windowed aggregation ---------- *)

let test_window_counter_basics () =
  let c = Window.counter () in
  Window.add c 3;
  Window.incr c;
  Alcotest.(check int) "in-horizon total" 4 (Window.total c ~horizon_s:10.0);
  Alcotest.(check bool) "rate positive" true (Window.rate c ~horizon_s:10.0 > 0.0)

(* Events age out once the ring has rotated past them: with 4 x 50ms
   buckets the ring spans 200ms, so after 400ms the count is gone while
   a cumulative counter would still hold it. *)
let test_window_counter_expiry () =
  let c = Window.counter ~buckets:4 ~bucket_s:0.05 () in
  Window.add c 7;
  Alcotest.(check int) "visible now" 7 (Window.total c ~horizon_s:1.0);
  Unix.sleepf 0.4;
  Alcotest.(check int) "expired" 0 (Window.total c ~horizon_s:1.0)

let test_window_histogram () =
  let h = Window.histogram () in
  List.iter (Window.observe h) [ 0.01; 0.02; 0.03; 0.04; 0.05 ];
  let snap = Window.snapshot h ~horizon_s:10.0 in
  Alcotest.(check int) "all observed" 5 (Histogram.count snap);
  let p50 = Histogram.quantile snap 0.5 in
  Alcotest.(check bool) "median in range" true (p50 > 0.02 && p50 < 0.045)

let test_window_histogram_expiry () =
  let h = Window.histogram ~buckets:4 ~bucket_s:0.05 () in
  Window.observe h 1.0;
  Unix.sleepf 0.4;
  Alcotest.(check int) "expired" 0
    (Histogram.count (Window.snapshot h ~horizon_s:1.0))

let test_window_invalid_args () =
  Alcotest.check_raises "zero buckets"
    (Invalid_argument "Window.counter: buckets must be >= 1") (fun () ->
      ignore (Window.counter ~buckets:0 ()));
  Alcotest.check_raises "bad bucket width"
    (Invalid_argument "Window.histogram: bucket_s must be > 0") (fun () ->
      ignore (Window.histogram ~bucket_s:0.0 ()))

(* ---------- request ids ---------- *)

module Request_id = Probdb_obs.Request_id

let test_request_id_mint () =
  let a = Request_id.mint () and b = Request_id.mint () in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "16 hex chars" 16 (String.length a);
  Alcotest.(check bool) "valid" true (Request_id.valid a && Request_id.valid b)

let test_request_id_valid () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check bool) (Printf.sprintf "valid %S" s) want
        (Request_id.valid s))
    [
      ("abc-123", true);
      ("", false);
      ("has space", false);
      ("tab\there", false);
      (String.make 128 'x', true);
      (String.make 129 'x', false);
      ("caf\xc3\xa9", false);
    ]

let suites =
  [
    ( "window",
      [
        prop_merge_commutative;
        prop_merge_associative;
        Alcotest.test_case "merged sparse histograms keep quantile bounds"
          `Quick test_merge_quantile_bounds;
        Alcotest.test_case "windowed counter: totals and rates" `Quick
          test_window_counter_basics;
        Alcotest.test_case "windowed counter: events age out" `Quick
          test_window_counter_expiry;
        Alcotest.test_case "windowed histogram: merge-on-read quantiles" `Quick
          test_window_histogram;
        Alcotest.test_case "windowed histogram: events age out" `Quick
          test_window_histogram_expiry;
        Alcotest.test_case "window: invalid parameters rejected" `Quick
          test_window_invalid_args;
        Alcotest.test_case "request ids: minting" `Quick test_request_id_mint;
        Alcotest.test_case "request ids: validation" `Quick
          test_request_id_valid;
      ] );
    ( "obs",
      [
        Alcotest.test_case "safe query: zero inclusion-exclusion" `Quick
          test_safe_query_no_ie;
        Alcotest.test_case "unsafe query via DPLL: nonzero branches" `Quick
          test_unsafe_query_dpll_counts;
        Alcotest.test_case "stats JSON round-trips" `Quick test_stats_json_roundtrip;
        Alcotest.test_case "timers monotone and non-negative" `Quick
          test_timers_nonnegative;
        Alcotest.test_case "json parser edge cases" `Quick test_json_parser_edges;
        prop_json_roundtrip;
        Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
        Alcotest.test_case "json deep nesting round-trips" `Quick
          test_json_deep_nesting;
        Alcotest.test_case "span self-time" `Quick test_span_self_time;
        Alcotest.test_case "stats gc section" `Quick test_stats_gc_section;
        Alcotest.test_case "stats config echo" `Quick test_stats_config_echo;
      ] );
  ]
