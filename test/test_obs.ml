(* Tests for the observability layer: stats populated by the engine,
   JSON round-tripping, and clock sanity. *)

module L = Probdb_logic
module E = Probdb_engine.Engine
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen
module Obs = Probdb_obs
module Stats = Probdb_obs.Stats
module Json = Probdb_obs.Json

let db_for q ~seed ~domain_size =
  let specs =
    List.map (fun (name, arity) -> Gen.spec ~density:0.7 name arity) (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size specs

(* (a) A hierarchical (safe) query needs no inclusion–exclusion: the lifted
   rule counters must report zero IE expansions. *)
let test_safe_query_no_ie () =
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)" in
  let db = db_for q ~seed:1 ~domain_size:3 in
  let stats = Stats.create () in
  let r = E.evaluate ~stats db q in
  Alcotest.(check string) "lifted wins" "lifted" (E.strategy_name r.E.strategy);
  match stats.Stats.lifted with
  | None -> Alcotest.fail "lifted rule counts not populated"
  | Some rules ->
      Alcotest.(check int) "no inclusion-exclusion" 0 rules.Stats.ie_expansions;
      Alcotest.(check bool) "some rules fired" true
        (rules.Stats.independent_joins + rules.Stats.separator_steps > 0)

(* (b) Forcing an unsafe query through DPLL must surface nonzero branch
   counts in the stats record. *)
let test_unsafe_query_dpll_counts () =
  let db = Gen.h0_db ~seed:4 ~n:3 () in
  let config = { E.default_config with E.strategies = [ E.Dpll ] } in
  let stats = Stats.create () in
  let r = E.evaluate ~config ~stats db Q.h0.Q.query in
  Alcotest.(check string) "dpll wins" "dpll" (E.strategy_name r.E.strategy);
  match stats.Stats.dpll with
  | None -> Alcotest.fail "dpll counts not populated"
  | Some d ->
      Alcotest.(check bool) "branches > 0" true (d.Stats.branches > 0);
      Alcotest.(check bool) "cache queried" true (d.Stats.cache_queries >= d.Stats.cache_hits);
      (match stats.Stats.circuit with
      | None -> Alcotest.fail "trace circuit counts not populated"
      | Some c -> Alcotest.(check bool) "trace nonempty" true (c.Stats.nodes > 0))

(* (c) The stats JSON must survive a parse round-trip through our own
   parser, with the important members intact. *)
let test_stats_json_roundtrip () =
  let db = Gen.h0_db ~seed:4 ~n:3 () in
  let stats = Stats.create () in
  let _ = E.evaluate ~stats db Q.h0.Q.query in
  let doc = Stats.to_json stats in
  let text = Json.to_string ~pretty:true doc in
  match Json.of_string text with
  | Error msg -> Alcotest.failf "stats JSON does not parse: %s" msg
  | Ok reparsed ->
      Alcotest.(check bool) "round-trip preserves document" true (reparsed = doc);
      List.iter
        (fun key ->
          match Json.member key reparsed with
          | None -> Alcotest.failf "missing member %S" key
          | Some _ -> ())
        [ "query"; "strategy"; "probability"; "phases"; "lifted_rules"; "dpll";
          "circuit"; "plan"; "skipped"; "degraded"; "ci_low"; "ci_high"; "samples";
          "chain" ]

(* (d) The monotonic clock never goes backwards and all recorded phase
   timings are non-negative. *)
let test_timers_nonnegative () =
  let t0 = Obs.Clock.now () in
  Alcotest.(check bool) "clock non-negative" true (t0 >= 0.0);
  let last = ref t0 in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    Alcotest.(check bool) "clock monotone" true (t >= !last);
    last := t
  done;
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)" in
  let db = db_for q ~seed:2 ~domain_size:3 in
  let stats = Stats.create () in
  let _ = E.evaluate ~stats db q in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " >= 0") true (v >= 0.0))
    [ ("parse", stats.Stats.parse_s); ("classify", stats.Stats.classify_s);
      ("plan", stats.Stats.plan_s); ("solve", stats.Stats.solve_s);
      ("total", Stats.total_s stats) ]

(* Parser edge cases of the hand-rolled JSON layer. *)
let test_json_parser_edges () =
  let ok s = match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  Alcotest.(check bool) "escapes" true
    (ok {|{"s": "aA\n\"b\""}|} = Json.Obj [ ("s", Json.Str "aA\n\"b\"") ]);
  Alcotest.(check bool) "numbers" true
    (ok "[1, -2.5, 3e2]" = Json.List [ Json.Int 1; Json.Float (-2.5); Json.Float 300.0 ]);
  (match Json.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  (match Json.of_string "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  let nonfinite = Json.to_string (Json.Float Float.nan) in
  Alcotest.(check string) "nan serialises as null" "null" nonfinite

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "safe query: zero inclusion-exclusion" `Quick
          test_safe_query_no_ie;
        Alcotest.test_case "unsafe query via DPLL: nonzero branches" `Quick
          test_unsafe_query_dpll_counts;
        Alcotest.test_case "stats JSON round-trips" `Quick test_stats_json_roundtrip;
        Alcotest.test_case "timers monotone and non-negative" `Quick
          test_timers_nonnegative;
        Alcotest.test_case "json parser edge cases" `Quick test_json_parser_edges;
      ] );
  ]
