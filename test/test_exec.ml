module Core = Probdb_core
module L = Probdb_logic
module P = Probdb_plans
module Exec = Probdb_exec.Exec
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen

let cq_of (e : Q.entry) =
  match L.Ucq.of_sentence e.Q.query with
  | [ cq ], L.Ucq.Direct -> cq
  | _ -> Alcotest.failf "%s is not a single ∃-CQ" e.Q.name

let db_for cq ~seed ~domain_size =
  let rels =
    List.map (fun (name, _comp) -> name) (L.Cq.symbols cq)
    |> List.map (fun name ->
           let arity =
             List.find_map
               (fun (a : L.Cq.atom) ->
                 if String.equal a.L.Cq.rel name then Some (List.length a.L.Cq.args)
                 else None)
               cq
             |> Option.get
           in
           Gen.spec ~density:0.8 name arity)
  in
  Gen.random_tid ~seed ~domain_size rels

(* Ptables from the two paths may order rows differently; compare as sorted
   multisets with a float tolerance on the probabilities. *)
let check_same_table what (a : P.Ptable.t) (b : P.Ptable.t) =
  Alcotest.(check (list string)) (what ^ ": vars") a.P.Ptable.vars b.P.Ptable.vars;
  let norm t =
    List.sort
      (fun (t1, _) (t2, _) -> Core.Tuple.compare t1 t2)
      t.P.Ptable.rows
  in
  let ra = norm a and rb = norm b in
  Alcotest.(check int) (what ^ ": cardinality") (List.length ra) (List.length rb);
  List.iter2
    (fun (t1, p1) (t2, p2) ->
      if Core.Tuple.compare t1 t2 <> 0 then
        Alcotest.failf "%s: tuple %s vs %s" what (Core.Tuple.to_string t1)
          (Core.Tuple.to_string t2);
      Test_util.check_float (what ^ ": prob of " ^ Core.Tuple.to_string t1) p1 p2)
    ra rb

(* Every enumerated plan (safe or not), both entry points: the columnar
   executor and the list-based reference compute the same table. *)
let agree_on entry ~domain_size seed =
  let cq = cq_of entry in
  let db = db_for cq ~seed ~domain_size in
  List.iter
    (fun plan ->
      check_same_table
        (Printf.sprintf "%s seed %d" entry.Q.name seed)
        (P.Plan.eval_reference db plan)
        (P.Plan.eval db plan);
      Test_util.check_float
        (Printf.sprintf "%s seed %d boolean_prob" entry.Q.name seed)
        (P.Plan.boolean_prob_reference db plan)
        (P.Plan.boolean_prob db plan))
    (P.Plan.enumerate cq);
  true

let prop_exec_agrees_h0 =
  Test_util.qcheck ~count:60 "columnar = reference on H0 plans"
    QCheck2.Gen.(int_range 1 10_000)
    (agree_on Q.h0 ~domain_size:2)

let prop_exec_agrees_hier =
  Test_util.qcheck ~count:60 "columnar = reference on q_hier plans"
    QCheck2.Gen.(int_range 1 10_000)
    (agree_on Q.q_hier ~domain_size:3)

(* Open plans too: projections that keep variables, not just the Boolean
   γ-to-nothing at the root. *)
let test_open_plans () =
  let r = L.Cq.of_vars "R" [ "x" ] in
  let s = L.Cq.of_vars "S" [ "x"; "y" ] in
  let plans =
    [ P.Plan.Scan s;
      P.Plan.Project ([ "x" ], P.Plan.Scan s);
      P.Plan.Project ([ "y" ], P.Plan.Scan s);
      P.Plan.Join (P.Plan.Scan r, P.Plan.Scan s);
      P.Plan.Project ([ "y" ], P.Plan.Join (P.Plan.Scan r, P.Plan.Scan s));
      P.Plan.Join (P.Plan.Scan r, P.Plan.Project ([ "x" ], P.Plan.Scan s)) ]
  in
  for seed = 1 to 10 do
    let db =
      Gen.random_tid ~seed ~domain_size:3
        [ Gen.spec ~density:0.8 "R" 1; Gen.spec ~density:0.8 "S" 2 ]
    in
    List.iter
      (fun plan ->
        check_same_table
          (Printf.sprintf "open plan seed %d" seed)
          (P.Plan.eval_reference db plan)
          (P.Plan.eval db plan))
      plans
  done

let test_scan_constants_and_repeats () =
  let t xs = List.map Core.Value.int xs in
  let s =
    Core.Relation.of_list "S"
      [ (t [ 1; 1 ], 0.3); (t [ 1; 2 ], 0.5); (t [ 2; 2 ], 0.7) ]
  in
  let db = Core.Tid.make [ s ] in
  let dict = Core.Dict.create () in
  let diag = Exec.scan dict db (L.Cq.of_vars "S" [ "x"; "x" ]) in
  Alcotest.(check int) "diagonal rows" 2 (Exec.nrows diag);
  Alcotest.(check (array string)) "one column" [| "x" |] diag.Exec.vars;
  let sel =
    Exec.scan dict db (L.Cq.atom "S" [ L.Fo.Const (Core.Value.int 1); L.Fo.Var "y" ])
  in
  Alcotest.(check int) "selected rows" 2 (Exec.nrows sel);
  (* missing relation scans as empty, like the reference *)
  let missing = Exec.scan dict db (L.Cq.of_vars "T" [ "z" ]) in
  Alcotest.(check int) "missing relation" 0 (Exec.nrows missing)

let test_disjoint_union () =
  let t xs = List.map Core.Value.int xs in
  let s =
    Core.Relation.of_list "S" [ (t [ 1; 2 ], 0.25); (t [ 2; 3 ], 0.5) ]
  in
  let db = Core.Tid.make [ s ] in
  let dict = Core.Dict.create () in
  let a = Exec.scan dict db (L.Cq.of_vars "S" [ "x"; "y" ]) in
  (* same columns in swapped order: S(y,x) *)
  let b = Exec.scan dict db (L.Cq.of_vars "S" [ "y"; "x" ]) in
  let u = Exec.disjoint_union a b in
  Alcotest.(check int) "row count adds" 4 (Exec.nrows u);
  (* rows that coincide as tuples merge, probabilities adding *)
  let u2 = Exec.disjoint_union a a in
  Alcotest.(check int) "coinciding tuples merge" 2 (Exec.nrows u2);
  let rows = Exec.to_rows dict u2 in
  List.iter (fun (_, p) -> Alcotest.(check bool) "probs added" true (p = 0.5 || p = 1.0)) rows;
  (* mismatched columns are rejected *)
  let c = Exec.project [ "x" ] a in
  Alcotest.check_raises "column mismatch"
    (Invalid_argument "Exec.disjoint_union: column sets differ") (fun () ->
      ignore (Exec.disjoint_union a c))

let test_counters () =
  let db =
    Gen.random_tid ~seed:7 ~domain_size:4
      [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S" 2 ]
  in
  let counters = Exec.fresh_counters () in
  let plan =
    P.Plan.Project
      ([], P.Plan.Join (P.Plan.Scan (L.Cq.of_vars "R" [ "x" ]),
                        P.Plan.Scan (L.Cq.of_vars "S" [ "x"; "y" ])))
  in
  let _table, dict = P.Plan.eval_exec ~counters db plan in
  ignore dict;
  Alcotest.(check int) "operators" 4 counters.Exec.operators;
  Alcotest.(check bool) "rows processed" true (counters.Exec.rows_processed > 0);
  Alcotest.(check bool) "peak rows" true (counters.Exec.peak_rows >= 4)

let suites =
  [
    ( "exec",
      [
        Alcotest.test_case "scan constants/repeats" `Quick test_scan_constants_and_repeats;
        Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
        Alcotest.test_case "open plans agree with reference" `Quick test_open_plans;
        Alcotest.test_case "plan counters" `Quick test_counters;
        prop_exec_agrees_h0;
        prop_exec_agrees_hier;
      ] );
  ]
