(* The packed-container suite ([Probdb_storage.Storage]): roundtrip
   identity against the CSV path, bit-identical engine answers across
   strategies, typed errors for every corruption class, laziness of the
   mapped TID, and a concurrent serve soak where every worker reads one
   shared mapped file.

   The soak scales with PROBDB_SOAK=1 (what `make check-storage` sets). *)

module Core = Probdb_core
module Storage = Probdb_storage.Storage
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module L = Probdb_logic
module Gen = Probdb_workload.Gen
module Err = Core.Probdb_error
module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Json = Probdb_obs.Json

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let small_db () =
  Gen.random_tid ~seed:11 ~domain_size:6
    [ Gen.spec ~density:0.5 "R" 1; Gen.spec ~density:0.3 "S" 2;
      Gen.spec ~density:0.5 "T" 1 ]

let with_handle path f =
  let t = Storage.open_file path in
  Fun.protect ~finally:(fun () -> Storage.close t) (fun () -> f t)

(* every relation's rows plus the domain, with exact floats — structural
   equality on this is the bit-identity oracle for the data itself *)
let contents db =
  ( List.map
      (fun r -> (Core.Relation.name r, Core.Relation.arity r, Core.Relation.rows r))
      (Core.Tid.relations db),
    Core.Tid.domain db )

let check_same_contents what a b =
  if contents a <> contents b then
    Alcotest.failf "%s: packed contents differ from source" what

(* ---------- roundtrip identity ---------- *)

let test_roundtrip_explicit () =
  (* value variety the CSV path never exercises: negative ints, strings
     with separators and quotes, booleans, an empty relation, and
     probabilities at both closed endpoints *)
  let v = Core.Value.int and s x = Core.Value.Str x and b x = Core.Value.Bool x in
  let r =
    Core.Relation.of_list "R"
      [ ([ v (-3); s "h\xc3\xa9llo, \"quoted\""; b true ], 0.1);
        ([ v 7; s ""; b false ], 1.0);
        ([ v 0; s "plain"; b true ], 0.0) ]
  in
  let e = Core.Relation.make (Core.Schema.make "Empty" [ "x"; "y" ]) [] in
  let db = Core.Tid.make [ r; e ] in
  let path = tmp "storage_explicit.pdb" in
  Storage.pack db path;
  with_handle path @@ fun t ->
  Storage.verify t;
  Alcotest.(check (list (triple string int int)))
    "TOC relations"
    [ ("Empty", 2, 0); ("R", 3, 3) ]
    (Storage.relations t);
  check_same_contents "explicit values" db (Storage.tid t)

let prop_roundtrip =
  Test_util.qcheck ~count:25 "pack then open = csv load (random TIDs)"
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let db =
        Gen.random_tid ~seed ~domain_size:5
          [ Gen.spec ~density:0.4 "R" 1; Gen.spec ~density:0.3 "S" 2;
            Gen.spec ~density:0.5 "T" 3 ]
      in
      let dir = tmp (Printf.sprintf "storage_prop_%d.csv" seed) in
      let path = tmp (Printf.sprintf "storage_prop_%d.pdb" seed) in
      Core.Csv_io.save_dir dir db;
      let from_csv = Core.Csv_io.load_dir dir in
      Storage.pack from_csv path;
      let ok = with_handle path (fun t -> contents (Storage.tid t) = contents from_csv) in
      let via_load_any = contents (Core.Csv_io.load_any path) = contents from_csv in
      ok && via_load_any)

(* ---------- bit-identical engine answers, CSV vs packed ---------- *)

let eval_value ~config db q =
  match E.eval ~config db (L.Parser.parse_sentence q) with
  | Ok a -> a.Answer.value
  | Error e -> Alcotest.failf "eval failed: %s" (Err.render e)

let test_engine_bit_identity () =
  let db = small_db () in
  let dir = tmp "storage_identity.csv" in
  let path = tmp "storage_identity.pdb" in
  Core.Csv_io.save_dir dir db;
  let csv_db = Core.Csv_io.load_dir dir in
  Storage.pack csv_db path;
  let packed_db = Core.Csv_io.load_any path in
  let cases =
    [ (E.Lifted, "exists x y. R(x) && S(x,y)");
      (E.Safe_plan, "exists x y. R(x) && S(x,y)");
      (E.Wmc, "forall x y. R(x) || S(x,y)");
      (E.Obdd, "exists x y. R(x) && S(x,y) && T(y)");
      (E.Dpll, "exists x y. R(x) && S(x,y) && T(y)");
      (E.Karp_luby, "exists x y. R(x) && S(x,y) && T(y)") ]
  in
  List.iter
    (fun (s, q) ->
      let config =
        { E.default_config with E.strategies = [ s ]; E.seed = 42;
          E.kl_samples = 5_000 }
      in
      let want = eval_value ~config csv_db q in
      let got = eval_value ~config packed_db q in
      if got <> want then
        Alcotest.failf "%s on %s: packed %.17g <> csv %.17g"
          (E.strategy_name s) q got want)
    cases

(* ---------- corruption: every class is a typed Io ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc s

let u64_at s off =
  Int64.to_int (Bytes.get_int64_ne (Bytes.unsafe_of_string s) off)

let expect_io what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a typed Io error" what
  | exception Err.Error (Err.Io _ as e) ->
      Alcotest.(check int) (what ^ " exit code") 2 (Err.exit_code e)
  | exception e ->
      Alcotest.failf "%s: expected Io, got %s" what (Printexc.to_string e)

let test_corrupt_files () =
  let db = small_db () in
  let good = tmp "storage_good.pdb" in
  Storage.pack db good;
  let pristine = read_file good in
  let corrupt what f =
    let path = tmp "storage_corrupt.pdb" in
    write_file path (f pristine);
    expect_io what (fun () -> with_handle path (fun _ -> ()))
  in
  let patch off bytes s =
    let b = Bytes.of_string s in
    String.iteri (fun i c -> Bytes.set b (off + i) c) bytes;
    Bytes.to_string b
  in
  let patch_u64 off v s =
    let b = Bytes.of_string s in
    Bytes.set_int64_ne b off (Int64.of_int v);
    Bytes.to_string b
  in
  (* too small to even hold a header page *)
  corrupt "tiny file" (fun s -> String.sub s 0 100);
  (* magic *)
  corrupt "bad magic" (patch 0 "NOTPACK1");
  (* the byteswapped endianness tag: a container from a foreign-endian
     machine, detected before any checksum *)
  corrupt "foreign endianness" (fun s ->
      let tag = String.init 8 (fun i -> s.[16 + (7 - i)]) in
      patch 16 tag s);
  (* a tag that is neither ours nor swapped *)
  corrupt "garbled endianness tag" (patch_u64 16 12345);
  (* version from the future *)
  corrupt "unsupported version" (patch_u64 8 (Storage.format_version + 1));
  (* 32-bit word size *)
  corrupt "unsupported word size" (patch_u64 24 4);
  (* flip the stored header checksum itself *)
  corrupt "header checksum" (fun s -> patch_u64 64 (u64_at s 64 + 1) s);
  (* appended garbage: recorded size no longer matches the file *)
  corrupt "trailing garbage" (fun s -> s ^ "junk");
  (* truncation below the recorded size (drop the final page, which
     holds the table of contents) *)
  corrupt "truncated container" (fun s -> String.sub s 0 (String.length s - 4096));
  (* flip one byte inside the TOC segment *)
  corrupt "toc checksum" (fun s ->
      let toc_off = u64_at s 40 in
      let b = Bytes.of_string s in
      Bytes.set b toc_off (Char.chr (Char.code (Bytes.get b toc_off) lxor 0xff));
      Bytes.to_string b);
  (* a flipped data byte passes open (O(header) — data unchecked) but is
     named by the explicit full-file verify *)
  let path = tmp "storage_corrupt.pdb" in
  let b = Bytes.of_string pristine in
  Bytes.set b 4096 (Char.chr (Char.code (Bytes.get b 4096) lxor 0xff));
  write_file path (Bytes.to_string b);
  with_handle path (fun t -> expect_io "data checksum via verify" (fun () -> Storage.verify t));
  (* pack into a directory that does not exist *)
  expect_io "pack to missing directory" (fun () ->
      Storage.pack db "/nonexistent-probdb-dir/x.pdb");
  (* a closed handle refuses lazy loads *)
  let t = Storage.open_file good in
  Storage.close t;
  expect_io "use after close" (fun () -> ignore (Storage.dict t))

let test_load_any_sniffing () =
  let db = small_db () in
  let dir = tmp "storage_sniff.csv" in
  let path = tmp "storage_sniff.pdb" in
  Core.Csv_io.save_dir dir db;
  Storage.pack db path;
  check_same_contents "load_any on a directory" db (Core.Csv_io.load_any dir);
  check_same_contents "load_any on .pdb" db (Core.Csv_io.load_any path);
  (* magic sniffing: the extension is not load-bearing *)
  let noext = tmp "storage_sniff_noext" in
  write_file noext (read_file path);
  check_same_contents "load_any by magic" db (Core.Csv_io.load_any noext);
  expect_io "load_any on a missing path" (fun () ->
      ignore (Core.Csv_io.load_any (tmp "storage_no_such_path")));
  (* a regular file that is neither format *)
  let plain = tmp "storage_sniff_plain.txt" in
  write_file plain "1,2,0.5\n";
  expect_io "load_any on a plain file" (fun () ->
      ignore (Core.Csv_io.load_any plain))

(* ---------- laziness: open is O(header), safe plans map, nothing
   materialises until a grounded consumer asks ---------- *)

let test_lazy_tid () =
  let db = small_db () in
  let path = tmp "storage_lazy.pdb" in
  Storage.pack db path;
  with_handle path @@ fun t ->
  let packed = Storage.tid t in
  Alcotest.(check int) "nothing forced at open" 0 (Core.Tid.forced_relations packed);
  Alcotest.(check int) "support size from the TOC alone"
    (Core.Tid.support_size db) (Core.Tid.support_size packed);
  Alcotest.(check bool) "backing recognised" true (Storage.backing packed <> None);
  (* a safe plan scans the mapped columns in place *)
  let config = { E.default_config with E.strategies = [ E.Safe_plan ] } in
  let q = "exists x y. R(x) && S(x,y)" in
  let want = eval_value ~config db q in
  let got = eval_value ~config packed q in
  if got <> want then Alcotest.failf "safe plan: %.17g <> %.17g" got want;
  Alcotest.(check int) "safe plan forced nothing" 0 (Core.Tid.forced_relations packed);
  Alcotest.(check int) "safe plan materialised nothing" 0
    (Storage.relations_materialized t);
  Alcotest.(check bool) "but columns were mapped" true (Storage.cols_mapped t > 0);
  Alcotest.(check bool) "and bytes attributed" true (Storage.bytes_mapped t > 0);
  (* a grounded consumer decodes exactly the relation it touches *)
  ignore (Core.Tid.relation packed "R");
  Alcotest.(check int) "one relation forced" 1 (Core.Tid.forced_relations packed);
  Alcotest.(check int) "one relation materialised" 1
    (Storage.relations_materialized t);
  (* derived TIDs drop the backing: they no longer describe the file *)
  let derived = Core.Tid.map_probs (fun _ _ p -> p) packed in
  Alcotest.(check bool) "derived TID drops backing" true
    (Storage.backing derived = None)

(* ---------- concurrent serve soak over one shared mapped file ---------- *)

let float_of name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "response missing number %S" name

let test_concurrent_serve_over_packed () =
  let db = small_db () in
  let path = tmp "storage_serve.pdb" in
  Storage.pack db path;
  with_handle path @@ fun t ->
  let packed = Storage.tid t in
  let queries =
    [ "exists x y. R(x) && S(x,y)";
      "exists x. R(x)";
      "exists x y. R(x) && S(x,y) && T(y)";
      "forall x y. R(x) || S(x,y)" ]
  in
  let expected =
    List.map
      (fun q -> (q, eval_value ~config:E.default_config db q))
      queries
  in
  let soak = Sys.getenv_opt "PROBDB_SOAK" = Some "1" in
  let clients = 6 and rounds = if soak then 100 else 8 in
  let config = { Serve.default_config with Serve.port = 0 } in
  let server = Serve.start ~config packed in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let port = Serve.port server in
  let failures = Atomic.make 0 in
  let answered = Atomic.make 0 in
  let client_loop _ =
    let c = Client.connect port in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for _ = 1 to rounds do
      List.iter
        (fun (q, want) ->
          let resp = Client.eval c q in
          Atomic.incr answered;
          if
            (not (Client.ok resp))
            || float_of "value" (Client.result resp) <> want
          then Atomic.incr failures)
        expected
    done
  in
  let threads = List.init clients (fun i -> Thread.create client_loop i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "every worker bit-identical over the shared map" 0
    (Atomic.get failures);
  Alcotest.(check int) "every request answered"
    (clients * rounds * List.length expected)
    (Atomic.get answered)

let suites =
  [
    ( "storage",
      [
        Alcotest.test_case "explicit roundtrip" `Quick test_roundtrip_explicit;
        prop_roundtrip;
        Alcotest.test_case "engine bit-identity csv vs packed" `Quick
          test_engine_bit_identity;
        Alcotest.test_case "corrupt files are typed Io" `Quick test_corrupt_files;
        Alcotest.test_case "load_any format sniffing" `Quick test_load_any_sniffing;
        Alcotest.test_case "packed TID is lazy" `Quick test_lazy_tid;
        Alcotest.test_case "concurrent serve over one mapped file" `Quick
          test_concurrent_serve_over_packed;
      ] );
  ]
