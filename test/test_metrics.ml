(* Tests for the process-wide metrics registry: exact sharded counters
   under concurrent domains, histogram quantile error bounds (property
   test), registration semantics, and the JSON snapshot. *)

module Metrics = Probdb_obs.Metrics
module Histogram = Probdb_obs.Histogram
module Json = Probdb_obs.Json

(* (a) Counter increments from concurrent domains must sum exactly: every
   add lands in one atomic shard cell and the read sums all cells. *)
let test_concurrent_counter_exact () =
  let c = Metrics.counter "test.concurrent_adds" in
  let before = Metrics.counter_value c in
  let domains = 4 and per_domain = 25_000 in
  let work () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join spawned;
  Alcotest.(check int) "exact sum" (domains * per_domain)
    (Metrics.counter_value c - before)

(* (b) Histogram observations from concurrent domains all land in some
   shard; the merged read sees every one once writers quiesce. *)
let test_concurrent_histogram_complete () =
  let h = Metrics.histogram "test.concurrent_observe" in
  let domains = 4 and per_domain = 5_000 in
  let work () =
    for i = 1 to per_domain do
      Metrics.observe h (float_of_int i)
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join spawned;
  let merged = Metrics.histogram_value h in
  Alcotest.(check int) "all observations merged" (domains * per_domain)
    (Histogram.count merged);
  Test_util.check_float ~eps:1e-6 "sum merged"
    (float_of_int domains *. float_of_int (per_domain * (per_domain + 1)) /. 2.0)
    (Histogram.sum merged)

(* The exact nearest-rank quantile the histogram approximates. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (Float.round (q *. float_of_int n)))) in
  sorted.(rank - 1)

(* (c) Property: on arbitrary positive samples, every estimated quantile
   is within the documented relative error (1/32) of the exact
   nearest-rank sample quantile. *)
let prop_quantile_error_bound =
  Test_util.qcheck ~count:300 "histogram quantiles within documented error"
    QCheck2.Gen.(
      list_size (int_range 1 400) (map (fun x -> Float.exp x) (float_range (-10.0) 10.0)))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let sorted = Array.of_list (List.sort Float.compare samples) in
      List.for_all
        (fun q ->
          let est = Histogram.quantile h q in
          let exact = exact_quantile sorted q in
          Float.abs (est -. exact) <= Histogram.relative_error *. exact +. 1e-12)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

(* (d) Merging histograms preserves counts, sums and extrema. *)
let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.0; 2.0; 3.0 ];
  List.iter (Histogram.add b) [ 10.0; 20.0 ];
  Histogram.merge_into ~into:a b;
  Alcotest.(check int) "count" 5 (Histogram.count a);
  Test_util.check_float "sum" 36.0 (Histogram.sum a);
  Test_util.check_float "min" 1.0 (Histogram.min_value a);
  Test_util.check_float "max" 20.0 (Histogram.max_value a)

(* (e) Non-positive and NaN observations rank below every positive one
   instead of poisoning the buckets. *)
let test_histogram_nonpositive () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.0; -5.0; Float.nan; 4.0; 8.0 ];
  Alcotest.(check int) "all counted" 5 (Histogram.count h);
  Alcotest.(check bool) "low quantile is the floor" true
    (Histogram.quantile h 0.1 <= 0.0);
  Alcotest.(check bool) "high quantile sees positives" true
    (Histogram.quantile h 1.0 > 7.0)

(* (f) Registration: same name and kind returns the same metric;
   re-registering as a different kind is a typed error. *)
let test_registration () =
  let c1 = Metrics.counter "test.register_once" in
  let c2 = Metrics.counter "test.register_once" in
  Metrics.add c1 3;
  Alcotest.(check int) "same underlying counter" (Metrics.counter_value c1)
    (Metrics.counter_value c2);
  match Metrics.gauge "test.register_once" with
  | _ -> Alcotest.fail "kind clash not rejected"
  | exception Invalid_argument _ -> ()

(* (g) Gauges keep the last write. *)
let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 1.5;
  Metrics.set g 2.5;
  Test_util.check_float "last write wins" 2.5 (Metrics.gauge_value g)

(* (h) Metrics.time records a duration and re-raises. *)
let test_time_records_on_raise () =
  let h = Metrics.histogram "test.time_raise" in
  let before = Histogram.count (Metrics.histogram_value h) in
  (match Metrics.time h (fun () -> raise Exit) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Alcotest.(check int) "duration recorded" (before + 1)
    (Histogram.count (Metrics.histogram_value h))

(* (i) The snapshot carries every registered metric under its section,
   with names sorted. *)
let test_snapshot_json () =
  ignore (Metrics.counter "test.snap_counter");
  ignore (Metrics.gauge "test.snap_gauge");
  ignore (Metrics.histogram "test.snap_histo");
  match Metrics.to_json () with
  | Json.Obj sections ->
      let names_of section =
        match List.assoc_opt section sections with
        | Some (Json.Obj fields) -> List.map fst fields
        | _ -> Alcotest.failf "missing section %S" section
      in
      let counters = names_of "counters" in
      Alcotest.(check bool) "counter listed" true
        (List.mem "test.snap_counter" counters);
      Alcotest.(check bool) "gauge listed" true
        (List.mem "test.snap_gauge" (names_of "gauges"));
      Alcotest.(check bool) "histogram listed" true
        (List.mem "test.snap_histo" (names_of "histograms"));
      Alcotest.(check bool) "names sorted" true
        (counters = List.sort String.compare counters)
  | _ -> Alcotest.fail "snapshot is not an object"

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "concurrent counter adds sum exactly" `Quick
          test_concurrent_counter_exact;
        Alcotest.test_case "concurrent histogram merge complete" `Quick
          test_concurrent_histogram_complete;
        prop_quantile_error_bound;
        Alcotest.test_case "histogram merge preserves moments" `Quick
          test_histogram_merge;
        Alcotest.test_case "non-positive observations isolated" `Quick
          test_histogram_nonpositive;
        Alcotest.test_case "registration idempotent, kind-checked" `Quick
          test_registration;
        Alcotest.test_case "gauge last write wins" `Quick test_gauge;
        Alcotest.test_case "time records on raise" `Quick test_time_records_on_raise;
        Alcotest.test_case "snapshot JSON sections" `Quick test_snapshot_json;
      ] );
  ]
