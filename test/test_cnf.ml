(* The clause-database WMC engine (lib/cnf) against its two reference
   semantics: brute-force weighted model counting on small formulas, and
   the tree DPLL solver on randomized lineage — monotone and non-monotone,
   across the cache/components config matrix, with fault injection. *)

module F = Probdb_boolean.Formula
module W = Probdb_boolean.Brute_wmc
module Cnf = Probdb_cnf.Cnf
module Wmc = Probdb_cnf.Wmc
module Dpll = Probdb_dpll.Dpll
module Circuit = Probdb_kc.Circuit
module Guard = Probdb_guard.Guard

let probs x = 0.15 +. (0.07 *. float_of_int x)

let x0 = F.var 0
let x1 = F.var 1
let x2 = F.var 2
let x3 = F.var 3

(* (x0 v x1)(x0 v x2)(x1 v x2) — connected, CNF-shaped *)
let triangle = F.conj [ F.disj2 x0 x1; F.disj2 x0 x2; F.disj2 x1 x2 ]

(* ---------- the bridge ---------- *)

let test_direct_translation () =
  let c = Cnf.translate triangle in
  Alcotest.(check bool) "direct (no gates)" false c.Cnf.clausified;
  Alcotest.(check int) "3 vars" 3 c.Cnf.nvars;
  Alcotest.(check int) "3 clauses" 3 (Array.length c.Cnf.clauses);
  (* negative literals are still CNF-shaped *)
  let c' = Cnf.translate (F.conj2 (F.disj2 (F.neg x0) x1) (F.disj2 x0 (F.neg x2))) in
  Alcotest.(check bool) "negated literals direct" false c'.Cnf.clausified;
  (* a DNF is not, and falls back to clausification *)
  let dnf = F.disj2 (F.conj2 x0 x1) (F.conj2 x2 x3) in
  Alcotest.(check bool) "as_cnf refuses DNF" true (F.as_cnf dnf = None);
  let c'' = Cnf.translate dnf in
  Alcotest.(check bool) "DNF clausified" true c''.Cnf.clausified;
  Alcotest.(check bool) "gates added" true (c''.Cnf.nvars > c''.Cnf.n_orig)

let test_constants () =
  Test_util.check_float "true" 1.0 (Wmc.probability ~prob:probs F.tru);
  Test_util.check_float "false" 0.0 (Wmc.probability ~prob:probs F.fls);
  Test_util.check_float "single var" (probs 2) (Wmc.probability ~prob:probs x2);
  Test_util.check_float "negated var" (1.0 -. probs 2)
    (Wmc.probability ~prob:probs (F.neg x2))

(* ---------- counting against brute force ---------- *)

let test_simple_counts () =
  let r = Wmc.count ~prob:probs triangle in
  Test_util.check_float "triangle" (W.probability probs triangle) r.Wmc.prob;
  Alcotest.(check bool) "made decisions" true (r.Wmc.stats.Wmc.decisions > 0);
  Alcotest.(check bool) "propagated units" true (r.Wmc.stats.Wmc.propagations > 0);
  Alcotest.(check bool) "tracked trail depth" true (r.Wmc.stats.Wmc.max_trail > 0)

let test_trace_is_valid_decision_dnnf () =
  let r = Wmc.count ~prob:probs triangle in
  Alcotest.(check bool) "trace valid" true (Result.is_ok (Circuit.check r.Wmc.circuit));
  Alcotest.(check bool) "trace within decision-DNNF" true
    (Circuit.kind ~order:None r.Wmc.circuit <> Circuit.Extended);
  Test_util.check_float "trace wmc" r.Wmc.prob (Circuit.wmc probs r.Wmc.circuit);
  Alcotest.(check int) "trace_size = circuit size" (Circuit.size r.Wmc.circuit)
    r.Wmc.trace_size

let test_components_fire () =
  (* (x0 v x1) ∧ (x2 v x3): splits into two residual components at the root *)
  let f = F.conj2 (F.disj2 x0 x1) (F.disj2 x2 x3) in
  let r = Wmc.count ~prob:probs f in
  Test_util.check_float "probability" (W.probability probs f) r.Wmc.prob;
  Alcotest.(check bool) "components detected" true (r.Wmc.stats.Wmc.components >= 2);
  let r' =
    Wmc.count ~config:{ Wmc.default_config with Wmc.use_components = false }
      ~prob:probs f
  in
  Test_util.check_float "same without components" r.Wmc.prob r'.Wmc.prob;
  Alcotest.(check bool) "components save decisions" true
    (r.Wmc.stats.Wmc.decisions <= r'.Wmc.stats.Wmc.decisions)

let test_decision_limit () =
  match
    Wmc.count ~config:{ Wmc.default_config with Wmc.max_decisions = 1 } ~prob:probs
      triangle
  with
  | exception Wmc.Decision_limit 1 -> ()
  | _ -> Alcotest.fail "expected Decision_limit"

(* A formula with enough distinct components to overflow a 2-entry cache:
   a chain of independent clause pairs. *)
let chained n =
  F.conj (List.init n (fun i -> F.disj2 (F.var (2 * i)) (F.var ((2 * i) + 1))))

let test_cache_bounded () =
  let f = chained 8 in
  let r =
    Wmc.count ~config:{ Wmc.default_config with Wmc.max_cache_entries = 2 }
      ~prob:probs f
  in
  Test_util.check_float "correct with tiny cache" (W.probability probs f) r.Wmc.prob;
  Alcotest.(check bool) "evictions happened" true (r.Wmc.stats.Wmc.cache_evictions > 0);
  Alcotest.(check bool) "cache stayed bounded" true (r.Wmc.stats.Wmc.cache_entries <= 2)

let test_guard_budget_caps_cache () =
  let g = Guard.create () in
  Guard.set_budget g "wmc.cache_entries" 2;
  let f = chained 8 in
  let r = Wmc.count ~guard:g ~prob:probs f in
  Test_util.check_float "correct under budget cap" (W.probability probs f) r.Wmc.prob;
  Alcotest.(check bool) "budget bound respected" true
    (r.Wmc.stats.Wmc.cache_entries <= 2)

(* ---------- fault injection: trips must not corrupt anything ---------- *)

let test_guard_trip_degrades_cleanly () =
  let fault = Guard.Trip_at_poll { poll = 2; resource = Guard.Fault } in
  (match Wmc.count ~guard:(Guard.create ~fault ()) ~prob:probs triangle with
  | exception Guard.Exhausted trip ->
      Alcotest.(check string) "tripped at the decision site" "wmc.decide" trip.Guard.site
  | _ -> Alcotest.fail "expected Exhausted");
  (* a fresh run afterwards is untouched by the aborted one *)
  Test_util.check_float "clean after trip" (W.probability probs triangle)
    (Wmc.probability ~prob:probs triangle)

(* ---------- the property suite (this is what `make check-wmc` runs) ---------- *)

let gen_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 8) @@ fix (fun self n ->
        if n = 0 then
          oneof [ return F.tru; return F.fls; map F.var (int_range 0 6) ]
        else
          oneof
            [
              map F.var (int_range 0 6);
              map F.neg (self (n - 1));
              map2 F.conj2 (self (n / 2)) (self (n / 2));
              map2 F.disj2 (self (n / 2)) (self (n / 2));
            ]))

(* Random monotone CNF: the shape of universal-query lineage, translated
   directly (no gates). *)
let gen_monotone_cnf =
  QCheck2.Gen.(
    let clause = map (fun vs -> F.disj (List.map F.var vs)) (list_size (1 -- 3) (0 -- 7)) in
    map F.conj (list_size (1 -- 6) clause))

(* Non-monotone CNF: negated literals allowed, still directly translated. *)
let gen_signed_cnf =
  QCheck2.Gen.(
    let literal =
      map2 (fun v sign -> if sign then F.var v else F.neg (F.var v)) (0 -- 7) bool
    in
    let clause = map F.disj (list_size (1 -- 3) literal) in
    map F.conj (list_size (1 -- 6) clause))

let configs =
  [
    ("default", Wmc.default_config);
    ("no-cache", { Wmc.default_config with Wmc.use_cache = false });
    ("no-components", { Wmc.default_config with Wmc.use_components = false });
    ( "plain",
      { Wmc.default_config with Wmc.use_cache = false; Wmc.use_components = false } );
  ]

let agrees_everywhere f =
  let expected = W.probability probs f in
  List.for_all
    (fun (_, cfg) ->
      Float.abs (Wmc.probability ~config:cfg ~prob:probs f -. expected) < 1e-9
      && Float.abs
           (Wmc.probability ~config:cfg ~force_clausify:true ~prob:probs f -. expected)
         < 1e-9)
    configs

let prop_matches_brute_force =
  Test_util.qcheck ~count:200 "WMC (all configs, both translations) = brute force"
    gen_formula agrees_everywhere

let prop_monotone_cnf_matches_dpll =
  Test_util.qcheck ~count:200 "WMC = tree DPLL on monotone CNF lineage"
    gen_monotone_cnf (fun f ->
      let expected = Dpll.probability ~prob:probs f in
      List.for_all
        (fun (_, cfg) ->
          Float.abs (Wmc.probability ~config:cfg ~prob:probs f -. expected) < 1e-9)
        configs)

let prop_signed_cnf_matches_dpll =
  Test_util.qcheck ~count:200 "WMC = tree DPLL on non-monotone CNF" gen_signed_cnf
    (fun f ->
      let expected = Dpll.probability ~prob:probs f in
      Float.abs (Wmc.probability ~prob:probs f -. expected) < 1e-9)

let prop_trace_wmc_agrees =
  Test_util.qcheck ~count:200 "trace WMC = reported probability" gen_monotone_cnf
    (fun f ->
      let r = Wmc.count ~prob:probs f in
      Result.is_ok (Circuit.check r.Wmc.circuit)
      && Circuit.kind ~order:None r.Wmc.circuit <> Circuit.Extended
      && Float.abs (Circuit.wmc probs r.Wmc.circuit -. r.Wmc.prob) < 1e-9)

(* Deterministic trips at every poll depth: the solver either finishes with
   the right answer or raises Exhausted; either way a fresh solve right
   after is correct (nothing global to corrupt). *)
let prop_fault_injection_clean =
  Test_util.qcheck ~count:100 "guard trips mid-solve degrade cleanly"
    QCheck2.Gen.(pair gen_monotone_cnf (1 -- 20))
    (fun (f, poll) ->
      let expected = W.probability probs f in
      let fault = Guard.Trip_at_poll { poll; resource = Guard.Fault } in
      let first =
        match Wmc.probability ~guard:(Guard.create ~fault ()) ~prob:probs f with
        | p -> Float.abs (p -. expected) < 1e-9
        | exception Guard.Exhausted _ -> true
      in
      first && Float.abs (Wmc.probability ~prob:probs f -. expected) < 1e-9)

(* The star family of the e16 benchmark: one hub variable in every clause.
   Here the clause database provably mirrors the tree solver float for
   float, not just up to tolerance. *)
let test_star_bit_identical () =
  let star n =
    F.conj (List.init n (fun i -> F.disj2 (F.var 0) (F.var (i + 1))))
  in
  List.iter
    (fun n ->
      let f = star n in
      let tree = Dpll.probability ~prob:probs f in
      let wmc = Wmc.probability ~prob:probs f in
      if not (Float.equal tree wmc) then
        Alcotest.failf "star %d: tree %.17g <> wmc %.17g" n tree wmc)
    [ 1; 2; 5; 17; 50 ]

(* ---------- engine integration ---------- *)

module E = Probdb_engine.Engine
module L = Probdb_logic
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen

let test_engine_wmc_on_universal_query () =
  (* ∀x∀y R(x)∨S(x,y)∨T(y) (Thm. 2.2 as stated) grounds to CNF-shaped
     lineage on an asymmetric db: the auto dispatcher reaches the WMC
     strategy before OBDD/DPLL *)
  let q = Q.h0_forall.Q.query in
  let db = Gen.h0_db ~seed:7 ~n:3 () in
  let stats = Probdb_obs.Stats.create () in
  let r = E.evaluate ~stats db q in
  Alcotest.(check string) "wmc answers" "wmc" (E.strategy_name r.E.strategy);
  Test_util.check_float "exact value" (L.Brute_force.probability db q)
    (E.value r.E.outcome);
  (match stats.Probdb_obs.Stats.wmc with
  | Some w ->
      Alcotest.(check bool) "wmc stats recorded" true
        (w.Probdb_obs.Stats.wmc_decisions > 0)
  | None -> Alcotest.fail "wmc stats missing");
  match stats.Probdb_obs.Stats.circuit with
  | Some c ->
      Alcotest.(check bool) "circuit recorded" true (c.Probdb_obs.Stats.nodes > 0)
  | None -> Alcotest.fail "circuit stats missing"

let test_engine_wmc_skips_dnf_lineage_in_auto () =
  (* H0 is existential — DNF lineage — so in auto mode the WMC strategy
     steps aside with a reason and OBDD still answers (the seed behaviour) *)
  let db = Gen.h0_db ~seed:5 ~n:3 () in
  let r = E.evaluate db Q.h0.Q.query in
  Alcotest.(check string) "obdd still answers H0" "obdd" (E.strategy_name r.E.strategy);
  Alcotest.(check bool) "wmc skipped with a reason" true
    (List.mem_assoc E.Wmc r.E.skipped)

let test_engine_wmc_forced_on_dnf () =
  (* explicitly requested, WMC clausifies the DNF lineage and still agrees *)
  let db = Gen.h0_db ~seed:5 ~n:3 () in
  let config = { E.default_config with E.strategies = [ E.Wmc ] } in
  let r = E.evaluate ~config db Q.h0.Q.query in
  Alcotest.(check string) "wmc answers when forced" "wmc" (E.strategy_name r.E.strategy);
  Test_util.check_float "same value" (L.Brute_force.probability db Q.h0.Q.query)
    (E.value r.E.outcome)

let suites =
  [
    ( "cnf",
      [
        Alcotest.test_case "direct translation" `Quick test_direct_translation;
        Alcotest.test_case "constants" `Quick test_constants;
      ] );
    ( "wmc",
      [
        Alcotest.test_case "simple counts" `Quick test_simple_counts;
        Alcotest.test_case "trace is valid decision-DNNF" `Quick
          test_trace_is_valid_decision_dnnf;
        Alcotest.test_case "components fire" `Quick test_components_fire;
        Alcotest.test_case "decision limit" `Quick test_decision_limit;
        Alcotest.test_case "bounded cache evicts" `Quick test_cache_bounded;
        Alcotest.test_case "guard budget caps cache" `Quick test_guard_budget_caps_cache;
        Alcotest.test_case "guard trip degrades cleanly" `Quick
          test_guard_trip_degrades_cleanly;
        Alcotest.test_case "star family bit-identical to tree" `Quick
          test_star_bit_identical;
        prop_matches_brute_force;
        prop_monotone_cnf_matches_dpll;
        prop_signed_cnf_matches_dpll;
        prop_trace_wmc_agrees;
        prop_fault_injection_clean;
      ] );
    ( "wmc-engine",
      [
        Alcotest.test_case "universal query answers via wmc" `Quick
          test_engine_wmc_on_universal_query;
        Alcotest.test_case "auto mode skips DNF lineage" `Quick
          test_engine_wmc_skips_dnf_lineage_in_auto;
        Alcotest.test_case "forced wmc clausifies DNF" `Quick
          test_engine_wmc_forced_on_dnf;
      ] );
  ]
