module Par = Probdb_par.Par
module KL = Probdb_approx.Karp_luby
module Lift = Probdb_lifted.Lift
module L = Probdb_logic
module Gen = Probdb_workload.Gen

exception Boom of int

let test_run_order () =
  let pool = Par.create ~domains:4 () in
  let tasks = List.init 37 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in task order"
    (List.init 37 (fun i -> i * i))
    (Par.run pool tasks);
  Alcotest.(check int) "tasks counted" 37 (Par.tasks_run pool);
  Alcotest.(check (list int)) "empty list" [] (Par.run pool [])

let test_run_nested () =
  let pool = Par.create ~domains:3 () in
  (* a task that itself calls [run] must not deadlock: nested calls run
     sequentially on the worker *)
  let results =
    Par.run pool
      (List.init 5 (fun i () ->
           List.fold_left ( + ) 0 (Par.run pool (List.init 4 (fun j () -> i + j)))))
  in
  Alcotest.(check (list int))
    "nested totals"
    (List.init 5 (fun i -> (4 * i) + 6))
    results

let test_run_exceptions () =
  let pool = Par.create ~domains:4 () in
  let tasks =
    List.init 8 (fun i () -> if i = 2 || i = 5 then raise (Boom i) else i)
  in
  (* the lowest-indexed failure is re-raised, deterministically *)
  Alcotest.check_raises "lowest index wins" (Boom 2) (fun () ->
      ignore (Par.run pool tasks))

let test_map_reduce () =
  let seq = Par.create ~domains:1 () in
  let par = Par.create ~domains:4 () in
  let sum pool =
    Par.map_reduce pool ~map:float_of_int ~reduce:( +. ) ~init:0.0 1000
  in
  (* reduction happens in index order, so even float sums are bit-equal *)
  Alcotest.(check bool) "bit-identical across pool sizes" true (sum seq = sum par);
  Alcotest.(check (float 0.0)) "value" 499500.0 (sum par)

let test_rng_streams () =
  let take n rng = List.init n (fun _ -> Par.Rng.float rng 1.0) in
  let a = take 100 (Par.Rng.make ~seed:7 ~stream:3) in
  let b = take 100 (Par.Rng.make ~seed:7 ~stream:3) in
  let c = take 100 (Par.Rng.make ~seed:7 ~stream:4) in
  Alcotest.(check bool) "same (seed, stream) replays" true (a = b);
  Alcotest.(check bool) "distinct streams differ" true (a <> c);
  List.iter
    (fun x -> Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0))
    a;
  let ints = List.init 100 (fun _ -> Par.Rng.int (Par.Rng.make ~seed:1 ~stream:0) 10) in
  List.iter (fun i -> Alcotest.(check bool) "int bound" true (i >= 0 && i < 10)) ints

(* A DNF small enough for the exact oracle but with overlapping clauses. *)
let dnf = [ [ 1; 2 ]; [ 2; 3 ]; [ 4 ]; [ 1; 5 ] ]

let prob v = 0.1 +. (0.07 *. float_of_int v)

let test_estimate_par_deterministic () =
  let est d =
    KL.estimate_par ~seed:11 ~pool:(Par.create ~domains:d ()) ~samples:5000 ~prob dnf
  in
  let e1 = est 1 and e3 = est 3 and e8 = est 8 in
  Alcotest.(check bool) "mean identical 1 vs 3 domains" true
    (e1.KL.mean = e3.KL.mean);
  Alcotest.(check bool) "mean identical 1 vs 8 domains" true
    (e1.KL.mean = e8.KL.mean);
  Alcotest.(check bool) "std_error identical" true
    (e1.KL.std_error = e3.KL.std_error);
  (* and without a pool at all (caller-domain batches) *)
  let e0 = KL.estimate_par ~seed:11 ~samples:5000 ~prob dnf in
  Alcotest.(check bool) "no-pool = pool" true (e0.KL.mean = e3.KL.mean)

let test_estimate_par_accuracy () =
  let truth = KL.exact_via_sampling_identity ~prob dnf in
  let e =
    KL.estimate_par ~seed:3 ~pool:(Par.create ~domains:4 ()) ~samples:60_000 ~prob dnf
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.4f within 4 standard errors of %.4f" e.KL.mean truth)
    true
    (Float.abs (e.KL.mean -. truth) <= 4.0 *. e.KL.std_error +. 1e-9);
  Alcotest.(check int) "sample count" 60_000 e.KL.samples

let test_estimate_par_edge_cases () =
  let pool = Par.create ~domains:3 () in
  let zero = KL.estimate_par ~pool ~samples:100 ~prob [] in
  Alcotest.(check (float 0.0)) "empty DNF" 0.0 zero.KL.mean;
  let dead = KL.estimate_par ~pool ~samples:100 ~prob:(fun _ -> 0.0) [ [ 1 ] ] in
  Alcotest.(check (float 0.0)) "zero-weight union" 0.0 dead.KL.mean;
  Alcotest.check_raises "non-positive samples"
    (Invalid_argument "Karp_luby.estimate_par: need at least one sample") (fun () ->
      ignore (KL.estimate_par ~pool ~samples:0 ~prob dnf))

(* Lifted inference with a pool: identical probability AND identical rule
   tallies, for queries exercising independent joins, independent unions
   and the separator rule's per-constant fan-out. *)
let test_lift_pool_equals_sequential () =
  let queries =
    [ "exists x y. R(x) && T(y)";
      "exists x y. R(x) && S(x,y)";
      "exists x y. R(x) || T(y)";
      "forall x y. R(x) || S(x,y)" ]
  in
  let pool = Par.create ~domains:4 () in
  List.iteri
    (fun qi text ->
      let q = L.Parser.parse_sentence text in
      for seed = 1 to 5 do
        let db =
          Gen.random_tid ~seed ~domain_size:3
            [ Gen.spec ~density:0.7 "R" 1;
              Gen.spec ~density:0.7 "S" 2;
              Gen.spec ~density:0.7 "T" 1 ]
        in
        let s_seq = Lift.fresh_stats () and s_par = Lift.fresh_stats () in
        let p_seq = Lift.probability ~stats:s_seq db q in
        let p_par = Lift.probability ~stats:s_par ~pool db q in
        if not (p_seq = p_par) then
          Alcotest.failf "query %d seed %d: %.17g (seq) <> %.17g (pool)" qi seed
            p_seq p_par;
        Alcotest.(check int)
          (Printf.sprintf "query %d seed %d base lookups" qi seed)
          s_seq.Lift.base_lookups s_par.Lift.base_lookups;
        Alcotest.(check int)
          (Printf.sprintf "query %d seed %d separator steps" qi seed)
          s_seq.Lift.separator_steps s_par.Lift.separator_steps
      done)
    queries

let test_engine_domains_config () =
  let module E = Probdb_engine.Engine in
  let module Stats = Probdb_obs.Stats in
  let db =
    Gen.random_tid ~seed:2 ~domain_size:3
      [ Gen.spec ~density:0.7 "R" 1; Gen.spec ~density:0.7 "S" 2 ]
  in
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)" in
  let eval domains =
    let config = { E.default_config with E.domains } in
    let stats = Stats.create () in
    match E.eval ~config ~stats db q with
    | Ok a -> (a.Probdb_engine.Answer.value, stats)
    | Error _ -> Alcotest.fail "engine failed"
  in
  let v1, s1 = eval 1 and v4, s4 = eval 4 in
  Alcotest.(check bool) "same value at 1 and 4 domains" true (v1 = v4);
  Alcotest.(check int) "domains_used sequential" 1 s1.Stats.domains_used;
  Alcotest.(check int) "domains_used parallel" 4 s4.Stats.domains_used;
  Alcotest.(check bool) "par_tasks counted" true (s4.Stats.par_tasks > 0)

(* ---------- the persistent worker service ---------- *)

let test_service_completes_everything () =
  let processed = Atomic.make 0 in
  let svc =
    Par.Service.start ~domains:3 ~capacity:128 (fun n ->
        Atomic.fetch_and_add processed n |> ignore)
  in
  let accepted = ref 0 in
  for i = 1 to 100 do
    match Par.Service.try_submit svc i with
    | `Accepted _ -> incr accepted
    | `Overloaded | `Closed -> ()
  done;
  Par.Service.wait_idle svc;
  Alcotest.(check int) "everything accepted" 100 !accepted;
  Alcotest.(check int) "sum of processed items" 5050 (Atomic.get processed);
  Alcotest.(check int) "submitted" 100 (Par.Service.submitted svc);
  Alcotest.(check int) "completed" 100 (Par.Service.completed svc);
  Alcotest.(check int) "no failures" 0 (Par.Service.failures svc);
  Alcotest.(check (list int)) "drain-shutdown drops nothing" []
    (Par.Service.shutdown svc)

let test_service_backpressure () =
  (* one worker wedged on a slow item: the queue fills to capacity and
     further submissions report [`Overloaded] without blocking *)
  let release = Atomic.make false in
  let svc =
    Par.Service.start ~domains:1 ~capacity:2 (fun _ ->
        while not (Atomic.get release) do
          Thread.yield ()
        done)
  in
  (* first item goes in flight; wait until the worker picked it up *)
  (match Par.Service.try_submit svc 0 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "first submit refused");
  while Par.Service.in_flight svc = 0 do
    Thread.yield ()
  done;
  (match Par.Service.try_submit svc 1 with
  | `Accepted d -> Alcotest.(check int) "depth after second" 1 d
  | _ -> Alcotest.fail "second submit refused");
  (match Par.Service.try_submit svc 2 with
  | `Accepted d -> Alcotest.(check int) "depth at capacity" 2 d
  | _ -> Alcotest.fail "third submit refused");
  (match Par.Service.try_submit svc 3 with
  | `Overloaded -> ()
  | `Accepted _ | `Closed -> Alcotest.fail "expected overload at capacity");
  Atomic.set release true;
  Par.Service.wait_idle svc;
  ignore (Par.Service.shutdown svc);
  Alcotest.(check int) "only the accepted items ran" 3 (Par.Service.completed svc)

let test_service_shutdown_drops () =
  let release = Atomic.make false in
  let svc =
    Par.Service.start ~domains:1 ~capacity:8 (fun _ ->
        while not (Atomic.get release) do
          Thread.yield ()
        done)
  in
  List.iter (fun i -> ignore (Par.Service.try_submit svc i)) [ 0; 1; 2; 3 ];
  while Par.Service.in_flight svc = 0 do
    Thread.yield ()
  done;
  (* no-drain shutdown returns the queued (never-started) items; the
     in-flight one still completes. The shutdown must be issued before
     releasing the worker, from another thread since it joins. *)
  let dropped = ref [] in
  let th =
    Thread.create (fun () -> dropped := Par.Service.shutdown ~drain:false svc) ()
  in
  (* give the shutdown a moment to close the queue, then release *)
  Thread.delay 0.05;
  Atomic.set release true;
  Thread.join th;
  Alcotest.(check (list int)) "queued items returned in order" [ 1; 2; 3 ] !dropped;
  Alcotest.(check int) "in-flight item completed" 1 (Par.Service.completed svc);
  (match Par.Service.try_submit svc 9 with
  | `Closed -> ()
  | `Accepted _ | `Overloaded -> Alcotest.fail "submit after shutdown not closed");
  Alcotest.(check (list int)) "second shutdown is a no-op" []
    (Par.Service.shutdown svc)

let test_service_swallows_failures () =
  let svc =
    Par.Service.start ~domains:2 ~capacity:16 (fun n ->
        if n mod 2 = 0 then raise (Boom n))
  in
  for i = 0 to 9 do
    ignore (Par.Service.try_submit svc i)
  done;
  Par.Service.wait_idle svc;
  ignore (Par.Service.shutdown svc);
  Alcotest.(check int) "all ran" 10 (Par.Service.completed svc);
  Alcotest.(check int) "failures counted" 5 (Par.Service.failures svc)

let test_service_workers_run_nested_sequential () =
  (* a handler that calls into a [run] pool must execute its tasks
     sequentially on the worker domain rather than spawning domains *)
  let saw_extra_domain = Atomic.make false in
  let svc =
    Par.Service.start ~domains:1 ~capacity:4 (fun () ->
        let self = Domain.self () in
        let pool = Par.create ~domains:4 () in
        Par.run pool
          (List.init 4 (fun _ () ->
               if Domain.self () <> self then Atomic.set saw_extra_domain true))
        |> ignore)
  in
  ignore (Par.Service.try_submit svc ());
  Par.Service.wait_idle svc;
  ignore (Par.Service.shutdown svc);
  Alcotest.(check bool) "nested run stayed on the worker" false
    (Atomic.get saw_extra_domain)

let suites =
  [
    ( "par",
      [
        Alcotest.test_case "run preserves task order" `Quick test_run_order;
        Alcotest.test_case "nested run is sequential" `Quick test_run_nested;
        Alcotest.test_case "exceptions re-raised deterministically" `Quick
          test_run_exceptions;
        Alcotest.test_case "map_reduce deterministic" `Quick test_map_reduce;
        Alcotest.test_case "rng stream splitting" `Quick test_rng_streams;
        Alcotest.test_case "estimate_par identical across domain counts" `Quick
          test_estimate_par_deterministic;
        Alcotest.test_case "estimate_par accuracy" `Quick test_estimate_par_accuracy;
        Alcotest.test_case "estimate_par edge cases" `Quick
          test_estimate_par_edge_cases;
        Alcotest.test_case "lifted pool = sequential" `Quick
          test_lift_pool_equals_sequential;
        Alcotest.test_case "engine --domains wiring" `Quick test_engine_domains_config;
        Alcotest.test_case "service completes everything" `Quick
          test_service_completes_everything;
        Alcotest.test_case "service backpressure at capacity" `Quick
          test_service_backpressure;
        Alcotest.test_case "service no-drain shutdown returns queue" `Quick
          test_service_shutdown_drops;
        Alcotest.test_case "service swallows handler failures" `Quick
          test_service_swallows_failures;
        Alcotest.test_case "service workers run nested pools sequentially" `Quick
          test_service_workers_run_nested_sequential;
      ] );
  ]
