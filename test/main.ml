let () =
  Alcotest.run "probdb"
    (Test_core.suites @ Test_boolean.suites @ Test_logic.suites
     @ Test_lineage.suites @ Test_kc.suites @ Test_dpll.suites @ Test_cnf.suites
     @ Test_lifted.suites @ Test_plans.suites @ Test_exec.suites
     @ Test_par.suites @ Test_mln.suites
     @ Test_symmetric.suites @ Test_approx.suites @ Test_engine.suites
     @ Test_openworld.suites @ Test_provenance.suites @ Test_robustness.suites
     @ Test_obs.suites @ Test_trace.suites @ Test_metrics.suites
     @ Test_prepare.suites @ Test_serve.suites @ Test_storage.suites
     @ Test_chaos.suites)
