(* Tests for the event-tracing layer: ring buffers, Chrome trace_event
   export schema, span repair, and the determinism guarantee (tracing on
   or off must not change query answers). *)

module L = Probdb_logic
module E = Probdb_engine.Engine
module Gen = Probdb_workload.Gen
module Trace = Probdb_obs.Trace
module Json = Probdb_obs.Json

(* Every test leaves tracing off and empty so suites stay independent. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ())
    f

(* (a) Disabled tracing records nothing: the probes must be inert, not
   just filtered at export. *)
let test_disabled_records_nothing () =
  isolated @@ fun () ->
  Trace.disable ();
  Trace.clear ();
  Trace.begin_ ~cat:"t" "x";
  Trace.instant "y";
  Trace.counter "z" 1.0;
  Trace.end_ ~cat:"t" "x";
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check bool) "with_span still runs the thunk" true
    (Trace.with_span "s" (fun () -> true))

(* (b) Recorded events come back in timestamp order with the emitting
   domain and the right kinds. *)
let test_events_ordered_and_typed () =
  isolated @@ fun () ->
  Trace.enable ();
  Trace.with_span ~cat:"outer" "a" (fun () ->
      Trace.instant ~cat:"i" "tick";
      Trace.counter ~cat:"c" "n" 42.0);
  let evs = Trace.events () in
  Alcotest.(check (list string))
    "kind sequence"
    [ "B:a"; "i:tick"; "C:n"; "E:a" ]
    (List.map
       (fun (e : Trace.event) ->
         let k =
           match e.Trace.kind with
           | Trace.Begin -> "B"
           | Trace.End -> "E"
           | Trace.Instant -> "i"
           | Trace.Counter -> "C"
         in
         k ^ ":" ^ e.Trace.name)
       evs);
  let sorted = List.sort (fun (a : Trace.event) b -> Int.compare a.Trace.ts_ns b.Trace.ts_ns) evs in
  Alcotest.(check bool) "timestamp order" true (evs = sorted);
  let d = (Domain.self () :> int) in
  Alcotest.(check bool) "lane is this domain" true
    (List.for_all (fun (e : Trace.event) -> e.Trace.domain = d) evs);
  match List.find (fun (e : Trace.event) -> e.Trace.kind = Trace.Counter) evs with
  | e -> Alcotest.(check (float 0.0)) "counter value" 42.0 e.Trace.value
  | exception Not_found -> Alcotest.fail "no counter event"

(* (c) Ring overflow keeps the newest events and counts the dropped. *)
let test_ring_overflow () =
  isolated @@ fun () ->
  Trace.enable ~capacity:8 ();
  for i = 1 to 100 do
    Trace.counter "i" (float_of_int i)
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length evs);
  Alcotest.(check int) "dropped counted" 92 (Trace.dropped ());
  Alcotest.(check (float 0.0)) "newest survives" 100.0
    (List.fold_left (fun acc (e : Trace.event) -> Float.max acc e.Trace.value) 0.0 evs)

let chrome_events () =
  match Trace.to_chrome_json () with
  | Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Json.List evs -> evs
      | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "chrome doc is not an object"

let ph ev =
  match ev with
  | Json.Obj fields -> (
      match List.assoc_opt "ph" fields with
      | Some (Json.Str s) -> s
      | _ -> Alcotest.fail "event without ph")
  | _ -> Alcotest.fail "event is not an object"

(* (d) The export schema: every event is an object carrying
   name/ph/pid/tid, phases are from the known set, and Begin/End nest
   properly per lane — even when the recorded stream is broken (unclosed
   Begin, orphan End), because the exporter repairs it. *)
let test_chrome_schema_and_repair () =
  isolated @@ fun () ->
  Trace.enable ();
  Trace.end_ "orphan";
  (* Begin evicted in a real overflow; synthetic here *)
  Trace.begin_ "unclosed";
  Trace.instant "i";
  let evs = chrome_events () in
  Alcotest.(check bool) "nonempty" true (evs <> []);
  let known = [ "B"; "E"; "i"; "C"; "M" ] in
  List.iter
    (fun ev ->
      Alcotest.(check bool) "known phase" true (List.mem (ph ev) known);
      match ev with
      | Json.Obj fields ->
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " present") true
                (List.mem_assoc k fields))
            [ "name"; "ph"; "pid"; "tid" ]
      | _ -> Alcotest.fail "event is not an object")
    evs;
  let count p = List.length (List.filter (fun e -> ph e = p) evs) in
  Alcotest.(check int) "balanced B/E" (count "B") (count "E");
  Alcotest.(check bool) "thread metadata present" true (count "M" > 0)

(* (e) Counter events carry their value under args.value — that's where
   Perfetto reads the series. *)
let test_counter_args () =
  isolated @@ fun () ->
  Trace.enable ();
  Trace.counter ~cat:"c" "load" 7.5;
  let evs = List.filter (fun e -> ph e = "C") (chrome_events ()) in
  Alcotest.(check int) "one counter" 1 (List.length evs);
  match List.hd evs with
  | Json.Obj fields -> (
      match List.assoc_opt "args" fields with
      | Some (Json.Obj args) -> (
          match List.assoc_opt "value" args with
          | Some (Json.Float v) -> Alcotest.(check (float 0.0)) "value" 7.5 v
          | _ -> Alcotest.fail "no args.value")
      | _ -> Alcotest.fail "counter without args")
  | _ -> Alcotest.fail "not an object"

(* (f) enable starts a fresh trace: events from the previous run are gone
   even though domain-local buffers were cached. *)
let test_enable_clears () =
  isolated @@ fun () ->
  Trace.enable ();
  Trace.instant "old";
  Trace.enable ();
  Trace.instant "new";
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ()) in
  Alcotest.(check (list string)) "only the new event" [ "new" ] names

(* (g) Determinism: the probability computed with tracing enabled must be
   bit-identical to the one computed with tracing off — instrumentation
   observes, never perturbs. *)
let test_tracing_does_not_change_answers () =
  isolated @@ fun () ->
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y) && T(y)" in
  let specs =
    List.map (fun (name, arity) -> Gen.spec ~density:0.6 name arity) (L.Fo.relations q)
  in
  let db = Gen.random_tid ~seed:11 ~domain_size:6 specs in
  Trace.disable ();
  let p_off = E.probability db q in
  Trace.enable ();
  let p_on = E.probability db q in
  Trace.disable ();
  Alcotest.(check bool) "bit-identical probability" true
    (Int64.equal (Int64.bits_of_float p_off) (Int64.bits_of_float p_on))

(* (h) Multi-domain tracing: pool tasks land on their executing domain's
   lane, and the export carries one thread_name record per lane. *)
let test_domain_lanes () =
  isolated @@ fun () ->
  Trace.enable ();
  let pool = Probdb_par.Par.create ~domains:2 () in
  let results =
    Probdb_par.Par.run pool (List.init 8 (fun i () -> i * i))
  in
  Alcotest.(check (list int)) "results in order"
    (List.init 8 (fun i -> i * i))
    results;
  let evs = Trace.events () in
  let lanes =
    List.sort_uniq Int.compare (List.map (fun (e : Trace.event) -> e.Trace.domain) evs)
  in
  Alcotest.(check bool) "at least one lane" true (List.length lanes >= 1);
  let metas = List.filter (fun e -> ph e = "M") (chrome_events ()) in
  (* one process_name + one thread_name per lane *)
  Alcotest.(check int) "metadata per lane" (1 + List.length lanes) (List.length metas)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "disabled records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "events ordered and typed" `Quick
          test_events_ordered_and_typed;
        Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow;
        Alcotest.test_case "chrome schema valid and repaired" `Quick
          test_chrome_schema_and_repair;
        Alcotest.test_case "counter values in args" `Quick test_counter_args;
        Alcotest.test_case "enable starts fresh" `Quick test_enable_clears;
        Alcotest.test_case "tracing does not change answers" `Quick
          test_tracing_does_not_change_answers;
        Alcotest.test_case "pool tasks trace per-domain lanes" `Quick
          test_domain_lanes;
      ] );
  ]
