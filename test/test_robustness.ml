(* Edge cases and failure injection across the stack: malformed inputs,
   missing relations, extreme probabilities, empty databases, resource
   guards, and the exact-to-(eps,delta) degradation path. *)

module Core = Probdb_core
module Err = Probdb_core.Probdb_error
module L = Probdb_logic
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module Lift = Probdb_lifted.Lift
module Guard = Probdb_guard.Guard

let t xs = List.map Core.Value.int xs
let parse_s = L.Parser.parse_sentence

(* ---------- CSV loader ---------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_csv_malformed_probability () =
  let path = tmp "bad_prob.csv" in
  write_file path "1,2,not_a_number\n";
  match Core.Csv_io.load_relation "R" path with
  | exception Err.Error (Err.Csv { path = p; line; _ }) ->
      Alcotest.(check string) "path in error" path p;
      Alcotest.(check int) "line number" 1 line
  | _ -> Alcotest.fail "expected a typed Csv error on malformed probability"

let test_csv_missing_columns () =
  let path = tmp "short_row.csv" in
  write_file path "0.5\n";
  match Core.Csv_io.load_relation "R" path with
  | exception Err.Error (Err.Csv _) -> ()
  | _ -> Alcotest.fail "expected a typed Csv error on missing value columns"

let test_csv_probability_validation () =
  (* NaN, infinities, and out-of-range values must all be rejected with the
     offending line; ~strict:false admits out-of-range weights but never
     non-finite ones. *)
  List.iter
    (fun (name, bad) ->
      let path = tmp (Printf.sprintf "bad_%s.csv" name) in
      write_file path (Printf.sprintf "1,0.5\n2,%s\n" bad);
      match Core.Csv_io.load_relation "R" path with
      | exception Err.Error (Err.Csv { line; _ }) ->
          Alcotest.(check int) (name ^ " line") 2 line
      | _ -> Alcotest.fail ("expected a Csv error for " ^ name))
    [ ("nan", "nan"); ("inf", "inf"); ("neg_inf", "-inf");
      ("negative", "-0.5"); ("above_one", "1.5") ];
  let path = tmp "weights.csv" in
  write_file path "1,1.25\n2,-0.25\n";
  let rel = Core.Csv_io.load_relation ~strict:false "R" path in
  Alcotest.(check int) "weights accepted non-strict" 2 (Core.Relation.cardinal rel);
  (match Core.Csv_io.load_relation "R" path with
  | exception Err.Error (Err.Csv _) -> ()
  | _ -> Alcotest.fail "weights must be rejected in strict mode");
  let path = tmp "nan_weight.csv" in
  write_file path "1,nan\n";
  match Core.Csv_io.load_relation ~strict:false "R" path with
  | exception Err.Error (Err.Csv _) -> ()
  | _ -> Alcotest.fail "NaN must be rejected even with ~strict:false"

let test_csv_io_fault_injection () =
  (* [Fail_io_at 1] makes the first guarded open fail like a dead disk; the
     loader must surface it as a typed Io error naming the path. *)
  let path = tmp "io_fault.csv" in
  write_file path "1,0.5\n";
  let guard = Guard.create ~fault:(Guard.Fail_io_at 1) () in
  (match Core.Csv_io.load_relation ~guard "R" path with
  | exception Err.Error (Err.Io { path = p; _ }) ->
      Alcotest.(check string) "fault names the path" path p
  | _ -> Alcotest.fail "expected a typed Io error from the injected fault");
  (* the same guard does not fire twice with Fail_io_at 1 *)
  let rel = Core.Csv_io.load_relation ~guard "R" path in
  Alcotest.(check int) "second load succeeds" 1 (Core.Relation.cardinal rel)

let test_csv_comments_and_blanks () =
  let path = tmp "comments.csv" in
  write_file path "# header comment\n\n1,0.5\n  \n2,0.25\n";
  let rel = Core.Csv_io.load_relation "R" path in
  Alcotest.(check int) "two rows" 2 (Core.Relation.cardinal rel)

(* ---------- missing relations: probability-0 semantics everywhere ---------- *)

let test_missing_relation_consistency () =
  (* the query mentions T, the database has no T at all: every method must
     treat T as empty *)
  let db = Core.Tid.make ~domain:(List.map Core.Value.int [ 0; 1 ])
      [ Core.Relation.of_list "R" [ (t [ 0 ], 0.5) ];
        Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.5) ] ] in
  let q = parse_s "exists x y. R(x) && S(x,y) && T(y)" in
  let truth = L.Brute_force.probability db q in
  Test_util.check_float "brute = 0" 0.0 truth;
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      match E.evaluate ~config db q with
      | r -> Test_util.check_float (E.strategy_name s) truth (E.value r.E.outcome)
      | exception E.No_method _ -> () (* refusing is also fine *))
    [ E.Obdd; E.Dpll; E.World_enum; E.Read_once ];
  (* a universally-quantified query over the missing relation is true *)
  let q2 = parse_s "forall x y. T(y) => R(x)" in
  Test_util.check_float "vacuous forall" 1.0 (E.probability db q2)

(* ---------- extreme probabilities ---------- *)

let test_zero_and_one_probabilities () =
  let db =
    Core.Tid.make
      [ Core.Relation.of_list "R" [ (t [ 0 ], 0.0); (t [ 1 ], 1.0) ];
        Core.Relation.of_list "S" [ (t [ 1; 1 ], 1.0); (t [ 0; 0 ], 0.0) ] ]
  in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      match E.evaluate ~config db q with
      | r -> Test_util.check_float (E.strategy_name s) 1.0 (E.value r.E.outcome)
      | exception E.No_method _ -> ())
    [ E.Lifted; E.Obdd; E.Dpll; E.World_enum ];
  (* certain complement *)
  let q2 = parse_s "exists x. R(x) && !S(x,x)" in
  Test_util.check_float "mixed negation with extremes"
    (L.Brute_force.probability db q2)
    (E.probability db q2)

(* ---------- empty databases and trivial queries ---------- *)

let test_empty_database () =
  let db = Core.Tid.make ~domain:[ Core.Value.int 0 ] [] in
  Test_util.check_float "exists over empty db" 0.0
    (E.probability db (parse_s "exists x. R(x)"));
  Test_util.check_float "forall over empty db" 1.0
    (E.probability db (parse_s "forall x. R(x) => R(x)"));
  Test_util.check_float "true" 1.0 (E.probability db L.Fo.True);
  Test_util.check_float "false" 0.0 (E.probability db L.Fo.False)

let test_trivial_queries_via_lifted () =
  let db = Core.Tid.make [ Core.Relation.of_list "R" [ (t [ 0 ], 0.4) ] ] in
  Test_util.check_float "single ground atom" 0.4 (Lift.probability db (parse_s "R(0)"));
  Test_util.check_float "negated ground atom via forall" 0.6
    (Lift.probability db (parse_s "forall x. !R(0)"));
  Test_util.check_float "tautology" 1.0
    (E.probability db (parse_s "R(0) || !R(0)"))

(* ---------- engine argument validation ---------- *)

let test_engine_validation () =
  let db = Core.Tid.make [ Core.Relation.of_list "R" [ (t [ 0 ], 0.4) ] ] in
  (match E.evaluate db (L.Parser.parse ~free:[ "x" ] "R(x)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "open formula must be rejected by evaluate");
  match E.answers ~free:[] db (L.Parser.parse ~free:[ "x" ] "R(x)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared free variables must be rejected"

(* ---------- duplicate variables & constants through every layer ---------- *)

let test_repeated_vars_and_constants () =
  let db =
    Core.Tid.make
      [ Core.Relation.of_list "S"
          [ (t [ 0; 0 ], 0.5); (t [ 0; 1 ], 0.5); (t [ 1; 1 ], 0.25) ] ]
  in
  List.iter
    (fun text ->
      let q = parse_s text in
      Test_util.check_float text
        (L.Brute_force.probability db q)
        (E.probability ~config:E.exact_only db q))
    [
      "exists x. S(x,x)";
      "exists x. S(0,x) && S(x,1)";
      "forall x. S(x,x) => S(0,x)";
      "exists x y. S(x,y) && S(y,x)";
    ]

(* ---------- non-standard probabilities flow through exact methods ---------- *)

let test_nonstandard_probabilities () =
  (* weights outside [0,1] (MLN Or-encoding) must work through lineage-based
     exact inference, and Karp-Luby must refuse them *)
  let db =
    Core.Tid.make
      [ Core.Relation.of_list "R" [ (t [ 0 ], 1.25); (t [ 1 ], -0.25) ];
        Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.5) ] ]
  in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  let truth = L.Brute_force.probability db q in
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      let r = E.evaluate ~config db q in
      Test_util.check_float (E.strategy_name s) truth (E.value r.E.outcome))
    [ E.Lifted; E.Obdd; E.Dpll ];
  let config = { E.default_config with E.strategies = [ E.Karp_luby ] } in
  match E.evaluate ~config db q with
  | exception E.No_method [ (E.Karp_luby, _) ] -> ()
  | _ -> Alcotest.fail "Karp-Luby must refuse non-standard probabilities"

(* ---------- resource guards and graceful degradation ---------- *)

(* A small non-hierarchical instance: every exact grounded method can do it,
   so trips must come from guards/budgets, not from genuine hardness. *)
let unsafe_db () =
  Core.Tid.make
    [ Core.Relation.of_list "R" [ (t [ 0 ], 0.5); (t [ 1 ], 0.6) ];
      Core.Relation.of_list "S"
        [ (t [ 0; 0 ], 0.5); (t [ 0; 1 ], 0.7); (t [ 1; 0 ], 0.4); (t [ 1; 1 ], 0.5) ];
      Core.Relation.of_list "T" [ (t [ 0 ], 0.8); (t [ 1 ], 0.3) ] ]

let unsafe_q () = parse_s "exists x y. R(x) && S(x,y) && T(y)"

let test_guard_primitives () =
  (* unlimited never trips *)
  Guard.poll Guard.unlimited ~site:"test";
  Guard.charge Guard.unlimited ~site:"test" "work" 1_000_000;
  (* budgets trip with the right payload *)
  let g = Guard.create () in
  Guard.set_budget g "work" 10;
  Guard.charge g ~site:"a" "work" 10;
  (match Guard.charge g ~site:"b" "work" 1 with
  | exception Guard.Exhausted { resource = Guard.Work "work"; site = "b"; _ } -> ()
  | _ -> Alcotest.fail "expected the work budget to trip at site b");
  Alcotest.(check int) "spent recorded" 11 (Guard.budget_spent g "work");
  (* cancellation *)
  let g = Guard.create () in
  Guard.cancel g;
  (match Guard.poll g ~site:"c" with
  | exception Guard.Exhausted { resource = Guard.Cancelled; _ } -> ()
  | _ -> Alcotest.fail "expected cancellation to trip");
  (* deterministic fault injection *)
  let g = Guard.create ~fault:(Guard.Trip_at_poll { poll = 3; resource = Guard.Deadline }) () in
  Guard.poll g ~site:"p";
  Guard.poll g ~site:"p";
  match Guard.poll g ~site:"p" with
  | exception Guard.Exhausted { resource = Guard.Deadline; _ } ->
      Alcotest.(check int) "three polls" 3 (Guard.polls g)
  | _ -> Alcotest.fail "expected the injected deadline trip at poll 3"

let test_deadline_trip_degrades () =
  (* inject a deadline trip at the very first poll: every guarded exact
     strategy trips immediately and eval must degrade to Karp-Luby *)
  let db = unsafe_db () and q = unsafe_q () in
  let config =
    { E.default_config with
      E.strategies = [ E.Obdd; E.Dpll ];
      fault = Some (Guard.Trip_at_poll { poll = 1; resource = Guard.Deadline });
      degrade = Some { E.eps = 0.05; delta = 0.05; max_samples = 30_000 } }
  in
  match E.eval ~config db q with
  | Error e -> Alcotest.fail ("expected a degraded answer, got error: " ^ Err.render e)
  | Ok a ->
      Alcotest.(check bool) "degraded" true a.Answer.degraded;
      Alcotest.(check bool) "not exact" false a.Answer.exact;
      Alcotest.(check string) "strategy" "karp-luby" a.Answer.strategy;
      let tripped =
        List.filter (function Answer.Tripped _ -> true | _ -> false) a.Answer.chain
      in
      Alcotest.(check int) "both strategies tripped" 2 (List.length tripped);
      (* the (eps,delta) interval must bracket the exact answer *)
      let truth = L.Brute_force.probability db q in
      (match a.Answer.confidence with
      | None -> Alcotest.fail "degraded answer must carry a confidence interval"
      | Some c ->
          Alcotest.(check bool)
            (Printf.sprintf "ci [%g, %g] brackets %g" c.Answer.ci_low c.Answer.ci_high
               truth)
            true
            (c.Answer.ci_low <= truth && truth <= c.Answer.ci_high));
      (* stats mirror the degradation *)
      Alcotest.(check bool) "stats.degraded" true a.Answer.stats.Probdb_obs.Stats.degraded

let test_decision_budget_trip () =
  (* a tiny DPLL decision budget must surface as a typed Tripped step, and
     with degradation off the failure is a typed Exhausted error *)
  let db = unsafe_db () and q = unsafe_q () in
  let config =
    { E.default_config with
      E.strategies = [ E.Dpll ];
      dpll_max_decisions = 1;
      degrade = None }
  in
  match E.eval ~config db q with
  | Ok _ -> Alcotest.fail "expected failure with a 1-decision budget and no fallback"
  | Error (Err.Exhausted { resource; site; _ }) ->
      Alcotest.(check string) "resource" "dpll.decisions" resource;
      Alcotest.(check string) "site" "dpll.shannon" site
  | Error e -> Alcotest.fail ("expected Exhausted, got: " ^ Err.render e)

let test_degraded_answer_close_to_exact () =
  (* degradation with generous samples lands near the truth (seeded rng) *)
  let db = unsafe_db () and q = unsafe_q () in
  let truth = L.Brute_force.probability db q in
  let config =
    { E.default_config with
      E.strategies = [ E.Dpll ];
      dpll_max_decisions = 1;
      degrade = Some { E.eps = 0.02; delta = 0.01; max_samples = 60_000 } }
  in
  match E.eval ~config db q with
  | Error e -> Alcotest.fail ("expected a degraded answer, got: " ^ Err.render e)
  | Ok a ->
      Alcotest.(check bool) "degraded" true a.Answer.degraded;
      Alcotest.(check bool)
        (Printf.sprintf "value %g within 2%% of %g" a.Answer.value truth)
        true
        (Float.abs (a.Answer.value -. truth) <= 0.02 *. truth)

let test_exact_answer_not_degraded () =
  (* a safe query under the same config must stay exact: degradation only
     kicks in when exact inference is exhausted *)
  let db = unsafe_db () in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  let config =
    { E.default_config with
      E.deadline_s = Some 30.0 (* a live guard, but roomy *) }
  in
  match E.eval ~config db q with
  | Error e -> Alcotest.fail ("expected an exact answer, got: " ^ Err.render e)
  | Ok a ->
      Alcotest.(check bool) "not degraded" false a.Answer.degraded;
      Alcotest.(check bool) "exact" true a.Answer.exact;
      Test_util.check_float "value" (L.Brute_force.probability db q) a.Answer.value

let test_degradation_bookkeeping_complete () =
  (* Property: {e every} degraded answer — whatever drove the degradation
     (budget trip, injected fault, or the server's force_degrade under
     load) — carries complete bookkeeping: a non-empty degradation chain
     whose steps all name a strategy and a kind, a confidence interval
     bracketing the value, a positive sample count, and the same facts
     mirrored in [Stats.t]. *)
  let db = unsafe_db () and q = unsafe_q () in
  let d = { E.eps = 0.05; delta = 0.05; max_samples = 20_000 } in
  let configs seed =
    [ ( "trip-at-poll",
        { E.default_config with
          E.seed;
          strategies = [ E.Obdd; E.Dpll ];
          fault = Some (Guard.Trip_at_poll { poll = 1; resource = Guard.Deadline });
          degrade = Some d } );
      ( "tiny-decision-budget",
        { E.default_config with
          E.seed;
          strategies = [ E.Dpll ];
          dpll_max_decisions = 1;
          degrade = Some d } );
      ( "force-degrade",
        E.force_degrade { E.default_config with E.seed; degrade = Some d } );
      ( "force-degrade-no-targets",
        (* degradation was off in the base config: force_degrade installs
           the defaults, and the bookkeeping contract still holds *)
        E.force_degrade { E.default_config with E.seed; degrade = None } )
    ]
  in
  List.iter
    (fun seed ->
      List.iter
        (fun (name, config) ->
          let ctx fmt = Printf.ksprintf (fun s -> Printf.sprintf "%s/seed=%d: %s" name seed s) fmt in
          let stats = Probdb_obs.Stats.create () in
          match E.eval ~config ~stats db q with
          | Error e -> Alcotest.fail (ctx "expected a degraded answer, got: %s" (Err.render e))
          | Ok a ->
              Alcotest.(check bool) (ctx "degraded") true a.Answer.degraded;
              (* answer-side bookkeeping *)
              Alcotest.(check bool) (ctx "chain non-empty") true (a.Answer.chain <> []);
              List.iter
                (fun step ->
                  Alcotest.(check bool)
                    (ctx "chain step names a strategy")
                    true
                    (Answer.step_strategy step <> "");
                  Alcotest.(check bool)
                    (ctx "chain step kind")
                    true
                    (List.mem (Answer.step_kind step) [ "skipped"; "tripped" ]))
                a.Answer.chain;
              let c =
                match a.Answer.confidence with
                | Some c -> c
                | None -> Alcotest.fail (ctx "degraded answer must carry a CI")
              in
              Alcotest.(check bool)
                (ctx "ci [%g, %g] brackets value %g" c.Answer.ci_low c.Answer.ci_high
                   a.Answer.value)
                true
                (c.Answer.ci_low <= a.Answer.value && a.Answer.value <= c.Answer.ci_high);
              Alcotest.(check bool) (ctx "samples > 0") true (c.Answer.samples > 0);
              (* the same facts must land in Stats.t: the serving path
                 (stats-json, BENCH joins) reads them from there *)
              Alcotest.(check bool) (ctx "stats.degraded") true stats.Probdb_obs.Stats.degraded;
              Alcotest.(check (option (float 1e-12))) (ctx "stats.ci_low")
                (Some c.Answer.ci_low) stats.Probdb_obs.Stats.ci_low;
              Alcotest.(check (option (float 1e-12))) (ctx "stats.ci_high")
                (Some c.Answer.ci_high) stats.Probdb_obs.Stats.ci_high;
              Alcotest.(check (option int)) (ctx "stats.samples")
                (Some c.Answer.samples) stats.Probdb_obs.Stats.samples;
              Alcotest.(check int) (ctx "stats.chain mirrors answer chain")
                (List.length a.Answer.chain)
                (List.length stats.Probdb_obs.Stats.chain))
        (configs seed))
    [ 1; 7; 42; 1234 ]

let test_no_method_stays_typed () =
  (* nothing applicable and no trip: the error class is No_method, not
     Exhausted *)
  let db = unsafe_db () and q = unsafe_q () in
  let config =
    { E.default_config with E.strategies = [ E.Safe_plan ]; degrade = None }
  in
  match E.eval ~config db q with
  | Error (Err.No_method [ ("safe-plan", _) ]) -> ()
  | Error e -> Alcotest.fail ("expected No_method, got: " ^ Err.render e)
  | Ok _ -> Alcotest.fail "safe-plan cannot answer a non-hierarchical query"

let suites =
  [
    ( "robustness",
      [
        Alcotest.test_case "csv malformed probability" `Quick test_csv_malformed_probability;
        Alcotest.test_case "csv missing columns" `Quick test_csv_missing_columns;
        Alcotest.test_case "csv probability validation" `Quick test_csv_probability_validation;
        Alcotest.test_case "csv io fault injection" `Quick test_csv_io_fault_injection;
        Alcotest.test_case "csv comments and blanks" `Quick test_csv_comments_and_blanks;
        Alcotest.test_case "missing relation = empty" `Quick test_missing_relation_consistency;
        Alcotest.test_case "zero/one probabilities" `Quick test_zero_and_one_probabilities;
        Alcotest.test_case "empty database" `Quick test_empty_database;
        Alcotest.test_case "trivial queries" `Quick test_trivial_queries_via_lifted;
        Alcotest.test_case "engine validation" `Quick test_engine_validation;
        Alcotest.test_case "repeated vars and constants" `Quick test_repeated_vars_and_constants;
        Alcotest.test_case "non-standard probabilities" `Quick test_nonstandard_probabilities;
        Alcotest.test_case "guard primitives" `Quick test_guard_primitives;
        Alcotest.test_case "deadline trip degrades to (eps,delta)" `Quick
          test_deadline_trip_degrades;
        Alcotest.test_case "decision budget trip is typed" `Quick test_decision_budget_trip;
        Alcotest.test_case "degraded answer close to exact" `Quick
          test_degraded_answer_close_to_exact;
        Alcotest.test_case "exact answer not degraded" `Quick test_exact_answer_not_degraded;
        Alcotest.test_case "no-method stays typed" `Quick test_no_method_stays_typed;
        Alcotest.test_case "degradation bookkeeping complete" `Quick
          test_degradation_bookkeeping_complete;
      ] );
  ]
