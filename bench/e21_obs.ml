(* E21 — the price of observability: closed-loop load at saturation
   against two otherwise-identical servers, telemetry fully on
   (request-id minting, rolling windows, SLO gauges, slow-query
   evaluation with a never-firing threshold, and a live OpenMetrics
   scraper hitting the HTTP exposition twice a second) versus
   `--no-telemetry`. The headline is the relative qps cost, which the
   issue budget caps at 2% (`compare --validate-obs`).

   The run also asserts the correctness side of the telemetry story:
   every reply from the instrumented server carries a request_id
   (coverage 1.0), the cumulative counters match the client-side tally
   exactly, and the rolling windows actually moved under load.

   PROBDB_BENCH_SMOKE=1 shrinks the database, the measurement windows
   and the repetition count so the experiment doubles as a schema check
   for BENCH_obs.json. *)

module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Json = Probdb_obs.Json
module Gen = Probdb_workload.Gen

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None

let queries =
  [ "exists x y. R(x) && S(x,y)";
    "forall x y. R(x) || S(x,y)";
    "exists x y. R(x) && S(x,y) && T(y)" ]

let make_db () =
  let domain_size = if smoke then 7 else 12 in
  Gen.random_tid ~seed:21 ~domain_size
    [ Gen.spec ~density:0.6 "R" 1; Gen.spec ~density:0.4 "S" 2;
      Gen.spec ~density:0.6 "T" 1 ]

type tally = {
  mutable answered : int;
  mutable ok : int;
  mutable shed : int;
  mutable errors : int;
  mutable with_rid : int;
}

let run_client ~port ~until tally =
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let qs = Array.of_list queries in
  let i = ref 0 in
  while Unix.gettimeofday () < until do
    let q = qs.(!i mod Array.length qs) in
    incr i;
    match Client.eval c q with
    | resp ->
        tally.answered <- tally.answered + 1;
        if Client.request_id resp <> None then
          tally.with_rid <- tally.with_rid + 1;
        if Client.ok resp then tally.ok <- tally.ok + 1
        else (
          match Client.error_class resp with
          | Some "overloaded" -> tally.shed <- tally.shed + 1
          | _ -> tally.errors <- tally.errors + 1)
    | exception
        (End_of_file | Sys_error _ | Failure _ | Client.Connection_closed) ->
        tally.errors <- tally.errors + 1
  done

(* Scrape the HTTP exposition endpoint like a metrics collector would,
   so the telemetry-on measurement includes the cost of being watched. *)
let scraper ~om_port ~until scrapes =
  while Unix.gettimeofday () < until do
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, om_port));
           let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
           ignore (Unix.write fd req 0 (Bytes.length req));
           let chunk = Bytes.create 8192 in
           let rec drain () =
             if Unix.read fd chunk 0 (Bytes.length chunk) > 0 then drain ()
           in
           drain ();
           incr scrapes)
     with Unix.Unix_error _ -> ());
    Unix.sleepf 0.5
  done

type measurement = { qps : float; tallies : tally array; scrapes : int }

let measure ~telemetry ~clients ~window_s db =
  let config =
    if telemetry then
      { Serve.default_config with
        Serve.port = 0;
        workers = (if smoke then 2 else 4);
        queue_capacity = 32;
        degrade_above = (if smoke then 3 else 8);
        default_deadline_ms = Some 2_000;
        (* the full pipeline armed: a slow-query threshold that never
           fires still pays the per-request evaluation, as production
           would *)
        slow_query_ms = Some 1e9;
        slo_p99_ms = Some 250.0;
        slo_availability = Some 0.999;
        openmetrics_port = Some 0 }
    else
      { Serve.default_config with
        Serve.port = 0;
        workers = (if smoke then 2 else 4);
        queue_capacity = 32;
        degrade_above = (if smoke then 3 else 8);
        default_deadline_ms = Some 2_000;
        telemetry = false }
  in
  let server = Serve.start ~config db in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let port = Serve.port server in
  let until = Unix.gettimeofday () +. window_s in
  let t0 = Unix.gettimeofday () in
  let tallies =
    Array.init clients (fun _ ->
        { answered = 0; ok = 0; shed = 0; errors = 0; with_rid = 0 })
  in
  let scrapes = ref 0 in
  let scrape_thread =
    match (telemetry, Serve.openmetrics_port server) with
    | true, Some om_port ->
        Some (Thread.create (fun () -> scraper ~om_port ~until scrapes) ())
    | _ -> None
  in
  let threads =
    Array.map
      (fun tally -> Thread.create (fun () -> run_client ~port ~until tally) ())
      tallies
  in
  Array.iter Thread.join threads;
  Option.iter Thread.join scrape_thread;
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Serve.stats_json server in
  let window_moves =
    match
      Option.bind (Json.member "window" stats) (fun w ->
          Option.bind (Json.member "10s" w) (Json.member "answered"))
    with
    | Some (Json.Int n) -> n > 0
    | _ -> false
  in
  let server_count name =
    match Json.member name stats with Some (Json.Int n) -> n | _ -> -1
  in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let cumulative_exact =
    (* the clients are the server's only eval traffic, so the typed
       outcome partition must reconcile exactly with the client tally *)
    server_count "eval_ok" = sum (fun t -> t.ok)
    && server_count "shed" = sum (fun t -> t.shed)
    && server_count "eval_error" = sum (fun t -> t.errors)
  in
  ( { qps = float_of_int (sum (fun t -> t.answered)) /. wall;
      tallies;
      scrapes = !scrapes },
    window_moves,
    cumulative_exact )

let run () =
  Common.header "E21: operational telemetry overhead at saturation";
  let db = make_db () in
  let clients = if smoke then 4 else 8 in
  let window_s = if smoke then 1.5 else 4.0 in
  let reps = if smoke then 1 else 3 in
  Printf.printf "%d closed-loop clients, %.1fs windows, %d rep(s) per arm\n"
    clients window_s reps;
  (* alternate the arms and keep the best window of each: the maximum is
     robust against one window eating a background hiccup, which a 2%%
     gate cannot absorb *)
  let best = ref 0.0 and best_on = ref 0.0 in
  let on_meta = ref None in
  for _ = 1 to reps do
    let off, _, _ = measure ~telemetry:false ~clients ~window_s db in
    let on, window_moves, cumulative_exact =
      measure ~telemetry:true ~clients ~window_s db
    in
    best := Float.max !best off.qps;
    if on.qps > !best_on then begin
      best_on := on.qps;
      on_meta := Some (on, window_moves, cumulative_exact)
    end
  done;
  let on, window_moves, cumulative_exact = Option.get !on_meta in
  let overhead_pct =
    if !best <= 0.0 then 0.0
    else Float.max 0.0 ((!best -. !best_on) /. !best *. 100.0)
  in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 on.tallies in
  let answered = sum (fun t -> t.answered) in
  let rid_coverage =
    if answered = 0 then 0.0
    else float_of_int (sum (fun t -> t.with_rid)) /. float_of_int answered
  in
  Common.section "results";
  Common.table
    [ [ "arm"; "qps" ];
      [ "telemetry off"; Printf.sprintf "%.0f" !best ];
      [ "telemetry on"; Printf.sprintf "%.0f" !best_on ] ];
  Printf.printf
    "\noverhead %.2f%%; request-id coverage %.3f over %d replies; %d \
     openmetrics scrape(s)\nwindow moves: %b; cumulative counters exact: %b\n"
    overhead_pct rid_coverage answered on.scrapes window_moves cumulative_exact;
  Common.bench_json "obs"
    [ ("smoke", Json.Bool smoke);
      ("clients", Json.Int clients);
      ("window_s", Json.Float window_s);
      ("reps", Json.Int reps);
      ("qps_off", Json.Float !best);
      ("qps_on", Json.Float !best_on);
      ("overhead_pct", Json.Float overhead_pct);
      ("request_id_coverage", Json.Float rid_coverage);
      ("answered", Json.Int answered);
      ("openmetrics_scrapes", Json.Int on.scrapes);
      ("window_moves", Json.Bool window_moves);
      ("cumulative_exact", Json.Bool cumulative_exact) ]

let bechamel_tests =
  let w = Probdb_obs.Window.counter () in
  let h = Probdb_obs.Window.histogram () in
  [ Bechamel.Test.make ~name:"obs/window-incr"
      (Bechamel.Staged.stage (fun () -> Probdb_obs.Window.incr w));
    Bechamel.Test.make ~name:"obs/window-observe"
      (Bechamel.Staged.stage (fun () -> Probdb_obs.Window.observe h 0.001));
    Bechamel.Test.make ~name:"obs/request-id-mint"
      (Bechamel.Staged.stage (fun () ->
           ignore (Probdb_obs.Request_id.mint ()))) ]
