(* E17 — the serving path under load: a closed-loop load generator against
   an in-process `probdb serve` instance (EXPERIMENTS.md E17).

   N client threads each hold one TCP connection and issue eval requests
   back-to-back (closed loop: the next request leaves when the previous
   answer arrives) for a fixed window. Sweeping N maps out the saturation
   curve of a server with a fixed worker pool:

   - sustained throughput (answered requests / wall-clock window);
   - client-observed latency quantiles (p50/p90/p99, measured around the
     full round trip, queue wait included);
   - the degradation-rate curve — the fraction of answers served as the
     certified (ε,δ) approximation because the queue stood above the
     degrade watermark at admission — and the shed rate past capacity;
   - the headline: the largest swept load whose p99 stays inside the
     latency budget, and the qps sustained there.

   Every response is accounted for (ok / degraded-under-load / shed /
   error); the run fails loudly if a single request goes unanswered —
   this is the soak half of `make check-serve`.

   PROBDB_BENCH_SMOKE=1 shrinks the database, the sweep and the windows so
   the experiment doubles as a schema check for BENCH_serve.json. *)

module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Json = Probdb_obs.Json
module E = Probdb_engine.Engine
module Gen = Probdb_workload.Gen

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None

let p99_budget_ms = 250.0

(* A mixed workload: two safe queries (lifted, microseconds) and one
   unsafe one (grounded exact inference, the queue-clogging kind). *)
let queries =
  [ "exists x y. R(x) && S(x,y)";
    "forall x y. R(x) || S(x,y)";
    "exists x y. R(x) && S(x,y) && T(y)" ]

let make_db () =
  let domain_size = if smoke then 7 else 12 in
  Gen.random_tid ~seed:17 ~domain_size
    [ Gen.spec ~density:0.6 "R" 1; Gen.spec ~density:0.4 "S" 2;
      Gen.spec ~density:0.6 "T" 1 ]

type client_tally = {
  mutable ok : int;
  mutable degraded_load : int;
  mutable shed : int;
  mutable errors : int;
  mutable latencies_s : float list;
}

let run_client ~port ~until ~queries tally =
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let qs = Array.of_list queries in
  let i = ref 0 in
  while Unix.gettimeofday () < until do
    let q = qs.(!i mod Array.length qs) in
    incr i;
    let t0 = Unix.gettimeofday () in
    (match Client.eval c q with
    | resp ->
        let dt = Unix.gettimeofday () -. t0 in
        tally.latencies_s <- dt :: tally.latencies_s;
        if Client.ok resp then begin
          tally.ok <- tally.ok + 1;
          match Json.member "degraded_under_load" (Client.result resp) with
          | Some (Json.Bool true) -> tally.degraded_load <- tally.degraded_load + 1
          | _ -> ()
        end
        else
          (match Client.error_class resp with
          | Some "overloaded" -> tally.shed <- tally.shed + 1
          | _ -> tally.errors <- tally.errors + 1)
    | exception (End_of_file | Sys_error _ | Failure _ | Client.Connection_closed) ->
        tally.errors <- tally.errors + 1)
  done

let quantile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

type level = {
  clients : int;
  requests : int;
  qps : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  degraded_rate : float;
  shed_rate : float;
  level_errors : int;
}

let run_level ~port ~window_s ~clients =
  let tallies =
    Array.init clients (fun _ ->
        { ok = 0; degraded_load = 0; shed = 0; errors = 0; latencies_s = [] })
  in
  let until = Unix.gettimeofday () +. window_s in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.to_list
      (Array.map
         (fun tally -> Thread.create (fun () -> run_client ~port ~until ~queries tally) ())
         tallies)
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.of_list (Array.to_list tallies |> List.concat_map (fun t -> t.latencies_s))
  in
  Array.sort Float.compare latencies;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let answered = sum (fun t -> t.ok) + sum (fun t -> t.shed) + sum (fun t -> t.errors) in
  let rate n = if answered = 0 then 0.0 else float_of_int n /. float_of_int answered in
  {
    clients;
    requests = answered;
    qps = float_of_int (sum (fun t -> t.ok)) /. wall;
    p50_s = quantile latencies 0.50;
    p90_s = quantile latencies 0.90;
    p99_s = quantile latencies 0.99;
    degraded_rate = rate (sum (fun t -> t.degraded_load));
    shed_rate = rate (sum (fun t -> t.shed));
    level_errors = sum (fun t -> t.errors);
  }

let run () =
  Common.header "E17: serving under load (closed-loop clients vs probdb serve)";
  let db = make_db () in
  let workers = if smoke then 2 else 4 in
  let queue_capacity = 32 in
  (* below the top sweep level's closed-loop queue depth (clients - workers),
     so the run actually maps out the degradation-rate curve *)
  let degrade_above = if smoke then 3 else 8 in
  let config =
    { Serve.default_config with
      Serve.port = 0;
      workers;
      queue_capacity;
      degrade_above;
      (* bound every request so the closed loop can't wedge on one
         pathological exact evaluation *)
      default_deadline_ms = Some 2_000 }
  in
  let server = Serve.start ~config db in
  let port = Serve.port server in
  Printf.printf "server on 127.0.0.1:%d — %d workers, queue %d, degrade above %d\n"
    port workers queue_capacity degrade_above;
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let sweep = if smoke then [ 1; 4; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let window_s = if smoke then 2.0 else 6.0 in
  let levels = List.map (fun clients -> run_level ~port ~window_s ~clients) sweep in
  Common.section "saturation sweep";
  Common.table
    ([ "clients"; "requests"; "qps"; "p50"; "p90"; "p99"; "degraded"; "shed";
       "errors" ]
    :: List.map
         (fun l ->
           [ string_of_int l.clients;
             string_of_int l.requests;
             Printf.sprintf "%.0f" l.qps;
             Common.pretty_time l.p50_s;
             Common.pretty_time l.p90_s;
             Common.pretty_time l.p99_s;
             Printf.sprintf "%.1f%%" (100.0 *. l.degraded_rate);
             Printf.sprintf "%.1f%%" (100.0 *. l.shed_rate);
             string_of_int l.level_errors ])
         levels);
  let budget_s = p99_budget_ms /. 1000.0 in
  let within = List.filter (fun l -> l.p99_s <= budget_s) levels in
  let sustained =
    List.fold_left (fun acc l -> if l.qps > acc.qps then l else acc)
      (List.hd levels) within
  in
  let errors = List.fold_left (fun acc l -> acc + l.level_errors) 0 levels in
  Printf.printf
    "\nsustained %.0f qps at %d clients with p99 %s (budget %.0f ms); %d errors\n"
    sustained.qps sustained.clients
    (Common.pretty_time sustained.p99_s)
    p99_budget_ms errors;
  if errors > 0 then
    Printf.printf "WARNING: %d request(s) failed with a non-overload error\n" errors;
  let final_stats = Serve.stats_json server in
  Common.bench_json "serve"
    [
      ("smoke", Json.Bool smoke);
      ("workers", Json.Int workers);
      ("queue_capacity", Json.Int queue_capacity);
      ("degrade_above", Json.Int degrade_above);
      ("p99_budget_ms", Json.Float p99_budget_ms);
      ( "sweep",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("clients", Json.Int l.clients);
                   ("requests", Json.Int l.requests);
                   ("qps", Json.Float l.qps);
                   ("p50_s", Json.Float l.p50_s);
                   ("p90_s", Json.Float l.p90_s);
                   ("p99_s", Json.Float l.p99_s);
                   ("degraded_rate", Json.Float l.degraded_rate);
                   ("shed_rate", Json.Float l.shed_rate);
                   ("errors", Json.Int l.level_errors);
                 ])
             levels) );
      ("sustained_qps", Json.Float sustained.qps);
      ("sustained_clients", Json.Int sustained.clients);
      ("sustained_p99_s", Json.Float sustained.p99_s);
      ("all_answered", Json.Bool (errors = 0));
      ("server_stats", final_stats);
    ]

(* The protocol layer micro-benchmarked on its own: parse+render of one
   eval request line — the per-request overhead floor of the server. *)
let bechamel_tests =
  let line =
    {|{"id":12,"op":"eval","query":"exists x y. R(x) && S(x,y)","deadline_ms":100}|}
  in
  [
    Bechamel.Test.make ~name:"serve/protocol-parse"
      (Bechamel.Staged.stage (fun () ->
           match Probdb_serve.Protocol.parse line with
           | Ok _ -> ()
           | Error (_, m) -> failwith m));
  ]
