(* The experiment harness: one section per experiment of EXPERIMENTS.md
   (E1-E12), plus a Bechamel micro-benchmark suite (one Test.make per
   experiment family).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- e4 e7   # selected experiments
     dune exec bench/main.exe -- micro   # only the Bechamel suite *)

let experiments =
  [
    ("e1", "Example 2.1 / Fig. 1", E01_fig1.run);
    ("e2", "dichotomy runtimes", E02_dichotomy.run);
    ("e3", "safety classifier", E03_classifier.run);
    ("e4", "inclusion-exclusion", E04_inclusion_exclusion.run);
    ("e5", "plan bounds", E05_plan_bounds.run);
    ("e6", "OBDD sizes", E06_obdd_size.run);
    ("e7", "lifted vs grounded", E07_lifted_vs_grounded.run);
    ("e8", "symmetric / FO2", E08_symmetric.run);
    ("e9", "MLN translation", E09_mln.run);
    ("e10", "approximation", E10_approximation.run);
    ("e11", "dual queries", E11_duality.run);
    ("e12", "engine ablation", E12_engine_ablation.run);
    ("e13", "extensions", E13_extensions.run);
    ("e14", "resource guards / degradation", E14_guard.run);
    ("e15", "columnar execution / parallel runtime", E15_parallel.run);
    ("e16", "grounded WMC vs tree DPLL", E16_wmc.run);
    ("e17", "serving under load", E17_serve.run);
    ("e18", "chaos soak", E18_chaos.run);
    ("e19", "prepared queries / plan cache", E19_prepare.run);
    ("e20", "out-of-core packed storage", E20_storage.run);
    ("e21", "operational telemetry overhead", E21_obs.run);
  ]

let micro () =
  Common.header "Bechamel micro-benchmarks";
  Common.run_bechamel
    (E01_fig1.bechamel_tests @ E02_dichotomy.bechamel_tests
   @ E03_classifier.bechamel_tests @ E04_inclusion_exclusion.bechamel_tests
   @ E05_plan_bounds.bechamel_tests @ E06_obdd_size.bechamel_tests
   @ E07_lifted_vs_grounded.bechamel_tests @ E08_symmetric.bechamel_tests
   @ E09_mln.bechamel_tests @ E10_approximation.bechamel_tests
   @ E11_duality.bechamel_tests @ E12_engine_ablation.bechamel_tests
   @ E13_extensions.bechamel_tests @ E14_guard.bechamel_tests
   @ E15_parallel.bechamel_tests @ E16_wmc.bechamel_tests
   @ E17_serve.bechamel_tests @ E18_chaos.bechamel_tests
   @ E19_prepare.bechamel_tests @ E20_storage.bechamel_tests
   @ E21_obs.bechamel_tests)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter (fun (id, _, run) -> Common.with_trace id run) experiments;
      micro ()
  | names ->
      List.iter
        (fun name ->
          if name = "micro" then micro ()
          else
            match List.find_opt (fun (id, _, _) -> String.equal id name) experiments with
            | Some (id, _, run) -> Common.with_trace id run
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s micro\n" name
                  (String.concat " " (List.map (fun (id, _, _) -> id) experiments));
                exit 1)
        names
