(* E19 — the prepare/execute split (EXPERIMENTS.md E19).

   Two measurements:

   1. Cold vs warm evaluation latency on repeated query templates. Cold
      runs the full prepared pipeline every time (a capacity-0 cache:
      identical code path, nothing retained); warm hits the shared
      compiled-plan cache and goes straight to execution. The headline is
      the median speedup across the safe templates — the queries whose
      per-eval cost is dominated by classification and plan construction,
      exactly what the cache amortises.

   2. Served throughput with the cache on vs off, swept over client
      counts, on a repeated-template workload — plus the cache hit rate
      the cached server reports and a zero-drift check of every served
      answer against the uncached engine.

   Both caches are created explicitly, so the experiment measures what it
   says even under PROBDB_NO_PLAN_CACHE=1. PROBDB_BENCH_SMOKE=1 shrinks
   the batches, the sweep and the windows so the run doubles as a schema
   check for BENCH_prepare.json (`make check-prepare`). *)

module Json = Probdb_obs.Json
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module Prepare = Probdb_prepare.Prepare
module L = Probdb_logic
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen
module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None

let db_for q ~seed ~domain_size =
  let specs =
    List.map
      (fun (name, arity) -> Gen.spec ~density:0.6 name arity)
      (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size specs

(* Safe templates of growing width: classification and plan construction
   grow with the query, execution stays cheap on a small database. *)
let templates =
  [ ("q_hier", Q.q_hier.Q.query);
    ("q_hier+const", L.Parser.parse_sentence "exists x y. R(x) && S(x,y) && T('c3')");
    ("chain4", Q.hierarchical_chain 4);
    ("chain8", Q.hierarchical_chain 8) ]

let uncached_config () =
  { E.default_config with
    E.plan_cache = Some (Prepare.Cache.create ~capacity:0 ()) }

let cold_warm_row (name, q) =
  let db = db_for q ~seed:17 ~domain_size:(if smoke then 4 else 6) in
  let batch = if smoke then 20 else 200 in
  let run config () =
    for _ = 1 to batch do
      match E.eval ~config db q with
      | Ok _ -> ()
      | Error e -> failwith (Probdb_core.Probdb_error.render e)
    done
  in
  let cold_cfg = uncached_config () in
  let warm_cfg =
    { E.default_config with E.plan_cache = Some (Prepare.Cache.create ()) }
  in
  (* prime the cache, then measure only warm hits *)
  (match E.eval ~config:warm_cfg db q with Ok _ -> () | Error _ -> ());
  let per_eval total = total /. float_of_int batch in
  let cold_s = per_eval (Common.timed ~repeat:5 (run cold_cfg)) in
  let warm_s = per_eval (Common.timed ~repeat:5 (run warm_cfg)) in
  (name, cold_s, warm_s, cold_s /. warm_s)

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a.(Array.length a / 2)

(* ---------- the served sweep ---------- *)

let served_queries =
  [ "exists x y. R(x) && S(x,y)";
    "exists x. R(x) && T(x)";
    "exists x y. R(x) && S(x,y) && T(y)" ]

let serve_db () =
  Gen.random_tid ~seed:11 ~domain_size:(if smoke then 5 else 8)
    [ Gen.spec ~density:0.6 "R" 1; Gen.spec ~density:0.4 "S" 2;
      Gen.spec ~density:0.6 "T" 1 ]

let bits = Int64.bits_of_float

(* closed-loop client: back-to-back requests until the window closes,
   every answer compared bit-for-bit against the uncached engine *)
let run_client ~port ~until ~expected ok drift errors =
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let qs = Array.of_list expected in
  let i = ref 0 in
  while Unix.gettimeofday () < until do
    let q, want = qs.(!i mod Array.length qs) in
    incr i;
    match Client.eval c q with
    | resp when Client.ok resp -> (
        Atomic.incr ok;
        match Json.member "value" (Client.result resp) with
        | Some (Json.Float got) when bits got = bits want -> ()
        | _ -> Atomic.incr drift)
    | _ -> Atomic.incr errors
    | exception (End_of_file | Sys_error _ | Failure _ | Client.Connection_closed)
      ->
        Atomic.incr errors
  done

let run_level ~port ~window_s ~clients ~expected =
  let ok = Atomic.make 0 and drift = Atomic.make 0 and errors = Atomic.make 0 in
  let until = Unix.gettimeofday () +. window_s in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun _ ->
        Thread.create (fun () -> run_client ~port ~until ~expected ok drift errors) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (float_of_int (Atomic.get ok) /. wall, Atomic.get drift, Atomic.get errors)

let sweep_servers db ~expected =
  let sweep = if smoke then [ 1; 4 ] else [ 1; 8; 16 ] in
  let window_s = if smoke then 0.8 else 3.0 in
  let start cache =
    Serve.start
      ~config:
        { Serve.default_config with
          Serve.port = 0;
          workers = if smoke then 2 else 4;
          default_deadline_ms = Some 2_000;
          engine = { E.default_config with E.plan_cache = Some cache } }
      db
  in
  let cache = Prepare.Cache.create () in
  let cached = start cache in
  let uncached = start (Prepare.Cache.create ~capacity:0 ()) in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop cached;
      Serve.stop uncached)
  @@ fun () ->
  let drift = ref 0 and errors = ref 0 in
  let levels =
    List.map
      (fun clients ->
        let qps_on, d1, e1 =
          run_level ~port:(Serve.port cached) ~window_s ~clients ~expected
        in
        let qps_off, d2, e2 =
          run_level ~port:(Serve.port uncached) ~window_s ~clients ~expected
        in
        drift := !drift + d1 + d2;
        errors := !errors + e1 + e2;
        (clients, qps_on, qps_off))
      sweep
  in
  let k = Prepare.Cache.counters cache in
  let hit_rate =
    let lookups = k.Prepare.Cache.hits + k.Prepare.Cache.misses in
    if lookups = 0 then 0.0
    else float_of_int k.Prepare.Cache.hits /. float_of_int lookups
  in
  (levels, hit_rate, !drift, !errors)

let run () =
  Common.header "E19: prepared queries / the compiled-plan cache";
  Common.section "cold vs warm per-eval latency (repeated templates)";
  let rows = List.map cold_warm_row templates in
  Common.table
    ([ "template"; "cold"; "warm"; "speedup" ]
    :: List.map
         (fun (name, cold_s, warm_s, speedup) ->
           [ name; Common.pretty_time cold_s; Common.pretty_time warm_s;
             Printf.sprintf "%.1fx" speedup ])
         rows);
  let median_speedup = median (List.map (fun (_, _, _, s) -> s) rows) in
  Printf.printf "\nmedian cold/warm speedup: %.2fx\n" median_speedup;

  Common.section "served qps, cache on vs off (repeated-template workload)";
  let db = serve_db () in
  let uncached = uncached_config () in
  let expected =
    List.map
      (fun q ->
        match E.eval ~config:uncached db (L.Parser.parse_sentence q) with
        | Ok a -> (q, a.Answer.value)
        | Error e -> failwith (Probdb_core.Probdb_error.render e))
      served_queries
  in
  let levels, hit_rate, drift, errors = sweep_servers db ~expected in
  Common.table
    ([ "clients"; "qps cached"; "qps uncached"; "ratio" ]
    :: List.map
         (fun (clients, qps_on, qps_off) ->
           [ string_of_int clients;
             Printf.sprintf "%.0f" qps_on;
             Printf.sprintf "%.0f" qps_off;
             Printf.sprintf "%.2fx" (qps_on /. Float.max 1e-9 qps_off) ])
         levels);
  Printf.printf "\ncache hit rate %.3f; %d drifted answer(s); %d error(s)\n"
    hit_rate drift errors;

  Common.bench_json "prepare"
    [
      ("smoke", Json.Bool smoke);
      ( "cold_warm",
        Json.List
          (List.map
             (fun (name, cold_s, warm_s, speedup) ->
               Json.Obj
                 [
                   ("template", Json.Str name);
                   ("cold_s", Json.Float cold_s);
                   ("warm_s", Json.Float warm_s);
                   ("speedup", Json.Float speedup);
                 ])
             rows) );
      ("median_speedup", Json.Float median_speedup);
      ( "sweep",
        Json.List
          (List.map
             (fun (clients, qps_on, qps_off) ->
               Json.Obj
                 [
                   ("clients", Json.Int clients);
                   ("qps_cached", Json.Float qps_on);
                   ("qps_uncached", Json.Float qps_off);
                 ])
             levels) );
      ("hit_rate", Json.Float hit_rate);
      ("drift_free", Json.Bool (drift = 0));
      ("all_answered", Json.Bool (errors = 0));
    ]

(* The cache inner loop micro-benchmarked on its own: a warm structural
   lookup (one atomic load + key canonicalisation + bind) vs a full
   uncached prepare of the same template. *)
let bechamel_tests =
  let q = Q.q_hier.Q.query in
  let cache = Prepare.Cache.create () in
  ignore (Prepare.Cache.of_query cache q);
  [
    Bechamel.Test.make ~name:"prepare/warm-lookup"
      (Bechamel.Staged.stage (fun () -> ignore (Prepare.Cache.of_query cache q)));
    Bechamel.Test.make ~name:"prepare/cold-build"
      (Bechamel.Staged.stage (fun () -> ignore (Prepare.prepare q)));
  ]
