(* E6 — query compilation sizes (Thm. 7.1(i), Fig. 2): lineages of
   hierarchical CQs compile to OBDDs of linear size; the non-hierarchical
   H0 lineage blows past the (2^n - 1)/n lower bound under any order. *)

module L = Probdb_logic
module Kc = Probdb_kc
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let lineage_of db q =
  let ctx = Lineage.create db in
  (ctx, Lineage.of_query ctx q)

let hier_db n =
  Gen.random_tid ~seed:n ~domain_size:n
    [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S1" 2 ]

let hierarchical_part () =
  Common.section "hierarchical chain query: OBDD size is linear in the database";
  let q = Q.hierarchical_chain 1 in
  let measured =
    List.map
      (fun n ->
        let db = hier_db n in
        let _, f = lineage_of db q in
        let m = Kc.Obdd.manager ~order:(Kc.Obdd.default_order f) () in
        let bdd, dt = Common.time (fun () -> Kc.Obdd.of_formula m f) in
        let vars = Probdb_boolean.Formula.var_count f in
        (n, vars, Kc.Obdd.obs_counts bdd, dt))
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Common.table
    ([ "n"; "lineage vars"; "OBDD size"; "size/vars" ]
    :: List.map
         (fun (n, vars, (c : Probdb_obs.Stats.circuit_counts), _) ->
           [ string_of_int n;
             string_of_int vars;
             string_of_int c.Probdb_obs.Stats.nodes;
             Common.f4 (float_of_int c.Probdb_obs.Stats.nodes /. float_of_int vars) ])
         measured);
  Printf.printf "(size/vars stays constant: the OBDD is linear, Thm. 7.1(i)(a))\n";
  List.map
    (fun (n, vars, (c : Probdb_obs.Stats.circuit_counts), dt) ->
      Common.Json.Obj
        [ ("n", Common.Json.Int n);
          ("lineage_vars", Common.Json.Int vars);
          ( "circuit",
            Common.Json.Obj
              [ ("class", Common.Json.Str c.Probdb_obs.Stats.circuit_class);
                ("nodes", Common.Json.Int c.Probdb_obs.Stats.nodes);
                ("edges", Common.Json.Int c.Probdb_obs.Stats.edges) ] );
          ("compile_s", Common.Json.Float dt) ])
    measured

let h0_part () =
  Common.section "H0: every OBDD is exponential (≥ (2^n - 1)/n, Thm. 7.1(i)(b))";
  let measured =
    List.map
      (fun n ->
        let db = Gen.h0_db ~seed:n ~n () in
        let ctx, f = lineage_of db Q.h0_forall.Q.query in
        ignore ctx;
        let m = Kc.Obdd.manager ~max_nodes:3_000_000 ~order:(Kc.Obdd.default_order f) () in
        let obdd_nodes =
          match Kc.Obdd.of_formula m f with
          | bdd -> Some (Kc.Obdd.size bdd)
          | exception Kc.Obdd.Node_limit _ -> None
        in
        let bound = (Float.pow 2.0 (float_of_int n) -. 1.0) /. float_of_int n in
        (* decision-DNNF trace for the same lineage *)
        let trace =
          if n <= 8 then begin
            let ctx2, f2 = lineage_of db Q.h0_forall.Q.query in
            let r = Dpll.count ~prob:(Lineage.prob ctx2) f2 in
            Some r.Dpll.trace_size
          end
          else None
        in
        (n, obdd_nodes, bound, trace))
      [ 2; 4; 6; 8; 10; 12 ]
  in
  Common.table
    ([ "n"; "OBDD size (first-appearance order)"; "(2^n-1)/n bound"; "decision-DNNF trace" ]
    :: List.map
         (fun (n, obdd_nodes, bound, trace) ->
           [ string_of_int n;
             (match obdd_nodes with Some s -> string_of_int s | None -> "> 3e6 (cap)");
             Printf.sprintf "%.0f" bound;
             (match trace with Some s -> string_of_int s | None -> "skipped") ])
         measured);
  List.map
    (fun (n, obdd_nodes, bound, trace) ->
      let opt = function Some i -> Common.Json.Int i | None -> Common.Json.Null in
      Common.Json.Obj
        [ ("n", Common.Json.Int n);
          ("obdd_nodes", opt obdd_nodes);
          ("lower_bound", Common.Json.Float bound);
          ("ddnnf_trace_nodes", opt trace) ])
    measured

let order_ablation () =
  Common.section "variable-order ablation on the hierarchical query";
  let q = Q.hierarchical_chain 1 in
  let rows =
    List.map
      (fun n ->
        let db = hier_db n in
        let _, f = lineage_of db q in
        let natural = Kc.Obdd.default_order f in
        (* adversarial order: reversed *)
        let reversed = List.rev natural in
        let size order =
          let m = Kc.Obdd.manager ~max_nodes:3_000_000 ~order () in
          match Kc.Obdd.of_formula m f with
          | bdd -> string_of_int (Kc.Obdd.size bdd)
          | exception Kc.Obdd.Node_limit _ -> "cap"
        in
        [ string_of_int n; size natural; size reversed ])
      [ 4; 8; 16; 32 ]
  in
  Common.table ([ "n"; "hierarchy order"; "reversed order" ] :: rows);
  Printf.printf
    "(for this query even the reversed order stays small; the dichotomy of\n\
    \ Thm. 7.1 is about queries, not orders: H0 blows up under *every* order)\n"

let run () =
  Common.header "E6: OBDD and decision-DNNF sizes of query lineages (Thm. 7.1(i))";
  let hier_rows = hierarchical_part () in
  let h0_rows = h0_part () in
  order_ablation ();
  Common.bench_json "e06_obdd_size"
    [ ("hierarchical_chain", Common.Json.List hier_rows);
      ("h0", Common.Json.List h0_rows) ]

let bechamel_tests =
  let q = Q.hierarchical_chain 1 in
  let db = hier_db 32 in
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx q in
  [
    Bechamel.Test.make ~name:"e6/obdd-compile-hier-n32"
      (Bechamel.Staged.stage (fun () ->
           let m = Kc.Obdd.manager ~order:(Kc.Obdd.default_order f) () in
           Kc.Obdd.of_formula m f));
  ]
