(* E7 — lifted beats grounded (Thm. 7.1(ii)): Q_W is liftable (polynomial
   time) but the traces of DPLL-style algorithms on its lineage — i.e. the
   decision-DNNFs — grow super-polynomially with the domain. *)

module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let db_for ~n ~seed =
  Gen.random_tid ~seed ~domain_size:n
    [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S1" 2;
      Gen.spec ~density:1.0 "S2" 2; Gen.spec ~density:1.0 "S3" 2;
      Gen.spec ~density:1.0 "T" 1 ]

let run () =
  Common.header "E7: lifted inference vs grounded inference on the liftable Q_W";
  Printf.printf "query: %s\nlifted verdict: %s\n" Q.q_w.Q.text
    (Format.asprintf "%a" Lift.pp_verdict (Lift.classify Q.q_w.Q.query));
  let json_rows = ref [] in
  let rows =
    List.map
      (fun n ->
        let db = db_for ~n ~seed:n in
        let p_lift = ref 0.0 in
        let rule_stats = Lift.fresh_stats () in
        let t_lift =
          Common.timed (fun () ->
              p_lift := Lift.probability ~stats:rule_stats db Q.q_w.Q.query)
        in
        let dpll_result, t_dpll =
          if n > 4 then (None, None)
          else begin
            let ctx = Lineage.create db in
            let f = Lineage.of_query ctx Q.q_w.Q.query in
            let cap = 200_000 in
            let config = { Dpll.default_config with Dpll.max_decisions = cap } in
            let r = ref None in
            let t =
              Common.timed ~repeat:1 (fun () ->
                  r :=
                    (match Dpll.count ~config ~prob:(Lineage.prob ctx) f with
                    | result -> Some result
                    | exception Dpll.Decision_limit _ -> None))
            in
            (!r, Some t)
          end
        in
        (* the rule counters Lift accumulated over (timed) repeats, scaled
           back to one run, go to the JSON record *)
        let repeats = 3 in
        let per_run v = v / repeats in
        let rules = Lift.obs_counts rule_stats in
        json_rows :=
          Common.Json.Obj
            ([ ("n", Common.Json.Int n);
               ("p", Common.Json.Float !p_lift);
               ("lifted_s", Common.Json.Float t_lift);
               ( "lifted_rules",
                 Common.Json.Obj
                   [ ( "independent_unions",
                       Common.Json.Int (per_run rules.Probdb_obs.Stats.independent_unions) );
                     ( "independent_joins",
                       Common.Json.Int (per_run rules.Probdb_obs.Stats.independent_joins) );
                     ( "separator_steps",
                       Common.Json.Int (per_run rules.Probdb_obs.Stats.separator_steps) );
                     ( "ie_expansions",
                       Common.Json.Int (per_run rules.Probdb_obs.Stats.ie_expansions) );
                     ("ie_terms", Common.Json.Int (per_run rules.Probdb_obs.Stats.ie_terms));
                     ( "cancelled_terms",
                       Common.Json.Int (per_run rules.Probdb_obs.Stats.cancelled_terms) );
                     ( "base_lookups",
                       Common.Json.Int (per_run rules.Probdb_obs.Stats.base_lookups) ) ] ) ]
            @ (match dpll_result with
              | Some r ->
                  [ ("dpll_decisions", Common.Json.Int r.Dpll.stats.Dpll.decisions);
                    ("ddnnf_trace_nodes", Common.Json.Int r.Dpll.trace_size) ]
              | None -> [ ("dpll_decisions", Common.Json.Null); ("ddnnf_trace_nodes", Common.Json.Null) ])
            @
            match t_dpll with
            | Some t -> [ ("dpll_s", Common.Json.Float t) ]
            | None -> [ ("dpll_s", Common.Json.Null) ])
          :: !json_rows;
        let grounded =
          match (dpll_result, t_dpll) with
          | None, None -> [ "skipped"; "skipped"; "skipped" ]
          | None, Some t -> [ "> 200000 (cap)"; "gave up"; Common.pretty_time t ]
          | Some r, t ->
              let agrees = Float.abs (r.Dpll.prob -. !p_lift) < 1e-6 in
              [ string_of_int r.Dpll.stats.Dpll.decisions;
                string_of_int r.Dpll.trace_size ^ (if agrees then "" else " (MISMATCH)");
                (match t with Some t -> Common.pretty_time t | None -> "-") ]
        in
        [ string_of_int n; Common.f6 !p_lift; Common.pretty_time t_lift ] @ grounded)
      [ 2; 3; 4; 6; 10; 20; 40 ]
  in
  Common.table
    ([ "n"; "p(Q_W)"; "lifted time"; "DPLL decisions"; "trace (≈ d-DNNF size)"; "DPLL time" ]
    :: rows);
  Printf.printf
    "(the paper's Thm. 7.1(ii): for such liftable UCQs every decision-DNNF is\n\
    \ 2^Ω(√n); lifted inference stays polynomial and keeps scaling)\n";
  Common.bench_json "e07_lifted_vs_grounded"
    [ ("query", Common.Json.Str Q.q_w.Q.text);
      ("rows", Common.Json.List (List.rev !json_rows)) ]

let bechamel_tests =
  let db = db_for ~n:20 ~seed:5 in
  [
    Bechamel.Test.make ~name:"e7/lifted-qw-n20"
      (Bechamel.Staged.stage (fun () -> Lift.probability db Q.q_w.Q.query));
  ]
