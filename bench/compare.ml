(* The bench regression gate and trace validator.

   Usage:
     compare OLD.json NEW.json [--threshold R] [--min-s S]
       Compare two BENCH_*.json files: every numeric leaf whose key ends
       in "_s" is a lower-is-better timing; NEW regresses when
       new > old * (1 + R). Exits 1 when any leaf regresses, 0 otherwise.
       Leaves below S seconds in both files are skipped (noise floor).

     compare --degrade FACTOR IN.json OUT.json
       Write a copy of IN with every "_s" timing multiplied by FACTOR —
       a synthetic regression used to test that the gate actually fails.

     compare --validate-trace FILE.json
       Check that FILE is well-formed Chrome trace_event JSON: an object
       with a traceEvents list, every event carrying name/ph/ts/pid/tid,
       a known phase letter, and balanced Begin/End nesting per lane.

   Wired as `make bench-compare` and `make check-trace` (docs/PERF.md,
   docs/TRACING.md). *)

module Json = Probdb_obs.Json

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok doc -> doc
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

(* Flatten a document to (dot.separated.path, leaf) pairs; list elements
   are indexed so rows of a table compare positionally. *)
let rec flatten prefix doc acc =
  let key k = if prefix = "" then k else prefix ^ "." ^ k in
  match doc with
  | Json.Obj fields ->
      List.fold_left (fun acc (k, v) -> flatten (key k) v acc) acc fields
  | Json.List items ->
      List.fold_left
        (fun (acc, i) v -> (flatten (key (string_of_int i)) v acc, i + 1))
        (acc, 0) items
      |> fst
  | leaf -> (prefix, leaf) :: acc

let number = function
  | Json.Float f -> Some f
  | Json.Int n -> Some (float_of_int n)
  | _ -> None

let is_timing path = String.length path >= 2 && Filename.check_suffix path "_s"

(* ---------- compare ---------- *)

let compare_files ~threshold ~min_s old_path new_path =
  let old_leaves = flatten "" (read_json old_path) [] in
  let new_leaves = flatten "" (read_json new_path) [] in
  let regressions = ref 0 and compared = ref 0 in
  List.iter
    (fun (path, old_leaf) ->
      if is_timing path then
        match (number old_leaf, List.assoc_opt path new_leaves) with
        | Some old_v, Some new_leaf -> (
            match number new_leaf with
            | Some new_v when old_v >= min_s || new_v >= min_s ->
                incr compared;
                if new_v > old_v *. (1.0 +. threshold) then begin
                  incr regressions;
                  Printf.printf "REGRESSION  %-50s %.6fs -> %.6fs (%+.1f%%)\n" path
                    old_v new_v
                    (100.0 *. ((new_v /. old_v) -. 1.0))
                end
            | _ -> ())
        | _ -> ())
    old_leaves;
  Printf.printf "%d timing(s) compared at threshold %.0f%%, %d regression(s)\n"
    !compared (100.0 *. threshold) !regressions;
  if !regressions > 0 then 1 else 0

(* ---------- degrade ---------- *)

let rec degrade factor prefix doc =
  let key k = if prefix = "" then k else prefix ^ "." ^ k in
  match doc with
  | Json.Obj fields -> Json.Obj (List.map (fun (k, v) -> (k, degrade factor (key k) v)) fields)
  | Json.List items -> Json.List (List.mapi (fun i v -> degrade factor (key (string_of_int i)) v) items)
  | Json.Float f when is_timing prefix -> Json.Float (f *. factor)
  | Json.Int n when is_timing prefix -> Json.Float (float_of_int n *. factor)
  | leaf -> leaf

let degrade_file factor in_path out_path =
  let doc = degrade factor "" (read_json in_path) in
  let oc = open_out out_path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s (timings x%g)\n" out_path factor;
  0

(* ---------- validate-trace ---------- *)

let known_phases = [ "B"; "E"; "i"; "C"; "M"; "X" ]

let validate_trace path =
  let fail fmt = Printf.ksprintf (fun s -> Printf.printf "INVALID %s: %s\n" path s; raise Exit) fmt in
  try
    let doc = read_json path in
    let events =
      match doc with
      | Json.Obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (Json.List evs) -> evs
          | Some _ -> fail "traceEvents is not a list"
          | None -> fail "no traceEvents field")
      | _ -> fail "top level is not an object"
    in
    if events = [] then fail "empty traceEvents";
    let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iteri
      (fun i ev ->
        let fields =
          match ev with Json.Obj f -> f | _ -> fail "event %d is not an object" i
        in
        let str k =
          match List.assoc_opt k fields with
          | Some (Json.Str s) -> s
          | _ -> fail "event %d: missing string field %S" i k
        in
        let num k =
          match Option.bind (List.assoc_opt k fields) number with
          | Some v -> v
          | None -> fail "event %d: missing numeric field %S" i k
        in
        ignore (str "name");
        let ph = str "ph" in
        if not (List.mem ph known_phases) then fail "event %d: unknown phase %S" i ph;
        ignore (num "pid");
        let tid = int_of_float (num "tid") in
        (* metadata events carry no timestamp *)
        if ph <> "M" then ignore (num "ts");
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        match ph with
        | "B" -> Hashtbl.replace depth tid (d + 1)
        | "E" ->
            if d <= 0 then fail "event %d: End without Begin on lane %d" i tid;
            Hashtbl.replace depth tid (d - 1)
        | _ -> ())
      events;
    Hashtbl.iter
      (fun tid d -> if d <> 0 then fail "lane %d: %d unclosed Begin(s)" tid d)
      depth;
    Printf.printf "OK %s: %d events, balanced spans\n" path (List.length events);
    0
  with Exit -> 1

(* ---------- validate-serve ---------- *)

(* Schema check for BENCH_serve.json (the E17 load-generator output) —
   the serving counterpart of --validate-trace, run by `make check-serve`.
   Asserts the documented shape: the sweep table with its per-level
   fields, the sustained-qps headline, and the soak invariant that every
   request was answered. *)
let validate_serve path =
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "INVALID %s: %s\n" path s; raise Exit) fmt
  in
  try
    let doc = read_json path in
    let fields = match doc with Json.Obj f -> f | _ -> fail "top level is not an object" in
    let get k = match List.assoc_opt k fields with Some v -> v | None -> fail "missing field %S" k in
    (match get "experiment" with
    | Json.Str "serve" -> ()
    | _ -> fail "experiment is not \"serve\"");
    let num_field obj k =
      match obj with
      | Json.Obj f -> (
          match Option.bind (List.assoc_opt k f) number with
          | Some v -> v
          | None -> fail "sweep level missing numeric field %S" k)
      | _ -> fail "sweep level is not an object"
    in
    let levels = match get "sweep" with
      | Json.List (_ :: _ as ls) -> ls
      | Json.List [] -> fail "empty sweep"
      | _ -> fail "sweep is not a list"
    in
    List.iter
      (fun l ->
        List.iter
          (fun k -> ignore (num_field l k))
          [ "clients"; "requests"; "qps"; "p50_s"; "p90_s"; "p99_s";
            "degraded_rate"; "shed_rate"; "errors" ];
        let lo k = num_field l k in
        if lo "p50_s" > lo "p99_s" then fail "p50 above p99 in a sweep level";
        let rate k =
          let v = lo k in
          if v < 0.0 || v > 1.0 then fail "%s outside [0,1]" k
        in
        rate "degraded_rate";
        rate "shed_rate")
      levels;
    ignore (Option.map number (Some (get "sustained_qps")));
    (match get "all_answered" with
    | Json.Bool true -> ()
    | Json.Bool false -> fail "all_answered is false: requests went unanswered"
    | _ -> fail "all_answered is not a boolean");
    Printf.printf "OK %s: %d sweep level(s), all requests answered\n" path
      (List.length levels);
    0
  with Exit -> 1

(* ---------- validate-chaos ---------- *)

(* Schema and invariant check for BENCH_chaos.json (the E18 chaos-soak
   output) — run by `make check-chaos`. Beyond shape, it asserts the
   robustness contract the soak measures: every request accounted for,
   the server alive at the end, faults actually injected at every
   non-zero rate and across at least 5 distinct sites, and the
   chaos-disabled control answers bit-identical. *)
let validate_chaos path =
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "INVALID %s: %s\n" path s; raise Exit) fmt
  in
  try
    let doc = read_json path in
    let fields = match doc with Json.Obj f -> f | _ -> fail "top level is not an object" in
    let get k = match List.assoc_opt k fields with Some v -> v | None -> fail "missing field %S" k in
    (match get "experiment" with
    | Json.Str "chaos" -> ()
    | _ -> fail "experiment is not \"chaos\"");
    let bool_true k =
      match get k with
      | Json.Bool true -> ()
      | Json.Bool false -> fail "%s is false" k
      | _ -> fail "%s is not a boolean" k
    in
    let num_field obj k =
      match obj with
      | Json.Obj f -> (
          match Option.bind (List.assoc_opt k f) number with
          | Some v -> v
          | None -> fail "level missing numeric field %S" k)
      | _ -> fail "level is not an object"
    in
    let levels = match get "levels" with
      | Json.List (_ :: _ as ls) -> ls
      | Json.List [] -> fail "empty levels"
      | _ -> fail "levels is not a list"
    in
    List.iter
      (fun l ->
        List.iter
          (fun k -> ignore (num_field l k))
          [ "rate"; "requests"; "ok"; "typed_errors"; "gave_up"; "degraded";
            "retries"; "injections"; "worker_restarts"; "availability";
            "recovery_s"; "wall_s" ];
        let v k = num_field l k in
        if v "rate" < 0.0 || v "rate" > 1.0 then fail "rate outside [0,1]";
        if v "availability" < 0.0 || v "availability" > 1.0 then
          fail "availability outside [0,1]";
        if v "ok" +. v "typed_errors" +. v "gave_up" <> v "requests" then
          fail "level at rate %g: ok + typed + gave_up <> requests" (v "rate");
        if v "rate" > 0.0 && v "injections" <= 0.0 then
          fail "no injections at non-zero rate %g" (v "rate");
        if v "rate" = 0.0 && v "injections" > 0.0 then
          fail "injections at rate 0")
      levels;
    let sites = match get "injections_per_site" with
      | Json.Obj site_fields ->
          List.filter
            (fun (_, v) -> match number v with Some n -> n > 0.0 | None -> false)
            site_fields
      | _ -> fail "injections_per_site is not an object"
    in
    if List.length sites < 5 then
      fail "only %d site(s) injected faults; need >= 5" (List.length sites);
    bool_true "all_accounted";
    bool_true "server_survived";
    bool_true "bit_identical_after_disarm";
    Printf.printf "OK %s: %d level(s), %d site(s) injected, all accounted, server survived\n"
      path (List.length levels) (List.length sites);
    0
  with Exit -> 1

(* ---------- validate-prepare ---------- *)

(* Schema and invariant check for BENCH_prepare.json (the E19
   prepared-queries output) — run by `make check-prepare`. Beyond shape,
   it asserts the contract the prepare/execute split is sold on: warm
   cache hits are genuinely faster than cold prepares (>= 2x median at
   full sizes, >= 1.2x under PROBDB_BENCH_SMOKE where batches are tiny
   and noise is not), the served repeated-template workload hits the
   shared cache >= 90% of the time, and caching never changed an answer
   (every served value bit-compared against the uncached engine). *)
let validate_prepare path =
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "INVALID %s: %s\n" path s; raise Exit) fmt
  in
  try
    let doc = read_json path in
    let fields = match doc with Json.Obj f -> f | _ -> fail "top level is not an object" in
    let get k = match List.assoc_opt k fields with Some v -> v | None -> fail "missing field %S" k in
    (match get "experiment" with
    | Json.Str "prepare" -> ()
    | _ -> fail "experiment is not \"prepare\"");
    let smoke = match get "smoke" with
      | Json.Bool b -> b
      | _ -> fail "smoke is not a boolean"
    in
    let num_field obj k =
      match obj with
      | Json.Obj f -> (
          match Option.bind (List.assoc_opt k f) number with
          | Some v -> v
          | None -> fail "entry missing numeric field %S" k)
      | _ -> fail "entry is not an object"
    in
    let rows = match get "cold_warm" with
      | Json.List (_ :: _ as rs) -> rs
      | Json.List [] -> fail "empty cold_warm"
      | _ -> fail "cold_warm is not a list"
    in
    List.iter
      (fun r ->
        (match r with
        | Json.Obj f when List.mem_assoc "template" f -> ()
        | _ -> fail "cold_warm entry missing \"template\"");
        if num_field r "cold_s" <= 0.0 then fail "non-positive cold_s";
        if num_field r "warm_s" <= 0.0 then fail "non-positive warm_s";
        ignore (num_field r "speedup"))
      rows;
    let num k = match number (get k) with
      | Some v -> v
      | None -> fail "%s is not a number" k
    in
    let floor_x = if smoke then 1.2 else 2.0 in
    let median_speedup = num "median_speedup" in
    if median_speedup < floor_x then
      fail "median cold/warm speedup %.2fx below the %.1fx floor"
        median_speedup floor_x;
    let levels = match get "sweep" with
      | Json.List (_ :: _ as ls) -> ls
      | Json.List [] -> fail "empty sweep"
      | _ -> fail "sweep is not a list"
    in
    List.iter
      (fun l ->
        List.iter
          (fun k -> ignore (num_field l k))
          [ "clients"; "qps_cached"; "qps_uncached" ])
      levels;
    let hit_rate = num "hit_rate" in
    if hit_rate < 0.0 || hit_rate > 1.0 then fail "hit_rate outside [0,1]";
    if hit_rate < 0.9 then
      fail "served cache hit rate %.3f below 0.9 on a repeated-template workload"
        hit_rate;
    (match get "drift_free" with
    | Json.Bool true -> ()
    | Json.Bool false -> fail "drift_free is false: a cached answer differed"
    | _ -> fail "drift_free is not a boolean");
    (match get "all_answered" with
    | Json.Bool true -> ()
    | Json.Bool false -> fail "all_answered is false: requests went unanswered"
    | _ -> fail "all_answered is not a boolean");
    Printf.printf
      "OK %s: %.2fx median warm speedup, %.3f hit rate, %d sweep level(s), zero drift\n"
      path median_speedup hit_rate (List.length levels);
    0
  with Exit -> 1

(* ---------- validate-storage ---------- *)

(* Schema and invariant check for BENCH_storage.json (the E20
   out-of-core storage output) — run by `make bench-smoke`. Beyond
   shape, it asserts the contract packed containers are sold on:
   `Storage.open_file` beats `Csv_io.load_dir` by >= 100x at full sizes
   (>= 5x under PROBDB_BENCH_SMOKE, where files are a handful of pages
   and the constant costs dominate), the cold query mapped strictly
   less than the whole file (the untouched relation never faulted in),
   and every answer bit-matched the CSV path. *)
let validate_storage path =
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "INVALID %s: %s\n" path s; raise Exit) fmt
  in
  try
    let doc = read_json path in
    let fields = match doc with Json.Obj f -> f | _ -> fail "top level is not an object" in
    let get k = match List.assoc_opt k fields with Some v -> v | None -> fail "missing field %S" k in
    (match get "experiment" with
    | Json.Str "storage" -> ()
    | _ -> fail "experiment is not \"storage\"");
    let smoke = match get "smoke" with
      | Json.Bool b -> b
      | _ -> fail "smoke is not a boolean"
    in
    let num_field obj k =
      match obj with
      | Json.Obj f -> (
          match Option.bind (List.assoc_opt k f) number with
          | Some v -> v
          | None -> fail "scale missing numeric field %S" k)
      | _ -> fail "scale is not an object"
    in
    let scales = match get "scales" with
      | Json.List (_ :: _ as ss) -> ss
      | Json.List [] -> fail "empty scales"
      | _ -> fail "scales is not a list"
    in
    List.iter
      (fun s ->
        List.iter
          (fun k -> ignore (num_field s k))
          [ "rows"; "file_bytes"; "csv_load_s"; "pack_s"; "open_s";
            "open_speedup"; "cold_csv_s"; "cold_packed_s"; "cold_speedup";
            "bytes_mapped"; "mapped_fraction" ];
        let v k = num_field s k in
        if v "open_s" <= 0.0 then fail "non-positive open_s";
        if v "csv_load_s" <= 0.0 then fail "non-positive csv_load_s";
        let mf = v "mapped_fraction" in
        if mf <= 0.0 || mf >= 1.0 then
          fail
            "mapped_fraction %.3f at %.0f rows not in (0,1): the cold query \
             should map the scanned columns and only those"
            mf (v "rows"))
      scales;
    let num k = match number (get k) with
      | Some v -> v
      | None -> fail "%s is not a number" k
    in
    let floor_x = if smoke then 5.0 else 100.0 in
    let max_speedup = num "max_open_speedup" in
    if max_speedup < floor_x then
      fail "open speedup %.1fx at the largest scale below the %.0fx floor"
        max_speedup floor_x;
    (match get "bit_identical" with
    | Json.Bool true -> ()
    | Json.Bool false -> fail "bit_identical is false: a packed answer differed"
    | _ -> fail "bit_identical is not a boolean");
    Printf.printf
      "OK %s: %d scale(s), %.0fx open speedup at the largest, lazy faults \
       only, zero drift\n"
      path (List.length scales) max_speedup;
    0
  with Exit -> 1

(* BENCH_obs.json gates from the telemetry issue: the instrumented
   server's throughput cost at saturation stays within the 2% budget
   (smoke windows are too short to measure that honestly, so smoke only
   sanity-bounds it), every reply carries a request id, the cumulative
   counters reconcile exactly with the client tally, and the rolling
   windows moved under load. Run by `make check-obs`. *)
let validate_obs path =
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "INVALID %s: %s\n" path s; raise Exit) fmt
  in
  try
    let doc = read_json path in
    let fields = match doc with Json.Obj f -> f | _ -> fail "top level is not an object" in
    let get k = match List.assoc_opt k fields with Some v -> v | None -> fail "missing field %S" k in
    (match get "experiment" with
    | Json.Str "obs" -> ()
    | _ -> fail "experiment is not \"obs\"");
    let smoke = match get "smoke" with
      | Json.Bool b -> b
      | _ -> fail "smoke is not a boolean"
    in
    let num k = match number (get k) with
      | Some v -> v
      | None -> fail "%s is not a number" k
    in
    if num "qps_off" <= 0.0 then fail "non-positive qps_off";
    if num "qps_on" <= 0.0 then fail "non-positive qps_on";
    if num "answered" <= 0.0 then fail "no replies tallied";
    if num "openmetrics_scrapes" <= 0.0 then
      fail "the openmetrics exposition was never scraped";
    let overhead = num "overhead_pct" in
    let budget = if smoke then 50.0 else 2.0 in
    if overhead > budget then
      fail "telemetry overhead %.2f%% above the %.0f%% budget" overhead budget;
    let coverage = num "request_id_coverage" in
    if coverage < 1.0 then
      fail "request_id coverage %.3f below 1.0: some reply had no id" coverage;
    (match get "window_moves" with
    | Json.Bool true -> ()
    | Json.Bool false -> fail "rolling windows did not move under load"
    | _ -> fail "window_moves is not a boolean");
    (match get "cumulative_exact" with
    | Json.Bool true -> ()
    | Json.Bool false ->
        fail "cumulative counters do not reconcile with the client tally"
    | _ -> fail "cumulative_exact is not a boolean");
    Printf.printf
      "OK %s: overhead %.2f%% (budget %.0f%%), id coverage 1.0 over %.0f \
       replies, windows live, counters exact\n"
      path overhead budget (num "answered");
    0
  with Exit -> 1

(* ---------- entry ---------- *)

let usage () =
  prerr_endline
    "usage: compare OLD.json NEW.json [--threshold R] [--min-s S]\n\
    \       compare --degrade FACTOR IN.json OUT.json\n\
    \       compare --validate-trace FILE.json\n\
    \       compare --validate-serve FILE.json\n\
    \       compare --validate-chaos FILE.json\n\
    \       compare --validate-prepare FILE.json\n\
    \       compare --validate-storage FILE.json\n\
    \       compare --validate-obs FILE.json";
  2

let () =
  let code =
    match List.tl (Array.to_list Sys.argv) with
    | [ "--validate-trace"; path ] -> validate_trace path
    | [ "--validate-serve"; path ] -> validate_serve path
    | [ "--validate-chaos"; path ] -> validate_chaos path
    | [ "--validate-prepare"; path ] -> validate_prepare path
    | [ "--validate-storage"; path ] -> validate_storage path
    | [ "--validate-obs"; path ] -> validate_obs path
    | [ "--degrade"; factor; in_path; out_path ] -> (
        match float_of_string_opt factor with
        | Some f -> degrade_file f in_path out_path
        | None -> usage ())
    | old_path :: new_path :: rest ->
        let rec opts threshold min_s = function
          | "--threshold" :: v :: rest -> opts (float_of_string v) min_s rest
          | "--min-s" :: v :: rest -> opts threshold (float_of_string v) rest
          | [] -> Some (threshold, min_s)
          | _ -> None
        in
        (match opts 0.25 0.0 rest with
        | Some (threshold, min_s) -> compare_files ~threshold ~min_s old_path new_path
        | None -> usage ())
    | _ -> usage ()
  in
  exit code
