(* Shared helpers for the experiment harness: wall-clock timing, aligned
   table printing, machine-readable JSON output (BENCH_*.json), and a small
   Bechamel wrapper for the micro-benchmarks. *)

module Json = Probdb_obs.Json

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* Median wall-clock time of [repeat] runs (seconds). Each run starts
   from a collected heap, so a measurement doesn't pay the major-GC debt
   of whatever allocated before it. *)
let timed ?(repeat = 3) f =
  let times =
    List.init repeat (fun _ ->
        Gc.full_major ();
        let _, dt = time f in
        dt)
    |> List.sort Float.compare
  in
  List.nth times (repeat / 2)

let pretty_time dt =
  if dt < 1e-6 then Printf.sprintf "%.0fns" (dt *. 1e9)
  else if dt < 1e-3 then Printf.sprintf "%.1fus" (dt *. 1e6)
  else if dt < 1.0 then Printf.sprintf "%.2fms" (dt *. 1e3)
  else Printf.sprintf "%.2fs" dt

let header title =
  Printf.printf "\n=== %s ===\n" title

let section s = Printf.printf "\n--- %s ---\n" s

(* Aligned table: first row is the header. *)
let table rows =
  match rows with
  | [] -> ()
  | header :: _ ->
      let cols = List.length header in
      let width i =
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 rows
      in
      let widths = List.init cols width in
      let print_row row =
        List.iteri
          (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
          row;
        print_newline ()
      in
      List.iteri
        (fun idx row ->
          print_row row;
          if idx = 0 then begin
            List.iter (fun w -> Printf.printf "%s  " (String.make w '-')) widths;
            print_newline ()
          end)
        rows

(* Write one experiment's machine-readable results next to the console
   table. The schema shares field names with the engine's per-query stats
   (docs/STATS.md): circuit sizes, rule counts and seconds appear under the
   same keys, so tooling can join BENCH_*.json with `probdb eval
   --stats-json` output. *)
let bench_json name fields =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj (("experiment", Json.Str name) :: fields)));
  output_string oc "\n";
  close_out oc;
  Printf.printf "[wrote %s]\n" path

(* Opt-in tracing for experiments: with PROBDB_TRACE set (to anything but
   "" or "0") each experiment's run is recorded and written next to its
   BENCH_*.json as TRACE_<name>.json — same Chrome trace_event schema as
   `probdb eval --trace` (docs/TRACING.md). *)
let trace_requested =
  match Sys.getenv_opt "PROBDB_TRACE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let with_trace name f =
  if not trace_requested then f ()
  else begin
    Probdb_obs.Trace.enable ();
    Fun.protect
      ~finally:(fun () ->
        Probdb_obs.Trace.disable ();
        let path = Printf.sprintf "TRACE_%s.json" name in
        Probdb_obs.Trace.write path;
        Printf.printf "[wrote %s]\n" path)
      (fun () -> Probdb_obs.Trace.with_span ~cat:"bench" ("bench." ^ name) f)
  end

let f4 x = Printf.sprintf "%.4f" x
let f6 x = Printf.sprintf "%.6f" x
let g x = Printf.sprintf "%.6g" x

(* ---------- Bechamel ---------- *)

open Bechamel
open Toolkit

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"probdb" tests) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  table
    ([ "benchmark"; "time/run"; "r²" ]
    :: List.map
         (fun (name, ns, r2) ->
           [ name; pretty_time (ns *. 1e-9); Printf.sprintf "%.3f" r2 ])
         rows)
