(* E12 — whole-engine ablation: every strategy on every query, with the
   dispatcher's choice highlighted. This is the survey's "who wins where"
   in one table. *)

module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let strategies =
  [ E.Lifted; E.Safe_plan; E.Read_once; E.Obdd; E.Dpll; E.Karp_luby; E.World_enum ]

let db_for q ~n =
  let specs =
    List.map (fun (name, arity) -> Gen.spec ~density:0.8 name arity) (L.Fo.relations q)
  in
  Gen.random_tid ~seed:23 ~domain_size:n specs

let cell db q s =
  let config =
    { E.default_config with E.strategies = [ s ]; E.kl_samples = 30_000 }
  in
  match Common.time (fun () -> E.evaluate ~config db q) with
  | r, dt ->
      let v = E.value r.E.outcome in
      let mark = match r.E.outcome with E.Exact _ -> "" | E.Approximate _ -> "~" in
      Printf.sprintf "%s%.4f %s" mark v (Common.pretty_time dt)
  | exception E.No_method ((_, reason) :: _) ->
      let short = if String.length reason > 18 then String.sub reason 0 18 ^ "…" else reason in
      "✗ " ^ short
  | exception E.No_method [] -> "✗"

let matrix () =
  Common.section "per-strategy results (value + time; ~ marks sampling; ✗ = method refuses)";
  let queries =
    [ (Q.q_hier, 4); (Q.q_j, 3); (Q.q_w, 2); (Q.h0, 3); (Q.self_join_symmetric, 3) ]
  in
  let rows =
    List.map
      (fun ((e : Q.entry), n) ->
        let db = db_for e.Q.query ~n in
        e.Q.name :: List.map (cell db e.Q.query) strategies)
      queries
  in
  Common.table (("query" :: List.map E.strategy_name strategies) :: rows)

let dispatcher () =
  Common.section "dispatcher choices (default configuration)";
  let queries = [ (Q.q_hier, 4); (Q.q_j, 3); (Q.q_w, 2); (Q.h0, 3); (Q.self_join_symmetric, 3) ] in
  let rows =
    List.map
      (fun ((e : Q.entry), n) ->
        let db = db_for e.Q.query ~n in
        let r = E.evaluate db e.Q.query in
        [ e.Q.name;
          E.strategy_name r.E.strategy;
          Common.f6 (E.value r.E.outcome);
          String.concat "; "
            (List.map (fun (s, _) -> E.strategy_name s) r.E.skipped) ])
      queries
  in
  Common.table ([ "query"; "answered by"; "value"; "skipped" ] :: rows)

(* The cost of the probes themselves: the same auto-dispatched query with
   tracing off (the default — every probe is one atomic load) and on. The
   disabled number is the one that matters for production; docs/PERF.md
   records it. *)
let tracing_overhead () =
  Common.section "tracing overhead (engine-auto on q_j, per-query medians)";
  let db = db_for Q.q_j.Q.query ~n:3 in
  let q = Q.q_j.Q.query in
  let reps = 100 in
  let batch () =
    for _ = 1 to reps do
      ignore (E.probability db q)
    done
  in
  let off = Common.timed ~repeat:5 batch /. float_of_int reps in
  Probdb_obs.Trace.enable ();
  let on_ = Common.timed ~repeat:5 batch /. float_of_int reps in
  Probdb_obs.Trace.disable ();
  Probdb_obs.Trace.clear ();
  Common.table
    [ [ "tracing"; "time/query"; "overhead" ];
      [ "disabled"; Common.pretty_time off; "-" ];
      [ "enabled"; Common.pretty_time on_;
        Printf.sprintf "%+.1f%%" (100.0 *. ((on_ /. off) -. 1.0)) ] ]

let run () =
  Common.header "E12: engine ablation — every method on every query";
  matrix ();
  dispatcher ();
  tracing_overhead ()

let bechamel_tests =
  let db = db_for Q.q_j.Q.query ~n:3 in
  [
    Bechamel.Test.make ~name:"e12/engine-auto-qj"
      (Bechamel.Staged.stage (fun () -> E.probability db Q.q_j.Q.query));
  ]
