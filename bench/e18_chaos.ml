(* E18 — chaos soak: the serving stack under a seeded deterministic fault
   schedule (EXPERIMENTS.md E18, docs/SERVING.md "Chaos replay").

   An in-process `probdb serve` instance is driven by resilient clients
   ([Client.Resilient]: per-attempt timeouts, jittered retries, circuit
   breaker) while [Probdb_chaos.Chaos] injects faults at every armed site
   — accept-loop errnos, connection resets on read and write, short
   writes, worker crashes, worker stalls, guard trips — at rates swept
   from 0 (control) to 10%.

   The robustness contract measured here:
   - every request is accounted for: a correct answer, a typed error, or
     a typed client give-up — never a hang, never an unexplained drop;
   - the server survives every level (final liveness probe succeeds) and
     self-heals: crashed/stalled workers are respawned (restart counts
     come from the server's own stats);
   - availability degrades gracefully with the fault rate rather than
     cliffing, and with chaos disarmed answers are bit-identical to the
     control run (the chaos hooks are free when off).

   Sizing: ~10k requests across the sweep by default; PROBDB_BENCH_SMOKE=1
   shrinks it to a schema check for BENCH_chaos.json; PROBDB_SOAK=1 grows
   it into a long soak. *)

module Chaos = Probdb_chaos.Chaos
module Serve = Probdb_serve.Serve
module Client = Probdb_serve.Client
module Resilient = Probdb_serve.Client.Resilient
module Metrics = Probdb_obs.Metrics
module Json = Probdb_obs.Json
module Gen = Probdb_workload.Gen

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None
let soak = Sys.getenv_opt "PROBDB_SOAK" <> None

let chaos_seed = 42
let rates = [ 0.0; 0.01; 0.05; 0.10 ]

(* requests per sweep level; the default sweep totals ~10k *)
let requests_per_level = if smoke then 60 else if soak then 25_000 else 2_500
let clients_per_level = if smoke then 2 else 4

let sites =
  [ "serve.accept"; "serve.read"; "serve.write.reset"; "serve.write.short";
    "par.worker.crash"; "par.worker.stall"; "guard.poll" ]

let site_count site = Metrics.counter_value (Metrics.counter ("chaos." ^ site))

let queries =
  [| "exists x y. R(x) && S(x,y)";
     "exists x. R(x)";
     "exists x y. R(x) && S(x,y) && T(y)";
     "forall x y. R(x) || S(x,y)" |]

let make_db () =
  let domain_size = if smoke then 6 else 9 in
  Gen.random_tid ~seed:18 ~domain_size
    [ Gen.spec ~density:0.5 "R" 1; Gen.spec ~density:0.35 "S" 2;
      Gen.spec ~density:0.5 "T" 1 ]

type tally = {
  mutable ok : int;
  mutable typed_errors : int;
  mutable gave_up : int;
  mutable degraded_load : int;
  mutable retries : int;
}

let client_policy k =
  { Resilient.attempt_timeout_s = 2.0;
    max_attempts = 4;
    base_backoff_s = 0.002;
    max_backoff_s = 0.05;
    retry_budget_s = 0.5;
    breaker_threshold = 10;
    breaker_cooldown_s = 0.05;
    seed = 1000 + k }

let run_client ~port ~k ~n tally =
  let c = Resilient.create ~policy:(client_policy k) port in
  Fun.protect ~finally:(fun () -> Resilient.close c) @@ fun () ->
  for i = 0 to n - 1 do
    let q = queries.((k + i) mod Array.length queries) in
    (match Resilient.eval c q with
    | Ok resp ->
        if Client.ok resp then begin
          tally.ok <- tally.ok + 1;
          match Json.member "degraded_under_load" (Client.result resp) with
          | Some (Json.Bool true) -> tally.degraded_load <- tally.degraded_load + 1
          | _ -> ()
        end
        else tally.typed_errors <- tally.typed_errors + 1
    | Error _ -> tally.gave_up <- tally.gave_up + 1);
    (* an open breaker fails calls fast; give the cooldown a beat so the
       soak measures retry behaviour, not a wedged-open breaker *)
    if Resilient.breaker_is_open c then Thread.delay 0.06
  done;
  tally.retries <- Resilient.retries c

type level = {
  rate : float;
  requests : int;
  l_ok : int;
  l_typed : int;
  l_gave_up : int;
  l_degraded : int;
  l_retries : int;
  availability : float;
  injections : int;
  restarts : int;
  recovery_s : float;
  wall_s : float;
}

let restarts_of stats =
  match Json.member "worker_restarts" stats with
  | Some (Json.Int n) -> n
  | _ -> 0

let run_level ~server ~port rate =
  let restarts0 = restarts_of (Serve.stats_json server) in
  let injections0 = Chaos.injections () in
  if rate > 0.0 then Chaos.arm { Chaos.seed = chaos_seed; rate };
  let per_client = requests_per_level / clients_per_level in
  let tallies =
    Array.init clients_per_level (fun _ ->
        { ok = 0; typed_errors = 0; gave_up = 0; degraded_load = 0; retries = 0 })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients_per_level (fun k ->
        Thread.create (fun () -> run_client ~port ~k ~n:per_client tallies.(k)) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Chaos.disarm ();
  (* recovery: time-to-first-clean-answer once the faults stop *)
  let recovery_t0 = Unix.gettimeofday () in
  let c = Client.connect port in
  let recovered = Client.ok (Client.eval c queries.(0)) in
  Client.close c;
  let recovery = Unix.gettimeofday () -. recovery_t0 in
  if not recovered then failwith "E18: server did not answer cleanly after disarm";
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let ok = sum (fun t -> t.ok) in
  let typed = sum (fun t -> t.typed_errors) in
  let gave_up = sum (fun t -> t.gave_up) in
  let answered = ok + typed + gave_up in
  {
    rate;
    requests = per_client * clients_per_level;
    l_ok = ok;
    l_typed = typed;
    l_gave_up = gave_up;
    l_degraded = sum (fun t -> t.degraded_load);
    l_retries = sum (fun t -> t.retries);
    availability =
      (if answered = 0 then 0.0 else float_of_int ok /. float_of_int answered);
    injections = Chaos.injections () - injections0;
    restarts = restarts_of (Serve.stats_json server) - restarts0;
    recovery_s = recovery;
    wall_s = wall;
  }

(* the bit-identical control: evaluate every query over one clean
   connection and return the raw result payloads *)
let control_results ~port =
  let c = Client.connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Array.to_list queries
  |> List.map (fun q -> Json.to_string (Client.result (Client.eval c q)))

let run () =
  Common.header "E18: chaos soak (seeded fault injection vs probdb serve)";
  Chaos.disarm ();
  let db = make_db () in
  let config =
    { Serve.default_config with
      Serve.port = 0;
      workers = (if smoke then 2 else 4);
      queue_capacity = 32;
      degrade_above = 16;
      worker_stall_deadline_ms = 1_000;
      default_deadline_ms = Some 2_000 }
  in
  let server = Serve.start ~config db in
  let port = Serve.port server in
  Printf.printf "server on 127.0.0.1:%d — seed %d, %d requests/level over %s\n"
    port chaos_seed requests_per_level
    (String.concat " " (List.map (Printf.sprintf "%.0f%%")
                          (List.map (( *. ) 100.0) rates)));
  Fun.protect ~finally:(fun () -> Chaos.disarm (); Serve.stop server)
  @@ fun () ->
  let before = control_results ~port in
  let levels = List.map (run_level ~server ~port) rates in
  let after = control_results ~port in
  let bit_identical = List.equal String.equal before after in
  let survived = let c = Client.connect port in
                 let alive = Client.ping c in Client.close c; alive in
  Common.section "fault-rate sweep";
  Common.table
    ([ "rate"; "requests"; "ok"; "typed"; "gave up"; "degraded"; "retries";
       "injected"; "restarts"; "avail"; "recovery" ]
    :: List.map
         (fun l ->
           [ Printf.sprintf "%.0f%%" (100.0 *. l.rate);
             string_of_int l.requests;
             string_of_int l.l_ok;
             string_of_int l.l_typed;
             string_of_int l.l_gave_up;
             string_of_int l.l_degraded;
             string_of_int l.l_retries;
             string_of_int l.injections;
             string_of_int l.restarts;
             Printf.sprintf "%.1f%%" (100.0 *. l.availability);
             Common.pretty_time l.recovery_s ])
         levels);
  let all_accounted =
    List.for_all (fun l -> l.l_ok + l.l_typed + l.l_gave_up = l.requests) levels
  in
  let injection_sites =
    List.filter (fun s -> site_count s > 0) sites
  in
  Printf.printf
    "\nsites injected: %s\nall accounted: %b; answers bit-identical after disarm: %b; server survived: %b\n"
    (String.concat ", " injection_sites)
    all_accounted bit_identical survived;
  if not all_accounted then failwith "E18: a request went unaccounted";
  if not survived then failwith "E18: server did not survive the soak";
  if not bit_identical then
    failwith "E18: chaos-disabled answers differ from the control run";
  Common.bench_json "chaos"
    [
      ("smoke", Json.Bool smoke);
      ("soak", Json.Bool soak);
      ("seed", Json.Int chaos_seed);
      ("requests_per_level", Json.Int requests_per_level);
      ("clients_per_level", Json.Int clients_per_level);
      ( "levels",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("rate", Json.Float l.rate);
                   ("requests", Json.Int l.requests);
                   ("ok", Json.Int l.l_ok);
                   ("typed_errors", Json.Int l.l_typed);
                   ("gave_up", Json.Int l.l_gave_up);
                   ("degraded", Json.Int l.l_degraded);
                   ("retries", Json.Int l.l_retries);
                   ("injections", Json.Int l.injections);
                   ("worker_restarts", Json.Int l.restarts);
                   ("availability", Json.Float l.availability);
                   ("recovery_s", Json.Float l.recovery_s);
                   ("wall_s", Json.Float l.wall_s);
                 ])
             levels) );
      ( "injections_per_site",
        Json.Obj (List.map (fun s -> (s, Json.Int (site_count s))) sites) );
      ("sites_injected", Json.Int (List.length injection_sites));
      ("all_accounted", Json.Bool all_accounted);
      ("bit_identical_after_disarm", Json.Bool bit_identical);
      ("server_survived", Json.Bool survived);
    ]

(* The chaos decision on its own: the per-poll overhead a guarded solver
   pays at an armed site — this is the "free when off / cheap when on"
   claim measured. *)
let bechamel_tests =
  [
    Bechamel.Test.make ~name:"chaos/fire-disarmed"
      (Bechamel.Staged.stage (fun () ->
           ignore (Chaos.fire ~site:"bench.site")));
  ]
