(* E15 — the parallel runtime: columnar plan execution vs the list-based
   reference, and Karp–Luby batch sampling across domain counts. The
   columnar claim is single-core (same work, unboxed inner loops); the
   sampler rows additionally check the batch-indexed RNG streams make the
   estimate identical at every domain count.

   PROBDB_BENCH_SMOKE=1 shrinks every size so the experiment doubles as a
   schema check for BENCH_parallel.json (make bench-smoke). *)

module Core = Probdb_core
module L = Probdb_logic
module P = Probdb_plans
module Exec = Probdb_exec.Exec
module Par = Probdb_par.Par
module Kl = Probdb_approx.Karp_luby
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries
module Lineage = Probdb_lineage.Lineage
module Json = Probdb_obs.Json

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None

(* R(x) with [n] keys, S(x,y) with [n] rows over those keys: the join
   R(x) ⋈ S(x,y) streams n + n rows and outputs n. *)
let join_db n =
  let r = List.init n (fun i -> ([ Core.Value.int i ], 0.5)) in
  let s =
    List.init n (fun i -> ([ Core.Value.int (i mod max 1 (n / 4)); Core.Value.int i ], 0.5))
  in
  Core.Tid.make
    [ Core.Relation.of_list "R" r; Core.Relation.of_list "S" s ]

let join_plan =
  P.Plan.Project
    ([], P.Plan.Join (P.Plan.Scan (L.Cq.of_vars "R" [ "x" ]),
                      P.Plan.Scan (L.Cq.of_vars "S" [ "x"; "y" ])))

let r_atom = L.Cq.of_vars "R" [ "x" ]
let s_atom = L.Cq.of_vars "S" [ "x"; "y" ]

(* The join operator in isolation: both inputs pre-materialised, so the
   numbers compare the hash-join inner loops without the (tree-bound)
   scan cost common to both paths. *)
let join_operator_times ~repeat db =
  let dict = Core.Dict.create ~size_hint:(2 * Core.Tid.support_size db) () in
  let cr = Exec.scan dict db r_atom and cs = Exec.scan dict db s_atom in
  let tr = P.Ptable.scan db r_atom and ts = P.Ptable.scan db s_atom in
  let t_list = Common.timed ~repeat (fun () -> ignore (P.Ptable.join tr ts)) in
  let t_col = Common.timed ~repeat (fun () -> ignore (Exec.join cr cs)) in
  (t_list, t_col)

let columnar_vs_list () =
  Common.section "columnar executor vs list-based reference (γ(R ⋈ S), 50% density)";
  let sizes = if smoke then [ 200; 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let rows, json =
    List.map
      (fun n ->
        let db = join_db n in
        let repeat = if n >= 100_000 then 3 else 5 in
        let p_list = ref 0.0 and p_col = ref 0.0 in
        let t_list =
          Common.timed ~repeat (fun () -> p_list := P.Plan.boolean_prob_reference db join_plan)
        in
        let t_col =
          Common.timed ~repeat (fun () -> p_col := P.Plan.boolean_prob db join_plan)
        in
        let jt_list, jt_col = join_operator_times ~repeat db in
        let agree = Float.abs (!p_list -. !p_col) < 1e-9 in
        let speedup = t_list /. t_col in
        let join_speedup = jt_list /. jt_col in
        let input_rows = 2 * n in
        ( [ string_of_int n;
            Common.pretty_time t_list;
            Common.pretty_time t_col;
            Printf.sprintf "%.1fx" speedup;
            Printf.sprintf "%.1fx" join_speedup;
            Printf.sprintf "%.3g" (float_of_int input_rows /. t_col);
            (if agree then "yes" else "NO") ],
          Json.Obj
            [ ("rows", Json.Int n);
              ("list_s", Json.Float t_list);
              ("columnar_s", Json.Float t_col);
              ("speedup", Json.Float speedup);
              ("join_list_s", Json.Float jt_list);
              ("join_columnar_s", Json.Float jt_col);
              ("join_speedup", Json.Float join_speedup);
              ("columnar_rows_per_s", Json.Float (float_of_int input_rows /. t_col));
              ("agree", Json.Bool agree) ] ))
      sizes
    |> List.split
  in
  Common.table
    ([ "rows/rel"; "list"; "columnar"; "pipeline"; "join op"; "col rows/s"; "agree" ]
    :: rows);
  json

let sampler_scaling () =
  Common.section "Karp–Luby batch sampling across domain counts (H0 lineage)";
  let n = if smoke then 4 else 8 in
  let samples = if smoke then 4_000 else 200_000 in
  let db = Gen.h0_db ~seed:4 ~n () in
  let ctx = Lineage.create db in
  let ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  let prob = Lineage.prob ctx in
  let counts = [ 1; 2; 4; 8 ] in
  let runs =
    List.map
      (fun domains ->
        let pool = Par.create ~domains () in
        let est = ref None in
        let dt =
          Common.timed ~repeat:3 (fun () ->
              est := Some (Kl.estimate_par ~seed:1 ~pool ~samples ~prob clauses))
        in
        (domains, dt, Option.get !est))
      counts
  in
  let _, t1, e1 = List.hd runs in
  let identical =
    List.for_all (fun (_, _, e) -> e.Kl.mean = e1.Kl.mean && e.Kl.std_error = e1.Kl.std_error) runs
  in
  Common.table
    ([ "domains"; "time"; "speedup"; "samples/s"; "estimate" ]
    :: List.map
         (fun (d, dt, e) ->
           [ string_of_int d;
             Common.pretty_time dt;
             Printf.sprintf "%.2fx" (t1 /. dt);
             Printf.sprintf "%.3g" (float_of_int samples /. dt);
             Common.f6 e.Kl.mean ])
         runs);
  Printf.printf "estimates identical across domain counts: %s (hardware cores: %d)\n"
    (if identical then "yes" else "NO")
    (Domain.recommended_domain_count ());
  Json.Obj
    [ ("samples", Json.Int samples);
      ("clauses", Json.Int (List.length clauses));
      ("estimates_identical", Json.Bool identical);
      ("baseline_mean", Json.Float e1.Kl.mean);
      ( "scaling",
        Json.List
          (List.map
             (fun (d, dt, e) ->
               Json.Obj
                 [ ("domains", Json.Int d);
                   ("time_s", Json.Float dt);
                   ("speedup", Json.Float (t1 /. dt));
                   ("mean", Json.Float e.Kl.mean) ])
             runs) ) ]

let run () =
  Common.header "E15: columnar execution + multicore runtime";
  let join = columnar_vs_list () in
  let sampler = sampler_scaling () in
  Common.bench_json "parallel"
    [ ("smoke", Json.Bool smoke);
      ("join", Json.List join);
      ("sampler", sampler) ]

let bechamel_tests =
  let db = join_db 1_000 in
  let kl_db = Gen.h0_db ~seed:4 ~n:6 () in
  let ctx = Lineage.create kl_db in
  let ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  [
    Bechamel.Test.make ~name:"e15/columnar-join-1k"
      (Bechamel.Staged.stage (fun () -> P.Plan.boolean_prob db join_plan));
    Bechamel.Test.make ~name:"e15/list-join-1k"
      (Bechamel.Staged.stage (fun () -> P.Plan.boolean_prob_reference db join_plan));
    Bechamel.Test.make ~name:"e15/estimate-par-4k"
      (Bechamel.Staged.stage (fun () ->
           Kl.estimate_par ~seed:1 ~samples:4_000 ~prob:(Lineage.prob ctx) clauses));
  ]
