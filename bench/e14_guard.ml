(* E14 — resource guards and graceful degradation: on an instance where
   every exact strategy is hopeless, how quickly does the engine notice
   and hand back an (ε,δ)-approximation?  The deadline is the knob: the
   time-to-answer should track the deadline plus a roughly constant
   Karp–Luby tail, and the returned interval should be stable across
   deadlines (same ε, δ). *)

module L = Probdb_logic
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module Guard = Probdb_guard.Guard
module Gen = Probdb_workload.Gen
module Json = Common.Json

let unsafe_db () =
  (* H0-shaped bipartite instance: dense enough that OBDD and DPLL both
     blow their budgets, small enough that sampling is instant. *)
  Gen.random_tid ~seed:7 ~prob_range:(0.02, 0.25) ~domain_size:24
    [ Gen.spec ~density:0.9 "R" 1;
      Gen.spec ~density:0.85 "S" 2;
      Gen.spec ~density:0.9 "T" 1 ]

let unsafe_q () = L.Parser.parse_sentence "exists x y. R(x) && S(x,y) && T(y)"

let run () =
  Common.header "E14: resource guards — time-to-degrade vs deadline";
  let db = unsafe_db () in
  let q = unsafe_q () in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun deadline_s ->
        let config =
          { E.default_config with
            E.deadline_s = Some deadline_s;
            E.degrade = Some { E.eps = 0.1; E.delta = 0.05; E.max_samples = 20_000 } }
        in
        let answer, dt = Common.time (fun () -> E.eval ~config db q) in
        match answer with
        | Error e -> failwith (Probdb_core.Probdb_error.render e)
        | Ok a ->
            let ci_low, ci_high, samples =
              match a.Answer.confidence with
              | Some c -> (c.Answer.ci_low, c.Answer.ci_high, c.Answer.samples)
              | None -> (nan, nan, 0)
            in
            let tripped =
              List.length (List.filter (function Answer.Tripped _ -> true | _ -> false) a.Answer.chain)
            in
            json_rows :=
              Json.Obj
                [ ("deadline_s", Json.Float deadline_s);
                  ("time_to_answer_s", Json.Float dt);
                  ("degraded", Json.Bool a.Answer.degraded);
                  ("strategy", Json.Str a.Answer.strategy);
                  ("value", Json.Float a.Answer.value);
                  ("ci_low", Json.Float ci_low);
                  ("ci_high", Json.Float ci_high);
                  ("ci_width", Json.Float (ci_high -. ci_low));
                  ("samples", Json.Int samples);
                  ("tripped_strategies", Json.Int tripped) ]
              :: !json_rows;
            [ Common.f4 deadline_s;
              Common.pretty_time dt;
              (if a.Answer.degraded then "yes" else "no");
              a.Answer.strategy;
              Common.f6 a.Answer.value;
              Printf.sprintf "[%s, %s]" (Common.f4 ci_low) (Common.f4 ci_high);
              string_of_int samples ])
      [ 0.25; 0.5; 1.0; 2.0 ]
  in
  Common.table
    ([ "deadline (s)"; "time to answer"; "degraded"; "strategy"; "estimate";
       "95% CI"; "samples" ]
    :: rows);
  Printf.printf
    "(time-to-answer ≈ deadline + a constant Karp–Luby tail; the interval\n\
    \ itself only depends on (ε,δ) = (0.1, 0.05), not on the deadline)\n";
  Common.bench_json "guard"
    [ ("query", Json.Str "exists x y. R(x) && S(x,y) && T(y)");
      ("domain_size", Json.Int 24);
      ("eps", Json.Float 0.1);
      ("delta", Json.Float 0.05);
      ("rows", Json.List (List.rev !json_rows)) ]

let bechamel_tests =
  let guard = Guard.create ~deadline_s:3600.0 () in
  [
    Bechamel.Test.make ~name:"e14/poll-unlimited"
      (Bechamel.Staged.stage (fun () -> Guard.poll Guard.unlimited ~site:"bench"));
    Bechamel.Test.make ~name:"e14/poll-deadline"
      (Bechamel.Staged.stage (fun () -> Guard.poll guard ~site:"bench"));
  ]
