(* E16 — grounded WMC: the clause-database counter (Probdb_cnf.Wmc) against
   the tree DPLL prover on CNF-shaped lineage (Thm. 7.1 measurement, update
   of the E7 grounded baseline).

   Two lineage families, Zipf-distributed tuple probabilities:

   - "zipf-star": ∧_i (x0 ∨ xi) — one hub variable in every clause, the
     shape of a universal query with a shared head atom. One decision
     settles it, so the measured gap is pure representation cost: the tree
     solver rebuilds an n-ary And (with its O(n²) complement check) where
     the clause database moves two watch pointers. On this family the two
     provers provably perform the same float operations in the same order,
     so the probabilities are asserted *bit-identical*, not just close.

   - "bipartite-chain": ∧_i (xi ∨ xi+1) — the path graph (a bipartite
     incidence structure). Branching splits it into independent segments
     that recur across branches, so this family exercises component
     decomposition and the bounded component cache (hit rate, evictions
     under a deliberately tiny cap).

   At the largest size the formula-tree layer itself is the bottleneck
   (constructing the lineage And is quadratic in the smart constructors),
   so the 1e5 row feeds the solver a directly-built clause database —
   measuring pure solver scaling, with the tree column marked "-".

   PROBDB_BENCH_SMOKE=1 shrinks every size so the experiment doubles as a
   schema check for BENCH_wmc.json (make bench-smoke). *)

module F = Probdb_boolean.Formula
module Cnf = Probdb_cnf.Cnf
module Wmc = Probdb_cnf.Wmc
module Dpll = Probdb_dpll.Dpll
module Gen = Probdb_workload.Gen
module Json = Probdb_obs.Json

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None

let zipf_prob nvars =
  let probs = Array.of_list (Gen.zipf_probs nvars) in
  fun v -> probs.(v)

(* ---------- the two families ---------- *)

(* Star over n+1 variables: clauses (x0 ∨ xi), i = 1..n. *)
let star_formula n =
  F.conj (List.init n (fun i -> F.disj2 (F.var 0) (F.var (i + 1))))

let star_cnf n =
  { Cnf.nvars = n + 1;
    n_orig = n + 1;
    orig_var = Array.init (n + 1) Fun.id;
    trace_var = Array.init (n + 1) Fun.id;
    clauses = Array.init n (fun i -> [| Cnf.lit 0 true; Cnf.lit (i + 1) true |]);
    clausified = false }

(* Chain over n variables: clauses (xi ∨ xi+1), i = 0..n-2. *)
let chain_formula n =
  F.conj (List.init (n - 1) (fun i -> F.disj2 (F.var i) (F.var (i + 1))))

let chain_cnf n =
  { Cnf.nvars = n;
    n_orig = n;
    orig_var = Array.init n Fun.id;
    trace_var = Array.init n Fun.id;
    clauses = Array.init (n - 1) (fun i -> [| Cnf.lit i true; Cnf.lit (i + 1) true |]);
    clausified = false }

(* ---------- measurement ---------- *)

type row = {
  n : int;
  tree_s : float option;  (** None: tree skipped at this size *)
  tree_p : float option;
  wmc_s : float;
  wmc_p : float;
  stats : Wmc.stats;
}

let repeat_for n = if n >= 1_000 then 1 else 3

(* One measured call that also yields the value, so the single-repeat
   sizes (the expensive ones) run exactly once. *)
let once f =
  Gc.full_major ();
  Common.time f

(* Tree solver timing; the caller decides up to which size it is honest to
   wait for it. *)
let run_tree ~prob f n =
  let repeat = repeat_for n in
  if repeat = 1 then
    let p, dt = once (fun () -> Dpll.probability ~prob f) in
    (dt, p)
  else
    let dt = Common.timed ~repeat (fun () -> ignore (Dpll.probability ~prob f)) in
    (dt, Dpll.probability ~prob f)

let run_wmc ?config ~prob cnf n =
  let repeat = repeat_for n in
  if repeat = 1 then
    let r, dt = once (fun () -> Wmc.count_cnf ?config ~prob cnf) in
    (dt, r.Wmc.prob, r.Wmc.stats)
  else
    let dt =
      Common.timed ~repeat (fun () -> ignore (Wmc.count_cnf ?config ~prob cnf))
    in
    let r = Wmc.count_cnf ?config ~prob cnf in
    (dt, r.Wmc.prob, r.Wmc.stats)

let measure ~formula ~cnf ~tree_max sizes =
  List.map
    (fun n ->
      let prob = zipf_prob (cnf n).Cnf.nvars in
      let tree_s, tree_p =
        if n <= tree_max then
          let f = formula n in
          let dt, p = run_tree ~prob f n in
          (Some dt, Some p)
        else (None, None)
      in
      let wmc_s, wmc_p, stats = run_wmc ~prob (cnf n) n in
      { n; tree_s; tree_p; wmc_s; wmc_p; stats })
    sizes

let hit_rate (s : Wmc.stats) =
  if s.Wmc.cache_queries = 0 then 0.0
  else float_of_int s.Wmc.cache_hits /. float_of_int s.Wmc.cache_queries

let print_rows name rows =
  Common.section name;
  Common.table
    ([ "vars"; "tree"; "wmc"; "speedup"; "vs tree"; "components"; "cache hits" ]
    :: List.map
         (fun r ->
           let speedup =
             match r.tree_s with
             | Some t -> Printf.sprintf "%.1fx" (t /. r.wmc_s)
             | None -> "-"
           in
           let bit =
             match r.tree_p with
             | Some p ->
                 if Float.equal p r.wmc_p then "bit-identical"
                 else
                   Printf.sprintf "rel err %.1e"
                     (Float.abs (p -. r.wmc_p)
                     /. Float.max (Float.abs p) Float.min_float)
             | None -> "-"
           in
           [ string_of_int r.n;
             (match r.tree_s with Some t -> Common.pretty_time t | None -> "-");
             Common.pretty_time r.wmc_s;
             speedup;
             bit;
             string_of_int r.stats.Wmc.components;
             Printf.sprintf "%d/%d" r.stats.Wmc.cache_hits r.stats.Wmc.cache_queries ])
         rows)

let json_of_row r =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [ ("n", Json.Int r.n);
      ("tree_s", opt (fun t -> Json.Float t) r.tree_s);
      ("wmc_s", Json.Float r.wmc_s);
      ("speedup", opt (fun t -> Json.Float (t /. r.wmc_s)) r.tree_s);
      ("tree_prob", opt (fun p -> Json.Float p) r.tree_p);
      ("wmc_prob", Json.Float r.wmc_p);
      ( "bit_identical",
        opt (fun p -> Json.Bool (Float.equal p r.wmc_p)) r.tree_p );
      ("decisions", Json.Int r.stats.Wmc.decisions);
      ("propagations", Json.Int r.stats.Wmc.propagations);
      ("components", Json.Int r.stats.Wmc.components);
      ("cache_hit_rate", Json.Float (hit_rate r.stats));
      ("cache_evictions", Json.Int r.stats.Wmc.cache_evictions) ]

(* Rerun a mid-size chain under a deliberately tiny cache cap: correctness
   must survive eviction pressure, and the JSON records that evictions
   actually fired. *)
let capped_cache_part rows =
  match
    match List.find_opt (fun r -> r.n >= 1_000) rows with
    | Some r -> Some r
    | None -> ( match List.rev rows with r :: _ -> Some r | [] -> None)
  with
  | None -> Json.Null
  | Some row ->
      let n = row.n in
      let prob = zipf_prob n in
      let config = { Wmc.default_config with Wmc.max_cache_entries = 64 } in
      let _, p, stats = run_wmc ~config ~prob (chain_cnf n) n in
      Printf.printf
        "capped cache (64 entries) at n=%d: %d evictions, answer drift %.3g\n" n
        stats.Wmc.cache_evictions
        (Float.abs (p -. row.wmc_p));
      Json.Obj
        [ ("n", Json.Int n);
          ("cap", Json.Int 64);
          ("cache_evictions", Json.Int stats.Wmc.cache_evictions);
          ("prob_matches_uncapped", Json.Bool (Float.equal p row.wmc_p)) ]

let run () =
  Common.header "E16: grounded WMC — clause database vs tree DPLL (Thm. 7.1)";
  (* Chain stops at 1e4: the per-level component scan makes the total
     quadratic (inherent to a path graph), and the cache behaviour it is
     here to show is already fully exercised. The star carries the 1e5
     point. *)
  let star_sizes = if smoke then [ 200; 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let star_tree_max = if smoke then 1_000 else 10_000 in
  let chain_sizes = if smoke then [ 200; 1_000 ] else [ 1_000; 10_000 ] in
  let chain_tree_max = if smoke then 200 else 1_000 in
  let star_rows =
    measure ~formula:star_formula ~cnf:star_cnf ~tree_max:star_tree_max star_sizes
  in
  print_rows "zipf-star: one hub variable in every clause" star_rows;
  let chain_rows =
    measure ~formula:chain_formula ~cnf:chain_cnf ~tree_max:chain_tree_max
      chain_sizes
  in
  print_rows "bipartite-chain: components + cache" chain_rows;
  (match
     List.find_opt (fun r -> r.tree_s <> None && r.n >= 10_000) star_rows
   with
  | Some r ->
      let t = Option.get r.tree_s in
      Printf.printf "star at %d vars: %.1fx over tree DPLL (target >= 10x), %s\n"
        r.n (t /. r.wmc_s)
        (if Option.map (Float.equal r.wmc_p) r.tree_p = Some true then
           "bit-identical"
         else "NOT bit-identical")
  | None -> ());
  let capped = capped_cache_part chain_rows in
  Common.bench_json "wmc"
    [ ("smoke", Json.Bool smoke);
      ("star", Json.List (List.map json_of_row star_rows));
      ("chain", Json.List (List.map json_of_row chain_rows));
      ("capped_cache", capped) ]

let bechamel_tests =
  let n = 500 in
  let prob = zipf_prob (n + 1) in
  let f = star_formula n in
  let cnf = star_cnf n in
  [
    Bechamel.Test.make ~name:"e16/wmc-star-n500"
      (Bechamel.Staged.stage (fun () -> Wmc.count_cnf ~prob cnf));
    Bechamel.Test.make ~name:"e16/tree-dpll-star-n500"
      (Bechamel.Staged.stage (fun () -> Dpll.probability ~prob f));
  ]
