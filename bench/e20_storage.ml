(* E20 — out-of-core packed storage (EXPERIMENTS.md E20).

   Per scale (total tuple count), three measurements over a synthetic
   three-relation database — R(x) small, S(x,y) large and scanned, U(x,y)
   large and never touched by the query:

   1. Open time: `Csv_io.load_dir` (parse + intern every row) vs
      `Storage.open_file` (header + TOC only; O(header)). The headline is
      the speedup at the largest scale — the acceptance floor is 100x at
      full sizes.

   2. Cold time-to-first-answer: load-then-eval vs open-then-eval of the
      same safe query through the forced safe plan. The packed side scans
      the mapped columns in place, so only the pages the plan touches
      fault in.

   3. Lazy-fault accounting: bytes of column segments actually mapped by
      the cold query over the container size. U's columns never map, so
      the fraction stays well below 1 — the out-of-core contract.

   Every scale also bit-compares the two answers. PROBDB_BENCH_SMOKE=1
   shrinks the scales so the run doubles as the schema check behind
   `compare --validate-storage` (wired into `make bench-smoke`). *)

module Json = Probdb_obs.Json
module Core = Probdb_core
module Storage = Probdb_storage.Storage
module E = Probdb_engine.Engine
module Answer = Probdb_engine.Answer
module L = Probdb_logic

let smoke = Sys.getenv_opt "PROBDB_BENCH_SMOKE" <> None
let scales = if smoke then [ 2_000; 20_000 ] else [ 100_000; 1_000_000; 10_000_000 ]

let query = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)"
let config = { E.default_config with E.strategies = [ E.Safe_plan ] }

(* Deterministic marginals: dense in (0,1), never 0 or 1, cheap. *)
let prob i = 0.05 +. (0.9 *. Float.rem (float_of_int i *. 0.6180339887498949) 1.0)

(* Write the CSV directory directly — the load we time IS the parse of
   these files, so the generator must not go through a Relation first. *)
let synth_csv dir n =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let dx = min n 1_000 in
  let file name f =
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  in
  let s_rows = n and u_rows = n / 2 and r_rows = max 1 (n / 100) in
  file "S" (fun oc ->
      for i = 0 to s_rows - 1 do
        Printf.fprintf oc "%d,%d,%.17g\n" (i mod dx) (i / dx) (prob i)
      done);
  file "U" (fun oc ->
      for i = 0 to u_rows - 1 do
        Printf.fprintf oc "%d,%d,%.17g\n" (i mod dx) (i / dx) (prob (i + 7))
      done);
  file "R" (fun oc ->
      (* plain [i], not [i mod dx]: R can outgrow the x-domain, and modular
         values would collide into duplicate tuples *)
      for i = 0 to r_rows - 1 do
        Printf.fprintf oc "%d,%.17g\n" i (prob (i + 13))
      done);
  s_rows + u_rows + r_rows

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let eval_value db =
  match E.eval ~config db query with
  | Ok a -> a.Answer.value
  | Error e -> failwith (Core.Probdb_error.render e)

type row = {
  rows : int;
  file_bytes : int;
  csv_load_s : float;
  pack_s : float;
  open_s : float;
  open_speedup : float;
  cold_csv_s : float;
  cold_packed_s : float;
  cold_speedup : float;
  bytes_mapped : int;
  mapped_fraction : float;
  identical : bool;
}

let measure n =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "probdb_e20_csv" in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "probdb_e20.pdb" in
  rm_rf dir;
  let rows = synth_csv dir n in
  (* the CSV side, measured as one cold load-then-eval *)
  let db, csv_load_s = Common.time (fun () -> Core.Csv_io.load_dir dir) in
  let csv_value, csv_eval_s = Common.time (fun () -> eval_value db) in
  let cold_csv_s = csv_load_s +. csv_eval_s in
  let _, pack_s = Common.time (fun () -> Storage.pack db path) in
  (* open is O(header): cheap enough to take a median of several runs *)
  let open_s =
    Common.timed ~repeat:5 (fun () -> Storage.close (Storage.open_file path))
  in
  (* the packed side, cold: open, eval over the mapped columns, account
     the pages the plan actually faulted in *)
  let t = Storage.open_file path in
  let packed_value, packed_eval_s =
    Common.time (fun () -> eval_value (Storage.tid t))
  in
  let cold_packed_s = Storage.open_seconds t +. packed_eval_s in
  let file_bytes = Storage.file_size t in
  let bytes_mapped = Storage.bytes_mapped t in
  Storage.close t;
  rm_rf dir;
  Sys.remove path;
  {
    rows;
    file_bytes;
    csv_load_s;
    pack_s;
    open_s;
    open_speedup = csv_load_s /. Float.max 1e-9 open_s;
    cold_csv_s;
    cold_packed_s;
    cold_speedup = cold_csv_s /. Float.max 1e-9 cold_packed_s;
    bytes_mapped;
    mapped_fraction = float_of_int bytes_mapped /. float_of_int file_bytes;
    identical = Int64.bits_of_float csv_value = Int64.bits_of_float packed_value;
  }

let run () =
  Common.header "E20: out-of-core packed storage";
  Common.section "open + cold-query latency, csv directory vs packed container";
  let results = List.map measure scales in
  Common.table
    ([ "tuples"; "file"; "csv load"; "pack"; "open"; "speedup"; "cold csv";
       "cold packed"; "mapped" ]
    :: List.map
         (fun r ->
           [ string_of_int r.rows;
             Printf.sprintf "%.1fMB" (float_of_int r.file_bytes /. 1e6);
             Common.pretty_time r.csv_load_s;
             Common.pretty_time r.pack_s;
             Common.pretty_time r.open_s;
             Printf.sprintf "%.0fx" r.open_speedup;
             Common.pretty_time r.cold_csv_s;
             Common.pretty_time r.cold_packed_s;
             Printf.sprintf "%.0f%%" (100.0 *. r.mapped_fraction) ])
         results);
  let last = List.nth results (List.length results - 1) in
  let identical = List.for_all (fun r -> r.identical) results in
  Printf.printf
    "\nopen speedup at %d tuples: %.0fx; answers bit-identical: %b\n" last.rows
    last.open_speedup identical;
  Common.bench_json "storage"
    [
      ("smoke", Json.Bool smoke);
      ( "scales",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("rows", Json.Int r.rows);
                   ("file_bytes", Json.Int r.file_bytes);
                   ("csv_load_s", Json.Float r.csv_load_s);
                   ("pack_s", Json.Float r.pack_s);
                   ("open_s", Json.Float r.open_s);
                   ("open_speedup", Json.Float r.open_speedup);
                   ("cold_csv_s", Json.Float r.cold_csv_s);
                   ("cold_packed_s", Json.Float r.cold_packed_s);
                   ("cold_speedup", Json.Float r.cold_speedup);
                   ("bytes_mapped", Json.Int r.bytes_mapped);
                   ("mapped_fraction", Json.Float r.mapped_fraction);
                 ])
             results) );
      ("max_open_speedup", Json.Float last.open_speedup);
      ("bit_identical", Json.Bool identical);
    ]

let bechamel_tests =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "probdb_e20_micro.pdb" in
  let ready =
    lazy
      (let db =
         Probdb_workload.Gen.random_tid ~seed:5 ~domain_size:8
           [ Probdb_workload.Gen.spec ~density:0.5 "R" 1;
             Probdb_workload.Gen.spec ~density:0.4 "S" 2 ]
       in
       Storage.pack db path)
  in
  [
    Bechamel.Test.make ~name:"storage/open+close"
      (Bechamel.Staged.stage (fun () ->
           Lazy.force ready;
           Storage.close (Storage.open_file path)));
  ]
