(* E3 — the safety classifier across the query zoo (Thm. 4.3 / Thm. 5.1):
   hierarchy test, lifted-rule verdict, and the literature's expected
   complexity, side by side. *)

module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Q = Probdb_workload.Queries

let hierarchy_cell (e : Q.entry) =
  match L.Ucq.of_sentence e.Q.query with
  | exception L.Ucq.Unsupported _ -> "n/a"
  | ucq, _ -> (
      match L.Ucq.minimize ucq with
      | [ cq ] when L.Cq.is_self_join_free cq ->
          if L.Cq.is_hierarchical cq then "hierarchical" else "non-hierarchical"
      | [ cq ] when L.Cq.is_hierarchical cq -> "hierarchical (self-join!)"
      | [ _ ] -> "non-hierarchical"
      | _ -> "union")

let verdict_cell e =
  match Lift.classify e.Q.query with
  | Lift.Safe -> "safe"
  | Lift.Unsafe_by_rules _ -> "unsafe"
  | Lift.Unsupported _ -> "unsupported"

let expected_cell (e : Q.entry) =
  match e.Q.expected with
  | Q.Ptime -> "PTIME"
  | Q.Sharp_p_hard -> "#P-hard"
  | Q.Ptime_beyond_rules -> "PTIME (needs ranking)"

let agreement (e : Q.entry) =
  let v = Lift.classify e.Q.query in
  match e.Q.expected, v with
  | Q.Ptime, Lift.Safe -> "ok"
  | Q.Sharp_p_hard, Lift.Unsafe_by_rules _ -> "ok"
  | Q.Ptime_beyond_rules, Lift.Unsafe_by_rules _ -> "ok (documented gap)"
  | _ -> "MISMATCH"

let run () =
  Common.header "E3: safety classification of the query zoo";
  let rows =
    List.map
      (fun (e : Q.entry) ->
        [ e.Q.name; hierarchy_cell e; verdict_cell e; expected_cell e; agreement e ])
      Q.all
  in
  Common.table ([ "query"; "hierarchy"; "lifted rules"; "literature"; "check" ] :: rows);
  (* the decision procedure is itself cheap (AC^0 for sjf CQs, Thm. 4.3) *)
  let dt =
    Common.timed (fun () ->
        List.iter (fun (e : Q.entry) -> ignore (Lift.classify e.Q.query)) Q.all)
  in
  Printf.printf "classifying all %d queries takes %s\n" (List.length Q.all)
    (Common.pretty_time dt)

let bechamel_tests =
  [
    Bechamel.Test.make ~name:"e3/classify-zoo"
      (Bechamel.Staged.stage (fun () ->
           List.iter (fun (e : Q.entry) -> ignore (Lift.classify e.Q.query)) Q.all));
  ]
