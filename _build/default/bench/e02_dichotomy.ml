(* E2 — the dichotomy as a runtime phenomenon (Thm. 2.2 / Thm. 4.3):
   the hierarchical query scales to large databases through lifted
   inference, while exact grounded inference on the non-hierarchical H0
   shows exponential growth in the domain size. *)

module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let safe_part () =
  Common.section "safe side: q_hier = ∃x∃y R(x)∧S(x,y), lifted inference";
  let rows =
    List.map
      (fun n ->
        let db =
          Gen.random_tid ~seed:n ~domain_size:n
            [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S" 2 ]
        in
        let p = ref 0.0 in
        let dt = Common.timed (fun () -> p := Lift.probability db Q.q_hier.Q.query) in
        [ string_of_int n;
          string_of_int (Probdb_core.Tid.support_size db);
          Common.f6 !p;
          Common.pretty_time dt ])
      [ 10; 30; 100; 300; 1000 ]
  in
  Common.table ([ "n"; "tuples"; "p(Q)"; "lifted time" ] :: rows)

let hard_part () =
  Common.section
    "hard side: H0 = ∃x∃y R(x)∧S(x,y)∧T(y); lifted fails, exact DPLL grows exponentially";
  (match Lift.classify Q.h0.Q.query with
  | Lift.Unsafe_by_rules msg -> Printf.printf "lifted verdict on H0: unsafe (%s)\n" msg
  | v -> Printf.printf "UNEXPECTED verdict: %s\n" (Format.asprintf "%a" Lift.pp_verdict v));
  let rows =
    List.map
      (fun n ->
        let db = Gen.h0_db ~seed:n ~n () in
        let ctx = Lineage.create db in
        let f = Lineage.of_query ctx Q.h0.Q.query in
        let result = ref None in
        let dt =
          Common.timed ~repeat:1 (fun () ->
              result := Some (Dpll.count ~prob:(Lineage.prob ctx) f))
        in
        let r = Option.get !result in
        [ string_of_int n;
          string_of_int (Probdb_boolean.Formula.var_count f);
          string_of_int r.Dpll.stats.Dpll.decisions;
          string_of_int r.Dpll.trace_size;
          Common.pretty_time dt ])
      [ 2; 4; 6; 8 ]
  in
  Common.table ([ "n"; "lineage vars"; "DPLL decisions"; "trace size"; "time" ] :: rows);
  Printf.printf
    "(decisions roughly double with each +2 in n: the grounded method is exponential,\n\
    \ while the same sizes are instantaneous on the safe side above)\n"

let run () =
  Common.header "E2: the PTIME / #P-hard dichotomy as measured runtime";
  safe_part ();
  hard_part ()

let bechamel_tests =
  let db_safe =
    Gen.random_tid ~seed:7 ~domain_size:100
      [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S" 2 ]
  in
  let db_hard = Gen.h0_db ~seed:7 ~n:6 () in
  let ctx = Lineage.create db_hard in
  let f = Lineage.of_query ctx Q.h0.Q.query in
  [
    Bechamel.Test.make ~name:"e2/lifted-q-hier-n100"
      (Bechamel.Staged.stage (fun () -> Lift.probability db_safe Q.q_hier.Q.query));
    Bechamel.Test.make ~name:"e2/dpll-h0-n6"
      (Bechamel.Staged.stage (fun () -> Dpll.probability ~prob:(Lineage.prob ctx) f));
  ]
