(* E13 — the extension modules around the paper's margins: read-once
   factorisation ([34]), open-world intervals (Sec. 9), BID tables ([16]),
   and semiring provenance ([1]). Each is demonstrated against the exact
   reference. *)

module Core = Probdb_core
module L = Probdb_logic
module Kc = Probdb_kc
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries
module Lineage = Probdb_lineage.Lineage
module O = Probdb_openworld.Open_db
module S = Probdb_provenance.Semiring
module A = Probdb_provenance.Annotate

let read_once_part () =
  Common.section "read-once factorisation: linear-time WMC on hierarchical lineages";
  let q = Q.q_hier.Q.query in
  let ucq, _ = L.Ucq.of_sentence q in
  let rows =
    List.map
      (fun n ->
        let db =
          Gen.random_tid ~seed:n ~domain_size:n
            [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S" 2 ]
        in
        let ctx = Lineage.create db in
        let clauses = Lineage.dnf_of_ucq ctx ucq in
        let p = ref None in
        let dt =
          Common.timed (fun () ->
              p := Kc.Read_once.probability (Lineage.prob ctx) clauses)
        in
        [ string_of_int n;
          string_of_int (List.length clauses);
          (match !p with Some p -> Common.f6 p | None -> "not read-once");
          Common.pretty_time dt ])
      [ 5; 10; 20; 40 ]
  in
  Common.table ([ "n"; "DNF clauses"; "p(Q) via read-once"; "time" ] :: rows);
  let db = Gen.h0_db ~seed:3 ~n:4 () in
  let ctx = Lineage.create db in
  let h0ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  Printf.printf "H0 lineage read-once? %b (as Thm. 7.1 predicts: no)\n"
    (Kc.Read_once.is_read_once (Lineage.dnf_of_ucq ctx h0ucq))

let open_world_part () =
  Common.section "open-world intervals (lambda-completions, Sec. 9)";
  let t xs = List.map Core.Value.int xs in
  let db =
    Core.Tid.make
      ~domain:(List.map Core.Value.int [ 0; 1; 2; 3 ])
      [
        Core.Relation.of_list "R" [ (t [ 0 ], 0.8); (t [ 1 ], 0.6) ];
        Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.7); (t [ 1; 2 ], 0.4) ];
      ]
  in
  let q = L.Parser.parse_sentence "exists x y. R(x) && S(x,y)" in
  let rows =
    List.map
      (fun lambda ->
        let ow = O.make ~lambda ~open_relations:[ ("S", 2) ] db in
        let iv = O.probability_interval ow q in
        [ Common.f4 lambda; Common.f6 iv.O.lower; Common.f6 iv.O.upper;
          Common.f6 (iv.O.upper -. iv.O.lower) ])
      [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
  in
  Common.table ([ "lambda"; "lower"; "upper"; "width" ] :: rows);
  Printf.printf "(width 0 at lambda = 0: the closed-world assumption recovered)\n"

let bid_part () =
  Common.section "BID tables: disjoint blocks vs the independent approximation";
  let t xs = List.map Core.Value.int xs in
  let bid =
    Core.Bid.make (Core.Schema.make "Sensor" [ "id"; "v" ]) ~key_arity:1
      [
        { Core.Bid.key = t [ 1 ]; options = [ (t [ 40 ], 0.2); (t [ 41 ], 0.5); (t [ 42 ], 0.3) ] };
        { Core.Bid.key = t [ 2 ]; options = [ (t [ 40 ], 0.6); (t [ 41 ], 0.4) ] };
      ]
  in
  let tid = Core.Tid.make [ Core.Bid.to_tid_relation bid ] in
  let approx ev =
    Core.Worlds.probability tid (fun w ->
        ev (Core.World.of_facts (List.map (fun tu -> ("bid", tu)) (Core.World.tuples_of w "Sensor"))))
  in
  let row name ev =
    [ name; Common.f6 (Core.Bid.probability bid ev); Common.f6 (approx ev) ]
  in
  Common.table
    [
      [ "event"; "BID semantics"; "independent approx." ];
      row "sensor 1 reads 40 AND 41 (one block)" (fun w ->
          Core.World.mem w "bid" (t [ 1; 40 ]) && Core.World.mem w "bid" (t [ 1; 41 ]));
      row "sensor 1 reads 40 OR 41 (one block)" (fun w ->
          Core.World.mem w "bid" (t [ 1; 40 ]) || Core.World.mem w "bid" (t [ 1; 41 ]));
      row "both sensors read 40 (across blocks)" (fun w ->
          Core.World.mem w "bid" (t [ 1; 40 ]) && Core.World.mem w "bid" (t [ 2; 40 ]));
    ];
  Printf.printf
    "(within a block the approximation is wrong — blocks are disjoint choices;\n\
    \ across blocks the marginals suffice, which is why BID queries still have\n\
    \ dichotomies, see [16])\n";
  Printf.printf "expected tuples present: %.2f\n" (Core.Bid.expected_size bid)

let provenance_part () =
  Common.section "semiring provenance: one evaluator, four semantics";
  let t xs = List.map Core.Value.int xs in
  let world =
    Core.World.of_facts
      [ ("R", t [ 0 ]); ("R", t [ 1 ]); ("S", t [ 0; 1 ]); ("S", t [ 1; 1 ]) ]
  in
  let domain = List.init 3 Core.Value.int in
  let cq =
    match L.Ucq.of_sentence (L.Parser.parse_sentence "exists x y. R(x) && S(x,y)") with
    | [ cq ], _ -> cq
    | _ -> assert false
  in
  let module B = A.Make (S.Bool) in
  let module C = A.Make (S.Counting) in
  let module P = A.Make (S.Polynomial) in
  let indeterminate rel tuple =
    match rel, tuple with
    | "R", [ Core.Value.Int i ] -> S.Polynomial.var i
    | "S", [ Core.Value.Int i; Core.Value.Int j ] -> S.Polynomial.var (10 + (3 * i) + j)
    | _ -> S.Polynomial.zero
  in
  let ann_poly rel tuple =
    if Core.World.mem world rel tuple then indeterminate rel tuple else S.Polynomial.zero
  in
  Printf.printf "query: exists x y. R(x) && S(x,y), world: {R(0),R(1),S(0,1),S(1,1)}\n";
  Printf.printf "  Bool      : %b\n" (B.eval_cq ~domain (B.of_world world) cq);
  Printf.printf "  Counting  : %d derivations\n" (C.eval_cq ~domain (C.of_world world) cq);
  Printf.printf "  Polynomial: %s\n"
    (Format.asprintf "%a" S.Polynomial.pp (P.eval_cq ~domain ann_poly cq))

let run () =
  Common.header "E13: extensions — read-once, open world, BID, provenance";
  read_once_part ();
  open_world_part ();
  bid_part ();
  provenance_part ()

let bechamel_tests =
  let db =
    Gen.random_tid ~seed:11 ~domain_size:30
      [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S" 2 ]
  in
  let ctx = Lineage.create db in
  let ucq, _ = L.Ucq.of_sentence Q.q_hier.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  [
    Bechamel.Test.make ~name:"e13/read-once-n30"
      (Bechamel.Staged.stage (fun () ->
           Kc.Read_once.probability (Lineage.prob ctx) clauses));
  ]
