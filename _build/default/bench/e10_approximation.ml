(* E10 — approximation where exact inference is #P-hard: Karp–Luby on the
   H0 lineage converges at the predicted 1/√N rate, and keeps a bounded
   *relative* error on low-probability events where naive MC collapses. *)

module L = Probdb_logic
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries
module Lineage = Probdb_lineage.Lineage
module Mc = Probdb_approx.Mc
module Kl = Probdb_approx.Karp_luby
module Dpll = Probdb_dpll.Dpll

let convergence () =
  Common.section "Karp–Luby convergence on H0 (n = 8; exact reference via DPLL)";
  let db = Gen.h0_db ~seed:4 ~n:8 () in
  let ctx = Lineage.create db in
  let ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  let truth = Dpll.probability ~prob:(Lineage.prob ctx) (Lineage.of_query ctx Q.h0.Q.query) in
  Printf.printf "exact p(H0) = %.6f, DNF clauses = %d\n" truth (List.length clauses);
  let rows =
    List.map
      (fun samples ->
        let est = ref None in
        let dt =
          Common.timed ~repeat:1 (fun () ->
              est := Some (Kl.estimate ~seed:1 ~samples ~prob:(Lineage.prob ctx) clauses))
        in
        let est = Option.get !est in
        [ string_of_int samples;
          Common.f6 est.Kl.mean;
          Common.f6 (Float.abs (est.Kl.mean -. truth));
          Common.f6 (Kl.half_width_95 est);
          Common.pretty_time dt ])
      [ 100; 1_000; 10_000; 100_000 ]
  in
  Common.table ([ "samples"; "estimate"; "|error|"; "95% half-width"; "time" ] :: rows)

let low_probability () =
  Common.section "low-probability regime: Karp–Luby vs naive MC (relative error)";
  (* a sparse H0 instance with small tuple probabilities *)
  let db =
    Gen.random_tid ~seed:8 ~prob_range:(0.01, 0.05) ~domain_size:8
      [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S" 2;
        Gen.spec ~density:1.0 "T" 1 ]
  in
  let ctx = Lineage.create db in
  let ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  let truth = Dpll.probability ~prob:(Lineage.prob ctx) (Lineage.of_query ctx Q.h0.Q.query) in
  Printf.printf "exact p = %.3e\n" truth;
  let samples = 20_000 in
  let kl = Kl.estimate ~seed:2 ~samples ~prob:(Lineage.prob ctx) clauses in
  let mc = Mc.estimate ~seed:2 ~samples db Q.h0.Q.query in
  Common.table
    [
      [ "method"; "estimate"; "relative error" ];
      [ "Karp–Luby";
        Printf.sprintf "%.3e" kl.Kl.mean;
        Common.f4 (Float.abs (kl.Kl.mean -. truth) /. truth) ];
      [ "naive MC";
        Printf.sprintf "%.3e" mc.Mc.mean;
        (if mc.Mc.mean = 0.0 then "no hits at all"
         else Common.f4 (Float.abs (mc.Mc.mean -. truth) /. truth)) ];
    ]

let run () =
  Common.header "E10: approximation for #P-hard queries (Karp–Luby FPRAS)";
  convergence ();
  low_probability ()

let bechamel_tests =
  let db = Gen.h0_db ~seed:4 ~n:8 () in
  let ctx = Lineage.create db in
  let ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  [
    Bechamel.Test.make ~name:"e10/karp-luby-10k-samples"
      (Bechamel.Staged.stage (fun () ->
           Kl.estimate ~seed:1 ~samples:10_000 ~prob:(Lineage.prob ctx) clauses));
  ]
