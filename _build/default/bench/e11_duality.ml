(* E11 — the dual query (Sec. 2): PQE(Q) and PQE(dual Q) are polynomial-time
   equivalent; numerically, p_D(dual Q) = 1 - p_{D^c}(Q) where D^c
   complements every possible tuple's probability. *)

module Core = Probdb_core
module L = Probdb_logic
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries
module E = Probdb_engine.Engine

let run () =
  Common.header "E11: dual queries (Sec. 2)";
  let cases =
    [ Q.q_hier; Q.h0; Q.q_j ]
    |> List.map (fun (e : Q.entry) -> (e.Q.name, e.Q.query))
  in
  let rows =
    List.map
      (fun (name, q) ->
        let q = L.Fo.elim_implies q in
        let dual = L.Fo.dual q in
        let rels = L.Fo.relations q in
        let specs = List.map (fun (r, k) -> Gen.spec ~density:1.0 r k) rels in
        let db = Gen.random_tid ~seed:5 ~domain_size:2 specs in
        let dbc = L.Brute_force.complement_tid db rels in
        let lhs = L.Brute_force.probability db dual in
        let rhs = 1.0 -. L.Brute_force.probability dbc q in
        (* the engine evaluates both sides too *)
        let lhs_engine = E.probability db dual in
        [ name;
          L.Fo.to_string dual;
          Common.f6 lhs;
          Common.f6 rhs;
          Common.f6 lhs_engine;
          (if Float.abs (lhs -. rhs) < 1e-9 then "ok" else "MISMATCH") ])
      cases
  in
  Common.table
    ([ "query"; "dual"; "p_D(dual Q)"; "1 - p_Dc(Q)"; "engine"; "check" ] :: rows);
  (* classification transfers across duality *)
  Common.section "complexity transfers to the dual";
  let rows =
    List.map
      (fun (e : Q.entry) ->
        let q = L.Fo.elim_implies e.Q.query in
        let v q = Format.asprintf "%a" Probdb_lifted.Lift.pp_verdict (Probdb_lifted.Lift.classify q) in
        [ e.Q.name; v q; v (L.Fo.dual q) ])
      [ Q.q_hier; Q.h0; Q.h1 ]
  in
  Common.table ([ "query"; "verdict"; "verdict of dual" ] :: rows)

let bechamel_tests = []
