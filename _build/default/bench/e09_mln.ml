(* E9 — correlations through constraints (Sec. 3, Prop. 3.1, Fig. 3):
   the Fig. 3 weight table regenerated, and the MLN → TID + Γ translation
   validated numerically for both Appendix encodings. *)

module Core = Probdb_core
module L = Probdb_logic
module Mln = Probdb_mln.Mln
module Factors = Probdb_mln.Factors
module F = Probdb_boolean.Formula

let domain = [ Core.Value.str "p1"; Core.Value.str "p2" ]

let fig3 () =
  Common.section "Fig. 3: probabilities and weights of Eq. (14)";
  let w1, w2, w3, w4 = (0.5, 2.0, 3.0, 3.9) in
  let p i = [| w1; w2; w3 |].(i - 1) /. (1.0 +. [| w1; w2; w3 |].(i - 1)) in
  let x1, x2, x3 = (F.var 1, F.var 2, F.var 3) in
  let formula = F.conj [ F.disj2 x1 x2; F.disj2 x1 x3; F.disj2 x2 x3 ] in
  let feature = F.implies x1 x2 in
  let rows =
    List.concat_map
      (fun b1 ->
        List.concat_map
          (fun b2 ->
            List.map
              (fun b3 ->
                let a v = [| b1; b2; b3 |].(v - 1) in
                let sat = F.eval a formula in
                let p_theta =
                  List.fold_left
                    (fun acc i -> acc *. if a i then p i else 1.0 -. p i)
                    1.0 [ 1; 2; 3 ]
                in
                let weight =
                  List.fold_left
                    (fun acc i -> if a i then acc *. [| w1; w2; w3 |].(i - 1) else acc)
                    1.0 [ 1; 2; 3 ]
                in
                let weight' = if F.eval a feature then weight *. w4 else weight in
                [ Printf.sprintf "%d%d%d" (Bool.to_int b1) (Bool.to_int b2) (Bool.to_int b3);
                  (if sat then "1" else "0");
                  Common.f4 p_theta;
                  Common.f4 weight;
                  (if F.eval a feature then "1" else "0");
                  Common.f4 weight' ])
              [ false; true ])
          [ false; true ])
      [ false; true ]
  in
  Common.table
    ([ "θ(x1 x2 x3)"; "F"; "p(θ)"; "weight(θ)"; "G"; "weight'(θ)" ] :: rows);
  let mn =
    Factors.make ~var_weights:[ (1, w1); (2, w2); (3, w3) ]
      [ { Factors.weight = w4; formula = feature } ]
  in
  Printf.printf "weight'(F) = %.6f  Z' = %.6f  p'(F) = %.6f\n"
    (Factors.probability mn formula *. Factors.partition_function mn)
    (Factors.partition_function mn)
    (Factors.probability mn formula)

let prop31 () =
  Common.section "Prop. 3.1: p_MLN(Q) = p_D(Q | Γ) (Manager/HighlyCompensated, w = 3.9)";
  let mln = Mln.manager_example in
  let queries =
    [
      ("HC(p1)", L.Parser.parse_sentence "HighlyCompensated(p1)");
      ("∃m∃e Manager", L.Parser.parse_sentence "exists m e. Manager(m,e)");
      ("∀m HC(m)", L.Parser.parse_sentence "forall m. HighlyCompensated(m)");
    ]
  in
  let rows =
    List.map
      (fun (name, q) ->
        let direct = Mln.probability ~domain mln q in
        let via_or = Mln.probability_via_tid ~encoding:Mln.Or_encoding ~domain mln q in
        let via_iff = Mln.probability_via_tid ~encoding:Mln.Iff_encoding ~domain mln q in
        [ name; Common.f6 direct; Common.f6 via_or; Common.f6 via_iff ])
      queries
  in
  Common.table ([ "query"; "p_MLN (direct)"; "via TID+Γ (or)"; "via TID+Γ (iff)" ] :: rows);
  let tr = Mln.translate ~encoding:Mln.Or_encoding ~domain mln in
  Printf.printf
    "or-encoding auxiliary tuple probability: %.4f (= 1/w; tuple *weight* 1/(w-1) = %.4f\n\
    \ as in the Appendix — the paper's prose quotes the weight as a probability)\n"
    (Core.Tid.prob tr.Mln.db (List.hd tr.Mln.aux) [ List.hd domain; List.nth domain 1 ])
    (1.0 /. (3.9 -. 1.0))

let evidence_effect () =
  Common.section "more managed employees ⇒ higher P(HighlyCompensated) (Sec. 3 narrative)";
  let q = L.Parser.parse_sentence "HighlyCompensated(p1)" in
  let rows =
    List.map
      (fun k ->
        (* evidence: p1 manages the first k people (near-hard constraints) *)
        let evidence =
          List.filteri (fun i _ -> i < k) domain
          |> List.map (fun e ->
                 Mln.soft 10000.0
                   (L.Fo.Atom
                      { L.Fo.rel = "Manager";
                        args = [ L.Fo.Const (Core.Value.str "p1"); L.Fo.Const e ] }))
        in
        let p = Mln.probability ~domain (evidence @ Mln.manager_example) q in
        [ string_of_int k; Common.f6 p ])
      [ 0; 1; 2 ]
  in
  Common.table ([ "# employees managed by p1"; "P(HighlyCompensated(p1))" ] :: rows)

let run () =
  Common.header "E9: MLNs as TIDs with constraints (Sec. 3 / Prop. 3.1 / Fig. 3)";
  fig3 ();
  prop31 ();
  evidence_effect ()

let bechamel_tests =
  let mln = Mln.manager_example in
  [
    Bechamel.Test.make ~name:"e9/prop31-or-encoding"
      (Bechamel.Staged.stage (fun () ->
           Mln.probability_via_tid ~encoding:Mln.Or_encoding ~domain mln
             (L.Parser.parse_sentence "HighlyCompensated(p1)")));
  ]
