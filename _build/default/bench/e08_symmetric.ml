(* E8 — symmetric databases (Sec. 8, Thm. 8.1): H0, #P-hard in general,
   becomes polynomial on symmetric databases; the general FO² cell
   algorithm agrees with the paper's closed form and with enumeration. *)

module L = Probdb_logic
module Sym = Probdb_symmetric
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll

let p_r, p_s, p_t = (0.3, 0.85, 0.45)

let h0_closed_form () =
  Common.section "H0 on symmetric databases: the Sec. 8 closed form scales polynomially";
  let rows =
    List.map
      (fun n ->
        let v = ref 0.0 in
        let dt = Common.timed (fun () -> v := Sym.Closed_forms.h0 ~n ~p_r ~p_s ~p_t) in
        [ string_of_int n; Common.g !v; Common.pretty_time dt ])
      [ 10; 30; 100; 300; 1000 ]
  in
  Common.table ([ "n"; "p(H0)"; "time (O(n²) sum)" ] :: rows)

let cross_validation () =
  Common.section "three-way agreement: closed form = FO² cell algorithm = enumeration";
  let rows =
    List.map
      (fun n ->
        let db = Sym.Sym_db.make ~n [ ("R", 1, p_r); ("S", 2, p_s); ("T", 1, p_t) ] in
        let cf = Sym.Closed_forms.h0 ~n ~p_r ~p_s ~p_t in
        let wf = Sym.Wfomc.probability db Q.h0_forall.Q.query in
        let brute =
          if n <= 3 then
            Common.f6 (L.Brute_force.probability (Sym.Sym_db.to_tid db) Q.h0_forall.Q.query)
          else "skipped"
        in
        [ string_of_int n; Common.f6 cf; Common.f6 wf; brute ])
      [ 1; 2; 3; 8; 16 ]
  in
  Common.table ([ "n"; "closed form"; "cell algorithm"; "enumeration" ] :: rows)

let fo2_zoo () =
  Common.section "FO² sentences on a symmetric database (all polynomial, Thm. 8.1)";
  let n = 20 in
  let db = Sym.Sym_db.make ~n [ ("R", 1, 0.6); ("S", 2, 0.25) ] in
  let rows =
    List.map
      (fun (name, text) ->
        let q = L.Parser.parse_sentence text in
        let stats = Sym.Wfomc.fresh_stats () in
        let v = ref 0.0 in
        let dt = Common.timed (fun () -> v := Sym.Wfomc.probability ~stats db q) in
        [ name; Common.g !v; string_of_int stats.Sym.Wfomc.live_cells;
          string_of_int stats.Sym.Wfomc.compositions; Common.pretty_time dt ])
      [
        ("inclusion", "forall x y. S(x,y) => R(x)");
        ("totality ∀∃", "forall x. exists y. S(x,y)");
        ("smokers", "forall x y. R(x) && S(x,y) => R(y)");
        ("symmetry", "forall x y. S(x,y) => S(y,x)");
        ("kernel ∃∀", "exists x. forall y. S(x,y)");
      ]
  in
  Common.table ([ "sentence"; Printf.sprintf "p (n=%d)" n; "live cells"; "terms"; "time" ] :: rows)

let symmetric_vs_asymmetric () =
  Common.section "the same H0, symmetric vs arbitrary database (where the magic stops)";
  let n = 8 in
  let sym_db = Sym.Sym_db.make ~n [ ("R", 1, p_r); ("S", 2, p_s); ("T", 1, p_t) ] in
  let v = ref 0.0 in
  let t_sym = Common.timed (fun () -> v := Sym.Wfomc.probability sym_db Q.h0_forall.Q.query) in
  Printf.printf "symmetric n=%d: p = %.6g via cells in %s\n" n !v (Common.pretty_time t_sym);
  let db = Gen.h0_db ~seed:1 ~n () in
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx Q.h0_forall.Q.query in
  let t_ground =
    Common.timed ~repeat:1 (fun () ->
        ignore (Dpll.probability ~prob:(Lineage.prob ctx) f))
  in
  Printf.printf
    "arbitrary n=%d: exact grounded DPLL takes %s (and grows exponentially, see E2)\n" n
    (Common.pretty_time t_ground)

let run () =
  Common.header "E8: symmetric databases and FO² (Thm. 8.1)";
  h0_closed_form ();
  cross_validation ();
  fo2_zoo ();
  symmetric_vs_asymmetric ()

let bechamel_tests =
  let db = Sym.Sym_db.make ~n:20 [ ("R", 1, p_r); ("S", 2, p_s); ("T", 1, p_t) ] in
  [
    Bechamel.Test.make ~name:"e8/h0-closed-form-n300"
      (Bechamel.Staged.stage (fun () -> Sym.Closed_forms.h0 ~n:300 ~p_r ~p_s ~p_t));
    Bechamel.Test.make ~name:"e8/wfomc-h0-n20"
      (Bechamel.Staged.stage (fun () -> Sym.Wfomc.probability db Q.h0_forall.Q.query));
  ]
