(* E4 — the inclusion–exclusion rule (Sec. 5, Thm. 5.1): Q_J is computable
   only with I/E; Q_W additionally needs cancellation of equivalent terms.
   We show the rule firing, the ablations failing, and the values agreeing
   with grounded inference. *)

module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let db_for q ~seed ~n =
  let specs =
    List.map
      (fun (name, arity) -> Gen.spec ~density:0.9 name arity)
      (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size:n specs

let verdict q config =
  match Lift.classify ~config q with
  | Lift.Safe -> "safe"
  | Lift.Unsafe_by_rules _ -> "FAILS"
  | Lift.Unsupported _ -> "unsupported"

let ablation_table () =
  Common.section "rule ablation (classification)";
  let rows =
    List.map
      (fun (e : Q.entry) ->
        [ e.Q.name;
          verdict e.Q.query Lift.basic_rules_only;
          verdict e.Q.query Lift.no_cancellation;
          verdict e.Q.query Lift.default_config ])
      [ Q.q_hier; Q.q_j; Q.q_w ]
  in
  Common.table ([ "query"; "basic rules"; "+I/E, no cancel"; "full rules" ] :: rows)

let correctness_and_stats () =
  Common.section "values and rule-usage statistics (vs grounded DPLL)";
  let rows =
    List.map
      (fun (e : Q.entry) ->
        let db = db_for e.Q.query ~seed:17 ~n:3 in
        let stats = Lift.fresh_stats () in
        let p_lift = Lift.probability ~stats db e.Q.query in
        let ctx = Lineage.create db in
        let p_dpll =
          Dpll.probability ~prob:(Lineage.prob ctx) (Lineage.of_query ctx e.Q.query)
        in
        [ e.Q.name;
          Common.f6 p_lift;
          Common.f6 p_dpll;
          string_of_int stats.Lift.ie_expansions;
          string_of_int stats.Lift.ie_terms;
          string_of_int stats.Lift.cancelled_terms ])
      [ Q.q_hier; Q.q_j; Q.q_w ]
  in
  Common.table
    ([ "query"; "lifted"; "dpll"; "I/E uses"; "I/E terms"; "cancelled" ] :: rows)

let scaling () =
  Common.section "Q_J scaling (lifted is polynomial; grounded DPLL is not needed but compared)";
  let rows =
    List.map
      (fun n ->
        let db = db_for Q.q_j.Q.query ~seed:n ~n in
        let p = ref 0.0 in
        let t_lift = Common.timed (fun () -> p := Lift.probability db Q.q_j.Q.query) in
        let grounded =
          if n <= 6 then begin
            let ctx = Lineage.create db in
            let f = Lineage.of_query ctx Q.q_j.Q.query in
            let t =
              Common.timed ~repeat:1 (fun () ->
                  ignore (Dpll.probability ~prob:(Lineage.prob ctx) f))
            in
            Common.pretty_time t
          end
          else "skipped"
        in
        [ string_of_int n; Common.f6 !p; Common.pretty_time t_lift; grounded ])
      [ 3; 5; 10; 30; 100; 300 ]
  in
  Common.table ([ "n"; "p(Q_J)"; "lifted"; "DPLL" ] :: rows)

let run () =
  Common.header "E4: inclusion-exclusion and cancellation (Q_J, Q_W)";
  ablation_table ();
  correctness_and_stats ();
  scaling ()

let bechamel_tests =
  let db = db_for Q.q_j.Q.query ~seed:17 ~n:30 in
  let db_w = db_for Q.q_w.Q.query ~seed:17 ~n:10 in
  [
    Bechamel.Test.make ~name:"e4/lifted-qj-n30"
      (Bechamel.Staged.stage (fun () -> Lift.probability db Q.q_j.Q.query));
    Bechamel.Test.make ~name:"e4/lifted-qw-n10"
      (Bechamel.Staged.stage (fun () -> Lift.probability db_w Q.q_w.Q.query));
  ]
