bench/e12_engine_ablation.ml: Bechamel Common List Printf Probdb_core Probdb_engine Probdb_logic Probdb_workload String
