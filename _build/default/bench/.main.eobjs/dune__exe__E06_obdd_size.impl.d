bench/e06_obdd_size.ml: Bechamel Common Float List Printf Probdb_boolean Probdb_dpll Probdb_kc Probdb_lineage Probdb_logic Probdb_workload
