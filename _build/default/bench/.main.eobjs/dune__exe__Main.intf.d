bench/main.mli:
