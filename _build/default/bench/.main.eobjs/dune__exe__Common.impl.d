bench/common.ml: Analyze Bechamel Benchmark Float Hashtbl Instance List Measure Option Printf String Test Time Toolkit Unix
