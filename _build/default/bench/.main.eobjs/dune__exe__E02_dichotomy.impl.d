bench/e02_dichotomy.ml: Bechamel Common Format List Option Printf Probdb_boolean Probdb_core Probdb_dpll Probdb_lifted Probdb_lineage Probdb_logic Probdb_workload
