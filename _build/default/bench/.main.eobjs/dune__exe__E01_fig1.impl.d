bench/e01_fig1.ml: Bechamel Common Float List Printf Probdb_boolean Probdb_core Probdb_dpll Probdb_engine Probdb_lifted Probdb_lineage Probdb_logic
