bench/e05_plan_bounds.ml: Bechamel Common Float List Printf Probdb_core Probdb_logic Probdb_plans Probdb_workload
