bench/e08_symmetric.ml: Bechamel Common List Printf Probdb_dpll Probdb_lineage Probdb_logic Probdb_symmetric Probdb_workload
