bench/e03_classifier.ml: Bechamel Common List Printf Probdb_lifted Probdb_logic Probdb_workload
