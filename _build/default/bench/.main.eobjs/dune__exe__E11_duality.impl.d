bench/e11_duality.ml: Common Float Format List Probdb_core Probdb_engine Probdb_lifted Probdb_logic Probdb_workload
