bench/e10_approximation.ml: Bechamel Common Float List Option Printf Probdb_approx Probdb_dpll Probdb_lineage Probdb_logic Probdb_workload
