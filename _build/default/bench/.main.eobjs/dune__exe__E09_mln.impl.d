bench/e09_mln.ml: Array Bechamel Bool Common List Printf Probdb_boolean Probdb_core Probdb_logic Probdb_mln
