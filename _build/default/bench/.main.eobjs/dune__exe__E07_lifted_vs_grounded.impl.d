bench/e07_lifted_vs_grounded.ml: Bechamel Common Float Format List Printf Probdb_dpll Probdb_lifted Probdb_lineage Probdb_logic Probdb_workload
