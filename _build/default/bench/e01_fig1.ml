(* E1 — Fig. 1 / Example 2.1: the inclusion-constraint query on the paper's
   own 9-tuple TID, evaluated by every exact method, against the closed-form
   product the paper derives. *)

module Core = Probdb_core
module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll
module E = Probdb_engine.Engine

let p_vals = [ 0.5; 0.6; 0.7 ]
let q_vals = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ]

let fig1_tid () =
  let a i = Core.Value.Str (Printf.sprintf "a%d" i) in
  let b i = Core.Value.Str (Printf.sprintf "b%d" i) in
  let r =
    Core.Relation.make (Core.Schema.make "R" [ "x" ])
      (List.mapi (fun i p -> ([ a (i + 1) ], p)) p_vals)
  in
  let s_tuples = [ (1, 1); (1, 2); (2, 3); (2, 4); (2, 5); (4, 6) ] in
  let s =
    Core.Relation.make (Core.Schema.make "S" [ "x"; "y" ])
      (List.map2 (fun (x, y) q -> ([ a x; b y ], q)) s_tuples q_vals)
  in
  Core.Tid.make [ r; s ]

let closed_form () =
  let p1, p2 = (List.nth p_vals 0, List.nth p_vals 1) in
  let q i = List.nth q_vals (i - 1) in
  (p1 +. ((1. -. p1) *. (1. -. q 1) *. (1. -. q 2)))
  *. (p2 +. ((1. -. p2) *. (1. -. q 3) *. (1. -. q 4) *. (1. -. q 5)))
  *. (1. -. q 6)

let query = L.Parser.parse_sentence "forall x y. S(x,y) => R(x)"

let run () =
  Common.header "E1: Example 2.1 on the Fig. 1 TID";
  let db = fig1_tid () in
  Printf.printf "query: %s\n" (L.Fo.to_string query);
  Printf.printf "TID: %d tuples, %d possible worlds\n"
    (Core.Tid.support_size db) (Core.Worlds.count db);
  let ctx = Lineage.create db in
  let lineage = Lineage.of_query ctx query in
  let rows =
    [
      ("paper closed form", closed_form (), 0.0);
      (let v, t = Common.time (fun () -> L.Brute_force.probability db query) in
       ("world enumeration (2^9)", v, t));
      (let v, t = Common.time (fun () -> Lift.probability db query) in
       ("lifted inference", v, t));
      (let v, t =
         Common.time (fun () ->
             Probdb_boolean.Brute_wmc.probability (Lineage.prob ctx) lineage)
       in
       ("lineage + brute WMC", v, t));
      (let v, t =
         Common.time (fun () -> Dpll.probability ~prob:(Lineage.prob ctx) lineage)
       in
       ("lineage + DPLL", v, t));
      (let v, t = Common.time (fun () -> E.probability db query) in
       ("engine (auto)", v, t));
    ]
  in
  Common.table
    ([ "method"; "p(Q)"; "time" ]
    :: List.map
         (fun (name, v, t) ->
           [ name; Printf.sprintf "%.10f" v; (if t = 0.0 then "-" else Common.pretty_time t) ])
         rows);
  let reference = closed_form () in
  let max_err =
    List.fold_left (fun acc (_, v, _) -> Float.max acc (Float.abs (v -. reference))) 0.0 rows
  in
  Printf.printf "max deviation from closed form: %.2e\n" max_err

let bechamel_tests =
  let db = fig1_tid () in
  [
    Bechamel.Test.make ~name:"e1/lifted-example-2.1"
      (Bechamel.Staged.stage (fun () -> Lift.probability db query));
  ]
