(* E5 — oblivious bounds from extensional plans (Thm. 6.1): on the #P-hard
   H0, every plan upper-bounds the true probability, the dissociated
   database lower-bounds it, and taking the best bound over all plans
   tightens the bracket. *)

module Core = Probdb_core
module L = Probdb_logic
module P = Probdb_plans
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let h0_cq () =
  match L.Ucq.of_sentence Q.h0.Q.query with
  | [ cq ], L.Ucq.Direct -> cq
  | _ -> assert false

let bracket_table () =
  Common.section "bracket quality on H0 (exact by enumeration for reference)";
  let cq = h0_cq () in
  let rows =
    List.map
      (fun seed ->
        let db =
          Gen.random_tid ~seed ~domain_size:3
            [ Gen.spec ~density:0.9 "R" 1; Gen.spec ~density:0.9 "S" 2;
              Gen.spec ~density:0.9 "T" 1 ]
        in
        let truth = L.Brute_force.probability db Q.h0.Q.query in
        let b = P.Bounds.bracket db cq in
        [ string_of_int seed;
          Common.f4 b.P.Bounds.lower;
          Common.f4 truth;
          Common.f4 b.P.Bounds.upper;
          Common.f4 (b.P.Bounds.upper -. b.P.Bounds.lower);
          string_of_int b.P.Bounds.plans_tried ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Common.table ([ "seed"; "lower"; "exact"; "upper"; "width"; "plans" ] :: rows)

let min_over_plans () =
  Common.section "single plan vs min-over-plans (the optimisation of Sec. 6)";
  let cq = h0_cq () in
  let db =
    Gen.random_tid ~seed:42 ~domain_size:4
      [ Gen.spec ~density:0.9 "R" 1; Gen.spec ~density:0.9 "S" 2;
        Gen.spec ~density:0.9 "T" 1 ]
  in
  let truth = L.Brute_force.probability db Q.h0.Q.query in
  let plans = P.Plan.enumerate cq in
  let values =
    List.map (fun plan -> (P.Plan.to_string plan, P.Plan.boolean_prob db plan)) plans
  in
  let rows =
    List.map (fun (s, v) -> [ s; Common.f4 v; Common.f4 (v -. truth) ]) values
  in
  Common.table ([ "plan"; "value"; "excess over exact" ] :: rows);
  let best = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity values in
  Printf.printf "exact = %.4f; best (min) upper bound = %.4f\n" truth best

let scaling () =
  Common.section "plan bounds scale where exact inference cannot (H0, larger n)";
  let cq = h0_cq () in
  let rows =
    List.map
      (fun n ->
        let db = Gen.h0_db ~seed:n ~n () in
        let b = ref { P.Bounds.lower = 0.; upper = 0.; exact = None; plans_tried = 0 } in
        let dt = Common.timed ~repeat:1 (fun () -> b := P.Bounds.bracket db cq) in
        [ string_of_int n;
          Common.f4 !b.P.Bounds.lower;
          Common.f4 !b.P.Bounds.upper;
          Common.pretty_time dt ])
      [ 5; 10; 20; 40 ]
  in
  Common.table ([ "n"; "lower"; "upper"; "time (all plans)" ] :: rows)

let run () =
  Common.header "E5: upper/lower bounds from query plans (Thm. 6.1)";
  bracket_table ();
  min_over_plans ();
  scaling ()

let bechamel_tests =
  let cq = h0_cq () in
  let db = Gen.h0_db ~seed:3 ~n:15 () in
  [
    Bechamel.Test.make ~name:"e5/bracket-h0-n15"
      (Bechamel.Staged.stage (fun () -> P.Bounds.bracket db cq));
  ]
