(* E7 — lifted beats grounded (Thm. 7.1(ii)): Q_W is liftable (polynomial
   time) but the traces of DPLL-style algorithms on its lineage — i.e. the
   decision-DNNFs — grow super-polynomially with the domain. *)

module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Lineage = Probdb_lineage.Lineage
module Dpll = Probdb_dpll.Dpll
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries

let db_for ~n ~seed =
  Gen.random_tid ~seed ~domain_size:n
    [ Gen.spec ~density:1.0 "R" 1; Gen.spec ~density:1.0 "S1" 2;
      Gen.spec ~density:1.0 "S2" 2; Gen.spec ~density:1.0 "S3" 2;
      Gen.spec ~density:1.0 "T" 1 ]

let run () =
  Common.header "E7: lifted inference vs grounded inference on the liftable Q_W";
  Printf.printf "query: %s\nlifted verdict: %s\n" Q.q_w.Q.text
    (Format.asprintf "%a" Lift.pp_verdict (Lift.classify Q.q_w.Q.query));
  let rows =
    List.map
      (fun n ->
        let db = db_for ~n ~seed:n in
        let p_lift = ref 0.0 in
        let t_lift = Common.timed (fun () -> p_lift := Lift.probability db Q.q_w.Q.query) in
        let grounded =
          if n > 4 then [ "skipped"; "skipped"; "skipped" ]
          else begin
            let ctx = Lineage.create db in
            let f = Lineage.of_query ctx Q.q_w.Q.query in
            let cap = 200_000 in
            let config = { Dpll.default_config with Dpll.max_decisions = cap } in
            let r = ref None in
            let t =
              Common.timed ~repeat:1 (fun () ->
                  r :=
                    (match Dpll.count ~config ~prob:(Lineage.prob ctx) f with
                    | result -> Some result
                    | exception Dpll.Decision_limit _ -> None))
            in
            match !r with
            | None -> [ Printf.sprintf "> %d (cap)" cap; "gave up"; Common.pretty_time t ]
            | Some r ->
                let agrees = Float.abs (r.Dpll.prob -. !p_lift) < 1e-6 in
                [ string_of_int r.Dpll.stats.Dpll.decisions;
                  string_of_int r.Dpll.trace_size ^ (if agrees then "" else " (MISMATCH)");
                  Common.pretty_time t ]
          end
        in
        [ string_of_int n; Common.f6 !p_lift; Common.pretty_time t_lift ] @ grounded)
      [ 2; 3; 4; 6; 10; 20; 40 ]
  in
  Common.table
    ([ "n"; "p(Q_W)"; "lifted time"; "DPLL decisions"; "trace (≈ d-DNNF size)"; "DPLL time" ]
    :: rows);
  Printf.printf
    "(the paper's Thm. 7.1(ii): for such liftable UCQs every decision-DNNF is\n\
    \ 2^Ω(√n); lifted inference stays polynomial and keeps scaling)\n"

let bechamel_tests =
  let db = db_for ~n:20 ~seed:5 in
  [
    Bechamel.Test.make ~name:"e7/lifted-qw-n20"
      (Bechamel.Staged.stage (fun () -> Lift.probability db Q.q_w.Q.query));
  ]
