(* Uncertain sensor data (the classic probabilistic-database motivation):
   unreliable sensors may have detected events in zones. The coverage
   query "every zone is watched by a working sensor" is H0-shaped and
   #P-hard, so this example shows the whole toolbox from the paper in one
   place: exact grounded inference while it fits, plan bounds (Sec. 6),
   Karp-Luby sampling, and the symmetric closed form (Sec. 8) for the
   fleet-design variant.

   Run with: dune exec examples/sensor_network.exe *)

module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine
module P = Probdb_plans
module Sym = Probdb_symmetric
module Gen = Probdb_workload.Gen

let () =
  Format.printf "== Sensor network coverage under uncertainty ==@.@.";
  (* Broken(s): sensor s is broken. Covers(s,z): link from sensor to zone
     is up. Dark(z): zone z has no independent backup. The "blackout"
     event: some sensor is broken, its link to some zone is up... we use
     the H0 shape: ∃s∃z Broken(s) ∧ Covers(s,z) ∧ Dark(z). *)
  let n = 7 in
  let db =
    Gen.random_tid ~seed:2026 ~domain_size:n
      [ Gen.spec ~density:1.0 "Broken" 1;
        Gen.spec ~density:0.8 "Covers" 2;
        Gen.spec ~density:1.0 "Dark" 1 ]
  in
  let blackout =
    L.Parser.parse_sentence "exists s z. Broken(s) && Covers(s,z) && Dark(z)"
  in
  Format.printf "%d sensors/zones, %d uncertain tuples@.@." n (Core.Tid.support_size db);

  (* The engine: lifted inference refuses (the query is non-hierarchical,
     hence #P-hard), grounded compilation answers exactly at this size. *)
  let r = E.evaluate db blackout in
  Format.printf "p(blackout risk) = %a@.@." E.pp_report r;

  (* Plan bounds (Thm. 6.1): instant, any scale. *)
  (match L.Ucq.of_sentence blackout with
  | [ cq ], L.Ucq.Direct ->
      let b = P.Bounds.bracket db cq in
      Format.printf "plan bounds: %.6f ≤ p ≤ %.6f (%d plans, no inference needed)@."
        b.P.Bounds.lower b.P.Bounds.upper b.P.Bounds.plans_tried
  | _ -> ());

  (* Karp-Luby sampling: scales to sizes where exact methods die. *)
  let big =
    Gen.random_tid ~seed:2027 ~domain_size:40
      [ Gen.spec ~density:1.0 "Broken" 1;
        Gen.spec ~density:0.8 "Covers" 2;
        Gen.spec ~density:1.0 "Dark" 1 ]
  in
  let config =
    { E.default_config with
      E.strategies = [ E.Karp_luby ]; E.kl_samples = 50_000 }
  in
  let r_big = E.evaluate ~config big blackout in
  Format.printf "@.at n = 40 (%d tuples), sampling takes over:@  %a@.@."
    (Core.Tid.support_size big) E.pp_report r_big;

  (* Fleet design: if every sensor/link/zone were identical (a symmetric
     database, Sec. 8), coverage probability has a polynomial closed form —
     evaluate it across fleet sizes to pick a deployment. *)
  Format.printf "fleet design with identical components (symmetric closed form):@.";
  Format.printf "  %-6s %-12s@." "n" "p(no blackout)";
  List.iter
    (fun n ->
      (* no blackout = ∀s∀z ¬Broken ∨ ¬Covers ∨ ¬Dark; by symmetry of the
         closed form this is H0 with complemented probabilities *)
      let p = Sym.Closed_forms.h0 ~n ~p_r:(1. -. 0.1) ~p_s:(1. -. 0.8) ~p_t:(1. -. 0.3) in
      Format.printf "  %-6d %.6f@." n p)
    [ 5; 10; 20; 50; 100 ];
  Format.printf
    "@.(10%%-broken sensors, 80%%-up links, 30%%-dark zones; Sec. 8's O(n²) sum —@.\
     the same query that is #P-hard on the asymmetric fleet above)@."
