(* Quickstart: build a tuple-independent database, ask Boolean and
   non-Boolean queries, and look at what the engine did.

   Run with: dune exec examples/quickstart.exe *)

module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine

let () =
  (* A TID is a set of relations whose tuples carry marginal probabilities
     (Fig. 1 of the paper). Here: people who *may* be researchers, and
     papers they *may* have authored. *)
  let person name = Core.Value.str name in
  let paper id = Core.Value.int id in
  let researcher =
    Core.Relation.make
      (Core.Schema.make "Researcher" [ "who" ])
      [ ([ person "ada" ], 0.9); ([ person "bob" ], 0.4); ([ person "cam" ], 0.75) ]
  in
  let author =
    Core.Relation.make
      (Core.Schema.make "Author" [ "who"; "paper" ])
      [
        ([ person "ada"; paper 1 ], 0.8);
        ([ person "ada"; paper 2 ], 0.6);
        ([ person "bob"; paper 2 ], 0.5);
        ([ person "cam"; paper 3 ], 0.3);
      ]
  in
  let db = Core.Tid.make [ researcher; author ] in
  Format.printf "Database:@.%a@.@." Core.Tid.pp db;

  (* Boolean query: is some paper authored by a researcher? The concrete
     syntax is plain FO; quantified identifiers are variables. *)
  let q = L.Parser.parse_sentence "exists x y. Researcher(x) && Author(x,y)" in
  let report = E.evaluate db q in
  Format.printf "p(%a) =@.  %a@.@." L.Fo.pp q E.pp_report report;

  (* The query is hierarchical, so the engine used lifted inference: exact
     and polynomial-time. Compare with exhaustive enumeration: *)
  Format.printf "world enumeration agrees: %.9f@.@." (L.Brute_force.probability db q);

  (* Non-Boolean query: for each person, the probability that they are a
     researcher with at least one paper. *)
  let open_q = L.Parser.parse ~free:[ "x" ] "exists y. Researcher(x) && Author(x,y)" in
  Format.printf "Per-person marginals:@.";
  List.iter
    (fun (binding, r) ->
      Format.printf "  %s : %.6f (via %s)@."
        (String.concat ", " (List.map Core.Value.to_string binding))
        (E.value r.E.outcome) (E.strategy_name r.E.strategy))
    (E.answers ~free:[ "x" ] db open_q);

  (* A constraint-style query (Example 2.1): every authored paper has a
     researcher author — a universally quantified sentence. *)
  let constr = L.Parser.parse_sentence "forall x y. Author(x,y) => Researcher(x)" in
  Format.printf "@.p(every author is a researcher) = %.6f@." (E.probability db constr)
