examples/quickstart.ml: Format List Probdb_core Probdb_engine Probdb_logic String
