examples/quickstart.mli:
