examples/knowledge_base.ml: Format List Printf Probdb_core Probdb_logic Probdb_mln String
