examples/data_cleaning.ml: Format List Probdb_core Probdb_engine Probdb_logic Probdb_plans
