(* Knowledge-base construction (DeepDive-style, another motivating
   application from the paper's introduction): extracted facts carry
   extraction confidences, and domain knowledge is a soft constraint — a
   Markov Logic Network. Following Sec. 3 of the paper, the MLN is
   translated into a TID plus a hard constraint Γ, and queries are answered
   as conditional probabilities p(Q | Γ).

   Run with: dune exec examples/knowledge_base.exe *)

module Core = Probdb_core
module L = Probdb_logic
module Mln = Probdb_mln.Mln

let domain = [ Core.Value.str "acme"; Core.Value.str "globex" ]

let () =
  Format.printf "== Knowledge-base construction with soft rules ==@.@.";

  (* The soft rule of the paper's running example, adapted: a company that
     employs someone is probably active. Weight 3.9: odds of roughly 4:1. *)
  let rule =
    Mln.soft 3.9
      (L.Parser.parse ~free:[ "c"; "e" ] "Employs(c,e) => Active(c)")
  in
  (* A second rule: active companies typically employ someone (weaker). *)
  let rule2 =
    Mln.soft 1.8
      (L.Parser.parse ~free:[ "c" ] "Active(c) => (exists e. Employs(c,e))")
  in
  let mln = [ rule; rule2 ] in

  Format.printf "soft constraints:@.";
  List.iter
    (fun (s : Mln.soft) ->
      Format.printf "  %.1f  %a@." s.Mln.weight L.Fo.pp s.Mln.delta)
    mln;

  (* Direct MLN semantics (enumeration over the grounded Markov network). *)
  let q_active = L.Parser.parse_sentence "Active(acme)" in
  let q_if_employs =
    L.Parser.parse_sentence "Employs(acme,globex) => Active(acme)"
  in
  Format.printf "@.direct MLN semantics:@.";
  Format.printf "  P(Active(acme))                  = %.6f@."
    (Mln.probability ~domain mln q_active);
  Format.printf "  P(Employs(acme,globex) => Active(acme)) = %.6f@."
    (Mln.probability ~domain mln q_if_employs);

  (* Prop. 3.1: the same distribution as a TID conditioned on Γ. *)
  let tr = Mln.translate ~encoding:Mln.Or_encoding ~domain mln in
  Format.printf "@.Prop. 3.1 translation:@.";
  Format.printf "  auxiliary relations: %s@." (String.concat ", " tr.Mln.aux);
  Format.printf "  Γ = %a@." L.Fo.pp tr.Mln.gamma;
  Format.printf "  p_D(Q | Γ) for Q = Active(acme)  = %.6f@."
    (Mln.conditional_probability tr.Mln.db ~given:tr.Mln.gamma q_active);

  (* Conditioning on extracted evidence: the extractor is 90%% sure that
     acme employs globex. Evidence is just another (near-hard) soft rule. *)
  let evidence = Mln.soft 9.0 (L.Parser.parse "Employs(acme,globex)") in
  let with_evidence = evidence :: mln in
  Format.printf "@.after adding evidence Employs(acme,globex) at odds 9:1:@.";
  Format.printf "  P(Active(acme))                  = %.6f  (was %.6f)@."
    (Mln.probability ~domain with_evidence q_active)
    (Mln.probability ~domain mln q_active);

  (* The translated database is *symmetric* in the Sec. 8 sense: every
     tuple of each relation has the same probability. *)
  Format.printf "@.translated TID is symmetric (Sec. 8):@.";
  List.iter
    (fun rel ->
      let probs =
        List.map snd (Core.Relation.rows rel) |> List.sort_uniq compare
      in
      Format.printf "  %-12s %d tuples, probabilities {%s}@."
        (Core.Relation.name rel)
        (Core.Relation.cardinal rel)
        (String.concat ", " (List.map (Printf.sprintf "%.4g") probs)))
    (Core.Tid.relations tr.Mln.db)
