(* Data cleaning / deduplication (one of the motivating applications in the
   paper's introduction, citing ProbClean): a matcher has produced uncertain
   "same-entity" links between customer records; we query the probabilistic
   database that the links induce.

   Run with: dune exec examples/data_cleaning.exe *)

module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine
module P = Probdb_plans

let v = Core.Value.str

let () =
  (* Customer records from two source systems. Deterministic facts are
     tuples with probability 1. *)
  let record =
    Core.Relation.make
      (Core.Schema.make "Record" [ "id" ])
      (List.map (fun r -> ([ v r ], 1.0))
         [ "crm_17"; "crm_42"; "web_03"; "web_11"; "web_29" ])
  in
  (* The matcher's output: pairs of records that may denote the same
     customer, with its confidence as the tuple probability. *)
  let same_as =
    Core.Relation.make
      (Core.Schema.make "SameAs" [ "a"; "b" ])
      [
        ([ v "crm_17"; v "web_03" ], 0.92);
        ([ v "crm_17"; v "web_11" ], 0.15);
        ([ v "crm_42"; v "web_11" ], 0.87);
        ([ v "crm_42"; v "web_29" ], 0.45);
        ([ v "web_03"; v "web_11" ], 0.08);
      ]
  in
  (* Records flagged as VIP customers in either system, also uncertain
     (they came from a fuzzy attribute match). *)
  let vip =
    Core.Relation.make
      (Core.Schema.make "Vip" [ "id" ])
      [ ([ v "crm_17" ], 0.95); ([ v "web_29" ], 0.6) ]
  in
  (* Records with recent activity, from a noisy log join. *)
  let active =
    Core.Relation.make
      (Core.Schema.make "Active" [ "id" ])
      [ ([ v "web_03" ], 0.7); ([ v "web_11" ], 0.55); ([ v "web_29" ], 0.8) ]
  in
  let db = Core.Tid.make [ record; same_as; vip; active ] in

  Format.printf "== Deduplication under uncertainty ==@.@.";

  (* Q1: is there any duplicate at all? (Safe: single atom.) *)
  let q1 = L.Parser.parse_sentence "exists a b. SameAs(a,b)" in
  Format.printf "p(some duplicate exists)          = %.6f@." (E.probability db q1);

  (* Q2: is some VIP involved in a duplicate? Hierarchical join: the engine
     answers by lifted inference. *)
  let q2 = L.Parser.parse_sentence "exists a b. Vip(a) && SameAs(a,b)" in
  let r2 = E.evaluate db q2 in
  Format.printf "p(a VIP has a duplicate)          = %.6f  [%s]@."
    (E.value r2.E.outcome) (E.strategy_name r2.E.strategy);

  (* Q3: per-record probability of being duplicated — a non-Boolean query. *)
  Format.printf "@.per-record duplication marginals:@.";
  let q3 = L.Parser.parse ~free:[ "a" ] "exists b. SameAs(a,b) || SameAs(b,a)" in
  List.iter
    (fun (binding, r) ->
      Format.printf "  %-8s %.6f@."
        (Core.Value.to_string (List.hd binding))
        (E.value r.E.outcome))
    (E.answers ~free:[ "a" ] db q3);

  (* Q4: a *hard* query — a VIP record linked to a recently-active record.
     This is H0-shaped (non-hierarchical), hence #P-hard: lifted inference
     refuses, the engine answers exactly by grounded compilation, and the
     Sec. 6 plan bounds bracket it with no inference at all. *)
  let q4 = L.Parser.parse_sentence "exists a b. Vip(a) && SameAs(a,b) && Active(b)" in
  let r4 = E.evaluate db q4 in
  Format.printf "@.p(VIP linked to an active record) = %.6f  [%s]@."
    (E.value r4.E.outcome) (E.strategy_name r4.E.strategy);
  (match L.Ucq.of_sentence q4 with
  | [ cq ], L.Ucq.Direct ->
      let b = P.Bounds.bracket db cq in
      Format.printf "  plan bounds (Thm 6.1): [%.6f, %.6f] over %d plans@."
        b.P.Bounds.lower b.P.Bounds.upper b.P.Bounds.plans_tried
  | _ -> ());

  (* Q5: a cleanliness constraint — no record matches two distinct CRM
     records. How likely is the matcher's output to be consistent? *)
  let q5 =
    L.Parser.parse_sentence
      "forall a b. SameAs(a,b) && SameAs(b,a) => Vip(a)"
  in
  Format.printf "@.p(symmetric links only among VIPs) = %.6f@." (E.probability db q5)
