type estimate = { mean : float; std_error : float; samples : int; union_weight : float }

let half_width_95 e = 1.96 *. e.std_error

let clause_weight prob clause = List.fold_left (fun acc v -> acc *. prob v) 1.0 clause

let all_vars clauses = List.concat clauses |> List.sort_uniq Int.compare

let satisfies assignment clause = List.for_all assignment clause

let estimate ?(seed = 42) ~samples ~prob clauses =
  if samples <= 0 then invalid_arg "Karp_luby.estimate: need at least one sample";
  match clauses with
  | [] -> { mean = 0.0; std_error = 0.0; samples; union_weight = 0.0 }
  | _ ->
      let clauses = Array.of_list clauses in
      let weights = Array.map (clause_weight prob) clauses in
      let union_weight = Array.fold_left ( +. ) 0.0 weights in
      if union_weight = 0.0 then
        { mean = 0.0; std_error = 0.0; samples; union_weight }
      else begin
        let vars = all_vars (Array.to_list clauses) in
        List.iter
          (fun v ->
            let p = prob v in
            if p < 0.0 || p > 1.0 then
              invalid_arg "Karp_luby.estimate: non-standard probability")
          vars;
        let cumulative = Array.make (Array.length weights) 0.0 in
        let _ =
          Array.fold_left
            (fun (i, acc) w ->
              let acc = acc +. w in
              cumulative.(i) <- acc;
              (i + 1, acc))
            (0, 0.0) weights
        in
        let rng = Random.State.make [| seed |] in
        let pick_clause () =
          let r = Random.State.float rng union_weight in
          let rec find i = if r <= cumulative.(i) || i = Array.length cumulative - 1 then i else find (i + 1) in
          find 0
        in
        let assignment = Hashtbl.create 16 in
        let sum = ref 0.0 and sum_sq = ref 0.0 in
        for _ = 1 to samples do
          let i = pick_clause () in
          Hashtbl.reset assignment;
          List.iter (fun v -> Hashtbl.replace assignment v true) clauses.(i);
          List.iter
            (fun v ->
              if not (Hashtbl.mem assignment v) then
                Hashtbl.replace assignment v (Random.State.float rng 1.0 < prob v))
            vars;
          let lookup v = Hashtbl.find assignment v in
          let n = Array.fold_left (fun acc c -> if satisfies lookup c then acc + 1 else acc) 0 clauses in
          let z = 1.0 /. float_of_int n in
          sum := !sum +. z;
          sum_sq := !sum_sq +. (z *. z)
        done;
        let m = float_of_int samples in
        let mean_z = !sum /. m in
        let var_z = Float.max 0.0 ((!sum_sq /. m) -. (mean_z *. mean_z)) in
        { mean = union_weight *. mean_z;
          std_error = union_weight *. sqrt (var_z /. m);
          samples;
          union_weight }
      end

let exact_via_sampling_identity ~prob clauses =
  match clauses with
  | [] -> 0.0
  | _ ->
      let vars = all_vars clauses in
      if List.length vars > 20 then
        invalid_arg "Karp_luby.exact_via_sampling_identity: too many variables";
      let assignment = Hashtbl.create 16 in
      let lookup v = Hashtbl.find assignment v in
      let rec go = function
        | [] ->
            let p =
              List.fold_left
                (fun acc v -> acc *. if lookup v then prob v else 1.0 -. prob v)
                1.0 vars
            in
            if List.exists (satisfies lookup) clauses then p else 0.0
        | v :: rest ->
            Hashtbl.replace assignment v true;
            let a = go rest in
            Hashtbl.replace assignment v false;
            a +. go rest
      in
      go vars
