module Core = Probdb_core

type estimate = { mean : float; std_error : float; samples : int }

let half_width_95 e = 1.96 *. e.std_error

let sample_world rng db =
  List.fold_left
    (fun w (rel, tuple, p) ->
      if Random.State.float rng 1.0 < p then Core.World.add (rel, tuple) w else w)
    Core.World.empty (Core.Tid.support db)

let estimate ?(seed = 42) ~samples db q =
  if samples <= 0 then invalid_arg "Mc.estimate: need at least one sample";
  if not (Core.Tid.is_standard db) then
    invalid_arg "Mc.estimate: non-standard probabilities cannot be sampled";
  if not (Probdb_logic.Fo.is_sentence q) then invalid_arg "Mc.estimate: open formula";
  let rng = Random.State.make [| seed |] in
  let hits = ref 0 in
  for _ = 1 to samples do
    let w = sample_world rng db in
    if Probdb_logic.Semantics.holds_in_tid db w q then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int samples in
  { mean;
    std_error = sqrt (mean *. (1.0 -. mean) /. float_of_int samples);
    samples }
