(** Naive Monte-Carlo estimation of PQE.

    Samples possible worlds by independent coin flips per listed tuple
    (Eq. (3) of the paper) and evaluates the query on each sample. Works
    for arbitrary FO sentences and is the approximation baseline of the
    benchmark suite; the relative error degrades as [p_D(Q) → 0], which is
    why Karp–Luby exists ({!Karp_luby}). *)

type estimate = {
  mean : float;
  std_error : float;  (** √(p̂(1-p̂)/N) *)
  samples : int;
}

val half_width_95 : estimate -> float
(** 1.96 standard errors. *)

val estimate :
  ?seed:int -> samples:int -> Probdb_core.Tid.t -> Probdb_logic.Fo.t -> estimate
(** Raises [Invalid_argument] on non-standard probabilities or open
    formulas. *)

val sample_world : Random.State.t -> Probdb_core.Tid.t -> Probdb_core.World.t
(** One possible world drawn from the TID (requires a standard TID). *)
