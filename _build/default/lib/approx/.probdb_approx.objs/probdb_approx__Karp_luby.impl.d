lib/approx/karp_luby.ml: Array Float Hashtbl Int List Random
