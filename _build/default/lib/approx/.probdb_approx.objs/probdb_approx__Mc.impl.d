lib/approx/mc.ml: List Probdb_core Probdb_logic Random
