lib/approx/mc.mli: Probdb_core Probdb_logic Random
