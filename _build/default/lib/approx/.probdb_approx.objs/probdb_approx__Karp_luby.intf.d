lib/approx/karp_luby.mli:
