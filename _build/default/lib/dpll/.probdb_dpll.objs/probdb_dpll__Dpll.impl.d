lib/dpll/dpll.ml: Array Fun Hashtbl Int List Option Probdb_boolean Probdb_kc Set
