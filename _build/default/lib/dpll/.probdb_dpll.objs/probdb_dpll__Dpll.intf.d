lib/dpll/dpll.mli: Probdb_boolean Probdb_kc
