lib/lifted/lift.mli: Format Logs Probdb_core Probdb_logic
