lib/lifted/lift.ml: Array Format Fun Hashtbl Int List Logs Option Printf Probdb_core Probdb_logic Seq Set String
