lib/plans/plan.mli: Format Probdb_core Probdb_logic Ptable
