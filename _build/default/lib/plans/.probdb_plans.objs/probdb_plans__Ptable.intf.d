lib/plans/ptable.mli: Format Probdb_core Probdb_logic
