lib/plans/bounds.ml: Float List Option Plan Probdb_core Probdb_lineage
