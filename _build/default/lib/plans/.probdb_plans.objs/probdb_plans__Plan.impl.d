lib/plans/plan.ml: Array Format Fun Hashtbl List Option Printf Probdb_core Probdb_logic Ptable Set String
