lib/plans/bounds.mli: Plan Probdb_core Probdb_logic
