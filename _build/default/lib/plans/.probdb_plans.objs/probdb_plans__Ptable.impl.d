lib/plans/ptable.ml: Format Hashtbl List Printf Probdb_core Probdb_logic String
