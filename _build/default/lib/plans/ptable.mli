(** Probabilistic intermediate tables for extensional plans.

    Sec. 6 of the paper: relations carry a probability column [P]; the two
    plan operators are the natural join (probabilities multiply) and the
    independent-project / group-by with the aggregate
    [u ⊕ v = 1-(1-u)(1-v)]. Columns are named by query variables. *)

type t = {
  vars : string list;  (** column names, in order *)
  rows : (Probdb_core.Tuple.t * float) list;  (** distinct tuples *)
}

val scan : Probdb_core.Tid.t -> Probdb_logic.Cq.atom -> t
(** Reads the atom's relation, keeps rows matching the atom's constants and
    repeated variables, and projects onto the distinct variables (first
    occurrence order). Raises [Invalid_argument] on complemented atoms. *)

val join : t -> t -> t
(** Natural join on shared columns; output probability is the product
    (the modified ⋈ of Sec. 6). *)

val project : string list -> t -> t
(** Group-by the kept columns, combining group probabilities with ⊕
    (the modified γ of Sec. 6). Raises [Invalid_argument] on unknown
    columns. *)

val boolean_prob : t -> float
(** For a zero-column table: the probability of its single row, or 0. *)

val pp : Format.formatter -> t -> unit
