module Core = Probdb_core
module Lineage = Probdb_lineage.Lineage

let upper_bound db plan = Plan.boolean_prob db plan

let dissociated_db db cq =
  let ctx = Lineage.create db in
  let clauses = Lineage.dnf_of_ucq ctx [ cq ] in
  let mult = Lineage.multiplicities clauses in
  let k_of rel tuple =
    match Lineage.var_of_fact ctx rel tuple with
    | None -> 0
    | Some id -> Option.value ~default:0 (List.assoc_opt id mult)
  in
  Core.Tid.map_probs
    (fun rel tuple p ->
      match k_of rel tuple with
      | 0 | 1 -> p
      | k -> 1.0 -. Float.pow (1.0 -. p) (1.0 /. float_of_int k))
    db

let lower_bound db cq plan = Plan.boolean_prob (dissociated_db db cq) plan

type bracket = { lower : float; upper : float; exact : float option; plans_tried : int }

let bracket ?max_plans db cq =
  let plans = Plan.enumerate ?max_plans cq in
  if plans = [] then invalid_arg "Bounds.bracket: no plans (empty query?)";
  let d1 = dissociated_db db cq in
  let step (lo, hi, exact) plan =
    let up = Plan.boolean_prob db plan in
    let down = Plan.boolean_prob d1 plan in
    let exact =
      match exact with
      | Some _ -> exact
      | None -> if Plan.is_safe plan then Some up else None
    in
    (Float.max lo down, Float.min hi up, exact)
  in
  let lower, upper, exact =
    List.fold_left step (Float.neg_infinity, Float.infinity, None) plans
  in
  { lower; upper; exact; plans_tried = List.length plans }
