(** Oblivious upper and lower bounds from extensional plans (Thm. 6.1).

    For a self-join-free Boolean CQ [Q] and any plan [P]:

    - [P(D) ≥ p_D(Q)] — every plan overestimates, so the minimum over all
      plans is a certified upper bound computable inside the engine even
      when PQE(Q) is #P-hard;
    - replacing each tuple probability [p] by [1 - (1-p)^(1/k)], where [k]
      is the number of occurrences of the tuple in the lineage DNF, yields a
      database [D₁] with [P(D₁) ≤ p_D(Q)] (Gatterbauer–Suciu). *)

val upper_bound : Probdb_core.Tid.t -> Plan.t -> float
(** The plan's value — an upper bound on the query probability. *)

val dissociated_db : Probdb_core.Tid.t -> Probdb_logic.Cq.t -> Probdb_core.Tid.t
(** The database [D₁] of the lower-bound construction: tuple probabilities
    are deflated by their lineage multiplicity. Tuples outside the lineage
    keep their probability (they cannot affect the plan's value). *)

val lower_bound : Probdb_core.Tid.t -> Probdb_logic.Cq.t -> Plan.t -> float
(** The plan evaluated on {!dissociated_db}. *)

type bracket = {
  lower : float;
  upper : float;
  exact : float option;  (** filled when some enumerated plan is safe *)
  plans_tried : int;
}

val bracket : ?max_plans:int -> Probdb_core.Tid.t -> Probdb_logic.Cq.t -> bracket
(** Enumerates plans and returns the best (max) lower bound and best (min)
    upper bound over all of them, plus the exact value if a safe plan was
    found among them. *)
