(** Read-once factorisation of monotone DNFs.

    A Boolean function is {e read-once} if it has a formula in which every
    variable appears exactly once; its probability then factors along the
    formula in linear time. Read-once lineages are the best case of query
    compilation — for hierarchical self-join-free CQs the lineage is always
    read-once, which is what makes the linear-size OBDDs of Thm. 7.1(i)(a)
    possible — and the paper points to Golumbic–Mintz–Rotics [34] for the
    recognition problem.

    This module implements the classical cograph-style recognition on the
    irredundant monotone DNF (the set of prime implicants):

    - if the co-occurrence graph of the variables is disconnected, the
      function is the disjunction of its components' sub-DNFs;
    - if its complement is disconnected, the function is a candidate
      conjunction of the projections onto the co-components, accepted after
      verifying that the DNF equals the product of the projections
      ({e normality});
    - a single variable is read-once; anything else is not. *)

val factor : int list list -> Probdb_boolean.Formula.t option
(** [factor clauses] takes a monotone DNF as sorted variable lists (use
    [Probdb_boolean.Formula.to_dnf] or [Probdb_lineage.Lineage.dnf_of_ucq],
    both of which apply absorption) and returns an equivalent read-once
    formula, or [None] if the function is not read-once. *)

val is_read_once : int list list -> bool

val probability : (int -> float) -> int list list -> float option
(** Linear-time probability through the factorisation; [None] when the DNF
    is not read-once. *)
