module F = Probdb_boolean.Formula
module Iset = Set.Make (Int)

let clause_subsumes small big = List.for_all (fun x -> List.mem x big) small

let absorb clauses =
  let clauses = List.sort_uniq (List.compare Int.compare) clauses in
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' -> (not (List.equal Int.equal c c')) && clause_subsumes c' c)
           clauses))
    clauses

let vars_of clauses = List.fold_left (fun acc c -> List.fold_left (fun a v -> Iset.add v a) acc c) Iset.empty clauses

(* Connected components of the co-occurrence relation: variables are
   connected when they share a clause. Union-find over variables. *)
let co_occurrence_components clauses =
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None | Some None -> v
    | Some (Some p) ->
        let r = find p in
        Hashtbl.replace parent v (Some r);
        r
  in
  let union a b =
    let ra, rb = (find a, find b) in
    if ra <> rb then Hashtbl.replace parent ra (Some rb)
  in
  Iset.iter (fun v -> if not (Hashtbl.mem parent v) then Hashtbl.add parent v None) (vars_of clauses);
  List.iter
    (function
      | [] | [ _ ] -> ()
      | v :: rest -> List.iter (fun w -> union v w) rest)
    clauses;
  let groups = Hashtbl.create 8 in
  Iset.iter
    (fun v ->
      let r = find v in
      Hashtbl.replace groups r (Iset.add v (Option.value ~default:Iset.empty (Hashtbl.find_opt groups r))))
    (vars_of clauses);
  Hashtbl.fold (fun _ s acc -> s :: acc) groups []

(* Co-components: connected components of the *complement* of the
   co-occurrence graph. Computed by refining a partition: start with all
   variables in one block and split, BFS-style, using non-adjacency. For
   the small variable counts of lineages a quadratic approach suffices:
   build the co-occurrence adjacency and run components on the
   complement. *)
let co_components clauses =
  let vars = Iset.elements (vars_of clauses) in
  let adjacent = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun v -> List.iter (fun w -> if v <> w then Hashtbl.replace adjacent (v, w) ()) c)
        c)
    clauses;
  let n = List.length vars in
  let arr = Array.of_list vars in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri, rj = (find i, find j) in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Hashtbl.mem adjacent (arr.(i), arr.(j))) then union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i v ->
      let r = find i in
      Hashtbl.replace groups r (Iset.add v (Option.value ~default:Iset.empty (Hashtbl.find_opt groups r))))
    arr;
  Hashtbl.fold (fun _ s acc -> s :: acc) groups []

let project block clauses =
  absorb
    (List.filter_map
       (fun c ->
         match List.filter (fun v -> Iset.mem v block) c with
         | [] -> None
         | c' -> Some c')
       clauses)

(* Normality: the DNF must equal the product of its co-component
   projections. *)
let product_equals clauses parts =
  let rec combos = function
    | [] -> [ [] ]
    | part :: rest ->
        let tails = combos rest in
        List.concat_map
          (fun clause -> List.map (fun tl -> List.sort_uniq Int.compare (clause @ tl)) tails)
          part
  in
  let product = absorb (combos parts) in
  List.equal (List.equal Int.equal) (absorb clauses) product

let rec factor_clauses clauses =
  match absorb clauses with
  | [] -> Some F.fls
  | [ [] ] -> Some F.tru
  | [ [ v ] ] -> Some (F.var v)
  | clauses -> (
      match co_occurrence_components clauses with
      | [] -> Some F.fls
      | _ :: _ :: _ as comps ->
          (* OR-decomposition: each clause lives entirely in one component *)
          let parts =
            List.map
              (fun block ->
                factor_clauses
                  (List.filter
                     (fun c -> match c with [] -> false | v :: _ -> Iset.mem v block)
                     clauses))
              comps
          in
          if List.exists Option.is_none parts then None
          else Some (F.disj (List.map Option.get parts))
      | [ _single ] -> (
          match co_components clauses with
          | [] | [ _ ] -> None (* connected and co-connected with > 1 variable *)
          | co_comps ->
              let projections = List.map (fun block -> project block clauses) co_comps in
              if not (product_equals clauses projections) then None
              else
                let parts = List.map factor_clauses projections in
                if List.exists Option.is_none parts then None
                else Some (F.conj (List.map Option.get parts))))

let factor clauses =
  if List.exists (List.exists (fun v -> v < 0)) clauses then
    invalid_arg "Read_once.factor: negative literals are not supported";
  factor_clauses clauses

let is_read_once clauses = Option.is_some (factor clauses)

let rec wmc_formula p = function
  | F.True -> 1.0
  | F.False -> 0.0
  | F.Var v -> p v
  | F.Not f -> 1.0 -. wmc_formula p f
  | F.And fs -> List.fold_left (fun acc f -> acc *. wmc_formula p f) 1.0 fs
  | F.Or fs -> 1.0 -. List.fold_left (fun acc f -> acc *. (1.0 -. wmc_formula p f)) 1.0 fs

let probability p clauses = Option.map (wmc_formula p) (factor clauses)
