lib/kc/read_once.ml: Array Fun Hashtbl Int List Option Probdb_boolean Set
