lib/kc/circuit.mli: Format
