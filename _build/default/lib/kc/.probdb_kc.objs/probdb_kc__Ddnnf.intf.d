lib/kc/ddnnf.mli: Circuit
