lib/kc/ddnnf.ml: Array Circuit Hashtbl Int List Set
