lib/kc/obdd.mli: Circuit Probdb_boolean
