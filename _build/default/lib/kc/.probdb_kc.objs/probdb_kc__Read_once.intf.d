lib/kc/read_once.mli: Probdb_boolean
