lib/kc/obdd.ml: Circuit Hashtbl List Probdb_boolean
