lib/kc/circuit.ml: Format Hashtbl Int List Printf Result Set String
