module Core = Probdb_core
module Fo = Probdb_logic.Fo
module Cq = Probdb_logic.Cq
module Semantics = Probdb_logic.Semantics
module F = Probdb_boolean.Formula
module Pool = Probdb_boolean.Var_pool

type ctx = {
  db : Core.Tid.t;
  pool : Pool.t;
  facts : (int, string * Core.Tuple.t) Hashtbl.t;
}

let fact_label rel tuple = Printf.sprintf "%s%s" rel (Core.Tuple.to_string tuple)

let create db =
  let pool = Pool.create () in
  let facts = Hashtbl.create 64 in
  List.iter
    (fun (rel, tuple, p) ->
      let id = Pool.intern pool ~prob:p (fact_label rel tuple) in
      Hashtbl.replace facts id (rel, tuple))
    (Core.Tid.support db);
  { db; pool; facts }

let db ctx = ctx.db
let pool ctx = ctx.pool

let var_of_fact ctx rel tuple =
  if Core.Tid.mem_relation ctx.db rel && Core.Relation.mem (Core.Tid.relation ctx.db rel) tuple
  then Pool.find ctx.pool (fact_label rel tuple)
  else None

let fact_of_var ctx id =
  match Hashtbl.find_opt ctx.facts id with
  | Some fact -> fact
  | None -> raise Not_found

let prob ctx id = Pool.prob ctx.pool id

let atom_formula ctx rel tuple =
  match var_of_fact ctx rel tuple with Some id -> F.var id | None -> F.fls

let of_query ctx q =
  if not (Fo.is_sentence q) then invalid_arg "Lineage.of_query: open formula";
  let domain = Core.Tid.domain ctx.db in
  let rec go env = function
    | Fo.True -> F.tru
    | Fo.False -> F.fls
    | Fo.Atom a ->
        atom_formula ctx a.Fo.rel (List.map (Semantics.eval_term env) a.Fo.args)
    | Fo.Not f -> F.neg (go env f)
    | Fo.And (f, g) -> F.conj2 (go env f) (go env g)
    | Fo.Or (f, g) -> F.disj2 (go env f) (go env g)
    | Fo.Implies (f, g) -> F.implies (go env f) (go env g)
    | Fo.Exists (x, f) -> F.disj (List.map (fun a -> go ((x, a) :: env) f) domain)
    | Fo.Forall (x, f) -> F.conj (List.map (fun a -> go ((x, a) :: env) f) domain)
  in
  go [] q

(* Enumerate assignments of the CQ's variables over the domain, pruning a
   branch as soon as a fully-instantiated positive atom is unlisted. *)
let of_cq ctx cq =
  let domain = Core.Tid.domain ctx.db in
  let vars = Cq.vars cq in
  let eval_arg env = function
    | Fo.Const v -> v
    | Fo.Var x -> List.assoc x env
  in
  let clause env =
    let literal (a : Cq.atom) =
      let tuple = List.map (eval_arg env) a.Cq.args in
      match var_of_fact ctx a.Cq.rel tuple, a.Cq.comp with
      | Some id, false -> Some (F.var id)
      | Some id, true -> Some (F.neg (F.var id))
      | None, false -> Some F.fls
      | None, true -> None (* unlisted tuple is surely absent: literal true *)
    in
    F.conj (List.filter_map literal cq)
  in
  let rec assign env = function
    | [] -> [ clause env ]
    | x :: rest -> List.concat_map (fun a -> assign ((x, a) :: env) rest) domain
  in
  F.disj (assign [] vars)

let of_ucq ctx ucq = F.disj (List.map (of_cq ctx) ucq)

let clause_subsumes small big = List.for_all (fun x -> List.mem x big) small

let absorb clauses =
  let clauses = List.sort_uniq (List.compare Int.compare) clauses in
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' -> (not (List.equal Int.equal c c')) && clause_subsumes c' c)
           clauses))
    clauses

let dnf_of_ucq ctx ucq =
  let domain = Core.Tid.domain ctx.db in
  let eval_arg env = function
    | Fo.Const v -> v
    | Fo.Var x -> List.assoc x env
  in
  let cq_clauses cq =
    let vars = Cq.vars cq in
    let clause env =
      let rec literals acc = function
        | [] -> Some (List.sort_uniq Int.compare acc)
        | (a : Cq.atom) :: rest ->
            if a.Cq.comp then
              invalid_arg "Lineage.dnf_of_ucq: complemented atom in UCQ";
            let tuple = List.map (eval_arg env) a.Cq.args in
            (match var_of_fact ctx a.Cq.rel tuple with
            | Some id -> literals (id :: acc) rest
            | None -> None)
      in
      literals [] cq
    in
    let rec assign env = function
      | [] -> Option.to_list (clause env)
      | x :: rest -> List.concat_map (fun a -> assign ((x, a) :: env) rest) domain
    in
    assign [] vars
  in
  absorb (List.concat_map cq_clauses ucq)

let multiplicities clauses =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun clause ->
      List.iter
        (fun v ->
          Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
        clause)
    clauses;
  Hashtbl.fold (fun v k acc -> (v, k) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
