(** Lineage: grounding a query over a TID into a Boolean formula.

    The lineage [F_{Q,DOM}] of a sentence [Q] associates a Boolean variable
    to every possible tuple and is true exactly on the assignments whose
    corresponding world satisfies [Q] (Sec. 7 and the Appendix of the
    paper). PQE is weighted model counting of the lineage: [p_D(Q) =
    p(F_{Q,DOM})] with each tuple-variable weighted by its marginal
    probability.

    Unlisted possible tuples have probability 0, so their variables are
    replaced by the constant [false] during construction; this keeps
    lineages polynomial in the size of the database rather than in
    |DOM|^arity. *)

type ctx
(** Grounding context: the database plus the pool mapping facts to Boolean
    variables. *)

val create : Probdb_core.Tid.t -> ctx

val db : ctx -> Probdb_core.Tid.t

val pool : ctx -> Probdb_boolean.Var_pool.t
(** The fact/variable bijection. Variable probabilities equal the tuple
    marginals, so the pool doubles as the WMC weight function. *)

val var_of_fact : ctx -> string -> Probdb_core.Tuple.t -> int option
(** The variable of a listed fact; [None] when the tuple is unlisted
    (probability 0). *)

val fact_of_var : ctx -> int -> string * Probdb_core.Tuple.t
(** Inverse of {!var_of_fact}. Raises [Not_found] on foreign variables. *)

val prob : ctx -> int -> float
(** Marginal probability of a lineage variable. *)

val of_query : ctx -> Probdb_logic.Fo.t -> Probdb_boolean.Formula.t
(** The inductive lineage construction of the Appendix: conjunction for ∀
    and ∧, disjunction for ∃ and ∨, negation for ¬, with quantifiers
    expanded over the TID's domain. Works for arbitrary FO sentences. *)

val of_cq : ctx -> Probdb_logic.Cq.t -> Probdb_boolean.Formula.t
(** Lineage of a Boolean CQ (complemented atoms become negative literals
    over the same fact variables). *)

val of_ucq : ctx -> Probdb_logic.Ucq.t -> Probdb_boolean.Formula.t

val dnf_of_ucq : ctx -> Probdb_logic.Ucq.t -> int list list
(** The lineage of a positive UCQ directly as DNF clauses (sorted variable
    lists, absorption applied) — the input format of Karp–Luby sampling and
    of the multiplicity counts used by the lower bound of Theorem 6.1.
    Raises [Invalid_argument] if some atom is complemented. *)

val multiplicities : int list list -> (int * int) list
(** How many DNF clauses each variable occurs in — the [k] of the
    [1-(1-p)^{1/k}] lower-bound trick (Sec. 6). *)
