lib/lineage/lineage.mli: Probdb_boolean Probdb_core Probdb_logic
