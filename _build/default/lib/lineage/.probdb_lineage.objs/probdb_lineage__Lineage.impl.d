lib/lineage/lineage.ml: Hashtbl Int List Option Printf Probdb_boolean Probdb_core Probdb_logic
