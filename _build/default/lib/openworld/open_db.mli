(** Open-world probabilistic databases (Ceylan–Darwiche–Van den Broeck,
    discussed in Sec. 9 of the paper).

    A closed-world TID declares every unlisted tuple impossible. An
    open-world database instead allows each unlisted possible tuple an
    unknown probability in [0, λ]. The semantics of a query is then an
    {e interval}: the infimum and supremum of [p_D'(Q)] over all
    λ-completions [D'].

    For monotone queries the extremes are attained at the endpoints: the
    infimum is the closed-world probability, and the supremum is reached by
    completing every unlisted tuple at exactly λ. This module materialises
    that completion (so it is meant for moderate domains) and evaluates
    both ends with the engine. For unate queries the same trick works per
    polarity: negative relations complete at the {e lower} end for the
    supremum. Non-unate queries are rejected. *)

type t

val make :
  ?lambda:float -> open_relations:(string * int) list -> Probdb_core.Tid.t -> t
(** [make ~open_relations db] declares which relations are open (with their
    arities — they may be absent from [db] entirely). Default λ = 0.1.
    Raises [Invalid_argument] if λ is outside [0, 1]. *)

val lambda : t -> float

val completion : t -> Probdb_core.Tid.t
(** The λ-completion: every unlisted possible tuple of an open relation is
    added with probability λ. *)

type interval = { lower : float; upper : float }

val probability_interval :
  ?config:Probdb_engine.Engine.config -> t -> Probdb_logic.Fo.t -> interval
(** The open-world probability interval of a unate sentence. Raises
    [Probdb_logic.Ucq.Unsupported] on non-unate sentences. *)
