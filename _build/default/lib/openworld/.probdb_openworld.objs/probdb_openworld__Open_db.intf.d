lib/openworld/open_db.mli: Probdb_core Probdb_engine Probdb_logic
