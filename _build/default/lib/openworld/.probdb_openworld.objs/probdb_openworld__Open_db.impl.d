lib/openworld/open_db.ml: Float List Option Printf Probdb_core Probdb_engine Probdb_logic
