module Core = Probdb_core
module Fo = Probdb_logic.Fo
module E = Probdb_engine.Engine

type t = {
  db : Core.Tid.t;
  lambda : float;
  open_rels : (string * int) list;
}

let make ?(lambda = 0.1) ~open_relations db =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Open_db.make: lambda outside [0,1]";
  List.iter
    (fun (name, arity) ->
      match Core.Tid.relation_opt db name with
      | Some rel when Core.Relation.arity rel <> arity ->
          invalid_arg (Printf.sprintf "Open_db.make: arity mismatch for %s" name)
      | _ -> ())
    open_relations;
  { db; lambda; open_rels = open_relations }

let lambda t = t.lambda

let rec all_tuples arity domain =
  if arity = 0 then [ [] ]
  else
    let rest = all_tuples (arity - 1) domain in
    List.concat_map (fun v -> List.map (fun tl -> v :: tl) rest) domain

let complete_relation db lambda name arity =
  let domain = Core.Tid.domain db in
  let listed =
    match Core.Tid.relation_opt db name with
    | Some rel -> fun t -> Core.Relation.mem rel t
    | None -> fun _ -> false
  in
  let rows =
    List.map
      (fun t -> (t, if listed t then Core.Tid.prob db name t else lambda))
      (all_tuples arity domain)
  in
  Core.Relation.make (Core.Schema.of_arity name arity) rows

let complete_some t names =
  List.fold_left
    (fun db (name, arity) ->
      if List.mem name names then
        Core.Tid.replace_relation db (complete_relation t.db t.lambda name arity)
      else db)
    t.db t.open_rels

let completion t = complete_some t (List.map fst t.open_rels)

type interval = { lower : float; upper : float }

let probability_interval ?config t q =
  let polarities = Fo.polarities q in
  let polarity_of name =
    Option.value ~default:`Pos (List.assoc_opt name polarities)
  in
  List.iter
    (fun (name, _) ->
      if polarity_of name = `Both then
        raise
          (Probdb_logic.Ucq.Unsupported
             (Printf.sprintf "open relation %s occurs with both polarities" name)))
    t.open_rels;
  let positive, negative =
    List.partition (fun (name, _) -> polarity_of name = `Pos) t.open_rels
  in
  (* monotone direction: adding tuples to positive relations raises p(Q),
     adding to negative relations lowers it *)
  let low_db = complete_some t (List.map fst negative) in
  let high_db = complete_some t (List.map fst positive) in
  let p_low = E.probability ?config low_db q in
  let p_high = E.probability ?config high_db q in
  { lower = Float.min p_low p_high; upper = Float.max p_low p_high }
