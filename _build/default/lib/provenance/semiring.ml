module type S = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Bool = struct
  type t = bool

  let zero = false
  let one = true
  let plus = ( || )
  let times = ( && )
  let equal = Bool.equal
  let pp = Format.pp_print_bool
end

module Counting = struct
  type t = int

  let zero = 0
  let one = 1
  let plus = ( + )
  let times = ( * )
  let equal = Int.equal
  let pp = Format.pp_print_int
end

module Tropical = struct
  type t = float

  let zero = Float.infinity
  let one = 0.0
  let plus = Float.min
  let times = ( +. )
  let equal a b = a = b || (Float.is_nan a && Float.is_nan b)
  let pp ppf x = Format.fprintf ppf "%g" x
end

module Formula = struct
  module F = Probdb_boolean.Formula

  type t = F.t

  let zero = F.fls
  let one = F.tru
  let plus = F.disj2
  let times = F.conj2
  let equal = F.equal
  let pp = F.pp ()
end

module Polynomial = struct
  (* canonical form: association list from sorted factor lists (with
     multiplicity) to positive integer coefficients, sorted by monomial. *)
  type t = (int list * int) list

  let normalize monos =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (factors, coeff) ->
        if coeff <> 0 then begin
          let key = List.sort Int.compare factors in
          Hashtbl.replace tbl key (coeff + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        end)
      monos;
    Hashtbl.fold (fun k c acc -> if c = 0 then acc else (k, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> List.compare Int.compare a b)

  let zero = []
  let one = [ ([], 1) ]
  let var x = [ ([ x ], 1) ]
  let of_monomials = normalize
  let monomials p = p
  let plus p q = normalize (p @ q)

  let times p q =
    normalize
      (List.concat_map
         (fun (m1, c1) -> List.map (fun (m2, c2) -> (m1 @ m2, c1 * c2)) q)
         p)

  let equal p q = List.equal (fun (m1, c1) (m2, c2) -> c1 = c2 && List.equal Int.equal m1 m2) p q

  let eval env p =
    List.fold_left
      (fun acc (factors, coeff) ->
        acc + (coeff * List.fold_left (fun m x -> m * env x) 1 factors))
      0 p

  let pp ppf p =
    match p with
    | [] -> Format.pp_print_string ppf "0"
    | _ ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
          (fun ppf (factors, coeff) ->
            match factors with
            | [] -> Format.fprintf ppf "%d" coeff
            | _ ->
                if coeff <> 1 then Format.fprintf ppf "%d·" coeff;
                Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.fprintf ppf "·")
                  (fun ppf x -> Format.fprintf ppf "x%d" x)
                  ppf factors)
          ppf p
end
