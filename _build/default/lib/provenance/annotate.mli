(** Semiring-annotated evaluation of (unions of) conjunctive queries.

    Given an annotation of every fact in some semiring K, the annotation of
    a Boolean UCQ is [Σ over valuations Π over atoms] of the facts'
    annotations — joins multiply, the implicit existential projection adds.
    With K = {!Semiring.Formula} and facts annotated by their lineage
    variables this computes exactly [Probdb_lineage.Lineage.of_ucq]; with
    K = ℕ it counts valuations; with K = Bool it decides satisfaction
    (tested against [Probdb_logic.Semantics]). *)

module Make (K : Semiring.S) : sig
  type annotation = string -> Probdb_core.Tuple.t -> K.t
  (** per-fact annotations; facts not mentioned should map to [K.zero]. *)

  val of_world : Probdb_core.World.t -> annotation
  (** [K.one] on the world's facts, [K.zero] elsewhere. *)

  val eval_cq :
    domain:Probdb_core.Value.t list -> annotation -> Probdb_logic.Cq.t -> K.t
  (** Annotation of a Boolean CQ. Raises [Invalid_argument] on complemented
      atoms (provenance here is for positive queries). *)

  val eval_ucq :
    domain:Probdb_core.Value.t list -> annotation -> Probdb_logic.Ucq.t -> K.t
end
