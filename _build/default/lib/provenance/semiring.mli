(** Commutative semirings for provenance-annotated query evaluation.

    The lineage of Sec. 7 is the special case of semiring provenance
    (Green–Karvounarakis–Tannen) where the semiring is positive Boolean
    formulas over the fact variables: joins multiply annotations,
    union/projection add them. Keeping the semiring abstract buys, with the
    same evaluator: plain satisfaction (Boolean semiring), counting the
    derivations (ℕ), cheapest derivations (tropical), why-provenance
    (sets of sets of facts), and full provenance polynomials ℕ[X]. *)

module type S = sig
  type t

  val zero : t
  (** neutral for {!plus}, annihilator for {!times}: "no derivation". *)

  val one : t
  (** neutral for {!times}: the annotation of "present for sure". *)

  val plus : t -> t -> t
  (** alternative derivations (union, projection). *)

  val times : t -> t -> t
  (** joint use (join). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Bool : S with type t = bool
(** Set semantics: does the query hold? *)

module Counting : S with type t = int
(** Bag semantics / number of derivations. *)

module Tropical : S with type t = float
(** (min, +): cost of the cheapest derivation; {!S.zero} is +∞. *)

module Formula : S with type t = Probdb_boolean.Formula.t
(** Positive Boolean formulas over fact variables — the lineage semiring.
    [plus] is ∨, [times] is ∧. *)

module Polynomial : sig
  include S

  val var : int -> t
  (** the indeterminate of one fact. *)

  val of_monomials : (int list * int) list -> t
  (** monomials as sorted factor lists with coefficients. *)

  val monomials : t -> (int list * int) list
  (** canonical form: sorted monomials (factors sorted, with multiplicity),
      positive coefficients. *)

  val eval : (int -> int) -> t -> int
  (** substitute numbers for the indeterminates. *)
end
(** Provenance polynomials ℕ[X], the most general annotation: specialising
    their indeterminates recovers every other semiring above. *)
