module Core = Probdb_core
module Fo = Probdb_logic.Fo
module Cq = Probdb_logic.Cq

module Make (K : Semiring.S) = struct
  type annotation = string -> Core.Tuple.t -> K.t

  let of_world world rel tuple = if Core.World.mem world rel tuple then K.one else K.zero

  let eval_cq ~domain ann cq =
    List.iter
      (fun (a : Cq.atom) ->
        if a.Cq.comp then invalid_arg "Annotate.eval_cq: complemented atom")
      cq;
    let eval_arg env = function
      | Fo.Const v -> v
      | Fo.Var x -> List.assoc x env
    in
    let product env =
      List.fold_left
        (fun acc (a : Cq.atom) ->
          K.times acc (ann a.Cq.rel (List.map (eval_arg env) a.Cq.args)))
        K.one cq
    in
    let rec assign env = function
      | [] -> product env
      | x :: rest ->
          List.fold_left
            (fun acc v -> K.plus acc (assign ((x, v) :: env) rest))
            K.zero domain
    in
    assign [] (Cq.vars cq)

  let eval_ucq ~domain ann ucq =
    List.fold_left (fun acc cq -> K.plus acc (eval_cq ~domain ann cq)) K.zero ucq
end
