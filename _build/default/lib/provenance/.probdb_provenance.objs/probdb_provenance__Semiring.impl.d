lib/provenance/semiring.ml: Bool Float Format Hashtbl Int List Option Probdb_boolean
