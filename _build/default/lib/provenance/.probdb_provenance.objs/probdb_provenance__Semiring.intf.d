lib/provenance/semiring.mli: Format Probdb_boolean
