lib/provenance/annotate.ml: List Probdb_core Probdb_logic Semiring
