lib/provenance/annotate.mli: Probdb_core Probdb_logic Semiring
