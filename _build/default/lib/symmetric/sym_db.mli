(** Symmetric probabilistic databases (Sec. 8).

    A symmetric database is invariant under permutations of the domain:
    for every relation, {e all possible tuples} carry the same probability.
    It is fully described by the domain size and one probability per
    relation — the input of symmetric WFOMC, whose complexity is measured
    in [n] alone (the class #P₁ of the paper). *)

type t = {
  n : int;  (** domain size *)
  rels : (string * int * float) list;  (** name, arity, tuple probability *)
}

val make : n:int -> (string * int * float) list -> t
(** Raises [Invalid_argument] on duplicate names, arities outside {1, 2}
    (the FO² algorithms only see unary and binary predicates), or [n < 1]. *)

val domain : t -> Probdb_core.Value.t list

val prob : t -> string -> float
(** Raises [Not_found] for unknown relations. *)

val arity : t -> string -> int

val to_tid : t -> Probdb_core.Tid.t
(** Materialises every possible tuple — for cross-checking against
    brute-force enumeration on small [n]. *)

val tuple_count : t -> int
(** |Tup|: the number of possible tuples. *)
