lib/symmetric/wfomc.ml: Array Closed_forms List Map Printf Probdb_logic String Sym_db
