lib/symmetric/closed_forms.mli:
