lib/symmetric/sym_db.mli: Probdb_core
