lib/symmetric/closed_forms.ml: Array List Option
