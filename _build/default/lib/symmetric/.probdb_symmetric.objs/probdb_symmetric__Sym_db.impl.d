lib/symmetric/sym_db.ml: Float List Printf Probdb_core String
