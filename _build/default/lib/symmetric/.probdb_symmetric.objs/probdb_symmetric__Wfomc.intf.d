lib/symmetric/wfomc.mli: Probdb_logic Sym_db
