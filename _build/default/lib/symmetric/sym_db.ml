module Core = Probdb_core

type t = { n : int; rels : (string * int * float) list }

let make ~n rels =
  if n < 1 then invalid_arg "Sym_db.make: domain must be non-empty";
  let names = List.map (fun (name, _, _) -> name) rels in
  if List.length names <> List.length (List.sort_uniq String.compare names) then
    invalid_arg "Sym_db.make: duplicate relation";
  List.iter
    (fun (name, arity, _) ->
      if arity < 1 || arity > 2 then
        invalid_arg (Printf.sprintf "Sym_db.make: %s has arity %d (only 1 and 2 supported)" name arity))
    rels;
  { n; rels }

let domain db = List.init db.n Core.Value.int

let find db name =
  match List.find_opt (fun (r, _, _) -> String.equal r name) db.rels with
  | Some entry -> entry
  | None -> raise Not_found

let prob db name =
  let _, _, p = find db name in
  p

let arity db name =
  let _, k, _ = find db name in
  k

let rec all_tuples arity dom =
  if arity = 0 then [ [] ]
  else
    let rest = all_tuples (arity - 1) dom in
    List.concat_map (fun v -> List.map (fun t -> v :: t) rest) dom

let to_tid db =
  let dom = domain db in
  let rels =
    List.map
      (fun (name, arity, p) ->
        Core.Relation.make (Core.Schema.of_arity name arity)
          (List.map (fun t -> (t, p)) (all_tuples arity dom)))
      db.rels
  in
  Core.Tid.make ~domain:dom rels

let tuple_count db =
  List.fold_left
    (fun acc (_, arity, _) ->
      acc + int_of_float (Float.pow (float_of_int db.n) (float_of_int arity)))
    0 db.rels
