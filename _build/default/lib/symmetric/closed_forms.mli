(** Closed-form symmetric evaluations from Sec. 8 of the paper.

    The paper derives, by conditioning on the cardinalities |R| = k and
    |T| = ℓ, a polynomial-time sum for [H0 = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y))]
    on a symmetric database:

    {v p(H0) = Σ_{k,ℓ} C(n,k) C(n,ℓ) p_R^k (1-p_R)^(n-k)
                       p_T^ℓ (1-p_T)^(n-ℓ) p_S^((n-k)(n-ℓ)) v}

    Note the exponent: the pairs that force an S-tuple are those with
    [x ∉ R] and [y ∉ T], i.e. [(n-k)(n-ℓ)] of them. (The paper's text
    prints the exponent as [n² - kℓ], which double-counts; the tests
    validate the version above against brute-force enumeration.) *)

val h0 : n:int -> p_r:float -> p_s:float -> p_t:float -> float
(** The O(n²) evaluation above. *)

val forall_exists_s : n:int -> p_s:float -> float
(** [p(∀x ∃y S(x,y)) = (1 - (1-p_s)^n)^n] — the rows-all-nonempty query,
    another staple symmetric closed form. *)

val binomial : int -> int -> float
val powi : float -> int -> float
(** Integer power by repeated squaring (exact for negative bases, unlike
    [Float.pow]). *)
