let powi x k =
  if k < 0 then invalid_arg "powi: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then acc *. base else acc in
      go acc (base *. base) (k lsr 1)
  in
  go 1.0 x k

let binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 0 to k - 1 do
      acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
    done;
    !acc
  end

(* ln(k!) computed incrementally; large n makes the direct binomial /
   power products overflow, so each term of the H0 sum is assembled in
   log-space. *)
let ln_factorial =
  let cache = ref [| 0.0 |] in
  fun k ->
    let table = !cache in
    if k < Array.length table then table.(k)
    else begin
      let table' = Array.make (k + 1) 0.0 in
      Array.blit table 0 table' 0 (Array.length table);
      for i = Array.length table to k do
        table'.(i) <- table'.(i - 1) +. log (float_of_int i)
      done;
      cache := table';
      table'.(k)
    end

let ln_binomial n k = ln_factorial n -. ln_factorial k -. ln_factorial (n - k)

(* k * ln p, with the 0^0 = 1 convention; None encodes a zero factor. *)
let ln_pow p k =
  if k = 0 then Some 0.0 else if p <= 0.0 then None else Some (float_of_int k *. log p)

let h0 ~n ~p_r ~p_s ~p_t =
  let total = ref 0.0 in
  for k = 0 to n do
    for l = 0 to n do
      let factors =
        [
          ln_pow p_r k;
          ln_pow (1.0 -. p_r) (n - k);
          ln_pow p_t l;
          ln_pow (1.0 -. p_t) (n - l);
          ln_pow p_s ((n - k) * (n - l));
        ]
      in
      if List.for_all Option.is_some factors then begin
        let ln_term =
          ln_binomial n k +. ln_binomial n l
          +. List.fold_left (fun acc f -> acc +. Option.get f) 0.0 factors
        in
        total := !total +. exp ln_term
      end
    done
  done;
  !total

let forall_exists_s ~n ~p_s = powi (1.0 -. powi (1.0 -. p_s) n) n
