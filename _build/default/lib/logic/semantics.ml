module Value = Probdb_core.Value
module World = Probdb_core.World

type env = (string * Value.t) list

let eval_term env = function
  | Fo.Const v -> v
  | Fo.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Semantics: unbound variable %s" x))

let holds ?(env = []) ~domain world q =
  let rec go env = function
    | Fo.True -> true
    | Fo.False -> false
    | Fo.Atom a -> World.mem world a.rel (List.map (eval_term env) a.args)
    | Fo.Not f -> not (go env f)
    | Fo.And (f, g) -> go env f && go env g
    | Fo.Or (f, g) -> go env f || go env g
    | Fo.Implies (f, g) -> (not (go env f)) || go env g
    | Fo.Exists (x, f) -> List.exists (fun a -> go ((x, a) :: env) f) domain
    | Fo.Forall (x, f) -> List.for_all (fun a -> go ((x, a) :: env) f) domain
  in
  go env q

let holds_in_tid db world q = holds ~domain:(Probdb_core.Tid.domain db) world q
