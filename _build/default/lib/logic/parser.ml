exception Error of string

type token =
  | T_ident of string
  | T_int of int
  | T_quoted of string
  | T_lpar
  | T_rpar
  | T_comma
  | T_dot
  | T_bang
  | T_and
  | T_or
  | T_implies
  | T_eof

let token_name = function
  | T_ident s -> Printf.sprintf "identifier %S" s
  | T_int i -> Printf.sprintf "integer %d" i
  | T_quoted s -> Printf.sprintf "string %S" s
  | T_lpar -> "'('"
  | T_rpar -> "')'"
  | T_comma -> "','"
  | T_dot -> "'.'"
  | T_bang -> "'!'"
  | T_and -> "'&&'"
  | T_or -> "'||'"
  | T_implies -> "'=>'"
  | T_eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize input =
  let n = String.length input in
  let fail i msg = raise (Error (Printf.sprintf "at offset %d: %s" i msg)) in
  let rec go i acc =
    if i >= n then List.rev ((T_eof, n) :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) ((T_lpar, i) :: acc)
      | ')' -> go (i + 1) ((T_rpar, i) :: acc)
      | ',' -> go (i + 1) ((T_comma, i) :: acc)
      | '.' -> go (i + 1) ((T_dot, i) :: acc)
      | '!' -> go (i + 1) ((T_bang, i) :: acc)
      | '&' when i + 1 < n && input.[i + 1] = '&' -> go (i + 2) ((T_and, i) :: acc)
      | '|' when i + 1 < n && input.[i + 1] = '|' -> go (i + 2) ((T_or, i) :: acc)
      | '=' when i + 1 < n && input.[i + 1] = '>' -> go (i + 2) ((T_implies, i) :: acc)
      | '\'' ->
          let j = try String.index_from input (i + 1) '\'' with Not_found -> fail i "unterminated string literal" in
          go (j + 1) ((T_quoted (String.sub input (i + 1) (j - i - 1)), i) :: acc)
      | c when c >= '0' && c <= '9' || c = '-' ->
          let j = ref (i + 1) in
          while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do
            incr j
          done;
          let s = String.sub input i (!j - i) in
          (match int_of_string_opt s with
          | Some v -> go !j ((T_int v, i) :: acc)
          | None -> fail i (Printf.sprintf "bad number %S" s))
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          go !j ((T_ident (String.sub input i (!j - i)), i) :: acc)
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (T_eof, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let t, pos = peek st in
  if t = tok then advance st
  else
    raise
      (Error (Printf.sprintf "at offset %d: expected %s, found %s" pos (token_name tok) (token_name t)))

(* bound: quantified variables in scope; free: caller-declared free vars. *)
let rec parse_implies st ~bound ~free =
  let lhs = parse_or st ~bound ~free in
  match peek st with
  | T_implies, _ ->
      advance st;
      Fo.Implies (lhs, parse_implies st ~bound ~free)
  | _ -> lhs

and parse_or st ~bound ~free =
  let lhs = ref (parse_and st ~bound ~free) in
  let continue = ref true in
  while !continue do
    match peek st with
    | T_or, _ ->
        advance st;
        lhs := Fo.Or (!lhs, parse_and st ~bound ~free)
    | _ -> continue := false
  done;
  !lhs

and parse_and st ~bound ~free =
  let lhs = ref (parse_unary st ~bound ~free) in
  let continue = ref true in
  while !continue do
    match peek st with
    | T_and, _ ->
        advance st;
        lhs := Fo.And (!lhs, parse_unary st ~bound ~free)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st ~bound ~free =
  match peek st with
  | T_bang, _ ->
      advance st;
      Fo.Not (parse_unary st ~bound ~free)
  | T_lpar, _ ->
      advance st;
      let f = parse_implies st ~bound ~free in
      expect st T_rpar;
      f
  | T_ident "true", _ ->
      advance st;
      Fo.True
  | T_ident "false", _ ->
      advance st;
      Fo.False
  | T_ident (("exists" | "forall") as kw), pos ->
      advance st;
      let rec vars acc =
        match peek st with
        | T_ident v, _ when v <> "exists" && v <> "forall" ->
            advance st;
            vars (v :: acc)
        | T_dot, _ ->
            advance st;
            List.rev acc
        | t, p ->
            raise
              (Error
                 (Printf.sprintf "at offset %d: expected variable or '.', found %s" p (token_name t)))
      in
      let vs = vars [] in
      if vs = [] then raise (Error (Printf.sprintf "at offset %d: %s with no variables" pos kw));
      let body = parse_implies st ~bound:(vs @ bound) ~free in
      if kw = "exists" then Fo.exists vs body else Fo.forall vs body
  | T_ident name, _ ->
      advance st;
      parse_atom st name ~bound ~free
  | t, pos ->
      raise (Error (Printf.sprintf "at offset %d: unexpected %s" pos (token_name t)))

and parse_atom st name ~bound ~free =
  expect st T_lpar;
  let rec args acc =
    let arg =
      match peek st with
      | T_int v, _ ->
          advance st;
          Fo.Const (Probdb_core.Value.Int v)
      | T_quoted s, _ ->
          advance st;
          Fo.Const (Probdb_core.Value.Str s)
      | T_ident v, _ ->
          advance st;
          if List.mem v bound || List.mem v free then Fo.Var v
          else Fo.Const (Probdb_core.Value.Str v)
      | t, pos ->
          raise (Error (Printf.sprintf "at offset %d: bad atom argument %s" pos (token_name t)))
    in
    match peek st with
    | T_comma, _ ->
        advance st;
        args (arg :: acc)
    | _ -> List.rev (arg :: acc)
  in
  let arguments = match peek st with T_rpar, _ -> [] | _ -> args [] in
  expect st T_rpar;
  Fo.Atom { rel = name; args = arguments }

let parse ?(free = []) input =
  let st = { toks = tokenize input } in
  let f = parse_implies st ~bound:[] ~free in
  expect st T_eof;
  f

let parse_sentence input =
  let f = parse input in
  if not (Fo.is_sentence f) then
    raise (Error (Printf.sprintf "free variables in sentence: %s" (String.concat ", " (Fo.free_vars f))));
  f
