(** Concrete syntax for first-order queries.

    Grammar (loosest to tightest): [=>] right-associative, [||], [&&], then
    [!], quantifiers and atoms. Quantifiers extend maximally to the right:

    {v
      forall x y. S(x,y) => R(x)
      exists x y. R(x) && S(x,y) || exists u v. T(u) && S(u,v)
      forall m e. RR(m,e) || !Manager(m,e) || HighlyCompensated(m)
    v}

    Atom arguments are variables when the identifier is bound by an
    enclosing quantifier or listed in [~free]; otherwise they parse as
    constants (integers for digit tokens, strings for bare or ['quoted']
    identifiers). [true] and [false] are constants of the logic. *)

exception Error of string
(** Parse errors, with position information in the message. *)

val parse : ?free:string list -> string -> Fo.t
(** Parses a formula. Unbound identifiers not listed in [~free] become
    string constants. Raises {!Error}. *)

val parse_sentence : string -> Fo.t
(** Like {!parse} with no free variables; additionally checks the result is
    a sentence. *)
